module dpm

go 1.22
