// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§5), plus ablation benches for the design
// choices called out in DESIGN.md. Run everything with
//
//	go test -bench=. -benchmem
//
// The benchmarks exercise the same code paths cmd/tables prints, so
// "regenerate Table N" and "benchmark Table N" are the same pipeline.
package dpm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"dpm/internal/baseline"
	"dpm/internal/dpm"
	"dpm/internal/experiments"
	"dpm/internal/fft"
	"dpm/internal/fixed"
	"dpm/internal/machine"
	"dpm/internal/params"
	"dpm/internal/power"
	"dpm/internal/predict"
	"dpm/internal/schedule"
	"dpm/internal/server"
	"dpm/internal/trace"
)

// BenchmarkFigure3ScenarioISchedules regenerates the Figure 3 series
// (scenario I charging and use schedules).
func BenchmarkFigure3ScenarioISchedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.FigureTable(trace.ScenarioI(), 3)
		if t.Rows() != 12 {
			b.Fatal("figure 3 wrong")
		}
	}
}

// BenchmarkFigure4ScenarioIISchedules regenerates the Figure 4
// series (scenario II schedules).
func BenchmarkFigure4ScenarioIISchedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.FigureTable(trace.ScenarioII(), 4)
		if t.Rows() != 12 {
			b.Fatal("figure 4 wrong")
		}
	}
}

// BenchmarkTable1AlgorithmComparison regenerates Table 1: the
// proposed manager and the static baseline on both scenarios, two
// periods each, paper-faithful configuration.
func BenchmarkTable1AlgorithmComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, comps, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range comps {
			if c.Proposed.Badness() >= c.Baseline.Badness() {
				b.Fatalf("scenario %s: headline inverted", c.Scenario)
			}
		}
	}
}

// BenchmarkTable2InitialAllocationScenarioI regenerates Table 2
// (Algorithm 1 iterations, scenario I).
func BenchmarkTable2InitialAllocationScenarioI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.InitialAllocation(trace.ScenarioI())
		if err != nil || !res.Feasible {
			b.Fatal("allocation failed")
		}
	}
}

// BenchmarkTable3DynamicUpdateScenarioI regenerates Table 3
// (Algorithm 3 runtime updates over two periods, scenario I).
func BenchmarkTable3DynamicUpdateScenarioI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DynamicUpdate(trace.ScenarioI())
		if err != nil || len(res.Records) != 24 {
			b.Fatal("dynamic update failed")
		}
	}
}

// BenchmarkTable4InitialAllocationScenarioII regenerates Table 4
// (Algorithm 1 iterations, scenario II).
func BenchmarkTable4InitialAllocationScenarioII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.InitialAllocation(trace.ScenarioII())
		if err != nil || !res.Feasible {
			b.Fatal("allocation failed")
		}
	}
}

// BenchmarkTable5DynamicUpdateScenarioII regenerates Table 5
// (Algorithm 3 runtime updates, scenario II).
func BenchmarkTable5DynamicUpdateScenarioII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DynamicUpdate(trace.ScenarioII())
		if err != nil || len(res.Records) != 24 {
			b.Fatal("dynamic update failed")
		}
	}
}

// Ablations ---------------------------------------------------------

// BenchmarkAblationRedistribution compares Algorithm 3's
// proportional redistribution against the even alternative the paper
// mentions.
func BenchmarkAblationRedistribution(b *testing.B) {
	for _, policy := range []dpm.RedistributePolicy{dpm.Proportional, dpm.Even} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			cfg := experiments.ManagerConfig(trace.ScenarioII())
			cfg.Policy = policy
			for i := 0; i < b.N; i++ {
				res, err := dpm.Simulate(dpm.SimConfig{Manager: cfg, Periods: 2})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Battery.Wasted+res.Battery.Undersupplied, "J-bad")
			}
		})
	}
}

// BenchmarkAblationSlotGuards measures the effect of the slot-level
// under/oversupply guards (this implementation's extension over the
// paper).
func BenchmarkAblationSlotGuards(b *testing.B) {
	for _, guards := range []bool{true, false} {
		name := "on"
		if !guards {
			name = "off"
		}
		guards := guards
		b.Run(name, func(b *testing.B) {
			cfg := experiments.ManagerConfig(trace.ScenarioI())
			cfg.DisableSlotGuards = !guards
			for i := 0; i < b.N; i++ {
				res, err := dpm.Simulate(dpm.SimConfig{Manager: cfg, Periods: 2})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Battery.Wasted+res.Battery.Undersupplied, "J-bad")
			}
		})
	}
}

// BenchmarkAblationBatteryModel compares the physical net-flow
// battery against the paper's sequential slot discretization.
func BenchmarkAblationBatteryModel(b *testing.B) {
	for _, model := range []dpm.BatteryModel{dpm.NetFlow, dpm.Sequential} {
		model := model
		b.Run(model.String(), func(b *testing.B) {
			cfg := experiments.ManagerConfig(trace.ScenarioI())
			cfg.DisableSlotGuards = true
			for i := 0; i < b.N; i++ {
				res, err := dpm.Simulate(dpm.SimConfig{Manager: cfg, Periods: 2, Battery: model})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Battery.Wasted, "J-wasted")
			}
		})
	}
}

// BenchmarkAblationOverheadSweep sweeps Algorithm 2's switching
// overhead and reports how often the manager switches points.
func BenchmarkAblationOverheadSweep(b *testing.B) {
	for _, overhead := range []float64{0, 0.05, 0.5, 5} {
		overhead := overhead
		b.Run(fmt.Sprintf("OH=%gJ", overhead), func(b *testing.B) {
			cfg := experiments.ManagerConfig(trace.ScenarioII())
			cfg.Params.OverheadProc = overhead
			cfg.Params.OverheadFreq = overhead
			for i := 0; i < b.N; i++ {
				res, err := dpm.Simulate(dpm.SimConfig{Manager: cfg, Periods: 2})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Switches), "switches")
			}
		})
	}
}

// BenchmarkAblationVectorVsHomogeneous compares the paper's common-
// clock Algorithm 2 against the §6 per-processor-frequency extension
// at a mid-range budget.
func BenchmarkAblationVectorVsHomogeneous(b *testing.B) {
	cfg := experiments.PaperParams()
	tbl, err := params.BuildTable(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("homogeneous", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pt := tbl.Select(1.5)
			b.ReportMetric(pt.Perf, "perf")
		}
	})
	b.Run("vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pt, err := params.VectorSelect(cfg, 1.5)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(pt.Perf, "perf")
		}
	})
}

// BenchmarkAblationVectorManager runs the whole closed loop in both
// parameter modes — the §6 extension end to end — and reports the
// delivered performance.
func BenchmarkAblationVectorManager(b *testing.B) {
	cfg := experiments.ManagerConfig(trace.ScenarioI())
	b.Run("common-clock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dpm.Simulate(dpm.SimConfig{Manager: cfg, Periods: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.PerfSeconds, "perf-s")
		}
	})
	b.Run("per-processor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dpm.SimulateVector(dpm.SimConfig{Manager: cfg, Periods: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.PerfSeconds, "perf-s")
		}
	})
}

// BenchmarkAblationPolicyZoo pits the paper's proposed manager
// against the whole comparator family — static (idle-off), optimal
// time-out, and predictive shutdown — on scenario II, reporting each
// policy's combined wasted+undersupplied energy.
func BenchmarkAblationPolicyZoo(b *testing.B) {
	s := trace.ScenarioII()
	tbl, err := params.BuildTable(experiments.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	base := baseline.Config{
		Table:          tbl,
		Usage:          s.Usage,
		ActualCharging: s.Charging,
		CapacityMax:    s.CapacityMax,
		CapacityMin:    s.CapacityMin,
		InitialCharge:  s.InitialCharge,
		Periods:        2,
	}
	report := func(b *testing.B, bad float64) { b.ReportMetric(bad, "J-bad") }
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := baseline.Run(base)
			if err != nil {
				b.Fatal(err)
			}
			report(b, res.Battery.Wasted+res.Battery.Undersupplied)
		}
	})
	b.Run("optimal-timeout", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, res, err := baseline.OptimalTimeout(base, 4)
			if err != nil {
				b.Fatal(err)
			}
			report(b, res.Battery.Wasted+res.Battery.Undersupplied)
		}
	})
	b.Run("predictive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := baseline.RunPredictive(base, predict.NewLastPeriod())
			if err != nil {
				b.Fatal(err)
			}
			report(b, res.Battery.Wasted+res.Battery.Undersupplied)
		}
	})
	b.Run("proposed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dpm.Simulate(dpm.SimConfig{Manager: experiments.ManagerConfig(s), Periods: 2})
			if err != nil {
				b.Fatal(err)
			}
			report(b, res.Battery.Wasted+res.Battery.Undersupplied)
		}
	})
}

// BenchmarkAblationIdleMode compares parking idle workers in
// stand-by (6.6 mW, DRAM lost → reload penalty on resume) against
// sleep (393 mW, DRAM retained) on a bursty trace, reporting energy
// and latency.
func BenchmarkAblationIdleMode(b *testing.B) {
	s := trace.ScenarioI()
	events, err := trace.PoissonEvents(s.Usage, 0.08, 2*trace.Period, 23)
	if err != nil {
		b.Fatal(err)
	}
	for _, sleep := range []bool{false, true} {
		name := "standby"
		if sleep {
			name = "sleep"
		}
		sleep := sleep
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mcfg := experiments.ManagerConfig(s)
				mcfg.Params.IdleSleep = sleep
				board, err := machine.New(machine.Config{
					Manager:   mcfg,
					Events:    events,
					Periods:   2,
					IdleSleep: sleep,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := board.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.EnergyUsed, "J-used")
				b.ReportMetric(res.MeanLatencySeconds, "s-latency")
			}
		})
	}
}

// BenchmarkAblationGangScheduling compares bag-of-tasks execution
// (each capture on one worker) against the paper's Figure 2 gang
// model (one parallel program across all active workers), reporting
// mean capture latency.
func BenchmarkAblationGangScheduling(b *testing.B) {
	s := trace.ScenarioI()
	events, err := trace.PoissonEvents(s.Usage, 0.1, 2*trace.Period, 17)
	if err != nil {
		b.Fatal(err)
	}
	for _, gang := range []bool{false, true} {
		name := "bag-of-tasks"
		if gang {
			name = "gang"
		}
		gang := gang
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				board, err := machine.New(machine.Config{
					Manager:       experiments.ManagerConfig(s),
					Events:        events,
					Periods:       2,
					GangScheduled: gang,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := board.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MeanLatencySeconds, "s-latency")
			}
		})
	}
}

// BenchmarkAblationFFTScaling compares the paper's guaranteed
// per-stage scaling against block-floating-point scaling on a quiet
// input, reporting the SNR each achieves.
func BenchmarkAblationFFTScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	input := make([]complex128, 2048)
	for i := range input {
		input[i] = complex(0.01*rng.NormFloat64(), 0.01*rng.NormFloat64())
	}
	b.Run("guaranteed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snr, err := fft.SNR(input)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(snr, "dB-SNR")
		}
	})
	b.Run("block-floating", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snr, err := fft.BFPSNR(input)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(snr, "dB-SNR")
		}
	})
}

// BenchmarkAblationHeterogeneous compares a uniform fleet against a
// mixed-speed fleet at the same power budget — the paper's §6
// heterogeneous-system extension.
func BenchmarkAblationHeterogeneous(b *testing.B) {
	cfg := experiments.PaperParams()
	uniformProcs := make([]power.ProcessorModel, 7)
	for i := range uniformProcs {
		uniformProcs[i] = power.M32RD()
	}
	uniform, err := params.NewFleet(uniformProcs, nil)
	if err != nil {
		b.Fatal(err)
	}
	mixed, err := params.NewFleet(uniformProcs, []float64{2, 1.5, 1.2, 1, 1, 0.8, 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		fleet params.Fleet
	}{{"uniform", uniform}, {"mixed", mixed}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h, err := params.HeteroSelect(cfg, tc.fleet, 1.5)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(h.Perf, "perf")
			}
		})
	}
}

// BenchmarkAblationPredictors backtests the §2 expected-schedule
// estimators over jittered scenario I periods and reports mean RMSE.
func BenchmarkAblationPredictors(b *testing.B) {
	base := trace.ScenarioI().Charging
	var periods []*schedule.Grid
	for i := int64(0); i < 16; i++ {
		periods = append(periods, trace.Perturb(base, 0.3, 900+i))
	}
	predictors := map[string]func() predict.Predictor{
		"last-period":    func() predict.Predictor { return predict.NewLastPeriod() },
		"moving-average": func() predict.Predictor { p, _ := predict.NewMovingAverage(6); return p },
		"exponential":    func() predict.Predictor { p, _ := predict.NewExponential(0.3); return p },
	}
	for name, mk := range predictors {
		mk := mk
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				errs, err := predict.Backtest(mk(), periods)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(predict.MeanRMSE(errs), "W-RMSE")
			}
		})
	}
}

// Service benches ---------------------------------------------------

// postPlanBench drives one /v1/plan request through the service
// handler and fails the benchmark unless it succeeds with the
// expected cache disposition.
func postPlanBench(b *testing.B, h http.Handler, body []byte, wantCache string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("plan status = %d: %s", rec.Code, rec.Body.Bytes())
	}
	if got := rec.Header().Get("X-Dpmd-Cache"); got != wantCache {
		b.Fatalf("cache disposition = %q, want %q", got, wantCache)
	}
}

// BenchmarkPlanCacheHit measures a /v1/plan round trip served from
// the scenario plan cache: one priming miss, then every timed
// iteration is a hit returning the stored bytes.
func BenchmarkPlanCacheHit(b *testing.B) {
	srv, err := server.New(server.Config{CacheEntries: 16})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	body, err := json.Marshal(server.PlanRequest{Scenario: trace.ScenarioI()})
	if err != nil {
		b.Fatal(err)
	}
	postPlanBench(b, h, body, "miss")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postPlanBench(b, h, body, "hit")
	}
}

// BenchmarkPlanCold measures the same round trip when every request
// misses — each iteration carries a distinct scenario name, so the
// full Algorithm 1 computation runs every time. The gap against
// BenchmarkPlanCacheHit is what the cache buys.
func BenchmarkPlanCold(b *testing.B) {
	srv, err := server.New(server.Config{CacheEntries: 16})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	bodies := make([][]byte, b.N)
	for i := range bodies {
		s := trace.ScenarioI()
		s.Name = fmt.Sprintf("cold-%d", i)
		body, err := json.Marshal(server.PlanRequest{Scenario: s})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postPlanBench(b, h, bodies[i], "miss")
	}
}

// BenchmarkPlanParallel measures concurrent warm-cache /v1/plan round
// trips (b.RunParallel): a primed working set of distinct scenarios,
// every timed request a hit, so the plan cache's lock discipline is
// the bottleneck. shards=1 serializes every reader through one mutex;
// the sharded variant routes keys across shard locks. Run with
// -cpu N to scale the parallelism beyond GOMAXPROCS' default.
func BenchmarkPlanParallel(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"shards=1", 1}, {"shards=8", 8}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			srv, err := server.New(server.Config{CacheEntries: 64, CacheShards: tc.shards})
			if err != nil {
				b.Fatal(err)
			}
			h := srv.Handler()
			const working = 16
			bodies := make([][]byte, working)
			for i := range bodies {
				s := trace.ScenarioI()
				// Distinct planning input → distinct cache key, so
				// parallel readers spread across shards.
				s.CapacityMax += float64(i)
				body, err := json.Marshal(server.PlanRequest{Scenario: s})
				if err != nil {
					b.Fatal(err)
				}
				bodies[i] = body
				postPlanBench(b, h, body, "miss")
			}
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					postPlanBench(b, h, bodies[i%working], "hit")
				}
			})
		})
	}
}

// Kernel benches ----------------------------------------------------

// BenchmarkFFTFixed2K times the 2K-sample fixed-point FFT — the
// workload the paper calibrates τ against.
func BenchmarkFFTFixed2K(b *testing.B) {
	table, err := fft.NewTwiddleTable(2048)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	input := make([]fixed.Complex, 2048)
	for i := range input {
		input[i] = fixed.CFromFloat(complex(0.1*rng.NormFloat64(), 0.1*rng.NormFloat64()))
	}
	buf := make([]fixed.Complex, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, input)
		if err := table.ForwardFixed(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFTFloat2K times the float reference transform.
func BenchmarkFFTFloat2K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	input := make([]complex128, 2048)
	for i := range input {
		input[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	buf := make([]complex128, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, input)
		if err := fft.Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineSimulation times the full PAMA board discrete-event
// simulation with real DSP execution — the heaviest end-to-end path.
func BenchmarkMachineSimulation(b *testing.B) {
	s := trace.ScenarioI()
	events, err := trace.PoissonEvents(s.Usage, 0.1, 2*trace.Period, 17)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		board, err := machine.New(machine.Config{
			Manager:    experiments.ManagerConfig(s),
			Events:     events,
			Periods:    2,
			ExecuteDSP: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := board.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineStatic times the comparator policy.
func BenchmarkBaselineStatic(b *testing.B) {
	s := trace.ScenarioI()
	tbl, err := params.BuildTable(experiments.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_, err := baseline.Run(baseline.Config{
			Table:          tbl,
			Usage:          s.Usage,
			ActualCharging: s.Charging,
			CapacityMax:    s.CapacityMax,
			CapacityMin:    s.CapacityMin,
			InitialCharge:  s.InitialCharge,
			Periods:        2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFTRealVsComplex2K compares the real-input path against
// the complex transform at the FORTE size.
func BenchmarkFFTRealVsComplex2K(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	realIn := make([]fixed.Q15, 2048)
	cplxIn := make([]fixed.Complex, 2048)
	for i := range realIn {
		v := 0.1 * rng.NormFloat64()
		realIn[i] = fixed.FromFloat(v)
		cplxIn[i] = fixed.CFromFloat(complex(v, 0))
	}
	b.Run("complex", func(b *testing.B) {
		table, err := fft.NewTwiddleTable(2048)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]fixed.Complex, 2048)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(buf, cplxIn)
			if err := table.ForwardFixed(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("real", func(b *testing.B) {
		tr, err := fft.NewRealTransformer(2048)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]fixed.Q15, 2048)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(buf, realIn)
			if _, err := tr.ForwardReal(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
