package main

import (
	"strings"
	"testing"

	"dpm/internal/signal"
)

func TestRunMixed(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 512, 6, "", true, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FORTE detector", "transient", "carrier", "noise", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleKind(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 512, 3, "carrier", false, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "transient") && !strings.Contains(out, "carrier") {
		t.Errorf("kind filter broken:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 1000, 3, "", true, 1); err == nil {
		t.Error("non-power-of-two buffer must error")
	}
	if err := run(&sb, 512, 3, "bogus", true, 1); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]signal.Kind{
		"transient": signal.Transient,
		"carrier":   signal.Carrier,
		"noise":     signal.NoiseOnly,
	} {
		got, err := parseKind(name)
		if err != nil || got != want {
			t.Errorf("parseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseKind("x"); err == nil {
		t.Error("unknown kind must error")
	}
}
