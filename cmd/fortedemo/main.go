// Command fortedemo runs the FORTE RF-transient detection pipeline
// on synthetic capture buffers and prints per-buffer verdicts plus a
// confusion summary:
//
//	fortedemo -count 30 -n 2048
//	fortedemo -kind carrier -count 5
//	fortedemo -mix              # mixed transient/carrier/noise stream
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpm/internal/fft"
	"dpm/internal/forte"
	"dpm/internal/report"
	"dpm/internal/signal"
	"dpm/internal/units"
)

func main() {
	n := flag.Int("n", 2048, "capture buffer length (power of two)")
	count := flag.Int("count", 12, "number of buffers to process")
	kindName := flag.String("kind", "", "signal kind (transient|carrier|noise); empty with -mix cycles all")
	mix := flag.Bool("mix", true, "cycle through all signal kinds")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := run(os.Stdout, *n, *count, *kindName, *mix, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "fortedemo:", err)
		os.Exit(1)
	}
}

func parseKind(name string) (signal.Kind, error) {
	switch name {
	case "transient":
		return signal.Transient, nil
	case "carrier":
		return signal.Carrier, nil
	case "noise":
		return signal.NoiseOnly, nil
	default:
		return 0, fmt.Errorf("unknown signal kind %q", name)
	}
}

func run(w io.Writer, n, count int, kindName string, mix bool, seed int64) error {
	det, err := forte.NewDetector(n, forte.DefaultConfig())
	if err != nil {
		return err
	}
	kinds := []signal.Kind{signal.Transient, signal.Carrier, signal.NoiseOnly}
	if kindName != "" {
		k, err := parseKind(kindName)
		if err != nil {
			return err
		}
		kinds = []signal.Kind{k}
	} else if !mix {
		kinds = []signal.Kind{signal.Transient}
	}

	sec20, err := fft.Seconds(n, 20e6)
	if err != nil {
		return err
	}
	sec80, err := fft.Seconds(n, 80e6)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "FORTE detector: %d-sample fixed-point FFT (modeled %s at 20 MHz, %s at 80 MHz)\n\n",
		n, units.FormatDuration(sec20), units.FormatDuration(sec80))

	t := report.NewTable("", "#", "input", "verdict", "energy", "occupied bins", "sweep (bins/frame)")
	var stats forte.Stats
	correct := 0
	for i := 0; i < count; i++ {
		kind := kinds[i%len(kinds)]
		buf, err := signal.Synthesize(kind, n, signal.DefaultConfig(), seed+int64(i))
		if err != nil {
			return err
		}
		res, err := det.Process(buf)
		if err != nil {
			return err
		}
		stats.Record(res)
		if (res.Verdict == forte.Detected) == (kind == signal.Transient) {
			correct++
		}
		sweep := "-"
		if res.Verdict == forte.Detected {
			c, err := forte.Classify(buf, forte.ClassifierConfig{})
			if err != nil {
				return err
			}
			sweep = fmt.Sprintf("%.2f", c.SweepBinsPerFrame)
			if c.Dispersed {
				sweep += " (dispersed)"
			}
		}
		t.AddRow(report.I(i), kind.String(), res.Verdict.String(),
			fmt.Sprintf("%.2e", res.Energy), report.I(res.OccupiedBins), sweep)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s\naccuracy: %d/%d\n", stats, correct, count)
	return nil
}
