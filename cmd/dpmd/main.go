// Command dpmd serves the dynamic power manager as a long-running
// HTTP JSON service: Algorithm 1 plans (/v1/plan), Algorithm 2
// parameter schedules (/v1/params), Algorithm 3 runtime updates
// (/v1/replan) and bounded simulations (/v1/simulate), plus the
// stateful fleet session layer (/v1/fleet/register, /v1/fleet/tick,
// /v1/fleet/bulk-tick, /v1/fleet/drain) that keeps a live Algorithm 3
// manager per device so ticks need no checkpoint round-trip, with
// /healthz (liveness), /readyz (readiness — 503 the moment a drain
// begins) and a /metrics page carrying both the legacy flat counters
// and Prometheus-format histograms. Repeated plan requests for the
// same scenario are served from an LRU cache, and a deadline-aware
// admission controller sheds saturated requests that cannot finish
// inside their deadline, with Retry-After on every overload 503.
//
//	dpmd -addr :8080                       # defaults
//	dpmd -addr 127.0.0.1:0 -pool 16        # bigger worker pool
//	dpmd -cache 1024 -timeout 5s           # larger cache, tighter SLO
//	dpmd -cache-shards 1                   # single-lock plan cache
//	dpmd -table-cache 512                  # more memoized (n,f) tables
//	dpmd -log-json                         # structured JSON request logs
//	dpmd -debug-addr 127.0.0.1:6060        # pprof on a second listener
//	dpmd -drain-grace 5s                   # readiness flips before the listener closes
//	dpmd -no-shed                          # queue-until-expired instead of shedding
//	dpmd -fleet-max-sessions 100000        # cap fleet sessions (503 + Retry-After beyond)
//	dpmd -fleet-idle-ttl 1h                # park idle sessions' checkpoints after an hour
//	dpmd -ingest-addr :8125                # StatsD UDP telemetry → live forecasts → divergence replans
//	dpmd -ingest-addr :8125 -ingest-flush 500ms -ingest-predictor exponential
//
// SIGINT/SIGTERM trigger a graceful shutdown that flips /readyz,
// waits out -drain-grace, then drains in-flight requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpm/internal/obs"
	"dpm/internal/params"
	"dpm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port)")
	pool := flag.Int("pool", 8, "worker pool size (max concurrent planning requests)")
	cacheEntries := flag.Int("cache", 256, "plan cache capacity in entries")
	cacheShards := flag.Int("cache-shards", 0,
		"plan cache shard count, rounded up to a power of two (0 = GOMAXPROCS rounded up, capped at 16; 1 = single lock)")
	tableCache := flag.Int("table-cache", params.DefaultTableCacheEntries,
		"memoized Algorithm 2 table cache capacity in hardware blocks")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout, including pool wait")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second, "graceful-shutdown drain deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	logJSON := flag.Bool("log-json", false, "emit structured JSON log lines instead of plain text")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this address (empty disables the profiler)")
	drainGrace := flag.Duration("drain-grace", 0,
		"keep the listener open this long after /readyz flips to 503 at shutdown, so load balancers observe not-ready before connections fail")
	noShed := flag.Bool("no-shed", false,
		"disable deadline-aware admission shedding; saturated requests queue until admitted or expired")
	chaosHold := flag.Duration("chaos-hold", 0,
		"hold every pooled request this long after it takes a worker slot — overload drills only")
	fleetPartitions := flag.Int("fleet-partitions", 0,
		"fleet session partition count, rounded up to a power of two (0 = GOMAXPROCS rounded up, capped at 16)")
	fleetMaxSessions := flag.Int("fleet-max-sessions", 0,
		"cap on live fleet sessions; registrations beyond it answer 503 with Retry-After (0 = unlimited)")
	fleetIdleTTL := flag.Duration("fleet-idle-ttl", 0,
		"evict fleet sessions untouched this long, parking their checkpoints for handback on re-register (0 = never evict)")
	ingestAddr := flag.String("ingest-addr", "",
		"run the StatsD telemetry ingestion daemon on this UDP address; registered devices stream counters/gauges and sustained forecast divergence replans their sessions (empty disables)")
	ingestFlush := flag.Duration("ingest-flush", time.Second,
		"ingestion flush interval: each window closes one observed schedule slot per device (0 = manual flushes via POST /v1/ingest/flush only)")
	ingestPredictor := flag.String("ingest-predictor", "last-period",
		"forecast estimator for observed periods: last-period, moving-average or exponential")
	divergenceThreshold := flag.Float64("divergence-threshold", 0.25,
		"observed-vs-planned relative error above which an ingestion slot counts toward a replan")
	ingestEventEnergy := flag.Float64("ingest-event-energy", 1,
		"joules per counted ingestion event (converts device counters to slot energy)")
	flag.Parse()

	cfg := server.Config{
		Addr:             *addr,
		PoolSize:         *pool,
		CacheEntries:     *cacheEntries,
		CacheShards:      *cacheShards,
		RequestTimeout:   *timeout,
		MaxBodyBytes:     *maxBody,
		DebugAddr:        *debugAddr,
		DrainGrace:       *drainGrace,
		DisableShedding:  *noShed,
		ChaosHold:        *chaosHold,
		FleetPartitions:  *fleetPartitions,
		FleetMaxSessions: *fleetMaxSessions,
		FleetIdleTTL:     *fleetIdleTTL,
	}
	if *ingestAddr != "" {
		cfg.IngestAddr = *ingestAddr
		cfg.IngestFlush = *ingestFlush
		cfg.IngestPredictor = *ingestPredictor
		cfg.DivergenceThreshold = *divergenceThreshold
		cfg.IngestEventEnergyJ = *ingestEventEnergy
	}
	if !*quiet {
		if *logJSON {
			cfg.AccessLog = obs.NewLogger(os.Stderr, true)
		} else {
			cfg.Logger = log.New(os.Stderr, "dpmd ", log.LstdFlags|log.Lmsgprefix)
		}
	}
	logStartupConfig(cfg, *tableCache, *shutdownTimeout)
	if err := run(cfg, *tableCache, *shutdownTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "dpmd:", err)
		os.Exit(1)
	}
}

// logStartupConfig emits the effective configuration once at startup —
// every tunable that shapes capacity or latency, resolved after flag
// parsing — so a deployment's settings are recoverable from its first
// log line.
func logStartupConfig(cfg server.Config, tableCacheEntries int, shutdownTimeout time.Duration) {
	fields := []obs.Field{
		obs.F("addr", cfg.Addr),
		obs.F("pool", cfg.PoolSize),
		obs.F("cache_entries", cfg.CacheEntries),
		obs.F("cache_shards", cfg.CacheShards),
		obs.F("table_cache_entries", tableCacheEntries),
		obs.F("request_timeout", cfg.RequestTimeout.String()),
		obs.F("shutdown_timeout", shutdownTimeout.String()),
		obs.F("max_body_bytes", cfg.MaxBodyBytes),
		obs.F("debug_addr", cfg.DebugAddr),
		obs.F("drain_grace", cfg.DrainGrace.String()),
		obs.F("no_shed", cfg.DisableShedding),
		obs.F("fleet_partitions", cfg.FleetPartitions),
		obs.F("fleet_max_sessions", cfg.FleetMaxSessions),
		obs.F("fleet_idle_ttl", cfg.FleetIdleTTL.String()),
		obs.F("ingest_addr", cfg.IngestAddr),
		obs.F("ingest_flush", cfg.IngestFlush.String()),
		obs.F("ingest_predictor", cfg.IngestPredictor),
		obs.F("divergence_threshold", cfg.DivergenceThreshold),
		obs.F("log_json", cfg.AccessLog != nil),
	}
	if cfg.AccessLog != nil {
		cfg.AccessLog.Event("config", fields...)
		return
	}
	if cfg.Logger != nil {
		// Render the same fields in the legacy logger's key=value style.
		line := "config"
		for _, f := range fields {
			line += fmt.Sprintf(" %s=%v", f.Key, f.Value)
		}
		cfg.Logger.Print(line)
	}
}

// testReady, when non-nil, receives the bound listen address once
// the server is up. Only tests set it.
var testReady func(addr string)

func run(cfg server.Config, tableCacheEntries int, shutdownTimeout time.Duration) error {
	if err := params.ResizeSharedTableCache(tableCacheEntries); err != nil {
		return fmt.Errorf("table cache: %w", err)
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if testReady != nil {
		go func() {
			for srv.Addr() == "" {
				time.Sleep(time.Millisecond)
			}
			testReady(srv.Addr())
		}()
	}
	return srv.Run(ctx, shutdownTimeout)
}
