// Command dpmd serves the dynamic power manager as a long-running
// HTTP JSON service: Algorithm 1 plans (/v1/plan), Algorithm 2
// parameter schedules (/v1/params), Algorithm 3 runtime updates
// (/v1/replan) and bounded simulations (/v1/simulate), with
// /healthz and plain-text /metrics. Repeated plan requests for the
// same scenario are served from an LRU cache.
//
//	dpmd -addr :8080                       # defaults
//	dpmd -addr 127.0.0.1:0 -pool 16        # bigger worker pool
//	dpmd -cache 1024 -timeout 5s           # larger cache, tighter SLO
//	dpmd -cache-shards 1                   # single-lock plan cache
//	dpmd -table-cache 512                  # more memoized (n,f) tables
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpm/internal/params"
	"dpm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port)")
	pool := flag.Int("pool", 8, "worker pool size (max concurrent planning requests)")
	cacheEntries := flag.Int("cache", 256, "plan cache capacity in entries")
	cacheShards := flag.Int("cache-shards", 0,
		"plan cache shard count, rounded up to a power of two (0 = GOMAXPROCS rounded up, capped at 16; 1 = single lock)")
	tableCache := flag.Int("table-cache", params.DefaultTableCacheEntries,
		"memoized Algorithm 2 table cache capacity in hardware blocks")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout, including pool wait")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second, "graceful-shutdown drain deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	flag.Parse()

	logger := log.New(os.Stderr, "dpmd ", log.LstdFlags|log.Lmsgprefix)
	if *quiet {
		logger = nil
	}
	cfg := server.Config{
		Addr:           *addr,
		PoolSize:       *pool,
		CacheEntries:   *cacheEntries,
		CacheShards:    *cacheShards,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Logger:         logger,
	}
	if err := run(cfg, *tableCache, *shutdownTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "dpmd:", err)
		os.Exit(1)
	}
}

// testReady, when non-nil, receives the bound listen address once
// the server is up. Only tests set it.
var testReady func(addr string)

func run(cfg server.Config, tableCacheEntries int, shutdownTimeout time.Duration) error {
	if err := params.ResizeSharedTableCache(tableCacheEntries); err != nil {
		return fmt.Errorf("table cache: %w", err)
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if testReady != nil {
		go func() {
			for srv.Addr() == "" {
				time.Sleep(time.Millisecond)
			}
			testReady(srv.Addr())
		}()
	}
	return srv.Run(ctx, shutdownTimeout)
}
