package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"dpm/internal/params"
	"dpm/internal/server"
)

// TestRunServesAndStopsOnSIGTERM is the daemon smoke test: bring up
// run() on a loopback port, hit /healthz and /v1/plan with the
// checked-in example body, then deliver SIGTERM and require a clean
// exit — the same lifecycle CI drives against the built binary.
func TestRunServesAndStopsOnSIGTERM(t *testing.T) {
	addrCh := make(chan string, 1)
	testReady = func(addr string) { addrCh <- addr }
	defer func() { testReady = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run(server.Config{
			Addr:           "127.0.0.1:0",
			PoolSize:       2,
			CacheEntries:   16,
			RequestTimeout: 5 * time.Second,
			MaxBodyBytes:   1 << 20,
		}, params.DefaultTableCacheEntries, 5*time.Second)
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not come up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}

	body, err := os.ReadFile("../../examples/service/plan_request.json")
	if err != nil {
		t.Fatalf("reading example plan request: %v", err)
	}
	resp, err = http.Post(base+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	planBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading plan response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d, body %s", resp.StatusCode, planBody)
	}
	var plan struct {
		Allocation []float64 `json:"allocation"`
		Feasible   bool      `json:"feasible"`
	}
	if err := json.Unmarshal(planBody, &plan); err != nil {
		t.Fatalf("decoding plan response: %v", err)
	}
	if len(plan.Allocation) == 0 || !plan.Feasible {
		t.Fatalf("unexpected plan: %s", planBody)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
