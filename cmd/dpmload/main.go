// Command dpmload is a load generator for the dpmd planning service:
// it drives /v1/plan with a closed loop (fixed concurrency, max
// throughput) or an open loop (target QPS, arrival-time latency),
// optionally sweeping concurrency or QPS, and reports sustained
// plans/sec with a latency histogram and p50/p90/p99.
//
//	dpmd -addr 127.0.0.1:8080 &
//	dpmload -addr http://127.0.0.1:8080 -mode closed -concurrency 8 -duration 10s
//	dpmload -addr http://127.0.0.1:8080 -mode open -qps 500 -duration 10s
//	dpmload -addr http://127.0.0.1:8080 -sweep 1,2,4,8 -binary -out run.json
//
// The -out run file feeds benchdiff -service, which compares
// plans/sec (lower is a regression) and p50/p99 (higher is a
// regression) against the entries recorded in BENCH_service.json.
//
// By default every request is identical, so after the first miss the
// run measures the cache-hit serving path — the realistic steady
// state for a fleet replaying known scenarios. -spread N cycles N
// distinct cache keys to push the miss ratio up and exercise the
// planning core itself.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpm/internal/scenario"
	"dpm/internal/server"
	"dpm/internal/server/client"
	"dpm/internal/trace"
)

// config is one load run, resolved from flags (testable without a
// process boundary).
type config struct {
	Addr        string
	Mode        string // "closed" or "open"
	Concurrency int    // closed mode: worker count
	QPS         int    // open mode: target arrival rate
	Duration    time.Duration
	Warmup      time.Duration
	Scenario    string
	Planner     string
	Binary      bool
	Spread      int // distinct cache keys to cycle (0 or 1 = one key)
}

// row is one run's measurement, in the units BENCH_service.json
// records.
type row struct {
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency,omitempty"`
	QPS         int     `json:"qps,omitempty"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	PlansPerSec float64 `json:"plans_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// runFile is the -out schema benchdiff -service consumes.
type runFile struct {
	Addr string         `json:"addr"`
	Rows map[string]row `json:"rows"`
}

// label names a run row: closed_c8, open_q500, with _bin for the
// binary codec.
func (c config) label() string {
	var b strings.Builder
	if c.Mode == "open" {
		fmt.Fprintf(&b, "open_q%d", c.QPS)
	} else {
		fmt.Fprintf(&b, "closed_c%d", c.Concurrency)
	}
	if c.Binary {
		b.WriteString("_bin")
	}
	return b.String()
}

// defaultDriverBound mirrors the Algorithm 1 driver's default
// iteration cap (pipeline treats MaxIterations 0 as 16).
const defaultDriverBound = 16

// requestFor builds the i-th request variant. Spread cycles
// MaxIterations through values at or above the default driver bound,
// which leaves the computed plan identical but the cache key — and
// therefore the work — distinct.
func (c config) requestFor(s trace.Scenario, i int) server.PlanRequest {
	req := server.PlanRequest{Scenario: s, Planner: c.Planner}
	if c.Spread > 1 {
		spread := c.Spread
		if max := scenario.MaxIterationsLimit - defaultDriverBound; spread > max {
			spread = max
		}
		req.MaxIterations = defaultDriverBound + i%spread
	}
	return req
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	err     error
}

// collector accumulates samples after warmup.
type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	errors    int64
	started   time.Time // measurement window start
}

func (col *collector) add(s sample) {
	col.mu.Lock()
	defer col.mu.Unlock()
	if s.err != nil {
		col.errors++
		return
	}
	col.latencies = append(col.latencies, s.latency)
}

// result is one run's measurement plus its sorted latencies (for the
// histogram printout).
type result struct {
	row       row
	latencies []time.Duration
}

// run drives one configured load shape and returns its measurement.
func run(ctx context.Context, cfg config) (result, error) {
	s, err := trace.ByName(cfg.Scenario)
	if err != nil {
		return result{}, err
	}
	cli := client.New(cfg.Addr, &http.Client{Timeout: 30 * time.Second})
	if err := cli.Healthz(ctx); err != nil {
		return result{}, fmt.Errorf("service not reachable: %w", err)
	}

	do := func(ctx context.Context, i int) error {
		req := cfg.requestFor(s, i)
		if cfg.Binary {
			_, _, err := cli.PlanBinary(ctx, req)
			return err
		}
		_, _, err := cli.Plan(ctx, req)
		return err
	}

	col := &collector{}
	var measuring atomic.Bool
	var seq atomic.Int64

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	switch cfg.Mode {
	case "closed":
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					i := int(seq.Add(1))
					start := time.Now()
					err := do(runCtx, i)
					if runCtx.Err() != nil {
						return // shutdown race, not a service error
					}
					if measuring.Load() {
						col.add(sample{latency: time.Since(start), err: err})
					}
				}
			}()
		}
	case "open":
		if cfg.QPS <= 0 {
			return result{}, fmt.Errorf("open mode needs -qps > 0")
		}
		interval := time.Second / time.Duration(cfg.QPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ticker.Stop()
			var inner sync.WaitGroup
			defer inner.Wait()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-ticker.C:
				}
				i := int(seq.Add(1))
				inner.Add(1)
				go func() {
					defer inner.Done()
					start := time.Now()
					err := do(runCtx, i)
					if runCtx.Err() != nil {
						return
					}
					if measuring.Load() {
						col.add(sample{latency: time.Since(start), err: err})
					}
				}()
			}
		}()
	default:
		return result{}, fmt.Errorf("unknown mode %q (want closed or open)", cfg.Mode)
	}

	// Warmup, then open the measurement window.
	select {
	case <-time.After(cfg.Warmup):
	case <-ctx.Done():
		cancel()
		wg.Wait()
		return result{}, ctx.Err()
	}
	col.started = time.Now()
	measuring.Store(true)
	select {
	case <-time.After(cfg.Duration):
	case <-ctx.Done():
	}
	measuring.Store(false)
	elapsed := time.Since(col.started)
	cancel()
	wg.Wait()

	col.mu.Lock()
	defer col.mu.Unlock()
	lats := col.latencies
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	r := row{
		Mode:      cfg.Mode,
		DurationS: elapsed.Seconds(),
		Requests:  int64(len(lats)) + col.errors,
		Errors:    col.errors,
	}
	if cfg.Mode == "open" {
		r.QPS = cfg.QPS
	} else {
		r.Concurrency = cfg.Concurrency
	}
	if elapsed > 0 {
		r.PlansPerSec = float64(len(lats)) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		r.P50Ms = ms(percentile(lats, 0.50))
		r.P90Ms = ms(percentile(lats, 0.90))
		r.P99Ms = ms(percentile(lats, 0.99))
		r.MaxMs = ms(lats[len(lats)-1])
	}
	return result{row: r, latencies: lats}, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// percentile reads the p-th quantile from sorted latencies (nearest
// rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// histogram prints a doubling-bucket latency histogram.
func histogram(w *strings.Builder, sorted []time.Duration) {
	if len(sorted) == 0 {
		return
	}
	bound := 100 * time.Microsecond
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j] < bound {
			j++
		}
		if n := j - i; n > 0 {
			bar := strings.Repeat("#", 1+n*40/len(sorted))
			fmt.Fprintf(w, "    < %-8s %7d  %s\n", bound, n, bar)
		}
		i = j
		bound *= 2
	}
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "dpmd base URL")
	mode := flag.String("mode", "closed", "load shape: closed (fixed concurrency) or open (target QPS)")
	concurrency := flag.Int("concurrency", 4, "closed mode: concurrent workers")
	qps := flag.Int("qps", 0, "open mode: target arrival rate")
	duration := flag.Duration("duration", 10*time.Second, "measured window per run")
	warmup := flag.Duration("warmup", 1*time.Second, "warmup excluded from stats")
	scen := flag.String("scenario", "I", "trace scenario to plan (I or II)")
	planner := flag.String("planner", "", "planner backend (empty = server default)")
	binary := flag.Bool("binary", false, "use the binary plan codec on both axes")
	spread := flag.Int("spread", 0, "distinct cache keys to cycle (0 = one key, cache-hot)")
	out := flag.String("out", "", "write a benchdiff -service run file here")
	sweepFlag := flag.String("sweep", "", "comma-separated concurrency (closed) or QPS (open) values to sweep")
	flag.Parse()

	base := config{
		Addr: *addr, Mode: *mode, Concurrency: *concurrency, QPS: *qps,
		Duration: *duration, Warmup: *warmup, Scenario: *scen,
		Planner: *planner, Binary: *binary, Spread: *spread,
	}

	var runs []config
	if *sweepFlag == "" {
		runs = []config{base}
	} else {
		for _, tok := range strings.Split(*sweepFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "dpmload: bad sweep value %q\n", tok)
				os.Exit(2)
			}
			c := base
			if c.Mode == "open" {
				c.QPS = n
			} else {
				c.Concurrency = n
			}
			runs = append(runs, c)
		}
	}

	file := runFile{Addr: *addr, Rows: map[string]row{}}
	failed := false
	for _, cfg := range runs {
		res, err := run(context.Background(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpmload:", err)
			os.Exit(2)
		}
		r := res.row
		file.Rows[cfg.label()] = r
		var b strings.Builder
		fmt.Fprintf(&b, "%-14s %9.1f plans/sec  p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms  (%d reqs, %d errors)\n",
			cfg.label(), r.PlansPerSec, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs, r.Requests, r.Errors)
		if len(runs) == 1 {
			histogram(&b, res.latencies)
		}
		fmt.Print(b.String())
		if r.Errors > 0 {
			failed = true
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpmload:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dpmload:", err)
			os.Exit(2)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "dpmload: run recorded errors")
		os.Exit(1)
	}
}
