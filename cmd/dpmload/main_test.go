package main

import (
	"context"
	"testing"
	"time"

	"dpm/internal/server"
	"dpm/internal/trace"
)

// boot starts a real dpmd on a loopback port for the load generator
// to drive.
func boot(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})
	return "http://" + srv.Addr()
}

func TestClosedLoop(t *testing.T) {
	addr := boot(t)
	for _, binary := range []bool{false, true} {
		res, err := run(context.Background(), config{
			Addr: addr, Mode: "closed", Concurrency: 2,
			Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond,
			Scenario: "I", Binary: binary,
		})
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		r := res.row
		if r.Errors != 0 {
			t.Errorf("binary=%v: %d errors", binary, r.Errors)
		}
		if r.Requests == 0 || r.PlansPerSec <= 0 {
			t.Errorf("binary=%v: no throughput measured: %+v", binary, r)
		}
		if r.P50Ms <= 0 || r.P99Ms < r.P50Ms || r.MaxMs < r.P99Ms {
			t.Errorf("binary=%v: inconsistent percentiles: %+v", binary, r)
		}
		if int64(len(res.latencies)) != r.Requests {
			t.Errorf("binary=%v: %d latencies for %d requests", binary, len(res.latencies), r.Requests)
		}
	}
}

func TestOpenLoop(t *testing.T) {
	addr := boot(t)
	res, err := run(context.Background(), config{
		Addr: addr, Mode: "open", QPS: 200,
		Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond,
		Scenario: "II",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.row.Errors != 0 {
		t.Errorf("%d errors", res.row.Errors)
	}
	if res.row.Requests == 0 {
		t.Error("no requests measured")
	}
}

func TestSpreadDistinctKeys(t *testing.T) {
	cfg := config{Spread: 8}
	s := mustScenario(t)
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		seen[cfg.requestFor(s, i).MaxIterations] = true
	}
	if len(seen) != 8 {
		t.Errorf("spread 8 produced %d distinct keys", len(seen))
	}
	// Spread off: every request identical.
	cfg.Spread = 0
	if got := cfg.requestFor(s, 5); got.MaxIterations != 0 {
		t.Errorf("spread 0 set MaxIterations %d", got.MaxIterations)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run(context.Background(), config{Addr: "http://127.0.0.1:1", Mode: "closed", Scenario: "I"}); err == nil {
		t.Error("unreachable service: want error")
	}
	addr := boot(t)
	if _, err := run(context.Background(), config{Addr: addr, Mode: "sideways", Scenario: "I"}); err == nil {
		t.Error("bad mode: want error")
	}
	if _, err := run(context.Background(), config{Addr: addr, Mode: "open", QPS: 0, Scenario: "I"}); err == nil {
		t.Error("open without qps: want error")
	}
	if _, err := run(context.Background(), config{Addr: addr, Mode: "closed", Scenario: "XVII"}); err == nil {
		t.Error("unknown scenario: want error")
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		cfg  config
		want string
	}{
		{config{Mode: "closed", Concurrency: 8}, "closed_c8"},
		{config{Mode: "open", QPS: 500}, "open_q500"},
		{config{Mode: "closed", Concurrency: 2, Binary: true}, "closed_c2_bin"},
	}
	for _, c := range cases {
		if got := c.cfg.label(); got != c.want {
			t.Errorf("label(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
}

func mustScenario(t *testing.T) trace.Scenario {
	t.Helper()
	s, err := trace.ByName("I")
	if err != nil {
		t.Fatal(err)
	}
	return s
}
