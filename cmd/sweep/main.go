// Command sweep runs the sensitivity extensions of the evaluation:
// how the proposed manager degrades as the battery shrinks, the
// charging forecast gets noisy, or parameter switching gets
// expensive.
//
//	sweep -kind capacity -scenario I
//	sweep -kind jitter   -scenario II -periods 4
//	sweep -kind overhead -scenario I -csv
//	sweep -kind capacity -config scenario.json   # same JSON file as dpmsim/dpmd
//	sweep -kind capacity -strategy yds           # swept sims plan with YDS
//	sweep -compare                               # rank all planner backends
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"dpm/internal/battery"
	"dpm/internal/experiments"
	"dpm/internal/pipeline"
	"dpm/internal/predict"
	"dpm/internal/report"
	scen "dpm/internal/scenario"
	"dpm/internal/trace"

	// Register the alternative planner backends (yds, bunde) for
	// -strategy and -compare.
	_ "dpm/internal/strategy"
)

func main() {
	kind := flag.String("kind", "capacity", "sweep kind: capacity|jitter|overhead|tau|endurance|montecarlo")
	scenario := flag.String("scenario", "I", "scenario name (I or II)")
	configPath := flag.String("config", "", "load a custom scenario from a JSON file (overrides -scenario)")
	periods := flag.Int("periods", 2, "periods per point (endurance: mission length, default 40)")
	seed := flag.Int64("seed", 1, "seed for jitter realization")
	csv := flag.Bool("csv", false, "emit CSV")
	strategy := flag.String("strategy", "", "planner strategy for the swept simulations (paper|yds|bunde; default paper)")
	compare := flag.Bool("compare", false, "rank every registered planner strategy on the paper scenarios and exit")
	flag.Parse()

	if err := run(os.Stdout, *kind, *scenario, *configPath, *periods, *seed, *csv, *strategy, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind, scenarioName, configPath string, periods int, seed int64, csv bool, strategy string, compare bool) error {
	if _, err := pipeline.StrategyByName(strategy); err != nil {
		return err
	}
	if compare {
		table, _, err := experiments.StrategyTable(context.Background(), periods)
		if err != nil {
			return err
		}
		if csv {
			return table.CSV(w)
		}
		return table.Render(w)
	}
	var s trace.Scenario
	var err error
	if configPath != "" {
		s, err = trace.LoadScenario(configPath)
	} else {
		s, err = trace.ByName(scenarioName)
	}
	if err != nil {
		return err
	}
	if err := scen.Validate(s); err != nil {
		return err
	}
	var (
		table *report.Table
	)
	switch kind {
	case "capacity":
		points, err := experiments.CapacitySweep(s,
			[]float64{0.25, 0.5, 0.75, 1, 1.5, 2, 4}, periods, strategy)
		if err != nil {
			return err
		}
		table = experiments.SweepTable(
			fmt.Sprintf("Battery capacity sweep, scenario %s (Cmax multiples of the default %.1f J)",
				s.Name, s.CapacityMax),
			"Cmax ×", points)
	case "jitter":
		points, err := experiments.JitterSweep(s,
			[]float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}, periods, seed, strategy)
		if err != nil {
			return err
		}
		table = experiments.SweepTable(
			fmt.Sprintf("Charging forecast-error sweep, scenario %s", s.Name),
			"Jitter", points)
	case "overhead":
		points, err := experiments.OverheadSweep(s,
			[]float64{0, 0.01, 0.05, 0.2, 1, 5}, periods, strategy)
		if err != nil {
			return err
		}
		table = experiments.SweepTable(
			fmt.Sprintf("Switching-overhead sweep, scenario %s (OHn = OHf)", s.Name),
			"Overhead (J)", points)
	case "tau":
		if strategy != "" && strategy != pipeline.DefaultStrategy {
			return fmt.Errorf("-strategy applies to the capacity, jitter and overhead sweeps")
		}
		t, err := experiments.TauSweepTable(s, []int{4, 6, 12, 24, 48}, periods)
		if err != nil {
			return err
		}
		table = t
	case "montecarlo":
		if strategy != "" && strategy != pipeline.DefaultStrategy {
			return fmt.Errorf("-strategy applies to the capacity, jitter and overhead sweeps")
		}
		t, err := experiments.MonteCarloTable(s,
			[]float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}, 32, periods, seed)
		if err != nil {
			return err
		}
		table = t
	case "endurance":
		if strategy != "" && strategy != pipeline.DefaultStrategy {
			return fmt.Errorf("-strategy applies to the capacity, jitter and overhead sweeps")
		}
		missionPeriods := periods
		if missionPeriods <= 2 {
			missionPeriods = 40
		}
		res, err := experiments.Endurance(experiments.EnduranceConfig{
			Scenario:                  s,
			Periods:                   missionPeriods,
			SolarDegradationPerPeriod: 0.01,
			Jitter:                    0.1,
			Seed:                      seed,
			Aging: battery.AgingConfig{
				FadePerJoule:           2e-5,
				SelfDischargePerSecond: 1e-5,
			},
			Predictor: predict.NewLastPeriod(),
		})
		if err != nil {
			return err
		}
		table = experiments.EnduranceTable(res, missionPeriods/10)
	default:
		return fmt.Errorf("unknown sweep kind %q", kind)
	}
	if csv {
		return table.CSV(w)
	}
	return table.Render(w)
}
