package main

import (
	"path/filepath"
	"strings"
	"testing"

	"dpm/internal/trace"
)

func TestRunKinds(t *testing.T) {
	for kind, marker := range map[string]string{
		"capacity": "Battery capacity sweep",
		"jitter":   "forecast-error sweep",
		"overhead": "Switching-overhead sweep",
	} {
		var sb strings.Builder
		if err := run(&sb, kind, "I", "", 1, 1, false, "", false); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(sb.String(), marker) {
			t.Errorf("%s output missing %q", kind, marker)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "overhead", "II", "", 1, 1, true, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "Overhead (J),") {
		t.Errorf("CSV header wrong: %q", sb.String()[:30])
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "bogus", "I", "", 1, 1, false, "", false); err == nil {
		t.Error("unknown kind must error")
	}
	if err := run(&sb, "capacity", "X", "", 1, 1, false, "", false); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestRunEndurance(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "endurance", "I", "", 10, 1, false, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Endurance") {
		t.Errorf("endurance output wrong:\n%s", sb.String())
	}
}

func TestRunMonteCarlo(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "montecarlo", "I", "", 2, 1, false, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Monte-Carlo") {
		t.Errorf("monte carlo output wrong:\n%s", sb.String())
	}
}

func TestRunTau(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "tau", "I", "", 2, 1, false, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "granularity") {
		t.Errorf("tau sweep output wrong:\n%s", sb.String())
	}
}

func TestRunCustomConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custom.json")
	if err := trace.SaveScenario(trace.ScenarioII(), path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, "capacity", "", path, 1, 1, false, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "scenario II") {
		t.Errorf("custom config not loaded:\n%s", sb.String())
	}
	if err := run(&sb, "capacity", "", filepath.Join(t.TempDir(), "nope.json"), 1, 1, false, "", false); err == nil {
		t.Error("missing config file must error")
	}
}

func TestRunRejectsUnphysicalConfig(t *testing.T) {
	s := trace.ScenarioI()
	grid := *s.Charging
	grid.Values = append([]float64(nil), s.Charging.Values...)
	grid.Values[0] = 1e308 // the fuzzer's overflow find: reject before planning
	s.Charging = &grid
	path := filepath.Join(t.TempDir(), "hostile.json")
	if err := trace.SaveScenario(s, path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run(&sb, "capacity", "", path, 1, 1, false, "", false)
	if err == nil {
		t.Fatal("unphysical charging power must be rejected")
	}
	if !strings.Contains(err.Error(), "charging") {
		t.Errorf("error %q does not name the offending schedule", err)
	}
}

func TestRunCompare(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "capacity", "I", "", 1, 1, false, "", true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"paper", "yds", "bunde", "Rank"} {
		if !strings.Contains(out, name) {
			t.Errorf("comparison report missing %q:\n%s", name, out)
		}
	}
}

func TestRunStrategy(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "capacity", "I", "", 1, 1, false, "yds", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Battery capacity sweep") {
		t.Errorf("strategy sweep output wrong:\n%s", sb.String())
	}
	if err := run(&sb, "capacity", "I", "", 1, 1, false, "vaporware", false); err == nil {
		t.Error("unknown strategy must error")
	}
	if err := run(&sb, "tau", "I", "", 1, 1, false, "yds", false); err == nil {
		t.Error("tau sweep with a non-default strategy must error")
	}
}
