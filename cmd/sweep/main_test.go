package main

import (
	"strings"
	"testing"
)

func TestRunKinds(t *testing.T) {
	for kind, marker := range map[string]string{
		"capacity": "Battery capacity sweep",
		"jitter":   "forecast-error sweep",
		"overhead": "Switching-overhead sweep",
	} {
		var sb strings.Builder
		if err := run(&sb, kind, "I", 1, 1, false); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(sb.String(), marker) {
			t.Errorf("%s output missing %q", kind, marker)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "overhead", "II", 1, 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "Overhead (J),") {
		t.Errorf("CSV header wrong: %q", sb.String()[:30])
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "bogus", "I", 1, 1, false); err == nil {
		t.Error("unknown kind must error")
	}
	if err := run(&sb, "capacity", "X", 1, 1, false); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestRunEndurance(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "endurance", "I", 10, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Endurance") {
		t.Errorf("endurance output wrong:\n%s", sb.String())
	}
}

func TestRunMonteCarlo(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "montecarlo", "I", 2, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Monte-Carlo") {
		t.Errorf("monte carlo output wrong:\n%s", sb.String())
	}
}

func TestRunTau(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "tau", "I", 2, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "granularity") {
		t.Errorf("tau sweep output wrong:\n%s", sb.String())
	}
}
