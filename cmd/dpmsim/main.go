// Command dpmsim runs the dynamic power manager end-to-end on a
// scenario, either analytically (the closed-loop manager/battery
// model behind the paper's tables) or on the full PAMA board
// discrete-event simulation with FORTE workloads:
//
//	dpmsim -scenario I  -periods 2            # analytic, paper defaults
//	dpmsim -scenario II -machine -periods 4   # full board simulation
//	dpmsim -scenario I  -jitter 0.2 -seed 7   # perturbed supply
//	dpmsim -scenario I  -policy even          # Algorithm 3 ablation
//	dpmsim -scenario I  -strategy yds         # alternative planner backend
//	dpmsim -scenario I  -trace                # per-slot rows
//	dpmsim -scenario I  -machine -faultrate 2 # seeded fault injection
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"dpm/internal/dpm"
	"dpm/internal/experiments"
	"dpm/internal/pipeline"
	"dpm/internal/report"
	scen "dpm/internal/scenario"
	"dpm/internal/schedule"
	"dpm/internal/trace"
	"dpm/internal/units"

	// Register the alternative planner backends (yds, bunde) for
	// -strategy.
	_ "dpm/internal/strategy"
)

func main() {
	scenario := flag.String("scenario", "I", "scenario name (I or II)")
	configPath := flag.String("config", "", "load a custom scenario from a JSON file (overrides -scenario)")
	periods := flag.Int("periods", 2, "number of charging periods to simulate")
	useMachine := flag.Bool("machine", false, "run the full PAMA board discrete-event simulation")
	jitter := flag.Float64("jitter", 0, "multiplicative jitter on the actual charging schedule [0,1)")
	seed := flag.Int64("seed", 1, "random seed for jitter and event traces")
	policy := flag.String("policy", "proportional", "Algorithm 3 redistribution policy (proportional|even)")
	strategy := flag.String("strategy", "", "planner strategy for the initial allocation (paper|yds|bunde; default paper)")
	eventScale := flag.Float64("events", 0.1, "event-rate scale (events/s per W of scheduled usage)")
	gang := flag.Bool("gang", false, "gang-schedule each capture across all active workers (machine mode)")
	showTrace := flag.Bool("trace", false, "print per-slot records")
	plot := flag.Bool("plot", false, "render plan vs used power as an ASCII chart (analytic mode)")
	faultRate := flag.Float64("faultrate", 0, "fault-rate multiplier for seeded fault injection (machine mode; 0 disables)")
	faultSeed := flag.Int64("faultseed", 1, "random seed for the generated fault plan")
	noReplan := flag.Bool("noreplan", false, "disable the degraded re-plan after a worker death (ablation)")
	flag.Parse()

	if err := run(os.Stdout, *scenario, *configPath, *periods, *useMachine, *jitter, *seed, *policy, *strategy, *eventScale, *gang, *showTrace, *plot, *faultRate, *faultSeed, *noReplan); err != nil {
		fmt.Fprintln(os.Stderr, "dpmsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, scenarioName, configPath string, periods int, useMachine bool,
	jitter float64, seed int64, policy, strategy string, eventScale float64, gang, showTrace, plot bool,
	faultRate float64, faultSeed int64, noReplan bool) error {

	if _, err := pipeline.StrategyByName(strategy); err != nil {
		return err
	}

	var s trace.Scenario
	var err error
	if configPath != "" {
		s, err = trace.LoadScenario(configPath)
	} else {
		s, err = trace.ByName(scenarioName)
	}
	if err != nil {
		return err
	}
	if err := scen.Validate(s); err != nil {
		return err
	}
	var pol dpm.RedistributePolicy
	switch policy {
	case "proportional":
		pol = dpm.Proportional
	case "even":
		pol = dpm.Even
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}
	actual := s.Charging
	if jitter > 0 {
		actual = trace.Perturb(s.Charging, jitter, seed)
	}

	if !useMachine && faultRate > 0 {
		return fmt.Errorf("fault injection requires -machine")
	}
	if useMachine {
		return runMachine(w, s, pol, strategy, actual, periods, seed, eventScale, gang, showTrace,
			faultRate, faultSeed, noReplan)
	}
	return runAnalytic(w, s, pol, strategy, actual, periods, showTrace, plot)
}

func runAnalytic(w io.Writer, s trace.Scenario, pol dpm.RedistributePolicy, strategy string,
	actual *schedule.Grid, periods int, showTrace, plot bool) error {

	res, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
		Scenario:       s,
		Params:         experiments.PaperParams(),
		Policy:         pol,
		Planner:        strategy,
		ActualCharging: actual,
		Periods:        periods,
		SyncCharge:     true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %s, %d period(s), analytic model\n", s.Name, periods)
	fmt.Fprintf(w, "  supplied      %s\n", units.FormatEnergy(res.Battery.TotalSupplied))
	fmt.Fprintf(w, "  delivered     %s\n", units.FormatEnergy(res.Battery.TotalDrawn))
	fmt.Fprintf(w, "  wasted        %s\n", units.FormatEnergy(res.Battery.Wasted))
	fmt.Fprintf(w, "  undersupplied %s\n", units.FormatEnergy(res.Battery.Undersupplied))
	fmt.Fprintf(w, "  utilization   %.1f%%\n", 100*res.Battery.Utilization)
	fmt.Fprintf(w, "  switches      %d\n", res.Switches)
	if plot {
		chart := report.NewChart("plan vs used power per slot", "W")
		planned := make([]float64, len(res.Records))
		used := make([]float64, len(res.Records))
		for i, r := range res.Records {
			planned[i], used[i] = r.Planned, r.UsedPower
		}
		if err := chart.AddSeries("plan", planned); err != nil {
			return err
		}
		if err := chart.AddSeries("used", used); err != nil {
			return err
		}
		if err := chart.Render(w); err != nil {
			return err
		}
	}
	if !showTrace {
		return nil
	}
	t := report.NewTable("", "t (s)", "plan (W)", "point", "used (W)", "supplied (W)", "charge (J)")
	for _, r := range res.Records {
		t.AddRow(report.F1(r.Time), report.F2(r.Planned), r.Point.String(),
			report.F2(r.UsedPower), report.F2(r.SuppliedPower), report.F2(r.Charge))
	}
	return t.Render(w)
}

func runMachine(w io.Writer, s trace.Scenario, pol dpm.RedistributePolicy, strategy string,
	actual *schedule.Grid, periods int, seed int64, eventScale float64, gang, showTrace bool,
	faultRate float64, faultSeed int64, noReplan bool) error {

	spec := pipeline.MachineSpec{
		Scenario:              s,
		Params:                experiments.PaperParams(),
		Policy:                pol,
		Planner:               strategy,
		ActualCharging:        actual,
		Periods:               periods,
		EventScale:            eventScale,
		Seed:                  seed,
		ExecuteDSP:            true,
		GangScheduled:         gang,
		DisableDegradedReplan: noReplan,
	}
	if faultRate > 0 {
		plan, err := experiments.FaultPlanFor(s, faultRate, periods, faultSeed)
		if err != nil {
			return err
		}
		spec.Faults = plan
	}
	res, err := pipeline.SimulateMachine(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %s, %d period(s), PAMA board simulation\n", s.Name, periods)
	fmt.Fprintf(w, "  events arrived   %d\n", res.EventsArrived)
	fmt.Fprintf(w, "  tasks completed  %d\n", res.TasksCompleted)
	fmt.Fprintf(w, "  detector         %s\n", res.Detector)
	fmt.Fprintf(w, "  confusion        %s\n", res.Confusion)
	fmt.Fprintf(w, "  mean latency     %s\n", units.FormatDuration(res.MeanLatencySeconds))
	fmt.Fprintf(w, "  energy used      %s (active %s, idle %s)\n",
		units.FormatEnergy(res.EnergyUsed),
		units.FormatEnergy(res.Energy.ActiveJ),
		units.FormatEnergy(res.Energy.SleepJ+res.Energy.StandbyJ))
	fmt.Fprintf(w, "  wasted           %s\n", units.FormatEnergy(res.Battery.Wasted))
	fmt.Fprintf(w, "  undersupplied    %s\n", units.FormatEnergy(res.Battery.Undersupplied))
	fmt.Fprintf(w, "  utilization      %.1f%%\n", 100*res.Battery.Utilization)
	if spec.Faults != nil {
		fmt.Fprintf(w, "  faults injected  %d\n", spec.Faults.Len())
		fmt.Fprintf(w, "  %s\n", res.Faults)
		if res.Faults.ControllerReboots > 0 {
			fmt.Fprintf(w, "  checkpoints      %d restored, %d rejected\n",
				res.Faults.CheckpointRestores, res.Faults.CheckpointRejects)
		}
	}
	if !showTrace {
		return nil
	}
	t := report.NewTable("", "t (s)", "plan (W)", "n", "f", "used (W)", "charge (J)", "backlog")
	for _, r := range res.Records {
		t.AddRow(report.F1(r.Time), report.F2(r.Planned), report.I(r.TargetN),
			units.FormatFrequency(r.TargetF), report.F2(r.UsedPower),
			report.F2(r.Charge), report.I(r.Backlog))
	}
	return t.Render(w)
}
