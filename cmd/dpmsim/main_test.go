package main

import (
	"path/filepath"
	"strings"
	"testing"

	"dpm/internal/trace"
)

func TestRunAnalytic(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "I", "", 2, false, 0, 1, "proportional", "", 0.1, false, false, false, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"analytic model", "wasted", "undersupplied", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunAnalyticWithTrace(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "II", "", 1, false, 0, 1, "even", "", 0.1, false, true, false, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "plan (W)") {
		t.Error("trace table missing")
	}
}

func TestRunMachine(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "I", "", 1, true, 0.1, 7, "proportional", "", 0.1, false, true, false, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"PAMA board simulation", "tasks completed", "detector", "backlog"} {
		if !strings.Contains(out, want) {
			t.Errorf("machine output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "III", "", 1, false, 0, 1, "proportional", "", 0.1, false, false, false, 0, 1, false); err == nil {
		t.Error("unknown scenario must error")
	}
	if err := run(&sb, "I", "", 1, false, 0, 1, "bogus", "", 0.1, false, false, false, 0, 1, false); err == nil {
		t.Error("unknown policy must error")
	}
}

func TestRunMachineGang(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "I", "", 1, true, 0, 3, "proportional", "", 0.1, true, false, false, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "confusion") {
		t.Errorf("machine output missing confusion:\n%s", sb.String())
	}
}

func TestRunCustomConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custom.json")
	if err := trace.SaveScenario(trace.ScenarioII(), path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, "", path, 1, false, 0, 1, "proportional", "", 0.1, false, false, false, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "scenario II") {
		t.Errorf("custom config not loaded:\n%s", sb.String())
	}
	if err := run(&sb, "", filepath.Join(t.TempDir(), "nope.json"), 1, false, 0, 1, "proportional", "", 0.1, false, false, false, 0, 1, false); err == nil {
		t.Error("missing config file must error")
	}
}

func TestRunMachineFaults(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "I", "", 2, true, 0, 7, "proportional", "", 0.1, false, false, false, 2, 42, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"faults injected", "faults:", "replans"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFaultsRequireMachine(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "I", "", 1, false, 0, 1, "proportional", "", 0.1, false, false, false, 2, 1, false); err == nil {
		t.Error("analytic mode with -faultrate must error")
	}
}

func TestRunAnalyticPlot(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "I", "", 1, false, 0, 1, "proportional", "", 0.1, false, false, true, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "plan vs used") {
		t.Errorf("plot missing:\n%s", sb.String())
	}
}

func TestRunStrategy(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "I", "", 1, false, 0, 1, "proportional", "bunde", 0.1, false, false, false, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "analytic model") {
		t.Errorf("strategy run output wrong:\n%s", sb.String())
	}
	if err := run(&sb, "I", "", 1, false, 0, 1, "proportional", "vaporware", 0.1, false, false, false, 0, 1, false); err == nil {
		t.Error("unknown strategy must error")
	}
}
