// Command benchdiff compares `go test -bench` output against the
// recorded baselines in BENCH_pipeline.json — and, with -service, a
// dpmload run file against BENCH_service.json — and reports
// regressions. It is advisory by default: regressions print warnings
// but the exit status stays 0, because benchmark noise on shared CI
// runners would otherwise flake the build. Pass -strict to turn
// warnings into a non-zero exit (for dedicated perf runners); with
// both inputs, -strict fails when either file regresses.
//
//	go test . ./internal/pipeline -run '^$' -bench . -benchmem | benchdiff
//	benchdiff -baseline BENCH_pipeline.json -threshold 0.2 bench.out
//	benchdiff -service run.json -service-baseline BENCH_service.json
//
// Microbenchmark metrics (ns/op, B/op, allocs/op) and service
// latencies (p50_ms, p99_ms) regress upward; service throughput
// (plans_per_sec) regresses downward. A benchmark or row present in
// the input but absent from the baseline file (or vice versa) is
// reported informationally and never warns: new measurements need a
// recorded baseline first.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark measurement, in the units go test prints.
type metrics struct {
	Ns     float64 `json:"ns_per_op"`
	Bytes  float64 `json:"bytes_per_op"`
	Allocs float64 `json:"allocs_per_op"`
}

// baselineFile mirrors BENCH_pipeline.json: each benchmark maps entry
// names to measurements plus a "baseline" string naming the entry to
// compare against (and optionally a "note").
type baselineFile struct {
	Benchmarks map[string]map[string]json.RawMessage `json:"benchmarks"`
}

// baselineName reads the entry name a row's "baseline" field points
// at, verifying the entry exists. Rows without one are skipped.
func baselineName(raw map[string]json.RawMessage) (string, bool) {
	var name string
	if b, ok := raw["baseline"]; !ok || json.Unmarshal(b, &name) != nil || name == "" {
		return "", false
	}
	if _, ok := raw[name]; !ok {
		return "", false
	}
	return name, true
}

// baselineFor extracts the comparison entry for one benchmark: the
// entry named by its "baseline" field. Benchmarks without a baseline
// field are skipped.
func baselineFor(raw map[string]json.RawMessage) (metrics, string, bool) {
	name, ok := baselineName(raw)
	if !ok {
		return metrics{}, "", false
	}
	var m metrics
	if json.Unmarshal(raw[name], &m) != nil {
		return metrics{}, "", false
	}
	return m, name, true
}

// benchLine matches one `go test -bench` result line:
// name[-procs]  iterations  value unit [value unit ...]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts {name → metrics} from go test -bench output.
// The GOMAXPROCS suffix (-4) is stripped so lines compare against the
// same baseline regardless of -cpu. Missing -benchmem leaves Bytes
// and Allocs at -1 (not compared).
func parseBench(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		got := metrics{Ns: -1, Bytes: -1, Allocs: -1}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				got.Ns = v
			case "B/op":
				got.Bytes = v
			case "allocs/op":
				got.Allocs = v
			}
		}
		out[m[1]] = got
	}
	return out, sc.Err()
}

// compare reports one metric against its baseline; a relative growth
// beyond threshold is a regression. Baselines of 0 (or metrics the
// run did not record, v < 0) are skipped: a 0→ε change has no
// meaningful ratio and 0-alloc paths are guarded by tests instead.
func regressed(got, base, threshold float64) bool {
	if got < 0 || base <= 0 {
		return false
	}
	return got > base*(1+threshold)
}

// serviceRow is the slice of a dpmload measurement benchdiff
// compares. Lower plans_per_sec is a regression; higher p50/p99 is.
type serviceRow struct {
	PlansPerSec float64 `json:"plans_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// serviceRunFile is the dpmload -out schema.
type serviceRunFile struct {
	Rows map[string]serviceRow `json:"rows"`
}

// serviceBaselineFile mirrors BENCH_service.json: rows map entry
// names to measurements plus a "baseline" string naming the entry to
// compare against, the same shape BENCH_pipeline.json uses per
// benchmark.
type serviceBaselineFile struct {
	Service map[string]map[string]json.RawMessage `json:"service"`
}

// regressedLower is regressed with inverted polarity, for throughput
// metrics where a drop is the regression.
func regressedLower(got, base, threshold float64) bool {
	if got < 0 || base <= 0 {
		return false
	}
	return got < base*(1-threshold)
}

// compareService diffs a dpmload run file against BENCH_service.json
// and returns the number of regressed metrics.
func compareService(runPath, basePath string, threshold float64) (int, error) {
	rawRun, err := os.ReadFile(runPath)
	if err != nil {
		return 0, err
	}
	var run serviceRunFile
	if err := json.Unmarshal(rawRun, &run); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", runPath, err)
	}
	rawBase, err := os.ReadFile(basePath)
	if err != nil {
		return 0, err
	}
	var base serviceBaselineFile
	if err := json.Unmarshal(rawBase, &base); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", basePath, err)
	}
	if len(run.Rows) == 0 {
		fmt.Printf("benchdiff: no rows in %s\n", runPath)
		return 0, nil
	}

	names := make([]string, 0, len(run.Rows))
	for name := range run.Rows {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		entry, ok := base.Service[name]
		if !ok {
			fmt.Printf("  %-40s no recorded baseline (record it in %s)\n", name, basePath)
			continue
		}
		entryName, ok := baselineName(entry)
		if !ok {
			fmt.Printf("  %-40s baseline entry missing or malformed\n", name)
			continue
		}
		var want serviceRow
		if json.Unmarshal(entry[entryName], &want) != nil {
			fmt.Printf("  %-40s baseline entry missing or malformed\n", name)
			continue
		}
		g := run.Rows[name]
		for _, c := range []struct {
			unit      string
			got, base float64
			lowerBad  bool
		}{
			{"plans/sec", g.PlansPerSec, want.PlansPerSec, true},
			{"p50_ms", g.P50Ms, want.P50Ms, false},
			{"p99_ms", g.P99Ms, want.P99Ms, false},
		} {
			if c.got < 0 || c.base <= 0 {
				continue
			}
			delta := (c.got - c.base) / c.base * 100
			status := "ok"
			bad := regressed(c.got, c.base, threshold)
			if c.lowerBad {
				bad = regressedLower(c.got, c.base, threshold)
			}
			if bad {
				status = "WARN regression"
				regressions++
			}
			fmt.Printf("  %-40s %-10s %12.4g vs %s %12.4g  %+7.1f%%  %s\n",
				name, c.unit, c.got, entryName, c.base, delta, status)
		}
	}
	return regressions, nil
}

// compareBench diffs parsed `go test -bench` output against
// BENCH_pipeline.json and returns the number of regressed metrics.
func compareBench(in io.Reader, baselinePath string, threshold float64) (int, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", baselinePath, err)
	}

	got, err := parseBench(in)
	if err != nil {
		return 0, err
	}
	if len(got) == 0 {
		fmt.Println("benchdiff: no benchmark lines in input")
		return 0, nil
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		entry, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("  %-40s no recorded baseline (record it in %s)\n", name, baselinePath)
			continue
		}
		want, entryName, ok := baselineFor(entry)
		if !ok {
			fmt.Printf("  %-40s baseline entry missing or malformed\n", name)
			continue
		}
		g := got[name]
		for _, c := range []struct {
			unit      string
			got, base float64
		}{
			{"ns/op", g.Ns, want.Ns},
			{"B/op", g.Bytes, want.Bytes},
			{"allocs/op", g.Allocs, want.Allocs},
		} {
			if c.got < 0 || c.base <= 0 {
				continue
			}
			delta := (c.got - c.base) / c.base * 100
			status := "ok"
			if regressed(c.got, c.base, threshold) {
				status = "WARN regression"
				regressions++
			}
			fmt.Printf("  %-40s %-10s %12.4g vs %s %12.4g  %+7.1f%%  %s\n",
				name, c.unit, c.got, entryName, c.base, delta, status)
		}
	}
	return regressions, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_pipeline.json", "microbenchmark baseline JSON file")
	servicePath := flag.String("service", "", "dpmload run file to compare (skips stdin bench input when no file argument is given)")
	serviceBaselinePath := flag.String("service-baseline", "BENCH_service.json", "service baseline JSON file")
	threshold := flag.Float64("threshold", 0.20, "relative regression threshold (0.20 = +20%)")
	strict := flag.Bool("strict", false, "exit non-zero when a regression is found in any compared file")
	flag.Parse()

	// Regressions accumulate across both inputs so -strict fails when
	// either the microbenchmarks or the service run regressed — not
	// just whichever compare happened to run last.
	regressions := 0

	// Bench input comes from a file argument or stdin; when only
	// -service is given, the bench compare is skipped entirely.
	if flag.NArg() > 0 || *servicePath == "" {
		in := io.Reader(os.Stdin)
		if flag.NArg() > 0 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchdiff:", err)
				os.Exit(2)
			}
			defer f.Close()
			in = f
		}
		n, err := compareBench(in, *baselinePath, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		regressions += n
	}

	if *servicePath != "" {
		n, err := compareService(*servicePath, *serviceBaselinePath, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		regressions += n
	}

	if regressions > 0 {
		fmt.Printf("benchdiff: %d metric(s) regressed more than %.0f%% (advisory", regressions, *threshold*100)
		if *strict {
			fmt.Println("; -strict set, failing)")
			os.Exit(1)
		}
		fmt.Println("; exit 0)")
	}
}
