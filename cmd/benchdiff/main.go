// Command benchdiff compares `go test -bench` output against the
// recorded baselines in BENCH_pipeline.json and reports regressions.
// It is advisory by default: regressions print warnings but the exit
// status stays 0, because benchmark noise on shared CI runners would
// otherwise flake the build. Pass -strict to turn warnings into a
// non-zero exit (for dedicated perf runners).
//
//	go test . ./internal/pipeline -run '^$' -bench . -benchmem | benchdiff
//	benchdiff -baseline BENCH_pipeline.json -threshold 0.2 bench.out
//
// A benchmark present in the output but absent from the baseline
// file (or vice versa) is reported informationally and never warns:
// new benchmarks need a recorded baseline first.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark measurement, in the units go test prints.
type metrics struct {
	Ns     float64 `json:"ns_per_op"`
	Bytes  float64 `json:"bytes_per_op"`
	Allocs float64 `json:"allocs_per_op"`
}

// baselineFile mirrors BENCH_pipeline.json: each benchmark maps entry
// names to measurements plus a "baseline" string naming the entry to
// compare against (and optionally a "note").
type baselineFile struct {
	Benchmarks map[string]map[string]json.RawMessage `json:"benchmarks"`
}

// baselineFor extracts the comparison entry for one benchmark: the
// entry named by its "baseline" field. Benchmarks without a baseline
// field are skipped.
func baselineFor(raw map[string]json.RawMessage) (metrics, string, bool) {
	var name string
	if b, ok := raw["baseline"]; !ok || json.Unmarshal(b, &name) != nil || name == "" {
		return metrics{}, "", false
	}
	entry, ok := raw[name]
	if !ok {
		return metrics{}, "", false
	}
	var m metrics
	if json.Unmarshal(entry, &m) != nil {
		return metrics{}, "", false
	}
	return m, name, true
}

// benchLine matches one `go test -bench` result line:
// name[-procs]  iterations  value unit [value unit ...]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts {name → metrics} from go test -bench output.
// The GOMAXPROCS suffix (-4) is stripped so lines compare against the
// same baseline regardless of -cpu. Missing -benchmem leaves Bytes
// and Allocs at -1 (not compared).
func parseBench(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		got := metrics{Ns: -1, Bytes: -1, Allocs: -1}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				got.Ns = v
			case "B/op":
				got.Bytes = v
			case "allocs/op":
				got.Allocs = v
			}
		}
		out[m[1]] = got
	}
	return out, sc.Err()
}

// compare reports one metric against its baseline; a relative growth
// beyond threshold is a regression. Baselines of 0 (or metrics the
// run did not record, v < 0) are skipped: a 0→ε change has no
// meaningful ratio and 0-alloc paths are guarded by tests instead.
func regressed(got, base, threshold float64) bool {
	if got < 0 || base <= 0 {
		return false
	}
	return got > base*(1+threshold)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_pipeline.json", "baseline JSON file")
	threshold := flag.Float64("threshold", 0.20, "relative regression threshold (0.20 = +20%)")
	strict := flag.Bool("strict", false, "exit non-zero when a regression is found")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Println("benchdiff: no benchmark lines in input")
		return
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		entry, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("  %-40s no recorded baseline (record it in %s)\n", name, *baselinePath)
			continue
		}
		want, entryName, ok := baselineFor(entry)
		if !ok {
			fmt.Printf("  %-40s baseline entry missing or malformed\n", name)
			continue
		}
		g := got[name]
		for _, c := range []struct {
			unit      string
			got, base float64
		}{
			{"ns/op", g.Ns, want.Ns},
			{"B/op", g.Bytes, want.Bytes},
			{"allocs/op", g.Allocs, want.Allocs},
		} {
			if c.got < 0 || c.base <= 0 {
				continue
			}
			delta := (c.got - c.base) / c.base * 100
			status := "ok"
			if regressed(c.got, c.base, *threshold) {
				status = "WARN regression"
				regressions++
			}
			fmt.Printf("  %-40s %-10s %12.4g vs %s %12.4g  %+7.1f%%  %s\n",
				name, c.unit, c.got, entryName, c.base, delta, status)
		}
	}

	if regressions > 0 {
		fmt.Printf("benchdiff: %d metric(s) regressed more than %.0f%% (advisory", regressions, *threshold*100)
		if *strict {
			fmt.Println("; -strict set, failing)")
			os.Exit(1)
		}
		fmt.Println("; exit 0)")
	}
}
