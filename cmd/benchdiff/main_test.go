package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `
goos: linux
goarch: amd64
pkg: dpm/internal/pipeline
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelinePlan 	 1887862	      1074 ns/op	     832 B/op	      10 allocs/op
BenchmarkPlanCacheHit-4   	    2000	     75875 ns/op	   12586 B/op	      88 allocs/op
BenchmarkPlanParallel/shards=8-4         	    2000	     70868 ns/op
BenchmarkAblationRedistribution/proportional-4 	100	 12345 ns/op	 3.5 J-bad
PASS
ok  	dpm	0.151s
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	plan, ok := got["BenchmarkPipelinePlan"]
	if !ok || plan.Ns != 1074 || plan.Bytes != 832 || plan.Allocs != 10 {
		t.Fatalf("PipelinePlan = %+v, ok=%v", plan, ok)
	}
	// GOMAXPROCS suffix stripped.
	hit, ok := got["BenchmarkPlanCacheHit"]
	if !ok || hit.Ns != 75875 || hit.Allocs != 88 {
		t.Fatalf("PlanCacheHit = %+v, ok=%v", hit, ok)
	}
	// Sub-benchmark names keep their path; missing -benchmem metrics
	// stay unset (-1).
	par, ok := got["BenchmarkPlanParallel/shards=8"]
	if !ok || par.Ns != 70868 || par.Bytes != -1 || par.Allocs != -1 {
		t.Fatalf("PlanParallel = %+v, ok=%v", par, ok)
	}
	// Custom ReportMetric units are ignored, ns/op still parsed.
	if ab := got["BenchmarkAblationRedistribution/proportional"]; ab.Ns != 12345 {
		t.Fatalf("ablation = %+v", ab)
	}
}

func TestRegressed(t *testing.T) {
	for _, tc := range []struct {
		got, base, threshold float64
		want                 bool
	}{
		{110, 100, 0.2, false}, // +10% under a 20% gate
		{121, 100, 0.2, true},  // +21% over
		{50, 100, 0.2, false},  // improvement
		{5, 0, 0.2, false},     // zero baseline skipped
		{-1, 100, 0.2, false},  // metric not recorded in the run
	} {
		if got := regressed(tc.got, tc.base, tc.threshold); got != tc.want {
			t.Errorf("regressed(%g, %g, %g) = %v, want %v", tc.got, tc.base, tc.threshold, got, tc.want)
		}
	}
}

func TestRegressedLower(t *testing.T) {
	for _, tc := range []struct {
		got, base, threshold float64
		want                 bool
	}{
		{95, 100, 0.2, false},  // -5% throughput under a 20% gate
		{79, 100, 0.2, true},   // -21% over
		{150, 100, 0.2, false}, // improvement
		{5, 0, 0.2, false},     // zero baseline skipped
		{-1, 100, 0.2, false},  // metric not recorded
	} {
		if got := regressedLower(tc.got, tc.base, tc.threshold); got != tc.want {
			t.Errorf("regressedLower(%g, %g, %g) = %v, want %v", tc.got, tc.base, tc.threshold, got, tc.want)
		}
	}
}

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareService(t *testing.T) {
	base := writeFile(t, "BENCH_service.json", `{
	  "service": {
	    "closed_c4": {
	      "baseline": "post_columnar",
	      "post_columnar": {"plans_per_sec": 1000, "p50_ms": 1.0, "p99_ms": 4.0}
	    },
	    "open_q500": {
	      "baseline": "post_columnar",
	      "post_columnar": {"plans_per_sec": 500, "p50_ms": 2.0, "p99_ms": 8.0}
	    },
	    "no_baseline_field": {
	      "post_columnar": {"plans_per_sec": 1}
	    }
	  }
	}`)

	// Healthy run: throughput up, latency flat — zero regressions.
	good := writeFile(t, "good.json", `{"rows": {
	  "closed_c4": {"plans_per_sec": 1200, "p50_ms": 0.9, "p99_ms": 3.5},
	  "open_q500": {"plans_per_sec": 510, "p50_ms": 2.0, "p99_ms": 7.9},
	  "unknown_row": {"plans_per_sec": 1},
	  "no_baseline_field": {"plans_per_sec": 1}
	}}`)
	n, err := compareService(good, base, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("healthy run: %d regressions, want 0", n)
	}

	// Throughput collapse regresses with inverted polarity; latency
	// growth regresses upward: 1 + 2 metrics across the two rows.
	bad := writeFile(t, "bad.json", `{"rows": {
	  "closed_c4": {"plans_per_sec": 700, "p50_ms": 1.0, "p99_ms": 4.0},
	  "open_q500": {"plans_per_sec": 500, "p50_ms": 3.0, "p99_ms": 12.0}
	}}`)
	n, err = compareService(bad, base, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("regressed run: %d regressions, want 3", n)
	}

	// A faster p50 must never count as a regression even though the
	// throughput polarity is inverted.
	fast := writeFile(t, "fast.json", `{"rows": {
	  "closed_c4": {"plans_per_sec": 1000, "p50_ms": 0.1, "p99_ms": 0.2}
	}}`)
	if n, err = compareService(fast, base, 0.2); err != nil || n != 0 {
		t.Errorf("faster run: n=%d err=%v, want 0 regressions", n, err)
	}

	if _, err := compareService(writeFile(t, "junk.json", "{"), base, 0.2); err == nil {
		t.Error("malformed run file: want error")
	}
	if _, err := compareService(good, writeFile(t, "junkbase.json", "]"), 0.2); err == nil {
		t.Error("malformed baseline: want error")
	}
}

func TestCompareBenchCounts(t *testing.T) {
	base := writeFile(t, "BENCH_pipeline.json", `{
	  "benchmarks": {
	    "BenchmarkPipelinePlan": {
	      "baseline": "rec",
	      "rec": {"ns_per_op": 1000, "bytes_per_op": 800, "allocs_per_op": 10}
	    }
	  }
	}`)
	out := "BenchmarkPipelinePlan 100 2000 ns/op 800 B/op 10 allocs/op\n"
	n, err := compareBench(strings.NewReader(out), base, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("doubled ns/op: %d regressions, want 1", n)
	}
	n, err = compareBench(strings.NewReader("BenchmarkPipelinePlan 100 900 ns/op 700 B/op 9 allocs/op\n"), base, 0.2)
	if err != nil || n != 0 {
		t.Errorf("improved run: n=%d err=%v, want 0", n, err)
	}
}
