package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `
goos: linux
goarch: amd64
pkg: dpm/internal/pipeline
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelinePlan 	 1887862	      1074 ns/op	     832 B/op	      10 allocs/op
BenchmarkPlanCacheHit-4   	    2000	     75875 ns/op	   12586 B/op	      88 allocs/op
BenchmarkPlanParallel/shards=8-4         	    2000	     70868 ns/op
BenchmarkAblationRedistribution/proportional-4 	100	 12345 ns/op	 3.5 J-bad
PASS
ok  	dpm	0.151s
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	plan, ok := got["BenchmarkPipelinePlan"]
	if !ok || plan.Ns != 1074 || plan.Bytes != 832 || plan.Allocs != 10 {
		t.Fatalf("PipelinePlan = %+v, ok=%v", plan, ok)
	}
	// GOMAXPROCS suffix stripped.
	hit, ok := got["BenchmarkPlanCacheHit"]
	if !ok || hit.Ns != 75875 || hit.Allocs != 88 {
		t.Fatalf("PlanCacheHit = %+v, ok=%v", hit, ok)
	}
	// Sub-benchmark names keep their path; missing -benchmem metrics
	// stay unset (-1).
	par, ok := got["BenchmarkPlanParallel/shards=8"]
	if !ok || par.Ns != 70868 || par.Bytes != -1 || par.Allocs != -1 {
		t.Fatalf("PlanParallel = %+v, ok=%v", par, ok)
	}
	// Custom ReportMetric units are ignored, ns/op still parsed.
	if ab := got["BenchmarkAblationRedistribution/proportional"]; ab.Ns != 12345 {
		t.Fatalf("ablation = %+v", ab)
	}
}

func TestRegressed(t *testing.T) {
	for _, tc := range []struct {
		got, base, threshold float64
		want                 bool
	}{
		{110, 100, 0.2, false}, // +10% under a 20% gate
		{121, 100, 0.2, true},  // +21% over
		{50, 100, 0.2, false},  // improvement
		{5, 0, 0.2, false},     // zero baseline skipped
		{-1, 100, 0.2, false},  // metric not recorded in the run
	} {
		if got := regressed(tc.got, tc.base, tc.threshold); got != tc.want {
			t.Errorf("regressed(%g, %g, %g) = %v, want %v", tc.got, tc.base, tc.threshold, got, tc.want)
		}
	}
}
