package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot")

// The whole experiment suite is deterministic, so its full output is
// locked as a golden file: any change to an algorithm, constant, or
// table layout shows up as a diff here. Refresh intentionally with
//
//	go test ./cmd/tables -run Golden -update
func TestGoldenAllTables(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 0, true, false, false); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/all.golden"
	if *update {
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if sb.String() != string(want) {
		t.Errorf("output diverged from the golden snapshot; run with -update if intentional.\ngot %d bytes, want %d", len(sb.String()), len(want))
	}
}
