package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 2, 0, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table 2") {
		t.Errorf("missing Table 2:\n%s", out)
	}
	if strings.Contains(out, "Table 1") {
		t.Error("-table 2 must not print Table 1")
	}
}

func TestRunSingleFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 4, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Errorf("missing Figure 4:\n%s", sb.String())
	}
}

func TestRunFigureAsPlot(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 3, false, false, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "* charging") {
		t.Errorf("plot mode missing legend:\n%s", out)
	}
}

func TestRunAll(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 0, true, false, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 3", "Figure 4", "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "enhanced mode"} {
		if !strings.Contains(out, want) {
			t.Errorf("-all output missing %q", want)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 3, false, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "Time (s),Charging,Use") {
		t.Errorf("CSV output wrong: %q", sb.String()[:40])
	}
}

func TestExportCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := exportCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"figure3.csv", "figure4.csv", "table1.csv", "table1_enhanced.csv",
		"table2.csv", "table3.csv", "table4.csv", "table5.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 || !strings.Contains(string(data), ",") {
			t.Errorf("%s looks empty or non-CSV", name)
		}
	}
}
