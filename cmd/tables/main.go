// Command tables regenerates every table and figure of the paper's
// evaluation section:
//
//	tables -all          # everything, in paper order
//	tables -table 1      # Table 1 (algorithm comparison)
//	tables -table 2      # Table 2 (initial allocation, scenario I)
//	tables -table 3      # Table 3 (dynamic update, scenario I)
//	tables -table 4      # Table 4 (initial allocation, scenario II)
//	tables -table 5      # Table 5 (dynamic update, scenario II)
//	tables -fig 3        # Figure 3 series (schedules, scenario I)
//	tables -fig 4        # Figure 4 series (schedules, scenario II)
//	tables -csv          # emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpm/internal/experiments"
	"dpm/internal/report"
	"dpm/internal/trace"
	"path/filepath"
)

func main() {
	table := flag.Int("table", 0, "paper table number to regenerate (1-5)")
	fig := flag.Int("fig", 0, "paper figure number to regenerate (3-4)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	plot := flag.Bool("plot", false, "render figures as ASCII plots instead of tables")
	outdir := flag.String("outdir", "", "also write every table/figure as CSV files into this directory")
	flag.Parse()

	if !*all && *table == 0 && *fig == 0 {
		*all = true
	}
	if *outdir != "" {
		if err := exportCSVs(*outdir); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	if err := run(os.Stdout, *table, *fig, *all, *csv, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// exportCSVs writes every table and figure as CSV files, one per
// artifact, for external plotting tools.
func exportCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	artifacts := map[string]func() (*report.Table, error){
		"figure3.csv": func() (*report.Table, error) { return experiments.FigureTable(trace.ScenarioI(), 3), nil },
		"figure4.csv": func() (*report.Table, error) { return experiments.FigureTable(trace.ScenarioII(), 4), nil },
		"table1.csv": func() (*report.Table, error) {
			t, _, err := experiments.Table1()
			return t, err
		},
		"table1_enhanced.csv": func() (*report.Table, error) {
			t, _, err := experiments.Table1Enhanced()
			return t, err
		},
		"table2.csv": func() (*report.Table, error) { return experiments.AllocationTable(trace.ScenarioI(), 2) },
		"table3.csv": func() (*report.Table, error) { return experiments.UpdateTable(trace.ScenarioI(), 3) },
		"table4.csv": func() (*report.Table, error) { return experiments.AllocationTable(trace.ScenarioII(), 4) },
		"table5.csv": func() (*report.Table, error) { return experiments.UpdateTable(trace.ScenarioII(), 5) },
	}
	for name, build := range artifacts {
		t, err := build()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func run(w io.Writer, table, fig int, all, csv, plot bool) error {
	emit := func(t *report.Table) error {
		var err error
		if csv {
			err = t.CSV(w)
		} else {
			err = t.Render(w)
		}
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	}

	wantTable := func(n int) bool { return all || table == n }
	wantFig := func(n int) bool { return all || fig == n }

	emitFigure := func(s trace.Scenario, number int) error {
		if plot && !csv {
			c, err := experiments.FigureChart(s, number)
			if err != nil {
				return err
			}
			if err := c.Render(w); err != nil {
				return err
			}
			_, err = fmt.Fprintln(w)
			return err
		}
		return emit(experiments.FigureTable(s, number))
	}
	if wantFig(3) {
		if err := emitFigure(trace.ScenarioI(), 3); err != nil {
			return err
		}
	}
	if wantFig(4) {
		if err := emitFigure(trace.ScenarioII(), 4); err != nil {
			return err
		}
	}
	if wantTable(1) {
		t, comps, err := experiments.Table1()
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
		if !csv {
			for _, c := range comps {
				fmt.Fprintf(w, "  scenario %s: waste improved %.1f×, undersupply improved %.1f×\n",
					c.Scenario, c.WasteRatio(), c.UndersupplyRatio())
			}
			fmt.Fprintln(w)
		}
	}
	if all {
		// Extension: the same comparison with this implementation's
		// slot guards and physical net-flow battery model.
		t, comps, err := experiments.Table1Enhanced()
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
		if !csv {
			for _, c := range comps {
				fmt.Fprintf(w, "  scenario %s: proposed wasted %s, undersupplied %s\n",
					c.Scenario, report.F2(c.Proposed.Wasted), report.F2(c.Proposed.Undersupplied))
			}
			fmt.Fprintln(w)
		}
	}
	if wantTable(2) {
		t, err := experiments.AllocationTable(trace.ScenarioI(), 2)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if wantTable(3) {
		t, err := experiments.UpdateTable(trace.ScenarioI(), 3)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if wantTable(4) {
		t, err := experiments.AllocationTable(trace.ScenarioII(), 4)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if wantTable(5) {
		t, err := experiments.UpdateTable(trace.ScenarioII(), 5)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}
