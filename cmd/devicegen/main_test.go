package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"dpm/internal/ingest"
	"dpm/internal/trace"
)

// A full generator run against a local UDP listener: every datagram
// parses under the ingestion daemon's own line parser, both signals
// arrive for every device, and the counter values replay the
// scenario's usage schedule.
func TestRunReplaysScenario(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	type recv struct {
		events map[string][]float64
		charge map[string][]float64
	}
	got := recv{events: map[string][]float64{}, charge: map[string][]float64{}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		for {
			pc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			for _, line := range strings.Split(string(buf[:n]), "\n") {
				s, reason := ingest.ParseLine([]byte(line))
				if reason != "" {
					t.Errorf("generator emitted a dropped line %q: %s", line, reason)
					continue
				}
				switch s.Kind {
				case ingest.KindCounter:
					got.events[s.Device] = append(got.events[s.Device], s.Value)
				case ingest.KindGauge:
					got.charge[s.Device] = append(got.charge[s.Device], s.Value)
				}
			}
		}
	}()

	cfg := config{
		Target:   pc.LocalAddr().String(),
		Device:   "gen",
		Devices:  2,
		Scenario: "I",
		Slot:     time.Millisecond,
		Periods:  1,
		Quiet:    true,
	}
	if err := run(cfg, nil); err != nil {
		t.Fatal(err)
	}
	<-done

	oracle := trace.ScenarioI()
	slots := oracle.Usage.Len()
	for _, dev := range []string{"gen-0", "gen-1"} {
		if len(got.events[dev]) != slots {
			t.Fatalf("%s: %d counter samples, want %d", dev, len(got.events[dev]), slots)
		}
		if len(got.charge[dev]) != slots {
			t.Fatalf("%s: %d gauge samples, want %d", dev, len(got.charge[dev]), slots)
		}
		for i, v := range got.events[dev] {
			if v != oracle.Usage.Values[i] {
				t.Errorf("%s slot %d: events %g, want %g", dev, i, v, oracle.Usage.Values[i])
			}
		}
		for i, v := range got.charge[dev] {
			if v != oracle.Charging.Values[i] {
				t.Errorf("%s slot %d: charge %g, want %g", dev, i, v, oracle.Charging.Values[i])
			}
		}
	}
}

// Jittered periods stay non-negative and reproducible: two runs with
// the same seed emit identical values.
func TestRunJitterReproducible(t *testing.T) {
	collect := func() []float64 {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer pc.Close()
		var vals []float64
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 2048)
			for {
				pc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
				n, _, err := pc.ReadFrom(buf)
				if err != nil {
					return
				}
				for _, line := range strings.Split(string(buf[:n]), "\n") {
					s, reason := ingest.ParseLine([]byte(line))
					if reason != "" {
						t.Errorf("dropped line %q: %s", line, reason)
						continue
					}
					if s.Value < 0 {
						t.Errorf("negative jittered value %g", s.Value)
					}
					vals = append(vals, s.Value)
				}
			}
		}()
		cfg := config{
			Target:   pc.LocalAddr().String(),
			Device:   "jit",
			Devices:  1,
			Scenario: "II",
			Slot:     time.Millisecond,
			Periods:  2,
			Jitter:   0.2,
			Seed:     42,
			Quiet:    true,
		}
		if err := run(cfg, nil); err != nil {
			t.Fatal(err)
		}
		<-done
		return vals
	}
	a, b := collect(), collect()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs emitted %d and %d samples", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across same-seed runs: %g vs %g", i, a[i], b[i])
		}
	}
}

// Bad configurations are rejected before any traffic is sent.
func TestRunValidation(t *testing.T) {
	base := config{Target: "127.0.0.1:9", Devices: 1, Scenario: "I", Slot: time.Millisecond, Periods: 1}
	for name, mut := range map[string]func(*config){
		"no devices":       func(c *config) { c.Devices = 0 },
		"zero slot":        func(c *config) { c.Slot = 0 },
		"negative jitter":  func(c *config) { c.Jitter = -0.1 },
		"unknown scenario": func(c *config) { c.Scenario = "XVII" },
	} {
		cfg := base
		mut(&cfg)
		if err := run(cfg, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
