// Command devicegen replays a paper scenario as live device
// telemetry: for every schedule slot it emits one StatsD datagram —
// an events counter carrying the slot's usage power and a charge
// gauge carrying the slot's charging power — over UDP to a dpmd
// ingestion listener, at a configurable wall-clock pace and with
// optional per-period jitter so successive periods differ the way a
// real device's do.
//
//	dpmd -addr :8080 -ingest-addr :8125 -ingest-event-energy 4.8 &
//	devicegen -target 127.0.0.1:8125 -device sat-007 -scenario I -slot 250ms -periods 2
//	devicegen -target 127.0.0.1:8125 -devices 16 -jitter 0.1 -duration 10s
//
// The counter value is the slot's usage in watts, so a dpmd started
// with -ingest-event-energy equal to the scenario's slot length (τ,
// 4.8 for the paper scenarios) reconstructs the schedule exactly:
// usageW = events × energy / step. With the default energy of 1 J
// the shape is still right, only scaled.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// config is one generator run, resolved from flags (testable without
// a process boundary).
type config struct {
	Target   string        // UDP host:port of the ingestion listener
	Device   string        // device id prefix (single device: the id itself)
	Devices  int           // number of devices (>1 appends -0, -1, ...)
	Scenario string        // trace scenario name
	Slot     time.Duration // wall-clock length of one schedule slot
	Periods  int           // full periods to replay (0 = until Duration)
	Duration time.Duration // wall-clock cap (0 = until Periods)
	Jitter   float64       // per-period multiplicative jitter fraction
	Seed     int64         // jitter RNG seed
	Quiet    bool
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.Target, "target", "127.0.0.1:8125", "UDP address of the dpmd ingestion listener")
	flag.StringVar(&cfg.Device, "device", "dev", "device id (with -devices > 1, the prefix for dev-0, dev-1, ...)")
	flag.IntVar(&cfg.Devices, "devices", 1, "number of devices to emulate")
	flag.StringVar(&cfg.Scenario, "scenario", "I", `scenario to replay ("I" or "II")`)
	flag.DurationVar(&cfg.Slot, "slot", 250*time.Millisecond, "wall-clock duration of one schedule slot")
	flag.IntVar(&cfg.Periods, "periods", 0, "full periods to replay before exiting (0 = run until -duration)")
	flag.DurationVar(&cfg.Duration, "duration", 0, "wall-clock run cap (0 = run until -periods; both 0 = forever)")
	flag.Float64Var(&cfg.Jitter, "jitter", 0, "per-period multiplicative jitter fraction (0.1 = ±10%)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "jitter RNG seed")
	flag.BoolVar(&cfg.Quiet, "quiet", false, "suppress the per-period progress line")
	flag.Parse()

	if err := run(cfg, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "devicegen:", err)
		os.Exit(1)
	}
}

// run replays the scenario until the period or duration cap.
func run(cfg config, progress *os.File) error {
	if cfg.Devices < 1 {
		return fmt.Errorf("need at least one device, got %d", cfg.Devices)
	}
	if cfg.Slot <= 0 {
		return fmt.Errorf("non-positive slot duration %s", cfg.Slot)
	}
	if cfg.Jitter < 0 {
		return fmt.Errorf("negative jitter %g", cfg.Jitter)
	}
	sc, err := trace.ByName(cfg.Scenario)
	if err != nil {
		return err
	}
	conn, err := net.Dial("udp", cfg.Target)
	if err != nil {
		return err
	}
	defer conn.Close()

	ids := make([]string, cfg.Devices)
	for i := range ids {
		if cfg.Devices == 1 {
			ids[i] = cfg.Device
		} else {
			ids[i] = fmt.Sprintf("%s-%d", cfg.Device, i)
		}
	}

	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	ticker := time.NewTicker(cfg.Slot)
	defer ticker.Stop()

	slots := sc.Usage.Len()
	datagrams := 0
	for period := 0; cfg.Periods == 0 || period < cfg.Periods; period++ {
		usage, charging := sc.Usage, sc.Charging
		if cfg.Jitter > 0 {
			// A fresh seed per period and per signal keeps periods
			// distinct but the whole run reproducible.
			usage = trace.Perturb(usage, cfg.Jitter, cfg.Seed+int64(2*period))
			charging = trace.Perturb(charging, cfg.Jitter, cfg.Seed+int64(2*period+1))
		}
		for slot := 0; slot < slots; slot++ {
			for _, id := range ids {
				if err := send(conn, id, usage, charging, slot); err != nil {
					return err
				}
				datagrams++
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				report(cfg, progress, period, slot+1, datagrams)
				return nil
			}
			<-ticker.C
		}
		report(cfg, progress, period, slots, datagrams)
	}
	return nil
}

// send emits one device's slot as a single two-line datagram:
// the usage power as an events counter and the charging power as an
// absolute gauge.
func send(conn net.Conn, id string, usage, charging *schedule.Grid, slot int) error {
	datagram := fmt.Sprintf("%s.events:%g|c\n%s.charge:%g|g",
		id, usage.Values[slot], id, charging.Values[slot])
	_, err := conn.Write([]byte(datagram))
	return err
}

func report(cfg config, progress *os.File, period, slots, datagrams int) {
	if cfg.Quiet || progress == nil {
		return
	}
	fmt.Fprintf(progress, "devicegen: period %d (%d slots) done, %d datagrams sent\n",
		period+1, slots, datagrams)
}
