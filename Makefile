# Stdlib-only Go module; these targets just bundle the common flows.

GO ?= go

.PHONY: all build vet test race bench tables golden cover clean serve soak

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the planning service in the foreground (Ctrl-C to stop).
serve:
	$(GO) run ./cmd/dpmd -addr :8080

# Load-test a running service (make serve in another terminal) and
# diff sustained throughput against the recorded baselines.
load:
	$(GO) run ./cmd/dpmload -addr http://127.0.0.1:8080 -mode closed \
		-sweep 1,4 -warmup 1s -duration 5s -out /tmp/dpmload_run.json
	$(GO) run ./cmd/benchdiff -service /tmp/dpmload_run.json

# Chaos soak: a live server behind seeded fault injection, hammered by
# retrying clients under the race detector (-short bounds iterations).
soak:
	$(GO) test -race -count=1 -run TestChaosSoak ./internal/chaostest/

# Regenerate every table and figure from the paper's evaluation.
tables:
	$(GO) run ./cmd/tables -all

# Refresh the locked experiment-output snapshot after an intentional
# change.
golden:
	$(GO) test ./cmd/tables -run Golden -update

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
