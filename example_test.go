package dpm_test

import (
	"fmt"
	"log"

	"dpm"
)

// Plan and run one charging period of the paper's satellite workload:
// the manager reshapes demand so the battery never overflows or
// empties, picks (processors, clock) per slot, and re-plans as actual
// consumption deviates.
func Example() {
	workload, err := dpm.NewWorkload(4.8, 0.48) // 2K FFT at 20 MHz, 10% serial
	if err != nil {
		log.Fatal(err)
	}
	scenario := dpm.ScenarioI()
	mgr, err := dpm.NewManager(dpm.ManagerConfig{
		Charging:      scenario.Charging,
		EventRate:     scenario.Usage,
		CapacityMax:   scenario.CapacityMax,
		CapacityMin:   scenario.CapacityMin,
		InitialCharge: scenario.InitialCharge,
		Params: dpm.ParamsConfig{
			System:        dpm.PAMA(),
			Curve:         dpm.FixedVoltage(3.3, 80e6),
			Workload:      workload,
			Frequencies:   []float64{20e6, 40e6, 80e6},
			MaxProcessors: 7,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	tau := mgr.Tau()
	for slot := 0; slot < 3; slot++ {
		point, _ := mgr.BeginSlot()
		fmt.Printf("slot %d: %d processors at %.0f MHz\n", slot, point.N, point.F/1e6)
		mgr.EndSlot(point.Power*tau, scenario.Charging.Values[slot]*tau)
	}
	// Output:
	// slot 0: 3 processors at 80 MHz
	// slot 1: 3 processors at 80 MHz
	// slot 2: 2 processors at 80 MHz
}
