// Mission: a year-scale endurance run. The paper's evaluation covers
// two 57.6 s periods; this example stretches the same control loop to
// hundreds of periods while the world degrades around it — the solar
// panel loses output, the battery leaks and fades, and every period's
// supply is noisy. The manager re-derives its expected charging
// schedule from the recorded history (§2) each period and keeps the
// energy residuals flat.
//
//	go run ./examples/mission
package main

import (
	"fmt"
	"log"
	"os"

	"dpm/internal/battery"
	"dpm/internal/experiments"
	"dpm/internal/predict"
	"dpm/internal/report"
	"dpm/internal/trace"
)

func main() {
	cfg := experiments.EnduranceConfig{
		Scenario:                  trace.ScenarioI(),
		Periods:                   200,
		SolarDegradationPerPeriod: 0.002, // −0.2% per period
		Jitter:                    0.15,
		Seed:                      42,
		Aging: battery.AgingConfig{
			SelfDischargePerSecond: 2e-6,
			FadePerJoule:           5e-6,
		},
	}

	run := func(name string, adaptive bool, margin float64) *experiments.EnduranceResult {
		c := cfg
		c.PlanningMargin = margin
		if adaptive {
			ma, err := predict.NewMovingAverage(6)
			if err != nil {
				log.Fatal(err)
			}
			c.Predictor = ma
		}
		res, err := experiments.Endurance(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ran %s\n", name)
		return res
	}
	// Four missions: forecast quality × planning headroom.
	staleRaw := run("stale forecast, no margin", false, 0)
	adaptiveRaw := run("adaptive forecast, no margin", true, 0)
	stale := run("stale forecast, 15% margin", false, 0.15)
	adaptive := run("adaptive forecast, 15% margin", true, 0.15)

	t := report.NewTable("", "Mission", "Wasted (J)", "Undersupplied (J)", "Utilization", "Final Cmax (J)", "Leaked (J)")
	row := func(name string, r *experiments.EnduranceResult) {
		last := r.Periods[len(r.Periods)-1]
		t.AddRow(name,
			report.F2(r.Battery.Wasted),
			report.F2(r.Battery.Undersupplied),
			fmt.Sprintf("%.1f%%", 100*r.Battery.Utilization),
			report.F2(last.Capacity),
			report.F2(r.Leaked),
		)
	}
	row("stale, no margin", staleRaw)
	row("adaptive, no margin", adaptiveRaw)
	row("stale, 15% margin", stale)
	row("adaptive, 15% margin", adaptive)
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-period residuals, every 25th period (adaptive mission):")
	if err := experiments.EnduranceTable(adaptive, 25).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforecast RMSE, final period: stale %.3f W vs adaptive %.3f W\n",
		stale.Periods[len(stale.Periods)-1].ForecastRMSE,
		adaptive.Periods[len(adaptive.Periods)-1].ForecastRMSE)
}
