// Traffic: the paper's §2 weight-function example. A solar-powered
// traffic-monitoring system wants to "process data more intensively
// during commute time": the weight function w(t) biases the power
// allocation toward the morning and evening rush hours even though
// the raw event rate is flat through the day.
//
// The example plans one 24-hour period twice — once unweighted, once
// with commute-hour weighting — and prints the allocations side by
// side.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math"

	"dpm/internal/alloc"
	"dpm/internal/schedule"
)

func main() {
	const (
		hour  = 3600.0
		day   = 24 * hour
		slots = 24 // plan hourly
	)

	// Solar charging: a half-sine day, dark at night.
	sun := schedule.NewFunc(func(t float64) float64 {
		h := t / hour
		if h < 6 || h > 18 {
			return 0
		}
		frac := (h - 6) / 12
		return 40 * math.Sin(math.Pi*frac) // peaks at 40 W around noon
	}, day)
	charging := schedule.FromSchedule(sun, slots)

	// Traffic events arrive all day at a roughly constant rate.
	eventRate := schedule.NewUniformGrid(day/slots, slots, 1.0)

	// Commute-hour weighting: 7–9 am and 4–7 pm matter three times
	// as much.
	weight := schedule.NewUniformGrid(day/slots, slots, 1.0)
	for h := 7; h < 9; h++ {
		weight.Values[h] = 3
	}
	for h := 16; h < 19; h++ {
		weight.Values[h] = 3
	}

	plan := func(w *schedule.Grid) *alloc.Result {
		res, err := alloc.Compute(alloc.Inputs{
			Charging:      charging,
			EventRate:     eventRate,
			Weight:        w,
			CapacityMax:   600e3, // 600 kJ battery (~167 Wh)
			CapacityMin:   20e3,
			InitialCharge: 100e3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	flat := plan(nil)
	commute := plan(weight)

	fmt.Println("hour  sun(W)  flat plan(W)  commute plan(W)")
	for h := 0; h < slots; h++ {
		marker := ""
		if weight.Values[h] > 1 {
			marker = "  <- rush hour"
		}
		fmt.Printf("%4d  %6.1f  %12.2f  %15.2f%s\n",
			h, charging.Values[h], flat.Allocation.Values[h], commute.Allocation.Values[h], marker)
	}
	fmt.Printf("\nboth plans spend the day's solar energy (%.0f kJ): flat %.0f kJ, commute %.0f kJ\n",
		charging.Total()/1e3, flat.Allocation.Total()/1e3, commute.Allocation.Total()/1e3)
}
