// Service walkthrough: run dpmd in-process and drive it with the
// typed client the way a fleet node would — plan (including a
// non-default planner strategy via the planner field / ?strategy=),
// parameterize, report a slot, simulate, and read the metrics.
//
//	go run ./examples/service
//
// The same requests work over the wire against a standalone daemon
// (`make serve`, or `go run ./cmd/dpmd`); plan_request.json and
// batch_request.json in this directory are the /v1/plan and
// /v1/batch bodies used below, ready for curl.
//
// The daemon's hot-path tuning knobs (all optional — the defaults
// fit a small deployment):
//
//	-cache 256        plan-cache capacity, entries (LRU per shard)
//	-cache-shards 0   lock shards for the plan cache; 0 picks
//	                  min(pow2(GOMAXPROCS), 16), 1 = single lock
//	-table-cache 128  memoized Algorithm 2 tables kept resident,
//	                  one per distinct hardware config
//	-pool 8           concurrent planning workers
//
// In-process embedders set the same things via server.Config
// (CacheEntries, CacheShards, PoolSize) and
// params.ResizeSharedTableCache, as below.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"dpm/internal/chaostest"
	"dpm/internal/obs"
	"dpm/internal/resilience"
	"dpm/internal/schedule"
	"dpm/internal/server"
	"dpm/internal/server/client"
	"dpm/internal/trace"
)

func main() {
	// 1. Start the service on a loopback port, as cmd/dpmd would.
	// CacheShards: 0 lets the server pick its GOMAXPROCS-scaled
	// default; set 1 to force a single-lock cache.
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0", PoolSize: 4, CacheEntries: 64, CacheShards: 0})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Fatal(err)
		}
	}()

	c := client.New("http://"+srv.Addr(), nil)
	if err := c.Healthz(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dpmd up at %s\n\n", srv.Addr())

	// 2. Ask for the Algorithm 1 power allocation of the paper's
	// Scenario I — the charging forecast a satellite would upload.
	planReq := server.PlanRequest{Scenario: trace.ScenarioI()}
	plan, state, err := c.Plan(ctx, planReq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan (%s): feasible=%v iterations=%d\n", state, plan.Feasible, plan.Iterations)
	for i, p := range plan.Allocation {
		fmt.Printf("  slot %2d  %.3f W\n", i, p)
	}

	// A second identical request is served from the scenario cache.
	if _, state, err = c.Plan(ctx, planReq); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same forecast again: cache %s\n\n", state)

	// The planner is pluggable: the same forecast through the YDS
	// taut-string backend (?strategy=yds on the wire) gets its own
	// cache entry and names its planner; an unknown name is a typed
	// 400 listing the registered backends.
	ydsPlan, state, err := c.Plan(ctx, server.PlanRequest{Scenario: trace.ScenarioI(), Planner: "yds"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yds plan (%s): planner=%s feasible=%v\n", state, ydsPlan.Planner, ydsPlan.Feasible)
	if _, _, err := c.Plan(ctx, server.PlanRequest{Scenario: trace.ScenarioI(), Planner: "vaporware"}); err != nil {
		var se *client.StatusError
		if errors.As(err, &se) {
			fmt.Printf("unknown strategy → %d: %s\n\n", se.Code, se.Message)
		}
	}

	// A whole constellation of forecasts goes through /v1/batch in
	// one round trip; each item reports its own cache disposition.
	batch, err := c.PlanBatch(ctx, []server.PlanRequest{
		{Scenario: trace.ScenarioI()},
		{Scenario: trace.ScenarioII()},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, item := range batch {
		if item.Err != nil {
			log.Fatal(item.Err)
		}
		fmt.Printf("batch item %d (%s): feasible=%v\n", i, item.Cache, item.Plan.Feasible)
	}
	fmt.Println()

	// 3. Turn the plan into the Algorithm 2 (n, f) schedule for the
	// PAMA board (the default hardware block).
	ps, _, err := c.Params(ctx, server.ParamsRequest{
		Allocation: schedule.NewGrid(plan.Tau, plan.Allocation),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operating points per slot:")
	for _, st := range ps.Steps {
		fmt.Printf("  slot %2d  n=%d f=%2.0f MHz  (%.3f W)\n",
			st.Slot, st.N, st.FrequencyHz/1e6, st.PowerW)
	}
	fmt.Println()

	// 4. Close a slot: the node measured its real consumption and
	// charge, and Algorithm 3 redistributes the deviation.
	rep, err := c.Replan(ctx, server.ReplanRequest{
		Scenario: trace.ScenarioI(),
		Slots:    []server.SlotReport{{UsedJ: 9.0, SuppliedJ: 10.5}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after slot 0 (used 9.0 J, got 10.5 J): charge %.2f J, next slot %d\n",
		rep.ChargeJ, rep.Slot)
	fmt.Printf("updated plan: %.3f W in slot 1 (was %.3f W)\n\n",
		rep.Plan[1], plan.Allocation[1])

	// 5. Debug a request: X-Dpmd-Trace: 1 attaches the span tree —
	// per-stage durations and Algorithm 1's per-iteration telemetry —
	// while the embedded plan stays byte-identical to what an untraced
	// request gets. A fresh margin forces a cache miss so the whole
	// pipeline shows up; tracing a warm scenario shows just the
	// plan.cache hit.
	traced, state, err := c.PlanTraced(ctx, server.PlanRequest{
		Scenario: trace.ScenarioII(),
		Margin:   0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced request %s (cache %s):\n", traced.Trace.RequestID, state)
	printSpans(traced.Trace.Spans, 1)
	fmt.Println()

	// 6. Dry-run two periods closed-loop before committing.
	sim, err := c.Simulate(ctx, server.SimulateRequest{
		Scenario: trace.ScenarioI(),
		Periods:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 2 periods: wasted %.3f J, undersupplied %.3f J, utilization %.1f%%\n\n",
		sim.WastedJ, sim.UndersuppliedJ, 100*sim.Utilization)

	// 7. The metrics endpoint shows the cache doing its job — the
	// legacy flat counters plus the Prometheus histogram families a
	// scraper would ingest.
	text, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "dpmd_plancache_") ||
			strings.HasPrefix(line, "# TYPE dpmd_") ||
			strings.HasPrefix(line, "dpmd_uptime_seconds") {
			fmt.Println(line)
		}
	}
	fmt.Println()

	// 8. Ride out a flaky network: the same plan request through a
	// transport that resets connections, truncates bodies and injects
	// spurious 5xx. client.NewWithRetry absorbs all of it — exponential
	// backoff with full jitter, Retry-After honored, a per-host circuit
	// breaker guarding against a dead host — and every dpmd endpoint is
	// idempotent, so retrying is always safe.
	flakyHTTP := &http.Client{
		Timeout: 30 * time.Second,
		Transport: chaostest.NewTransport(nil, chaostest.FaultConfig{
			Seed:         42,
			ResetProb:    0.3,
			TruncateProb: 0.2,
			Err503Prob:   0.2,
		}),
	}
	rc := client.NewWithRetry("http://"+srv.Addr(), flakyHTTP, resilience.RetryPolicy{
		MaxAttempts: resilience.UnlimitedAttempts, // context-bounded
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Seed:        1,
	})
	for i := 0; i < 10; i++ {
		if _, _, err := rc.Plan(ctx, planReq); err != nil {
			log.Fatal(err)
		}
	}
	st := flakyHTTP.Transport.(*chaostest.Transport).Stats()
	fmt.Printf("10 plans through a flaky wire: %d round trips (%d resets, %d truncations, %d injected 503s), all succeeded\n\n",
		st.Requests, st.Resets, st.Truncations, st.Err503s)

	// 9. The fleet layer: the same Algorithm 3 loop as step 4, but the
	// checkpoint stays server-side. A device registers once (the body
	// in fleet_register.json works over curl too), then streams bare
	// slot reports — no checkpoint on the wire — and the drain hands
	// every session's final checkpoint back exactly once, ready to
	// re-register here or anywhere else. Seq on each tick makes
	// retries safe: a duplicate is answered from session memory.
	reg, err := c.FleetRegister(ctx, server.FleetRegisterRequest{
		DeviceID: "sat-007",
		Scenario: trace.ScenarioI(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: registered %s at slot %d\n", reg.DeviceID, reg.Slot)
	for i, r := range []server.SlotReport{
		{UsedJ: 9.0, SuppliedJ: 10.5},
		{UsedJ: 8.2, SuppliedJ: 10.1},
		{UsedJ: 11.4, SuppliedJ: 9.6},
	} {
		tk, err := c.FleetTick(ctx, server.FleetTickRequest{
			DeviceID: "sat-007",
			Seq:      uint64(i) + 1,
			Slots:    []server.SlotReport{r},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fleet: tick %d → slot %d, charge %.2f J, %d replan(s)\n",
			i+1, tk.Slot, tk.ChargeJ, tk.Replans)
	}
	drainedFleet, err := c.FleetDrain(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: drained %d session(s); %s stopped at slot %d with its checkpoint in hand\n",
		drainedFleet.Count, drainedFleet.Devices[0].DeviceID, drainedFleet.Devices[0].Slot)
}

// printSpans renders a span forest indented by depth, with the
// annotations the pipeline attached (cache disposition, iteration and
// violation counts, memo hits).
func printSpans(spans []obs.SpanNode, depth int) {
	for _, s := range spans {
		fmt.Printf("%s%-18s %6d µs", strings.Repeat("  ", depth), s.Name, s.DurUS)
		if len(s.Attrs) > 0 {
			fmt.Printf("  %v", s.Attrs)
		}
		fmt.Println()
		printSpans(s.Spans, depth+1)
	}
}
