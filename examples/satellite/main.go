// Satellite: the paper's §5 evaluation end to end — the FORTE
// RF-transient detector running on the simulated PAMA board (eight
// M32R/D Processor-In-Memory chips, one controller + seven workers)
// under scenario I's charging orbit, with real fixed-point FFTs
// executed for every captured event.
//
//	go run ./examples/satellite
package main

import (
	"fmt"
	"log"

	"dpm/internal/experiments"
	"dpm/internal/machine"
	"dpm/internal/trace"
	"dpm/internal/units"
)

func main() {
	scenario := trace.ScenarioI()
	const periods = 4

	// RF transients arrive as a Poisson stream whose rate follows the
	// expected usage profile (busy slots see more lightning).
	events, err := trace.PoissonEvents(scenario.Usage, 0.12, periods*trace.Period, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("satellite pass: %d orbits, %d RF triggers\n\n", periods, len(events))

	board, err := machine.New(machine.Config{
		Manager:       experiments.ManagerConfig(scenario),
		Events:        events,
		Periods:       periods,
		EventMix:      0.5, // half real transients, half carriers/noise
		ExecuteDSP:    true,
		GangScheduled: true, // the paper's Figure 2: one parallel program
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := board.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("slot  t(s)    plan(W)  n  f       used(W)  charge(J)  backlog")
	for i, r := range res.Records {
		fmt.Printf("%4d  %-6.1f  %-7.2f  %d  %-6s  %-7.2f  %-9.2f  %d\n",
			i, r.Time, r.Planned, r.TargetN, units.FormatFrequency(r.TargetF),
			r.UsedPower, r.Charge, r.Backlog)
	}

	fmt.Println()
	fmt.Printf("events arrived    %d\n", res.EventsArrived)
	fmt.Printf("tasks completed   %d\n", res.TasksCompleted)
	fmt.Printf("detector          %s\n", res.Detector)
	fmt.Printf("confusion         %s\n", res.Confusion)
	fmt.Printf("mean latency      %s\n", units.FormatDuration(res.MeanLatencySeconds))
	fmt.Printf("energy used       %s\n", units.FormatEnergy(res.EnergyUsed))
	fmt.Printf("wasted            %s\n", units.FormatEnergy(res.Battery.Wasted))
	fmt.Printf("undersupplied     %s\n", units.FormatEnergy(res.Battery.Undersupplied))
	fmt.Printf("energy utilization %.1f%%\n", 100*res.Battery.Utilization)
}
