// Solarnode: a solar-powered sensor node with real voltage scaling —
// the configuration the paper's PAMA board could not exercise
// (its supply was pinned at 3.3 V) but its Eq. 11/18 machinery is
// built for. The node's processors follow an alpha-power-law g(v)
// curve, so Eq. 18 moves through all four regimes as the power
// allowance grows: frequency first, then processors, then voltage,
// then processors again.
//
//	go run ./examples/solarnode
package main

import (
	"fmt"
	"log"

	"dpm/internal/alloc"
	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

func main() {
	// A 16-core sensor fabric with DVFS: 0.9–1.8 V, up to 400 MHz.
	curve, err := power.NewAlphaPowerVF(0.9, 1.8, 0.35, 1.5, 400e6)
	if err != nil {
		log.Fatal(err)
	}
	workload, err := perf.NewWorkload(1.0, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := params.Config{
		System: power.SystemModel{
			Proc: power.ProcessorModel{
				ActiveAtRef:  0.25, // 250 mW at 400 MHz / 1.8 V
				SleepPower:   0.02,
				StandbyPower: 0.002,
				FRef:         400e6,
				VRef:         1.8,
			},
			N: 16,
		},
		Curve:         curve,
		Workload:      workload,
		Frequencies:   []float64{50e6, 100e6, 200e6, 400e6},
		MaxProcessors: 16,
	}

	fmt.Println("Eq. 18 continuous optimum across the power range:")
	fmt.Println("allowance(W)  n   f(MHz)  v(V)   perf")
	for _, allowance := range []float64{0.005, 0.02, 0.1, 0.3, 0.8, 1.5, 3.0, 4.0} {
		pt, err := params.Continuous(cfg, allowance)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.3f  %2d  %6.1f  %.3f  %.3g\n",
			allowance, pt.N, pt.F/1e6, pt.V, pt.Perf)
	}

	// Plan a low-orbit day: 5400 s orbit, 35% eclipse, 6 W peak.
	orbit, err := trace.OrbitCharging(5400, 0.35, 6)
	if err != nil {
		log.Fatal(err)
	}
	charging := schedule.FromSchedule(orbit, 45) // 2-minute slots
	demand := schedule.NewUniformGrid(120, 45, 1.0)

	plan, err := alloc.Compute(alloc.Inputs{
		Charging:      charging,
		EventRate:     demand,
		CapacityMax:   2000, // joules
		CapacityMin:   100,
		InitialCharge: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := params.BuildTable(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-slot discrete plan for one orbit (feasible after %d Algorithm 1 rounds):\n",
		len(plan.Iterations))
	fmt.Println("slot  sun(W)  plan(W)  pick")
	for i := 0; i < charging.Len(); i += 5 {
		budget := plan.Allocation.Values[i]
		pt := tbl.Select(budget)
		fmt.Printf("%4d  %6.2f  %7.2f  %s\n", i, charging.Values[i], budget, pt)
	}
}
