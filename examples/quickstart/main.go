// Quickstart: plan power for a battery-backed multiprocessor in a
// dozen lines.
//
// A solar-charged board sees 2.4 W for half its 57.6 s orbit and
// nothing in eclipse, while demand peaks at both ends of the period.
// The manager (a) reshapes the demand so the battery never overflows
// or empties (§4.1), (b) picks how many processors to run and at
// what clock each 4.8 s slot (§4.2), and (c) keeps re-planning as
// reality diverges from the forecast (§4.3).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dpm/internal/dpm"
	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/schedule"
)

func main() {
	const tau = 4.8 // seconds per planning slot

	// What we expect the environment to do, per slot.
	charging := schedule.NewGrid(tau, []float64{
		2.4, 2.4, 2.4, 2.4, 2.4, 2.4, 0, 0, 0, 0, 0, 0,
	})
	demand := schedule.NewGrid(tau, []float64{
		1.9, 1.2, 0.3, 0.3, 1.2, 2.0, 1.9, 1.2, 0.3, 0.3, 1.2, 2.0,
	})

	// What the hardware can do: an 8-chip PAMA-like board, voltage
	// pinned at 3.3 V, clocks of 20/40/80 MHz, and an Amdahl workload
	// with a 10% serial fraction.
	workload, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := dpm.New(dpm.Config{
		Charging:      charging,
		EventRate:     demand,
		CapacityMax:   17.3, // joules
		CapacityMin:   0.5,
		InitialCharge: 0.5,
		Params: params.Config{
			System:        power.PAMA(),
			Curve:         power.NewFixedVoltage(3.3, 80e6),
			Workload:      workload,
			Frequencies:   []float64{20e6, 40e6, 80e6},
			MaxProcessors: 7,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("slot  budget(W)  operating point")
	for slot := 0; slot < 12; slot++ {
		point, _ := mgr.BeginSlot()
		fmt.Printf("%4d  %8.2f   %s\n", slot, mgr.PlannedPower(), point)
		// Pretend we consumed exactly what the point draws and the
		// charger delivered the forecast; Algorithm 3 folds any
		// difference back into the remaining plan.
		mgr.EndSlot(point.Power*tau, charging.Values[slot]*tau)
	}
}
