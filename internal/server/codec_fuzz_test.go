package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// FuzzBinaryCodecParity pins two properties of the binary plan codec:
//
//  1. decode(encode(x)) == x for every encodable request, modulo the
//     scenario normalization both wire forms share, and
//  2. for the same request, the binary and JSON endpoints agree — the
//     same status on failure, and semantically equal plans on success.
//
// Grids are grown from fuzzed bytes so every input is finite and
// JSON-encodable; the interesting surface is geometry and parameter
// validation, not NaN plumbing (FuzzDecodePlanRequest covers hostile
// bytes, and TestBinaryTruncation covers hostile binary framing).
func FuzzBinaryCodecParity(f *testing.F) {
	srv, err := New(Config{})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	post := func(t *testing.T, contentType string, body []byte) (int, []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		req.Header.Set("Accept", contentType)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		res := rec.Result()
		defer res.Body.Close()
		return res.StatusCode, rec.Body.Bytes()
	}

	f.Add("I", uint8(4), []byte{3, 0, 1, 2}, []byte{1, 4, 2, 1}, []byte{}, uint8(90), uint8(30), uint8(30), uint8(0), uint8(0), uint8(3))
	f.Add("II", uint8(2), []byte{9, 9}, []byte{1, 1}, []byte{1, 2}, uint8(60), uint8(20), uint8(0), uint8(1), uint8(1), uint8(0))
	f.Add("", uint8(0), []byte{}, []byte{5}, []byte{}, uint8(0), uint8(0), uint8(0), uint8(2), uint8(2), uint8(9))
	f.Add("geometry", uint8(4), []byte{1, 2, 3}, []byte{1}, []byte{}, uint8(0), uint8(0), uint8(0), uint8(0), uint8(3), uint8(0))

	strategies := []string{"", "proportional", "even"}
	planners := []string{"", "paper", "yds", "bunde"}

	f.Fuzz(func(t *testing.T, name string, step uint8, charging, usage, weight []byte, cmax, cmin, initial, stratSel, planSel, maxIter uint8) {
		if len(charging) > 64 || len(usage) > 64 || len(weight) > 64 {
			t.Skip("grid larger than the parity harness needs")
		}
		// JSON cannot carry invalid UTF-8 (encoding/json substitutes
		// U+FFFD), so parity with the byte-preserving binary codec is
		// only defined for valid strings.
		name = strings.ToValidUTF8(name, "�")
		grid := func(b []byte) *schedule.Grid {
			vals := make([]float64, len(b))
			for i, v := range b {
				vals[i] = float64(v % 32)
			}
			return &schedule.Grid{Step: float64(step%16) + 0.5, Values: vals}
		}
		var w *schedule.Grid
		if len(weight) > 0 {
			w = grid(weight)
		}
		req := PlanRequest{
			Scenario: trace.Scenario{
				Name:          name,
				Charging:      grid(charging),
				Usage:         grid(usage),
				Weight:        w,
				CapacityMax:   float64(cmax),
				CapacityMin:   float64(cmin),
				InitialCharge: float64(initial),
			},
			Strategy: strategies[int(stratSel)%len(strategies)],
			Planner:  planners[int(planSel)%len(planners)],
			// Bounded so no single input plans for seconds; iteration
			// depth is not what this harness probes.
			MaxIterations: int(maxIter % 32),
		}

		enc := AppendPlanRequestBinary(nil, &req)

		// Round trip: the decoder normalizes through trace.NewScenario,
		// so compare against the same normalization. A scenario the
		// normalizer rejects must be rejected by the decoder too.
		norm, normErr := trace.NewScenario(req.Scenario.Name, req.Scenario.Charging,
			req.Scenario.Usage, req.Scenario.Weight, req.Scenario.CapacityMax,
			req.Scenario.CapacityMin, req.Scenario.InitialCharge)
		dec, decErr := DecodePlanRequestBinary(enc)
		if normErr != nil {
			if decErr == nil {
				t.Fatalf("normalizer rejects scenario (%v) but decoder accepted it", normErr)
			}
		} else {
			if decErr != nil {
				t.Fatalf("decode: %v", decErr)
			}
			want := req
			want.Scenario = norm
			if !reflect.DeepEqual(*dec, want) {
				t.Fatalf("round trip diverged:\n got %+v\nwant %+v", *dec, want)
			}
		}

		// Endpoint parity: same status both ways; on success the
		// binary plan decodes to exactly the JSON plan.
		jsonBody := mustJSON(t, req)
		jStatus, jResp := post(t, "application/json", jsonBody)
		bStatus, bResp := post(t, BinaryContentType, enc)
		if jStatus != bStatus {
			t.Fatalf("status diverged: json %d (%s), binary %d (%s)", jStatus, jResp, bStatus, bResp)
		}
		if jStatus != http.StatusOK {
			assertStructuredError(t, bResp, bStatus)
			return
		}
		var want PlanResponse
		if err := decodeInto(jResp, &want); err != nil {
			t.Fatal(err)
		}
		got, err := DecodePlanResponseBinary(bResp)
		if err != nil {
			t.Fatalf("decoding binary response: %v", err)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("plans diverged:\n got %+v\nwant %+v", *got, want)
		}
	})
}
