package server

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// postRaw posts body with explicit Content-Type and Accept headers and
// returns status, headers and response body.
func postRaw(t *testing.T, base, path, contentType, accept string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestBinaryCodecRoundTrip: decode(encode(x)) == x for every record
// kind, including optional fields present and absent.
func TestBinaryCodecRoundTrip(t *testing.T) {
	weight := &schedule.Grid{Step: 4.8, Values: []float64{1, 2, 1}}
	reqs := []PlanRequest{
		{Scenario: trace.ScenarioI()},
		{Scenario: trace.ScenarioII(), Strategy: "even", Planner: "yds", MaxIterations: 7, Margin: 0.125},
		{Scenario: trace.Scenario{
			Name:          "weighted",
			Charging:      &schedule.Grid{Step: 4.8, Values: []float64{3, 0, 1}},
			Usage:         &schedule.Grid{Step: 4.8, Values: []float64{1, 4, 2}},
			Weight:        weight,
			CapacityMax:   90,
			CapacityMin:   30,
			InitialCharge: 30,
		}},
	}
	for _, req := range reqs {
		enc := AppendPlanRequestBinary(nil, &req)
		dec, err := DecodePlanRequestBinary(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", req.Scenario.Name, err)
		}
		if !reflect.DeepEqual(*dec, req) {
			t.Errorf("%s: round trip diverged:\n got %+v\nwant %+v", req.Scenario.Name, *dec, req)
		}
	}

	resp := PlanResponse{
		Scenario:   "I",
		Planner:    "yds",
		Tau:        4.8,
		Allocation: []float64{2.25, 0.5, 3},
		Trajectory: []float64{40, 41.2, 39.9, 40},
		Iterations: 3,
		Feasible:   true,
	}
	encR := AppendPlanResponseBinary(nil, &resp)
	decR, err := DecodePlanResponseBinary(encR)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*decR, resp) {
		t.Errorf("plan response round trip diverged:\n got %+v\nwant %+v", *decR, resp)
	}

	batch := BatchRequest{Requests: reqs}
	encB := AppendBatchRequestBinary(nil, &batch)
	decB, err := DecodeBatchRequestBinary(encB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*decB, batch) {
		t.Errorf("batch request round trip diverged")
	}
}

// TestBinaryNameSplice: the server caches the name-free binary body
// and splices the scenario name per response; the spliced bytes must
// equal a direct encode of the named response.
func TestBinaryNameSplice(t *testing.T) {
	resp := PlanResponse{
		Tau:        4.8,
		Allocation: []float64{1, 2},
		Trajectory: []float64{40, 41, 40},
		Iterations: 2,
		Feasible:   true,
	}
	nameless := AppendPlanResponseBinary(nil, &resp)
	named := resp
	named.Scenario = "scenario-I"
	want := AppendPlanResponseBinary(nil, &named)
	got := withScenarioNameBinary("scenario-I", nameless)
	if !bytes.Equal(got, want) {
		t.Errorf("spliced bytes diverge from direct encode:\n got %x\nwant %x", got, want)
	}
	if out := withScenarioNameBinary("", nameless); !bytes.Equal(out, nameless) {
		t.Error("empty-name splice must return the body unchanged")
	}
}

// TestBinaryTruncation: every truncation of a valid record fails to
// decode rather than succeeding with garbage, and trailing bytes are
// rejected.
func TestBinaryTruncation(t *testing.T) {
	req := PlanRequest{Scenario: trace.ScenarioI()}
	enc := AppendPlanRequestBinary(nil, &req)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodePlanRequestBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(enc))
		}
	}
	if _, err := DecodePlanRequestBinary(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestBinaryPlanParity: the binary response for a request is
// semantically identical to the JSON response for the same request —
// same floats bit for bit, same planner, same cache behavior — and
// the two encodings occupy distinct cache entries.
func TestBinaryPlanParity(t *testing.T) {
	srv, base := startServer(t, Config{})
	for _, s := range trace.Scenarios() {
		req := PlanRequest{Scenario: s}

		jsonBody := mustJSON(t, req)
		status, _, jb := postJSON(t, base, "/v1/plan", jsonBody)
		if status != http.StatusOK {
			t.Fatalf("%s json: status %d: %s", s.Name, status, jb)
		}
		var want PlanResponse
		if err := decodeInto(jb, &want); err != nil {
			t.Fatal(err)
		}

		binBody := AppendPlanRequestBinary(nil, &req)
		status, hdr, bb := postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType, binBody)
		if status != http.StatusOK {
			t.Fatalf("%s binary: status %d: %s", s.Name, status, bb)
		}
		if ct := hdr.Get("Content-Type"); ct != BinaryContentType {
			t.Errorf("%s binary: Content-Type %q, want %q", s.Name, ct, BinaryContentType)
		}
		if got := hdr.Get("X-Dpmd-Cache"); got != "miss" {
			t.Errorf("%s binary first request: cache %q, want miss", s.Name, got)
		}
		got, err := DecodePlanResponseBinary(bb)
		if err != nil {
			t.Fatalf("%s: decoding binary response: %v", s.Name, err)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("%s: binary response diverges from JSON:\n got %+v\nwant %+v", s.Name, *got, want)
		}

		// The binary replay is a cache hit with identical bytes.
		status, hdr, bb2 := postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType, binBody)
		if status != http.StatusOK {
			t.Fatalf("%s binary replay: status %d", s.Name, status)
		}
		if gotState := hdr.Get("X-Dpmd-Cache"); gotState != "hit" {
			t.Errorf("%s binary replay: cache %q, want hit", s.Name, gotState)
		}
		if !bytes.Equal(bb, bb2) {
			t.Errorf("%s: binary replay bytes diverge", s.Name)
		}

		// Mixed axes: JSON body asking for a binary response, and a
		// binary body asking for JSON, both land on their Accept form.
		status, hdr, mixed := postRaw(t, base, "/v1/plan", "application/json", BinaryContentType, jsonBody)
		if status != http.StatusOK {
			t.Fatalf("%s json→binary: status %d", s.Name, status)
		}
		if !bytes.Equal(mixed, bb) {
			t.Errorf("%s: json→binary bytes diverge from binary→binary", s.Name)
		}
		_ = hdr
		status, _, jm := postRaw(t, base, "/v1/plan", BinaryContentType, "", binBody)
		if status != http.StatusOK {
			t.Fatalf("%s binary→json: status %d", s.Name, status)
		}
		if !bytes.Equal(jm, jb) {
			t.Errorf("%s: binary→json bytes diverge from the JSON golden path", s.Name)
		}
	}
	// Two scenarios × two encodings: four cache entries, no collisions.
	if st := srv.CacheStats(); st.Len != 4 {
		t.Errorf("cache holds %d entries, want 4 (2 scenarios × 2 encodings)", st.Len)
	}
}

// TestBinaryBatchParity: a binary batch response matches the JSON one
// item for item — statuses, cache states, plans and error messages.
func TestBinaryBatchParity(t *testing.T) {
	_, base := startServer(t, Config{})
	reqs := []PlanRequest{
		{Scenario: trace.ScenarioI()},
		{Scenario: trace.ScenarioII(), Planner: "yds"},
		{Scenario: trace.ScenarioI(), Planner: "vaporware"}, // per-item 400
		{Scenario: trace.ScenarioI()},                       // duplicate → hit
	}

	status, _, jb := postJSON(t, base, "/v1/batch", batchOf(t, reqs...))
	if status != http.StatusOK {
		t.Fatalf("json batch: status %d: %s", status, jb)
	}
	var jr BatchResponse
	if err := decodeInto(jb, &jr); err != nil {
		t.Fatal(err)
	}

	enc := AppendBatchRequestBinary(nil, &BatchRequest{Requests: reqs})
	status, hdr, bb := postRaw(t, base, "/v1/batch", BinaryContentType, BinaryContentType, enc)
	if status != http.StatusOK {
		t.Fatalf("binary batch: status %d: %s", status, bb)
	}
	if ct := hdr.Get("Content-Type"); ct != BinaryContentType {
		t.Errorf("binary batch: Content-Type %q", ct)
	}
	items, err := DecodeBatchResponseBinary(bb)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(jr.Results) {
		t.Fatalf("binary batch has %d items, JSON %d", len(items), len(jr.Results))
	}
	for i, item := range items {
		want := jr.Results[i]
		if item.Status != want.Status {
			t.Errorf("item %d: binary status %d, JSON %d", i, item.Status, want.Status)
		}
		// The JSON batch ran first and warmed the "plan" keyspace but
		// not "planb": cache states agree in kind within each run
		// (the duplicate item is a hit in both), not across runs.
		if want.Status == http.StatusOK {
			var jp PlanResponse
			if err := decodeInto(want.Body, &jp); err != nil {
				t.Fatal(err)
			}
			if item.Plan == nil {
				t.Fatalf("item %d: no binary plan", i)
			}
			if !reflect.DeepEqual(*item.Plan, jp) {
				t.Errorf("item %d: binary plan diverges from JSON:\n got %+v\nwant %+v", i, *item.Plan, jp)
			}
		} else {
			var ae apiError
			if err := decodeInto(want.Body, &ae); err != nil {
				t.Fatal(err)
			}
			if item.Message != ae.Error {
				t.Errorf("item %d: binary error %q, JSON %q", i, item.Message, ae.Error)
			}
		}
	}
}

// TestBinaryErrorsStayJSON: top-level failures — malformed binary
// bodies, invalid scenarios under a binary Accept — answer with the
// structured JSON error body, so error handling is uniform across
// encodings.
func TestBinaryErrorsStayJSON(t *testing.T) {
	_, base := startServer(t, Config{})

	status, hdr, body := postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType, []byte("not a record"))
	if status != http.StatusBadRequest {
		t.Fatalf("garbage binary body: status %d: %s", status, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("binary decode error Content-Type %q, want JSON", ct)
	}
	assertStructuredError(t, body, http.StatusBadRequest)

	// A structurally valid record with an invalid scenario: same 400
	// class as the JSON path.
	bad := PlanRequest{Scenario: trace.Scenario{
		Name:     "bad",
		Charging: &schedule.Grid{Step: 4.8, Values: []float64{1}},
		Usage:    &schedule.Grid{Step: 4.8, Values: []float64{1, 2}},
	}}
	status, _, body = postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType,
		AppendPlanRequestBinary(nil, &bad))
	if status != http.StatusBadRequest {
		t.Fatalf("geometry mismatch: status %d: %s", status, body)
	}
	assertStructuredError(t, body, http.StatusBadRequest)
}

// TestJSONGoldenUnchangedAfterBinaryTraffic: binary traffic must not
// perturb the JSON wire form — the golden bytes hold even when the
// same scenario has already been planned and cached through the
// binary keyspace.
func TestJSONGoldenUnchangedAfterBinaryTraffic(t *testing.T) {
	_, base := startServer(t, Config{})
	req := PlanRequest{Scenario: trace.ScenarioI()}
	enc := AppendPlanRequestBinary(nil, &req)
	if status, _, body := postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType, enc); status != http.StatusOK {
		t.Fatalf("binary warmup: status %d: %s", status, body)
	}
	status, _, body := postJSON(t, base, "/v1/plan", mustJSON(t, req))
	if status != http.StatusOK {
		t.Fatalf("json: status %d: %s", status, body)
	}
	assertGolden(t, "plan_scenario_I.golden", body)
}
