// Package server implements dpmd, the long-running power-planning
// service. A fleet of battery-backed nodes shares one deployment: a
// node POSTs its charging forecast and battery band and receives the
// paper's plans back as JSON — the Algorithm 1 power allocation
// (/v1/plan), the Algorithm 2 (n, f) schedule for a plan
// (/v1/params), the Algorithm 3 runtime update given planned-vs-
// actual energies (/v1/replan) and a bounded closed-loop simulation
// (/v1/simulate) — plus /healthz and a plain-text /metrics.
//
// Because many nodes share hardware configurations and charging
// forecasts, plan and params responses are cached in a
// concurrency-safe LRU (internal/plancache) keyed by a canonical
// hash of the scenario; repeated requests are served byte-identical
// from memory. Handlers run behind a bounded worker pool with
// per-request timeouts and body-size limits, and shutdown drains
// in-flight requests before returning.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dpm/internal/dpm"
	"dpm/internal/fleet"
	"dpm/internal/metrics"
	"dpm/internal/obs"
	"dpm/internal/params"
	"dpm/internal/pipeline"
	"dpm/internal/plancache"
	"dpm/internal/resilience"
	"dpm/internal/scenario"
	"dpm/internal/trace"
)

// cacheHeader reports whether a response came from the plan cache.
const cacheHeader = "X-Dpmd-Cache"

// Config tunes the service.
type Config struct {
	// Addr is the listen address (host:port); ":8080" by default.
	Addr string
	// PoolSize bounds concurrently executing planning requests;
	// excess requests wait (up to the request timeout) for a slot.
	// Default 8.
	PoolSize int
	// CacheEntries is the plan-cache capacity. Default 256.
	CacheEntries int
	// CacheShards is the number of plan-cache shards (rounded up to a
	// power of two). 0 picks the default: GOMAXPROCS rounded up to a
	// power of two, capped at 16. 1 restores the single-lock cache.
	CacheShards int
	// RequestTimeout bounds one request end to end: the wait for a
	// pool slot plus the planning or simulation work itself. The
	// work is cancelled cooperatively — the deadline is checked
	// between Algorithm 1 iterations, simulated slots, machine-sim
	// events and trace draws — and a request whose deadline has
	// expired is answered 503 rather than having its response
	// written after the SLO. Default 10 s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// Logger receives one line per request; nil disables logging.
	// Ignored when AccessLog is set.
	Logger *log.Logger
	// AccessLog, when non-nil, replaces Logger with structured events:
	// one "request" event per request (request_id, method, path,
	// status, bytes, dur_ms, cache, remote) plus "listening" and
	// "shutdown" lifecycle events.
	AccessLog *obs.Logger
	// DebugAddr, when non-empty, serves net/http/pprof on a second
	// listener at that address. The profiling mux is deliberately
	// separate from the API listener so operators can firewall it.
	DebugAddr string
	// DrainGrace delays the listener close at shutdown: /readyz flips
	// to 503 the moment Shutdown is called, then the server keeps
	// accepting for DrainGrace so load balancers polling readiness
	// stop routing before connections start failing. 0 closes the
	// listener immediately.
	DrainGrace time.Duration
	// DisableShedding turns off predictive admission shedding.
	// Requests then queue until a worker slot frees or their deadline
	// expires — the pre-admission-control behavior.
	DisableShedding bool
	// ChaosHold, when positive, holds every pooled request for that
	// long (or until its deadline expires) after it takes a worker
	// slot. It exists to drive the pool into saturation
	// deterministically — overload drills and the CI smoke test
	// (cmd/dpmd -chaos-hold). 0 disables.
	ChaosHold time.Duration
	// Wrap, when non-nil, wraps the assembled handler tree — the hook
	// chaos middleware (internal/chaostest.Middleware) and embedder
	// instrumentation attach to.
	Wrap func(http.Handler) http.Handler
	// FleetPartitions is the fleet session partition count, rounded up
	// to a power of two. 0 picks fleet.DefaultPartitions().
	FleetPartitions int
	// FleetMaxSessions caps live fleet sessions; a register beyond the
	// cap answers 503 with Retry-After. 0 means unlimited.
	FleetMaxSessions int
	// FleetIdleTTL evicts fleet sessions untouched for this long,
	// parking their checkpoints for handback on re-register. 0
	// disables eviction.
	FleetIdleTTL time.Duration
	// IngestAddr, when non-empty, runs the telemetry ingestion daemon
	// (internal/ingest) on that UDP address: registered devices stream
	// StatsD counters/gauges, flush windows close observed slots that
	// tick their fleet sessions, and sustained forecast divergence
	// replans them. Empty disables ingestion; /v1/ingest/* answer 404.
	IngestAddr string
	// IngestFlush is the ingestion flush interval (one observed slot
	// per window). 0 disables the timer: windows close only via
	// POST /v1/ingest/flush — the deterministic test/ops mode.
	IngestFlush time.Duration
	// IngestPredictor selects the forecast estimator: "last-period"
	// (default), "moving-average" or "exponential".
	IngestPredictor string
	// DivergenceThreshold is the observed-vs-planned relative error
	// above which an ingestion slot counts as breached (default 0.25).
	DivergenceThreshold float64
	// IngestEventEnergyJ converts counted events to joules (default 1).
	IngestEventEnergyJ float64
}

func (c *Config) setDefaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.PoolSize == 0 {
		c.PoolSize = 8
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
}

// Server is one dpmd instance.
type Server struct {
	cfg   Config
	cache *plancache.Sharded[[]byte]
	stats *metrics.ServiceStats
	tel   *telemetry
	adm   *resilience.Controller
	fleet *fleet.Manager
	// ingest is the telemetry ingestion loop; nil when disabled.
	ingest *ingestState
	mux    *http.ServeMux

	// draining flips the moment Shutdown begins; /readyz answers 503
	// from then on while /healthz keeps reporting liveness.
	draining atomic.Bool

	mu       sync.Mutex
	listener net.Listener
	httpSrv  *http.Server
	serveErr chan error
	debugLn  net.Listener
	debugSrv *http.Server

	// testDelay, when non-nil, runs inside every pooled handler
	// after the pool slot is acquired — tests use it to hold
	// requests in flight across a Shutdown.
	testDelay func()
}

// New validates the configuration and assembles the handler tree.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.PoolSize < 1 {
		return nil, fmt.Errorf("server: pool size %d must be at least 1", cfg.PoolSize)
	}
	if cfg.RequestTimeout < 0 {
		return nil, fmt.Errorf("server: negative request timeout %s", cfg.RequestTimeout)
	}
	if cfg.MaxBodyBytes < 1024 {
		return nil, fmt.Errorf("server: max body %d bytes is below the 1 KiB floor", cfg.MaxBodyBytes)
	}
	cache, err := plancache.NewSharded(cfg.CacheEntries, cfg.CacheShards, func(b []byte) []byte {
		return append([]byte(nil), b...)
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	fm, err := fleet.New(fleet.Config{
		Partitions:  cfg.FleetPartitions,
		MaxSessions: cfg.FleetMaxSessions,
		IdleTTL:     cfg.FleetIdleTTL,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		stats: metrics.NewServiceStats(),
		adm:   resilience.NewController(cfg.PoolSize, cfg.DisableShedding),
		fleet: fm,
		mux:   http.NewServeMux(),
	}
	s.tel = newTelemetry(s)
	if cfg.IngestAddr != "" || cfg.IngestFlush > 0 {
		ing, err := newIngest(s)
		if err != nil {
			fm.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.ingest = ing
	}
	s.mux.Handle("/v1/plan", s.endpoint(http.MethodPost, true, s.handlePlan))
	s.mux.Handle("/v1/batch", s.endpoint(http.MethodPost, true, s.handleBatch))
	s.mux.Handle("/v1/params", s.endpoint(http.MethodPost, true, s.handleParams))
	s.mux.Handle("/v1/replan", s.endpoint(http.MethodPost, true, s.handleReplan))
	s.mux.Handle("/v1/simulate", s.endpoint(http.MethodPost, true, s.handleSimulate))
	s.mux.Handle("/v1/fleet/register", s.endpoint(http.MethodPost, true, s.handleFleetRegister))
	s.mux.Handle("/v1/fleet/tick", s.endpoint(http.MethodPost, true, s.handleFleetTick))
	s.mux.Handle("/v1/fleet/bulk-tick", s.endpoint(http.MethodPost, true, s.handleFleetBulkTick))
	s.mux.Handle("/v1/fleet/drain", s.endpoint(http.MethodPost, true, s.handleFleetDrain))
	s.mux.Handle("/v1/ingest/stats", s.endpoint(http.MethodGet, false, s.handleIngestStats))
	s.mux.Handle("/v1/ingest/flush", s.endpoint(http.MethodPost, false, s.handleIngestFlush))
	s.mux.Handle("/healthz", s.endpoint(http.MethodGet, false, s.handleHealthz))
	s.mux.Handle("/readyz", s.endpoint(http.MethodGet, false, s.handleReadyz))
	s.mux.Handle("/metrics", s.endpoint(http.MethodGet, false, s.handleMetrics))
	// Prime every pooled route so each endpoint learns its own EWMA
	// service time from its first request and appears on /metrics from
	// startup — new endpoints must never share another's estimate.
	s.adm.Prime(
		"/v1/plan", "/v1/batch", "/v1/params", "/v1/replan", "/v1/simulate",
		"/v1/fleet/register", "/v1/fleet/tick", "/v1/fleet/bulk-tick", "/v1/fleet/drain",
	)
	return s, nil
}

// Handler returns the service's HTTP handler (for tests and
// in-process embedding), with Config.Wrap applied when set.
func (s *Server) Handler() http.Handler {
	if s.cfg.Wrap != nil {
		return s.cfg.Wrap(s.mux)
	}
	return s.mux
}

// AdmissionStats snapshots the admission controller's per-endpoint
// counters.
func (s *Server) AdmissionStats() []resilience.EndpointAdmission { return s.adm.Snapshot() }

// CacheStats snapshots the plan-cache counters.
func (s *Server) CacheStats() plancache.Stats { return s.cache.Stats() }

// statusWriter records the status code and body size for logging and
// metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// endpoint wraps a handler with the service middleware: method
// check, body-size limit, per-request timeout, the bounded worker
// pool (for planning endpoints), request-id propagation, telemetry
// attachment, request accounting and logging.
func (s *Server) endpoint(method string, pooled bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		// Honor a well-formed inbound X-Request-Id, generate one
		// otherwise, and echo it on the response before the handler can
		// write headers.
		reqID := obs.SanitizeRequestID(r.Header.Get(requestIDHeader))
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		sw.Header().Set(requestIDHeader, reqID)
		func() {
			if r.Method != method {
				sw.Header().Set("Allow", method)
				writeError(sw, http.StatusMethodNotAllowed,
					fmt.Sprintf("method %s not allowed; use %s", r.Method, method))
				return
			}
			if r.Body != nil {
				r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
			}
			ctx := r.Context()
			// The effective deadline is the tighter of the server's
			// RequestTimeout and the client's own remaining budget
			// (X-Dpmd-Deadline) — a reply the client will have stopped
			// waiting for is not worth computing.
			timeout := s.cfg.RequestTimeout
			if pooled {
				d, derr := clientDeadline(r)
				if derr != nil {
					s.fail(sw, r, derr)
					return
				}
				if d > 0 && (timeout == 0 || d < timeout) {
					timeout = d
				}
			}
			if timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			if pooled {
				// Planning endpoints always record per-stage latencies;
				// the span tree is materialized only for requests that
				// opt in with the trace header.
				rec := &obs.Recorder{Stages: s.tel.stages}
				if r.Header.Get(traceHeader) == "1" {
					rec.Trace = obs.NewTrace()
				}
				ctx = obs.WithRecorder(ctx, rec)
				r = r.WithContext(ctx)
				// Deadline-aware admission: take a worker slot, or be
				// shed right away when the predicted queue wait already
				// overruns the deadline — a queued-to-die request costs
				// a connection and a queue position for nothing.
				slot, verdict, retryAfter := s.adm.Acquire(ctx, r.URL.Path)
				switch verdict {
				case resilience.Shed:
					writeUnavailable(sw, retryAfter,
						"worker pool saturated and predicted wait exceeds the request deadline; request shed")
					return
				case resilience.Expired:
					writeUnavailable(sw, retryAfter,
						"worker pool saturated; request deadline expired while queued")
					return
				}
				defer slot.Release()
				if s.cfg.ChaosHold > 0 {
					holdCtx(ctx, s.cfg.ChaosHold)
				}
				if s.testDelay != nil {
					s.testDelay()
				}
			} else {
				r = r.WithContext(ctx)
			}
			h(sw, r)
		}()
		dur := time.Since(start)
		s.stats.Observe(r.URL.Path, sw.status, dur.Seconds())
		s.tel.reqHist.Observe(r.URL.Path, dur.Seconds())
		if sw.status >= 400 {
			s.tel.errTotal.Add(r.URL.Path, 1)
		}
		cache := sw.Header().Get(cacheHeader)
		if cache == "" {
			cache = "-"
		}
		if s.cfg.AccessLog != nil {
			s.cfg.AccessLog.Event("request",
				obs.F("request_id", reqID),
				obs.F("method", r.Method),
				obs.F("path", r.URL.Path),
				obs.F("status", sw.status),
				obs.F("bytes", sw.bytes),
				obs.F("dur_ms", float64(dur.Microseconds())/1000),
				obs.F("cache", cache),
				obs.F("remote", r.RemoteAddr))
		} else if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("method=%s path=%s status=%d bytes=%d dur_ms=%.3f cache=%s remote=%s request_id=%s",
				r.Method, r.URL.Path, sw.status, sw.bytes, float64(dur.Microseconds())/1000, cache, r.RemoteAddr, reqID)
		}
	})
}

// errorJSON renders the structured error body exactly as writeError
// sends it, without the trailing newline — the form batch items
// embed.
func errorJSON(status int, msg string) json.RawMessage {
	return json.RawMessage(fmt.Sprintf("{\"error\":%q,\"status\":%d}", msg, status))
}

// writeError emits the structured error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(errorJSON(status, msg), '\n')) //nolint:errcheck
}

// setRetryAfter stamps the Retry-After header in whole seconds with a
// 1 s floor — the granularity the header speaks.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// writeUnavailable emits a 503 with the structured error body and a
// Retry-After computed from the admission controller's queue state,
// so a well-behaved client backs off by the server's own estimate
// instead of guessing.
func writeUnavailable(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	setRetryAfter(w, retryAfter)
	writeError(w, http.StatusServiceUnavailable, msg)
}

// holdCtx sleeps d or until ctx is done — the drain-grace and
// chaos-hold timer.
func holdCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// errorBody maps an error onto its HTTP status and client-facing
// message: an explicit httpError keeps its code, a context
// cancellation (the request deadline expired or the client went away
// mid-computation) becomes 503, a validation failure
// (scenario.Error) or badRequest becomes 400, anything else is a
// 500.
func errorBody(err error) (int, string) {
	var he httpError
	if errors.As(err, &he) {
		return he.status, he.Error()
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusServiceUnavailable, "request deadline exceeded; computation aborted"
	}
	var ve *scenario.Error
	if errors.As(err, &ve) {
		return http.StatusBadRequest, ve.Error()
	}
	var br badRequest
	if errors.As(err, &br) {
		return http.StatusBadRequest, br.Error()
	}
	return http.StatusInternalServerError, err.Error()
}

// fail writes the structured error response for err. Every 503 —
// notably a deadline that expired mid-computation — carries a
// Retry-After from the admission controller's current estimate, so
// all overload responses are uniformly retryable.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	status, msg := errorBody(err)
	if status == http.StatusServiceUnavailable {
		setRetryAfter(w, s.adm.RetryAfter(r.URL.Path))
	}
	writeError(w, status, msg)
}

// writeJSONBytes writes a pre-marshaled JSON body.
func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck
}

// writeBinaryBytes writes a pre-encoded binary-codec body.
func writeBinaryBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", BinaryContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck
}

// marshalBody renders a response exactly as the cache stores it, so
// cold and cached replies are byte-identical.
func marshalBody(v any) ([]byte, error) {
	b, err := canonicalJSON(v)
	if err != nil {
		return nil, fmt.Errorf("encoding response: %w", err)
	}
	return b, nil
}

// respondCached serves the computed-or-cached flow shared by the
// plan and params endpoints: look the canonical key up, compute and
// insert on a miss — coalescing concurrent identical misses onto one
// computation — and tag the response with the X-Dpmd-Cache header
// either way. decorate, when non-nil, rewrites the cached body into
// the final wire form (e.g. splicing the request's scenario name
// back in); it must be deterministic so hits stay byte-identical to
// the miss that populated them. The response is never written after
// the request's deadline has expired.
func (s *Server) respondCached(w http.ResponseWriter, r *http.Request, key string, decorate func([]byte) []byte, compute func(ctx context.Context) (any, error)) {
	ctx := r.Context()
	body, served, err := s.cache.GetOrCompute(ctx, key, func() ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return marshalBody(resp)
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if err := ctx.Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	state := "miss"
	if served {
		state = "hit"
	}
	if decorate != nil {
		body = decorate(body)
	}
	w.Header().Set(cacheHeader, state)
	writeJSONBytes(w, body)
}

// planResponse runs the pipeline for a validated, normalized plan
// request and shapes the name-free response. keyScenario is the
// request's scenario with the name cleared — the canonical form both
// wire encodings cache.
func planResponse(ctx context.Context, req *PlanRequest, keyScenario trace.Scenario) (*PlanResponse, error) {
	strategy, _ := parseStrategy(req.Strategy)
	res, err := pipeline.PlanWith(ctx, req.Planner, pipeline.PlanSpec{
		Scenario:      keyScenario,
		Strategy:      strategy,
		MaxIterations: req.MaxIterations,
		Margin:        req.Margin,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, badRequest{err}
	}
	return &PlanResponse{
		Planner:    req.Planner,
		Tau:        res.Allocation.Step,
		Allocation: res.Allocation.Values,
		Trajectory: res.Trajectory,
		Iterations: len(res.Iterations),
		Feasible:   res.Feasible,
	}, nil
}

// planBody answers one plan request through the shared
// validate → cache → pipeline flow: validate and normalize, look the
// canonical key up, compute and insert on a miss (coalescing
// concurrent identical misses onto one computation), and splice the
// request's scenario name back into the cached, name-free body. It
// returns the exact wire body (with trailing newline) plus the cache
// disposition, and is shared verbatim by /v1/plan and every
// /v1/batch item so the two are byte-identical.
func (s *Server) planBody(ctx context.Context, req *PlanRequest) ([]byte, string, error) {
	if err := validatePlanRequest(req); err != nil {
		return nil, "", err
	}
	s.tel.planStrategy.Add(strategyLabel(req.Planner), 1)
	keyReq := *req
	keyReq.Scenario.Name = ""
	key, err := plancache.Key("plan", keyReq)
	if err != nil {
		return nil, "", err
	}
	ctx, cspan := obs.StartSpan(ctx, "plan.cache")
	defer cspan.End()
	body, served, err := s.cache.GetOrCompute(ctx, key, func() ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := planResponse(ctx, req, keyReq.Scenario)
		if err != nil {
			return nil, err
		}
		return marshalBody(resp)
	})
	if err != nil {
		return nil, "", err
	}
	state := "miss"
	if served {
		state = "hit"
	}
	cspan.SetAttr("state", state)
	return withScenarioName(req.Scenario.Name, body), state, nil
}

// planBodyBinary is planBody for the binary wire form: the same
// validation, normalization and pipeline computation, cached under
// the "planb" key prefix — the cache stores wire bytes and the two
// encodings differ, so each lives in its own keyspace. (A fleet
// speaking both encodings for one scenario computes the plan once per
// encoding; in practice hot clients standardize on one.) The cached
// body is name-free and the request's scenario name is spliced into
// the record prefix per response, mirroring the JSON path exactly.
func (s *Server) planBodyBinary(ctx context.Context, req *PlanRequest) ([]byte, string, error) {
	if err := validatePlanRequest(req); err != nil {
		return nil, "", err
	}
	s.tel.planStrategy.Add(strategyLabel(req.Planner), 1)
	keyReq := *req
	keyReq.Scenario.Name = ""
	key, err := plancache.Key("planb", keyReq)
	if err != nil {
		return nil, "", err
	}
	ctx, cspan := obs.StartSpan(ctx, "plan.cache")
	defer cspan.End()
	body, served, err := s.cache.GetOrCompute(ctx, key, func() ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := planResponse(ctx, req, keyReq.Scenario)
		if err != nil {
			return nil, err
		}
		buf := binBufPool.Get().(*[]byte)
		defer binBufPool.Put(buf)
		*buf = AppendPlanResponseBinary((*buf)[:0], resp)
		// One exact-size copy out of the pooled scratch: the cache owns
		// its bytes outright, same contract as canonicalJSON.
		out := make([]byte, len(*buf))
		copy(out, *buf)
		return out, nil
	})
	if err != nil {
		return nil, "", err
	}
	state := "miss"
	if served {
		state = "hit"
	}
	cspan.SetAttr("state", state)
	return withScenarioNameBinary(req.Scenario.Name, body), state, nil
}

// handlePlan runs Algorithm 1 (§4.1): WPUF → balancing → feasible
// per-slot power allocation. The scenario name is presentation, not
// a planning input: the cache key and the cached body both exclude
// it, so every node naming the same scenario differently shares one
// LRU entry, and the name is spliced back in per response.
//
// Wire negotiation: a "Content-Type: application/x-dpm-plan" body is
// decoded with the binary codec, and an Accept header naming that
// type gets the binary response form; either axis defaults to JSON
// and the JSON bytes are unchanged. Errors are always JSON, and the
// trace envelope (X-Dpmd-Trace) is JSON-only — a binary response
// carries the plan record alone.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if isBinaryRequest(r) {
		raw, err := readBinaryBody(r)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		preq, err := DecodePlanRequestBinary(raw)
		if err != nil {
			s.fail(w, r, badRequest{err})
			return
		}
		req = *preq
	} else if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if err := applyStrategyParam(r, &req.Planner); err != nil {
		s.fail(w, r, err)
		return
	}
	if acceptsBinary(r) {
		body, state, err := s.planBodyBinary(r.Context(), &req)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		if err := r.Context().Err(); err != nil {
			s.fail(w, r, err)
			return
		}
		w.Header().Set(cacheHeader, state)
		writeBinaryBytes(w, body)
		return
	}
	body, state, err := s.planBody(r.Context(), &req)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	if rec := obs.RecorderFrom(r.Context()); rec != nil && rec.Trace != nil {
		s.writeTracedPlan(w, r, body, state, rec.Trace)
		return
	}
	w.Header().Set(cacheHeader, state)
	writeJSONBytes(w, body)
}

// writeTracedPlan answers a /v1/plan request that opted in with
// "X-Dpmd-Trace: 1": the default body bytes are embedded verbatim
// (minus the trailing newline) under "response" and the span tree
// rides alongside under "trace". The plan cache stores and serves the
// same bytes whether or not the request was traced — tracing decorates
// the response, it never forks the cached payload.
func (s *Server) writeTracedPlan(w http.ResponseWriter, r *http.Request, body []byte, state string, tr *obs.Trace) {
	out, err := marshalBody(&TracedPlanResponse{
		Response: json.RawMessage(bytes.TrimSuffix(body, []byte("\n"))),
		Trace: TraceInfo{
			RequestID: w.Header().Get(requestIDHeader),
			Spans:     tr.Tree(),
		},
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	w.Header().Set(cacheHeader, state)
	w.Header().Set(traceHeader, "1")
	writeJSONBytes(w, out)
}

// handleBatch answers N plan requests in one call. Every item runs
// the exact /v1/plan flow — same validation, same plan cache, same
// bytes — fanned across a bounded set of workers (pipeline.ForEach),
// and failures are reported per item so one bad scenario does not
// void the rest of the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if isBinaryRequest(r) {
		raw, err := readBinaryBody(r)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		breq, err := DecodeBatchRequestBinary(raw)
		if err != nil {
			s.fail(w, r, badRequest{err})
			return
		}
		req = *breq
	} else if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if len(req.Requests) == 0 {
		s.fail(w, r, badRequestf("at least one plan request is required"))
		return
	}
	if len(req.Requests) > scenario.MaxBatch {
		s.fail(w, r, badRequestf("%d plan requests exceed the batch limit of %d",
			len(req.Requests), scenario.MaxBatch))
		return
	}
	for i := range req.Requests {
		if err := applyStrategyParam(r, &req.Requests[i].Planner); err != nil {
			s.fail(w, r, err)
			return
		}
	}
	ctx := r.Context()
	if acceptsBinary(r) {
		s.handleBatchBinary(w, r, &req)
		return
	}
	results := make([]BatchItem, len(req.Requests))
	// The batch holds one worker-pool slot; its items fan out across
	// at most the same parallelism the pool would grant individual
	// requests.
	pipeline.ForEach(ctx, len(req.Requests), s.cfg.PoolSize, func(ctx context.Context, i int) {
		body, state, err := s.planBody(ctx, &req.Requests[i])
		if err != nil {
			status, msg := errorBody(err)
			results[i] = BatchItem{Status: status, Body: errorJSON(status, msg)}
			return
		}
		results[i] = BatchItem{
			Status: http.StatusOK,
			Cache:  state,
			Body:   json.RawMessage(bytes.TrimSuffix(body, []byte("\n"))),
		}
	})
	if err := ctx.Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	body, err := marshalBody(&BatchResponse{Results: results})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

// handleBatchBinary answers an already-decoded batch request in the
// binary response form: every item runs the same planBodyBinary flow
// as a binary /v1/plan call (same cache, same bytes), failures embed
// a binary error record with the status and message the JSON item
// would carry, and the assembled response is encoded through pooled
// scratch.
func (s *Server) handleBatchBinary(w http.ResponseWriter, r *http.Request, req *BatchRequest) {
	ctx := r.Context()
	results := make([]binaryBatchItem, len(req.Requests))
	pipeline.ForEach(ctx, len(req.Requests), s.cfg.PoolSize, func(ctx context.Context, i int) {
		body, state, err := s.planBodyBinary(ctx, &req.Requests[i])
		if err != nil {
			status, msg := errorBody(err)
			results[i] = binaryBatchItem{Status: status, Body: AppendBinaryError(nil, status, msg)}
			return
		}
		results[i] = binaryBatchItem{Status: http.StatusOK, Cache: state, Body: body}
	})
	if err := ctx.Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	buf := binBufPool.Get().(*[]byte)
	defer binBufPool.Put(buf)
	*buf = appendBatchResponseBinary((*buf)[:0], results)
	writeBinaryBytes(w, *buf)
}

// withScenarioName splices a scenario name into a cached, name-free
// plan body. PlanResponse declares "scenario" as its first field
// with omitempty, so the cached bytes open with {"tau":...; re-adding
// the field in declaration position yields exactly the bytes
// json.Marshal would produce for the named response, keeping hits
// byte-identical to a cold, named computation.
func withScenarioName(name string, body []byte) []byte {
	if name == "" || len(body) < 2 || body[0] != '{' || body[1] == '}' {
		return body
	}
	quoted, err := json.Marshal(name)
	if err != nil {
		return body
	}
	out := make([]byte, 0, len(body)+len(quoted)+13)
	out = append(out, `{"scenario":`...)
	out = append(out, quoted...)
	out = append(out, ',')
	return append(out, body[1:]...)
}

// handleParams runs Algorithm 2 (§4.2): enumerate and Pareto-prune
// the (n, f) table, then walk the allocation with the
// overhead-aware switching rule.
func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	var req ParamsRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if err := scenario.ValidateGrid("allocation", req.Allocation, true); err != nil {
		s.fail(w, r, err)
		return
	}
	hw := req.Hardware.WithDefaults()
	req.Hardware = &hw // canonicalize for the cache key
	if _, err := hw.ParamsConfig(); err != nil {
		s.fail(w, r, err)
		return
	}
	key, err := plancache.Key("params", req)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.respondCached(w, r, key, nil, func(ctx context.Context) (any, error) {
		table, _, err := pipeline.Table(ctx, req.Hardware)
		if err != nil {
			return nil, err
		}
		steps := table.Plan(req.Allocation.Values, req.Allocation.Step)
		resp := &ParamsResponse{
			Steps: make([]ParamsStep, len(steps)),
			Table: table.Points(),
		}
		for i, st := range steps {
			resp.Steps[i] = ParamsStep{
				Slot:        st.Slot,
				AllocatedW:  st.Allocated,
				N:           st.Point.N,
				FrequencyHz: st.Point.F,
				VoltageV:    st.Point.V,
				PowerW:      st.Point.Power,
				Perf:        st.Point.Perf,
				Switched:    st.Switched,
				OverheadJ:   st.OverheadEnergy,
			}
		}
		return resp, nil
	})
}

// handleReplan runs the Algorithm 3 runtime update (§4.3): restore
// the manager's state, apply the reported planned-vs-actual slot
// energies, and return the redistributed plan plus the next
// checkpoint.
func (s *Server) handleReplan(w http.ResponseWriter, r *http.Request) {
	var req ReplanRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	pcfg, pol, err := scenarioParams(req.Scenario, req.Hardware, req.Policy)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	reports := make([]pipeline.SlotReport, len(req.Slots))
	for i, rep := range req.Slots {
		reports[i] = pipeline.SlotReport(rep)
	}
	mgr, err := pipeline.ReplayWith(r.Context(), req.Planner, req.Scenario, pcfg, pol, req.State, reports)
	if err != nil {
		s.fail(w, r, badRequest{err})
		return
	}
	body, err := marshalBody(&ReplanResponse{
		Plan:    mgr.PlanSnapshot(),
		ChargeJ: mgr.Charge(),
		Slot:    mgr.Slot(),
		State:   mgr.Checkpoint(),
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

// handleSimulate runs a bounded closed-loop simulation: the analytic
// manager/battery model by default, or the discrete-event PAMA board
// when machine is set.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	pcfg, pol, err := scenarioParams(req.Scenario, req.Hardware, req.Policy)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	limit := scenario.MaxPeriods
	if req.Machine {
		limit = scenario.MaxMachinePeriods
	}
	if req.Periods < 1 || req.Periods > limit {
		s.fail(w, r, badRequestf("periods %d outside [1, %d]", req.Periods, limit))
		return
	}
	var resp *SimulateResponse
	if req.Machine {
		resp, err = simulateMachine(r.Context(), req, pcfg, pol)
	} else {
		resp, err = simulateAnalytic(r.Context(), req, pcfg, pol)
	}
	if err != nil {
		s.fail(w, r, err)
		return
	}
	body, err := marshalBody(resp)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

func simulateAnalytic(ctx context.Context, req SimulateRequest, pcfg params.Config, pol dpm.RedistributePolicy) (*SimulateResponse, error) {
	bm, err := parseBattery(req.Battery)
	if err != nil {
		return nil, err
	}
	res, err := pipeline.Simulate(ctx, pipeline.SimSpec{
		Scenario:       req.Scenario,
		Planner:        req.Planner,
		Params:         pcfg,
		Policy:         pol,
		Battery:        bm,
		ActualCharging: req.ActualCharging,
		Periods:        req.Periods,
		SyncCharge:     true,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, badRequest{err}
	}
	e := metrics.FromSnapshot(res.Battery)
	resp := &SimulateResponse{
		Mode:           "analytic",
		WastedJ:        e.Wasted,
		UndersuppliedJ: e.Undersupplied,
		SuppliedJ:      e.Supplied,
		DeliveredJ:     e.Delivered,
		Utilization:    e.Utilization,
		Switches:       res.Switches,
		PerfSeconds:    res.PerfSeconds,
	}
	if req.IncludeRecords && len(res.Records) <= scenario.MaxRecords {
		resp.Records = make([]SimulateRecord, len(res.Records))
		for i, rec := range res.Records {
			resp.Records[i] = SimulateRecord{
				TimeS:       rec.Time,
				PlannedW:    rec.Planned,
				UsedW:       rec.UsedPower,
				N:           rec.Point.N,
				FrequencyHz: rec.Point.F,
				ChargeJ:     rec.Charge,
			}
		}
	}
	return resp, nil
}

func simulateMachine(ctx context.Context, req SimulateRequest, pcfg params.Config, pol dpm.RedistributePolicy) (*SimulateResponse, error) {
	if req.Battery != "" && req.Battery != "net-flow" {
		return nil, badRequestf("machine mode models the battery itself; battery %q is not selectable", req.Battery)
	}
	scale := req.EventScale
	if scale == 0 {
		scale = 0.1
	}
	if !scenario.IsFinite(scale) || scale < 0 || scale > 10 {
		return nil, badRequestf("eventScale %g outside [0, 10]", scale)
	}
	res, err := pipeline.SimulateMachine(ctx, pipeline.MachineSpec{
		Scenario:       req.Scenario,
		Planner:        req.Planner,
		Params:         pcfg,
		Policy:         pol,
		ActualCharging: req.ActualCharging,
		Periods:        req.Periods,
		EventScale:     scale,
		Seed:           req.Seed,
		// Hostile rate × horizon products are rejected before any
		// trace is drawn, so they cost a cheap 400, not a wedged pool
		// slot.
		MaxExpectedEvents: scenario.MaxMachineEvents,
		ExecuteDSP:        false,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		var ve *scenario.Error
		if errors.As(err, &ve) {
			return nil, err
		}
		return nil, fmt.Errorf("machine run: %w", err)
	}
	e := metrics.FromSnapshot(res.Battery)
	resp := &SimulateResponse{
		Mode:           "machine",
		WastedJ:        e.Wasted,
		UndersuppliedJ: e.Undersupplied,
		SuppliedJ:      e.Supplied,
		DeliveredJ:     e.Delivered,
		Utilization:    e.Utilization,
		EventsArrived:  res.EventsArrived,
		TasksCompleted: res.TasksCompleted,
		MeanLatencyS:   res.MeanLatencySeconds,
		EnergyUsedJ:    res.EnergyUsed,
	}
	if req.IncludeRecords && len(res.Records) <= scenario.MaxRecords {
		resp.Records = make([]SimulateRecord, len(res.Records))
		for i, rec := range res.Records {
			resp.Records[i] = SimulateRecord{
				TimeS:       rec.Time,
				PlannedW:    rec.Planned,
				UsedW:       rec.UsedPower,
				N:           rec.TargetN,
				FrequencyHz: rec.TargetF,
				ChargeJ:     rec.Charge,
			}
		}
	}
	return resp, nil
}

// handleHealthz reports liveness: the process is up and serving.
// It stays 200 through a graceful drain — restarting an instance
// because it is draining would defeat the drain.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReadyz reports readiness: 200 while accepting work, 503 the
// moment graceful drain begins, so load balancers stop routing to
// this instance before its listener closes. Liveness (/healthz) and
// readiness are deliberately separate signals.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeUnavailable(w, time.Second, "draining; not ready")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"status":"ready"}`)
}

// handleMetrics renders the legacy flat counters first (the original
// scrape surface, kept for compatibility), then the typed Prometheus
// families from the registry: request and pipeline-stage histograms,
// error counters, per-shard cache counters and runtime gauges. The
// legacy lines are unlabeled or labeled samples without TYPE
// annotations, which the exposition format permits, so the whole body
// remains a valid scrape target.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	cs := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	metrics.WriteServiceText(w, metrics.CacheStats{ //nolint:errcheck
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Evictions: cs.Evictions,
		Puts:      cs.Puts,
		Len:       cs.Len,
		Capacity:  cs.Capacity,
	}, s.stats.Snapshot())
	s.tel.registry.WriteProm(w) //nolint:errcheck
}

// Start binds the configured address and serves in the background.
// Use Addr to learn the bound address (":0" picks a free port) and
// Shutdown to stop.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return fmt.Errorf("server: already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	if s.cfg.DebugAddr != "" {
		dln, err := net.Listen("tcp", s.cfg.DebugAddr)
		if err != nil {
			ln.Close() //nolint:errcheck
			return fmt.Errorf("server: listen debug %s: %w", s.cfg.DebugAddr, err)
		}
		s.debugLn = dln
		s.debugSrv = &http.Server{Handler: debugMux()}
		go s.debugSrv.Serve(dln) //nolint:errcheck
	}
	if s.ingest != nil {
		if err := s.ingest.daemon.Start(); err != nil {
			if s.debugLn != nil {
				s.debugLn.Close() //nolint:errcheck
				s.debugLn, s.debugSrv = nil, nil
			}
			ln.Close() //nolint:errcheck
			return fmt.Errorf("server: %w", err)
		}
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.serveErr = make(chan error, 1)
	go func() {
		err := s.httpSrv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr <- err
		}
		close(s.serveErr)
	}()
	debugAddr := ""
	if s.debugLn != nil {
		debugAddr = s.debugLn.Addr().String()
	}
	if s.cfg.AccessLog != nil {
		s.cfg.AccessLog.Event("listening",
			obs.F("addr", ln.Addr().String()),
			obs.F("pool", s.cfg.PoolSize),
			obs.F("cache", s.cfg.CacheEntries),
			obs.F("timeout", s.cfg.RequestTimeout.String()),
			obs.F("debug_addr", debugAddr))
	} else if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("listening addr=%s pool=%d cache=%d timeout=%s",
			ln.Addr(), s.cfg.PoolSize, s.cfg.CacheEntries, s.cfg.RequestTimeout)
	}
	return nil
}

// debugMux builds the pprof handler tree on a private mux rather than
// http.DefaultServeMux, so importing net/http/pprof never leaks the
// profiler onto the API listener.
func debugMux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return m
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// DebugAddr returns the bound pprof listener address, or "" when no
// debug listener is configured or the server has not started.
func (s *Server) DebugAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.debugLn == nil {
		return ""
	}
	return s.debugLn.Addr().String()
}

// Shutdown stops accepting connections and drains in-flight requests
// until they complete or ctx expires. Readiness flips first: /readyz
// answers 503 immediately, then the listener stays open for
// Config.DrainGrace so load balancers polling readiness observe
// not-ready before connections start being refused.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	errCh := s.serveErr
	debugSrv := s.debugSrv
	s.mu.Unlock()
	if srv == nil {
		// Never started (handler-only embedding): there are no in-flight
		// requests to drain, but the ingestion shards and fleet
		// partitions may be running. The daemon stops first — its
		// flushes call into the fleet.
		if s.ingest != nil {
			s.ingest.daemon.Close()
		}
		s.fleet.Close()
		return nil
	}
	if debugSrv != nil {
		// The profiler has no in-flight work worth draining; close it
		// immediately so a hung profile stream cannot stall shutdown.
		debugSrv.Close() //nolint:errcheck
	}
	// Flip readiness before closing anything; the grace window runs
	// only on the first Shutdown call so concurrent callers do not
	// stack delays.
	if s.draining.CompareAndSwap(false, true) && s.cfg.DrainGrace > 0 {
		holdCtx(ctx, s.cfg.DrainGrace)
	}
	// The ingestion daemon stops before the fleet on every path: its
	// flush loop ticks fleet sessions, so the ordering guarantees no
	// flush ever observes a closed fleet.
	closeLoops := func() {
		if s.ingest != nil {
			s.ingest.daemon.Close()
		}
		s.fleet.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		closeLoops()
		return fmt.Errorf("server: shutdown: %w", err)
	}
	if errCh != nil {
		if err, ok := <-errCh; ok && err != nil {
			closeLoops()
			return err
		}
	}
	// In-flight ticks have drained with the listener; stopping the
	// partition goroutines last means no request ever observes a
	// closed fleet during a graceful shutdown. Checkpoints still live
	// here had no /v1/fleet/drain call during the grace window; they
	// are dropped with the process, exactly like the stateless flow
	// dropping an unsent checkpoint.
	closeLoops()
	if s.cfg.AccessLog != nil {
		s.cfg.AccessLog.Event("shutdown")
	} else if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("shutdown complete")
	}
	return nil
}

// Run starts the server and blocks until ctx is cancelled, then
// shuts down gracefully within shutdownTimeout.
func (s *Server) Run(ctx context.Context, shutdownTimeout time.Duration) error {
	if err := s.Start(); err != nil {
		return err
	}
	s.mu.Lock()
	errCh := s.serveErr
	s.mu.Unlock()
	select {
	case <-ctx.Done():
	case err, ok := <-errCh:
		if ok && err != nil {
			return err
		}
		return nil
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	return s.Shutdown(sctx)
}
