package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"dpm/internal/alloc"
	"dpm/internal/dpm"
	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// Wire types for the dpmd JSON API. Each request embeds the same
// trace.Scenario wire form cmd/dpmsim -config loads, so a scenario
// file works unchanged as a request body; schedules use the
// schedule.Grid form {"step": τ, "values": [...]}.

// Request bounds. The HTTP body limit (Config.MaxBodyBytes) already
// caps raw size; these bound the *work* a single request may demand.
const (
	// maxSlots caps schedule and plan lengths per request.
	maxSlots = 4096
	// maxPeriods caps /v1/simulate analytic horizons.
	maxPeriods = 64
	// maxMachinePeriods caps the discrete-event board simulation,
	// which costs orders of magnitude more per period.
	maxMachinePeriods = 8
	// maxFrequencies caps the Algorithm 2 enumeration per request.
	maxFrequencies = 64
	// maxRecords caps the per-slot rows a simulate response carries.
	maxRecords = 1024
	// maxPowerW, maxTauS and maxEnergyJ bound the physical
	// magnitudes a request may carry. They are far beyond any real
	// deployment (a gigawatt, a ~11-day slot, a petajoule) but small
	// enough that the planning arithmetic cannot overflow float64
	// into the NaN/Inf range JSON cannot carry.
	maxPowerW  = 1e9
	maxTauS    = 1e6
	maxEnergyJ = 1e15
	// maxMachineEvents caps the event trace one machine-mode simulate
	// request may generate. The per-magnitude bounds above still
	// admit a huge *product* (rate × horizon), so the expected event
	// count is checked against this cap before any trace is drawn,
	// and the trace generator enforces it again as a hard backstop.
	maxMachineEvents = 1 << 18
)

// apiError is the structured error body every non-2xx response
// carries.
type apiError struct {
	// Error is a human-readable description of what was wrong with
	// the request (or, for 5xx, with the server).
	Error string `json:"error"`
	// Status echoes the HTTP status code.
	Status int `json:"status"`
}

// badRequest wraps a client-input error so handlers can distinguish
// it from internal failures.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// badRequestf builds a 400-class error.
func badRequestf(format string, args ...any) error {
	return badRequest{fmt.Errorf(format, args...)}
}

// httpError pins an explicit status code onto an error, for the
// non-400/500 cases (oversized body → 413, expired deadline → 503).
type httpError struct {
	status int
	err    error
}

func (e httpError) Error() string { return e.err.Error() }
func (e httpError) Unwrap() error { return e.err }

// Hardware describes the board Algorithm 2 optimizes for. The zero
// value (or a nil pointer) means the paper's PAMA configuration:
// eight M32R/D chips of which seven are workers, voltage pinned at
// 3.3 V, clocks of 20/40/80 MHz, the FORTE FFT workload, and no
// switching overheads.
type Hardware struct {
	// VoltageV is the pinned supply voltage in volts.
	VoltageV float64 `json:"voltageV,omitempty"`
	// MaxFrequencyHz is the VF-curve ceiling in hertz.
	MaxFrequencyHz float64 `json:"maxFrequencyHz,omitempty"`
	// FrequenciesHz are the selectable clocks in hertz.
	FrequenciesHz []float64 `json:"frequenciesHz,omitempty"`
	// MaxProcessors and MinProcessors bound the active-count range.
	MaxProcessors int `json:"maxProcessors,omitempty"`
	MinProcessors int `json:"minProcessors,omitempty"`
	// OverheadProcJ and OverheadFreqJ are the switching energies OHn
	// and OHf in joules.
	OverheadProcJ float64 `json:"overheadProcJ,omitempty"`
	OverheadFreqJ float64 `json:"overheadFreqJ,omitempty"`
	// PerfValue converts performance×τ into joules for the
	// Algorithm 2 switching test.
	PerfValue float64 `json:"perfValue,omitempty"`
	// IdleSleep parks inactive processors in sleep instead of
	// stand-by.
	IdleSleep bool `json:"idleSleep,omitempty"`
	// WorkloadTotalS and WorkloadSerialS are the Amdahl profile:
	// single-processor time and its serial part, in seconds.
	WorkloadTotalS  float64 `json:"workloadTotalS,omitempty"`
	WorkloadSerialS float64 `json:"workloadSerialS,omitempty"`
}

// withDefaults returns a copy with every zero field set to the paper
// value, so the canonical cache key treats an omitted hardware block
// and an explicitly spelled-out PAMA block as the same scenario.
func (h *Hardware) withDefaults() Hardware {
	out := Hardware{}
	if h != nil {
		out = *h
	}
	if out.VoltageV == 0 {
		out.VoltageV = 3.3
	}
	if out.MaxFrequencyHz == 0 {
		out.MaxFrequencyHz = 80e6
	}
	if len(out.FrequenciesHz) == 0 {
		out.FrequenciesHz = []float64{20e6, 40e6, 80e6}
	}
	if out.MaxProcessors == 0 {
		out.MaxProcessors = 7
	}
	if out.WorkloadTotalS == 0 {
		out.WorkloadTotalS = 4.8
	}
	if out.WorkloadSerialS == 0 {
		out.WorkloadSerialS = 0.48
	}
	return out
}

// paramsConfig validates the hardware block and assembles the
// Algorithm 2 configuration. All errors are client errors.
func (h Hardware) paramsConfig() (params.Config, error) {
	if !isFinite(h.VoltageV) || h.VoltageV <= 0 {
		return params.Config{}, badRequestf("hardware: voltage %g must be positive", h.VoltageV)
	}
	if !isFinite(h.MaxFrequencyHz) || h.MaxFrequencyHz <= 0 {
		return params.Config{}, badRequestf("hardware: max frequency %g must be positive", h.MaxFrequencyHz)
	}
	if len(h.FrequenciesHz) > maxFrequencies {
		return params.Config{}, badRequestf("hardware: %d frequencies exceed the limit of %d", len(h.FrequenciesHz), maxFrequencies)
	}
	for _, f := range h.FrequenciesHz {
		if !isFinite(f) || f <= 0 {
			return params.Config{}, badRequestf("hardware: non-positive frequency %g", f)
		}
	}
	for name, v := range map[string]float64{
		"overheadProcJ": h.OverheadProcJ, "overheadFreqJ": h.OverheadFreqJ, "perfValue": h.PerfValue,
	} {
		if !isFinite(v) || v < 0 {
			return params.Config{}, badRequestf("hardware: %s %g must be non-negative", name, v)
		}
	}
	w, err := perf.NewWorkload(h.WorkloadTotalS, h.WorkloadSerialS)
	if err != nil {
		return params.Config{}, badRequest{err}
	}
	cfg := params.Config{
		System:        power.PAMA(),
		Curve:         power.NewFixedVoltage(h.VoltageV, h.MaxFrequencyHz),
		Workload:      w,
		Frequencies:   h.FrequenciesHz,
		MaxProcessors: h.MaxProcessors,
		MinProcessors: h.MinProcessors,
		OverheadProc:  h.OverheadProcJ,
		OverheadFreq:  h.OverheadFreqJ,
		PerfValue:     h.PerfValue,
		IdleSleep:     h.IdleSleep,
	}
	// BuildTable re-validates; run it here so every config error
	// surfaces as a 400 at decode time rather than a 500 later.
	if _, err := params.BuildTable(cfg); err != nil {
		return params.Config{}, badRequest{err}
	}
	return cfg, nil
}

// PlanRequest asks for an Algorithm 1 power allocation.
type PlanRequest struct {
	// Scenario is the planning environment: charging and usage
	// schedules, optional weight, battery band.
	Scenario trace.Scenario `json:"scenario"`
	// Strategy selects the arc-reshaping flavor: "proportional"
	// (default, the paper's formula) or "even".
	Strategy string `json:"strategy,omitempty"`
	// MaxIterations bounds the Algorithm 1 driver (0 = default 16).
	MaxIterations int `json:"maxIterations,omitempty"`
	// Margin keeps a fraction of the battery band clear at each end
	// (0 ≤ margin < 0.5).
	Margin float64 `json:"margin,omitempty"`
}

// PlanResponse is the computed allocation.
type PlanResponse struct {
	// Scenario echoes the request's scenario name.
	Scenario string `json:"scenario,omitempty"`
	// Tau is the slot width in seconds.
	Tau float64 `json:"tau"`
	// Allocation is the per-slot power plan in watts.
	Allocation []float64 `json:"allocation"`
	// Trajectory is the battery energy at the len+1 slot boundaries
	// in joules.
	Trajectory []float64 `json:"trajectory"`
	// Iterations counts Algorithm 1 driver rounds.
	Iterations int `json:"iterations"`
	// Feasible reports whether the trajectory stays inside the band.
	Feasible bool `json:"feasible"`
}

// ParamsRequest asks for an Algorithm 2 (n, f) schedule for a plan.
type ParamsRequest struct {
	// Allocation is the power plan to parameterize, typically a
	// PlanResponse's allocation re-wrapped as a grid.
	Allocation *schedule.Grid `json:"allocation"`
	// Hardware describes the board; nil means the PAMA defaults.
	Hardware *Hardware `json:"hardware,omitempty"`
}

// ParamsStep is one slot of the (n, f) schedule.
type ParamsStep struct {
	// Slot indexes the period.
	Slot int `json:"slot"`
	// AllocatedW is the slot's power budget in watts.
	AllocatedW float64 `json:"allocatedW"`
	// N, FrequencyHz and VoltageV are the chosen operating point.
	N           int     `json:"n"`
	FrequencyHz float64 `json:"frequencyHz"`
	VoltageV    float64 `json:"voltageV"`
	// PowerW and Perf are the point's draw and Eq. 3 performance.
	PowerW float64 `json:"powerW"`
	Perf   float64 `json:"perf"`
	// Switched reports an operating-point change at this boundary;
	// OverheadJ is the switching energy charged for it.
	Switched  bool    `json:"switched"`
	OverheadJ float64 `json:"overheadJ"`
}

// ParamsResponse is the per-slot schedule plus the Pareto table it
// was selected from.
type ParamsResponse struct {
	// Steps is the per-slot (n, f) schedule.
	Steps []ParamsStep `json:"steps"`
	// Table is the Pareto frontier of operating points.
	Table []params.OperatingPoint `json:"table"`
}

// SlotReport is one completed slot's measured energies.
type SlotReport struct {
	// UsedJ is the energy the system actually consumed in joules.
	UsedJ float64 `json:"usedJ"`
	// SuppliedJ is the energy the source actually delivered.
	SuppliedJ float64 `json:"suppliedJ"`
}

// ReplanRequest applies Algorithm 3: given the manager's run-time
// state and one or more completed slots' planned-vs-actual energies,
// redistribute the deviation over the future window.
type ReplanRequest struct {
	// Scenario is the planning environment the state belongs to.
	Scenario trace.Scenario `json:"scenario"`
	// Hardware describes the board; nil means the PAMA defaults.
	Hardware *Hardware `json:"hardware,omitempty"`
	// Policy selects the redistribution flavor: "proportional"
	// (default) or "even".
	Policy string `json:"policy,omitempty"`
	// State is the manager checkpoint to resume from; nil means a
	// fresh period start.
	State *dpm.State `json:"state,omitempty"`
	// Slots reports the completed slots, oldest first.
	Slots []SlotReport `json:"slots"`
}

// ReplanResponse carries the updated plan and the checkpoint to send
// with the next replan call.
type ReplanResponse struct {
	// Plan is the updated per-period allocation in watts.
	Plan []float64 `json:"plan"`
	// ChargeJ is the manager's battery-charge estimate in joules.
	ChargeJ float64 `json:"chargeJ"`
	// Slot is the absolute slot counter after the reports.
	Slot int `json:"slot"`
	// State is the full checkpoint for the next request.
	State dpm.State `json:"state"`
}

// SimulateRequest runs a bounded closed-loop simulation.
type SimulateRequest struct {
	// Scenario is the planning environment.
	Scenario trace.Scenario `json:"scenario"`
	// Hardware describes the board; nil means the PAMA defaults.
	Hardware *Hardware `json:"hardware,omitempty"`
	// Periods is the horizon in charging periods (1 ≤ p ≤ 64
	// analytic, ≤ 8 machine).
	Periods int `json:"periods"`
	// Policy selects the Algorithm 3 flavor: "proportional"
	// (default) or "even".
	Policy string `json:"policy,omitempty"`
	// Battery selects intra-slot semantics: "net-flow" (default) or
	// "sequential".
	Battery string `json:"battery,omitempty"`
	// ActualCharging is what the source really delivers; nil means
	// the expectation holds.
	ActualCharging *schedule.Grid `json:"actualCharging,omitempty"`
	// Machine runs the discrete-event PAMA board simulation with a
	// Poisson event trace instead of the analytic model.
	Machine bool `json:"machine,omitempty"`
	// EventScale and Seed drive the machine-mode event trace.
	EventScale float64 `json:"eventScale,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	// IncludeRecords returns per-slot rows (bounded to 1024 slots).
	IncludeRecords bool `json:"includeRecords,omitempty"`
}

// SimulateRecord is one per-slot row of a simulate response.
type SimulateRecord struct {
	// TimeS is the slot start in seconds.
	TimeS float64 `json:"timeS"`
	// PlannedW and UsedW are the plan's and the realized draw.
	PlannedW float64 `json:"plannedW"`
	UsedW    float64 `json:"usedW"`
	// N and FrequencyHz are the operating point run.
	N           int     `json:"n"`
	FrequencyHz float64 `json:"frequencyHz"`
	// ChargeJ is the battery at slot end.
	ChargeJ float64 `json:"chargeJ"`
}

// SimulateResponse summarizes the run in the paper's §5 metrics.
type SimulateResponse struct {
	// Mode is "analytic" or "machine".
	Mode string `json:"mode"`
	// WastedJ and UndersuppliedJ are the Table 1 penalties.
	WastedJ        float64          `json:"wastedJ"`
	UndersuppliedJ float64          `json:"undersuppliedJ"`
	SuppliedJ      float64          `json:"suppliedJ"`
	DeliveredJ     float64          `json:"deliveredJ"`
	Utilization    float64          `json:"utilization"`
	Switches       int              `json:"switches,omitempty"`
	PerfSeconds    float64          `json:"perfSeconds,omitempty"`
	EventsArrived  int              `json:"eventsArrived,omitempty"`
	TasksCompleted int              `json:"tasksCompleted,omitempty"`
	MeanLatencyS   float64          `json:"meanLatencyS,omitempty"`
	EnergyUsedJ    float64          `json:"energyUsedJ,omitempty"`
	Records        []SimulateRecord `json:"records,omitempty"`
}

// decodeJSON reads one JSON value from the (already size-limited)
// body into dst, rejecting trailing garbage. Decode errors are
// client errors; an oversized body gets the conventional 413 so
// clients and proxies can tell "shrink the payload" from "malformed
// JSON".
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return httpError{
				status: http.StatusRequestEntityTooLarge,
				err:    fmt.Errorf("request body exceeds %d bytes", maxErr.Limit),
			}
		}
		return badRequestf("decoding request: %v", err)
	}
	if dec.More() {
		return badRequestf("request body has trailing data after the JSON value")
	}
	// Drain any whitespace so keep-alive connections stay reusable.
	io.Copy(io.Discard, r.Body) //nolint:errcheck
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// canonicalJSON marshals v compactly with a trailing newline — the
// byte form the cache stores and the wire carries, so a cached reply
// is byte-identical to the cold one. A JSON-unsupported value (NaN
// or ±Inf that slipped through the input bounds into a computed
// plan) is reported as a client error: the inputs were numerically
// out of range, not the server broken.
func canonicalJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		var unsup *json.UnsupportedValueError
		if errors.As(err, &unsup) {
			return nil, badRequestf("inputs are numerically out of range: computed plan contains %s", unsup.Str)
		}
		return nil, err
	}
	return append(b, '\n'), nil
}

// validateGrid rejects grids the planner cannot safely consume:
// missing, over-long, non-finite or negative. (The JSON decoder
// already rejects literal NaN/Inf tokens and overflowing numbers;
// the checks here are the backstop for programmatic callers.)
func validateGrid(name string, g *schedule.Grid, requireNonNegative bool) error {
	if g == nil {
		return badRequestf("%s schedule is required", name)
	}
	if g.Len() > maxSlots {
		return badRequestf("%s schedule has %d slots; the limit is %d", name, g.Len(), maxSlots)
	}
	if !isFinite(g.Step) || g.Step <= 0 || g.Step > maxTauS {
		return badRequestf("%s schedule step %g outside (0, %g] seconds", name, g.Step, float64(maxTauS))
	}
	for i, v := range g.Values {
		if !isFinite(v) || v > maxPowerW {
			return badRequestf("%s[%d] = %g outside the supported power range", name, i, v)
		}
		if requireNonNegative && v < 0 {
			return badRequestf("%s[%d] = %g is negative", name, i, v)
		}
	}
	return nil
}

// validateScenario applies the server-side bounds on top of the
// trace-level geometry checks its UnmarshalJSON already ran.
func validateScenario(s trace.Scenario) error {
	if err := validateGrid("charging", s.Charging, true); err != nil {
		return err
	}
	if err := validateGrid("usage", s.Usage, true); err != nil {
		return err
	}
	if s.Weight != nil {
		if err := validateGrid("weight", s.Weight, true); err != nil {
			return err
		}
	}
	for name, v := range map[string]float64{
		"capacityMax": s.CapacityMax, "capacityMin": s.CapacityMin, "initialCharge": s.InitialCharge,
	} {
		if !isFinite(v) || v < 0 || v > maxEnergyJ {
			return badRequestf("%s %g outside [0, %g] joules", name, v, float64(maxEnergyJ))
		}
	}
	if s.CapacityMax <= s.CapacityMin {
		return badRequestf("capacityMax %g must exceed capacityMin %g", s.CapacityMax, s.CapacityMin)
	}
	return nil
}

// parseStrategy maps the wire name onto the alloc constant.
func parseStrategy(s string) (alloc.AdjustStrategy, error) {
	switch s {
	case "", "proportional":
		return alloc.RemapProportional, nil
	case "even":
		return alloc.RemapEven, nil
	default:
		return 0, badRequestf("unknown strategy %q (want proportional or even)", s)
	}
}

// parsePolicy maps the wire name onto the dpm constant.
func parsePolicy(s string) (dpm.RedistributePolicy, error) {
	switch s {
	case "", "proportional":
		return dpm.Proportional, nil
	case "even":
		return dpm.Even, nil
	default:
		return 0, badRequestf("unknown policy %q (want proportional or even)", s)
	}
}

// parseBattery maps the wire name onto the dpm battery model.
func parseBattery(s string) (dpm.BatteryModel, error) {
	switch s {
	case "", "net-flow":
		return dpm.NetFlow, nil
	case "sequential":
		return dpm.Sequential, nil
	default:
		return 0, badRequestf("unknown battery model %q (want net-flow or sequential)", s)
	}
}

// validatePlanRequest normalizes and bounds a plan request; the
// returned request has every default spelled out (strategy,
// maxIterations) so semantically identical requests canonicalize to
// one cache key.
func validatePlanRequest(req *PlanRequest) error {
	if err := validateScenario(req.Scenario); err != nil {
		return err
	}
	if _, err := parseStrategy(req.Strategy); err != nil {
		return err
	}
	if req.Strategy == "" {
		req.Strategy = "proportional"
	}
	if req.MaxIterations < 0 || req.MaxIterations > 1024 {
		return badRequestf("maxIterations %d outside [0, 1024]", req.MaxIterations)
	}
	if req.MaxIterations == 0 {
		req.MaxIterations = 16 // alloc.Compute's documented default
	}
	if !isFinite(req.Margin) || req.Margin < 0 || req.Margin >= 0.5 {
		return badRequestf("margin %g outside [0, 0.5)", req.Margin)
	}
	return nil
}

// managerConfig assembles the dpm manager configuration shared by
// the replan and simulate endpoints.
func managerConfig(s trace.Scenario, hw *Hardware, policy string) (dpm.Config, error) {
	if err := validateScenario(s); err != nil {
		return dpm.Config{}, err
	}
	pol, err := parsePolicy(policy)
	if err != nil {
		return dpm.Config{}, err
	}
	pcfg, err := hw.withDefaults().paramsConfig()
	if err != nil {
		return dpm.Config{}, err
	}
	return dpm.Config{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		Weight:        s.Weight,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
		Params:        pcfg,
		Policy:        pol,
	}, nil
}
