package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dpm/internal/alloc"
	"dpm/internal/dpm"
	"dpm/internal/params"
	"dpm/internal/pipeline"
	"dpm/internal/scenario"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// Wire types for the dpmd JSON API. Each request embeds the same
// trace.Scenario wire form cmd/dpmsim -config loads, so a scenario
// file works unchanged as a request body; schedules use the
// schedule.Grid form {"step": τ, "values": [...]}.
//
// Input bounds live in internal/scenario — the canonical validation
// path shared with the library facade and the CLI tools. The HTTP
// body limit (Config.MaxBodyBytes) caps raw size; the scenario bounds
// cap the *work* a single request may demand.

// apiError is the structured error body every non-2xx response
// carries.
type apiError struct {
	// Error is a human-readable description of what was wrong with
	// the request (or, for 5xx, with the server).
	Error string `json:"error"`
	// Status echoes the HTTP status code.
	Status int `json:"status"`
}

// badRequest wraps a client-input error so handlers can distinguish
// it from internal failures.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// badRequestf builds a 400-class error.
func badRequestf(format string, args ...any) error {
	return badRequest{fmt.Errorf(format, args...)}
}

// httpError pins an explicit status code onto an error, for the
// non-400/500 cases (oversized body → 413, expired deadline → 503).
type httpError struct {
	status int
	err    error
}

func (e httpError) Error() string { return e.err.Error() }
func (e httpError) Unwrap() error { return e.err }

// Hardware is the canonical hardware block (internal/scenario): the
// board Algorithm 2 optimizes for, defaulting to the paper's PAMA
// configuration.
type Hardware = scenario.Hardware

// PlanRequest asks for an Algorithm 1 power allocation.
type PlanRequest struct {
	// Scenario is the planning environment: charging and usage
	// schedules, optional weight, battery band.
	Scenario trace.Scenario `json:"scenario"`
	// Strategy selects the arc-reshaping flavor: "proportional"
	// (default, the paper's formula) or "even".
	Strategy string `json:"strategy,omitempty"`
	// Planner selects the planner backend: "paper" (default), "yds"
	// or "bunde" (pipeline.Strategies lists the registry). The
	// ?strategy= query parameter is shorthand for this field. The
	// default is canonicalized to "" so default requests keep their
	// pre-registry cache keys and wire bytes.
	Planner string `json:"planner,omitempty"`
	// MaxIterations bounds the Algorithm 1 driver (0 = default 16).
	MaxIterations int `json:"maxIterations,omitempty"`
	// Margin keeps a fraction of the battery band clear at each end
	// (0 ≤ margin < 0.5).
	Margin float64 `json:"margin,omitempty"`
}

// PlanResponse is the computed allocation.
type PlanResponse struct {
	// Scenario echoes the request's scenario name.
	Scenario string `json:"scenario,omitempty"`
	// Planner names the backend that produced the plan; empty means
	// the default paper planner (default responses stay byte-identical
	// to the pre-registry wire form). Declared between Scenario and
	// Tau so the cached, name-free body still opens with a field the
	// scenario-name splice can prepend to.
	Planner string `json:"planner,omitempty"`
	// Tau is the slot width in seconds.
	Tau float64 `json:"tau"`
	// Allocation is the per-slot power plan in watts.
	Allocation []float64 `json:"allocation"`
	// Trajectory is the battery energy at the len+1 slot boundaries
	// in joules.
	Trajectory []float64 `json:"trajectory"`
	// Iterations counts Algorithm 1 driver rounds.
	Iterations int `json:"iterations"`
	// Feasible reports whether the trajectory stays inside the band.
	Feasible bool `json:"feasible"`
}

// BatchRequest plans many scenarios in one call. Each item is
// processed exactly as an individual /v1/plan request — same
// validation, same cache, same bytes — across dpmd's bounded worker
// pool.
type BatchRequest struct {
	// Requests are the individual plan requests, answered in order.
	Requests []PlanRequest `json:"requests"`
}

// BatchItem is one batched request's outcome.
type BatchItem struct {
	// Status is the HTTP status the item would have received from
	// /v1/plan.
	Status int `json:"status"`
	// Cache is "hit" or "miss" for successful items.
	Cache string `json:"cache,omitempty"`
	// Body is the exact /v1/plan response body for this item —
	// a PlanResponse on success, the structured error otherwise.
	Body json.RawMessage `json:"body"`
}

// BatchResponse carries one result per request, in request order.
type BatchResponse struct {
	// Results are the per-item outcomes.
	Results []BatchItem `json:"results"`
}

// ParamsRequest asks for an Algorithm 2 (n, f) schedule for a plan.
type ParamsRequest struct {
	// Allocation is the power plan to parameterize, typically a
	// PlanResponse's allocation re-wrapped as a grid.
	Allocation *schedule.Grid `json:"allocation"`
	// Hardware describes the board; nil means the PAMA defaults.
	Hardware *Hardware `json:"hardware,omitempty"`
}

// ParamsStep is one slot of the (n, f) schedule.
type ParamsStep struct {
	// Slot indexes the period.
	Slot int `json:"slot"`
	// AllocatedW is the slot's power budget in watts.
	AllocatedW float64 `json:"allocatedW"`
	// N, FrequencyHz and VoltageV are the chosen operating point.
	N           int     `json:"n"`
	FrequencyHz float64 `json:"frequencyHz"`
	VoltageV    float64 `json:"voltageV"`
	// PowerW and Perf are the point's draw and Eq. 3 performance.
	PowerW float64 `json:"powerW"`
	Perf   float64 `json:"perf"`
	// Switched reports an operating-point change at this boundary;
	// OverheadJ is the switching energy charged for it.
	Switched  bool    `json:"switched"`
	OverheadJ float64 `json:"overheadJ"`
}

// ParamsResponse is the per-slot schedule plus the Pareto table it
// was selected from.
type ParamsResponse struct {
	// Steps is the per-slot (n, f) schedule.
	Steps []ParamsStep `json:"steps"`
	// Table is the Pareto frontier of operating points.
	Table []params.OperatingPoint `json:"table"`
}

// SlotReport is one completed slot's measured energies.
type SlotReport struct {
	// UsedJ is the energy the system actually consumed in joules.
	UsedJ float64 `json:"usedJ"`
	// SuppliedJ is the energy the source actually delivered.
	SuppliedJ float64 `json:"suppliedJ"`
}

// ReplanRequest applies Algorithm 3: given the manager's run-time
// state and one or more completed slots' planned-vs-actual energies,
// redistribute the deviation over the future window.
type ReplanRequest struct {
	// Scenario is the planning environment the state belongs to.
	Scenario trace.Scenario `json:"scenario"`
	// Hardware describes the board; nil means the PAMA defaults.
	Hardware *Hardware `json:"hardware,omitempty"`
	// Policy selects the redistribution flavor: "proportional"
	// (default) or "even".
	Policy string `json:"policy,omitempty"`
	// Planner selects the backend the baseline plan comes from:
	// "paper" (default), "yds" or "bunde". A checkpoint's plan takes
	// precedence once restored.
	Planner string `json:"planner,omitempty"`
	// State is the manager checkpoint to resume from; nil means a
	// fresh period start.
	State *dpm.State `json:"state,omitempty"`
	// Slots reports the completed slots, oldest first.
	Slots []SlotReport `json:"slots"`
}

// ReplanResponse carries the updated plan and the checkpoint to send
// with the next replan call.
type ReplanResponse struct {
	// Plan is the updated per-period allocation in watts.
	Plan []float64 `json:"plan"`
	// ChargeJ is the manager's battery-charge estimate in joules.
	ChargeJ float64 `json:"chargeJ"`
	// Slot is the absolute slot counter after the reports.
	Slot int `json:"slot"`
	// State is the full checkpoint for the next request.
	State dpm.State `json:"state"`
}

// SimulateRequest runs a bounded closed-loop simulation.
type SimulateRequest struct {
	// Scenario is the planning environment.
	Scenario trace.Scenario `json:"scenario"`
	// Hardware describes the board; nil means the PAMA defaults.
	Hardware *Hardware `json:"hardware,omitempty"`
	// Periods is the horizon in charging periods (1 ≤ p ≤ 64
	// analytic, ≤ 8 machine).
	Periods int `json:"periods"`
	// Policy selects the Algorithm 3 flavor: "proportional"
	// (default) or "even".
	Policy string `json:"policy,omitempty"`
	// Planner selects the backend the initial plan comes from:
	// "paper" (default), "yds" or "bunde". Algorithm 3 still
	// redistributes at runtime either way.
	Planner string `json:"planner,omitempty"`
	// Battery selects intra-slot semantics: "net-flow" (default) or
	// "sequential".
	Battery string `json:"battery,omitempty"`
	// ActualCharging is what the source really delivers; nil means
	// the expectation holds.
	ActualCharging *schedule.Grid `json:"actualCharging,omitempty"`
	// Machine runs the discrete-event PAMA board simulation with a
	// Poisson event trace instead of the analytic model.
	Machine bool `json:"machine,omitempty"`
	// EventScale and Seed drive the machine-mode event trace.
	EventScale float64 `json:"eventScale,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	// IncludeRecords returns per-slot rows (bounded to 1024 slots).
	IncludeRecords bool `json:"includeRecords,omitempty"`
}

// SimulateRecord is one per-slot row of a simulate response.
type SimulateRecord struct {
	// TimeS is the slot start in seconds.
	TimeS float64 `json:"timeS"`
	// PlannedW and UsedW are the plan's and the realized draw.
	PlannedW float64 `json:"plannedW"`
	UsedW    float64 `json:"usedW"`
	// N and FrequencyHz are the operating point run.
	N           int     `json:"n"`
	FrequencyHz float64 `json:"frequencyHz"`
	// ChargeJ is the battery at slot end.
	ChargeJ float64 `json:"chargeJ"`
}

// SimulateResponse summarizes the run in the paper's §5 metrics.
type SimulateResponse struct {
	// Mode is "analytic" or "machine".
	Mode string `json:"mode"`
	// WastedJ and UndersuppliedJ are the Table 1 penalties.
	WastedJ        float64          `json:"wastedJ"`
	UndersuppliedJ float64          `json:"undersuppliedJ"`
	SuppliedJ      float64          `json:"suppliedJ"`
	DeliveredJ     float64          `json:"deliveredJ"`
	Utilization    float64          `json:"utilization"`
	Switches       int              `json:"switches,omitempty"`
	PerfSeconds    float64          `json:"perfSeconds,omitempty"`
	EventsArrived  int              `json:"eventsArrived,omitempty"`
	TasksCompleted int              `json:"tasksCompleted,omitempty"`
	MeanLatencyS   float64          `json:"meanLatencyS,omitempty"`
	EnergyUsedJ    float64          `json:"energyUsedJ,omitempty"`
	Records        []SimulateRecord `json:"records,omitempty"`
}

// deadlineHeader lets a client declare its remaining time budget as
// a Go duration string (e.g. "750ms"). The server clamps the
// request's effective timeout to it, so admission control can shed a
// request whose predicted queue wait already exceeds what the caller
// will tolerate — instead of burning a worker slot on an answer
// nobody is waiting for.
const deadlineHeader = "X-Dpmd-Deadline"

// clientDeadline parses the deadline header; absent means no client
// bound (0). Malformed or non-positive values are client errors.
func clientDeadline(r *http.Request) (time.Duration, error) {
	v := r.Header.Get(deadlineHeader)
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, badRequestf("invalid %s header %q: %v", deadlineHeader, v, err)
	}
	if d <= 0 {
		return 0, badRequestf("invalid %s header %q: duration must be positive", deadlineHeader, v)
	}
	return d, nil
}

// decodeJSON reads one JSON value from the (already size-limited)
// body into dst, rejecting trailing garbage. Decode errors are
// client errors; an oversized body gets the conventional 413 so
// clients and proxies can tell "shrink the payload" from "malformed
// JSON".
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return httpError{
				status: http.StatusRequestEntityTooLarge,
				err:    fmt.Errorf("request body exceeds %d bytes", maxErr.Limit),
			}
		}
		return badRequestf("decoding request: %v", err)
	}
	if dec.More() {
		return badRequestf("request body has trailing data after the JSON value")
	}
	// Drain any whitespace so keep-alive connections stay reusable.
	io.Copy(io.Discard, r.Body) //nolint:errcheck
	return nil
}

// readBinaryBody reads the (already size-limited) request body for a
// binary-codec decode, mapping an oversized body to the same 413 the
// JSON path produces.
func readBinaryBody(r *http.Request) ([]byte, error) {
	b, err := io.ReadAll(r.Body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, httpError{
				status: http.StatusRequestEntityTooLarge,
				err:    fmt.Errorf("request body exceeds %d bytes", maxErr.Limit),
			}
		}
		return nil, badRequestf("reading request: %v", err)
	}
	return b, nil
}

// canonicalJSON marshals v compactly with a trailing newline — the
// byte form the cache stores and the wire carries, so a cached reply
// is byte-identical to the cold one. A JSON-unsupported value (NaN
// or ±Inf that slipped through the input bounds into a computed
// plan) is reported as a client error: the inputs were numerically
// out of range, not the server broken.
func canonicalJSON(v any) ([]byte, error) {
	e := encoderPool.Get().(*pooledEncoder)
	defer encoderPool.Put(e)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		var unsup *json.UnsupportedValueError
		if errors.As(err, &unsup) {
			return nil, badRequestf("inputs are numerically out of range: computed plan contains %s", unsup.Str)
		}
		return nil, err
	}
	// One exact-size copy out of the pooled buffer: the caller (and
	// the plan cache) owns the result outright.
	out := make([]byte, e.buf.Len())
	copy(out, e.buf.Bytes())
	return out, nil
}

// pooledEncoder reuses the encode buffer across responses.
// json.Encoder produces exactly json.Marshal's bytes plus the
// trailing newline the wire form wants, and a value error (the only
// kind bytes.Buffer can surface) does not latch, so a pooled encoder
// stays reusable after rejecting a NaN.
type pooledEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encoderPool = sync.Pool{New: func() any {
	e := new(pooledEncoder)
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// parseStrategy maps the wire name onto the alloc constant.
func parseStrategy(s string) (alloc.AdjustStrategy, error) {
	switch s {
	case "", "proportional":
		return alloc.RemapProportional, nil
	case "even":
		return alloc.RemapEven, nil
	default:
		return 0, badRequestf("unknown strategy %q (want proportional or even)", s)
	}
}

// parsePolicy maps the wire name onto the dpm constant.
func parsePolicy(s string) (dpm.RedistributePolicy, error) {
	switch s {
	case "", "proportional":
		return dpm.Proportional, nil
	case "even":
		return dpm.Even, nil
	default:
		return 0, badRequestf("unknown policy %q (want proportional or even)", s)
	}
}

// parseBattery maps the wire name onto the dpm battery model.
func parseBattery(s string) (dpm.BatteryModel, error) {
	switch s {
	case "", "net-flow":
		return dpm.NetFlow, nil
	case "sequential":
		return dpm.Sequential, nil
	default:
		return 0, badRequestf("unknown battery model %q (want net-flow or sequential)", s)
	}
}

// validatePlanRequest normalizes and bounds a plan request through
// the canonical pipeline validation; the returned request has every
// default spelled out (strategy, maxIterations) so semantically
// identical requests canonicalize to one cache key. The planner
// selector goes the other way: the default backend normalizes to the
// *empty* string, so default requests hash and render exactly as they
// did before the strategy registry existed — a fleet of
// mixed-version nodes keeps sharing cache entries — while every
// non-default backend is spelled out in the key and the body.
func validatePlanRequest(req *PlanRequest) error {
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		return err
	}
	if _, err := pipeline.StrategyByName(req.Planner); err != nil {
		return err
	}
	spec := pipeline.PlanSpec{
		Scenario:      req.Scenario,
		Strategy:      strategy,
		MaxIterations: req.MaxIterations,
		Margin:        req.Margin,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if req.Strategy == "" {
		req.Strategy = "proportional"
	}
	if req.Planner == pipeline.DefaultStrategy {
		req.Planner = ""
	}
	if req.MaxIterations == 0 {
		req.MaxIterations = 16 // alloc.Compute's documented default
	}
	return nil
}

// strategyQueryParam is the /v1/plan and /v1/batch query-string
// shorthand for PlanRequest.Planner.
const strategyQueryParam = "strategy"

// applyStrategyParam folds ?strategy= into a request's planner
// selector. The body field and the query parameter naming different
// backends is ambiguous and rejected; naming the same one (or the
// body leaving it empty) is fine. For /v1/batch the parameter applies
// to every item.
func applyStrategyParam(r *http.Request, planner *string) error {
	q := r.URL.Query().Get(strategyQueryParam)
	if q == "" {
		return nil
	}
	if *planner != "" && *planner != q {
		return badRequestf("?strategy=%s conflicts with planner %q in the request body", q, *planner)
	}
	*planner = q
	return nil
}

// scenarioParams validates a request's scenario, policy and hardware
// block and returns the pieces the pipeline specs consume.
func scenarioParams(s trace.Scenario, hw *Hardware, policy string) (params.Config, dpm.RedistributePolicy, error) {
	if err := scenario.Validate(s); err != nil {
		return params.Config{}, 0, err
	}
	pol, err := parsePolicy(policy)
	if err != nil {
		return params.Config{}, 0, err
	}
	pcfg, err := hw.WithDefaults().ParamsConfig()
	if err != nil {
		return params.Config{}, 0, err
	}
	return pcfg, pol, nil
}
