package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"mime"
	"net/http"
	"strings"
	"sync"

	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// Binary plan codec ------------------------------------------------
//
// Hot fleet clients issue the same /v1/plan and /v1/batch shapes
// thousands of times a second; for them JSON encode/decode is the
// dominant per-request cost once the planning core is columnar. This
// file implements a compact binary encoding of exactly those two
// endpoints' request and response types, negotiated per request:
//
//   - a request body in the binary form declares
//     "Content-Type: application/x-dpm-plan";
//   - a client that wants the response in the binary form sends
//     "Accept: application/x-dpm-plan".
//
// The two are orthogonal (a JSON request may ask for a binary
// response and vice versa), the default stays JSON, and the JSON wire
// bytes are untouched — the golden tests pin them byte-identical.
// Error responses are always JSON at the top level (the status code
// carries the semantics either way); inside a binary batch response,
// per-item failures embed a binary error record so the item stream
// stays self-describing.
//
// Layout: every record opens with the 4-byte magic "DPM1" and a kind
// byte. Scalars are little-endian IEEE-754 float64s; lengths and
// counts are uvarints; a string is a uvarint length plus raw bytes; a
// grid is its step float64 plus a float64 column; optional fields
// carry a 1-byte presence flag. The plan-response record places the
// scenario name first so the server can cache the name-free body and
// splice the name back by rewriting only the record prefix — the
// exact trick the JSON path plays with withScenarioName.
//
// Encoding appends into pooled scratch buffers; the cache path copies
// out once (the LRU owns its bytes) and the direct path writes the
// scratch straight to the wire. Decoding is allocation-light: only
// the float columns and strings the caller keeps are allocated, and
// every length is bounds-checked against the remaining input before
// allocation so hostile lengths fail fast instead of sizing a make().

// BinaryContentType is the negotiated media type of the binary plan
// codec.
const BinaryContentType = "application/x-dpm-plan"

// binaryMagic opens every binary record.
var binaryMagic = [4]byte{'D', 'P', 'M', '1'}

// Record kinds.
const (
	binKindPlanRequest   = 1
	binKindPlanResponse  = 2
	binKindBatchRequest  = 3
	binKindBatchResponse = 4
	binKindError         = 5
)

// binBufPool holds encode scratch. Buffers grow to the largest record
// they have carried and are reused across requests.
var binBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// isBinaryRequest reports whether the request body declares the
// binary media type.
func isBinaryRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	// The substring test keeps mime.ParseMediaType (which allocates)
	// off the JSON hot path; only headers that could plausibly name
	// the binary type pay for real parsing.
	if !strings.Contains(ct, BinaryContentType) {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == BinaryContentType
}

// acceptsBinary reports whether the client asked for a binary
// response.
func acceptsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), BinaryContentType)
}

// --- append-side primitives ---

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendFloats(dst []byte, fs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

func appendGrid(dst []byte, g *schedule.Grid) []byte {
	if g == nil {
		// A nil required grid encodes as an empty one; the decoder's
		// scenario validation rejects it with the same 400 class the
		// JSON path gives a null schedule.
		dst = appendFloat64(dst, 0)
		return appendUvarint(dst, 0)
	}
	dst = appendFloat64(dst, g.Step)
	return appendFloats(dst, g.Values)
}

func appendOptGrid(dst []byte, g *schedule.Grid) []byte {
	if g == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendGrid(dst, g)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendHeader(dst []byte, kind byte) []byte {
	dst = append(dst, binaryMagic[:]...)
	return append(dst, kind)
}

// --- read-side primitives ---

// binReader walks a binary record, latching the first error so
// callers can chain reads and check once.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) header(wantKind byte) {
	if r.err != nil {
		return
	}
	if r.remaining() < 5 {
		r.fail("binary record truncated before header")
		return
	}
	if string(r.b[r.off:r.off+4]) != string(binaryMagic[:]) {
		r.fail("binary record lacks DPM1 magic")
		return
	}
	if r.b[r.off+4] != wantKind {
		r.fail("binary record kind %d, want %d", r.b[r.off+4], wantKind)
		return
	}
	r.off += 5
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("binary record truncated in varint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) string_() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("binary string length %d exceeds %d remaining bytes", n, r.remaining())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *binReader) float64_() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("binary record truncated in float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) floats() []float64 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n*8 > uint64(r.remaining()) {
		r.fail("binary float column length %d exceeds %d remaining bytes", n, r.remaining())
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}

func (r *binReader) grid() *schedule.Grid {
	step := r.float64_()
	values := r.floats()
	if r.err != nil {
		return nil
	}
	return &schedule.Grid{Step: step, Values: values}
}

func (r *binReader) optGrid() *schedule.Grid {
	if !r.bool_() {
		return nil
	}
	return r.grid()
}

func (r *binReader) bool_() bool {
	if r.err != nil {
		return false
	}
	if r.remaining() < 1 {
		r.fail("binary record truncated in bool")
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.fail("binary bool byte %d", v)
		return false
	}
	return v == 1
}

func (r *binReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("binary record has %d trailing bytes", r.remaining())
	}
	return nil
}

// --- records ---

// appendPlanRequestBody encodes a plan request without the record
// header — the form batch items embed.
func appendPlanRequestBody(dst []byte, req *PlanRequest) []byte {
	s := req.Scenario
	dst = appendString(dst, s.Name)
	dst = appendGrid(dst, s.Charging)
	dst = appendGrid(dst, s.Usage)
	dst = appendOptGrid(dst, s.Weight)
	dst = appendFloat64(dst, s.CapacityMax)
	dst = appendFloat64(dst, s.CapacityMin)
	dst = appendFloat64(dst, s.InitialCharge)
	dst = appendString(dst, req.Strategy)
	dst = appendString(dst, req.Planner)
	dst = appendUvarint(dst, uint64(req.MaxIterations))
	return appendFloat64(dst, req.Margin)
}

// AppendPlanRequestBinary appends the binary encoding of a plan
// request to dst and returns the extended slice.
func AppendPlanRequestBinary(dst []byte, req *PlanRequest) []byte {
	return appendPlanRequestBody(appendHeader(dst, binKindPlanRequest), req)
}

// readPlanRequestBody decodes the header-free plan-request form. The
// scenario runs through trace.NewScenario so defaults and geometry
// checks match the JSON decoder exactly; an encoded scenario with no
// schedules is rejected the same way an absent JSON field is.
func readPlanRequestBody(r *binReader) (*PlanRequest, error) {
	name := r.string_()
	charging := r.grid()
	usage := r.grid()
	weight := r.optGrid()
	cmax := r.float64_()
	cmin := r.float64_()
	initial := r.float64_()
	strategy := r.string_()
	planner := r.string_()
	maxIter := r.uvarint()
	margin := r.float64_()
	if r.err != nil {
		return nil, r.err
	}
	if maxIter > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("binary maxIterations %d out of range", maxIter)
	}
	s, err := trace.NewScenario(name, charging, usage, weight, cmax, cmin, initial)
	if err != nil {
		return nil, err
	}
	return &PlanRequest{
		Scenario:      s,
		Strategy:      strategy,
		Planner:       planner,
		MaxIterations: int(maxIter),
		Margin:        margin,
	}, nil
}

// DecodePlanRequestBinary decodes one binary plan-request record.
func DecodePlanRequestBinary(b []byte) (*PlanRequest, error) {
	r := &binReader{b: b}
	r.header(binKindPlanRequest)
	req, err := readPlanRequestBody(r)
	if err != nil {
		return nil, err
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// AppendPlanResponseBinary appends the binary encoding of a plan
// response to dst. The scenario name sits immediately after the
// header so a cached, name-free body is spliced per response by
// rewriting only the prefix (withScenarioNameBinary).
func AppendPlanResponseBinary(dst []byte, resp *PlanResponse) []byte {
	dst = appendHeader(dst, binKindPlanResponse)
	dst = appendString(dst, resp.Scenario)
	dst = appendString(dst, resp.Planner)
	dst = appendFloat64(dst, resp.Tau)
	dst = appendFloats(dst, resp.Allocation)
	dst = appendFloats(dst, resp.Trajectory)
	dst = appendUvarint(dst, uint64(resp.Iterations))
	return appendBool(dst, resp.Feasible)
}

func readPlanResponseBody(r *binReader) *PlanResponse {
	resp := &PlanResponse{
		Scenario:   r.string_(),
		Planner:    r.string_(),
		Tau:        r.float64_(),
		Allocation: r.floats(),
		Trajectory: r.floats(),
	}
	iters := r.uvarint()
	resp.Feasible = r.bool_()
	if r.err != nil {
		return nil
	}
	if iters > uint64(math.MaxInt32) {
		r.fail("binary iterations %d out of range", iters)
		return nil
	}
	resp.Iterations = int(iters)
	return resp
}

// DecodePlanResponseBinary decodes one binary plan-response record.
func DecodePlanResponseBinary(b []byte) (*PlanResponse, error) {
	r := &binReader{b: b}
	r.header(binKindPlanResponse)
	resp := readPlanResponseBody(r)
	if err := r.finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

// withScenarioNameBinary splices a scenario name into a cached,
// name-free binary plan body: the record is magic(4) + kind(1) +
// empty name (a single zero byte) + rest, so the spliced form is the
// same prefix with the name string in place of the zero byte —
// exactly the bytes AppendPlanResponseBinary would have produced for
// the named response.
func withScenarioNameBinary(name string, body []byte) []byte {
	if name == "" || len(body) < 6 {
		return body
	}
	out := make([]byte, 0, len(body)+len(name)+binary.MaxVarintLen64)
	out = append(out, body[:5]...)
	out = appendString(out, name)
	return append(out, body[6:]...)
}

// AppendBatchRequestBinary appends the binary encoding of a batch
// request: a count followed by header-free plan-request bodies.
func AppendBatchRequestBinary(dst []byte, req *BatchRequest) []byte {
	dst = appendHeader(dst, binKindBatchRequest)
	dst = appendUvarint(dst, uint64(len(req.Requests)))
	for i := range req.Requests {
		dst = appendPlanRequestBody(dst, &req.Requests[i])
	}
	return dst
}

// DecodeBatchRequestBinary decodes one binary batch-request record.
// The item count is sanity-bounded by the remaining input (each item
// is at least ~40 bytes) before any allocation.
func DecodeBatchRequestBinary(b []byte) (*BatchRequest, error) {
	r := &binReader{b: b}
	r.header(binKindBatchRequest)
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("binary batch count %d exceeds %d remaining bytes", n, r.remaining())
	}
	req := &BatchRequest{Requests: make([]PlanRequest, 0, n)}
	for i := uint64(0); i < n; i++ {
		item, err := readPlanRequestBody(r)
		if err != nil {
			return nil, fmt.Errorf("binary batch item %d: %w", i, err)
		}
		req.Requests = append(req.Requests, *item)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// AppendBinaryError appends a binary error record — the per-item
// failure form inside a binary batch response, carrying the same
// status and message the JSON apiError body would.
func AppendBinaryError(dst []byte, status int, msg string) []byte {
	dst = appendHeader(dst, binKindError)
	dst = appendUvarint(dst, uint64(status))
	return appendString(dst, msg)
}

// binaryBatchItem is one encoded item of a binary batch response: the
// Body bytes are a complete binary record — a plan response on
// success, an error record otherwise — exactly as the JSON form
// embeds the verbatim /v1/plan body.
type binaryBatchItem struct {
	Status int
	Cache  string
	Body   []byte
}

// appendBatchResponseBinary encodes a binary batch response from
// already-encoded item bodies.
func appendBatchResponseBinary(dst []byte, items []binaryBatchItem) []byte {
	dst = appendHeader(dst, binKindBatchResponse)
	dst = appendUvarint(dst, uint64(len(items)))
	for i := range items {
		dst = appendUvarint(dst, uint64(items[i].Status))
		dst = appendString(dst, items[i].Cache)
		dst = appendUvarint(dst, uint64(len(items[i].Body)))
		dst = append(dst, items[i].Body...)
	}
	return dst
}

// BinaryBatchItem is one decoded item of a binary batch response.
type BinaryBatchItem struct {
	// Status is the HTTP status the item would have received from
	// /v1/plan.
	Status int
	// Cache is "hit" or "miss" for successful items.
	Cache string
	// Plan is the decoded response for 2xx items, nil otherwise.
	Plan *PlanResponse
	// Message carries the error text for non-2xx items.
	Message string
}

// DecodeBatchResponseBinary decodes one binary batch-response record
// into per-item results.
func DecodeBatchResponseBinary(b []byte) ([]BinaryBatchItem, error) {
	r := &binReader{b: b}
	r.header(binKindBatchResponse)
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("binary batch count %d exceeds %d remaining bytes", n, r.remaining())
	}
	items := make([]BinaryBatchItem, 0, n)
	for i := uint64(0); i < n; i++ {
		status := r.uvarint()
		cache := r.string_()
		bodyLen := r.uvarint()
		if r.err != nil {
			return nil, fmt.Errorf("binary batch item %d: %w", i, r.err)
		}
		if bodyLen > uint64(r.remaining()) {
			return nil, fmt.Errorf("binary batch item %d: body length %d exceeds %d remaining bytes", i, bodyLen, r.remaining())
		}
		body := r.b[r.off : r.off+int(bodyLen)]
		r.off += int(bodyLen)
		item := BinaryBatchItem{Status: int(status), Cache: cache}
		if status >= 200 && status < 300 {
			plan, err := DecodePlanResponseBinary(body)
			if err != nil {
				return nil, fmt.Errorf("binary batch item %d: %w", i, err)
			}
			item.Plan = plan
		} else {
			st, msg, err := decodeBinaryError(body)
			if err != nil {
				return nil, fmt.Errorf("binary batch item %d: %w", i, err)
			}
			if st != int(status) {
				return nil, fmt.Errorf("binary batch item %d: embedded status %d disagrees with item status %d", i, st, status)
			}
			item.Message = msg
		}
		items = append(items, item)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return items, nil
}

// decodeBinaryError decodes a binary error record.
func decodeBinaryError(b []byte) (int, string, error) {
	r := &binReader{b: b}
	r.header(binKindError)
	status := r.uvarint()
	msg := r.string_()
	if err := r.finish(); err != nil {
		return 0, "", err
	}
	return int(status), msg, nil
}
