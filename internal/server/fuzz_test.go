package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpm/internal/scenario"
	"dpm/internal/trace"
)

// FuzzDecodePlanRequest feeds arbitrary bodies to the /v1/plan
// handler, mirroring internal/dpm's checkpoint fuzz: whatever a
// hostile or broken node sends — malformed JSON, NaN/Inf-shaped
// schedules, negative τ, absurd lengths, unbalanced scenarios — the
// handler must answer with a structured 4xx, never a 5xx and never a
// panic.
func FuzzDecodePlanRequest(f *testing.F) {
	if valid, err := canonicalJSON(PlanRequest{Scenario: trace.ScenarioI()}); err == nil {
		f.Add(valid)
	}
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"scenario":null}`))
	// Negative and zero τ.
	f.Add([]byte(`{"scenario":{"charging":{"step":-4.8,"values":[1]},"usage":{"step":-4.8,"values":[1]}}}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":0,"values":[1]},"usage":{"step":0,"values":[1]}}}`))
	// NaN/Inf attempts: literal tokens and overflowing numbers.
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[NaN]},"usage":{"step":4.8,"values":[1]}}}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[1e999]},"usage":{"step":4.8,"values":[1]}}}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":["Infinity"]},"usage":{"step":4.8,"values":[1]}}}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":1e308,"values":[1e308]},"usage":{"step":1e308,"values":[1e308]},"capacityMax":1e308,"capacityMin":1}}`))
	// Negative power and broken battery bands.
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[-1,2]},"usage":{"step":4.8,"values":[1,1]}}}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[1,2]},"usage":{"step":4.8,"values":[1,1]},"capacityMax":1,"capacityMin":2}}`))
	// Geometry mismatch and zero-demand balancing failure.
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[1,2,3]},"usage":{"step":2.4,"values":[1]}}}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[1,1]},"usage":{"step":4.8,"values":[0,0]}}}`))
	// Absurd length (over scenario.MaxSlots) and trailing garbage.
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[` +
		strings.Repeat("0,", scenario.MaxSlots) + `0]},"usage":{"step":4.8,"values":[1]}}}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[1]},"usage":{"step":4.8,"values":[1]}}}{"again":true}`))
	// Out-of-range tuning knobs.
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[1]},"usage":{"step":4.8,"values":[1]}},"margin":0.9}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[1]},"usage":{"step":4.8,"values":[1]}},"maxIterations":-3}`))
	f.Add([]byte(`{"scenario":{"charging":{"step":4.8,"values":[1]},"usage":{"step":4.8,"values":[1]}},"strategy":"chaotic"}`))

	srv, err := New(Config{})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(string(data)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		res := rec.Result()
		defer res.Body.Close()
		switch {
		case res.StatusCode == http.StatusOK:
			// Accepted input must have produced a valid response.
			var resp PlanResponse
			if err := decodeInto(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with undecodable body: %v", err)
			}
			if len(resp.Allocation) == 0 || resp.Tau <= 0 {
				t.Fatalf("200 with empty plan: %+v", resp)
			}
		case res.StatusCode >= 400 && res.StatusCode < 500:
			assertStructuredError(t, rec.Body.Bytes(), res.StatusCode)
		default:
			t.Fatalf("hostile input produced status %d: %s", res.StatusCode, rec.Body.Bytes())
		}
	})
}
