package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"dpm/internal/dpm"
	"dpm/internal/trace"
)

// fleetRegisterBody is the canonical Scenario I register request.
func fleetRegisterBody(t *testing.T, device string) []byte {
	t.Helper()
	b, err := canonicalJSON(FleetRegisterRequest{DeviceID: device, Scenario: trace.ScenarioI()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fleetTickBody(t *testing.T, req FleetTickRequest) []byte {
	t.Helper()
	b, err := canonicalJSON(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetRegisterTickDrain walks the whole session lifecycle over
// HTTP: register, stream ticks, drain the checkpoint back.
func TestFleetRegisterTickDrain(t *testing.T) {
	_, base := startServer(t, Config{})
	status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "walk-1"))
	if status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	var reg FleetRegisterResponse
	if err := decodeInto(body, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.DeviceID != "walk-1" || reg.Slot != 0 || len(reg.Plan) == 0 || reg.Resumed {
		t.Fatalf("unexpected register response %+v", reg)
	}

	status, _, body = postJSON(t, base, "/v1/fleet/tick", fleetTickBody(t, FleetTickRequest{
		DeviceID: "walk-1",
		Slots:    []SlotReport{{UsedJ: 9.5, SuppliedJ: 11.0}},
	}))
	if status != http.StatusOK {
		t.Fatalf("tick: %d %s", status, body)
	}
	var tick FleetTickResponse
	if err := decodeInto(body, &tick); err != nil {
		t.Fatal(err)
	}
	if tick.Slot != 1 || len(tick.Plan) == 0 || tick.State != nil {
		t.Fatalf("unexpected tick response %+v", tick)
	}

	status, _, body = postJSON(t, base, "/v1/fleet/drain", []byte("{}"))
	if status != http.StatusOK {
		t.Fatalf("drain: %d %s", status, body)
	}
	var drain FleetDrainResponse
	if err := decodeInto(body, &drain); err != nil {
		t.Fatal(err)
	}
	if drain.Count != 1 || len(drain.Devices) != 1 || drain.Devices[0].DeviceID != "walk-1" || drain.Devices[0].Slot != 1 {
		t.Fatalf("unexpected drain response %+v", drain)
	}
	// A drained device's checkpoint re-registers byte-compatibly.
	reReg, err := canonicalJSON(FleetRegisterRequest{
		DeviceID: "walk-1",
		Scenario: trace.ScenarioI(),
		State:    &drain.Devices[0].State,
	})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body = postJSON(t, base, "/v1/fleet/register", reReg)
	if status != http.StatusOK {
		t.Fatalf("re-register: %d %s", status, body)
	}
	if err := decodeInto(body, &reg); err != nil {
		t.Fatal(err)
	}
	if !reg.Resumed || reg.Slot != 1 {
		t.Fatalf("re-register did not resume: %+v", reg)
	}
}

// TestFleetTickReplanParity is the wire-level parity pin: a fleet tick
// with includeState must carry byte-for-byte the plan, charge, slot
// and checkpoint that the equivalent stateless /v1/replan call
// returns. The fleet layer is an optimization, never a semantic fork.
func TestFleetTickReplanParity(t *testing.T) {
	_, base := startServer(t, Config{})
	if status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "parity-1")); status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	var state *dpm.State
	for step := 0; step < 18; step++ {
		rep := SlotReport{
			UsedJ:     8.5 + float64(step%5)*0.71,
			SuppliedJ: 10.0 + float64(step%3)*1.3,
		}
		// Stateless reference: replan with the carried checkpoint.
		replanReq, err := canonicalJSON(ReplanRequest{
			Scenario: trace.ScenarioI(),
			State:    state,
			Slots:    []SlotReport{rep},
		})
		if err != nil {
			t.Fatal(err)
		}
		status, _, replanBody := postJSON(t, base, "/v1/replan", replanReq)
		if status != http.StatusOK {
			t.Fatalf("replan %d: %d %s", step, status, replanBody)
		}
		var rr ReplanResponse
		if err := decodeInto(replanBody, &rr); err != nil {
			t.Fatal(err)
		}
		state = &rr.State

		// Fleet path: same report as a session tick.
		status, _, tickBody := postJSON(t, base, "/v1/fleet/tick", fleetTickBody(t, FleetTickRequest{
			DeviceID:     "parity-1",
			Slots:        []SlotReport{rep},
			IncludeState: true,
		}))
		if status != http.StatusOK {
			t.Fatalf("tick %d: %d %s", step, status, tickBody)
		}
		var ft FleetTickResponse
		if err := decodeInto(tickBody, &ft); err != nil {
			t.Fatal(err)
		}
		if ft.State == nil {
			t.Fatalf("tick %d: missing requested state", step)
		}
		// Re-render the tick through the replan response shape: the
		// bytes must match the stateless response exactly.
		mirror, err := canonicalJSON(ReplanResponse{
			Plan:    ft.Plan,
			ChargeJ: ft.ChargeJ,
			Slot:    ft.Slot,
			State:   *ft.State,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mirror, replanBody) {
			t.Fatalf("step %d: fleet tick diverged from /v1/replan\nfleet:  %s\nreplan: %s",
				step, mirror, replanBody)
		}
	}
}

// TestFleetBulkTick checks the batch envelope: per-item status, one
// unknown device answering 404 without voiding its siblings, and the
// OK items byte-identical to single ticks.
func TestFleetBulkTick(t *testing.T) {
	_, base := startServer(t, Config{})
	for _, id := range []string{"bulk-a", "bulk-b"} {
		if status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, id)); status != http.StatusOK {
			t.Fatalf("register %s: %d %s", id, status, body)
		}
	}
	req, err := canonicalJSON(FleetBulkTickRequest{Ticks: []FleetTickRequest{
		{DeviceID: "bulk-a", Slots: []SlotReport{{UsedJ: 9.5, SuppliedJ: 11}}},
		{DeviceID: "bulk-ghost", Slots: []SlotReport{{UsedJ: 9.5, SuppliedJ: 11}}},
		{DeviceID: "bulk-b", Slots: []SlotReport{{UsedJ: 8, SuppliedJ: 10}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := postJSON(t, base, "/v1/fleet/bulk-tick", req)
	if status != http.StatusOK {
		t.Fatalf("bulk-tick: %d %s", status, body)
	}
	var res FleetBulkTickResponse
	if err := decodeInto(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("%d results, want 3", len(res.Results))
	}
	if res.Results[0].Status != http.StatusOK || res.Results[2].Status != http.StatusOK {
		t.Fatalf("healthy items: %d, %d", res.Results[0].Status, res.Results[2].Status)
	}
	if res.Results[1].Status != http.StatusNotFound {
		t.Fatalf("ghost item status %d, want 404", res.Results[1].Status)
	}
	assertStructuredError(t, res.Results[1].Body, http.StatusNotFound)
	var item FleetTickResponse
	if err := decodeInto(res.Results[0].Body, &item); err != nil {
		t.Fatal(err)
	}
	if item.Slot != 1 {
		t.Fatalf("item slot %d, want 1", item.Slot)
	}

	// Empty and oversized batches are rejected up front.
	status, _, body = postJSON(t, base, "/v1/fleet/bulk-tick", []byte(`{"ticks":[]}`))
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: %d %s", status, body)
	}
	assertStructuredError(t, body, http.StatusBadRequest)
}

// TestFleetSessionCap: with -fleet-max-sessions 1, the second device's
// register answers 503 with Retry-After and a structured body, and
// draining frees the slot.
func TestFleetSessionCap(t *testing.T) {
	_, base := startServer(t, Config{FleetMaxSessions: 1})
	if status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "cap-1")); status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	status, hdr, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "cap-2"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("over-cap register: %d %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("over-cap 503 missing Retry-After")
	}
	assertStructuredError(t, body, http.StatusServiceUnavailable)
	// Replacing the existing session is always allowed at the cap.
	if status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "cap-1")); status != http.StatusOK {
		t.Fatalf("replacement register: %d %s", status, body)
	}
	if status, _, _ := postJSON(t, base, "/v1/fleet/drain", []byte("{}")); status != http.StatusOK {
		t.Fatal("drain failed")
	}
	if status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "cap-2")); status != http.StatusOK {
		t.Fatalf("register after drain: %d %s", status, body)
	}
}

// TestFleetLifecycleErrors covers the session state statuses: 404
// before register, 400 on a corrupt checkpoint, 410 after idle
// eviction, and the parked-state resume that clears it.
func TestFleetLifecycleErrors(t *testing.T) {
	s, base := startServer(t, Config{FleetIdleTTL: time.Nanosecond})

	tick := fleetTickBody(t, FleetTickRequest{DeviceID: "ghost", Slots: []SlotReport{{UsedJ: 1, SuppliedJ: 1}}})
	status, _, body := postJSON(t, base, "/v1/fleet/tick", tick)
	if status != http.StatusNotFound {
		t.Fatalf("unregistered tick: %d %s", status, body)
	}
	assertStructuredError(t, body, http.StatusNotFound)

	// Corrupt checkpoint: wrong plan geometry is a structured 400.
	badReg, err := canonicalJSON(FleetRegisterRequest{
		DeviceID: "bad-ckpt",
		Scenario: trace.ScenarioI(),
		State:    &dpm.State{Plan: []float64{1, 2, 3}, Slot: 0, Charge: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body = postJSON(t, base, "/v1/fleet/register", badReg)
	if status != http.StatusBadRequest {
		t.Fatalf("corrupt checkpoint: %d %s", status, body)
	}
	assertStructuredError(t, body, http.StatusBadRequest)
	if !strings.Contains(string(body), "checkpoint") {
		t.Fatalf("corrupt-checkpoint error does not name the checkpoint: %s", body)
	}

	// Idle eviction: with a nanosecond TTL the session parks on the
	// next sweep, ticks answer 410, and a bare re-register resumes.
	if status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "evict-me")); status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	evTick := fleetTickBody(t, FleetTickRequest{DeviceID: "evict-me", Slots: []SlotReport{{UsedJ: 9.5, SuppliedJ: 11}}})
	if status, _, body := postJSON(t, base, "/v1/fleet/tick", evTick); status != http.StatusOK {
		t.Fatalf("tick: %d %s", status, body)
	}
	time.Sleep(time.Millisecond)
	if err := s.Fleet().SweepNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, _, body = postJSON(t, base, "/v1/fleet/tick", evTick)
	if status != http.StatusGone {
		t.Fatalf("evicted tick: %d %s", status, body)
	}
	assertStructuredError(t, body, http.StatusGone)
	status, _, body = postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "evict-me"))
	if status != http.StatusOK {
		t.Fatalf("resume register: %d %s", status, body)
	}
	var reg FleetRegisterResponse
	if err := decodeInto(body, &reg); err != nil {
		t.Fatal(err)
	}
	if !reg.Resumed || reg.Slot != 1 {
		t.Fatalf("eviction handback failed: %+v", reg)
	}
}

// TestFleetMetrics: the dpmd_fleet_* families render on /metrics with
// live values.
func TestFleetMetrics(t *testing.T) {
	_, base := startServer(t, Config{})
	if status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "metrics-1")); status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	if status, _, body := postJSON(t, base, "/v1/fleet/tick", fleetTickBody(t, FleetTickRequest{
		DeviceID: "metrics-1",
		Slots:    []SlotReport{{UsedJ: 9.5, SuppliedJ: 11}},
	})); status != http.StatusOK {
		t.Fatalf("tick: %d %s", status, body)
	}
	status, body := getBody(t, base, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	page := string(body)
	for _, want := range []string{
		"dpmd_fleet_sessions_live 1",
		"dpmd_fleet_registrations_total 1",
		"dpmd_fleet_ticks_total 1",
		"dpmd_fleet_slot_reports_total 1",
		"dpmd_fleet_partition_sessions{partition=",
		"dpmd_fleet_partition_depth{partition=",
		"dpmd_fleet_sessions_parked 0",
		"dpmd_fleet_evictions_total 0",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The fleet endpoints are primed into the admission snapshot before
	// any traffic reaches them.
	for _, ep := range []string{"/v1/fleet/register", "/v1/fleet/tick", "/v1/fleet/bulk-tick", "/v1/fleet/drain"} {
		if !strings.Contains(page, fmt.Sprintf("dpmd_admission_admitted_total{endpoint=%q}", ep)) {
			t.Errorf("/metrics missing admission family for %s", ep)
		}
	}
}

// TestFleetDrainDuringGrace: the operational story for shutdown — the
// drain-grace window keeps the listener serving after /readyz flips,
// exactly so operators can pull the fleet's checkpoints out. Modeled
// on TestReadyzDrainOrdering.
func TestFleetDrainDuringGrace(t *testing.T) {
	s, base := startServer(t, Config{DrainGrace: 700 * time.Millisecond})
	if status, _, body := postJSON(t, base, "/v1/fleet/register", fleetRegisterBody(t, "grace-1")); status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	if status, _, body := postJSON(t, base, "/v1/fleet/tick", fleetTickBody(t, FleetTickRequest{
		DeviceID: "grace-1",
		Slots:    []SlotReport{{UsedJ: 9.5, SuppliedJ: 11}},
	})); status != http.StatusOK {
		t.Fatalf("tick: %d %s", status, body)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Wait for readiness to flip — the drain has begun.
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, _ := getBody(t, base, "/readyz")
		if status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped during shutdown")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Inside the grace window the fleet drain still works: this is the
	// checkpoint-recovery path.
	status, _, body := postJSON(t, base, "/v1/fleet/drain", []byte("{}"))
	if status != http.StatusOK {
		t.Fatalf("drain during grace: %d %s", status, body)
	}
	var drain FleetDrainResponse
	if err := decodeInto(body, &drain); err != nil {
		t.Fatal(err)
	}
	if drain.Count != 1 || drain.Devices[0].Slot != 1 {
		t.Fatalf("grace drain returned %+v", drain)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After shutdown the fleet manager is closed; its partitions are
	// gone (the endurance test pins the goroutine accounting).
	if _, err := s.Fleet().Drain(context.Background()); err == nil {
		t.Fatal("fleet still open after shutdown")
	}
}
