package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dpm/internal/alloc"
	"dpm/internal/chaostest"
	"dpm/internal/dpm"
	"dpm/internal/pipeline"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// startServer boots a server on a loopback port and returns its base
// URL, shutting it down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s, "http://" + s.Addr()
}

// postJSON sends body to path and returns status, headers and body.
func postJSON(t *testing.T, base, path string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func getBody(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeInto(data []byte, v any) error { return json.Unmarshal(data, v) }

// assertStructuredError checks the {"error": ..., "status": ...}
// body every non-2xx response must carry.
func assertStructuredError(t *testing.T, body []byte, wantStatus int) {
	t.Helper()
	var ae apiError
	if err := json.Unmarshal(body, &ae); err != nil {
		t.Fatalf("error body not structured JSON (%v): %s", err, body)
	}
	if ae.Error == "" || ae.Status != wantStatus {
		t.Fatalf("error body %+v, want status %d with a message", ae, wantStatus)
	}
}

// planBody is the canonical Scenario I plan request.
func planBody(t *testing.T) []byte {
	t.Helper()
	b, err := canonicalJSON(PlanRequest{Scenario: trace.ScenarioI()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// expectedPlanBody computes the /v1/plan response for Scenario I
// straight through internal/alloc — the reference bytes the service
// must match exactly.
func expectedPlanBody(t *testing.T) []byte {
	t.Helper()
	s := trace.ScenarioI()
	res, err := alloc.Compute(alloc.Inputs{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		Weight:        s.Weight,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := canonicalJSON(&PlanResponse{
		Scenario:   s.Name,
		Tau:        res.Allocation.Step,
		Allocation: res.Allocation.Values,
		Trajectory: res.Trajectory,
		Iterations: len(res.Iterations),
		Feasible:   res.Feasible,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestEndToEndPlanConcurrencyAndCache is the acceptance flow: dpmd
// on a loopback port, concurrent /v1/plan requests for the PAMA
// scenario, every response byte-identical to the internal/dpm
// pipeline's output, the repeats visible as cache hits in /metrics.
func TestEndToEndPlanConcurrencyAndCache(t *testing.T) {
	_, base := startServer(t, Config{PoolSize: 8})
	want := expectedPlanBody(t)
	req := planBody(t)

	// Prime the cache with one sequential request so every
	// concurrent repeat below is deterministically a hit.
	status, hdr, body := postJSON(t, base, "/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("prime status %d: %s", status, body)
	}
	if got := hdr.Get(cacheHeader); got != "miss" {
		t.Fatalf("prime cache header %q, want miss", got)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("plan response differs from internal/dpm output:\ngot  %s\nwant %s", body, want)
	}

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(req))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			if resp.Header.Get(cacheHeader) != "hit" {
				errs <- fmt.Errorf("cache header %q, want hit", resp.Header.Get(cacheHeader))
				return
			}
			if !bytes.Equal(data, want) {
				errs <- fmt.Errorf("concurrent response differs from reference")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	status, metricsText := getBody(t, base, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	text := string(metricsText)
	if !strings.Contains(text, fmt.Sprintf("dpmd_plancache_hits %d", clients)) {
		t.Errorf("metrics missing %d cache hits:\n%s", clients, text)
	}
	if !strings.Contains(text, "dpmd_plancache_misses 1") {
		t.Errorf("metrics missing the single miss:\n%s", text)
	}
	if !strings.Contains(text, fmt.Sprintf(`dpmd_requests_total{endpoint="/v1/plan"} %d`, clients+1)) {
		t.Errorf("metrics missing plan request count:\n%s", text)
	}
}

// TestGracefulShutdownDrains holds several plan requests in flight,
// starts a shutdown, then releases them: every request must complete
// with 200 and the shutdown must return cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	snap := chaostest.SnapshotGoroutines()
	const inflight = 4
	s, err := New(Config{Addr: "127.0.0.1:0", PoolSize: inflight})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, inflight)
	release := make(chan struct{})
	s.testDelay = func() {
		entered <- struct{}{}
		<-release
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	req := planBody(t)

	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(req))
			if err != nil {
				results <- err
				return
			}
			defer resp.Body.Close()
			if _, err := io.ReadAll(resp.Body); err != nil {
				results <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				results <- fmt.Errorf("in-flight request got status %d", resp.StatusCode)
				return
			}
			results <- nil
		}()
	}
	for i := 0; i < inflight; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("requests never reached the handler")
		}
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Give the shutdown a moment to close the listener, then let the
	// held requests finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	for i := 0; i < inflight; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Errorf("in-flight request dropped: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight request never completed")
		}
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never returned")
	}
	// The drained server must refuse new work.
	if _, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(req)); err == nil {
		t.Error("request accepted after shutdown")
	}
	// Everything the server and its requests spawned must be gone.
	http.DefaultClient.CloseIdleConnections()
	chaostest.CheckGoroutines(t, snap)
}

// TestParamsEndpoint checks the (n, f) schedule against the params
// package and that repeats hit the cache.
func TestParamsEndpoint(t *testing.T) {
	_, base := startServer(t, Config{})
	req, err := canonicalJSON(ParamsRequest{
		Allocation: schedule.NewGrid(4.8, []float64{2.1, 1.8, 0.6, 0.1, 0, 1.2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, body := postJSON(t, base, "/v1/params", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if hdr.Get(cacheHeader) != "miss" {
		t.Fatalf("first params request not a miss")
	}
	var resp ParamsResponse
	if err := decodeInto(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Steps) != 6 {
		t.Fatalf("got %d steps, want 6", len(resp.Steps))
	}
	if len(resp.Table) == 0 {
		t.Fatal("empty operating-point table")
	}
	// The 2.1 W slot must select a real point within budget; the 0 W
	// slot must idle.
	if resp.Steps[0].N < 1 || resp.Steps[0].PowerW > 2.1+1e-9 {
		t.Errorf("slot 0 chose n=%d %.3f W for a 2.1 W budget", resp.Steps[0].N, resp.Steps[0].PowerW)
	}
	if resp.Steps[4].N != 0 {
		t.Errorf("zero-budget slot chose n=%d", resp.Steps[4].N)
	}
	status, hdr, body2 := postJSON(t, base, "/v1/params", req)
	if status != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Fatalf("repeat params request: status %d cache %q", status, hdr.Get(cacheHeader))
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached params response differs from cold one")
	}
}

// TestReplanEndpoint drives the endpoint through a two-step
// state round-trip and checks it against a local manager.
func TestReplanEndpoint(t *testing.T) {
	_, base := startServer(t, Config{})
	s := trace.ScenarioI()
	pcfg, pol, err := scenarioParams(s, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.ManagerConfig(s, pcfg, pol)
	mgr, err := dpm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr.EndSlot(9.5, 11.0)

	req, err := canonicalJSON(ReplanRequest{
		Scenario: s,
		Slots:    []SlotReport{{UsedJ: 9.5, SuppliedJ: 11.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := postJSON(t, base, "/v1/replan", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp ReplanResponse
	if err := decodeInto(body, &resp); err != nil {
		t.Fatal(err)
	}
	wantPlan := mgr.PlanSnapshot()
	if len(resp.Plan) != len(wantPlan) {
		t.Fatalf("plan length %d, want %d", len(resp.Plan), len(wantPlan))
	}
	for i := range wantPlan {
		if resp.Plan[i] != wantPlan[i] {
			t.Fatalf("plan[%d] = %g, want %g", i, resp.Plan[i], wantPlan[i])
		}
	}
	if resp.Slot != 1 || resp.ChargeJ != mgr.Charge() {
		t.Fatalf("slot %d charge %g, want 1 and %g", resp.Slot, resp.ChargeJ, mgr.Charge())
	}

	// Round-trip: feed the returned state back with the next slot.
	mgr.EndSlot(8.0, 10.0)
	req2, err := canonicalJSON(ReplanRequest{
		Scenario: s,
		State:    &resp.State,
		Slots:    []SlotReport{{UsedJ: 8.0, SuppliedJ: 10.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body = postJSON(t, base, "/v1/replan", req2)
	if status != http.StatusOK {
		t.Fatalf("second replan status %d: %s", status, body)
	}
	var resp2 ReplanResponse
	if err := decodeInto(body, &resp2); err != nil {
		t.Fatal(err)
	}
	wantPlan = mgr.PlanSnapshot()
	for i := range wantPlan {
		if resp2.Plan[i] != wantPlan[i] {
			t.Fatalf("round-trip plan[%d] = %g, want %g", i, resp2.Plan[i], wantPlan[i])
		}
	}
	if resp2.Slot != 2 {
		t.Fatalf("round-trip slot %d, want 2", resp2.Slot)
	}
}

// TestSimulateEndpoint compares the analytic mode against a direct
// dpm.Simulate run and smoke-tests the machine mode.
func TestSimulateEndpoint(t *testing.T) {
	_, base := startServer(t, Config{})
	s := trace.ScenarioII()
	pcfg, pol, err := scenarioParams(s, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.ManagerConfig(s, pcfg, pol)
	want, err := dpm.Simulate(dpm.SimConfig{Manager: cfg, Periods: 2, SyncCharge: true})
	if err != nil {
		t.Fatal(err)
	}

	req, err := canonicalJSON(SimulateRequest{Scenario: s, Periods: 2, IncludeRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := postJSON(t, base, "/v1/simulate", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp SimulateResponse
	if err := decodeInto(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "analytic" {
		t.Fatalf("mode %q", resp.Mode)
	}
	if resp.WastedJ != want.Battery.Wasted || resp.UndersuppliedJ != want.Battery.Undersupplied {
		t.Fatalf("energies (%g, %g), want (%g, %g)",
			resp.WastedJ, resp.UndersuppliedJ, want.Battery.Wasted, want.Battery.Undersupplied)
	}
	if resp.Switches != want.Switches {
		t.Fatalf("switches %d, want %d", resp.Switches, want.Switches)
	}
	if len(resp.Records) != len(want.Records) {
		t.Fatalf("records %d, want %d", len(resp.Records), len(want.Records))
	}

	mreq, err := canonicalJSON(SimulateRequest{Scenario: s, Periods: 1, Machine: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body = postJSON(t, base, "/v1/simulate", mreq)
	if status != http.StatusOK {
		t.Fatalf("machine status %d: %s", status, body)
	}
	var mresp SimulateResponse
	if err := decodeInto(body, &mresp); err != nil {
		t.Fatal(err)
	}
	if mresp.Mode != "machine" || mresp.SuppliedJ <= 0 {
		t.Fatalf("machine response %+v", mresp)
	}
}

// TestErrorPaths exercises the structured-error surface.
func TestErrorPaths(t *testing.T) {
	_, base := startServer(t, Config{MaxBodyBytes: 2048})

	t.Run("method not allowed", func(t *testing.T) {
		status, body := getBody(t, base, "/v1/plan")
		if status != http.StatusMethodNotAllowed {
			t.Fatalf("status %d", status)
		}
		assertStructuredError(t, body, http.StatusMethodNotAllowed)
	})
	t.Run("malformed JSON", func(t *testing.T) {
		status, _, body := postJSON(t, base, "/v1/plan", []byte(`{"scenario":`))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d: %s", status, body)
		}
		assertStructuredError(t, body, http.StatusBadRequest)
	})
	t.Run("missing scenario", func(t *testing.T) {
		status, _, body := postJSON(t, base, "/v1/plan", []byte(`{}`))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d: %s", status, body)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		huge := []byte(`{"scenario":{"charging":{"step":4.8,"values":[` +
			strings.Repeat("1,", 4000) + `1]}}}`)
		status, _, body := postJSON(t, base, "/v1/plan", huge)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413: %s", status, body)
		}
		assertStructuredError(t, body, http.StatusRequestEntityTooLarge)
	})
	t.Run("machine work bound", func(t *testing.T) {
		// Every magnitude is individually in range, but the
		// rate × horizon product implies ~4e11 Poisson events.
		req, _ := canonicalJSON(SimulateRequest{
			Scenario: trace.Scenario{
				Charging:    schedule.NewGrid(1e5, []float64{1, 1, 1, 1}),
				Usage:       schedule.NewGrid(1e5, []float64{1e6, 1e6, 1e6, 1e6}),
				CapacityMax: 1e9,
			},
			Periods:    1,
			Machine:    true,
			EventScale: 1,
		})
		start := time.Now()
		status, _, body := postJSON(t, base, "/v1/simulate", req)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, body)
		}
		if !strings.Contains(string(body), "events over") {
			t.Fatalf("unexpected error body: %s", body)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("rejection took %s; the bound must fire before any simulation work", elapsed)
		}
	})
	t.Run("bad policy", func(t *testing.T) {
		req, _ := canonicalJSON(SimulateRequest{Scenario: trace.ScenarioI(), Periods: 1, Policy: "chaotic"})
		status, _, body := postJSON(t, base, "/v1/simulate", req)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d: %s", status, body)
		}
	})
	t.Run("periods out of bounds", func(t *testing.T) {
		req, _ := canonicalJSON(SimulateRequest{Scenario: trace.ScenarioI(), Periods: 10000})
		status, _, body := postJSON(t, base, "/v1/simulate", req)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d: %s", status, body)
		}
	})
	t.Run("negative replan energy", func(t *testing.T) {
		req, _ := canonicalJSON(ReplanRequest{
			Scenario: trace.ScenarioI(),
			Slots:    []SlotReport{{UsedJ: -1, SuppliedJ: 0}},
		})
		status, _, body := postJSON(t, base, "/v1/replan", req)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d: %s", status, body)
		}
	})
	t.Run("unknown path", func(t *testing.T) {
		status, _ := getBody(t, base, "/v2/plan")
		if status != http.StatusNotFound {
			t.Fatalf("status %d", status)
		}
	})
}

// TestPlanCacheKeyCanonical checks that semantically identical plan
// requests share one cache entry: an omitted maxIterations vs the
// explicit default, and scenario names, must not fragment the LRU —
// while each response still echoes its own request's name.
func TestPlanCacheKeyCanonical(t *testing.T) {
	srv, base := startServer(t, Config{})
	s := trace.ScenarioI()

	prime, err := canonicalJSON(PlanRequest{Scenario: s}) // maxIterations omitted
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, primeBody := postJSON(t, base, "/v1/plan", prime)
	if status != http.StatusOK || hdr.Get(cacheHeader) != "miss" {
		t.Fatalf("prime: status %d cache %q", status, hdr.Get(cacheHeader))
	}

	// Explicit default maxIterations: same planning work, must hit.
	explicit, err := canonicalJSON(PlanRequest{Scenario: s, MaxIterations: 16, Strategy: "proportional"})
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, body := postJSON(t, base, "/v1/plan", explicit)
	if status != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Fatalf("explicit defaults: status %d cache %q, want hit", status, hdr.Get(cacheHeader))
	}
	if !bytes.Equal(body, primeBody) {
		t.Fatalf("explicit-defaults body differs:\ngot  %s\nwant %s", body, primeBody)
	}

	// Same planning inputs under a different name: must hit, and the
	// response must echo the new name, not the cached one.
	renamed := s
	renamed.Name = "node-7-forecast"
	renamedReq, err := canonicalJSON(PlanRequest{Scenario: renamed})
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, body = postJSON(t, base, "/v1/plan", renamedReq)
	if status != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Fatalf("renamed scenario: status %d cache %q, want hit", status, hdr.Get(cacheHeader))
	}
	var resp PlanResponse
	if err := decodeInto(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scenario != "node-7-forecast" {
		t.Fatalf("renamed response echoes %q, want node-7-forecast", resp.Scenario)
	}
	var primeResp PlanResponse
	if err := decodeInto(primeBody, &primeResp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Allocation) != len(primeResp.Allocation) {
		t.Fatalf("renamed allocation length %d, want %d", len(resp.Allocation), len(primeResp.Allocation))
	}
	for i := range resp.Allocation {
		if resp.Allocation[i] != primeResp.Allocation[i] {
			t.Fatalf("renamed allocation[%d] = %g, want %g", i, resp.Allocation[i], primeResp.Allocation[i])
		}
	}

	if stats := srv.CacheStats(); stats.Len != 1 || stats.Misses != 1 {
		t.Fatalf("cache has %d entries after %d misses, want 1 entry from 1 miss", stats.Len, stats.Misses)
	}
}

// TestDeadlineExpiredNot200 holds the pool slot past the request
// deadline and checks the response is a 503, not a late 200 written
// after the SLO expired.
func TestDeadlineExpiredNot200(t *testing.T) {
	s, err := New(Config{
		Addr:           "127.0.0.1:0",
		PoolSize:       1,
		RequestTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.testDelay = func() { time.Sleep(250 * time.Millisecond) }
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + s.Addr()

	status, _, body := postJSON(t, base, "/v1/plan", planBody(t))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("expired request got status %d: %s", status, body)
	}
	assertStructuredError(t, body, http.StatusServiceUnavailable)
}

// TestPoolSaturation holds the single pool slot and checks that the
// next request is rejected 503 once its timeout expires.
func TestPoolSaturation(t *testing.T) {
	s, err := New(Config{
		Addr:           "127.0.0.1:0",
		PoolSize:       1,
		RequestTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testDelay = func() {
		entered <- struct{}{}
		<-release
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + s.Addr()
	req := planBody(t)

	go http.Post(base+"/v1/plan", "application/json", bytes.NewReader(req)) //nolint:errcheck
	<-entered

	status, hdr, body := postJSON(t, base, "/v1/plan", req)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("saturated pool returned %d: %s", status, body)
	}
	assertStructuredError(t, body, http.StatusServiceUnavailable)
	// Every overload 503 must tell the client when to come back.
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Error("saturation 503 missing Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want whole seconds >= 1", ra)
	}
}

func TestHealthz(t *testing.T) {
	_, base := startServer(t, Config{})
	status, body := getBody(t, base, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("body %s", body)
	}
}

// TestConfigValidation rejects broken configurations.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{PoolSize: -1}); err == nil {
		t.Error("negative pool accepted")
	}
	if _, err := New(Config{MaxBodyBytes: 10}); err == nil {
		t.Error("tiny body limit accepted")
	}
	if _, err := New(Config{RequestTimeout: -time.Second}); err == nil {
		t.Error("negative timeout accepted")
	}
}
