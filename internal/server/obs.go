package server

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"dpm/internal/obs"
	"dpm/internal/params"
	"dpm/internal/pipeline"
	"dpm/internal/plancache"
	"dpm/internal/resilience"

	// Register the alternative planner backends (yds, bunde) so
	// ?strategy= resolves them; internal/pipeline registers "paper".
	_ "dpm/internal/strategy"
)

// Observability assembly -------------------------------------------
//
// The server owns one obs.Registry whose families render after the
// legacy flat counters on GET /metrics:
//
//   - dpmd_http_request_duration_seconds{endpoint}   histogram
//   - dpmd_http_request_errors_total{endpoint}       counter
//   - dpmd_pipeline_stage_duration_seconds{stage}    histogram, fed by
//     the pipeline spans (pipeline.validate, pipeline.plan,
//     alloc.Compute, alloc.iteration, params.table, …)
//   - dpmd_cache_shard_*_total{cache,shard}          per-shard plan- and
//     table-cache counters
//   - dpmd_start_time_seconds / dpmd_uptime_seconds and the go_*
//     runtime gauges (obs.RuntimeCollector)
//
// Request contexts carry an obs.Recorder pointing at the stage
// histogram; a request opting in with "X-Dpmd-Trace: 1" additionally
// gets a Trace, and /v1/plan wraps its (unchanged, cache-identical)
// payload in a TracedPlanResponse carrying the span tree.

// traceHeader opts a /v1/plan request into the span-tree debug
// response.
const traceHeader = "X-Dpmd-Trace"

// requestIDHeader carries the request id: honored inbound when
// well-formed, generated otherwise, echoed on every response and
// stamped into the request log line.
const requestIDHeader = "X-Request-Id"

// telemetry bundles the server's metric families.
type telemetry struct {
	registry     *obs.Registry
	reqHist      *obs.HistogramVec
	errTotal     *obs.CounterVec
	stages       *obs.HistogramVec
	planStrategy *obs.CounterVec
}

// strategyLabel maps the canonical planner selector (empty = default)
// onto its metric label, so dashboards see "paper" rather than "".
func strategyLabel(planner string) string {
	if planner == "" {
		return pipeline.DefaultStrategy
	}
	return planner
}

// newTelemetry builds the registry for one server. Registration order
// is exposition order.
func newTelemetry(s *Server) *telemetry {
	t := &telemetry{registry: obs.NewRegistry()}
	t.reqHist = obs.NewHistogramVec("dpmd_http_request_duration_seconds",
		"Request latency by endpoint, including pool wait.", "endpoint", nil)
	t.errTotal = obs.NewCounterVec("dpmd_http_request_errors_total",
		"Requests answered with a non-2xx status, by endpoint.", "endpoint")
	t.stages = obs.NewHistogramVec("dpmd_pipeline_stage_duration_seconds",
		"Planning-pipeline stage latency by span name.", "stage", nil)
	t.planStrategy = obs.NewCounterVec("dpmd_plan_requests_total",
		"Validated plan requests (individual and batch items) by planner strategy.", "strategy")
	t.registry.Register(t.reqHist)
	t.registry.Register(t.errTotal)
	t.registry.Register(t.stages)
	t.registry.Register(t.planStrategy)
	t.registry.Register(obs.CollectorFunc(s.writeCacheProm))
	t.registry.Register(obs.CollectorFunc(s.writeAdmissionProm))
	t.registry.Register(obs.CollectorFunc(s.writeFleetProm))
	// The ingestion daemon is constructed after the registry (it needs
	// the stage histogram); the collector resolves it at scrape time
	// and renders nothing while ingestion is disabled.
	t.registry.Register(obs.CollectorFunc(func(w io.Writer) error {
		if s.ingest == nil {
			return nil
		}
		return s.ingest.daemon.WriteProm(w)
	}))
	t.registry.Register(obs.CollectorFunc(func(w io.Writer) error {
		return obs.RuntimeCollector{Start: s.stats.StartTime()}.WriteProm(w)
	}))
	return t
}

// writeAdmissionProm renders the admission controller's per-endpoint
// outcome counters, the live queue depth, and the rolling
// service-time estimate the shed prediction runs on:
//
//   - dpmd_admission_admitted_total{endpoint}  counter
//   - dpmd_admission_shed_total{endpoint}      counter
//   - dpmd_admission_expired_total{endpoint}   counter
//   - dpmd_admission_queue_depth               gauge
//   - dpmd_admission_service_time_seconds{endpoint} gauge
func (s *Server) writeAdmissionProm(w io.Writer) error {
	snap := s.adm.Snapshot()
	for _, c := range []struct {
		suffix, help string
		value        func(resilience.EndpointAdmission) uint64
	}{
		{"admitted", "Requests granted a worker slot, by endpoint.",
			func(ea resilience.EndpointAdmission) uint64 { return ea.Admitted }},
		{"shed", "Requests rejected up front because the predicted queue wait exceeded their deadline, by endpoint.",
			func(ea resilience.EndpointAdmission) uint64 { return ea.Shed }},
		{"expired", "Requests whose deadline expired while queued for a slot, by endpoint.",
			func(ea resilience.EndpointAdmission) uint64 { return ea.Expired }},
	} {
		name := "dpmd_admission_" + c.suffix + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, c.help, name); err != nil {
			return err
		}
		for _, ea := range snap {
			if err := obs.WriteLabeledCounter(w, name, [][2]string{{"endpoint", ea.Endpoint}}, c.value(ea)); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP dpmd_admission_queue_depth Requests currently waiting for a worker slot.\n# TYPE dpmd_admission_queue_depth gauge\ndpmd_admission_queue_depth %d\n",
		s.adm.QueueDepth()); err != nil {
		return err
	}
	const est = "dpmd_admission_service_time_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Rolling per-endpoint service-time estimate driving shed prediction.\n# TYPE %s gauge\n", est, est); err != nil {
		return err
	}
	for _, ea := range snap {
		if _, err := fmt.Fprintf(w, "%s{endpoint=%q} %g\n", est, ea.Endpoint, ea.ServiceTimeSeconds); err != nil {
			return err
		}
	}
	return nil
}

// writeCacheProm renders the plan-cache and Algorithm 2 table-cache
// counters per shard, plus aggregate entry/capacity gauges.
func (s *Server) writeCacheProm(w io.Writer) error {
	caches := []struct {
		name   string
		shards []plancache.Stats
		total  plancache.Stats
	}{
		{"plan", s.cache.ShardStats(), s.cache.Stats()},
		{"table", params.SharedTableShardStats(), params.SharedTableStats()},
	}
	counters := []struct {
		suffix, help string
		value        func(plancache.Stats) uint64
	}{
		{"hits", "Cache hits by cache and shard.", func(st plancache.Stats) uint64 { return st.Hits }},
		{"misses", "Cache misses by cache and shard.", func(st plancache.Stats) uint64 { return st.Misses }},
		{"evictions", "Entries displaced by capacity pressure, by cache and shard.", func(st plancache.Stats) uint64 { return st.Evictions }},
		{"puts", "Cache insertions by cache and shard.", func(st plancache.Stats) uint64 { return st.Puts }},
	}
	for _, c := range counters {
		name := "dpmd_cache_shard_" + c.suffix + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, c.help, name); err != nil {
			return err
		}
		for _, cache := range caches {
			for i, st := range cache.shards {
				labels := [][2]string{{"cache", cache.name}, {"shard", strconv.Itoa(i)}}
				if err := obs.WriteLabeledCounter(w, name, labels, c.value(st)); err != nil {
					return err
				}
			}
		}
	}
	for _, g := range []struct {
		name, help string
		value      func(plancache.Stats) int
	}{
		{"dpmd_cache_entries", "Current entries by cache.", func(st plancache.Stats) int { return st.Len }},
		{"dpmd_cache_capacity", "Maximum entries by cache.", func(st plancache.Stats) int { return st.Capacity }},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name); err != nil {
			return err
		}
		for _, cache := range caches {
			if _, err := fmt.Fprintf(w, "%s{cache=%q} %d\n", g.name, cache.name, g.value(cache.total)); err != nil {
				return err
			}
		}
	}
	return nil
}

// TraceInfo is the span-tree section of a traced response.
type TraceInfo struct {
	// RequestID is the request's X-Request-Id.
	RequestID string `json:"requestId"`
	// Spans is the span forest: names, offsets, durations,
	// annotations (per-iteration Algorithm 1 violation counts, cache
	// and memoizer dispositions).
	Spans []obs.SpanNode `json:"spans"`
}

// TracedPlanResponse wraps a /v1/plan payload when the request set
// "X-Dpmd-Trace: 1". Response carries the exact default body bytes —
// the cache entry is byte-identical whether or not the request was
// traced.
type TracedPlanResponse struct {
	// Response is the untouched /v1/plan response body.
	Response json.RawMessage `json:"response"`
	// Trace is the request's span tree.
	Trace TraceInfo `json:"trace"`
}
