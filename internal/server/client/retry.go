package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/url"
	"time"

	"dpm/internal/resilience"
)

// deadlineHeader mirrors the server's X-Dpmd-Deadline contract: the
// client's remaining time budget as a Go duration string, letting the
// admission controller shed requests it cannot serve in time.
const deadlineHeader = "X-Dpmd-Deadline"

// NewWithRetry returns a client whose requests retry transient
// failures — transport errors, truncated responses and 5xx answers —
// with exponential backoff and full jitter, honoring the server's
// Retry-After, behind a per-host circuit breaker. The zero RetryPolicy
// gives the documented safe defaults. Retrying is safe because every
// dpmd endpoint is idempotent: planning is stateless compute keyed by
// its inputs, and replan round-trips the manager checkpoint instead of
// holding server-side state.
func NewWithRetry(base string, httpClient *http.Client, policy resilience.RetryPolicy) *Client {
	c := New(base, httpClient)
	c.retrier = resilience.NewRetrier(policy)
	c.breakers = c.retrier.NewBreakerGroup()
	c.host = c.base
	if u, err := url.Parse(c.base); err == nil && u.Host != "" {
		c.host = u.Host
	}
	return c
}

// Breakers exposes the per-host circuit breakers (nil for a plain New
// client) — for state assertions and for registering WriteProm on an
// embedder's /metrics page.
func (c *Client) Breakers() *resilience.BreakerGroup { return c.breakers }

// retryable classifies an attempt error: true for failures a fresh
// attempt can fix (transport errors, truncated bodies, 5xx), and the
// server's Retry-After hint when it sent one. Context expiry is never
// retryable — the caller's budget is gone.
func retryable(err error) (bool, time.Duration) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case http.StatusInternalServerError, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true, se.RetryAfter
		default:
			return false, 0
		}
	}
	var oe *resilience.OpenError
	if errors.As(err, &oe) {
		return true, oe.RetryIn
	}
	// Everything else that isn't an HTTP status is wire trouble:
	// dial/reset errors from the transport, io.ErrUnexpectedEOF from a
	// truncated body surfacing through the JSON decoder.
	var ue *url.Error
	if errors.As(err, &ue) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true, 0
	}
	return false, 0
}

// withRetry runs attempt under the client's policy. Without a retrier
// (plain New) it is a single pass-through attempt. With one, failed
// attempts back off exponentially with full jitter (floored at the
// server's Retry-After), the per-host breaker fails fast during an
// outage and admits a single half-open probe after its cooldown, and
// the loop ends when an attempt succeeds, the attempt budget is
// spent, a non-retryable error surfaces, or ctx expires.
func (c *Client) withRetry(ctx context.Context, attempt func() error) error {
	if c.retrier == nil {
		return attempt()
	}
	br := c.breakers.For(c.host)
	attempts := 0
	for {
		err := br.Allow()
		if err == nil {
			err = attempt()
			switch canRetry, _ := retryable(err); {
			case err == nil:
				br.Success()
				return nil
			case canRetry:
				br.Failure()
			default:
				// The host answered conclusively (4xx, or the caller's
				// context died): not a host failure.
				if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					br.Success()
				}
				return err
			}
		}
		canRetry, retryAfter := retryable(err)
		if !canRetry {
			return err
		}
		attempts++
		delay, ok := c.retrier.Delay(attempts, retryAfter)
		if !ok {
			return err
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return err
		}
	}
}
