package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"dpm/internal/server"
)

// Fleet session methods --------------------------------------------
//
// A device registers once, then streams ticks — no checkpoint on the
// wire. Ticks mutate server-side session state, so unlike the
// stateless endpoints they are NOT naturally idempotent: a client
// built with NewWithRetry MUST set a distinct FleetTickRequest.Seq
// per logical tick, which lets the server answer a retried tick from
// session memory instead of double-applying its slot reports. The
// register, bulk-tick and drain calls are safe to retry as-is
// (register replaces the same session; drain of a drained fleet is
// empty).

// FleetRegister creates (or resumes, or replaces) one device's
// session. A 503 with Retry-After means the session cap is reached.
func (c *Client) FleetRegister(ctx context.Context, req server.FleetRegisterRequest) (*server.FleetRegisterResponse, error) {
	var out server.FleetRegisterResponse
	if _, err := c.post(ctx, "/v1/fleet/register", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetTick streams one device's completed-slot telemetry and returns
// the delta replan. A 404 means the device never registered (or was
// drained); a 410 that its session was idle-evicted — re-register to
// resume from the parked checkpoint. Set req.Seq when the client
// retries (see the package note above).
func (c *Client) FleetTick(ctx context.Context, req server.FleetTickRequest) (*server.FleetTickResponse, error) {
	var out server.FleetTickResponse
	if _, err := c.post(ctx, "/v1/fleet/tick", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetTickResult is one item of a FleetBulkTick call: exactly one of
// Tick and Err is set.
type FleetTickResult struct {
	Tick *server.FleetTickResponse
	Err  error
}

// FleetBulkTick ticks many devices in one round trip. The returned
// slice is in request order; a failed item carries a *StatusError in
// Err and does not disturb its siblings.
func (c *Client) FleetBulkTick(ctx context.Context, ticks []server.FleetTickRequest) ([]FleetTickResult, error) {
	var out server.FleetBulkTickResponse
	if _, err := c.post(ctx, "/v1/fleet/bulk-tick", server.FleetBulkTickRequest{Ticks: ticks}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(ticks) {
		return nil, fmt.Errorf("client: %d bulk-tick results for %d ticks", len(out.Results), len(ticks))
	}
	res := make([]FleetTickResult, len(out.Results))
	for i, item := range out.Results {
		if item.Status != http.StatusOK {
			msg := strings.TrimSpace(string(item.Body))
			var ae apiError
			if err := json.Unmarshal(item.Body, &ae); err == nil && ae.Error != "" {
				msg = ae.Error
			}
			res[i] = FleetTickResult{Err: &StatusError{Code: item.Status, Message: msg}}
			continue
		}
		var tr server.FleetTickResponse
		if err := json.Unmarshal(item.Body, &tr); err != nil {
			return nil, fmt.Errorf("client: decoding bulk-tick item %d: %w", i, err)
		}
		res[i] = FleetTickResult{Tick: &tr}
	}
	return res, nil
}

// FleetDrain removes every session and returns each final checkpoint
// exactly once. Call it during the server's drain-grace window to
// recover the whole fleet's state before the process exits.
func (c *Client) FleetDrain(ctx context.Context) (*server.FleetDrainResponse, error) {
	var out server.FleetDrainResponse
	if _, err := c.post(ctx, "/v1/fleet/drain", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
