package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"dpm/internal/server"
)

// Ingestion endpoints -----------------------------------------------
//
// GET /v1/ingest/stats and POST /v1/ingest/flush expose the telemetry
// ingestion loop (internal/ingest). Both answer 404 when the server
// runs without -ingest-addr.

// IngestStats fetches the ingestion daemon's counters, per-device
// loop state and the last flush's span tree.
func (c *Client) IngestStats(ctx context.Context) (*server.IngestStatsResponse, error) {
	var out server.IngestStatsResponse
	err := c.withRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/ingest/stats", nil)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		out = server.IngestStatsResponse{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return fmt.Errorf("client: decoding response: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestFlush closes the current ingestion window of every tracked
// device immediately and reports the pass — the deterministic
// alternative to waiting out the flush timer.
func (c *Client) IngestFlush(ctx context.Context) (*server.IngestFlushResult, error) {
	var out server.IngestFlushResult
	err := c.withRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ingest/flush", strings.NewReader(""))
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		out = server.IngestFlushResult{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return fmt.Errorf("client: decoding response: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}
