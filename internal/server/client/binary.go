package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"dpm/internal/server"
)

// Binary-codec calls ------------------------------------------------
//
// PlanBinary and PlanBatchBinary speak the pooled binary wire form
// (server.BinaryContentType) on both axes: the request body is the
// binary encoding and the Accept header asks for the binary response.
// Results are semantically identical to Plan/PlanBatch — the codec
// parity is pinned by fuzz and golden tests server-side — while
// skipping JSON encode/decode entirely, which is the point for hot
// fleet clients (cmd/dpmload -binary drives this path). Error
// responses stay JSON at the top level and decode through the same
// StatusError as the JSON methods.

// postBinary sends a binary-codec request and returns the raw binary
// response body, under the retry policy when one is configured.
func (c *Client) postBinary(ctx context.Context, path string, body []byte) ([]byte, CacheState, error) {
	var out []byte
	var state CacheState
	err := c.withRetry(ctx, func() error {
		b, st, err := c.postBinaryOnce(ctx, path, body)
		out, state = b, st
		return err
	})
	return out, state, err
}

// postBinaryOnce is one binary request/response round trip.
func (c *Client) postBinaryOnce(ctx context.Context, path string, body []byte) ([]byte, CacheState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, CacheNone, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", server.BinaryContentType)
	req.Header.Set("Accept", server.BinaryContentType)
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			req.Header.Set(deadlineHeader, rem.String())
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, CacheNone, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	state := CacheState(resp.Header.Get("X-Dpmd-Cache"))
	if resp.StatusCode != http.StatusOK {
		return nil, state, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, state, fmt.Errorf("client: reading response: %w", err)
	}
	return data, state, nil
}

// PlanBinary is Plan over the binary codec.
func (c *Client) PlanBinary(ctx context.Context, req server.PlanRequest) (*server.PlanResponse, CacheState, error) {
	body := server.AppendPlanRequestBinary(nil, &req)
	data, state, err := c.postBinary(ctx, "/v1/plan", body)
	if err != nil {
		return nil, state, err
	}
	out, err := server.DecodePlanResponseBinary(data)
	if err != nil {
		return nil, state, fmt.Errorf("client: decoding response: %w", err)
	}
	return out, state, nil
}

// PlanBatchBinary is PlanBatch over the binary codec. The returned
// slice is in request order; a failed item carries a *StatusError in
// Err and does not disturb its siblings.
func (c *Client) PlanBatchBinary(ctx context.Context, reqs []server.PlanRequest) ([]BatchResult, error) {
	body := server.AppendBatchRequestBinary(nil, &server.BatchRequest{Requests: reqs})
	data, _, err := c.postBinary(ctx, "/v1/batch", body)
	if err != nil {
		return nil, err
	}
	items, err := server.DecodeBatchResponseBinary(data)
	if err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	if len(items) != len(reqs) {
		return nil, fmt.Errorf("client: %d batch results for %d requests", len(items), len(reqs))
	}
	res := make([]BatchResult, len(items))
	for i, item := range items {
		if item.Status != http.StatusOK {
			res[i] = BatchResult{Err: &StatusError{Code: item.Status, Message: item.Message}}
			continue
		}
		res[i] = BatchResult{Plan: item.Plan, Cache: CacheState(item.Cache)}
	}
	return res, nil
}
