package client

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"dpm/internal/server"
	"dpm/internal/trace"
)

// startRealServer boots an actual dpmd instance (not an httptest
// stub) so the strategy round trip covers the full wire surface.
func startRealServer(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return "http://" + s.Addr()
}

// TestPlanWithStrategy: the Planner field selects a backend and the
// response names it.
func TestPlanWithStrategy(t *testing.T) {
	c := New(startRealServer(t), nil)
	resp, _, err := c.Plan(context.Background(), server.PlanRequest{
		Scenario: trace.ScenarioI(),
		Planner:  "yds",
	})
	if err != nil {
		t.Fatalf("plan with yds: %v", err)
	}
	if resp.Planner != "yds" {
		t.Errorf("response planner %q, want yds", resp.Planner)
	}
	if !resp.Feasible || len(resp.Allocation) == 0 {
		t.Errorf("yds plan not usable: %+v", resp)
	}
}

// TestPlanUnknownStrategyTypedError: an unknown planner surfaces as a
// *StatusError carrying the server's 400 and its strategy listing —
// callers can branch on the code and print the catalog.
func TestPlanUnknownStrategyTypedError(t *testing.T) {
	c := New(startRealServer(t), nil)
	_, _, err := c.Plan(context.Background(), server.PlanRequest{
		Scenario: trace.ScenarioI(),
		Planner:  "vaporware",
	})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T), want *StatusError", err, err)
	}
	if se.Code != http.StatusBadRequest {
		t.Errorf("status %d, want 400", se.Code)
	}
	for _, name := range []string{"paper", "yds", "bunde"} {
		if !strings.Contains(se.Message, name) {
			t.Errorf("message %q does not list %q", se.Message, name)
		}
	}
}
