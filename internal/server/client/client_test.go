package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpm/internal/chaostest"
	"dpm/internal/resilience"
	"dpm/internal/server"
	"dpm/internal/trace"
)

// planJSON is a minimal valid /v1/plan response body.
const planJSON = `{"tau":14400,"allocation":[1,1],"trajectory":[0,1,1],"iterations":1,"feasible":true}`

// fastPolicy keeps retry sleeps microscopic and deterministic.
func fastPolicy() resilience.RetryPolicy {
	return resilience.RetryPolicy{
		BaseDelay: time.Millisecond,
		MaxDelay:  5 * time.Millisecond,
		Seed:      1,
	}
}

func planReq() server.PlanRequest { return server.PlanRequest{Scenario: trace.ScenarioI()} }

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			io.WriteString(w, `{"error":"transient","status":500}`) //nolint:errcheck
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, planJSON) //nolint:errcheck
	}))
	defer srv.Close()

	c := NewWithRetry(srv.URL, nil, fastPolicy())
	resp, _, err := c.Plan(context.Background(), planReq())
	if err != nil {
		t.Fatalf("plan after transient failures: %v", err)
	}
	if !resp.Feasible || len(resp.Allocation) != 2 {
		t.Fatalf("unexpected plan %+v", resp)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", n)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"down","status":500}`) //nolint:errcheck
	}))
	defer srv.Close()

	p := fastPolicy()
	p.MaxAttempts = 3
	c := NewWithRetry(srv.URL, nil, p)
	_, _, err := c.Plan(context.Background(), planReq())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("err %v, want StatusError 500", err)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=3", n)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		io.WriteString(w, `{"error":"bad scenario","status":400}`) //nolint:errcheck
	}))
	defer srv.Close()

	c := NewWithRetry(srv.URL, nil, fastPolicy())
	_, _, err := c.Plan(context.Background(), planReq())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err %v, want StatusError 400", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests for a 400, want 1 (no retries)", n)
	}
}

func TestRetryAfterParsedIntoStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"saturated","status":503}`) //nolint:errcheck
	}))
	defer srv.Close()

	// Plain client: one attempt, error carries the hint.
	c := New(srv.URL, nil)
	_, _, err := c.Plan(context.Background(), planReq())
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err %v, want StatusError", err)
	}
	if se.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter %s, want 2s", se.RetryAfter)
	}
}

func TestTruncatedResponseRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if hits.Add(1) == 1 {
			io.WriteString(w, `{"tau":14400,"alloc`) //nolint:errcheck
			return
		}
		io.WriteString(w, planJSON) //nolint:errcheck
	}))
	defer srv.Close()

	c := NewWithRetry(srv.URL, nil, fastPolicy())
	if _, _, err := c.Plan(context.Background(), planReq()); err != nil {
		t.Fatalf("plan after truncated body: %v", err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
}

func TestDeadlineHeaderDeclaresBudget(t *testing.T) {
	var header atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get(deadlineHeader))
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, planJSON) //nolint:errcheck
	}))
	defer srv.Close()

	c := NewWithRetry(srv.URL, nil, fastPolicy())
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, _, err := c.Plan(ctx, planReq()); err != nil {
		t.Fatal(err)
	}
	got, _ := header.Load().(string)
	if got == "" {
		t.Fatal("request carried no X-Dpmd-Deadline despite a context deadline")
	}
	d, err := time.ParseDuration(got)
	if err != nil || d <= 0 || d > 3*time.Second {
		t.Fatalf("deadline header %q (parsed %s, err %v), want a positive duration <= 3s", got, d, err)
	}
}

// TestBreakerFailFastAndHalfOpenRecovery drives the breaker through
// its full cycle against one flaky server: consecutive failures open
// it mid-retry-loop, a later call waits out the cooldown, probes
// half-open and closes on success — leaking no goroutines.
func TestBreakerFailFastAndHalfOpenRecovery(t *testing.T) {
	snap := chaostest.SnapshotGoroutines()
	var hits atomic.Int64
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			io.WriteString(w, `{"error":"down","status":500}`) //nolint:errcheck
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, planJSON) //nolint:errcheck
	}))

	p := fastPolicy()
	p.MaxAttempts = 2
	p.BreakerThreshold = 2
	p.BreakerCooldown = 50 * time.Millisecond
	httpc := &http.Client{Timeout: 10 * time.Second}
	c := NewWithRetry(srv.URL, httpc, p)
	u := c.host

	// Phase 1: both attempts fail, tripping the threshold-2 breaker.
	if _, _, err := c.Plan(context.Background(), planReq()); err == nil {
		t.Fatal("plan against a down server succeeded")
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
	if st := c.Breakers().For(u).State(); st != resilience.BreakerOpen {
		t.Fatalf("breaker state %s after consecutive failures, want open", st)
	}

	// Phase 2: the server recovers. The next call is first blocked by
	// the open circuit, sleeps out the cooldown (the OpenError's
	// RetryIn floors the backoff), probes half-open and closes.
	healthy.Store(true)
	if _, _, err := c.Plan(context.Background(), planReq()); err != nil {
		t.Fatalf("plan after recovery: %v", err)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (probe only)", n)
	}
	if st := c.Breakers().For(u).State(); st != resilience.BreakerClosed {
		t.Fatalf("breaker state %s after successful probe, want closed", st)
	}

	srv.Close()
	httpc.CloseIdleConnections()
	chaostest.CheckGoroutines(t, snap)
}

// TestBreakerStateOnMetrics renders the group and checks the family
// names the README documents.
func TestBreakerStateOnMetrics(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 1
	p.BreakerThreshold = 1
	c := NewWithRetry("http://127.0.0.1:0", nil, p) // nothing listens: dial errors
	c.Plan(context.Background(), planReq())         //nolint:errcheck
	var buf writerBuf
	if err := c.Breakers().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := string(buf)
	for _, want := range []string{"dpmd_client_breaker_state{host=", "dpmd_client_breaker_opens_total{host="} {
		if !strings.Contains(out, want) {
			t.Errorf("breaker families missing %q in:\n%s", want, out)
		}
	}
}

type writerBuf []byte

func (b *writerBuf) Write(p []byte) (int, error) { *b = append(*b, p...); return len(p), nil }
