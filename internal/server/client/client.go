// Package client is a small typed client for the dpmd planning
// service (internal/server). Tests and the examples/service
// walkthrough use it; fleet nodes would embed something like it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dpm/internal/resilience"
	"dpm/internal/server"
)

// CacheState reports whether a response was served from the plan
// cache.
type CacheState string

const (
	// CacheHit means the response came from the cache.
	CacheHit CacheState = "hit"
	// CacheMiss means the response was computed for this request.
	CacheMiss CacheState = "miss"
	// CacheNone means the endpoint does not cache.
	CacheNone CacheState = ""
)

// Client talks to one dpmd instance.
type Client struct {
	base string
	http *http.Client

	// retrier and breakers are set by NewWithRetry; nil means every
	// request is a single attempt (the New behavior).
	retrier  *resilience.Retrier
	breakers *resilience.BreakerGroup
	host     string
}

// New returns a client for the service at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses a default with a
// 30 s timeout.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// apiError mirrors the server's structured error body.
type apiError struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// StatusError is a non-2xx response from the service.
type StatusError struct {
	// Code is the HTTP status.
	Code int
	// Message is the server's structured error text.
	Message string
	// RetryAfter is the server's Retry-After hint (0 when absent); the
	// retry loop uses it as the floor of its backoff sleep.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dpmd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// post sends a JSON request and decodes the JSON response into out,
// under the retry policy when one is configured (NewWithRetry). Extra
// headers (key/value pairs) are set on the request. Every dpmd
// endpoint is idempotent — planning is stateless compute and replan
// round-trips its checkpoint — so re-executing a request whose
// response was lost is always safe.
func (c *Client) post(ctx context.Context, path string, in, out any, headers ...[2]string) (CacheState, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return CacheNone, fmt.Errorf("client: encoding request: %w", err)
	}
	var state CacheState
	err = c.withRetry(ctx, func() error {
		st, err := c.postOnce(ctx, path, body, out, headers)
		state = st
		return err
	})
	return state, err
}

// postOnce is one request/response round trip.
func (c *Client) postOnce(ctx context.Context, path string, body []byte, out any, headers [][2]string) (CacheState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return CacheNone, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Declare the remaining budget so the server can shed the request
	// instead of queueing it past its deadline. Recomputed per attempt:
	// each retry has less budget than the last.
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			req.Header.Set(deadlineHeader, rem.String())
		}
	}
	for _, h := range headers {
		req.Header.Set(h[0], h[1])
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return CacheNone, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	state := CacheState(resp.Header.Get("X-Dpmd-Cache"))
	if resp.StatusCode != http.StatusOK {
		return state, decodeError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return state, fmt.Errorf("client: decoding response: %w", err)
	}
	return state, nil
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	se := &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	var ae apiError
	if err := json.Unmarshal(data, &ae); err == nil && ae.Error != "" {
		se.Message = ae.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// Plan requests an Algorithm 1 power allocation.
func (c *Client) Plan(ctx context.Context, req server.PlanRequest) (*server.PlanResponse, CacheState, error) {
	var out server.PlanResponse
	state, err := c.post(ctx, "/v1/plan", req, &out)
	if err != nil {
		return nil, state, err
	}
	return &out, state, nil
}

// PlanTraced is Plan with the debug span tree attached: it sets
// "X-Dpmd-Trace: 1" and decodes the wrapped response. The embedded
// plan bytes are exactly what Plan would have returned — tracing never
// perturbs the cached payload — with the request's span tree and
// request id alongside.
func (c *Client) PlanTraced(ctx context.Context, req server.PlanRequest) (*server.TracedPlanResponse, CacheState, error) {
	var out server.TracedPlanResponse
	state, err := c.post(ctx, "/v1/plan", req, &out, [2]string{"X-Dpmd-Trace", "1"})
	if err != nil {
		return nil, state, err
	}
	return &out, state, nil
}

// BatchResult is one item of a PlanBatch call: exactly one of Plan
// and Err is set. Cache reports the item's plan-cache disposition.
type BatchResult struct {
	Plan  *server.PlanResponse
	Cache CacheState
	Err   error
}

// PlanBatch answers many plan requests in one round trip. The
// returned slice is in request order; a failed item carries a
// *StatusError in Err and does not disturb its siblings.
func (c *Client) PlanBatch(ctx context.Context, reqs []server.PlanRequest) ([]BatchResult, error) {
	var out server.BatchResponse
	if _, err := c.post(ctx, "/v1/batch", server.BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("client: %d batch results for %d requests", len(out.Results), len(reqs))
	}
	res := make([]BatchResult, len(out.Results))
	for i, item := range out.Results {
		if item.Status != http.StatusOK {
			msg := strings.TrimSpace(string(item.Body))
			var ae apiError
			if err := json.Unmarshal(item.Body, &ae); err == nil && ae.Error != "" {
				msg = ae.Error
			}
			res[i] = BatchResult{Err: &StatusError{Code: item.Status, Message: msg}}
			continue
		}
		var pr server.PlanResponse
		if err := json.Unmarshal(item.Body, &pr); err != nil {
			return nil, fmt.Errorf("client: decoding batch item %d: %w", i, err)
		}
		res[i] = BatchResult{Plan: &pr, Cache: CacheState(item.Cache)}
	}
	return res, nil
}

// Params requests an Algorithm 2 (n, f) schedule for a plan.
func (c *Client) Params(ctx context.Context, req server.ParamsRequest) (*server.ParamsResponse, CacheState, error) {
	var out server.ParamsResponse
	state, err := c.post(ctx, "/v1/params", req, &out)
	if err != nil {
		return nil, state, err
	}
	return &out, state, nil
}

// Replan applies the Algorithm 3 runtime update.
func (c *Client) Replan(ctx context.Context, req server.ReplanRequest) (*server.ReplanResponse, error) {
	var out server.ReplanResponse
	if _, err := c.post(ctx, "/v1/replan", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Simulate runs a bounded closed-loop simulation.
func (c *Client) Simulate(ctx context.Context, req server.SimulateRequest) (*server.SimulateResponse, error) {
	var out server.SimulateResponse
	if _, err := c.post(ctx, "/v1/simulate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz checks liveness (retried under the client's policy when one
// is configured — a GET is trivially idempotent).
func (c *Client) Healthz(ctx context.Context) error {
	return c.withRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			return &StatusError{Code: resp.StatusCode, Message: "health check failed"}
		}
		return nil
	})
}

// Metrics fetches the plain-text counters.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}
