package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"dpm/internal/dpm"
	"dpm/internal/fleet"
	"dpm/internal/ingest"
	"dpm/internal/obs"
	"dpm/internal/params"
	"dpm/internal/pipeline"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// Ingestion endpoints -----------------------------------------------
//
// When Config.IngestAddr is set, dpmd runs the internal/ingest daemon
// alongside the HTTP API: devices stream StatsD counters/gauges over
// UDP, each flush window closes one observed slot that ticks the
// device's fleet session, and a sustained forecast divergence replans
// the session from the live forecast. The HTTP surface is small:
//
//	GET  /v1/ingest/stats  counters, per-device loop state, last
//	                       flush's span tree
//	POST /v1/ingest/flush  close the current window immediately (the
//	                       deterministic test/ops hook)
//
// Both answer 404 when ingestion is disabled.

// ingestRegistration is what the bridge needs to rebuild a device's
// session around new forecasts: the planning environment from its
// /v1/fleet/register, plus the session's last known charge.
type ingestRegistration struct {
	scenario trace.Scenario
	params   params.Config
	policy   dpm.RedistributePolicy
	planner  string
	chargeJ  float64
}

// ingestState is the server's half of the telemetry loop.
type ingestState struct {
	daemon *ingest.Daemon

	mu  sync.Mutex
	reg map[string]ingestRegistration
}

func (st *ingestState) lookup(deviceID string) (ingestRegistration, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.reg[deviceID]
	return r, ok
}

func (st *ingestState) store(deviceID string, r ingestRegistration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reg[deviceID] = r
}

func (st *ingestState) setCharge(deviceID string, chargeJ float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if r, ok := st.reg[deviceID]; ok {
		r.chargeJ = chargeJ
		st.reg[deviceID] = r
	}
}

func (st *ingestState) remove(deviceID string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.reg, deviceID)
}

// fleetBridge implements ingest.Replanner on the fleet manager.
type fleetBridge struct{ s *Server }

// Tick streams one closed flush window into the device's session as a
// completed-slot report — the same Algorithm 3 path /v1/fleet/tick
// drives, minus the HTTP envelope.
func (b *fleetBridge) Tick(ctx context.Context, deviceID string, o ingest.SlotObservation) error {
	res, err := b.s.fleet.Tick(ctx, fleet.TickSpec{
		DeviceID: deviceID,
		Reports:  []pipeline.SlotReport{{UsedJ: o.UsedJ, SuppliedJ: o.SuppliedJ}},
	})
	if err != nil {
		return err
	}
	b.s.ingest.setCharge(deviceID, res.ChargeJ)
	return nil
}

// Replan rebuilds the device's session from the live forecasts: a
// fresh register (no checkpoint, so a live session is displaced with
// a new plan) keeping the device's hardware, policy, planner, battery
// band and weight, with the forecast grids as the planning inputs and
// the session's last charge carried over.
func (b *fleetBridge) Replan(ctx context.Context, deviceID string, usage, charging *schedule.Grid) error {
	reg, ok := b.s.ingest.lookup(deviceID)
	if !ok {
		return fleet.ErrUnknownDevice
	}
	sc := reg.scenario
	sc.Usage = usage
	sc.Charging = charging
	sc.InitialCharge = reg.chargeJ
	if sc.InitialCharge < sc.CapacityMin {
		sc.InitialCharge = sc.CapacityMin
	}
	if sc.InitialCharge > sc.CapacityMax {
		sc.InitialCharge = sc.CapacityMax
	}
	res, err := b.s.fleet.Register(ctx, fleet.RegisterSpec{
		DeviceID: deviceID,
		Scenario: sc,
		Params:   reg.params,
		Policy:   reg.policy,
		Planner:  reg.planner,
	})
	if err != nil {
		return err
	}
	reg.scenario = sc
	reg.chargeJ = res.ChargeJ
	b.s.ingest.store(deviceID, reg)
	return nil
}

// newIngest assembles the daemon (not yet listening) for a server
// whose Config enables ingestion.
func newIngest(s *Server) (*ingestState, error) {
	d, err := ingest.New(ingest.Config{
		Addr:                s.cfg.IngestAddr,
		FlushInterval:       s.cfg.IngestFlush,
		Predictor:           s.cfg.IngestPredictor,
		DivergenceThreshold: s.cfg.DivergenceThreshold,
		EventEnergyJ:        s.cfg.IngestEventEnergyJ,
		Replanner:           &fleetBridge{s: s},
		Stages:              s.tel.stages,
		Log:                 s.cfg.AccessLog,
	})
	if err != nil {
		return nil, err
	}
	return &ingestState{daemon: d, reg: make(map[string]ingestRegistration)}, nil
}

// ingestTrack hooks a successful /v1/fleet/register into the
// ingestion loop: remember the planning environment for replans and
// start aggregating the device's telemetry against its planned grids.
// Never called holding ingestState.mu — Track round-trips through the
// device's shard goroutine, which may itself be inside the bridge.
func (s *Server) ingestTrack(req *FleetRegisterRequest, pcfg params.Config, pol dpm.RedistributePolicy, res fleet.RegisterResult) {
	if s.ingest == nil {
		return
	}
	s.ingest.store(req.DeviceID, ingestRegistration{
		scenario: req.Scenario,
		params:   pcfg,
		policy:   pol,
		planner:  req.Planner,
		chargeJ:  res.ChargeJ,
	})
	// The scenario passed validation, so the grids are well-formed;
	// a Track refusal (device cap) still leaves the fleet session
	// usable and is surfaced on the daemon's cardinality counter.
	s.ingest.daemon.Track(req.DeviceID, req.Scenario.Usage, req.Scenario.Charging) //nolint:errcheck
}

// ingestUntrack drops drained devices from the ingestion loop.
func (s *Server) ingestUntrack(deviceIDs []string) {
	if s.ingest == nil {
		return
	}
	for _, id := range deviceIDs {
		s.ingest.remove(id)
		s.ingest.daemon.Untrack(id)
	}
}

// IngestFlushResult is the POST /v1/ingest/flush body: one flush
// pass's summary.
type IngestFlushResult = ingest.FlushResult

// IngestStatsResponse is the GET /v1/ingest/stats body.
type IngestStatsResponse struct {
	// Enabled reports whether the daemon is running.
	Enabled bool `json:"enabled"`
	// Addr is the bound UDP address ("" before Start or when
	// listener-less).
	Addr string `json:"addr,omitempty"`
	// Predictor names the forecast estimator in use.
	Predictor string `json:"predictor,omitempty"`
	// DivergenceThreshold is the per-slot relative-error trigger.
	DivergenceThreshold float64 `json:"divergenceThreshold,omitempty"`
	// Stats are the daemon's counters.
	Stats ingest.Stats `json:"stats"`
	// Devices is every tracked device's loop state, sorted by id.
	Devices []ingest.DeviceStatus `json:"devices,omitempty"`
	// LastFlushSpans is the most recent flush's span tree — the
	// flush → forecast → replan pipeline stages.
	LastFlushSpans []obs.SpanNode `json:"lastFlushSpans,omitempty"`
}

// handleIngestStats reports the ingestion loop's state.
func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		writeError(w, http.StatusNotFound, "ingestion is disabled; start dpmd with -ingest-addr")
		return
	}
	d := s.ingest.daemon
	_, spans := d.LastFlush()
	resp := &IngestStatsResponse{
		Enabled:             true,
		Addr:                d.Addr(),
		Predictor:           s.cfg.IngestPredictor,
		DivergenceThreshold: s.cfg.DivergenceThreshold,
		Stats:               d.Stats(),
		Devices:             d.DeviceStatuses(),
		LastFlushSpans:      spans,
	}
	body, err := marshalBody(resp)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

// handleIngestFlush closes the current window of every tracked device
// immediately — the deterministic ops/test hook behind the same logic
// the flush timer drives.
func (s *Server) handleIngestFlush(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		writeError(w, http.StatusNotFound, "ingestion is disabled; start dpmd with -ingest-addr")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
	defer cancel()
	res, err := s.ingest.daemon.FlushNow(ctx)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	body, err := marshalBody(&res)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

// Ingest exposes the ingestion daemon (tests, embedders); nil when
// ingestion is disabled.
func (s *Server) Ingest() *ingest.Daemon {
	if s.ingest == nil {
		return nil
	}
	return s.ingest.daemon
}
