package server

import (
	"bytes"
	"net/http"
	"sync"
	"testing"

	"dpm/internal/trace"
)

// TestHandlerPoolSafetyUnderErrors hammers the plan and batch
// handlers concurrently across both encodings with a mix of cache
// hits, cache misses and error paths, comparing every response byte
// for byte against a reference captured up front. Under -race this
// pins the pooled encoder and binary buffer discipline: a pooled
// buffer Put back while its bytes are still referenced by an
// in-flight response — or one corrupted by an error path that bailed
// without resetting — surfaces as a race or as diverging bytes.
func TestHandlerPoolSafetyUnderErrors(t *testing.T) {
	_, base := startServer(t, Config{})

	planJSON := mustJSON(t, PlanRequest{Scenario: trace.ScenarioI()})
	planBin := AppendPlanRequestBinary(nil, &PlanRequest{Scenario: trace.ScenarioII()})
	badJSON := []byte(`{"scenario":{"charging":{"step":-1,"values":[1]},"usage":{"step":-1,"values":[1]}}}`)
	badBin := []byte("DPM1 but not really")
	batchBody := batchOf(t,
		PlanRequest{Scenario: trace.ScenarioI()},
		PlanRequest{Scenario: trace.ScenarioI(), Planner: "no-such-planner"},
	)

	// References, captured after one warmup of each shape so cache
	// state (hit) is steady for the comparison runs.
	postJSON(t, base, "/v1/plan", planJSON)
	postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType, planBin)
	postJSON(t, base, "/v1/batch", batchBody)
	_, _, refJSON := postJSON(t, base, "/v1/plan", planJSON)
	_, _, refBin := postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType, planBin)
	_, _, refBatch := postJSON(t, base, "/v1/batch", batchBody)
	_, _, refBadJSON := postJSON(t, base, "/v1/plan", badJSON)

	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 5 {
				case 0:
					status, _, body := postJSON(t, base, "/v1/plan", planJSON)
					if status != http.StatusOK || !bytes.Equal(body, refJSON) {
						t.Errorf("json plan diverged (status %d)", status)
						return
					}
				case 1:
					status, _, body := postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType, planBin)
					if status != http.StatusOK || !bytes.Equal(body, refBin) {
						t.Errorf("binary plan diverged (status %d)", status)
						return
					}
				case 2:
					status, _, body := postJSON(t, base, "/v1/batch", batchBody)
					if status != http.StatusOK || !bytes.Equal(body, refBatch) {
						t.Errorf("batch diverged (status %d)", status)
						return
					}
				case 3:
					status, _, body := postJSON(t, base, "/v1/plan", badJSON)
					if status != http.StatusBadRequest || !bytes.Equal(body, refBadJSON) {
						t.Errorf("json error response diverged (status %d)", status)
						return
					}
				case 4:
					status, _, body := postRaw(t, base, "/v1/plan", BinaryContentType, BinaryContentType, badBin)
					if status != http.StatusBadRequest {
						t.Errorf("binary decode error: status %d: %s", status, body)
						return
					}
					assertStructuredError(t, body, http.StatusBadRequest)
				}
			}
		}(w)
	}
	wg.Wait()
}
