package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpm/internal/chaostest"
)

// Admission-control and readiness tests ----------------------------

// TestReadyzDrainOrdering checks the readiness contract: /readyz is
// 200 while serving, flips to 503 the instant Shutdown begins, and —
// thanks to DrainGrace — stays reachable long enough for a load
// balancer to observe the flip before the listener closes. /healthz
// must keep reporting liveness throughout.
func TestReadyzDrainOrdering(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", DrainGrace: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	status, body := getBody(t, base, "/readyz")
	if status != http.StatusOK || !strings.Contains(string(body), `"ready"`) {
		t.Fatalf("/readyz before drain: status %d body %s", status, body)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Within the grace window /readyz must answer 503 with Retry-After
	// while the listener is still accepting.
	deadline := time.Now().Add(500 * time.Millisecond)
	sawNotReady := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("/readyz unreachable during drain grace: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("draining /readyz missing Retry-After")
			}
			sawNotReady = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawNotReady {
		t.Fatal("/readyz never flipped to 503 during the drain grace window")
	}
	// Liveness is a separate signal: still 200 mid-drain.
	if status, _ := getBody(t, base, "/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz during drain: status %d, want 200", status)
	}

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never returned")
	}
}

// TestShedDoomedRequest saturates a 1-slot pool after seeding a
// ~300 ms service-time estimate, then sends a request whose declared
// deadline (X-Dpmd-Deadline) is far below the predicted wait: it must
// be shed immediately with a 503 + Retry-After, not queued to die.
func TestShedDoomedRequest(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var n atomic.Int64
	s.testDelay = func() {
		if n.Add(1) == 1 {
			// First request seeds the service-time estimate.
			time.Sleep(300 * time.Millisecond)
			return
		}
		entered <- struct{}{}
		<-release
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + s.Addr()
	req := planBody(t)

	// Seed the estimate with one completed slow request.
	if status, _, body := postJSON(t, base, "/v1/plan", req); status != http.StatusOK {
		t.Fatalf("seed request status %d: %s", status, body)
	}

	// Saturate the single slot.
	go http.Post(base+"/v1/plan", "application/json", bytes.NewReader(req)) //nolint:errcheck
	<-entered
	defer close(release)

	// 50 ms of budget against a ~300 ms predicted wait: shed, fast.
	hr, err := http.NewRequest(http.MethodPost, base+"/v1/plan", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(deadlineHeader, "50ms")
	start := time.Now()
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("doomed request got status %d, want 503", resp.StatusCode)
	}
	if elapsed > 40*time.Millisecond {
		t.Errorf("shed took %s; it must reject without queueing", elapsed)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed 503 missing Retry-After")
	}
	for _, ea := range s.AdmissionStats() {
		if ea.Endpoint == "/v1/plan" {
			if ea.Shed == 0 {
				t.Errorf("admission stats recorded no shed: %+v", ea)
			}
			return
		}
	}
	t.Fatal("no admission stats for /v1/plan")
}

// TestClientDeadlineHeader covers the header contract: malformed and
// non-positive values are 400s, a generous value leaves a fast
// request unharmed.
func TestClientDeadlineHeader(t *testing.T) {
	_, base := startServer(t, Config{})
	req := planBody(t)
	for _, bad := range []string{"banana", "-5s", "0s"} {
		hr, err := http.NewRequest(http.MethodPost, base+"/v1/plan", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set(deadlineHeader, bad)
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	hr, err := http.NewRequest(http.MethodPost, base+"/v1/plan", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(deadlineHeader, "5s")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("generous deadline rejected: status %d", resp.StatusCode)
	}
}

// TestAdmissionMetricsExposed drives one request and checks the
// admission families render on /metrics.
func TestAdmissionMetricsExposed(t *testing.T) {
	_, base := startServer(t, Config{})
	if status, _, body := postJSON(t, base, "/v1/plan", planBody(t)); status != http.StatusOK {
		t.Fatalf("plan status %d: %s", status, body)
	}
	_, body := getBody(t, base, "/metrics")
	for _, want := range []string{
		`dpmd_admission_admitted_total{endpoint="/v1/plan"} 1`,
		"dpmd_admission_shed_total",
		"dpmd_admission_expired_total",
		"dpmd_admission_queue_depth 0",
		`dpmd_admission_service_time_seconds{endpoint="/v1/plan"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestShutdownLeaksNothing boots and drains a server with chaos hold
// configured, checking no goroutines outlive the drain.
func TestShutdownLeaksNothing(t *testing.T) {
	snap := chaostest.SnapshotGoroutines()
	s, err := New(Config{
		Addr:       "127.0.0.1:0",
		PoolSize:   2,
		ChaosHold:  10 * time.Millisecond,
		DrainGrace: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	if status, _, body := postJSON(t, base, "/v1/plan", planBody(t)); status != http.StatusOK {
		t.Fatalf("plan status %d: %s", status, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	chaostest.CheckGoroutines(t, snap)
}
