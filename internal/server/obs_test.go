package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"dpm/internal/obs"
)

// postJSONHeaders is postJSON with extra request headers.
func postJSONHeaders(t *testing.T, base, path string, body []byte, headers map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// spanNames flattens a span forest into a set of names.
func spanNames(nodes []obs.SpanNode, into map[string]int) {
	for _, n := range nodes {
		into[n.Name]++
		spanNames(n.Spans, into)
	}
}

// TestTracedPlanLeavesCacheUnchanged is the debug-mode contract: a
// request with "X-Dpmd-Trace: 1" gets the span tree, but the plan
// cache entry and the default response bytes are exactly what an
// untraced request produces — in both orders (traced first populating
// the cache, and traced against a warm cache).
func TestTracedPlanLeavesCacheUnchanged(t *testing.T) {
	srv, base := startServer(t, Config{PoolSize: 4})
	want := expectedPlanBody(t)
	req := planBody(t)

	// Traced request against a cold cache: the miss populates the
	// cache with the default bytes.
	status, hdr, body := postJSONHeaders(t, base, "/v1/plan", req, map[string]string{"X-Dpmd-Trace": "1"})
	if status != http.StatusOK {
		t.Fatalf("traced plan status %d: %s", status, body)
	}
	if hdr.Get(cacheHeader) != "miss" {
		t.Fatalf("cold traced request cache %q, want miss", hdr.Get(cacheHeader))
	}
	if hdr.Get(traceHeader) != "1" {
		t.Fatalf("traced response missing %s header", traceHeader)
	}
	var traced TracedPlanResponse
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatalf("traced body: %v", err)
	}
	// The embedded response is the default body verbatim (minus the
	// trailing newline writeJSONBytes adds).
	if got := append([]byte(nil), append(traced.Response, '\n')...); !bytes.Equal(got, want) {
		t.Fatalf("traced embedded response diverges from default bytes:\n got %s\nwant %s", got, want)
	}
	if traced.Trace.RequestID == "" {
		t.Fatal("traced response missing request id")
	}
	if traced.Trace.RequestID != hdr.Get(requestIDHeader) {
		t.Fatalf("trace request id %q != header %q", traced.Trace.RequestID, hdr.Get(requestIDHeader))
	}

	// The span tree covers the pipeline: cache wrapper, plan stage,
	// Algorithm 1 and its per-iteration spans.
	names := map[string]int{}
	spanNames(traced.Trace.Spans, names)
	for _, want := range []string{"plan.cache", "pipeline.plan", "pipeline.validate", "alloc.Compute", "alloc.iteration"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from trace (got %v)", want, names)
		}
	}
	// Iteration spans carry the Algorithm 1 telemetry.
	var findIter func(nodes []obs.SpanNode) *obs.SpanNode
	findIter = func(nodes []obs.SpanNode) *obs.SpanNode {
		for i := range nodes {
			if nodes[i].Name == "alloc.iteration" {
				return &nodes[i]
			}
			if n := findIter(nodes[i].Spans); n != nil {
				return n
			}
		}
		return nil
	}
	iter := findIter(traced.Trace.Spans)
	if iter == nil {
		t.Fatal("no alloc.iteration span")
	}
	if _, ok := iter.Attrs["violations"]; !ok {
		t.Errorf("alloc.iteration span lacks violations attr: %v", iter.Attrs)
	}

	// An untraced request now hits the entry the traced miss stored,
	// and serves the canonical bytes.
	status, hdr, body = postJSON(t, base, "/v1/plan", req)
	if status != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Fatalf("status %d cache %q, want 200 hit", status, hdr.Get(cacheHeader))
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("default response after traced miss diverges:\n got %s\nwant %s", body, want)
	}

	// A traced request against the warm cache embeds the same bytes
	// and reports the hit.
	status, hdr, body = postJSONHeaders(t, base, "/v1/plan", req, map[string]string{"X-Dpmd-Trace": "1"})
	if status != http.StatusOK || hdr.Get(cacheHeader) != "hit" {
		t.Fatalf("warm traced status %d cache %q, want 200 hit", status, hdr.Get(cacheHeader))
	}
	var warm TracedPlanResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if got := append(warm.Response, '\n'); !bytes.Equal(got, want) {
		t.Fatalf("warm traced embedded response diverges from default bytes")
	}
	names = map[string]int{}
	spanNames(warm.Trace.Spans, names)
	if names["plan.cache"] == 0 {
		t.Errorf("warm trace missing plan.cache span: %v", names)
	}
	// Exactly one cache entry exists: tracing never forked the payload.
	if st := srv.CacheStats(); st.Len != 1 || st.Puts != 1 {
		t.Fatalf("cache stats %+v, want exactly one entry from one put", st)
	}
}

// TestMetricsPrometheusExposition checks /metrics carries both the
// legacy flat counters and the typed Prometheus families after real
// traffic.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, base := startServer(t, Config{PoolSize: 2})
	req := planBody(t)
	for i := 0; i < 2; i++ {
		if status, _, body := postJSON(t, base, "/v1/plan", req); status != http.StatusOK {
			t.Fatalf("plan status %d: %s", status, body)
		}
	}
	status, body := getBody(t, base, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	text := string(body)
	for _, want := range []string{
		"dpmd_plancache_hits 1",
		"dpmd_plancache_misses 1",
		`dpmd_requests_total{endpoint="/v1/plan"} 2`,
		"# TYPE dpmd_http_request_duration_seconds histogram",
		`dpmd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="+Inf"} 2`,
		`dpmd_http_request_duration_seconds_count{endpoint="/v1/plan"} 2`,
		"# TYPE dpmd_pipeline_stage_duration_seconds histogram",
		`dpmd_pipeline_stage_duration_seconds_count{stage="alloc.Compute"} 1`,
		`dpmd_pipeline_stage_duration_seconds_count{stage="plan.cache"} 2`,
		"# TYPE dpmd_cache_shard_hits_total counter",
		`dpmd_cache_shard_misses_total{cache="plan",shard=`,
		`dpmd_cache_entries{cache="plan"} 1`,
		"# TYPE dpmd_start_time_seconds gauge",
		"# TYPE dpmd_uptime_seconds gauge",
		"# TYPE go_goroutines gauge",
		"# TYPE go_heap_alloc_bytes gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The legacy block renders before the typed families so existing
	// scrapers see their lines first.
	if legacy, typed := strings.Index(text, "dpmd_plancache_hits"), strings.Index(text, "# HELP"); legacy < 0 || typed < 0 || legacy > typed {
		t.Errorf("legacy block does not precede typed families (legacy at %d, typed at %d)", legacy, typed)
	}
}

// TestRequestIDPropagation covers the three inbound cases: a
// well-formed id is honored and echoed, a malformed one is replaced,
// and a missing one is generated.
func TestRequestIDPropagation(t *testing.T) {
	_, base := startServer(t, Config{PoolSize: 2})
	req := planBody(t)

	_, hdr, _ := postJSONHeaders(t, base, "/v1/plan", req, map[string]string{"X-Request-Id": "node-42.retry_1"})
	if got := hdr.Get(requestIDHeader); got != "node-42.retry_1" {
		t.Errorf("well-formed inbound id not honored: got %q", got)
	}

	_, hdr, _ = postJSONHeaders(t, base, "/v1/plan", req, map[string]string{"X-Request-Id": "bad id; drop table"})
	if got := hdr.Get(requestIDHeader); got == "" || strings.ContainsAny(got, " ;") {
		t.Errorf("malformed inbound id not replaced: got %q", got)
	}

	long := strings.Repeat("x", obs.MaxRequestIDLen+1)
	_, hdr, _ = postJSONHeaders(t, base, "/v1/plan", req, map[string]string{"X-Request-Id": long})
	if got := hdr.Get(requestIDHeader); got == long || got == "" {
		t.Errorf("oversized inbound id not replaced: got %q", got)
	}

	_, hdr, _ = postJSON(t, base, "/v1/plan", req)
	if got := hdr.Get(requestIDHeader); got == "" {
		t.Error("missing inbound id not generated")
	}
}

// TestAccessLogJSON checks structured logging: one JSON object per
// request with the request id and disposition fields.
func TestAccessLogJSON(t *testing.T) {
	var buf bytes.Buffer
	logger := obs.NewLogger(&buf, true)
	_, base := startServer(t, Config{PoolSize: 2, AccessLog: logger})
	req := planBody(t)
	_, hdr, _ := postJSONHeaders(t, base, "/v1/plan", req, map[string]string{"X-Request-Id": "log-test-1"})
	if hdr.Get(requestIDHeader) != "log-test-1" {
		t.Fatalf("request id not echoed")
	}
	var event map[string]any
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line is not JSON: %s", line)
		}
		if m["msg"] == "request" && m["request_id"] == "log-test-1" {
			event, found = m, true
		}
	}
	if !found {
		t.Fatalf("no request event for log-test-1 in:\n%s", buf.String())
	}
	for _, k := range []string{"ts", "method", "path", "status", "bytes", "dur_ms", "cache", "remote"} {
		if _, ok := event[k]; !ok {
			t.Errorf("request event missing %q: %v", k, event)
		}
	}
	if event["path"] != "/v1/plan" || event["cache"] != "miss" {
		t.Errorf("unexpected event fields: %v", event)
	}
}

// TestDebugListenerServesPprof checks the profiler is reachable on the
// dedicated debug listener and absent from the API listener.
func TestDebugListenerServesPprof(t *testing.T) {
	srv, base := startServer(t, Config{PoolSize: 2, DebugAddr: "127.0.0.1:0"})
	if srv.DebugAddr() == "" {
		t.Fatal("debug listener not bound")
	}
	resp, err := http.Get("http://" + srv.DebugAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d, want 200", resp.StatusCode)
	}
	// The API mux must not expose the profiler.
	status, _ := getBody(t, base, "/debug/pprof/")
	if status == http.StatusOK {
		t.Fatalf("API listener serves pprof (status %d)", status)
	}
}
