package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpm/internal/pipeline"
	"dpm/internal/trace"
)

// TestDefaultGoldenParity pins that requests naming no strategy
// produce byte-identical responses to the pre-refactor goldens on
// /v1/plan, /v1/batch and /v1/fleet/register: the strategy registry
// must be invisible until a caller opts in, or every deployed cache
// and recorded client silently churns.
func TestDefaultGoldenParity(t *testing.T) {
	_, base := startServer(t, Config{})

	// Batch first: its golden embeds per-item "cache":"miss", so the
	// plan cache must still be cold.
	batch := batchOf(t,
		PlanRequest{Scenario: trace.ScenarioI()},
		PlanRequest{Scenario: trace.ScenarioII()},
	)
	status, _, body := postJSON(t, base, "/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, body)
	}
	assertGolden(t, "batch_default.golden", body)

	for _, s := range trace.Scenarios() {
		req, err := canonicalJSON(PlanRequest{Scenario: s})
		if err != nil {
			t.Fatal(err)
		}
		status, _, body := postJSON(t, base, "/v1/plan", req)
		if status != http.StatusOK {
			t.Fatalf("plan %s: status %d: %s", s.Name, status, body)
		}
		assertGolden(t, fmt.Sprintf("plan_scenario_%s.golden", s.Name), body)
	}

	reg, err := canonicalJSON(FleetRegisterRequest{
		DeviceID: "golden-device",
		Scenario: trace.ScenarioI(),
	})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body = postJSON(t, base, "/v1/fleet/register", reg)
	if status != http.StatusOK {
		t.Fatalf("fleet register: status %d: %s", status, body)
	}
	assertGolden(t, "fleet_register_default.golden", body)
}

func assertGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: bytes diverged from the pre-refactor golden\n got: %s\nwant: %s", name, got, want)
	}
}

// TestPlanStrategyDistinctCacheEntries is the cache-key regression
// test: the same scenario planned under ?strategy=paper and
// ?strategy=yds must occupy distinct cache entries and return
// distinct bodies — a collision would serve one backend's plan under
// the other's name.
func TestPlanStrategyDistinctCacheEntries(t *testing.T) {
	srv, base := startServer(t, Config{})
	req, err := canonicalJSON(PlanRequest{Scenario: trace.ScenarioI()})
	if err != nil {
		t.Fatal(err)
	}

	bodies := map[string][]byte{}
	for _, strat := range []string{"paper", "yds", "bunde"} {
		status, hdr, body := postJSON(t, base, "/v1/plan?strategy="+strat, req)
		if status != http.StatusOK {
			t.Fatalf("strategy %s: status %d: %s", strat, status, body)
		}
		if got := hdr.Get("X-Dpmd-Cache"); got != "miss" {
			t.Errorf("strategy %s first request: cache %q, want miss (colliding key?)", strat, got)
		}
		bodies[strat] = body
	}
	if st := srv.CacheStats(); st.Len != 3 {
		t.Errorf("plan cache holds %d entries after 3 distinct strategies, want 3", st.Len)
	}
	if bytes.Equal(bodies["paper"], bodies["yds"]) {
		t.Error("paper and yds bodies are identical")
	}
	if bytes.Equal(bodies["paper"], bodies["bunde"]) {
		t.Error("paper and bunde bodies are identical")
	}

	// Replays hit their own entries and return the same bytes.
	for _, strat := range []string{"paper", "yds", "bunde"} {
		status, hdr, body := postJSON(t, base, "/v1/plan?strategy="+strat, req)
		if status != http.StatusOK {
			t.Fatalf("strategy %s replay: status %d: %s", strat, status, body)
		}
		if got := hdr.Get("X-Dpmd-Cache"); got != "hit" {
			t.Errorf("strategy %s replay: cache %q, want hit", strat, got)
		}
		if !bytes.Equal(body, bodies[strat]) {
			t.Errorf("strategy %s replay bytes diverge from the first response", strat)
		}
	}

	// ?strategy=paper is canonically the default: same entry, same
	// bytes as naming no strategy at all.
	status, hdr, body := postJSON(t, base, "/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("default: status %d: %s", status, body)
	}
	if got := hdr.Get("X-Dpmd-Cache"); got != "hit" {
		t.Errorf("default after ?strategy=paper: cache %q, want hit (keys diverged)", got)
	}
	if !bytes.Equal(body, bodies["paper"]) {
		t.Errorf("default bytes differ from ?strategy=paper:\n got: %s\nwant: %s", body, bodies["paper"])
	}

	// Non-default responses carry the planner name; the default does
	// not (byte parity with the pre-registry wire form).
	var pr PlanResponse
	if err := decodeInto(bodies["yds"], &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Planner != "yds" {
		t.Errorf("yds response planner %q, want yds", pr.Planner)
	}
	if bytes.Contains(bodies["paper"], []byte(`"planner"`)) {
		t.Errorf("default response leaks a planner field: %s", bodies["paper"])
	}
}

// TestPlanUnknownStrategy: an unknown selector — query or body — is a
// structured 400 listing the registered backends.
func TestPlanUnknownStrategy(t *testing.T) {
	_, base := startServer(t, Config{})
	req, err := canonicalJSON(PlanRequest{Scenario: trace.ScenarioI()})
	if err != nil {
		t.Fatal(err)
	}
	status, _, resp := postJSON(t, base, "/v1/plan?strategy=vaporware", req)
	if status != http.StatusBadRequest {
		t.Fatalf("plan vaporware: status %d, want 400: %s", status, resp)
	}
	assertStructuredError(t, resp, http.StatusBadRequest)
	var ae apiError
	if err := json.Unmarshal(resp, &ae); err != nil {
		t.Fatal(err)
	}
	for _, name := range pipeline.Strategies() {
		if !strings.Contains(ae.Error, name) {
			t.Errorf("plan vaporware: error %q does not list registered strategy %q", ae.Error, name)
		}
	}

	// Batch keeps its per-item error semantics: the envelope is 200,
	// the tainted item carries the structured 400.
	status, _, resp = postJSON(t, base, "/v1/batch?strategy=vaporware",
		batchOf(t, PlanRequest{Scenario: trace.ScenarioI()}))
	if status != http.StatusOK {
		t.Fatalf("batch vaporware: envelope status %d, want 200: %s", status, resp)
	}
	var br BatchResponse
	if err := json.Unmarshal(resp, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 1 || br.Results[0].Status != http.StatusBadRequest {
		t.Fatalf("batch vaporware: results %s, want one item with status 400", resp)
	}
	if !strings.Contains(string(br.Results[0].Body), "unknown planner strategy") {
		t.Errorf("batch vaporware item body %s does not name the unknown strategy", br.Results[0].Body)
	}

	// Body field and query parameter disagreeing is ambiguous → 400.
	conflicted, err := canonicalJSON(PlanRequest{Scenario: trace.ScenarioI(), Planner: "yds"})
	if err != nil {
		t.Fatal(err)
	}
	status, _, resp = postJSON(t, base, "/v1/plan?strategy=bunde", conflicted)
	if status != http.StatusBadRequest {
		t.Fatalf("conflicting selectors: status %d, want 400: %s", status, resp)
	}
	assertStructuredError(t, resp, http.StatusBadRequest)
}

// TestStrategyAcrossEndpoints exercises the selector on the
// stateful surfaces: replan, simulate and fleet register accept a
// planner and reject an unknown one.
func TestStrategyAcrossEndpoints(t *testing.T) {
	_, base := startServer(t, Config{})
	s := trace.ScenarioI()
	tau := s.Charging.Step

	replan := func(planner string) (int, []byte) {
		req, err := canonicalJSON(ReplanRequest{
			Scenario: s,
			Planner:  planner,
			Slots:    []SlotReport{{UsedJ: 1, SuppliedJ: s.Charging.Values[0] * tau}},
		})
		if err != nil {
			t.Fatal(err)
		}
		status, _, body := postJSON(t, base, "/v1/replan", req)
		return status, body
	}
	status, ydsBody := replan("yds")
	if status != http.StatusOK {
		t.Fatalf("replan yds: status %d: %s", status, ydsBody)
	}
	status, paperBody := replan("")
	if status != http.StatusOK {
		t.Fatalf("replan default: status %d: %s", status, paperBody)
	}
	if bytes.Equal(ydsBody, paperBody) {
		t.Error("replan with yds baseline matches the paper baseline byte-for-byte")
	}
	if status, body := replan("vaporware"); status != http.StatusBadRequest {
		t.Errorf("replan vaporware: status %d, want 400: %s", status, body)
	}

	sim, err := canonicalJSON(SimulateRequest{Scenario: s, Planner: "bunde", Periods: 2})
	if err != nil {
		t.Fatal(err)
	}
	if status, _, body := postJSON(t, base, "/v1/simulate", sim); status != http.StatusOK {
		t.Errorf("simulate bunde: status %d: %s", status, body)
	}

	reg, err := canonicalJSON(FleetRegisterRequest{DeviceID: "dev-yds", Scenario: s, Planner: "yds"})
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := postJSON(t, base, "/v1/fleet/register", reg)
	if status != http.StatusOK {
		t.Fatalf("fleet register yds: status %d: %s", status, body)
	}
	var fr FleetRegisterResponse
	if err := decodeInto(body, &fr); err != nil {
		t.Fatal(err)
	}
	var want PlanResponse
	status, _, planBody := postJSON(t, base, "/v1/plan?strategy=yds", mustJSON(t, PlanRequest{Scenario: s}))
	if status != http.StatusOK {
		t.Fatalf("plan yds: status %d: %s", status, planBody)
	}
	if err := decodeInto(planBody, &want); err != nil {
		t.Fatal(err)
	}
	if len(fr.Plan) != len(want.Allocation) {
		t.Fatalf("fleet yds plan has %d slots, /v1/plan?strategy=yds %d", len(fr.Plan), len(want.Allocation))
	}
	for i := range fr.Plan {
		if fr.Plan[i] != want.Allocation[i] {
			t.Errorf("fleet yds plan[%d] = %g, /v1/plan?strategy=yds %g", i, fr.Plan[i], want.Allocation[i])
		}
	}

	badReg, err := canonicalJSON(FleetRegisterRequest{DeviceID: "dev-bad", Scenario: s, Planner: "vaporware"})
	if err != nil {
		t.Fatal(err)
	}
	if status, _, body := postJSON(t, base, "/v1/fleet/register", badReg); status != http.StatusBadRequest {
		t.Errorf("fleet register vaporware: status %d, want 400: %s", status, body)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := canonicalJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStrategyMetricLabels: the per-strategy plan counter appears on
// /metrics with the default labeled "paper".
func TestStrategyMetricLabels(t *testing.T) {
	_, base := startServer(t, Config{})
	req := mustJSON(t, PlanRequest{Scenario: trace.ScenarioI()})
	for _, path := range []string{"/v1/plan", "/v1/plan?strategy=yds"} {
		if status, _, body := postJSON(t, base, path, req); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, status, body)
		}
	}
	status, body := getBody(t, base, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	for _, want := range []string{
		`dpmd_plan_requests_total{strategy="paper"} 1`,
		`dpmd_plan_requests_total{strategy="yds"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
