package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"dpm/internal/plancache"
	"dpm/internal/trace"
)

// TestPlanGoldenParity pins the /v1/plan wire bytes for the paper's
// two scenarios to the pre-refactor goldens: the scenario/pipeline
// extraction must not move a single byte, or every deployed plan
// cache and recorded client would silently churn.
func TestPlanGoldenParity(t *testing.T) {
	_, base := startServer(t, Config{})
	for _, s := range trace.Scenarios() {
		req, err := canonicalJSON(PlanRequest{Scenario: s})
		if err != nil {
			t.Fatal(err)
		}
		status, _, body := postJSON(t, base, "/v1/plan", req)
		if status != http.StatusOK {
			t.Fatalf("scenario %s: status %d: %s", s.Name, status, body)
		}
		golden := filepath.Join("testdata", fmt.Sprintf("plan_scenario_%s.golden", s.Name))
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("scenario %s: /v1/plan bytes diverged from %s\n got: %s\nwant: %s",
				s.Name, golden, body, want)
		}
	}
}

// TestPlanCacheKeyStability pins the canonical cache keys for the two
// paper scenarios. A change here means every node in a fleet stops
// sharing cache entries with its differently-versioned peers — bump
// deliberately, never by accident.
func TestPlanCacheKeyStability(t *testing.T) {
	want := map[string]string{
		"I":  "0d3971f462e1f475c9933fd4cf023090b1287f744d592ba063285f6d07db3359",
		"II": "0b29915f315dce79443ae0b7d469ab919c3c05ea98ea1d171cfb4113742d86e2",
	}
	for _, s := range trace.Scenarios() {
		req := PlanRequest{Scenario: s}
		if err := validatePlanRequest(&req); err != nil {
			t.Fatal(err)
		}
		req.Scenario.Name = ""
		key, err := plancache.Key("plan", req)
		if err != nil {
			t.Fatal(err)
		}
		if key != want[s.Name] {
			t.Errorf("scenario %s: cache key %s, want %s", s.Name, key, want[s.Name])
		}
	}
}

// batchOf wraps plan requests into a /v1/batch body.
func batchOf(t *testing.T, reqs ...PlanRequest) []byte {
	t.Helper()
	b, err := canonicalJSON(BatchRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchMatchesIndividualPlans is the acceptance check for
// POST /v1/batch: every item must be byte-identical to the same
// request answered by /v1/plan — cold and from cache — and carry the
// same cache disposition.
func TestBatchMatchesIndividualPlans(t *testing.T) {
	custom := trace.ScenarioI()
	custom.Name = "custom"
	custom.InitialCharge = custom.InitialCharge * 0.9
	reqs := []PlanRequest{
		{Scenario: trace.ScenarioI()},
		{Scenario: trace.ScenarioII(), Strategy: "even"},
		{Scenario: custom, MaxIterations: 8, Margin: 0.05},
	}

	// Reference bytes from /v1/plan on a dedicated (cold) server.
	_, refBase := startServer(t, Config{})
	individual := make([][]byte, len(reqs))
	for i, pr := range reqs {
		body, err := canonicalJSON(pr)
		if err != nil {
			t.Fatal(err)
		}
		status, _, resp := postJSON(t, refBase, "/v1/plan", body)
		if status != http.StatusOK {
			t.Fatalf("plan %d: status %d: %s", i, status, resp)
		}
		individual[i] = resp
	}

	_, base := startServer(t, Config{})
	for round, wantCache := range []string{"miss", "hit"} {
		status, _, resp := postJSON(t, base, "/v1/batch", batchOf(t, reqs...))
		if status != http.StatusOK {
			t.Fatalf("round %d: batch status %d: %s", round, status, resp)
		}
		var br BatchResponse
		if err := decodeInto(resp, &br); err != nil {
			t.Fatal(err)
		}
		if len(br.Results) != len(reqs) {
			t.Fatalf("round %d: %d results for %d requests", round, len(br.Results), len(reqs))
		}
		for i, item := range br.Results {
			if item.Status != http.StatusOK {
				t.Fatalf("round %d item %d: status %d: %s", round, i, item.Status, item.Body)
			}
			if item.Cache != wantCache {
				t.Errorf("round %d item %d: cache %q, want %q", round, i, item.Cache, wantCache)
			}
			if got := append(append([]byte(nil), item.Body...), '\n'); !bytes.Equal(got, individual[i]) {
				t.Errorf("round %d item %d: batch bytes diverge from /v1/plan\n got: %s\nwant: %s",
					round, i, got, individual[i])
			}
		}
	}
}

// TestBatchPerItemErrors checks that one hostile item yields a 400
// entry whose body matches /v1/plan's error bytes while its siblings
// still plan.
func TestBatchPerItemErrors(t *testing.T) {
	hostile := trace.ScenarioI()
	grid := *hostile.Charging
	grid.Values = append([]float64(nil), hostile.Charging.Values...)
	grid.Values[0] = 1e308
	hostile.Charging = &grid
	reqs := []PlanRequest{
		{Scenario: trace.ScenarioI()},
		{Scenario: hostile},
	}

	_, base := startServer(t, Config{})
	hostileBody, err := canonicalJSON(reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	status, _, wantErr := postJSON(t, base, "/v1/plan", hostileBody)
	if status != http.StatusBadRequest {
		t.Fatalf("hostile /v1/plan status %d: %s", status, wantErr)
	}

	status, _, resp := postJSON(t, base, "/v1/batch", batchOf(t, reqs...))
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, resp)
	}
	var br BatchResponse
	if err := decodeInto(resp, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Status != http.StatusOK {
		t.Errorf("healthy item status %d: %s", br.Results[0].Status, br.Results[0].Body)
	}
	if br.Results[1].Status != http.StatusBadRequest {
		t.Errorf("hostile item status %d, want 400", br.Results[1].Status)
	}
	if got := append(append([]byte(nil), br.Results[1].Body...), '\n'); !bytes.Equal(got, wantErr) {
		t.Errorf("hostile item bytes diverge from /v1/plan error\n got: %s\nwant: %s", got, wantErr)
	}
	var ae apiError
	if err := json.Unmarshal(br.Results[1].Body, &ae); err != nil || ae.Error == "" {
		t.Errorf("hostile item body not a structured error: %s", br.Results[1].Body)
	}
}

// TestBatchRequestLimits checks the batch-level validation: an empty
// list and an oversized one are whole-request 400s.
func TestBatchRequestLimits(t *testing.T) {
	_, base := startServer(t, Config{})
	status, _, body := postJSON(t, base, "/v1/batch", []byte(`{"requests":[]}`))
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch status %d: %s", status, body)
	}
	assertStructuredError(t, body, http.StatusBadRequest)

	many := make([]PlanRequest, 257)
	for i := range many {
		many[i] = PlanRequest{Scenario: trace.ScenarioI()}
	}
	status, _, body = postJSON(t, base, "/v1/batch", batchOf(t, many...))
	if status != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d: %s", status, body)
	}
	assertStructuredError(t, body, http.StatusBadRequest)
}
