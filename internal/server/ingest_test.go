package server_test

import (
	"context"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"dpm/internal/obs"
	"dpm/internal/server"
	"dpm/internal/server/client"
	"dpm/internal/trace"
)

// The end-to-end telemetry loop, driven exactly as a deployment would
// be: a device registers with a stale usage forecast, then streams its
// real behavior — paper scenario I — as StatsD datagrams over UDP. The
// server is never given the oracle schedule; it must recover it from
// the traffic. Within two periods the live forecast converges to the
// oracle within the divergence threshold, at least one
// divergence-triggered replan fires (visible on
// dpmd_ingest_replans_total), and the flush span tree shows the
// flush → forecast → replan pipeline.
func TestIngestEndToEndConvergence(t *testing.T) {
	srv, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		IngestAddr: "127.0.0.1:0",
		// Manual flushes only: the test closes windows deterministically
		// via POST /v1/ingest/flush.
		IngestFlush:         0,
		IngestPredictor:     "last-period",
		DivergenceThreshold: 0.25,
		// One counted event == one joule per τ, so the generator sends
		// the oracle wattage as the counter value directly.
		IngestEventEnergyJ: trace.Tau,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := client.New("http://"+srv.Addr(), nil)

	// Register with the oracle's battery band and charging forecast but
	// a stale usage forecast at half the real demand: every oracle slot
	// diverges from the plan by 100% relative error.
	oracle := trace.ScenarioI()
	stale := oracle
	stale.Usage = oracle.Usage.Scale(0.5)
	const dev = "sat-007"
	if _, err := c.FleetRegister(ctx, server.FleetRegisterRequest{
		DeviceID: dev,
		Scenario: stale,
	}); err != nil {
		t.Fatal(err)
	}

	stats, err := c.IngestStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled || stats.Addr == "" {
		t.Fatalf("ingestion not live: %+v", stats)
	}
	conn, err := net.Dial("udp", stats.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	slots := oracle.Usage.Len()
	var sent uint64
	playSlot := func(slot int) {
		datagram := fmt.Sprintf("%s.events:%g|c\n%s.charge:%g|g",
			dev, oracle.Usage.Values[slot], dev, oracle.Charging.Values[slot])
		if _, err := conn.Write([]byte(datagram)); err != nil {
			t.Fatal(err)
		}
		sent += 2
		// UDP delivery is asynchronous; wait for the samples to land
		// before closing the window so every flush is deterministic.
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, err := c.IngestStats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Stats.SamplesApplied >= sent {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("slot %d: %d of %d samples applied", slot, st.Stats.SamplesApplied, sent)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if _, err := c.IngestFlush(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Period 1: every slot breaches, the hysteresis arms on the third
	// consecutive breach, and the period wrap fires the replan from the
	// first completed forecast.
	for s := 0; s < slots; s++ {
		playSlot(s)
	}
	stats, err = c.IngestStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stats.Replans < 1 {
		t.Fatalf("no divergence-triggered replan after a fully divergent period: %+v", stats.Stats)
	}
	if stats.Stats.TickErrors != 0 {
		t.Errorf("tick errors = %d", stats.Stats.TickErrors)
	}
	assertSpanPath(t, stats.LastFlushSpans, "ingest.flush", "ingest.forecast", "ingest.replan")

	// Period 2: the device keeps its oracle behavior; the replanned
	// expectation now matches, so the loop settles with no extra
	// replans.
	for s := 0; s < slots; s++ {
		playSlot(s)
	}
	stats, err = c.IngestStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stats.Replans != 1 {
		t.Errorf("replans after convergence = %d, want exactly 1", stats.Stats.Replans)
	}
	if len(stats.Devices) != 1 || stats.Devices[0].DeviceID != dev {
		t.Fatalf("devices = %+v", stats.Devices)
	}
	ds := stats.Devices[0]
	if len(ds.ForecastUsage) != slots {
		t.Fatalf("forecast length %d, want %d", len(ds.ForecastUsage), slots)
	}
	// Convergence: the live forecast — learned purely from traffic —
	// sits within the divergence threshold of the oracle on every slot.
	for i, want := range oracle.Usage.Values {
		rel := math.Abs(ds.ForecastUsage[i]-want) / math.Max(want, 0.1)
		if rel > 0.25 {
			t.Errorf("slot %d: forecast usage %g vs oracle %g (rel %g)", i, ds.ForecastUsage[i], want, rel)
		}
	}
	for i, want := range oracle.Charging.Values {
		rel := math.Abs(ds.ForecastCharging[i]-want) / math.Max(want, 0.1)
		if rel > 0.25 {
			t.Errorf("slot %d: forecast charging %g vs oracle %g (rel %g)", i, ds.ForecastCharging[i], want, rel)
		}
	}

	// The replan is on the scrape surface, and the device's fleet
	// session kept ticking throughout.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dpmd_ingest_replans_total 1",
		fmt.Sprintf("dpmd_ingest_lines_total %d", sent),
		"dpmd_fleet_ticks_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// assertSpanPath walks the span forest asserting the named chain
// exists root-to-leaf.
func assertSpanPath(t *testing.T, spans []obs.SpanNode, path ...string) {
	t.Helper()
	nodes := spans
	for depth, name := range path {
		var next []obs.SpanNode
		found := false
		for _, n := range nodes {
			if n.Name == name {
				found = true
				next = n.Spans
				break
			}
		}
		if !found {
			t.Fatalf("span %q missing at depth %d of path %v in %+v", name, depth, path, spans)
		}
		nodes = next
	}
}

// Ingestion endpoints answer 404 when the daemon is disabled, so a
// fleet-only deployment keeps a clean surface.
func TestIngestDisabled(t *testing.T) {
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	c := client.New("http://"+srv.Addr(), nil)
	ctx := context.Background()
	if _, err := c.IngestStats(ctx); err == nil {
		t.Error("stats on a fleet-only server must 404")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 404 {
		t.Errorf("stats error = %v, want 404", err)
	}
	if _, err := c.IngestFlush(ctx); err == nil {
		t.Error("flush on a fleet-only server must 404")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 404 {
		t.Errorf("flush error = %v, want 404", err)
	}
}
