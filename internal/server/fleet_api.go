package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"dpm/internal/dpm"
	"dpm/internal/fleet"
	"dpm/internal/pipeline"
	"dpm/internal/scenario"
	"dpm/internal/trace"
)

// Fleet endpoints ---------------------------------------------------
//
// POST /v1/fleet/register, /v1/fleet/tick, /v1/fleet/bulk-tick and
// /v1/fleet/drain expose internal/fleet: stateful Algorithm 3
// sessions. Where /v1/replan round-trips a full checkpoint per call,
// a registered device streams slot reports and gets delta replans
// back; the checkpoint only crosses the wire on register (resuming),
// on request (includeState), at eviction handback, and at drain.
//
// Error mapping extends the stateless conventions:
//
//	unknown device          → 404 (register first)
//	idle-evicted session    → 410 (re-register resumes the parked state)
//	corrupt checkpoint      → 400 (structured body, same as /v1/replan)
//	session cap reached     → 503 + Retry-After
//	manager closed          → 503 + Retry-After

// FleetRegisterRequest creates (or resumes, or replaces) one device's
// session.
type FleetRegisterRequest struct {
	// DeviceID is the session key; subsequent ticks carry only this.
	DeviceID string `json:"deviceId"`
	// Scenario is the device's planning environment.
	Scenario trace.Scenario `json:"scenario"`
	// Hardware describes the board; nil means the PAMA defaults.
	Hardware *Hardware `json:"hardware,omitempty"`
	// Policy selects the Algorithm 3 flavor: "proportional" (default)
	// or "even".
	Policy string `json:"policy,omitempty"`
	// Planner selects the strategy backend the session's initial plan
	// comes from: "paper" (default), "yds" or "bunde". A resumed
	// checkpoint's plan takes precedence.
	Planner string `json:"planner,omitempty"`
	// State, when set, is a checkpoint to resume from — a device
	// migrating in from the stateless /v1/replan flow or re-joining
	// after a drain handed its checkpoint back. Omitted, a parked
	// (idle-evicted) checkpoint for the device is resumed instead.
	State *dpm.State `json:"state,omitempty"`
}

// FleetRegisterResponse reports the session's starting point.
type FleetRegisterResponse struct {
	// DeviceID echoes the session key.
	DeviceID string `json:"deviceId"`
	// Slot, ChargeJ and Plan mirror the live session manager.
	Slot    int       `json:"slot"`
	ChargeJ float64   `json:"chargeJ"`
	Plan    []float64 `json:"plan"`
	// Resumed reports a restored checkpoint (explicit or parked);
	// Replaced that an existing live session was displaced.
	Resumed  bool `json:"resumed,omitempty"`
	Replaced bool `json:"replaced,omitempty"`
}

// FleetTickRequest streams one device's completed-slot telemetry.
type FleetTickRequest struct {
	// DeviceID names the registered session.
	DeviceID string `json:"deviceId"`
	// Seq, when non-zero, deduplicates retries: a tick repeating the
	// session's last seq is answered from memory without re-applying
	// its slot reports. Clients that retry ticks must set it.
	Seq uint64 `json:"seq,omitempty"`
	// Slots reports the completed slots, oldest first (same bounds as
	// /v1/replan).
	Slots []SlotReport `json:"slots"`
	// IncludeState returns the full checkpoint with the response —
	// the escape hatch back to the stateless flow.
	IncludeState bool `json:"includeState,omitempty"`
}

// FleetTickResponse is the delta replan a tick returns. Plan, ChargeJ
// and Slot carry exactly the values the equivalent /v1/replan call
// would return (the byte-parity tests pin this).
type FleetTickResponse struct {
	// Plan is the updated per-period allocation in watts.
	Plan []float64 `json:"plan"`
	// ChargeJ is the session's battery-charge estimate in joules.
	ChargeJ float64 `json:"chargeJ"`
	// Slot is the absolute slot counter after the reports.
	Slot int `json:"slot"`
	// Replans counts the reports whose deviation triggered an
	// Algorithm 3 redistribution.
	Replans int `json:"replans"`
	// Replayed marks a duplicate-seq tick answered from session
	// memory.
	Replayed bool `json:"replayed,omitempty"`
	// State is the checkpoint, only when requested.
	State *dpm.State `json:"state,omitempty"`
}

// FleetBulkTickRequest ticks many devices in one call — a gateway
// batching its downstream fleet's telemetry.
type FleetBulkTickRequest struct {
	// Ticks are the individual tick requests, answered in order.
	Ticks []FleetTickRequest `json:"ticks"`
}

// FleetBulkTickResponse carries one result per tick, in request
// order. Items reuse the /v1/batch envelope: Status is the HTTP
// status the tick would have received individually and Body its exact
// response body (a FleetTickResponse or the structured error).
type FleetBulkTickResponse struct {
	// Results are the per-item outcomes.
	Results []BatchItem `json:"results"`
}

// FleetDrainedDevice is one removed session's final checkpoint.
type FleetDrainedDevice struct {
	// DeviceID names the session.
	DeviceID string `json:"deviceId"`
	// Slot and ChargeJ summarize where it stopped.
	Slot    int     `json:"slot"`
	ChargeJ float64 `json:"chargeJ"`
	// State is the full checkpoint; re-registering with it resumes
	// byte-identically.
	State dpm.State `json:"state"`
	// Evicted marks checkpoints recovered from the parked
	// (idle-evicted) table rather than a live session.
	Evicted bool `json:"evicted,omitempty"`
}

// FleetDrainResponse returns every session's final checkpoint exactly
// once, sorted by device id.
type FleetDrainResponse struct {
	// Devices are the drained sessions.
	Devices []FleetDrainedDevice `json:"devices"`
	// Count is len(devices).
	Count int `json:"count"`
}

// fleetErrorBody maps a fleet error onto its HTTP status and message,
// extending the shared errorBody conventions with the session
// lifecycle statuses.
func fleetErrorBody(err error) (int, string) {
	var bc *fleet.BadCheckpointError
	switch {
	case errors.As(err, &bc):
		return http.StatusBadRequest, bc.Error()
	case errors.Is(err, fleet.ErrUnknownDevice):
		return http.StatusNotFound, err.Error()
	case errors.Is(err, fleet.ErrEvicted):
		return http.StatusGone, err.Error()
	case errors.Is(err, fleet.ErrFull), errors.Is(err, fleet.ErrClosed):
		return http.StatusServiceUnavailable, err.Error()
	}
	return errorBody(err)
}

// fleetFail writes the structured error response for a fleet error.
// Capacity and shutdown 503s carry a Retry-After like every other
// overload response.
func (s *Server) fleetFail(w http.ResponseWriter, r *http.Request, err error) {
	status, msg := fleetErrorBody(err)
	if status == http.StatusServiceUnavailable {
		setRetryAfter(w, s.adm.RetryAfter(r.URL.Path))
	}
	writeError(w, status, msg)
}

// Fleet exposes the session manager (tests, embedders).
func (s *Server) Fleet() *fleet.Manager { return s.fleet }

// handleFleetRegister creates one device's session: validate the
// scenario exactly as /v1/replan would, build the live manager, and
// install it in the device's partition. A parked checkpoint (idle
// eviction) is resumed automatically; an explicit one that fails
// validation is a structured 400 before any session state changes.
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	var req FleetRegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	pcfg, pol, err := scenarioParams(req.Scenario, req.Hardware, req.Policy)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	res, err := s.fleet.Register(r.Context(), fleet.RegisterSpec{
		DeviceID: req.DeviceID,
		Scenario: req.Scenario,
		Params:   pcfg,
		Policy:   pol,
		Planner:  req.Planner,
		State:    req.State,
	})
	if err != nil {
		s.fleetFail(w, r, err)
		return
	}
	s.ingestTrack(&req, pcfg, pol, res)
	body, err := marshalBody(&FleetRegisterResponse{
		DeviceID: req.DeviceID,
		Slot:     res.Slot,
		ChargeJ:  res.ChargeJ,
		Plan:     res.Plan,
		Resumed:  res.Resumed,
		Replaced: res.Replaced,
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

// tickBody applies one tick and renders its exact wire body — shared
// verbatim by /v1/fleet/tick and every /v1/fleet/bulk-tick item so
// the two are byte-identical.
func (s *Server) tickBody(r *http.Request, req *FleetTickRequest) ([]byte, error) {
	reports := make([]pipeline.SlotReport, len(req.Slots))
	for i, rep := range req.Slots {
		reports[i] = pipeline.SlotReport(rep)
	}
	res, err := s.fleet.Tick(r.Context(), fleet.TickSpec{
		DeviceID:     req.DeviceID,
		Seq:          req.Seq,
		Reports:      reports,
		IncludeState: req.IncludeState,
	})
	if err != nil {
		return nil, err
	}
	return marshalBody(&FleetTickResponse{
		Plan:     res.Plan,
		ChargeJ:  res.ChargeJ,
		Slot:     res.Slot,
		Replans:  res.Replans,
		Replayed: res.Replayed,
		State:    res.State,
	})
}

// handleFleetTick applies one device's slot reports inside its
// session partition and returns the delta replan.
func (s *Server) handleFleetTick(w http.ResponseWriter, r *http.Request) {
	var req FleetTickRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	body, err := s.tickBody(r, &req)
	if err != nil {
		s.fleetFail(w, r, err)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

// handleFleetBulkTick ticks N devices in one call. Every item runs
// the exact /v1/fleet/tick flow, fanned across at most the worker
// pool's parallelism (ticks for different devices run concurrently in
// their partitions; same-device items serialize in partition order),
// and failures are reported per item so one unknown device does not
// void the rest of the batch.
func (s *Server) handleFleetBulkTick(w http.ResponseWriter, r *http.Request) {
	var req FleetBulkTickRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if len(req.Ticks) == 0 {
		s.fail(w, r, badRequestf("at least one tick is required"))
		return
	}
	if len(req.Ticks) > scenario.MaxBatch {
		s.fail(w, r, badRequestf("%d ticks exceed the batch limit of %d",
			len(req.Ticks), scenario.MaxBatch))
		return
	}
	ctx := r.Context()
	results := make([]BatchItem, len(req.Ticks))
	pipeline.ForEach(ctx, len(req.Ticks), s.cfg.PoolSize, func(ctx context.Context, i int) {
		body, err := s.tickBody(r.WithContext(ctx), &req.Ticks[i])
		if err != nil {
			status, msg := fleetErrorBody(err)
			results[i] = BatchItem{Status: status, Body: errorJSON(status, msg)}
			return
		}
		results[i] = BatchItem{
			Status: http.StatusOK,
			Body:   json.RawMessage(bytes.TrimSuffix(body, []byte("\n"))),
		}
	})
	if err := ctx.Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	body, err := marshalBody(&FleetBulkTickResponse{Results: results})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

// handleFleetDrain removes every session — live and parked — and
// returns each final checkpoint exactly once. Operators call it
// during the drain-grace window at shutdown (the listener is still
// accepting while /readyz already answers 503) so the whole fleet's
// state is handed back before the process exits; devices re-register
// elsewhere with their returned checkpoints.
func (s *Server) handleFleetDrain(w http.ResponseWriter, r *http.Request) {
	drained, err := s.fleet.Drain(r.Context())
	if err != nil {
		s.fleetFail(w, r, err)
		return
	}
	devices := make([]FleetDrainedDevice, len(drained))
	ids := make([]string, len(drained))
	for i, d := range drained {
		devices[i] = FleetDrainedDevice{
			DeviceID: d.DeviceID,
			Slot:     d.Slot,
			ChargeJ:  d.ChargeJ,
			State:    d.State,
			Evicted:  d.Evicted,
		}
		ids[i] = d.DeviceID
	}
	s.ingestUntrack(ids)
	body, err := marshalBody(&FleetDrainResponse{Devices: devices, Count: len(devices)})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSONBytes(w, body)
}

// FleetStats snapshots the session manager's counters.
func (s *Server) FleetStats() fleet.Stats { return s.fleet.Stats() }

// writeFleetProm renders the dpmd_fleet_* families:
//
//   - dpmd_fleet_sessions_live / _parked                gauges
//   - dpmd_fleet_registrations_total / resumed / replaced / rejected
//   - dpmd_fleet_ticks_total / slot_reports / replans / replays
//   - dpmd_fleet_evictions_total / parked_drops / drains / drained_sessions
//   - dpmd_fleet_partition_sessions{partition}          gauge
//   - dpmd_fleet_partition_depth{partition}             gauge (queued commands)
func (s *Server) writeFleetProm(w io.Writer) error {
	st := s.fleet.Stats()
	for _, g := range []struct {
		name, help string
		value      int
	}{
		{"dpmd_fleet_sessions_live", "Live fleet sessions.", st.SessionsLive},
		{"dpmd_fleet_sessions_parked", "Idle-evicted checkpoints parked for handback.", st.SessionsParked},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			g.name, g.help, g.name, g.name, g.value); err != nil {
			return err
		}
	}
	for _, c := range []struct {
		name, help string
		value      uint64
	}{
		{"dpmd_fleet_registrations_total", "Successful session registrations.", st.Registered},
		{"dpmd_fleet_resumed_total", "Registrations that restored a checkpoint (explicit or parked).", st.Resumed},
		{"dpmd_fleet_replaced_total", "Registrations that displaced an existing live session.", st.Replaced},
		{"dpmd_fleet_rejected_total", "Registrations refused at the session cap.", st.Rejected},
		{"dpmd_fleet_ticks_total", "Tick operations applied.", st.Ticks},
		{"dpmd_fleet_slot_reports_total", "Individual slot reports applied across ticks.", st.SlotReports},
		{"dpmd_fleet_replans_total", "Slot reports whose deviation triggered an Algorithm 3 redistribution.", st.Replans},
		{"dpmd_fleet_replays_total", "Duplicate-seq ticks answered from session memory.", st.Replays},
		{"dpmd_fleet_evictions_total", "Sessions idle-evicted with checkpoints parked.", st.Evictions},
		{"dpmd_fleet_parked_drops_total", "Parked checkpoints displaced by capacity pressure.", st.ParkedDrops},
		{"dpmd_fleet_drains_total", "Drain operations.", st.Drains},
		{"dpmd_fleet_drained_sessions_total", "Sessions removed by drains, each returning its checkpoint once.", st.DrainedSessions},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.value); err != nil {
			return err
		}
	}
	parts := s.fleet.PartitionStats()
	for _, g := range []struct {
		name, help string
		value      func(fleet.PartitionStats) int
	}{
		{"dpmd_fleet_partition_sessions", "Live sessions by partition.",
			func(ps fleet.PartitionStats) int { return ps.Sessions }},
		{"dpmd_fleet_partition_depth", "Commands queued for the partition event loop.",
			func(ps fleet.PartitionStats) int { return ps.Depth }},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name); err != nil {
			return err
		}
		for i, ps := range parts {
			if _, err := fmt.Fprintf(w, "%s{partition=%q} %d\n", g.name, strconv.Itoa(i), g.value(ps)); err != nil {
				return err
			}
		}
	}
	return nil
}
