package params

import (
	"fmt"
	"sort"

	"dpm/internal/perf"
)

// This file implements the paper's §6 future-work extension: letting
// each processor run at its own frequency and voltage instead of a
// common clock. The task-graph model generalizes naturally — the
// serial stages run on the fastest processor, and the parallel middle
// is divided in proportion to processor speed — giving
//
//	Perf = c1 / (Ts/max(f_i) + (Tt − Ts)/Σ f_i)
//
// which reduces to Eq. 3 when all frequencies agree.

// VectorPoint is a per-processor operating configuration.
type VectorPoint struct {
	// Freqs holds the active processors' frequencies in hertz,
	// sorted descending. Inactive processors are simply absent.
	Freqs []float64
	// Volts holds the matching Eq. 11 voltages.
	Volts []float64
	// Power is the system draw in watts, including stand-by power
	// for inactive processors.
	Power float64
	// Perf is the generalized Eq. 3 performance.
	Perf float64
}

// N returns the active-processor count.
func (p VectorPoint) N() int { return len(p.Freqs) }

// VectorPerformance evaluates the mixed-frequency performance model.
// An empty frequency set has zero performance. Frequencies must be
// positive.
func VectorPerformance(w perf.Workload, freqs []float64) float64 {
	if len(freqs) == 0 {
		return 0
	}
	maxF, sumF := 0.0, 0.0
	for _, f := range freqs {
		if f <= 0 {
			panic(fmt.Sprintf("params: non-positive frequency %g in vector", f))
		}
		if f > maxF {
			maxF = f
		}
		sumF += f
	}
	c1 := w.C1
	if c1 == 0 {
		c1 = 1
	}
	return c1 / (w.SerialTime/maxF + w.ParallelTime()/sumF)
}

// VectorSelect greedily builds the per-processor configuration with
// the best performance within the power budget: starting from
// all-idle, it repeatedly applies whichever single upgrade —
// activating another processor at the lowest frequency, or raising
// one active processor to the next frequency step — has the highest
// performance gain per added watt, until no upgrade fits the budget.
//
// Greedy is not provably optimal for this discrete problem, but with
// monotone frequency ladders it tracks the exact frontier closely and
// runs in O(n·|F|) — this is the ablation comparator for the
// homogeneous Algorithm 2, not a production scheduler.
func VectorSelect(cfg Config, budget float64) (VectorPoint, error) {
	if err := cfg.validate(); err != nil {
		return VectorPoint{}, err
	}
	freqs := append([]float64(nil), cfg.Frequencies...)
	sort.Float64s(freqs)
	law := cfg.System.Proc.Law()

	// voltFor caches the Eq. 11 voltage per ladder step.
	volts := make([]float64, len(freqs))
	for i, f := range freqs {
		v, err := cfg.Curve.VoltageFor(f)
		if err != nil {
			return VectorPoint{}, fmt.Errorf("params: frequency %g Hz unreachable: %w", f, err)
		}
		volts[i] = v
	}
	procPower := func(step int) float64 { return law.Single(freqs[step], volts[step]) }

	// steps[i] is the ladder index of active processor i; -1 = idle.
	active := []int{}
	basePower := cfg.System.MinPower() // all processors in stand-by
	standby := cfg.System.Proc.StandbyPower

	currentPower := func() float64 {
		p := basePower
		for _, s := range active {
			p += procPower(s) - standby
		}
		return p
	}
	currentFreqs := func() []float64 {
		out := make([]float64, len(active))
		for i, s := range active {
			out[i] = freqs[s]
		}
		return out
	}

	for {
		curPerf := VectorPerformance(cfg.Workload, currentFreqs())
		curPow := currentPower()
		bestGainPerW := 0.0
		bestKind := -1 // 0 = activate, 1 = bump index bestIdx
		bestIdx := -1

		// Option A: activate one more processor at the lowest step.
		if len(active) < cfg.MaxProcessors {
			addPow := procPower(0) - standby
			newPow := curPow + addPow
			if newPow <= budget && addPow > 0 {
				f := append(currentFreqs(), freqs[0])
				gain := VectorPerformance(cfg.Workload, f) - curPerf
				if g := gain / addPow; g > bestGainPerW {
					bestGainPerW, bestKind, bestIdx = g, 0, -1
				}
			}
		}
		// Option B: bump one active processor a step.
		for i, s := range active {
			if s+1 >= len(freqs) {
				continue
			}
			addPow := procPower(s+1) - procPower(s)
			if curPow+addPow > budget || addPow <= 0 {
				continue
			}
			f := currentFreqs()
			f[i] = freqs[s+1]
			gain := VectorPerformance(cfg.Workload, f) - curPerf
			if g := gain / addPow; g > bestGainPerW {
				bestGainPerW, bestKind, bestIdx = g, 1, i
			}
		}

		switch bestKind {
		case 0:
			active = append(active, 0)
		case 1:
			active[bestIdx]++
		default:
			// No affordable upgrade improves performance.
			outF := currentFreqs()
			sort.Sort(sort.Reverse(sort.Float64Slice(outF)))
			outV := make([]float64, len(outF))
			for i, f := range outF {
				v, _ := cfg.Curve.VoltageFor(f)
				outV[i] = v
			}
			return VectorPoint{
				Freqs: outF,
				Volts: outV,
				Power: currentPower(),
				Perf:  VectorPerformance(cfg.Workload, outF),
			}, nil
		}
	}
}
