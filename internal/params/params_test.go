package params

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dpm/internal/perf"
	"dpm/internal/power"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// pamaConfig mirrors the paper's evaluation: 7 worker processors,
// frequencies {20, 40, 80} MHz, voltage pinned at 3.3 V, FFT-like
// workload with a 10% serial fraction.
func pamaConfig(t *testing.T) Config {
	t.Helper()
	w, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		System:        power.PAMA(),
		Curve:         power.NewFixedVoltage(3.3, 80e6),
		Workload:      w,
		Frequencies:   []float64{20e6, 40e6, 80e6},
		MaxProcessors: 7,
		MinProcessors: 0,
	}
}

func TestBuildTableFrontier(t *testing.T) {
	tbl, err := BuildTable(pamaConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	pts := tbl.Points()
	if len(pts) < 2 {
		t.Fatalf("frontier too small: %d", len(pts))
	}
	// Frontier must be strictly increasing in both power and perf.
	for i := 1; i < len(pts); i++ {
		if pts[i].Power <= pts[i-1].Power {
			t.Errorf("frontier power not increasing at %d: %v then %v", i, pts[i-1], pts[i])
		}
		if pts[i].Perf <= pts[i-1].Perf {
			t.Errorf("frontier perf not increasing at %d: %v then %v", i, pts[i-1], pts[i])
		}
	}
	// The all-idle point must lead the frontier.
	if pts[0].N != 0 || pts[0].Perf != 0 {
		t.Errorf("first point should be all-idle: %v", pts[0])
	}
	// The top point must be 7 processors at 80 MHz.
	top := pts[len(pts)-1]
	if top.N != 7 || top.F != 80e6 {
		t.Errorf("top point = %v, want n=7 f=80 MHz", top)
	}
}

func TestBuildTableDominatedPairsPruned(t *testing.T) {
	// With a pinned voltage, (n=2, f=20 MHz) and (n=1, f=40 MHz) cost
	// nearly the same power but the latter performs better for a
	// workload with serial fraction > 0; the frontier keeps no point
	// that is beaten on both axes.
	tbl, err := BuildTable(pamaConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	pts := tbl.Points()
	for i, a := range pts {
		for j, b := range pts {
			if i != j && b.Power >= a.Power && b.Perf <= a.Perf && !(b == a) {
				if b.Power == a.Power && b.Perf == a.Perf {
					continue
				}
				t.Errorf("dominated point survived: %v dominated by %v", b, a)
			}
		}
	}
}

func TestBuildTableValidation(t *testing.T) {
	cfg := pamaConfig(t)
	bad := cfg
	bad.Frequencies = nil
	if _, err := BuildTable(bad); err == nil {
		t.Error("no frequencies must error")
	}
	bad = cfg
	bad.Frequencies = []float64{-1}
	if _, err := BuildTable(bad); err == nil {
		t.Error("negative frequency must error")
	}
	bad = cfg
	bad.MaxProcessors = 99
	if _, err := BuildTable(bad); err == nil {
		t.Error("MaxProcessors beyond the board must error")
	}
	bad = cfg
	bad.MinProcessors = 9
	if _, err := BuildTable(bad); err == nil {
		t.Error("MinProcessors above Max must error")
	}
	bad = cfg
	bad.Curve = nil
	if _, err := BuildTable(bad); err == nil {
		t.Error("nil curve must error")
	}
	bad = cfg
	bad.OverheadProc = -1
	if _, err := BuildTable(bad); err == nil {
		t.Error("negative overhead must error")
	}
}

func TestSelectRespectsBudget(t *testing.T) {
	tbl, err := BuildTable(pamaConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// Generous budget: the top point.
	top := tbl.Select(100)
	if top.N != 7 || top.F != 80e6 {
		t.Errorf("Select(100 W) = %v", top)
	}
	// Budget below everything: the idle floor is returned even though
	// it exceeds the (absurd) budget.
	bottom := tbl.Select(0)
	if bottom.N != 0 {
		t.Errorf("Select(0) = %v, want the idle point", bottom)
	}
	// Mid-range budget: chosen point fits, next point would not.
	pts := tbl.Points()
	for i := 1; i < len(pts); i++ {
		budget := (pts[i-1].Power + pts[i].Power) / 2
		got := tbl.Select(budget)
		if got.Power > budget {
			t.Errorf("Select(%g) = %v exceeds budget", budget, got)
		}
		if got != pts[i-1] {
			t.Errorf("Select(%g) = %v, want %v", budget, got, pts[i-1])
		}
	}
}

func TestSelectMonotoneProperty(t *testing.T) {
	tbl, err := BuildTable(pamaConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	f := func(b1, b2 float64) bool {
		b1 = math.Abs(math.Mod(b1, 6))
		b2 = math.Abs(math.Mod(b2, 6))
		if math.IsNaN(b1) || math.IsNaN(b2) {
			return true
		}
		lo, hi := math.Min(b1, b2), math.Max(b1, b2)
		return tbl.Select(lo).Perf <= tbl.Select(hi).Perf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwitchCost(t *testing.T) {
	cfg := pamaConfig(t)
	cfg.OverheadProc = 0.1
	cfg.OverheadFreq = 0.2
	tbl, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := OperatingPoint{N: 2, F: 20e6}
	b := OperatingPoint{N: 3, F: 20e6}
	c := OperatingPoint{N: 3, F: 40e6}
	d := OperatingPoint{N: 2, F: 40e6}
	if got := tbl.SwitchCost(a, b); !approx(got, 0.1, 1e-12) {
		t.Errorf("proc-only switch = %g", got)
	}
	if got := tbl.SwitchCost(b, c); !approx(got, 0.2, 1e-12) {
		t.Errorf("freq-only switch = %g", got)
	}
	if got := tbl.SwitchCost(a, c); !approx(got, 0.3, 1e-12) {
		t.Errorf("both switch = %g", got)
	}
	if got := tbl.SwitchCost(a, d); !approx(got, 0.2, 1e-12) {
		t.Errorf("freq change same n = %g", got)
	}
	if got := tbl.SwitchCost(a, a); got != 0 {
		t.Errorf("no-op switch = %g", got)
	}
}

func TestShouldSwitch(t *testing.T) {
	cfg := pamaConfig(t)
	cfg.OverheadProc = 1e9 // prohibitive
	tbl, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := tbl.Points()
	low, high := pts[1], pts[len(pts)-1]
	// Upgrades must not pay a prohibitive overhead.
	if tbl.ShouldSwitch(low, high, 4.8) {
		t.Error("prohibitive overhead must suppress upgrades")
	}
	// Downgrades always happen (budget adherence).
	if !tbl.ShouldSwitch(high, low, 4.8) {
		t.Error("downgrades must always be taken")
	}
	// Zero overhead: upgrade taken.
	cfg.OverheadProc = 0
	tbl2, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl2.ShouldSwitch(low, high, 4.8) {
		t.Error("free upgrade must be taken")
	}
	if tbl2.ShouldSwitch(low, low, 4.8) {
		t.Error("identical points never switch")
	}
}

func TestPlanFollowsAllocation(t *testing.T) {
	tbl, err := BuildTable(pamaConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	allocation := []float64{2.36, 2.36, 1.18, 0.4, 0.05, 2.36}
	steps := tbl.Plan(allocation, 4.8)
	if len(steps) != len(allocation) {
		t.Fatalf("plan length %d", len(steps))
	}
	for i, s := range steps {
		if s.Slot != i {
			t.Errorf("step %d has slot %d", i, s.Slot)
		}
		if s.Point.Power > allocation[i] && s.Point.N != 0 {
			// Only the idle floor may exceed the budget.
			if s.Point != tbl.Points()[0] {
				t.Errorf("slot %d draws %g W over budget %g", i, s.Point.Power, allocation[i])
			}
		}
	}
	// Bigger budget ⇒ at least as much performance.
	if steps[0].Point.Perf < steps[2].Point.Perf {
		t.Error("larger budget should not perform worse")
	}
}

func TestPlanOverheadSuppressesChurn(t *testing.T) {
	cfg := pamaConfig(t)
	cfg.OverheadProc = 1e9
	cfg.OverheadFreq = 1e9
	tbl, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Alternating budget would churn without overhead accounting.
	allocation := []float64{0.5, 3, 0.5, 3, 0.5, 3}
	steps := tbl.Plan(allocation, 4.8)
	for _, s := range steps[1:] {
		if s.Switched && s.Point.Power > steps[s.Slot-1].Point.Power {
			t.Errorf("slot %d upgraded despite prohibitive overhead", s.Slot)
		}
	}
}

func TestOperatingPointString(t *testing.T) {
	p := OperatingPoint{N: 3, F: 40e6, V: 3.3, Power: 0.85, Perf: 1.2e8}
	s := p.String()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "40 MHz") {
		t.Errorf("String = %q", s)
	}
	if got := formatHz(1.5e9); got != "1.5 GHz" {
		t.Errorf("formatHz = %q", got)
	}
	if got := formatHz(2e3); got != "2 kHz" {
		t.Errorf("formatHz = %q", got)
	}
	if got := formatHz(50); got != "50 Hz" {
		t.Errorf("formatHz = %q", got)
	}
}

func TestContinuousRegimes(t *testing.T) {
	// A DVFS-capable curve so all four regimes exist.
	curve, err := power.NewLinearVF(1.0, 2.0, 100e6, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	w, err := perf.NewWorkload(10, 1) // nStar = 2(10−1) = 18
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		System:        power.SystemModel{Proc: power.ProcessorModel{ActiveAtRef: 1, FRef: 400e6, VRef: 2, SleepPower: 0.1, StandbyPower: 0.01}, N: 32},
		Curve:         curve,
		Workload:      w,
		Frequencies:   []float64{100e6, 200e6, 400e6},
		MaxProcessors: 32,
	}
	law := cfg.System.Proc.Law()
	pLo := law.Single(100e6, 1.0) // one proc at (g(vmin), vmin)
	pHi := law.Single(400e6, 2.0)

	// Regime 1: below pLo → one processor at vmin, reduced f.
	pt, err := Continuous(cfg, pLo/2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N != 1 || pt.V != 1.0 || pt.F >= 100e6 {
		t.Errorf("regime 1 point = %v", pt)
	}
	// Regime 2: a few pLo's worth → n grows at (g(vmin), vmin).
	pt, err = Continuous(cfg, 5*pLo)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N != 5 || pt.F != 100e6 || pt.V != 1.0 {
		t.Errorf("regime 2 point = %v", pt)
	}
	// Regime 3: n pinned at 18, voltage rising.
	budget := 18 * (pLo + pHi) / 2
	pt, err = Continuous(cfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N != 18 {
		t.Errorf("regime 3 n = %d, want 18", pt.N)
	}
	if pt.V <= 1.0 || pt.V >= 2.0 {
		t.Errorf("regime 3 voltage = %g, want interior", pt.V)
	}
	// The solved point's power matches the allowance.
	if !approx(pt.Power, budget, budget*1e-6) {
		t.Errorf("regime 3 power = %g, want %g", pt.Power, budget)
	}
	// Regime 4: beyond 18·pHi → n grows at (g(vmax), vmax).
	pt, err = Continuous(cfg, 25*pHi)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N != 25 || pt.F != 400e6 || pt.V != 2.0 {
		t.Errorf("regime 4 point = %v", pt)
	}
}

func TestContinuousClampsToMaxProcessors(t *testing.T) {
	cfg := pamaConfig(t)
	pt, err := Continuous(cfg, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N > cfg.MaxProcessors {
		t.Errorf("Continuous exceeded MaxProcessors: %v", pt)
	}
}

func TestContinuousNegativeAllowance(t *testing.T) {
	if _, err := Continuous(pamaConfig(t), -1); err == nil {
		t.Error("negative allowance must error")
	}
}

func TestContinuousFullySerialStaysAtOne(t *testing.T) {
	cfg := pamaConfig(t)
	w, err := perf.NewWorkload(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = w
	pt, err := Continuous(cfg, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N != 1 {
		t.Errorf("fully serial workload should use one processor: %v", pt)
	}
}

func TestContinuousPerfMonotoneInAllowance(t *testing.T) {
	cfg := pamaConfig(t)
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 5))
		b = math.Abs(math.Mod(b, 5))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		p1, err1 := Continuous(cfg, lo)
		p2, err2 := Continuous(cfg, hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1.Perf <= p2.Perf*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
