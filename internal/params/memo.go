// Table memoization ------------------------------------------------
//
// Algorithm 2's enumerate + Pareto-prune step depends only on the
// hardware block — the board's power model, VF curve, workload and
// switching overheads — and a deployment sees very few distinct
// hardware blocks compared to the number of plans it computes. A
// TableCache keys the built *Table by a canonical hash of the
// configuration (the same canonicalization style as the plan-cache
// key: a hex SHA-256 over a deterministic encoding), so the
// enumeration runs once per distinct hardware block and every
// subsequent caller walks a shared immutable table.
//
// Tables are safe to share: once built they are never mutated —
// Points is documented read-only, and Plan/Select/SwitchCost only
// read — and BuildTable deep-copies the slices it retains, so a
// caller mutating its Config after the fact cannot corrupt a cached
// table.

package params

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync/atomic"

	"dpm/internal/obs"
	"dpm/internal/plancache"
)

// DefaultTableCacheEntries is the shared table cache's default
// capacity. Distinct hardware blocks are rare (a fleet typically
// ships a handful of board revisions), so a small cache holds the
// entire working set.
const DefaultTableCacheEntries = 128

// CacheKey returns the canonical cache key for a configuration: the
// hex SHA-256 of a deterministic encoding of every field Algorithm 2
// reads, including the dynamic type and parameters of the VF curve.
// Two configs that build identical tables because their fields are
// equal hash identically; the key is computed from the values at call
// time, so later mutation of the caller's Config cannot alias a
// cached entry.
func CacheKey(cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "sys=%+v|curve=%T:%+v|work=%+v|freqs=%v|n=[%d,%d]|oh=(%g,%g)|pv=%g|sleep=%t",
		cfg.System, cfg.Curve, cfg.Curve, cfg.Workload, cfg.Frequencies,
		cfg.MinProcessors, cfg.MaxProcessors, cfg.OverheadProc, cfg.OverheadFreq,
		cfg.PerfValue, cfg.IdleSleep)
	return hex.EncodeToString(h.Sum(nil))
}

// TableCache memoizes BuildTable by canonical configuration key. All
// methods are safe for concurrent use; cached tables are shared (not
// cloned) because a built Table is immutable.
type TableCache struct {
	cache *plancache.Sharded[*Table]
}

// NewTableCache returns a cache holding at most capacity tables.
func NewTableCache(capacity int) (*TableCache, error) {
	// Tables are immutable once built, so no clone function is needed.
	c, err := plancache.NewSharded[*Table](capacity, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("params: %w", err)
	}
	return &TableCache{cache: c}, nil
}

// Get returns the memoized table for cfg, building and caching it on
// the first request. Concurrent first requests for the same
// configuration are coalesced onto one BuildTable run. A
// configuration BuildTable rejects is not cached; the error is
// returned as-is.
func (tc *TableCache) Get(cfg Config) (*Table, error) {
	tbl, _, err := tc.GetContext(context.Background(), cfg)
	return tbl, err
}

// GetContext is Get with telemetry threaded through ctx: the lookup
// is wrapped in a "params.table" span annotated "memo"="hit"|"miss",
// and a miss's enumerate + Pareto-prune step runs inside a
// "params.BuildTable" span. The returned bool reports a memo hit.
// Without a Recorder on ctx the spans are the nil fast path.
func (tc *TableCache) GetContext(ctx context.Context, cfg Config) (*Table, bool, error) {
	ctx, span := obs.StartSpan(ctx, "params.table")
	defer span.End()
	tbl, hit, err := tc.cache.GetOrCompute(ctx, CacheKey(cfg), func() (*Table, error) {
		_, bspan := obs.StartSpan(ctx, "params.BuildTable")
		defer bspan.End()
		return BuildTable(cfg)
	})
	if hit {
		span.SetAttr("memo", "hit")
	} else {
		span.SetAttr("memo", "miss")
	}
	return tbl, hit, err
}

// Stats snapshots the cache counters.
func (tc *TableCache) Stats() plancache.Stats { return tc.cache.Stats() }

// ShardStats snapshots the per-shard counters, shard order. The
// service's /metrics exposes them so shard-routing imbalance is
// visible per shard, not just in aggregate.
func (tc *TableCache) ShardStats() []plancache.Stats { return tc.cache.ShardStats() }

// shared is the process-wide table cache behind SharedTable. It is
// swapped atomically so ResizeSharedTableCache is safe against
// concurrent SharedTable calls.
var shared atomic.Pointer[TableCache]

func init() {
	tc, err := NewTableCache(DefaultTableCacheEntries)
	if err != nil {
		panic(err) // unreachable: the default capacity is valid
	}
	shared.Store(tc)
}

// SharedTable returns the process-wide memoized table for cfg. It is
// the drop-in replacement for BuildTable on paths that run per
// request: the enumerate + Pareto-prune step runs once per distinct
// hardware block for the lifetime of the process (bounded by the
// shared cache's capacity).
func SharedTable(cfg Config) (*Table, error) {
	return shared.Load().Get(cfg)
}

// SharedTableContext is SharedTable with telemetry threaded through
// ctx; the returned bool reports a memo hit. See
// TableCache.GetContext.
func SharedTableContext(ctx context.Context, cfg Config) (*Table, bool, error) {
	return shared.Load().GetContext(ctx, cfg)
}

// SharedTableStats snapshots the process-wide table cache counters.
func SharedTableStats() plancache.Stats { return shared.Load().Stats() }

// SharedTableShardStats snapshots the process-wide table cache's
// per-shard counters.
func SharedTableShardStats() []plancache.Stats { return shared.Load().ShardStats() }

// ResizeSharedTableCache replaces the process-wide table cache with a
// fresh one of the given capacity (entries; minimum 1). Existing
// memoized tables are dropped; in-flight SharedTable calls finish
// against the cache they started with.
func ResizeSharedTableCache(capacity int) error {
	tc, err := NewTableCache(capacity)
	if err != nil {
		return err
	}
	shared.Store(tc)
	return nil
}
