package params

import (
	"math"
	"testing"

	"dpm/internal/power"
)

func uniformFleet(t *testing.T, n int) Fleet {
	t.Helper()
	procs := make([]power.ProcessorModel, n)
	for i := range procs {
		procs[i] = power.M32RD()
	}
	f, err := NewFleet(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(nil, nil); err == nil {
		t.Error("empty fleet must error")
	}
	procs := []power.ProcessorModel{power.M32RD()}
	if _, err := NewFleet(procs, []float64{1, 2}); err == nil {
		t.Error("speed length mismatch must error")
	}
	if _, err := NewFleet(procs, []float64{0}); err == nil {
		t.Error("zero speed must error")
	}
	f, err := NewFleet(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Speed[0] != 1 {
		t.Error("nil speed must default to 1.0")
	}
	if f.N() != 1 {
		t.Errorf("N = %d", f.N())
	}
}

func TestHeteroSelectUniformMatchesVector(t *testing.T) {
	// A uniform fleet must land on the same performance as
	// VectorSelect for the same budget.
	cfg := pamaConfig(t)
	fleet := uniformFleet(t, cfg.MaxProcessors)
	for _, budget := range []float64{0.3, 1.0, 2.0, 3.5} {
		h, err := HeteroSelect(cfg, fleet, budget)
		if err != nil {
			t.Fatal(err)
		}
		v, err := VectorSelect(cfg, budget)
		if err != nil {
			t.Fatal(err)
		}
		// HeteroSelect counts all-fleet standby power, VectorSelect
		// counts the board's; compare performance only.
		if math.Abs(h.Perf-v.Perf) > 0.05*math.Max(h.Perf, 1) {
			t.Errorf("budget %g: hetero perf %g vs vector %g", budget, h.Perf, v.Perf)
		}
	}
}

func TestHeteroSelectRespectsBudget(t *testing.T) {
	cfg := pamaConfig(t)
	fleet := uniformFleet(t, 7)
	for _, budget := range []float64{0.2, 0.8, 2.0, 5.0} {
		h, err := HeteroSelect(cfg, fleet, budget)
		if err != nil {
			t.Fatal(err)
		}
		if h.Power > budget && h.Active() > 0 {
			t.Errorf("budget %g: draw %g with %d active", budget, h.Power, h.Active())
		}
	}
}

func TestHeteroSelectPrefersFastCheapProcessors(t *testing.T) {
	cfg := pamaConfig(t)
	// Processor 0: twice the speed at the same power. Processor 1:
	// reference. Processor 2: half speed at the same power.
	procs := []power.ProcessorModel{power.M32RD(), power.M32RD(), power.M32RD()}
	fleet, err := NewFleet(procs, []float64{2, 1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits roughly one full-speed processor.
	h, err := HeteroSelect(cfg, fleet, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if h.Freqs[0] == 0 {
		t.Errorf("fast processor left idle: %+v", h)
	}
	if h.Freqs[2] > h.Freqs[0] {
		t.Errorf("slow processor clocked above the fast one: %+v", h)
	}
}

func TestHeteroSelectZeroBudgetIdle(t *testing.T) {
	cfg := pamaConfig(t)
	fleet := uniformFleet(t, 4)
	h, err := HeteroSelect(cfg, fleet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Active() != 0 || h.Perf != 0 {
		t.Errorf("zero budget must idle: %+v", h)
	}
}

func TestHeteroSelectMonotonePerf(t *testing.T) {
	cfg := pamaConfig(t)
	fleet, err := NewFleet(
		[]power.ProcessorModel{power.M32RD(), power.M32RD(), power.M32RD(), power.M32RD()},
		[]float64{1.5, 1.2, 1.0, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, budget := range []float64{0, 0.25, 0.5, 1, 1.5, 2, 3} {
		h, err := HeteroSelect(cfg, fleet, budget)
		if err != nil {
			t.Fatal(err)
		}
		if h.Perf < prev-1e-9 {
			t.Errorf("perf not monotone at budget %g: %g after %g", budget, h.Perf, prev)
		}
		prev = h.Perf
	}
}

func TestHeteroSelectValidatesConfig(t *testing.T) {
	cfg := pamaConfig(t)
	cfg.Frequencies = nil
	if _, err := HeteroSelect(cfg, uniformFleet(t, 2), 1); err == nil {
		t.Error("invalid config must error")
	}
}
