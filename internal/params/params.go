// Package params implements the paper's system-parameter computation
// (§4.2): given a power allocation, choose the number of active
// processors n and the common clock frequency f (the voltage follows
// from f via Eq. 11) that maximize performance for that power.
//
// Two forms are provided, matching the paper:
//
//   - Continuous (Eq. 18): the closed-form optimum when n and f vary
//     continuously and switching is free, built on the §4.2 partial-
//     derivative analysis (frequency is the better lever below
//     g(vmin); above it, processors win until n reaches the crossover
//     2(Tt/Ts − 1)).
//   - Discrete (Algorithm 2): enumerate the (n, f) pairs a real board
//     offers, Pareto-prune the power/performance table, then walk the
//     allocation schedule switching points only when the gain beats
//     the switching overhead.
package params

import (
	"fmt"
	"math"
	"sort"

	"dpm/internal/perf"
	"dpm/internal/power"
)

// OperatingPoint is one (n, f) configuration with its derived
// voltage, power draw and performance.
type OperatingPoint struct {
	// N is the number of active processors.
	N int
	// F is the common clock frequency in hertz (0 when N == 0).
	F float64
	// V is the Eq. 11 supply voltage in volts (0 when N == 0).
	V float64
	// Power is the system draw at this point in watts (including
	// stand-by power of inactive processors).
	Power float64
	// Perf is the Eq. 3 performance at this point.
	Perf float64
}

// String renders the point compactly.
func (p OperatingPoint) String() string {
	return fmt.Sprintf("(n=%d, f=%s, v=%.2f V, %.3f W, perf %.3g)",
		p.N, formatHz(p.F), p.V, p.Power, p.Perf)
}

func formatHz(f float64) string {
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%g GHz", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%g MHz", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%g kHz", f/1e3)
	default:
		return fmt.Sprintf("%g Hz", f)
	}
}

// Config describes the hardware and workload the selector optimizes
// for.
type Config struct {
	// System is the board's power model.
	System power.SystemModel
	// Curve is the frequency/voltage relationship g(v).
	Curve power.VFCurve
	// Workload is the Amdahl profile of the application.
	Workload perf.Workload
	// Frequencies are the selectable clock frequencies in hertz
	// (the paper's board offers 20, 40 and 80 MHz). Zero entries
	// are rejected; "off" is expressed through MinProcessors = 0.
	Frequencies []float64
	// MaxProcessors is the largest usable processor count (the
	// paper uses 7 of 8; one chip is the controller).
	MaxProcessors int
	// MinProcessors is the smallest allowed count; 0 permits an
	// all-idle point with zero performance.
	MinProcessors int
	// OverheadProc is OHn: the energy cost in joules of changing
	// the active-processor count by any amount at a boundary.
	OverheadProc float64
	// OverheadFreq is OHf: the energy cost in joules of a frequency
	// change (the paper's FPGA-mediated change costs more than a
	// mode change).
	OverheadFreq float64
	// PerfValue converts performance gain × τ into joules for the
	// Algorithm 2 line 14–22 switching test. Zero means 1.
	PerfValue float64
	// IdleSleep parks inactive processors in sleep mode (DRAM
	// retained, 393 mW on the M32R/D) instead of stand-by (6.6 mW).
	// The paper's simulation does not use sleep; the machine model
	// pays a DRAM-reload penalty when waking from stand-by, which is
	// the tradeoff this knob exposes.
	IdleSleep bool
}

// idleMode returns the mode inactive processors park in.
func (c Config) idleMode() power.Mode {
	if c.IdleSleep {
		return power.ModeSleep
	}
	return power.ModeStandby
}

func (c Config) validate() error {
	if c.Curve == nil {
		return fmt.Errorf("params: nil VF curve")
	}
	if len(c.Frequencies) == 0 {
		return fmt.Errorf("params: no selectable frequencies")
	}
	for _, f := range c.Frequencies {
		if f <= 0 {
			return fmt.Errorf("params: non-positive frequency %g", f)
		}
	}
	if c.MaxProcessors < 1 || c.MaxProcessors > c.System.N {
		return fmt.Errorf("params: MaxProcessors %d outside [1, %d]", c.MaxProcessors, c.System.N)
	}
	if c.MinProcessors < 0 || c.MinProcessors > c.MaxProcessors {
		return fmt.Errorf("params: MinProcessors %d outside [0, %d]", c.MinProcessors, c.MaxProcessors)
	}
	if c.OverheadProc < 0 || c.OverheadFreq < 0 {
		return fmt.Errorf("params: negative overhead (%g, %g)", c.OverheadProc, c.OverheadFreq)
	}
	return nil
}

func (c Config) perfValue() float64 {
	if c.PerfValue == 0 {
		return 1
	}
	return c.PerfValue
}

// Table is the Pareto frontier of operating points, sorted by
// ascending power (and therefore ascending performance).
//
// Alongside the point structs the table carries columnar copies of
// the power and performance coordinates (powers[i] == points[i].Power,
// perfs[i] == points[i].Perf, both strictly increasing). The per-slot
// selection and switching tests in Select/SelectCovering/Plan walk
// these contiguous []float64 columns — a branch-light binary search
// with no interface calls or 40-byte struct loads — and only touch
// the full OperatingPoint once a slot's index is settled. The columns
// are built once in BuildTable and immutable afterwards, so they are
// shared across every caller of a memoized table (see TableCache).
type Table struct {
	points []OperatingPoint
	powers []float64
	perfs  []float64
	cfg    Config
}

// BuildTable enumerates every (n, f) pair (Algorithm 2 lines 1–2) and
// removes dominated points — pairs that cost at least as much power
// for no more performance (lines 3–5).
func BuildTable(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var pts []OperatingPoint
	if cfg.MinProcessors == 0 {
		pts = append(pts, OperatingPoint{
			N:     0,
			Power: cfg.System.HomogeneousPowerIdle(0, 0, 0, cfg.idleMode()),
			Perf:  0,
		})
	}
	lo := cfg.MinProcessors
	if lo == 0 {
		lo = 1
	}
	for n := lo; n <= cfg.MaxProcessors; n++ {
		for _, f := range cfg.Frequencies {
			v, err := cfg.Curve.VoltageFor(f)
			if err != nil {
				// Frequency unreachable at any legal voltage: skip.
				continue
			}
			gv := cfg.Curve.MaxFrequency(v)
			pts = append(pts, OperatingPoint{
				N:     n,
				F:     f,
				V:     v,
				Power: cfg.System.HomogeneousPowerIdle(n, f, v, cfg.idleMode()),
				Perf:  cfg.Workload.Performance(n, f, gv),
			})
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("params: no reachable operating points")
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Power != pts[j].Power {
			return pts[i].Power < pts[j].Power
		}
		return pts[i].Perf > pts[j].Perf
	})
	// Keep only points with strictly increasing performance.
	frontier := pts[:1]
	for _, p := range pts[1:] {
		if p.Perf > frontier[len(frontier)-1].Perf {
			frontier = append(frontier, p)
		}
	}
	// The table may outlive (and be shared across) callers — see
	// TableCache — so deep-copy the one slice the retained cfg holds:
	// a caller mutating its Frequencies afterwards must not reach into
	// the built table.
	cfg.Frequencies = append([]float64(nil), cfg.Frequencies...)
	t := &Table{
		points: append([]OperatingPoint(nil), frontier...),
		powers: make([]float64, len(frontier)),
		perfs:  make([]float64, len(frontier)),
		cfg:    cfg,
	}
	for i, p := range t.points {
		t.powers[i] = p.Power
		t.perfs[i] = p.Perf
	}
	return t, nil
}

// Points returns the frontier, cheapest first. The slice is shared;
// callers must not modify it.
func (t *Table) Points() []OperatingPoint { return t.points }

// Len returns the number of frontier points.
func (t *Table) Len() int { return len(t.points) }

// selectIdx returns the frontier index of the last affordable point:
// the predicate and bisection are exactly sort.Search's over
// "powers[i] > budget", inlined onto the contiguous powers column so
// the per-slot walk closes over no function values and loads 8 bytes
// per probe instead of a 48-byte struct.
func (t *Table) selectIdx(budget float64) int {
	lo, hi := 0, len(t.powers)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.powers[mid] > budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// coveringIdx is selectIdx's counterpart for SelectCovering: the
// first point whose power is at least demand (sort.Search over
// "powers[i] >= demand"), clamped to the board's maximum point.
func (t *Table) coveringIdx(demand float64) int {
	lo, hi := 0, len(t.powers)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.powers[mid] >= demand {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(t.powers) {
		return len(t.powers) - 1
	}
	return lo
}

// Select returns the best-performing point whose power does not
// exceed budget (Algorithm 2 lines 6–9). If even the cheapest point
// exceeds the budget, that cheapest point is returned — the system
// cannot draw less than its floor.
func (t *Table) Select(budget float64) OperatingPoint {
	return t.points[t.selectIdx(budget)]
}

// SelectCovering returns the cheapest point whose power is at least
// demand, or the board's maximum point when nothing covers it. The
// baseline uses it to meet demand as it arrives; the manager uses it
// when the battery is about to overflow and rounding the draw *up*
// turns otherwise-wasted charge into work.
func (t *Table) SelectCovering(demand float64) OperatingPoint {
	return t.points[t.coveringIdx(demand)]
}

// SwitchCost returns the energy overhead in joules of moving between
// two operating points: OHn if the processor count changes, plus OHf
// if the frequency changes.
func (t *Table) SwitchCost(from, to OperatingPoint) float64 {
	cost := 0.0
	if from.N != to.N {
		cost += t.cfg.OverheadProc
	}
	if from.F != to.F && from.N != 0 && to.N != 0 {
		cost += t.cfg.OverheadFreq
	}
	return cost
}

// ShouldSwitch implements Algorithm 2's lines 14–22 test: switch to
// the candidate only if the performance gained over one slot of
// length tau, valued at PerfValue joules per perf·second, exceeds the
// switching overhead. Moves to a cheaper point when the budget drops
// are always taken: staying would overdraw the allocation.
func (t *Table) ShouldSwitch(from, to OperatingPoint, tau float64) bool {
	if from == to {
		return false
	}
	if to.Power < from.Power {
		return true
	}
	gain := (to.Perf - from.Perf) * tau * t.cfg.perfValue()
	return gain > t.SwitchCost(from, to)
}

// PlanStep is one slot of a parameter plan.
type PlanStep struct {
	// Slot is the slot index within the period.
	Slot int
	// Allocated is the slot's power allocation in watts.
	Allocated float64
	// Point is the chosen operating point.
	Point OperatingPoint
	// Switched reports whether the point changed at this boundary.
	Switched bool
	// OverheadEnergy is the switching energy charged at this
	// boundary in joules.
	OverheadEnergy float64
}

// shouldSwitchIdx is ShouldSwitch on frontier indices. Frontier
// performance is strictly increasing, so distinct indices are
// distinct points and index equality is exactly the struct equality
// the point-based test starts with; the budget-drop and gain tests
// read the columnar powers/perfs directly and only materialize the
// points for SwitchCost once a switch is actually being priced.
func (t *Table) shouldSwitchIdx(from, to int, tau float64) bool {
	if from == to {
		return false
	}
	if t.powers[to] < t.powers[from] {
		return true
	}
	gain := (t.perfs[to] - t.perfs[from]) * tau * t.cfg.perfValue()
	return gain > t.SwitchCost(t.points[from], t.points[to])
}

// Plan walks a power-allocation grid and picks an operating point
// per slot, applying the overhead-aware switching rule. The returned
// steps include the energy actually drawn, which the dpm package's
// Algorithm 3 uses to redistribute the discretization error.
func (t *Table) Plan(allocation []float64, tau float64) []PlanStep {
	return t.PlanInto(make([]PlanStep, len(allocation)), allocation, tau)
}

// PlanInto is Plan writing into dst, which must have len(allocation)
// entries; it returns dst. The walk is columnar: each slot's
// selection binary-searches the contiguous powers column and the
// switching test compares frontier indices, so the per-slot loop
// carries one integer of state and touches the 48-byte point structs
// only when writing the chosen step.
func (t *Table) PlanInto(dst []PlanStep, allocation []float64, tau float64) []PlanStep {
	current := 0
	for i, budget := range allocation {
		candidate := t.selectIdx(budget)
		switched := false
		overhead := 0.0
		if i == 0 {
			current = candidate
		} else if t.shouldSwitchIdx(current, candidate, tau) {
			overhead = t.SwitchCost(t.points[current], t.points[candidate])
			current = candidate
			switched = true
		}
		dst[i] = PlanStep{
			Slot:           i,
			Allocated:      budget,
			Point:          t.points[current],
			Switched:       switched,
			OverheadEnergy: overhead,
		}
	}
	return dst
}

// Continuous computes the Eq. 18 closed-form parameters for a given
// power allowance, assuming continuous n and f and no switching
// overhead. It returns the (real-valued before flooring) processor
// count and the frequency/voltage pair.
//
// The four regimes of Eq. 18, in order of growing power:
//
//  1. below the single-processor draw at (g(vmin), vmin): one
//     processor, frequency proportional to power, voltage at vmin;
//  2. add processors at fixed (g(vmin), vmin) until the crossover
//     n* = 2(Tt/Ts − 1);
//  3. hold n = n* and raise voltage (and with it f = g(v));
//  4. at (g(vmax), vmax), grow the processor count again.
//
// The paper's printed fourth branch reuses g(vmin)·v²min in the
// divisor; we use g(vmax)·v²max, which is the dimensionally
// consistent continuation (each processor now costs the vmax-point
// power). This substitution is recorded in DESIGN.md.
func Continuous(cfg Config, allowance float64) (OperatingPoint, error) {
	if err := cfg.validate(); err != nil {
		return OperatingPoint{}, err
	}
	if allowance < 0 {
		return OperatingPoint{}, fmt.Errorf("params: negative power allowance %g", allowance)
	}
	law := cfg.System.Proc.Law()
	c2 := law.C2
	vmin, vmax := cfg.Curve.VMin(), cfg.Curve.VMax()
	fLo := cfg.Curve.MaxFrequency(vmin) // g(vmin)
	fHi := cfg.Curve.MaxFrequency(vmax) // g(vmax)
	pLo := c2 * fLo * vmin * vmin       // one processor at (g(vmin), vmin)
	pHi := c2 * fHi * vmax * vmax       // one processor at (g(vmax), vmax)

	w := cfg.Workload
	var nStar float64
	if w.SerialTime == 0 {
		nStar = math.Inf(1)
	} else {
		nStar = 2 * (w.TotalTime/w.SerialTime - 1)
	}
	if nStar < 1 {
		nStar = 1
	}

	maxN := cfg.MaxProcessors
	if w.ParallelTime() == 0 {
		// §4.2: with no parallel work there is never a reason to add
		// processors.
		maxN = 1
	}
	clampN := func(n int) int {
		if n < 1 {
			n = 1
		}
		if n > maxN {
			n = maxN
		}
		return n
	}

	mk := func(n int, f, v float64) OperatingPoint {
		gv := cfg.Curve.MaxFrequency(v)
		return OperatingPoint{
			N: n, F: f, V: v,
			Power: law.System(n, f, v),
			Perf:  w.Performance(n, f, gv),
		}
	}

	switch {
	case allowance < pLo:
		// Regime 1: one processor below g(vmin).
		f := allowance / (c2 * vmin * vmin)
		return mk(1, f, vmin), nil
	case allowance < nStar*pLo:
		// Regime 2: processors at (g(vmin), vmin).
		n := clampN(int(allowance / pLo))
		return mk(n, fLo, vmin), nil
	case allowance < nStar*pHi && !math.IsInf(nStar, 1):
		// Regime 3: n pinned at the crossover; solve
		// n·c2·g(v)·v² = allowance for v by bisection (monotone).
		n := clampN(int(nStar))
		target := allowance / float64(n)
		lo, hi := vmin, vmax
		for i := 0; i < 64 && hi-lo > 1e-12; i++ {
			mid := (lo + hi) / 2
			if c2*cfg.Curve.MaxFrequency(mid)*mid*mid < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		v := (lo + hi) / 2
		return mk(n, cfg.Curve.MaxFrequency(v), v), nil
	default:
		// Regime 4: everything at (g(vmax), vmax); grow n.
		n := clampN(int(allowance / pHi))
		return mk(n, fHi, vmax), nil
	}
}
