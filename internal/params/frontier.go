package params

import "context"

// Frontier is the read-only columnar view of a table's Pareto
// frontier: Powers and Perfs are the strictly increasing coordinate
// columns (Powers[i] == Points[i].Power, Perfs[i] == Points[i].Perf)
// and Points the full operating points, cheapest first. The slices
// are shared with the table — never copied — so every consumer of a
// memoized table walks the same contiguous memory; callers must not
// modify them.
//
// Sharing is safe because a built Table is immutable: BuildTable
// fills the columns once, deep-copies everything it retains from the
// caller's Config, and no Table method writes after construction.
// The view therefore stays valid for the life of the process
// regardless of what the caller does with its Config afterwards.
type Frontier struct {
	Powers []float64
	Perfs  []float64
	Points []OperatingPoint
}

// Len returns the number of frontier points.
func (f Frontier) Len() int { return len(f.Points) }

// Frontier returns the table's shared columnar frontier view.
func (t *Table) Frontier() Frontier {
	return Frontier{Powers: t.powers, Perfs: t.perfs, Points: t.points}
}

// SharedFrontier returns the process-wide memoized columnar frontier
// for cfg: requests that differ only in their slot schedules — the
// common fleet shape, where thousands of devices share a board
// revision but each has its own charging forecast — hit the same
// cached table and therefore the same frontier columns, so the
// enumerate + Pareto-prune step runs once per distinct hardware
// block. The returned bool reports a memo hit. See SharedTableContext
// for the telemetry contract.
func SharedFrontier(ctx context.Context, cfg Config) (Frontier, bool, error) {
	tbl, hit, err := SharedTableContext(ctx, cfg)
	if err != nil {
		return Frontier{}, hit, err
	}
	return tbl.Frontier(), hit, nil
}
