package params

import (
	"fmt"
	"sort"

	"dpm/internal/perf"
	"dpm/internal/power"
)

// This file implements the paper's final §6 extension: a
// heterogeneous system "in which each component has different
// processing characteristics". Each processor gets its own power
// model and a speed factor (work per cycle relative to the reference
// processor); the selector builds per-processor configurations under
// a power budget.

// Fleet describes a heterogeneous processor pool.
type Fleet struct {
	// Procs holds each processor's power model.
	Procs []power.ProcessorModel
	// Speed holds each processor's relative work rate: effective
	// frequency = Speed[i] · f. A zero-length slice means all 1.0.
	Speed []float64
}

// NewFleet validates and returns a fleet. Speed may be nil (all 1.0)
// or must match Procs in length with positive entries.
func NewFleet(procs []power.ProcessorModel, speed []float64) (Fleet, error) {
	if len(procs) == 0 {
		return Fleet{}, fmt.Errorf("params: empty fleet")
	}
	if speed == nil {
		speed = make([]float64, len(procs))
		for i := range speed {
			speed[i] = 1
		}
	}
	if len(speed) != len(procs) {
		return Fleet{}, fmt.Errorf("params: %d speeds for %d processors", len(speed), len(procs))
	}
	for i, s := range speed {
		if s <= 0 {
			return Fleet{}, fmt.Errorf("params: non-positive speed %g at %d", s, i)
		}
	}
	return Fleet{Procs: procs, Speed: speed}, nil
}

// N returns the fleet size.
func (f Fleet) N() int { return len(f.Procs) }

// HeteroAssignment is a per-processor configuration for a fleet.
type HeteroAssignment struct {
	// Freqs[i] is processor i's clock (0 = stand-by).
	Freqs []float64
	// Volts[i] is the matching Eq. 11 voltage.
	Volts []float64
	// Power is the fleet draw in watts, including stand-by power.
	Power float64
	// Perf is the generalized Eq. 3 performance with per-processor
	// effective frequencies Speed[i]·Freqs[i].
	Perf float64
}

// Active returns the number of running processors.
func (a HeteroAssignment) Active() int {
	n := 0
	for _, f := range a.Freqs {
		if f > 0 {
			n++
		}
	}
	return n
}

// heteroPerformance evaluates the mixed-speed performance model:
// serial work on the fastest effective clock, parallel work split by
// effective throughput.
func heteroPerformance(w perf.Workload, eff []float64) float64 {
	maxE, sumE := 0.0, 0.0
	for _, e := range eff {
		if e > maxE {
			maxE = e
		}
		sumE += e
	}
	if sumE == 0 {
		return 0
	}
	c1 := w.C1
	if c1 == 0 {
		c1 = 1
	}
	return c1 / (w.SerialTime/maxE + w.ParallelTime()/sumE)
}

// HeteroSelect greedily builds the fleet configuration with the best
// performance within the power budget, the heterogeneous counterpart
// of VectorSelect: at each step it applies whichever single upgrade —
// waking an idle processor at the lowest ladder step, or raising a
// running one a step — gains the most performance per added watt.
// Faster-per-watt processors therefore wake first, which is the
// §6 behavior the paper anticipates.
func HeteroSelect(cfg Config, fleet Fleet, budget float64) (HeteroAssignment, error) {
	if err := cfg.validate(); err != nil {
		return HeteroAssignment{}, err
	}
	freqs := append([]float64(nil), cfg.Frequencies...)
	sort.Float64s(freqs)
	volts := make([]float64, len(freqs))
	for i, f := range freqs {
		v, err := cfg.Curve.VoltageFor(f)
		if err != nil {
			return HeteroAssignment{}, fmt.Errorf("params: frequency %g Hz unreachable: %w", f, err)
		}
		volts[i] = v
	}

	n := fleet.N()
	steps := make([]int, n) // ladder index per processor; -1 = standby
	for i := range steps {
		steps[i] = -1
	}
	procPower := func(i, step int) float64 {
		if step < 0 {
			return fleet.Procs[i].StandbyPower
		}
		return fleet.Procs[i].Active(freqs[step], volts[step])
	}
	totalPower := func() float64 {
		p := cfg.System.BoardOverhead
		for i := range steps {
			p += procPower(i, steps[i])
		}
		return p
	}
	effective := func() []float64 {
		out := make([]float64, 0, n)
		for i, s := range steps {
			if s >= 0 {
				out = append(out, fleet.Speed[i]*freqs[s])
			}
		}
		return out
	}

	for {
		curPerf := heteroPerformance(cfg.Workload, effective())
		curPow := totalPower()
		bestGain := 0.0
		bestProc := -1
		for i := range steps {
			next := steps[i] + 1
			if next >= len(freqs) {
				continue
			}
			addPow := procPower(i, next) - procPower(i, steps[i])
			if addPow <= 0 || curPow+addPow > budget {
				continue
			}
			old := steps[i]
			steps[i] = next
			gain := heteroPerformance(cfg.Workload, effective()) - curPerf
			steps[i] = old
			if g := gain / addPow; g > bestGain {
				bestGain, bestProc = g, i
			}
		}
		if bestProc < 0 {
			break
		}
		steps[bestProc]++
	}

	out := HeteroAssignment{
		Freqs: make([]float64, n),
		Volts: make([]float64, n),
	}
	for i, s := range steps {
		if s >= 0 {
			out.Freqs[i] = freqs[s]
			out.Volts[i] = volts[s]
		}
	}
	out.Power = totalPower()
	out.Perf = heteroPerformance(cfg.Workload, effective())
	return out, nil
}
