package params_test

import (
	"fmt"

	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
)

// Build the paper's operating-point table and select points for a few
// power budgets.
func ExampleTable_Select() {
	workload, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		panic(err)
	}
	table, err := params.BuildTable(params.Config{
		System:        power.PAMA(),
		Curve:         power.NewFixedVoltage(3.3, 80e6),
		Workload:      workload,
		Frequencies:   []float64{20e6, 40e6, 80e6},
		MaxProcessors: 7,
	})
	if err != nil {
		panic(err)
	}
	for _, budget := range []float64{0.5, 1.5, 4.0} {
		pt := table.Select(budget)
		fmt.Printf("%.1f W -> n=%d at %.0f MHz (draw %.2f W)\n",
			budget, pt.N, pt.F/1e6, pt.Power)
	}
	// Output:
	// 0.5 W -> n=3 at 20 MHz (draw 0.44 W)
	// 1.5 W -> n=2 at 80 MHz (draw 1.13 W)
	// 4.0 W -> n=7 at 80 MHz (draw 3.83 W)
}

// Eq. 18's continuous optimum with real voltage scaling: the
// allowance decides whether frequency, processors, or voltage is the
// lever.
func ExampleContinuous() {
	curve, err := power.NewLinearVF(1.0, 2.0, 100e6, 400e6)
	if err != nil {
		panic(err)
	}
	workload, err := perf.NewWorkload(10, 1)
	if err != nil {
		panic(err)
	}
	cfg := params.Config{
		System: power.SystemModel{
			Proc: power.ProcessorModel{ActiveAtRef: 1, FRef: 400e6, VRef: 2, StandbyPower: 0.01},
			N:    32,
		},
		Curve:         curve,
		Workload:      workload,
		Frequencies:   []float64{100e6, 400e6},
		MaxProcessors: 32,
	}
	pt, err := params.Continuous(cfg, 0.3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("0.3 W -> n=%d at %.0f MHz, %.2f V\n", pt.N, pt.F/1e6, pt.V)
	// Output:
	// 0.3 W -> n=4 at 100 MHz, 1.00 V
}
