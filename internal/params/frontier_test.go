package params

import (
	"context"
	"testing"
)

// TestFrontierColumns: the columnar view mirrors the point slice
// exactly and shares the table's backing arrays rather than copying.
func TestFrontierColumns(t *testing.T) {
	tbl, err := BuildTable(pamaConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	f := tbl.Frontier()
	if f.Len() != len(tbl.Points()) {
		t.Fatalf("frontier has %d points, table %d", f.Len(), len(tbl.Points()))
	}
	if len(f.Powers) != f.Len() || len(f.Perfs) != f.Len() {
		t.Fatalf("column lengths diverge: %d powers, %d perfs, %d points",
			len(f.Powers), len(f.Perfs), f.Len())
	}
	for i, p := range f.Points {
		if f.Powers[i] != p.Power || f.Perfs[i] != p.Perf {
			t.Errorf("column %d: (%g, %g) != point (%g, %g)",
				i, f.Powers[i], f.Perfs[i], p.Power, p.Perf)
		}
	}
	// Shared memory, not a copy: the view's columns alias the ones a
	// second call returns.
	g := tbl.Frontier()
	if &f.Powers[0] != &g.Powers[0] || &f.Perfs[0] != &g.Perfs[0] {
		t.Error("Frontier copied its columns; the view must alias the table's")
	}
}

// TestSharedFrontier: two requests with the same hardware block get
// the same frontier memory — the fleet sharing contract — and the
// second reports a memo hit.
func TestSharedFrontier(t *testing.T) {
	cfg := pamaConfig(t)
	// A distinct processor cap keeps this test's memo key away from
	// other tests sharing the process-wide cache.
	cfg.MaxProcessors = 6

	a, _, err := SharedFrontier(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, hit, err := SharedFrontier(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second SharedFrontier call missed the memo")
	}
	if a.Len() == 0 {
		t.Fatal("empty frontier")
	}
	if &a.Powers[0] != &b.Powers[0] || &a.Points[0] != &b.Points[0] {
		t.Error("same hardware config produced distinct frontier memory")
	}

	bad := cfg
	bad.Frequencies = nil
	if _, _, err := SharedFrontier(context.Background(), bad); err == nil {
		t.Error("invalid config: want error")
	}
}
