package params

import (
	"math"
	"testing"

	"dpm/internal/perf"
)

func TestVectorPerformanceReducesToEq3(t *testing.T) {
	w, err := perf.NewWorkload(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All processors at the same frequency must reproduce Eq. 3.
	for n := 1; n <= 8; n++ {
		freqs := make([]float64, n)
		for i := range freqs {
			freqs[i] = 40e6
		}
		got := VectorPerformance(w, freqs)
		want := w.Performance(n, 40e6, math.Inf(1))
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("n=%d: vector %g vs homogeneous %g", n, got, want)
		}
	}
}

func TestVectorPerformanceEmpty(t *testing.T) {
	w, _ := perf.NewWorkload(10, 1)
	if VectorPerformance(w, nil) != 0 {
		t.Error("no processors means zero performance")
	}
}

func TestVectorPerformancePanicsOnBadFrequency(t *testing.T) {
	w, _ := perf.NewWorkload(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("non-positive frequency must panic")
		}
	}()
	VectorPerformance(w, []float64{40e6, 0})
}

func TestVectorPerformanceMixedBeatsSlowerHomogeneous(t *testing.T) {
	w, _ := perf.NewWorkload(10, 1)
	// {80, 20} must beat {20, 20}: more total speed and a faster
	// serial stage.
	mixed := VectorPerformance(w, []float64{80e6, 20e6})
	slow := VectorPerformance(w, []float64{20e6, 20e6})
	if mixed <= slow {
		t.Errorf("mixed %g should beat slow homogeneous %g", mixed, slow)
	}
}

func TestVectorSelectRespectsBudget(t *testing.T) {
	cfg := pamaConfig(t)
	for _, budget := range []float64{0, 0.1, 0.2, 0.5, 1, 2, 3, 4} {
		pt, err := VectorSelect(cfg, budget)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Power > budget && pt.N() > 0 {
			t.Errorf("budget %g: config %v draws %g W", budget, pt.Freqs, pt.Power)
		}
		if pt.N() > cfg.MaxProcessors {
			t.Errorf("budget %g: %d processors exceed max", budget, pt.N())
		}
		if len(pt.Volts) != len(pt.Freqs) {
			t.Errorf("budget %g: %d volts for %d freqs", budget, len(pt.Volts), len(pt.Freqs))
		}
	}
}

func TestVectorSelectMatchesOrBeatsHomogeneous(t *testing.T) {
	cfg := pamaConfig(t)
	tbl, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{0.3, 0.7, 1.2, 2.0, 3.0, 3.9} {
		hom := tbl.Select(budget)
		vec, err := VectorSelect(cfg, budget)
		if err != nil {
			t.Fatal(err)
		}
		// The vector mode has a strict superset of configurations; a
		// correct greedy should be within a small factor of the
		// homogeneous pick and usually at or above it.
		if vec.Perf < 0.9*hom.Perf {
			t.Errorf("budget %g: vector %g far below homogeneous %g (freqs %v)",
				budget, vec.Perf, hom.Perf, vec.Freqs)
		}
	}
}

func TestVectorSelectZeroBudgetIsIdle(t *testing.T) {
	cfg := pamaConfig(t)
	pt, err := VectorSelect(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N() != 0 || pt.Perf != 0 {
		t.Errorf("zero budget must be idle: %+v", pt)
	}
}

func TestVectorSelectFreqsSortedDescending(t *testing.T) {
	cfg := pamaConfig(t)
	pt, err := VectorSelect(cfg, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pt.Freqs); i++ {
		if pt.Freqs[i] > pt.Freqs[i-1] {
			t.Errorf("freqs not sorted descending: %v", pt.Freqs)
		}
	}
}

func TestVectorSelectValidatesConfig(t *testing.T) {
	cfg := pamaConfig(t)
	cfg.Frequencies = nil
	if _, err := VectorSelect(cfg, 1); err == nil {
		t.Error("invalid config must error")
	}
}
