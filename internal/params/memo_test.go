package params

import (
	"reflect"
	"sync"
	"testing"

	"dpm/internal/power"
)

// TestCacheKeyCanonical checks the canonical key separates every
// field Algorithm 2 reads — including the dynamic VF-curve type —
// and identifies configurations built independently from the same
// values.
func TestCacheKeyCanonical(t *testing.T) {
	base := pamaConfig(t)
	if CacheKey(base) != CacheKey(pamaConfig(t)) {
		t.Fatal("identical configs hashed differently")
	}

	lin, err := power.NewLinearVF(1.0, 3.3, 20e6, 80e6)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(c *Config){
		"frequencies":  func(c *Config) { c.Frequencies = []float64{20e6, 40e6} },
		"maxProc":      func(c *Config) { c.MaxProcessors = 4 },
		"minProc":      func(c *Config) { c.MinProcessors = 1 },
		"overheadProc": func(c *Config) { c.OverheadProc = 0.5 },
		"overheadFreq": func(c *Config) { c.OverheadFreq = 0.5 },
		"perfValue":    func(c *Config) { c.PerfValue = 2 },
		"idleSleep":    func(c *Config) { c.IdleSleep = true },
		"curveParams":  func(c *Config) { c.Curve = power.NewFixedVoltage(5.0, 80e6) },
		"curveType":    func(c *Config) { c.Curve = lin },
	}
	for name, mutate := range mutations {
		cfg := pamaConfig(t)
		mutate(&cfg)
		if CacheKey(cfg) == CacheKey(base) {
			t.Errorf("%s: mutated config collided with base key", name)
		}
	}
}

// TestTableCacheMemoizes checks the second Get for the same hardware
// is a cache hit returning the same shared immutable table, while a
// distinct hardware block builds a distinct table.
func TestTableCacheMemoizes(t *testing.T) {
	tc, err := NewTableCache(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pamaConfig(t)
	first, err := tc.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tc.Get(pamaConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("memoized table rebuilt for an identical config")
	}
	s := tc.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", s)
	}

	other := pamaConfig(t)
	other.MaxProcessors = 3
	third, err := tc.Get(other)
	if err != nil {
		t.Fatal(err)
	}
	if third == first {
		t.Fatal("distinct hardware shared a table")
	}
	if len(third.Points()) == len(first.Points()) &&
		reflect.DeepEqual(third.Points(), first.Points()) {
		t.Fatal("distinct hardware produced identical points")
	}
}

// TestTableCacheMutatedInputIsolation mutates the caller's Config
// (its Frequencies slice) after the table is cached; the cached table
// must keep serving the original enumeration.
func TestTableCacheMutatedInputIsolation(t *testing.T) {
	tc, err := NewTableCache(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pamaConfig(t)
	tbl, err := tc.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]OperatingPoint(nil), tbl.Points()...)

	cfg.Frequencies[0] = 77e6 // caller reuses its slice

	again, err := tc.Get(pamaConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Points(), want) {
		t.Fatal("caller mutation reached the cached table")
	}
}

// TestSharedTableParity checks the memoized path returns exactly the
// table the unmemoized Algorithm 2 builds, for the paper's PAMA
// block and a variant with switching overheads and sleep parking.
func TestSharedTableParity(t *testing.T) {
	overhead := pamaConfig(t)
	overhead.OverheadProc = 0.12
	overhead.OverheadFreq = 0.05
	overhead.PerfValue = 1.5
	overhead.IdleSleep = true
	for name, cfg := range map[string]Config{
		"pama":     pamaConfig(t),
		"overhead": overhead,
	} {
		memo, err := SharedTable(cfg)
		if err != nil {
			t.Fatalf("%s: SharedTable: %v", name, err)
		}
		direct, err := BuildTable(cfg)
		if err != nil {
			t.Fatalf("%s: BuildTable: %v", name, err)
		}
		if !reflect.DeepEqual(memo.Points(), direct.Points()) {
			t.Fatalf("%s: memoized table diverges from direct build:\nmemo   %v\ndirect %v",
				name, memo.Points(), direct.Points())
		}
	}
}

// TestSharedTableRejectsInvalid checks errors pass through uncached:
// the same bad config fails identically twice and inserts nothing.
func TestSharedTableRejectsInvalid(t *testing.T) {
	bad := pamaConfig(t)
	bad.Frequencies = nil
	before := SharedTableStats()
	_, err1 := SharedTable(bad)
	_, err2 := SharedTable(bad)
	if err1 == nil || err2 == nil {
		t.Fatal("invalid config accepted")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("error not stable: %v vs %v", err1, err2)
	}
	after := SharedTableStats()
	if after.Puts != before.Puts {
		t.Fatal("failed build was cached")
	}
}

// TestResizeSharedTableCache swaps the process-wide cache and checks
// the fresh cache starts cold, still serves tables, and rejects a
// non-positive capacity.
func TestResizeSharedTableCache(t *testing.T) {
	if err := ResizeSharedTableCache(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if err := ResizeSharedTableCache(4); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ResizeSharedTableCache(DefaultTableCacheEntries); err != nil {
			t.Fatal(err)
		}
	}()
	if s := SharedTableStats(); s.Hits != 0 || s.Misses != 0 || s.Len != 0 {
		t.Fatalf("resized cache not cold: %+v", s)
	}
	if _, err := SharedTable(pamaConfig(t)); err != nil {
		t.Fatal(err)
	}
	if s := SharedTableStats(); s.Misses != 1 || s.Len != 1 {
		t.Fatalf("stats after one build: %+v", s)
	}
}

// TestTableCacheConcurrent hammers one TableCache with a mix of
// repeated and distinct configurations; run under -race. Every
// returned table must match a direct build for its configuration.
func TestTableCacheConcurrent(t *testing.T) {
	tc, err := NewTableCache(16)
	if err != nil {
		t.Fatal(err)
	}
	configs := make([]Config, 4)
	wants := make([][]OperatingPoint, 4)
	for i := range configs {
		cfg := pamaConfig(t)
		cfg.MaxProcessors = i + 2
		configs[i] = cfg
		direct, err := BuildTable(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = direct.Points()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				idx := (w + i) % len(configs)
				tbl, err := tc.Get(configs[idx])
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if !reflect.DeepEqual(tbl.Points(), wants[idx]) {
					t.Errorf("config %d returned a foreign table", idx)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := tc.Stats()
	if s.Misses != uint64(len(configs)) {
		t.Fatalf("misses = %d, want %d (one build per distinct config): %+v",
			s.Misses, len(configs), s)
	}
}
