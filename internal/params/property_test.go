package params

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpm/internal/perf"
	"dpm/internal/power"
)

// randomConfig builds a valid random Config from a seed.
func randomConfig(seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(14)
	nFreq := 1 + rng.Intn(5)
	freqs := make([]float64, nFreq)
	base := (10 + 90*rng.Float64()) * 1e6
	for i := range freqs {
		freqs[i] = base * float64(i+1)
	}
	total := 1 + 10*rng.Float64()
	serial := total * rng.Float64()
	w, err := perf.NewWorkload(total, serial)
	if err != nil {
		panic(err)
	}
	return Config{
		System: power.SystemModel{
			Proc: power.ProcessorModel{
				ActiveAtRef:  0.1 + rng.Float64(),
				StandbyPower: 0.001 + 0.01*rng.Float64(),
				SleepPower:   0.05,
				FRef:         freqs[nFreq-1],
				VRef:         3.3,
			},
			N: n,
		},
		Curve:         power.NewFixedVoltage(3.3, freqs[nFreq-1]),
		Workload:      w,
		Frequencies:   freqs,
		MaxProcessors: n,
		MinProcessors: 0,
	}
}

// Property: for any valid random configuration, the frontier is
// strictly increasing in both axes and Select never exceeds an
// affordable budget.
func TestFrontierInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := randomConfig(seed)
		tbl, err := BuildTable(cfg)
		if err != nil {
			return false
		}
		pts := tbl.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].Power <= pts[i-1].Power || pts[i].Perf <= pts[i-1].Perf {
				return false
			}
		}
		// Select respects any budget at or above the floor.
		rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
		for trial := 0; trial < 16; trial++ {
			budget := pts[0].Power + rng.Float64()*(pts[len(pts)-1].Power-pts[0].Power+1)
			got := tbl.Select(budget)
			if got.Power > budget+1e-12 {
				return false
			}
			// SelectCovering is the dual: at or above the demand
			// unless the board maxes out.
			cov := tbl.SelectCovering(budget)
			if cov.Power < budget-1e-12 && cov != pts[len(pts)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Select and SelectCovering bracket the budget — covering's
// power is never below select's.
func TestSelectBracketProperty(t *testing.T) {
	f := func(seed int64, budgetRaw float64) bool {
		cfg := randomConfig(seed)
		tbl, err := BuildTable(cfg)
		if err != nil {
			return false
		}
		budget := math.Abs(math.Mod(budgetRaw, 20))
		lo := tbl.Select(budget)
		hi := tbl.SelectCovering(budget)
		return hi.Power >= lo.Power-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: VectorSelect's greedy never produces a worse point than
// running a single processor at the lowest clock when the budget
// allows at least that.
func TestVectorSelectFloorProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := randomConfig(seed)
		tbl, err := BuildTable(cfg)
		if err != nil {
			return false
		}
		pts := tbl.Points()
		// Find the cheapest active point.
		var floor OperatingPoint
		found := false
		for _, p := range pts {
			if p.N > 0 {
				floor = p
				found = true
				break
			}
		}
		if !found {
			return true
		}
		vp, err := VectorSelect(cfg, floor.Power+1e-9)
		if err != nil {
			return false
		}
		return vp.Perf >= floor.Perf*(1-1e-9) || vp.N() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
