// Package units provides the physical-quantity conventions used
// throughout the repository and small helpers for converting and
// formatting them.
//
// All simulation code uses SI base units carried in float64 values:
//
//   - power in watts (W)
//   - energy in joules (J)
//   - voltage in volts (V)
//   - frequency in hertz (Hz)
//   - time in seconds (s)
//
// The constants below exist so call sites can say 80*units.MHz or
// 546*units.MilliWatt instead of spelling out exponents.
package units

import (
	"fmt"
	"math"
)

// Frequency multipliers, in hertz.
const (
	Hz  = 1.0
	KHz = 1e3
	MHz = 1e6
	GHz = 1e9
)

// Power multipliers, in watts.
const (
	MicroWatt = 1e-6
	MilliWatt = 1e-3
	Watt      = 1.0
	KiloWatt  = 1e3
)

// Energy multipliers, in joules.
const (
	MilliJoule = 1e-3
	Joule      = 1.0
	KiloJoule  = 1e3
	// WattHour is the energy delivered by one watt for one hour.
	WattHour = 3600.0
)

// Time multipliers, in seconds.
const (
	Microsecond = 1e-6
	Millisecond = 1e-3
	Second      = 1.0
	Minute      = 60.0
	Hour        = 3600.0
)

// FormatFrequency renders a frequency in hertz with an appropriate
// SI prefix, e.g. FormatFrequency(80e6) == "80 MHz".
func FormatFrequency(hz float64) string {
	return formatSI(hz, "Hz")
}

// FormatPower renders a power in watts with an appropriate SI prefix,
// e.g. FormatPower(0.546) == "546 mW".
func FormatPower(w float64) string {
	return formatSI(w, "W")
}

// FormatEnergy renders an energy in joules with an appropriate SI
// prefix, e.g. FormatEnergy(13.68) == "13.68 J".
func FormatEnergy(j float64) string {
	return formatSI(j, "J")
}

// FormatDuration renders a duration in seconds, e.g. "4.8 s".
func FormatDuration(s float64) string {
	switch {
	case s == 0:
		return "0 s"
	case math.Abs(s) < Millisecond:
		return trim(s/Microsecond) + " µs"
	case math.Abs(s) < Second:
		return trim(s/Millisecond) + " ms"
	default:
		return trim(s) + " s"
	}
}

// formatSI picks among µ, m, (none), k, M, G prefixes.
func formatSI(v float64, unit string) string {
	abs := math.Abs(v)
	switch {
	case v == 0:
		return "0 " + unit
	case abs < 1e-3:
		return trim(v*1e6) + " µ" + unit
	case abs < 1:
		return trim(v*1e3) + " m" + unit
	case abs < 1e3:
		return trim(v) + " " + unit
	case abs < 1e6:
		return trim(v/1e3) + " k" + unit
	case abs < 1e9:
		return trim(v/1e6) + " M" + unit
	default:
		return trim(v/1e9) + " G" + unit
	}
}

// trim formats with up to four significant decimals, dropping
// trailing zeros ("80", "4.8", "13.68").
func trim(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	// Drop trailing zeros and a dangling decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// ApproxEqual reports whether a and b agree within tol. It treats the
// comparison symmetrically and tolerates exact zero operands, which a
// naive relative comparison does not.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if a == 0 || b == 0 {
		return diff < tol
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Clamp limits v to the closed interval [lo, hi]. It panics if
// lo > hi, since that is always a programming error.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("units.Clamp: inverted interval [%g, %g]", lo, hi))
	}
	return math.Min(math.Max(v, lo), hi)
}
