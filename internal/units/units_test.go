package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatFrequency(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 Hz"},
		{20 * MHz, "20 MHz"},
		{80 * MHz, "80 MHz"},
		{1.5 * GHz, "1.5 GHz"},
		{440, "440 Hz"},
		{2.2 * KHz, "2.2 kHz"},
	}
	for _, c := range cases {
		if got := FormatFrequency(c.in); got != c.want {
			t.Errorf("FormatFrequency(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatPower(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 W"},
		{546 * MilliWatt, "546 mW"},
		{6.6 * MilliWatt, "6.6 mW"},
		{2.36, "2.36 W"},
		{1.2 * KiloWatt, "1.2 kW"},
		{5 * MicroWatt, "5 µW"},
	}
	for _, c := range cases {
		if got := FormatPower(c.in); got != c.want {
			t.Errorf("FormatPower(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatEnergy(t *testing.T) {
	if got := FormatEnergy(13.68); got != "13.68 J" {
		t.Errorf("FormatEnergy(13.68) = %q", got)
	}
	if got := FormatEnergy(WattHour); got != "3.6 kJ" {
		t.Errorf("FormatEnergy(WattHour) = %q", got)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 s"},
		{4.8, "4.8 s"},
		{57.6, "57.6 s"},
		{0.0032, "3.2 ms"},
		{25e-6, "25 µs"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatNegative(t *testing.T) {
	if got := FormatPower(-546 * MilliWatt); got != "-546 mW" {
		t.Errorf("FormatPower(-0.546) = %q", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0, 0) {
		t.Error("identical values must compare equal at zero tolerance")
	}
	if !ApproxEqual(100, 100.5, 0.01) {
		t.Error("0.5%% apart should pass 1%% tolerance")
	}
	if ApproxEqual(100, 103, 0.01) {
		t.Error("3%% apart should fail 1%% tolerance")
	}
	if !ApproxEqual(0, 1e-12, 1e-9) {
		t.Error("near-zero vs zero should use absolute tolerance")
	}
	if ApproxEqual(0, 1e-6, 1e-9) {
		t.Error("zero comparison should respect absolute tolerance")
	}
}

func TestApproxEqualSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return ApproxEqual(a, b, 1e-6) == ApproxEqual(b, a, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %g", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp(-1,0,3) = %g", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp(2,0,3) = %g", got)
	}
}

func TestClampPanicsOnInvertedInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp with lo > hi must panic")
		}
	}()
	Clamp(1, 3, 0)
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
