package schedule

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConst(t *testing.T) {
	c := NewConst(2.36, 57.6)
	if c.At(0) != 2.36 || c.At(30) != 2.36 || c.At(-5) != 2.36 {
		t.Error("constant schedule must return its value everywhere")
	}
	if c.Period() != 57.6 {
		t.Errorf("Period = %g", c.Period())
	}
	if got := Integrate(c, 0, 57.6); !almostEqual(got, 2.36*57.6, 1e-9) {
		t.Errorf("Integrate = %g, want %g", got, 2.36*57.6)
	}
}

func TestConstPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewConst(_, 0) must panic")
		}
	}()
	NewConst(1, 0)
}

func TestFuncWraps(t *testing.T) {
	f := NewFunc(func(t float64) float64 { return t }, 10)
	if got := f.At(12); !almostEqual(got, 2, 1e-12) {
		t.Errorf("At(12) = %g, want wraparound to 2", got)
	}
	if got := f.At(-1); !almostEqual(got, 9, 1e-12) {
		t.Errorf("At(-1) = %g, want wraparound to 9", got)
	}
}

func TestFuncPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFunc(nil, T) must panic")
		}
	}()
	NewFunc(nil, 1)
}

func TestPiecewiseConstantAt(t *testing.T) {
	p, err := NewPiecewiseConstant([]float64{0, 10, 20}, []float64{1, 2, 3}, 30)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 1}, {9.99, 1}, {10, 2}, {19.99, 2}, {20, 3}, {29.99, 3},
		{30, 1}, // wraps
		{-1, 3}, // wraps backward
		{35, 1}, // wraps
		{50, 3}, // wraps
	}
	for _, c := range cases {
		if got := p.At(c.t); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPiecewiseConstantIntegrate(t *testing.T) {
	p, err := NewPiecewiseConstant([]float64{0, 10, 20}, []float64{1, 2, 3}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := Integrate(p, 0, 30); !almostEqual(got, 60, 1e-9) {
		t.Errorf("full-period integral = %g, want 60", got)
	}
	if got := Integrate(p, 5, 15); !almostEqual(got, 5+10, 1e-9) {
		t.Errorf("Integrate(5,15) = %g, want 15", got)
	}
	// Reversed bounds negate.
	if got := Integrate(p, 15, 5); !almostEqual(got, -15, 1e-9) {
		t.Errorf("Integrate(15,5) = %g, want -15", got)
	}
}

func TestPiecewiseConstantValidation(t *testing.T) {
	if _, err := NewPiecewiseConstant([]float64{1, 2}, []float64{1, 2}, 10); err == nil {
		t.Error("first break != 0 must be rejected")
	}
	if _, err := NewPiecewiseConstant([]float64{0, 5, 5}, []float64{1, 2, 3}, 10); err == nil {
		t.Error("non-increasing breaks must be rejected")
	}
	if _, err := NewPiecewiseConstant([]float64{0, 15}, []float64{1, 2}, 10); err == nil {
		t.Error("break beyond the period must be rejected")
	}
	if _, err := NewPiecewiseConstant([]float64{0}, []float64{1, 2}, 10); err == nil {
		t.Error("mismatched lengths must be rejected")
	}
	if _, err := NewPiecewiseConstant(nil, nil, 10); err == nil {
		t.Error("empty breaks must be rejected")
	}
	if _, err := NewPiecewiseConstant([]float64{0}, []float64{1}, -1); err == nil {
		t.Error("negative period must be rejected")
	}
}

func TestPiecewiseLinearInterpolates(t *testing.T) {
	p, err := NewPiecewiseLinear([]float64{0, 10}, []float64{0, 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.At(5); !almostEqual(got, 5, 1e-12) {
		t.Errorf("At(5) = %g, want 5 (linear ramp)", got)
	}
	// Beyond the last break, interpolate back to Values[0] at t=Period.
	if got := p.At(15); !almostEqual(got, 5, 1e-12) {
		t.Errorf("At(15) = %g, want 5 (ramp back down)", got)
	}
	if got := p.At(0); got != 0 {
		t.Errorf("At(0) = %g", got)
	}
}

func TestPiecewiseLinearIntegrate(t *testing.T) {
	// Triangle: 0 at t=0, 10 at t=10, back to 0 at t=20. Area = 100.
	p, err := NewPiecewiseLinear([]float64{0, 10}, []float64{0, 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := Integrate(p, 0, 20); !almostEqual(got, 100, 1e-6) {
		t.Errorf("triangle area = %g, want 100", got)
	}
	if got := Integrate(p, 0, 10); !almostEqual(got, 50, 1e-6) {
		t.Errorf("half triangle = %g, want 50", got)
	}
}

func TestSimpsonFallback(t *testing.T) {
	// sin over [0, π] integrates to 2; Func has no exact integrator.
	s := NewFunc(math.Sin, math.Pi)
	if got := Integrate(s, 0, math.Pi); !almostEqual(got, 2, 1e-6) {
		t.Errorf("∫ sin over [0,π] = %g, want 2", got)
	}
}

func TestMean(t *testing.T) {
	p, err := NewPiecewiseConstant([]float64{0, 10}, []float64{0, 4}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := Mean(p); !almostEqual(got, 2, 1e-9) {
		t.Errorf("Mean = %g, want 2", got)
	}
}

func TestArithmetic(t *testing.T) {
	a := NewConst(3, 10)
	b := NewConst(2, 10)
	if got := Add(a, b).At(5); got != 5 {
		t.Errorf("Add = %g", got)
	}
	if got := Sub(a, b).At(5); got != 1 {
		t.Errorf("Sub = %g", got)
	}
	if got := Mul(a, b).At(5); got != 6 {
		t.Errorf("Mul = %g", got)
	}
	if got := Scale(a, 10).At(5); got != 30 {
		t.Errorf("Scale = %g", got)
	}
}

func TestArithmeticPeriodMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("combining different periods must panic")
		}
	}()
	Add(NewConst(1, 10), NewConst(1, 20))
}

func TestSample(t *testing.T) {
	p, err := NewPiecewiseConstant([]float64{0, 5}, []float64{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := Sample(p, 4)
	want := []float64{1, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sample[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestIntegrateAdditiveProperty(t *testing.T) {
	// ∫[a,c] = ∫[a,b] + ∫[b,c] for piecewise-constant schedules.
	p, err := NewPiecewiseConstant(
		[]float64{0, 4.8, 9.6, 14.4}, []float64{2.36, 1.18, 0.79, 0.49}, 19.2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y, z float64) bool {
		T := p.Period()
		// Map arbitrary floats into [0, T] and order them.
		pts := []float64{wrap(math.Abs(x), T), wrap(math.Abs(y), T), wrap(math.Abs(z), T)}
		a := math.Min(pts[0], math.Min(pts[1], pts[2]))
		c := math.Max(pts[0], math.Max(pts[1], pts[2]))
		b := pts[0] + pts[1] + pts[2] - a - c
		whole := Integrate(p, a, c)
		split := Integrate(p, a, b) + Integrate(p, b, c)
		return almostEqual(whole, split, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWrapProperty(t *testing.T) {
	f := func(t64 float64) bool {
		if math.IsNaN(t64) || math.IsInf(t64, 0) {
			return true
		}
		w := wrap(t64, 57.6)
		return w >= 0 && w < 57.6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
