package schedule_test

import (
	"fmt"

	"dpm/internal/schedule"
)

// Build the paper's scenario I charging schedule as a slot grid and
// integrate it.
func ExampleGrid() {
	charging := schedule.NewGrid(4.8, []float64{
		2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0, 0, 0, 0, 0, 0,
	})
	fmt.Printf("period %.1f s, energy %.1f J, power at t=10s: %.2f W\n",
		charging.Period(), charging.Total(), charging.At(10))
	// Output:
	// period 57.6 s, energy 68.0 J, power at t=10s: 2.36 W
}

// Combine an event-rate schedule with a weight function (Eq. 7's
// weighted power-usage function) and discretize it.
func ExampleMul() {
	u := schedule.NewConst(1.0, 24)
	w, err := schedule.NewPiecewiseConstant(
		[]float64{0, 7, 9}, []float64{1, 3, 1}, 24)
	if err != nil {
		panic(err)
	}
	wpuf := schedule.Mul(u, w)
	grid := schedule.FromSchedule(wpuf, 24)
	fmt.Printf("hour 6: %.0f, hour 8 (rush): %.0f\n", grid.Values[6], grid.Values[8])
	// Output:
	// hour 6: 1, hour 8 (rush): 3
}

// The battery trajectory (Eq. 10) is the cumulative surplus.
func ExampleGrid_Cumulative() {
	charging := schedule.NewGrid(1, []float64{3, 3, 0, 0})
	usage := schedule.NewGrid(1, []float64{1, 1, 2, 2})
	surplus := charging.Sub(usage)
	fmt.Println(surplus.Cumulative(5))
	// Output:
	// [5 7 9 7 5]
}
