package schedule

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func paperGridI() *Grid {
	// Scenario I use schedule from the paper's Table 2, iteration 1.
	return NewGrid(4.8, []float64{1.89, 1.21, 0.32, 0.32, 1.21, 2.03, 1.9, 1.21, 0.32, 0.32, 1.21, 2.03})
}

func TestGridBasics(t *testing.T) {
	g := paperGridI()
	if g.Len() != 12 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !almostEqual(g.Period(), 57.6, 1e-12) {
		t.Errorf("Period = %g", g.Period())
	}
	if g.At(0) != 1.89 {
		t.Errorf("At(0) = %g", g.At(0))
	}
	if g.At(4.8) != 1.21 {
		t.Errorf("At(4.8) = %g", g.At(4.8))
	}
	if g.At(57.6) != 1.89 { // wraps to slot 0
		t.Errorf("At(57.6) = %g", g.At(57.6))
	}
	if !almostEqual(g.SlotStart(3), 14.4, 1e-9) {
		t.Errorf("SlotStart(3) = %g", g.SlotStart(3))
	}
}

func TestGridConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero step":   func() { NewGrid(0, []float64{1}) },
		"empty":       func() { NewGrid(1, nil) },
		"uniform n=0": func() { NewUniformGrid(1, 0, 5) },
		"from n=0":    func() { FromSchedule(NewConst(1, 10), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGridCopiesInput(t *testing.T) {
	vals := []float64{1, 2, 3}
	g := NewGrid(1, vals)
	vals[0] = 99
	if g.Values[0] != 1 {
		t.Error("NewGrid must copy its input slice")
	}
}

func TestNewUniformGrid(t *testing.T) {
	g := NewUniformGrid(4.8, 12, 0.5)
	if g.Len() != 12 || g.At(30) != 0.5 {
		t.Errorf("uniform grid wrong: %v", g)
	}
	if !almostEqual(g.Total(), 0.5*57.6, 1e-9) {
		t.Errorf("Total = %g", g.Total())
	}
}

func TestFromSchedulePreservesEnergy(t *testing.T) {
	// Linear ramp: discretizing via slot averages preserves the integral.
	s, err := NewPiecewiseLinear([]float64{0, 28.8}, []float64{0, 2}, 57.6)
	if err != nil {
		t.Fatal(err)
	}
	g := FromSchedule(s, 12)
	if !almostEqual(g.Total(), Integrate(s, 0, 57.6), 1e-6) {
		t.Errorf("grid total %g != schedule integral %g", g.Total(), Integrate(s, 0, 57.6))
	}
}

func TestGridTotalMatchesPaper(t *testing.T) {
	// Scenario I's use schedule sums to the same energy as its charging
	// schedule (six slots at 2.36 W): 6·2.36·4.8 ≈ 67.97 J. The paper's
	// rounded table values land close to that.
	g := paperGridI()
	charge := NewGrid(4.8, []float64{2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0, 0, 0, 0, 0, 0})
	if math.Abs(g.Total()-charge.Total()) > 1.0 {
		t.Errorf("use %g J vs charge %g J should roughly balance", g.Total(), charge.Total())
	}
}

func TestGridArithmetic(t *testing.T) {
	a := NewGrid(1, []float64{1, 2, 3})
	b := NewGrid(1, []float64{4, 5, 6})
	if got := a.Add(b).Values; got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a).Values; got[0] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b).Values; got[1] != 10 {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2).Values; got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	// Originals untouched.
	if a.Values[0] != 1 || b.Values[0] != 4 {
		t.Error("arithmetic must not mutate operands")
	}
}

func TestGridIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("adding incompatible grids must panic")
		}
	}()
	NewGrid(1, []float64{1}).Add(NewGrid(2, []float64{1}))
}

func TestGridCumulative(t *testing.T) {
	g := NewGrid(2, []float64{1, -1, 3})
	cum := g.Cumulative(10)
	want := []float64{10, 12, 10, 16}
	if len(cum) != len(want) {
		t.Fatalf("Cumulative length = %d", len(cum))
	}
	for i := range want {
		if !almostEqual(cum[i], want[i], 1e-12) {
			t.Errorf("cum[%d] = %g, want %g", i, cum[i], want[i])
		}
	}
}

func TestGridCumulativeEndEqualsTotal(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			vals[i] = math.Mod(v, 1e6)
		}
		g := NewGrid(0.5, vals)
		cum := g.Cumulative(0)
		return almostEqual(cum[len(cum)-1], g.Total(), 1e-6*math.Max(1, math.Abs(g.Total())))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGridMinMax(t *testing.T) {
	g := NewGrid(1, []float64{3, -1, 7, 2})
	if g.Min() != -1 || g.Max() != 7 {
		t.Errorf("Min/Max = %g/%g", g.Min(), g.Max())
	}
}

func TestGridClampNonNegative(t *testing.T) {
	g := NewGrid(1, []float64{1, -0.001, 2})
	g.ClampNonNegative()
	if g.Values[1] != 0 || g.Values[0] != 1 {
		t.Errorf("ClampNonNegative = %v", g.Values)
	}
}

func TestGridEqual(t *testing.T) {
	a := NewGrid(1, []float64{1, 2})
	b := NewGrid(1, []float64{1, 2.0000001})
	if !a.Equal(b, 1e-3) {
		t.Error("grids within tolerance should be Equal")
	}
	if a.Equal(b, 1e-12) {
		t.Error("grids outside tolerance should not be Equal")
	}
	if a.Equal(NewGrid(2, []float64{1, 2}), 1) {
		t.Error("different steps are never Equal")
	}
	if a.Equal(NewGrid(1, []float64{1}), 1) {
		t.Error("different lengths are never Equal")
	}
}

func TestGridIntegrateExact(t *testing.T) {
	g := NewGrid(4.8, []float64{2, 0, 1})
	if got := g.IntegrateExact(0, 14.4); !almostEqual(got, 2*4.8+0+1*4.8, 1e-12) {
		t.Errorf("full integral = %g", got)
	}
	if got := g.IntegrateExact(2.4, 7.2); !almostEqual(got, 2*2.4+0, 1e-12) {
		t.Errorf("partial integral = %g", got)
	}
	if got := g.IntegrateExact(7.2, 2.4); !almostEqual(got, -4.8, 1e-12) {
		t.Errorf("reversed integral = %g", got)
	}
}

func TestGridCloneIndependent(t *testing.T) {
	g := NewGrid(1, []float64{1, 2})
	c := g.Clone()
	c.Values[0] = 99
	if g.Values[0] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestGridString(t *testing.T) {
	s := paperGridI().String()
	if !strings.Contains(s, "12 slots") || !strings.Contains(s, "τ=4.8s") {
		t.Errorf("String = %q", s)
	}
}

func TestGridAsScheduleInterface(t *testing.T) {
	var s Schedule = paperGridI()
	if got := Integrate(s, 0, 4.8); !almostEqual(got, 1.89*4.8, 1e-9) {
		t.Errorf("Integrate via interface = %g", got)
	}
}
