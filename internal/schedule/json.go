package schedule

import (
	"encoding/json"
	"fmt"
)

// gridJSON is the wire form of a Grid.
type gridJSON struct {
	// Step is the slot width τ in seconds.
	Step float64 `json:"step"`
	// Values are the per-slot values.
	Values []float64 `json:"values"`
}

// MarshalJSON encodes the grid as {"step": τ, "values": [...]}.
func (g *Grid) MarshalJSON() ([]byte, error) {
	return json.Marshal(gridJSON{Step: g.Step, Values: g.Values})
}

// UnmarshalJSON decodes and validates the wire form.
func (g *Grid) UnmarshalJSON(data []byte) error {
	var w gridJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("schedule: decoding grid: %w", err)
	}
	if w.Step <= 0 {
		return fmt.Errorf("schedule: grid step %g must be positive", w.Step)
	}
	if len(w.Values) == 0 {
		return fmt.Errorf("schedule: grid has no slots")
	}
	g.Step = w.Step
	g.Values = w.Values
	return nil
}
