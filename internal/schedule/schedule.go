// Package schedule models real-valued functions of time over one
// period, the representation the paper uses for every input to the
// power manager: the expected charging schedule c(t), the expected
// event-rate schedule u(t), and the weight function w(t), all defined
// for 0 <= t < T with period T (the satellite orbit in the paper's
// example).
//
// Two families of representations are provided:
//
//   - Schedule: a continuous view (constant, piecewise-constant,
//     piecewise-linear, or an arbitrary function), evaluated at any t
//     with periodic wraparound.
//   - Grid: a uniform piecewise-constant discretization with slot
//     width τ, which is what the paper's algorithms actually operate
//     on (τ = 4.8 s, T = 57.6 s, twelve slots in the evaluation).
//
// Exact integration is available for all built-in schedule kinds;
// arbitrary functions fall back to adaptive Simpson quadrature.
package schedule

import (
	"fmt"
	"math"
)

// Schedule is a real-valued periodic function of time. At must accept
// any real t; implementations wrap t into [0, Period).
type Schedule interface {
	// At returns the value at time t. Times outside [0, Period)
	// are wrapped periodically.
	At(t float64) float64
	// Period returns the length T of one period in seconds.
	Period() float64
}

// Integrator is implemented by schedules that can integrate
// themselves exactly over an interval within one period.
type Integrator interface {
	// IntegrateExact returns the integral over [t0, t1], where
	// 0 <= t0 <= t1 <= Period.
	IntegrateExact(t0, t1 float64) float64
}

// wrap maps t into [0, period).
func wrap(t, period float64) float64 {
	if period <= 0 {
		panic("schedule: non-positive period")
	}
	t = math.Mod(t, period)
	if t < 0 {
		t += period
	}
	return t
}

// Const is a schedule with the same value everywhere.
type Const struct {
	Value float64
	T     float64
}

// NewConst returns a constant schedule with period T.
func NewConst(value, T float64) Const {
	if T <= 0 {
		panic("schedule: NewConst with non-positive period")
	}
	return Const{Value: value, T: T}
}

// At implements Schedule.
func (c Const) At(float64) float64 { return c.Value }

// Period implements Schedule.
func (c Const) Period() float64 { return c.T }

// IntegrateExact implements Integrator.
func (c Const) IntegrateExact(t0, t1 float64) float64 { return c.Value * (t1 - t0) }

// Func adapts an arbitrary function to the Schedule interface.
type Func struct {
	F func(t float64) float64
	T float64
}

// NewFunc wraps f as a schedule with period T.
func NewFunc(f func(float64) float64, T float64) Func {
	if T <= 0 {
		panic("schedule: NewFunc with non-positive period")
	}
	if f == nil {
		panic("schedule: NewFunc with nil function")
	}
	return Func{F: f, T: T}
}

// At implements Schedule.
func (f Func) At(t float64) float64 { return f.F(wrap(t, f.T)) }

// Period implements Schedule.
func (f Func) Period() float64 { return f.T }

// PiecewiseConstant holds a step function: Values[i] on
// [Breaks[i], Breaks[i+1]), with an implicit final break at Period.
// Breaks must start at 0 and increase strictly.
type PiecewiseConstant struct {
	breaks []float64
	values []float64
	period float64
}

// NewPiecewiseConstant builds a step schedule. breaks[0] must be 0,
// breaks must be strictly increasing and below period, and
// len(values) == len(breaks).
func NewPiecewiseConstant(breaks, values []float64, period float64) (*PiecewiseConstant, error) {
	if err := validateBreaks(breaks, period); err != nil {
		return nil, err
	}
	if len(values) != len(breaks) {
		return nil, fmt.Errorf("schedule: %d values for %d breaks", len(values), len(breaks))
	}
	return &PiecewiseConstant{
		breaks: append([]float64(nil), breaks...),
		values: append([]float64(nil), values...),
		period: period,
	}, nil
}

func validateBreaks(breaks []float64, period float64) error {
	if period <= 0 {
		return fmt.Errorf("schedule: non-positive period %g", period)
	}
	if len(breaks) == 0 {
		return fmt.Errorf("schedule: no breakpoints")
	}
	if breaks[0] != 0 {
		return fmt.Errorf("schedule: first breakpoint %g, want 0", breaks[0])
	}
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			return fmt.Errorf("schedule: breakpoints not strictly increasing at index %d", i)
		}
	}
	if last := breaks[len(breaks)-1]; last >= period {
		return fmt.Errorf("schedule: last breakpoint %g >= period %g", last, period)
	}
	return nil
}

// segment returns the index i such that breaks[i] <= t < breaks[i+1]
// (with the final segment extending to the period).
func segmentIndex(breaks []float64, t float64) int {
	// Binary search for the rightmost break <= t.
	lo, hi := 0, len(breaks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if breaks[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// At implements Schedule.
func (p *PiecewiseConstant) At(t float64) float64 {
	t = wrap(t, p.period)
	return p.values[segmentIndex(p.breaks, t)]
}

// Period implements Schedule.
func (p *PiecewiseConstant) Period() float64 { return p.period }

// IntegrateExact implements Integrator.
func (p *PiecewiseConstant) IntegrateExact(t0, t1 float64) float64 {
	if t1 < t0 {
		return -p.IntegrateExact(t1, t0)
	}
	total := 0.0
	for i := range p.breaks {
		segStart := p.breaks[i]
		segEnd := p.period
		if i+1 < len(p.breaks) {
			segEnd = p.breaks[i+1]
		}
		lo := math.Max(segStart, t0)
		hi := math.Min(segEnd, t1)
		if hi > lo {
			total += p.values[i] * (hi - lo)
		}
	}
	return total
}

// PiecewiseLinear interpolates linearly between (Breaks[i], Values[i])
// points; between the last breakpoint and the period it interpolates
// toward Values[0] at t = Period, making the schedule continuous and
// periodic.
type PiecewiseLinear struct {
	breaks []float64
	values []float64
	period float64
}

// NewPiecewiseLinear builds a continuous periodic schedule through the
// given points. The same breakpoint rules as NewPiecewiseConstant
// apply.
func NewPiecewiseLinear(breaks, values []float64, period float64) (*PiecewiseLinear, error) {
	if err := validateBreaks(breaks, period); err != nil {
		return nil, err
	}
	if len(values) != len(breaks) {
		return nil, fmt.Errorf("schedule: %d values for %d breaks", len(values), len(breaks))
	}
	return &PiecewiseLinear{
		breaks: append([]float64(nil), breaks...),
		values: append([]float64(nil), values...),
		period: period,
	}, nil
}

// At implements Schedule.
func (p *PiecewiseLinear) At(t float64) float64 {
	t = wrap(t, p.period)
	i := segmentIndex(p.breaks, t)
	x0, y0 := p.breaks[i], p.values[i]
	var x1, y1 float64
	if i+1 < len(p.breaks) {
		x1, y1 = p.breaks[i+1], p.values[i+1]
	} else {
		x1, y1 = p.period, p.values[0]
	}
	if x1 == x0 {
		return y0
	}
	return y0 + (y1-y0)*(t-x0)/(x1-x0)
}

// Period implements Schedule.
func (p *PiecewiseLinear) Period() float64 { return p.period }

// IntegrateExact implements Integrator using the trapezoid areas of
// each linear segment.
func (p *PiecewiseLinear) IntegrateExact(t0, t1 float64) float64 {
	if t1 < t0 {
		return -p.IntegrateExact(t1, t0)
	}
	total := 0.0
	for i := range p.breaks {
		segStart := p.breaks[i]
		segEnd := p.period
		if i+1 < len(p.breaks) {
			segEnd = p.breaks[i+1]
		}
		lo := math.Max(segStart, t0)
		hi := math.Min(segEnd, t1)
		if hi > lo {
			// Trapezoid between the interpolated endpoint values.
			total += (p.At(lo) + p.At(hi-1e-12*p.period)) / 2 * (hi - lo)
		}
	}
	return total
}

// Integrate returns the integral of s over [t0, t1] within one period
// (0 <= t0 <= t1 <= Period). It uses exact integration when the
// schedule supports it and adaptive Simpson quadrature otherwise.
func Integrate(s Schedule, t0, t1 float64) float64 {
	if t1 < t0 {
		return -Integrate(s, t1, t0)
	}
	if in, ok := s.(Integrator); ok {
		return in.IntegrateExact(t0, t1)
	}
	return simpson(s.At, t0, t1, 1e-9, 24)
}

// simpson is adaptive Simpson quadrature with a recursion-depth cap.
func simpson(f func(float64) float64, a, b, eps float64, depth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := (b - a) / 6 * (fa + 4*fc + fb)
	return simpsonAux(f, a, b, eps, whole, fa, fb, fc, depth)
}

func simpsonAux(f func(float64) float64, a, b, eps, whole, fa, fb, fc float64, depth int) float64 {
	c := (a + b) / 2
	d, e := (a+c)/2, (c+b)/2
	fd, fe := f(d), f(e)
	left := (c - a) / 6 * (fa + 4*fd + fc)
	right := (b - c) / 6 * (fc + 4*fe + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*eps {
		return left + right + (left+right-whole)/15
	}
	return simpsonAux(f, a, c, eps/2, left, fa, fc, fd, depth-1) +
		simpsonAux(f, c, b, eps/2, right, fc, fb, fe, depth-1)
}

// Mean returns the average value of s over one full period.
func Mean(s Schedule) float64 {
	return Integrate(s, 0, s.Period()) / s.Period()
}

// combined implements pointwise arithmetic on two schedules with the
// same period.
type combined struct {
	a, b Schedule
	op   func(x, y float64) float64
	t    float64
}

func (c combined) At(t float64) float64 { return c.op(c.a.At(t), c.b.At(t)) }
func (c combined) Period() float64      { return c.t }

func combine(a, b Schedule, op func(x, y float64) float64) Schedule {
	if a.Period() != b.Period() {
		panic(fmt.Sprintf("schedule: combining periods %g and %g", a.Period(), b.Period()))
	}
	return combined{a: a, b: b, op: op, t: a.Period()}
}

// Add returns the pointwise sum a + b. Both must share a period.
func Add(a, b Schedule) Schedule { return combine(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns the pointwise difference a - b. Both must share a period.
func Sub(a, b Schedule) Schedule { return combine(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns the pointwise product a * b. Both must share a period.
// The paper's weighted power-usage function WPUF(t) = u(t)·w(t)
// (Eq. 7) is exactly this operation.
func Mul(a, b Schedule) Schedule { return combine(a, b, func(x, y float64) float64 { return x * y }) }

// Scale returns s multiplied by the constant k.
func Scale(s Schedule, k float64) Schedule {
	return Func{F: func(t float64) float64 { return k * s.At(t) }, T: s.Period()}
}

// Sample evaluates s at n uniformly spaced times starting at 0
// (t_i = i·T/n) and returns the samples.
func Sample(s Schedule, n int) []float64 {
	if n <= 0 {
		panic("schedule: Sample with non-positive count")
	}
	out := make([]float64, n)
	step := s.Period() / float64(n)
	for i := range out {
		out[i] = s.At(float64(i) * step)
	}
	return out
}
