package schedule

import (
	"fmt"
	"math"
)

// Grid is a uniform piecewise-constant discretization of one period:
// slot i covers [i·Step, (i+1)·Step) and carries the constant value
// Values[i]. The paper's algorithms update system parameters only at
// multiples of τ (its Step), so a Grid is the natural working form
// for power allocations: τ = 4.8 s and twelve slots per 57.6 s period
// in the paper's evaluation.
//
// A Grid's Values slice is owned by the Grid; Clone before mutating a
// Grid that is shared.
type Grid struct {
	// Step is the slot width τ in seconds.
	Step float64
	// Values holds one value per slot (typically watts).
	Values []float64
}

// NewGrid creates a grid with the given slot width and per-slot
// values. The values are copied.
func NewGrid(step float64, values []float64) *Grid {
	if step <= 0 {
		panic("schedule: NewGrid with non-positive step")
	}
	if len(values) == 0 {
		panic("schedule: NewGrid with no slots")
	}
	return &Grid{Step: step, Values: append([]float64(nil), values...)}
}

// NewUniformGrid creates a grid of n slots all holding value.
func NewUniformGrid(step float64, n int, value float64) *Grid {
	if n <= 0 {
		panic("schedule: NewUniformGrid with non-positive slot count")
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = value
	}
	return &Grid{Step: step, Values: values}
}

// FromSchedule discretizes s into n slots of width Period/n, using
// the exact slot average so that the grid's total energy equals the
// schedule's.
func FromSchedule(s Schedule, n int) *Grid {
	if n <= 0 {
		panic("schedule: FromSchedule with non-positive slot count")
	}
	step := s.Period() / float64(n)
	values := make([]float64, n)
	for i := range values {
		t0 := float64(i) * step
		values[i] = Integrate(s, t0, t0+step) / step
	}
	return &Grid{Step: step, Values: values}
}

// Len returns the number of slots.
func (g *Grid) Len() int { return len(g.Values) }

// Period returns the grid's total span Step·Len in seconds.
func (g *Grid) Period() float64 { return g.Step * float64(len(g.Values)) }

// At implements Schedule: the value of the slot containing t, with
// periodic wraparound.
func (g *Grid) At(t float64) float64 {
	t = wrap(t, g.Period())
	i := int(t / g.Step)
	if i >= len(g.Values) { // guard the t == Period-epsilon edge
		i = len(g.Values) - 1
	}
	return g.Values[i]
}

// IntegrateExact implements Integrator.
func (g *Grid) IntegrateExact(t0, t1 float64) float64 {
	if t1 < t0 {
		return -g.IntegrateExact(t1, t0)
	}
	total := 0.0
	for i, v := range g.Values {
		lo := math.Max(float64(i)*g.Step, t0)
		hi := math.Min(float64(i+1)*g.Step, t1)
		if hi > lo {
			total += v * (hi - lo)
		}
	}
	return total
}

// SlotStart returns the start time of slot i.
func (g *Grid) SlotStart(i int) float64 { return float64(i) * g.Step }

// Total returns the integral over the whole period: Σ Values[i]·Step.
// For a power grid this is the period's total energy in joules.
func (g *Grid) Total() float64 {
	sum := 0.0
	for _, v := range g.Values {
		sum += v
	}
	return sum * g.Step
}

// Clone returns an independent deep copy.
func (g *Grid) Clone() *Grid {
	return &Grid{Step: g.Step, Values: append([]float64(nil), g.Values...)}
}

// checkCompatible panics unless the two grids share step and length.
func (g *Grid) checkCompatible(other *Grid) {
	if g.Step != other.Step || len(g.Values) != len(other.Values) {
		panic(fmt.Sprintf("schedule: incompatible grids (%d slots × %g s vs %d slots × %g s)",
			len(g.Values), g.Step, len(other.Values), other.Step))
	}
}

// Add returns a new grid holding g + other slot-wise.
func (g *Grid) Add(other *Grid) *Grid {
	g.checkCompatible(other)
	out := g.Clone()
	for i := range out.Values {
		out.Values[i] += other.Values[i]
	}
	return out
}

// Sub returns a new grid holding g - other slot-wise.
func (g *Grid) Sub(other *Grid) *Grid {
	g.checkCompatible(other)
	out := g.Clone()
	for i := range out.Values {
		out.Values[i] -= other.Values[i]
	}
	return out
}

// Mul returns a new grid holding g · other slot-wise.
func (g *Grid) Mul(other *Grid) *Grid {
	g.checkCompatible(other)
	out := g.Clone()
	for i := range out.Values {
		out.Values[i] *= other.Values[i]
	}
	return out
}

// Scale returns a new grid holding k·g.
func (g *Grid) Scale(k float64) *Grid {
	out := g.Clone()
	for i := range out.Values {
		out.Values[i] *= k
	}
	return out
}

// Cumulative returns the running integral sampled at slot boundaries:
// out[i] = initial + ∫₀^{i·Step} g. The result has Len+1 entries;
// out[0] == initial and out[Len] == initial + Total().
//
// Applied to the surplus grid c - u this is the paper's battery
// trajectory P_original(t) of Eq. 10, with initial the starting
// battery charge.
func (g *Grid) Cumulative(initial float64) []float64 {
	out := make([]float64, len(g.Values)+1)
	out[0] = initial
	for i, v := range g.Values {
		out[i+1] = out[i] + v*g.Step
	}
	return out
}

// Min returns the smallest slot value.
func (g *Grid) Min() float64 {
	m := g.Values[0]
	for _, v := range g.Values[1:] {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the largest slot value.
func (g *Grid) Max() float64 {
	m := g.Values[0]
	for _, v := range g.Values[1:] {
		m = math.Max(m, v)
	}
	return m
}

// ClampNonNegative zeroes any negative slot in place and returns g.
// Power allocations are physically non-negative; Algorithm 1's
// rescaling can otherwise produce tiny negative slots from floating
// point cancellation.
func (g *Grid) ClampNonNegative() *Grid {
	for i, v := range g.Values {
		if v < 0 {
			g.Values[i] = 0
		}
	}
	return g
}

// Equal reports whether the grids agree slot-wise within tol.
func (g *Grid) Equal(other *Grid, tol float64) bool {
	if g.Step != other.Step || len(g.Values) != len(other.Values) {
		return false
	}
	for i := range g.Values {
		if math.Abs(g.Values[i]-other.Values[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the grid compactly for logs and tests.
func (g *Grid) String() string {
	return fmt.Sprintf("Grid(τ=%gs, %d slots, total=%.3g)", g.Step, len(g.Values), g.Total())
}
