package fixed

import (
	"math"
	"testing"
)

// FuzzArithmetic drives the saturating Q15 operations with arbitrary
// operand pairs: results must stay in range and within an LSB of the
// clamped real-valued result.
func FuzzArithmetic(f *testing.F) {
	f.Add(int16(0), int16(0))
	f.Add(int16(math.MaxInt16), int16(math.MaxInt16))
	f.Add(int16(math.MinInt16), int16(math.MinInt16))
	f.Add(int16(1234), int16(-4321))
	f.Fuzz(func(t *testing.T, a16, b16 int16) {
		a, b := Q15(a16), Q15(b16)
		clamp := func(v float64) float64 {
			return math.Min(math.Max(v, MinQ15.Float()), MaxQ15.Float())
		}
		const lsb = 1.0 / 32768

		if got, want := Add(a, b).Float(), clamp(a.Float()+b.Float()); math.Abs(got-want) > lsb {
			t.Fatalf("Add(%v, %v) = %g, want %g", a, b, got, want)
		}
		if got, want := Sub(a, b).Float(), clamp(a.Float()-b.Float()); math.Abs(got-want) > lsb {
			t.Fatalf("Sub(%v, %v) = %g, want %g", a, b, got, want)
		}
		if got, want := Mul(a, b).Float(), clamp(a.Float()*b.Float()); math.Abs(got-want) > lsb {
			t.Fatalf("Mul(%v, %v) = %g, want %g", a, b, got, want)
		}
		if got := Abs(a); got < 0 {
			t.Fatalf("Abs(%v) = %v negative", a, got)
		}
		if got := Neg(a); got.Float() > 1 || got.Float() < -1 {
			t.Fatalf("Neg(%v) = %v out of range", a, got)
		}
	})
}
