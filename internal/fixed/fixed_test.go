package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.5, -0.5, 0.25, -1, 0.999, -0.999}
	for _, f := range cases {
		q := FromFloat(f)
		if math.Abs(q.Float()-f) > 1.0/32768 {
			t.Errorf("FromFloat(%g).Float() = %g", f, q.Float())
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(2) != MaxQ15 {
		t.Error("2 must saturate to MaxQ15")
	}
	if FromFloat(-2) != MinQ15 {
		t.Error("-2 must saturate to MinQ15")
	}
	if FromFloat(1.0) != MaxQ15 {
		t.Error("1.0 must saturate to MaxQ15 (just out of range)")
	}
	if FromFloat(-1.0) != MinQ15 {
		t.Error("-1.0 is exactly MinQ15")
	}
	if FromFloat(math.NaN()) != 0 {
		t.Error("NaN must map to 0")
	}
}

func TestAddSaturates(t *testing.T) {
	if Add(MaxQ15, 1) != MaxQ15 {
		t.Error("positive overflow must saturate")
	}
	if Add(MinQ15, -1) != MinQ15 {
		t.Error("negative overflow must saturate")
	}
	if Add(100, 200) != 300 {
		t.Error("plain addition broken")
	}
}

func TestSubSaturates(t *testing.T) {
	if Sub(MinQ15, 1) != MinQ15 {
		t.Error("negative overflow must saturate")
	}
	if Sub(MaxQ15, -1) != MaxQ15 {
		t.Error("positive overflow must saturate")
	}
	if Sub(300, 200) != 100 {
		t.Error("plain subtraction broken")
	}
}

func TestMul(t *testing.T) {
	half := FromFloat(0.5)
	quarter := Mul(half, half)
	if math.Abs(quarter.Float()-0.25) > 1e-4 {
		t.Errorf("0.5 × 0.5 = %g", quarter.Float())
	}
	// The classic corner: (−1) × (−1) must saturate to +1−ε.
	if Mul(MinQ15, MinQ15) != MaxQ15 {
		t.Errorf("MinQ15² = %v, want MaxQ15", Mul(MinQ15, MinQ15))
	}
	if Mul(0, MaxQ15) != 0 {
		t.Error("0 × x must be 0")
	}
}

func TestNegAbs(t *testing.T) {
	if Neg(100) != -100 {
		t.Error("Neg broken")
	}
	if Neg(MinQ15) != MaxQ15 {
		t.Error("−MinQ15 must saturate")
	}
	if Abs(-100) != 100 || Abs(100) != 100 {
		t.Error("Abs broken")
	}
	if Abs(MinQ15) != MaxQ15 {
		t.Error("|MinQ15| must saturate")
	}
}

func TestHalf(t *testing.T) {
	if Half(100) != 50 {
		t.Error("Half broken")
	}
	if Half(-101) != -51 { // arithmetic shift rounds toward −inf
		t.Errorf("Half(-101) = %d", Half(-101))
	}
}

func TestString(t *testing.T) {
	if FromFloat(0.5).String() != "0.500000" {
		t.Errorf("String = %q", FromFloat(0.5).String())
	}
}

func TestComplexOps(t *testing.T) {
	a := CFromFloat(complex(0.5, 0.25))
	b := CFromFloat(complex(0.25, -0.5))
	sum := CAdd(a, b)
	if math.Abs(real(sum.Float())-0.75) > 1e-4 || math.Abs(imag(sum.Float())+0.25) > 1e-4 {
		t.Errorf("CAdd = %v", sum.Float())
	}
	diff := CSub(a, b)
	if math.Abs(real(diff.Float())-0.25) > 1e-4 || math.Abs(imag(diff.Float())-0.75) > 1e-4 {
		t.Errorf("CSub = %v", diff.Float())
	}
	prod := CMul(a, b)
	want := complex(0.5, 0.25) * complex(0.25, -0.5)
	if math.Abs(real(prod.Float())-real(want)) > 1e-3 || math.Abs(imag(prod.Float())-imag(want)) > 1e-3 {
		t.Errorf("CMul = %v, want %v", prod.Float(), want)
	}
}

func TestCHalf(t *testing.T) {
	c := Complex{Re: 100, Im: -100}
	h := CHalf(c)
	if h.Re != 50 || h.Im != -50 {
		t.Errorf("CHalf = %+v", h)
	}
}

func TestMagSq(t *testing.T) {
	c := CFromFloat(complex(0.6, 0.8))
	if math.Abs(c.MagSq()-1.0) > 1e-3 {
		t.Errorf("MagSq = %g, want 1", c.MagSq())
	}
}

// Property: Add never leaves the Q15 range and matches saturating
// float addition.
func TestAddProperty(t *testing.T) {
	f := func(a, b int16) bool {
		got := Add(Q15(a), Q15(b)).Float()
		want := math.Min(math.Max(Q15(a).Float()+Q15(b).Float(), -1), 1-1.0/32768)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul result is within half an LSB of the real product
// (when in range).
func TestMulProperty(t *testing.T) {
	f := func(a, b int16) bool {
		got := Mul(Q15(a), Q15(b)).Float()
		want := Q15(a).Float() * Q15(b).Float()
		if want >= 1-1.0/32768 {
			return got == MaxQ15.Float()
		}
		return math.Abs(got-want) <= 1.0/32768
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CMul approximates complex multiplication to a few LSBs.
func TestCMulProperty(t *testing.T) {
	f := func(ar, ai, br, bi int16) bool {
		a := Complex{Q15(ar), Q15(ai)}
		b := Complex{Q15(br), Q15(bi)}
		got := CMul(a, b).Float()
		want := a.Float() * b.Float()
		// Allow saturation cases through.
		if real(want) >= 1 || real(want) < -1 || imag(want) >= 1 || imag(want) < -1 {
			return true
		}
		return math.Abs(real(got)-real(want)) <= 2.0/32768 &&
			math.Abs(imag(got)-imag(want)) <= 2.0/32768
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
