// Package fixed implements Q15 fixed-point arithmetic, the format
// the paper's FORTE signal-processing kernel uses: the M32R/D PIM
// processors have no floating-point unit, so the authors "implemented
// fixed-point FFT operations" (§5). Q15 stores a value in
// [−1, 1 − 2⁻¹⁵] as a signed 16-bit integer with 15 fractional bits.
//
// All operations saturate rather than wrap: overflow in a signal
// chain must clip, not alias.
package fixed

import (
	"fmt"
	"math"
)

// Q15 is a signed fixed-point number with 15 fractional bits.
type Q15 int16

// Limits of the Q15 range.
const (
	// MaxQ15 is the largest representable value, 1 − 2⁻¹⁵.
	MaxQ15 Q15 = math.MaxInt16
	// MinQ15 is the smallest representable value, −1.
	MinQ15 Q15 = math.MinInt16
	// scale is the value of one integer step.
	scale = 1.0 / 32768.0
)

// FromFloat converts a float to Q15, rounding to nearest and
// saturating outside [−1, 1−2⁻¹⁵].
func FromFloat(f float64) Q15 {
	if math.IsNaN(f) {
		return 0
	}
	v := math.Round(f * 32768.0)
	if v > float64(MaxQ15) {
		return MaxQ15
	}
	if v < float64(MinQ15) {
		return MinQ15
	}
	return Q15(v)
}

// Float converts back to float64.
func (q Q15) Float() float64 { return float64(q) * scale }

// String renders the value as its float approximation.
func (q Q15) String() string { return fmt.Sprintf("%.6f", q.Float()) }

// sat clamps a 32-bit intermediate into the Q15 range.
func sat(v int32) Q15 {
	if v > int32(MaxQ15) {
		return MaxQ15
	}
	if v < int32(MinQ15) {
		return MinQ15
	}
	return Q15(v)
}

// Add returns a + b with saturation.
func Add(a, b Q15) Q15 { return sat(int32(a) + int32(b)) }

// Sub returns a − b with saturation.
func Sub(a, b Q15) Q15 { return sat(int32(a) - int32(b)) }

// Mul returns a × b with convergent Q15 rounding and saturation.
// The only overflow case is MinQ15 × MinQ15 (= +1), which saturates
// to MaxQ15.
func Mul(a, b Q15) Q15 {
	p := int32(a) * int32(b)
	// Round to nearest: add half an LSB before the shift.
	return sat((p + (1 << 14)) >> 15)
}

// Neg returns −a with saturation (−MinQ15 saturates to MaxQ15).
func Neg(a Q15) Q15 { return sat(-int32(a)) }

// Abs returns |a| with saturation.
func Abs(a Q15) Q15 {
	if a < 0 {
		return Neg(a)
	}
	return a
}

// Half returns a/2, rounding toward negative infinity (an arithmetic
// shift), the scaling step the FFT applies per stage to prevent
// overflow.
func Half(a Q15) Q15 { return a >> 1 }

// Complex is a Q15 complex number.
type Complex struct {
	// Re and Im are the real and imaginary parts.
	Re, Im Q15
}

// CFromFloat converts a complex128 to a Q15 complex with saturation.
func CFromFloat(c complex128) Complex {
	return Complex{Re: FromFloat(real(c)), Im: FromFloat(imag(c))}
}

// Float converts to complex128.
func (c Complex) Float() complex128 {
	return complex(c.Re.Float(), c.Im.Float())
}

// CAdd returns a + b component-wise with saturation.
func CAdd(a, b Complex) Complex {
	return Complex{Re: Add(a.Re, b.Re), Im: Add(a.Im, b.Im)}
}

// CSub returns a − b component-wise with saturation.
func CSub(a, b Complex) Complex {
	return Complex{Re: Sub(a.Re, b.Re), Im: Sub(a.Im, b.Im)}
}

// CMul returns the complex product a·b in Q15. The cross terms are
// accumulated in 32 bits before a single rounding, which keeps one
// more bit of precision than rounding each partial product.
func CMul(a, b Complex) Complex {
	ar, ai := int32(a.Re), int32(a.Im)
	br, bi := int32(b.Re), int32(b.Im)
	re := ar*br - ai*bi
	im := ar*bi + ai*br
	return Complex{
		Re: sat((re + (1 << 14)) >> 15),
		Im: sat((im + (1 << 14)) >> 15),
	}
}

// CHalf scales both components by 1/2.
func CHalf(a Complex) Complex { return Complex{Re: Half(a.Re), Im: Half(a.Im)} }

// MagSq returns |a|² as a float64 (the magnitude square exceeds the
// Q15 range for large inputs, so it is returned in floating point;
// the detector thresholds are floats anyway).
func (c Complex) MagSq() float64 {
	re, im := c.Re.Float(), c.Im.Float()
	return re*re + im*im
}
