// Package fleet is dpmd's stateful session layer: the paper's §4.3
// runtime manager (Figure 1) is a *long-lived* control loop, and this
// package makes it one server-side. Where POST /v1/replan round-trips
// a full checkpoint per call — every device paying
// serialize/validate/deserialize on every τ tick — a fleet session
// owns a live dpm.Manager: a device registers once (scenario plus
// optional checkpoint) and thereafter streams lightweight telemetry
// ticks, getting delta replans back with no checkpoint on the wire.
//
// Session state is sharded across goroutine-owned partitions routed
// by FNV-1a hash on the device id (mirroring plancache.Sharded's
// routing). Each partition is a single-writer event loop: every
// operation on a session executes inside its partition's goroutine,
// so sessions need no per-session locks and a tick is a channel
// round-trip plus a few hundred nanoseconds of Algorithm 3. Idle
// sessions are evicted on a TTL with their checkpoint parked for
// handback — a re-register resumes exactly where the evicted session
// stopped — and Drain removes every live session at once, returning
// each final checkpoint exactly once. Close stops the partition
// goroutines for shutdown.
//
// Semantics are pinned to the stateless path: a session fed N slot
// reports yields byte-identical replan output to N /v1/replan calls
// round-tripping checkpoints (the parity tests in this package and
// internal/server enforce it).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpm/internal/dpm"
	"dpm/internal/obs"
	"dpm/internal/params"
	"dpm/internal/pipeline"
	"dpm/internal/scenario"
	"dpm/internal/trace"
)

// Sentinel errors callers map onto transport statuses.
var (
	// ErrUnknownDevice means no session (live or parked) exists for
	// the device id — the device must register first. → 404.
	ErrUnknownDevice = errors.New("fleet: unknown device; register first")
	// ErrEvicted means the session was idle-evicted; its checkpoint is
	// parked and a re-register resumes it. → 410.
	ErrEvicted = errors.New("fleet: session evicted for idleness; re-register to resume from the parked checkpoint")
	// ErrFull means the session cap is reached and the device has no
	// existing session to replace. → 503 + Retry-After.
	ErrFull = errors.New("fleet: session capacity reached")
	// ErrClosed means the manager has shut down. → 503.
	ErrClosed = errors.New("fleet: manager closed")
)

// BadCheckpointError wraps a checkpoint the manager refused to
// restore — corrupt or mismatched state is a client error, not a
// server failure.
type BadCheckpointError struct{ Err error }

func (e *BadCheckpointError) Error() string {
	return fmt.Sprintf("fleet: checkpoint rejected: %v", e.Err)
}
func (e *BadCheckpointError) Unwrap() error { return e.Err }

// MaxPartitions caps the partition count, mirroring
// plancache.MaxShards.
const MaxPartitions = 256

// DefaultPartitions mirrors plancache.DefaultShards: one partition
// per runnable goroutine removes cross-device contention; the cap
// keeps the fan-in manageable on large hosts. Session routing stays
// stable only within one process lifetime, so the count is free to
// vary with GOMAXPROCS.
func DefaultPartitions() int { return defaultPow2Capped(16) }

// Config tunes one fleet manager.
type Config struct {
	// Partitions is the number of session partitions, rounded up to a
	// power of two. 0 means DefaultPartitions().
	Partitions int
	// MaxSessions caps live sessions across all partitions; a register
	// beyond the cap (for a device with no existing session) fails
	// with ErrFull. 0 means unlimited.
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long, parking their
	// checkpoints for handback on re-register. 0 disables eviction.
	IdleTTL time.Duration
	// ParkedCapacity bounds parked (evicted) checkpoints per
	// partition; the oldest parked entry is dropped when full.
	// 0 means 1024 per partition.
	ParkedCapacity int
	// SweepInterval is how often each partition scans for idle
	// sessions; 0 means max(IdleTTL/4, 1s). Ignored when IdleTTL is 0.
	SweepInterval time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// defaultPow2Capped returns GOMAXPROCS rounded up to a power of two,
// capped.
func defaultPow2Capped(max int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > max {
		n = max
	}
	return n
}

// counters is the manager's monotonic activity record (atomics; read
// by Stats from any goroutine).
type counters struct {
	registered, resumed, replaced, rejected     atomic.Uint64
	ticks, slotReports, replans, replays        atomic.Uint64
	evictions, parkedDrops, drains, drainedSess atomic.Uint64
}

// Stats is a snapshot of the manager's counters and gauges.
type Stats struct {
	// SessionsLive and SessionsParked are current gauges.
	SessionsLive, SessionsParked int
	// Registered counts successful register calls; Resumed those that
	// restored a checkpoint (explicit or parked); Replaced those that
	// displaced an existing live session; Rejected those refused at
	// the session cap.
	Registered, Resumed, Replaced, Rejected uint64
	// Ticks counts tick operations, SlotReports the individual slot
	// reports applied, Replans the reports whose deviation triggered
	// an Algorithm 3 redistribution, and Replays duplicate-seq ticks
	// answered from session memory without re-applying.
	Ticks, SlotReports, Replans, Replays uint64
	// Evictions counts idle-TTL evictions, ParkedDrops parked
	// checkpoints displaced by capacity, Drains drain operations and
	// DrainedSessions the sessions they removed.
	Evictions, ParkedDrops, Drains, DrainedSessions uint64
}

// PartitionStats is one partition's gauges.
type PartitionStats struct {
	// Sessions and Parked are the partition's current session and
	// parked-checkpoint counts.
	Sessions, Parked int
	// Depth is the number of commands queued for the partition's
	// event loop right now.
	Depth int
}

// lifecycle states.
const (
	lifeIdle = iota
	lifeRunning
	lifeClosed
)

// Manager owns the fleet's live sessions.
type Manager struct {
	cfg   Config
	parts []*partition
	mask  uint64
	now   func() time.Time

	live atomic.Int64
	ctr  counters

	mu   sync.Mutex // guards life
	life int

	stop   chan struct{}
	closed atomic.Bool
}

// New validates the configuration and returns a manager. Partition
// goroutines start lazily on first use, so an unused fleet layer
// costs nothing.
func New(cfg Config) (*Manager, error) {
	if cfg.Partitions < 0 || cfg.Partitions > MaxPartitions {
		return nil, fmt.Errorf("fleet: partition count %d outside [0, %d]", cfg.Partitions, MaxPartitions)
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = DefaultPartitions()
	}
	n := 1
	for n < cfg.Partitions {
		n <<= 1
	}
	cfg.Partitions = n
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("fleet: negative session cap %d", cfg.MaxSessions)
	}
	if cfg.IdleTTL < 0 {
		return nil, fmt.Errorf("fleet: negative idle TTL %s", cfg.IdleTTL)
	}
	if cfg.ParkedCapacity == 0 {
		cfg.ParkedCapacity = 1024
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.IdleTTL / 4
		if cfg.SweepInterval < time.Second {
			cfg.SweepInterval = time.Second
		}
	}
	m := &Manager{
		cfg:  cfg,
		mask: uint64(n - 1),
		now:  cfg.Now,
		stop: make(chan struct{}),
	}
	if m.now == nil {
		m.now = time.Now
	}
	m.parts = make([]*partition, n)
	for i := range m.parts {
		m.parts[i] = &partition{
			m:        m,
			id:       i,
			cmds:     make(chan command, partitionQueue),
			exited:   make(chan struct{}),
			sessions: make(map[string]*session),
			parked:   make(map[string]*parkedState),
		}
	}
	return m, nil
}

// partitionQueue is each partition's command-channel depth. A full
// queue applies backpressure to senders (bounded by their contexts),
// and the live depth is exported as dpmd_fleet_partition_depth.
const partitionQueue = 256

// Partitions returns the (power-of-two) partition count.
func (m *Manager) Partitions() int { return len(m.parts) }

// Live returns the current live-session count.
func (m *Manager) Live() int { return int(m.live.Load()) }

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		SessionsLive:    int(m.live.Load()),
		SessionsParked:  int(m.parkedTotal()),
		Registered:      m.ctr.registered.Load(),
		Resumed:         m.ctr.resumed.Load(),
		Replaced:        m.ctr.replaced.Load(),
		Rejected:        m.ctr.rejected.Load(),
		Ticks:           m.ctr.ticks.Load(),
		SlotReports:     m.ctr.slotReports.Load(),
		Replans:         m.ctr.replans.Load(),
		Replays:         m.ctr.replays.Load(),
		Evictions:       m.ctr.evictions.Load(),
		ParkedDrops:     m.ctr.parkedDrops.Load(),
		Drains:          m.ctr.drains.Load(),
		DrainedSessions: m.ctr.drainedSess.Load(),
	}
}

// PartitionStats snapshots each partition's gauges, in partition
// order.
func (m *Manager) PartitionStats() []PartitionStats {
	out := make([]PartitionStats, len(m.parts))
	for i, p := range m.parts {
		out[i] = PartitionStats{
			Sessions: int(p.nSessions.Load()),
			Parked:   int(p.nParked.Load()),
			Depth:    len(p.cmds),
		}
	}
	return out
}

// partitionFor routes a device id to its partition by FNV-1a hash —
// the same routing plancache.Sharded uses for cache keys.
func (m *Manager) partitionFor(deviceID string) *partition {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(deviceID); i++ {
		h ^= uint64(deviceID[i])
		h *= prime64
	}
	return m.parts[h&m.mask]
}

// start launches the partition loops on first use; it reports false
// once the manager is closed. Lazy start keeps an unused fleet layer
// goroutine-free (most servers, benchmarks and tests never touch it).
func (m *Manager) start() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.life {
	case lifeClosed:
		return false
	case lifeIdle:
		m.life = lifeRunning
		for _, p := range m.parts {
			go p.loop()
		}
	}
	return true
}

// command is one unit of work executed inside a partition's event
// loop. run executes single-writer against the partition's state;
// done is closed when it has run.
type command struct {
	run  func(p *partition)
	done chan struct{}
}

// session is one device's live manager. All fields are owned by the
// partition goroutine.
type session struct {
	deviceID   string
	mgr        *dpm.Manager
	lastActive time.Time

	// lastSeq and lastResult memoize the most recent deduplicated
	// tick, so a retry of a tick whose response was lost on the wire
	// replays the answer instead of double-applying the slot reports.
	lastSeq    uint64
	lastResult TickResult
}

// parkedState is an evicted session's handed-back checkpoint.
type parkedState struct {
	state    dpm.State
	slot     int
	charge   float64
	parkedAt time.Time
}

// partition is one goroutine-owned shard of the session table.
type partition struct {
	m      *Manager
	id     int
	cmds   chan command
	exited chan struct{}

	// Owned by the loop goroutine.
	sessions    map[string]*session
	parked      map[string]*parkedState
	parkedOrder []string

	// Gauges mirrored for lock-free Stats reads.
	nSessions atomic.Int64
	nParked   atomic.Int64
}

// loop is the partition's single-writer event loop.
func (p *partition) loop() {
	var sweep <-chan time.Time
	if p.m.cfg.IdleTTL > 0 {
		t := time.NewTicker(p.m.cfg.SweepInterval)
		defer t.Stop()
		sweep = t.C
	}
	for {
		select {
		case cmd := <-p.cmds:
			cmd.run(p)
			close(cmd.done)
		case <-sweep:
			p.sweepIdle(p.m.now())
		case <-p.m.stop:
			close(p.exited)
			return
		}
	}
}

// do runs fn inside the partition loop and waits for it, honoring ctx
// and manager shutdown.
func (p *partition) do(ctx context.Context, fn func(p *partition)) error {
	if !p.m.start() {
		return ErrClosed
	}
	cmd := command{run: fn, done: make(chan struct{})}
	select {
	case p.cmds <- cmd:
	case <-p.exited:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-cmd.done:
		return nil
	case <-p.exited:
		// The loop exited with the command still queued; it will never
		// run.
		select {
		case <-cmd.done:
			return nil
		default:
			return ErrClosed
		}
	}
}

// sweepIdle evicts sessions idle past the TTL, parking their
// checkpoints.
func (p *partition) sweepIdle(now time.Time) {
	ttl := p.m.cfg.IdleTTL
	if ttl <= 0 {
		return
	}
	for id, s := range p.sessions {
		if now.Sub(s.lastActive) >= ttl {
			p.park(id, s, now)
		}
	}
}

// park moves one session's checkpoint into the parked table and
// removes the live session.
func (p *partition) park(id string, s *session, now time.Time) {
	if _, exists := p.parked[id]; !exists {
		for len(p.parked) >= p.parkedCap() {
			oldest := p.parkedOrder[0]
			p.parkedOrder = p.parkedOrder[1:]
			if _, ok := p.parked[oldest]; ok {
				delete(p.parked, oldest)
				p.m.ctr.parkedDrops.Add(1)
			}
		}
		p.parkedOrder = append(p.parkedOrder, id)
	}
	p.parked[id] = &parkedState{
		state:    s.mgr.Checkpoint(),
		slot:     s.mgr.Slot(),
		charge:   s.mgr.Charge(),
		parkedAt: now,
	}
	delete(p.sessions, id)
	p.m.live.Add(-1)
	p.nSessions.Store(int64(len(p.sessions)))
	p.nParked.Store(int64(len(p.parked)))
	p.m.ctr.evictions.Add(1)
}

// parkedCap is this partition's share of the parked capacity.
func (p *partition) parkedCap() int {
	per := p.m.cfg.ParkedCapacity / len(p.m.parts)
	if per < 1 {
		per = 1
	}
	return per
}

// unpark removes and returns a parked checkpoint.
func (p *partition) unpark(id string) (*parkedState, bool) {
	ps, ok := p.parked[id]
	if !ok {
		return nil, false
	}
	delete(p.parked, id)
	// parkedOrder may still name id; the capacity loop in park
	// tolerates stale entries.
	p.nParked.Store(int64(len(p.parked)))
	return ps, true
}

// parkedTotal recounts parked entries across partitions. Called only
// from partition loops right after a mutation; each nParked gauge is
// authoritative per partition.
func (m *Manager) parkedTotal() int64 {
	var n int64
	for _, p := range m.parts {
		n += p.nParked.Load()
	}
	return n
}

// RegisterSpec asks for a session.
type RegisterSpec struct {
	// DeviceID identifies the device; it is the session key.
	DeviceID string
	// Scenario is the device's planning environment (validated).
	Scenario trace.Scenario
	// Params is the Algorithm 2 hardware configuration.
	Params params.Config
	// Policy selects the Algorithm 3 redistribution flavor.
	Policy dpm.RedistributePolicy
	// Planner names the strategy backend the session's initial plan
	// comes from ("" = the paper's Algorithm 1); a restored
	// checkpoint's plan takes precedence.
	Planner string
	// State, when non-nil, is a checkpoint to resume from — a device
	// migrating in from the stateless /v1/replan flow, or re-joining
	// after a drain handed its checkpoint back.
	State *dpm.State
}

// RegisterResult reports the session's post-register state.
type RegisterResult struct {
	// Slot, ChargeJ and Plan mirror the session manager.
	Slot    int
	ChargeJ float64
	Plan    []float64
	// Resumed reports that a checkpoint (explicit or parked) was
	// restored; Replaced that an existing live session was displaced.
	Resumed  bool
	Replaced bool
}

// MaxDeviceID bounds device-id length.
const MaxDeviceID = 256

// ValidateDeviceID applies the device-id bounds.
func ValidateDeviceID(id string) error {
	if id == "" {
		return scenario.Errorf("deviceId is required")
	}
	if len(id) > MaxDeviceID {
		return scenario.Errorf("deviceId length %d exceeds %d", len(id), MaxDeviceID)
	}
	return nil
}

// Register creates (or replaces) the device's session. The manager is
// constructed — Algorithm 1 plus the memoized Algorithm 2 table — in
// the caller's goroutine so partition loops stay fast; only the
// install runs inside the partition. An explicit checkpoint that the
// manager rejects fails with *BadCheckpointError before any session
// state changes. With no explicit checkpoint, a parked (evicted)
// checkpoint for the device is restored and consumed — the eviction
// handback path.
func (m *Manager) Register(ctx context.Context, spec RegisterSpec) (RegisterResult, error) {
	if m.closed.Load() {
		return RegisterResult{}, ErrClosed
	}
	if err := ValidateDeviceID(spec.DeviceID); err != nil {
		return RegisterResult{}, err
	}
	if err := scenario.Validate(spec.Scenario); err != nil {
		return RegisterResult{}, err
	}
	_, span := obs.StartSpan(ctx, "fleet.register")
	defer span.End()
	mgr, err := pipeline.NewManager(ctx, spec.Planner, spec.Scenario, spec.Params, spec.Policy)
	if err != nil {
		return RegisterResult{}, err
	}
	if spec.State != nil {
		if err := mgr.Restore(*spec.State); err != nil {
			return RegisterResult{}, &BadCheckpointError{Err: err}
		}
	}
	// Sessions live for hours; the Algorithm 1 iteration history is
	// presentation-only and would multiply per-session memory at
	// fleet scale.
	mgr.ReleaseInitial()

	var (
		res  RegisterResult
		rerr error
	)
	p := m.partitionFor(spec.DeviceID)
	err = p.do(ctx, func(p *partition) {
		_, replaced := p.sessions[spec.DeviceID]
		if !replaced {
			if n, max := m.live.Add(1), int64(m.cfg.MaxSessions); max > 0 && n > max {
				m.live.Add(-1)
				m.ctr.rejected.Add(1)
				rerr = ErrFull
				return
			}
		}
		resumed := spec.State != nil
		if spec.State == nil {
			if ps, ok := p.unpark(spec.DeviceID); ok {
				// The parked checkpoint came from a manager with the same
				// session key; a restore failure means the device
				// re-registered with a different scenario — start fresh.
				if err := mgr.Restore(ps.state); err == nil {
					resumed = true
				}
			}
		} else {
			// An explicit checkpoint supersedes any parked one.
			p.unpark(spec.DeviceID)
		}
		p.sessions[spec.DeviceID] = &session{
			deviceID:   spec.DeviceID,
			mgr:        mgr,
			lastActive: m.now(),
		}
		p.nSessions.Store(int64(len(p.sessions)))
		m.ctr.registered.Add(1)
		if resumed {
			m.ctr.resumed.Add(1)
		}
		if replaced {
			m.ctr.replaced.Add(1)
		}
		res = RegisterResult{
			Slot:     mgr.Slot(),
			ChargeJ:  mgr.Charge(),
			Plan:     mgr.PlanSnapshot(),
			Resumed:  resumed,
			Replaced: replaced,
		}
	})
	if err != nil {
		return RegisterResult{}, err
	}
	if rerr != nil {
		return RegisterResult{}, rerr
	}
	span.SetAttr("resumed", res.Resumed)
	return res, nil
}

// TickSpec streams one device's completed-slot telemetry.
type TickSpec struct {
	// DeviceID names the session.
	DeviceID string
	// Seq, when non-zero, deduplicates retries: a tick repeating the
	// session's last seq is answered from memory without re-applying
	// its reports. Clients retrying ticks over a lossy wire must set
	// it.
	Seq uint64
	// Reports are the completed slots, oldest first (same bounds as
	// /v1/replan).
	Reports []pipeline.SlotReport
	// IncludeState returns the full checkpoint with the result — the
	// escape hatch back to the stateless flow.
	IncludeState bool
}

// TickResult is the delta replan a tick returns.
type TickResult struct {
	// Slot, ChargeJ and Plan mirror the session manager after the
	// reports are applied.
	Slot    int
	ChargeJ float64
	Plan    []float64
	// Replans counts the reports whose deviation triggered an
	// Algorithm 3 redistribution.
	Replans int
	// Replayed reports a duplicate-seq tick answered from session
	// memory.
	Replayed bool
	// State is the checkpoint, only when requested.
	State *dpm.State
}

// Tick applies the reports inside the session's partition and returns
// the updated plan. Unknown devices fail with ErrUnknownDevice;
// idle-evicted ones with ErrEvicted (their checkpoint is parked and a
// re-register resumes it).
func (m *Manager) Tick(ctx context.Context, spec TickSpec) (TickResult, error) {
	if m.closed.Load() {
		return TickResult{}, ErrClosed
	}
	if err := ValidateDeviceID(spec.DeviceID); err != nil {
		return TickResult{}, err
	}
	if err := pipeline.ValidateReports(spec.Reports); err != nil {
		return TickResult{}, err
	}
	ctx, span := obs.StartSpan(ctx, "fleet.tick")
	defer span.End()
	span.SetAttr("slots", len(spec.Reports))
	var (
		res  TickResult
		rerr error
	)
	p := m.partitionFor(spec.DeviceID)
	err := p.do(ctx, func(p *partition) {
		s, ok := p.sessions[spec.DeviceID]
		if !ok {
			if _, parked := p.parked[spec.DeviceID]; parked {
				rerr = ErrEvicted
			} else {
				rerr = ErrUnknownDevice
			}
			return
		}
		s.lastActive = m.now()
		if spec.Seq != 0 && spec.Seq == s.lastSeq {
			res = s.lastResult
			res.Replayed = true
			if !spec.IncludeState {
				res.State = nil
			}
			m.ctr.replays.Add(1)
			return
		}
		_, rspan := obs.StartSpan(ctx, "fleet.replan")
		replans := 0
		for _, rep := range spec.Reports {
			if s.mgr.EndSlotReplan(rep.UsedJ, rep.SuppliedJ) {
				replans++
			}
		}
		rspan.SetAttr("replans", replans)
		rspan.End()
		res = TickResult{
			Slot:    s.mgr.Slot(),
			ChargeJ: s.mgr.Charge(),
			Plan:    s.mgr.PlanSnapshot(),
			Replans: replans,
		}
		if spec.IncludeState || spec.Seq != 0 {
			st := s.mgr.Checkpoint()
			res.State = &st
		}
		if spec.Seq != 0 {
			s.lastSeq = spec.Seq
			s.lastResult = res
		}
		if !spec.IncludeState {
			res.State = nil
		}
		m.ctr.ticks.Add(1)
		m.ctr.slotReports.Add(uint64(len(spec.Reports)))
		m.ctr.replans.Add(uint64(replans))
	})
	if err != nil {
		return TickResult{}, err
	}
	if rerr != nil {
		return TickResult{}, rerr
	}
	return res, nil
}

// Drained is one removed session's final checkpoint.
type Drained struct {
	// DeviceID names the session.
	DeviceID string
	// Slot and ChargeJ summarize where it stopped.
	Slot    int
	ChargeJ float64
	// State is the full checkpoint.
	State dpm.State
	// Evicted marks checkpoints recovered from the parked (idle-
	// evicted) table rather than a live session.
	Evicted bool
}

// Drain removes every session — live and parked — and returns each
// final checkpoint exactly once, sorted by device id. Each
// partition's removal is atomic under its single-writer loop:
// a concurrent tick is either applied before the drain (and included
// in the checkpoint) or answered ErrUnknownDevice after it. The
// manager stays usable; devices may re-register.
func (m *Manager) Drain(ctx context.Context) ([]Drained, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	_, span := obs.StartSpan(ctx, "fleet.drain")
	defer span.End()
	out := make([][]Drained, len(m.parts))
	for i, p := range m.parts {
		i, p := i, p
		if err := p.do(ctx, func(p *partition) {
			out[i] = p.drainLocked()
		}); err != nil {
			return nil, err
		}
	}
	var all []Drained
	for _, d := range out {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].DeviceID < all[j].DeviceID })
	m.ctr.drains.Add(1)
	m.ctr.drainedSess.Add(uint64(len(all)))
	span.SetAttr("sessions", len(all))
	return all, nil
}

// drainLocked removes and checkpoints every session and parked entry
// in one partition. Runs inside the loop goroutine.
func (p *partition) drainLocked() []Drained {
	out := make([]Drained, 0, len(p.sessions)+len(p.parked))
	for id, s := range p.sessions {
		out = append(out, Drained{
			DeviceID: id,
			Slot:     s.mgr.Slot(),
			ChargeJ:  s.mgr.Charge(),
			State:    s.mgr.Checkpoint(),
		})
		delete(p.sessions, id)
		p.m.live.Add(-1)
	}
	for id, ps := range p.parked {
		out = append(out, Drained{
			DeviceID: id,
			Slot:     ps.slot,
			ChargeJ:  ps.charge,
			State:    ps.state,
			Evicted:  true,
		})
		delete(p.parked, id)
	}
	p.parkedOrder = p.parkedOrder[:0]
	p.nSessions.Store(0)
	p.nParked.Store(0)
	return out
}

// SweepNow forces an idle sweep on every partition — deterministic
// eviction for tests and operational tooling.
func (m *Manager) SweepNow(ctx context.Context) error {
	if m.closed.Load() {
		return ErrClosed
	}
	now := m.now()
	for _, p := range m.parts {
		if err := p.do(ctx, func(p *partition) { p.sweepIdle(now) }); err != nil {
			return err
		}
	}
	return nil
}

// Close stops every partition goroutine and returns the final
// checkpoints of whatever sessions remained — the shutdown drain. It
// is idempotent; after Close every operation fails with ErrClosed.
// Callers that want the checkpoints on an orderly shutdown should
// Drain first (over HTTP: POST /v1/fleet/drain during the drain-grace
// window), since Close's return value has nowhere to go once the
// listener is down.
func (m *Manager) Close() []Drained {
	m.mu.Lock()
	if m.life == lifeClosed {
		m.mu.Unlock()
		return nil
	}
	wasRunning := m.life == lifeRunning
	m.life = lifeClosed
	m.closed.Store(true)
	m.mu.Unlock()

	close(m.stop)
	if wasRunning {
		// Each loop finishes any in-flight command, observes stop, and
		// closes exited; queued-but-unserved senders get ErrClosed via
		// the same channel.
		for _, p := range m.parts {
			<-p.exited
		}
	}
	// No goroutine owns the partition maps anymore (loops exited, or
	// never started and do() now refuses), so direct reads are safe.
	var out []Drained
	for _, p := range m.parts {
		out = append(out, p.drainLocked()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeviceID < out[j].DeviceID })
	return out
}
