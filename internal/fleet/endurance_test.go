package fleet

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dpm/internal/chaostest"
	"dpm/internal/pipeline"
	"dpm/internal/trace"
)

// TestFleetEndurance is the tentpole proof: a large device population
// registers, streams full charging periods of telemetry, drains, and
// closes — with every session accounted for and zero goroutines
// leaked. Short mode (CI, under -race) runs 5 000 devices; full mode
// runs 100 000. Sessions deliberately skip Seq so the test also pins
// the no-dedup memory profile.
func TestFleetEndurance(t *testing.T) {
	devices := 100_000
	if testing.Short() {
		devices = 5_000
	}
	before := chaostest.SnapshotGoroutines()
	ctx := context.Background()
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := trace.ScenarioI()
	pcfg := testParams(t)
	slots := sc.Charging.Len()

	// Register the whole population, then tick every device through a
	// full charging period, from a bounded worker pool.
	workers := 4 * m.Partitions()
	var failed sync.Map
	pipeline.ForEach(ctx, devices, workers, func(ctx context.Context, i int) {
		id := fmt.Sprintf("device-%06d", i)
		_, err := m.Register(ctx, RegisterSpec{
			DeviceID: id,
			Scenario: sc,
			Params:   pcfg,
		})
		if err != nil {
			failed.Store(id, fmt.Errorf("register: %w", err))
			return
		}
		for s := 0; s < slots; s++ {
			// Each device deviates differently so redistributions differ
			// across the fleet.
			rep := pipeline.SlotReport{
				UsedJ:     8 + float64((i+s)%7)*0.5,
				SuppliedJ: 9 + float64((i*3+s)%5)*0.7,
			}
			if _, err := m.Tick(ctx, TickSpec{DeviceID: id, Reports: []pipeline.SlotReport{rep}}); err != nil {
				failed.Store(id, fmt.Errorf("tick %d: %w", s, err))
				return
			}
		}
	})
	failed.Range(func(k, v any) bool {
		t.Errorf("%s: %v", k, v)
		return false
	})
	if t.Failed() {
		t.FailNow()
	}
	if got := m.Live(); got != devices {
		t.Fatalf("live=%d, want %d", got, devices)
	}
	st := m.Stats()
	if want := uint64(devices * slots); st.SlotReports != want {
		t.Fatalf("slotReports=%d, want %d", st.SlotReports, want)
	}

	drained, err := m.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) != devices {
		t.Fatalf("drained %d sessions, want %d", len(drained), devices)
	}
	for _, d := range drained {
		if d.Slot != slots {
			t.Fatalf("%s drained at slot %d, want %d", d.DeviceID, d.Slot, slots)
		}
	}
	if m.Live() != 0 {
		t.Fatalf("live=%d after drain, want 0", m.Live())
	}
	if out := m.Close(); len(out) != 0 {
		t.Fatalf("close found %d sessions after drain", len(out))
	}
	chaostest.CheckGoroutines(t, before)
}
