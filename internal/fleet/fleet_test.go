package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpm/internal/dpm"
	"dpm/internal/params"
	"dpm/internal/pipeline"
	"dpm/internal/scenario"
	"dpm/internal/trace"
)

// testParams returns the default PAMA hardware configuration.
func testParams(t testing.TB) params.Config {
	t.Helper()
	pcfg, err := (*scenario.Hardware)(nil).WithDefaults().ParamsConfig()
	if err != nil {
		t.Fatal(err)
	}
	return pcfg
}

// newTestManager builds a manager and closes it with the test.
func newTestManager(t testing.TB, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// registerSpec is the canonical Scenario I session.
func registerSpec(t testing.TB, device string) RegisterSpec {
	t.Helper()
	return RegisterSpec{
		DeviceID: device,
		Scenario: trace.ScenarioI(),
		Params:   testParams(t),
		Policy:   dpm.Proportional,
	}
}

// TestTickParityWithReplay is the core semantic pin: a session fed N
// slot reports one tick at a time must produce *identical* floats —
// plan, charge, slot, checkpoint — to the stateless pipeline.Replay
// path round-tripping a checkpoint per call, because both run the same
// dpm.Manager code over the same state.
func TestTickParityWithReplay(t *testing.T) {
	ctx := context.Background()
	m := newTestManager(t, Config{Partitions: 4})
	spec := registerSpec(t, "dev-parity")
	if _, err := m.Register(ctx, spec); err != nil {
		t.Fatal(err)
	}

	var state *dpm.State
	for step := 0; step < 25; step++ {
		rep := pipeline.SlotReport{
			UsedJ:     9.0 + float64(step%7)*0.83,
			SuppliedJ: 10.0 + float64(step%5)*1.21,
		}
		got, err := m.Tick(ctx, TickSpec{
			DeviceID:     spec.DeviceID,
			Reports:      []pipeline.SlotReport{rep},
			IncludeState: true,
		})
		if err != nil {
			t.Fatalf("tick %d: %v", step, err)
		}
		mgr, err := pipeline.Replay(ctx, spec.Scenario, spec.Params, spec.Policy, state, []pipeline.SlotReport{rep})
		if err != nil {
			t.Fatalf("replay %d: %v", step, err)
		}
		wantPlan := mgr.PlanSnapshot()
		if len(got.Plan) != len(wantPlan) {
			t.Fatalf("tick %d: plan length %d, want %d", step, len(got.Plan), len(wantPlan))
		}
		for i := range wantPlan {
			if got.Plan[i] != wantPlan[i] {
				t.Fatalf("tick %d: plan[%d] = %g, want %g", step, i, got.Plan[i], wantPlan[i])
			}
		}
		if got.ChargeJ != mgr.Charge() || got.Slot != mgr.Slot() {
			t.Fatalf("tick %d: (charge, slot) = (%g, %d), want (%g, %d)",
				step, got.ChargeJ, got.Slot, mgr.Charge(), mgr.Slot())
		}
		st := mgr.Checkpoint()
		state = &st
		if got.State == nil {
			t.Fatalf("tick %d: missing requested state", step)
		}
		if got.State.Slot != st.Slot || got.State.Charge != st.Charge {
			t.Fatalf("tick %d: checkpoint (slot %d charge %g), want (%d %g)",
				step, got.State.Slot, got.State.Charge, st.Slot, st.Charge)
		}
		for i := range st.Plan {
			if got.State.Plan[i] != st.Plan[i] {
				t.Fatalf("tick %d: checkpoint plan[%d] = %g, want %g", step, i, got.State.Plan[i], st.Plan[i])
			}
		}
	}
}

// TestMultiReportTick checks a batched tick (several reports at once)
// against the same reports applied one by one.
func TestMultiReportTick(t *testing.T) {
	ctx := context.Background()
	m := newTestManager(t, Config{Partitions: 1})
	one := registerSpec(t, "dev-one-by-one")
	many := registerSpec(t, "dev-batched")
	if _, err := m.Register(ctx, one); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(ctx, many); err != nil {
		t.Fatal(err)
	}
	reports := []pipeline.SlotReport{
		{UsedJ: 9.5, SuppliedJ: 11.0},
		{UsedJ: 8.0, SuppliedJ: 10.0},
		{UsedJ: 12.0, SuppliedJ: 9.0},
	}
	var last TickResult
	for _, rep := range reports {
		res, err := m.Tick(ctx, TickSpec{DeviceID: one.DeviceID, Reports: []pipeline.SlotReport{rep}})
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	batched, err := m.Tick(ctx, TickSpec{DeviceID: many.DeviceID, Reports: reports})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Slot != last.Slot || batched.ChargeJ != last.ChargeJ {
		t.Fatalf("batched (slot %d charge %g) != sequential (slot %d charge %g)",
			batched.Slot, batched.ChargeJ, last.Slot, last.ChargeJ)
	}
	for i := range last.Plan {
		if batched.Plan[i] != last.Plan[i] {
			t.Fatalf("plan[%d]: batched %g != sequential %g", i, batched.Plan[i], last.Plan[i])
		}
	}
}

// TestSeqDedup pins the retry contract: a tick repeating the last seq
// is answered from memory — same plan, same slot, no double-apply.
func TestSeqDedup(t *testing.T) {
	ctx := context.Background()
	m := newTestManager(t, Config{Partitions: 1})
	spec := registerSpec(t, "dev-seq")
	if _, err := m.Register(ctx, spec); err != nil {
		t.Fatal(err)
	}
	tick := TickSpec{
		DeviceID: spec.DeviceID,
		Seq:      7,
		Reports:  []pipeline.SlotReport{{UsedJ: 9.5, SuppliedJ: 11.0}},
	}
	first, err := m.Tick(ctx, tick)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed {
		t.Fatal("first tick marked replayed")
	}
	second, err := m.Tick(ctx, tick)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Replayed {
		t.Fatal("duplicate-seq tick not replayed")
	}
	if second.Slot != first.Slot || second.ChargeJ != first.ChargeJ {
		t.Fatalf("replayed (slot %d charge %g) != original (slot %d charge %g)",
			second.Slot, second.ChargeJ, first.Slot, first.ChargeJ)
	}
	// A replay with IncludeState gets the memoized checkpoint even
	// though the original tick did not ask for it.
	withState, err := m.Tick(ctx, TickSpec{DeviceID: tick.DeviceID, Seq: 7, Reports: tick.Reports, IncludeState: true})
	if err != nil {
		t.Fatal(err)
	}
	if withState.State == nil || withState.State.Slot != first.Slot {
		t.Fatal("replayed tick with includeState missing the memoized checkpoint")
	}
	if got := m.Stats(); got.Replays != 2 || got.Ticks != 1 {
		t.Fatalf("stats ticks=%d replays=%d, want 1 and 2", got.Ticks, got.Replays)
	}
}

// TestCorruptCheckpoint: a register carrying a checkpoint the manager
// refuses must fail with *BadCheckpointError (the server's structured
// 400) before any session state changes.
func TestCorruptCheckpoint(t *testing.T) {
	ctx := context.Background()
	m := newTestManager(t, Config{Partitions: 1})
	spec := registerSpec(t, "dev-corrupt")
	spec.State = &dpm.State{
		Plan:   []float64{math.NaN(), 1, 2},
		Slot:   -3,
		Charge: math.Inf(1),
	}
	_, err := m.Register(ctx, spec)
	var bad *BadCheckpointError
	if !errors.As(err, &bad) {
		t.Fatalf("got %v, want *BadCheckpointError", err)
	}
	if m.Live() != 0 {
		t.Fatalf("%d live sessions after rejected register", m.Live())
	}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: spec.DeviceID, Reports: []pipeline.SlotReport{{UsedJ: 1, SuppliedJ: 1}}}); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("tick after rejected register: %v, want ErrUnknownDevice", err)
	}
}

// TestEvictReregisterResume: an idle-evicted session's checkpoint is
// parked; ticking it answers ErrEvicted; re-registering without a
// checkpoint resumes it byte-identically to an uninterrupted control
// session.
func TestEvictReregisterResume(t *testing.T) {
	ctx := context.Background()
	clock := time.Unix(1700000000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	m := newTestManager(t, Config{Partitions: 1, IdleTTL: time.Minute, Now: now})
	evicted := registerSpec(t, "dev-evicted")
	control := registerSpec(t, "dev-control")
	if _, err := m.Register(ctx, evicted); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(ctx, control); err != nil {
		t.Fatal(err)
	}
	rep := []pipeline.SlotReport{{UsedJ: 9.5, SuppliedJ: 11.0}}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: evicted.DeviceID, Reports: rep}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: control.DeviceID, Reports: rep}); err != nil {
		t.Fatal(err)
	}

	// Only the evicted device goes idle; the control keeps ticking its
	// clock forward via lastActive.
	advance(30 * time.Second)
	if _, err := m.Tick(ctx, TickSpec{DeviceID: control.DeviceID, Reports: []pipeline.SlotReport{{UsedJ: 8, SuppliedJ: 10}}}); err != nil {
		t.Fatal(err)
	}
	advance(45 * time.Second)
	if err := m.SweepNow(ctx); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Evictions != 1 || st.SessionsParked != 1 {
		t.Fatalf("evictions=%d parked=%d, want 1 and 1", st.Evictions, st.SessionsParked)
	}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: evicted.DeviceID, Reports: rep}); !errors.Is(err, ErrEvicted) {
		t.Fatalf("tick of evicted session: %v, want ErrEvicted", err)
	}

	// Handback: re-register with no checkpoint resumes the parked one.
	res, err := m.Register(ctx, registerSpec(t, evicted.DeviceID))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("re-register did not resume the parked checkpoint")
	}
	if res.Slot != 1 {
		t.Fatalf("resumed at slot %d, want 1", res.Slot)
	}
	if st := m.Stats(); st.SessionsParked != 0 {
		t.Fatalf("parked=%d after handback, want 0", st.SessionsParked)
	}

	// From here both sessions must evolve identically: the control
	// applied {9.5, 11.0} then {8, 10}; catch the resumed one up with
	// the same second report and compare plans exactly.
	caughtUp, err := m.Tick(ctx, TickSpec{DeviceID: evicted.DeviceID, Reports: []pipeline.SlotReport{{UsedJ: 8, SuppliedJ: 10}}, IncludeState: true})
	if err != nil {
		t.Fatal(err)
	}
	controlNow, err := m.Tick(ctx, TickSpec{DeviceID: control.DeviceID, Reports: []pipeline.SlotReport{{UsedJ: 7, SuppliedJ: 7}}, IncludeState: true})
	if err != nil {
		t.Fatal(err)
	}
	// controlNow has one extra slot; compare the resumed session
	// against the control's *previous* checkpoint instead: rebuild it
	// from the stateless path.
	mgr, err := pipeline.Replay(ctx, control.Scenario, control.Params, control.Policy, nil, []pipeline.SlotReport{
		{UsedJ: 9.5, SuppliedJ: 11.0}, {UsedJ: 8, SuppliedJ: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPlan := mgr.PlanSnapshot()
	for i := range wantPlan {
		if caughtUp.Plan[i] != wantPlan[i] {
			t.Fatalf("resumed plan[%d] = %g, want %g (eviction broke continuity)", i, caughtUp.Plan[i], wantPlan[i])
		}
	}
	if caughtUp.Slot != mgr.Slot() || caughtUp.ChargeJ != mgr.Charge() {
		t.Fatalf("resumed (slot %d charge %g), want (%d %g)", caughtUp.Slot, caughtUp.ChargeJ, mgr.Slot(), mgr.Charge())
	}
	_ = controlNow
}

// TestExplicitStateSupersedesParked: a register carrying its own
// checkpoint consumes (discards) any parked one.
func TestExplicitStateSupersedesParked(t *testing.T) {
	ctx := context.Background()
	clock := time.Unix(1700000000, 0)
	var mu sync.Mutex
	m := newTestManager(t, Config{Partitions: 1, IdleTTL: time.Minute, Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}})
	spec := registerSpec(t, "dev-supersede")
	if _, err := m.Register(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: spec.DeviceID, Reports: []pipeline.SlotReport{{UsedJ: 9.5, SuppliedJ: 11}}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	clock = clock.Add(2 * time.Minute)
	mu.Unlock()
	if err := m.SweepNow(ctx); err != nil {
		t.Fatal(err)
	}
	// Re-register with an explicit fresh-start checkpoint (nil state
	// would resume the parked slot-1 state).
	fresh, err := dpm.New(pipeline.ManagerConfig(spec.Scenario, spec.Params, spec.Policy))
	if err != nil {
		t.Fatal(err)
	}
	st := fresh.Checkpoint()
	spec.State = &st
	res, err := m.Register(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slot != 0 {
		t.Fatalf("explicit slot-0 register resumed the parked state at slot %d", res.Slot)
	}
	if st := m.Stats(); st.SessionsParked != 0 {
		t.Fatalf("parked=%d, want 0 (superseded checkpoint must not linger)", st.SessionsParked)
	}
}

// TestSessionCap: registers beyond MaxSessions fail with ErrFull, but
// a replacement register for a live device always succeeds.
func TestSessionCap(t *testing.T) {
	ctx := context.Background()
	m := newTestManager(t, Config{Partitions: 2, MaxSessions: 2})
	if _, err := m.Register(ctx, registerSpec(t, "cap-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(ctx, registerSpec(t, "cap-b")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(ctx, registerSpec(t, "cap-c")); !errors.Is(err, ErrFull) {
		t.Fatalf("third register: %v, want ErrFull", err)
	}
	res, err := m.Register(ctx, registerSpec(t, "cap-a"))
	if err != nil {
		t.Fatalf("replacement register: %v", err)
	}
	if !res.Replaced {
		t.Fatal("replacement register not marked replaced")
	}
	if m.Live() != 2 {
		t.Fatalf("live=%d, want 2", m.Live())
	}
	if st := m.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected=%d, want 1", st.Rejected)
	}
	// Draining frees capacity.
	if _, err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(ctx, registerSpec(t, "cap-c")); err != nil {
		t.Fatalf("register after drain: %v", err)
	}
}

// TestDrainExactlyOnceUnderConcurrentTicks: with tickers hammering
// every device, a drain must return each device's checkpoint exactly
// once, and each checkpoint's slot must equal the number of ticks that
// device observed as applied — a tick is either in the checkpoint or
// answered ErrUnknownDevice, never lost, never half-applied.
func TestDrainExactlyOnceUnderConcurrentTicks(t *testing.T) {
	ctx := context.Background()
	m := newTestManager(t, Config{Partitions: 4})
	const devices = 24
	applied := make([]atomic.Int64, devices)
	for d := 0; d < devices; d++ {
		if _, err := m.Register(ctx, registerSpec(t, fmt.Sprintf("drain-%02d", d))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			id := fmt.Sprintf("drain-%02d", d)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := m.Tick(ctx, TickSpec{DeviceID: id, Reports: []pipeline.SlotReport{{UsedJ: 9, SuppliedJ: 10}}})
				if err != nil {
					if errors.Is(err, ErrUnknownDevice) {
						return // drained out from under us — expected
					}
					t.Errorf("tick %s: %v", id, err)
					return
				}
				applied[d].Add(1)
			}
		}(d)
	}
	time.Sleep(20 * time.Millisecond) // let ticks accumulate
	drained, err := m.Drain(ctx)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) != devices {
		t.Fatalf("drained %d sessions, want %d", len(drained), devices)
	}
	seen := make(map[string]bool, devices)
	for _, d := range drained {
		if seen[d.DeviceID] {
			t.Fatalf("device %s drained twice", d.DeviceID)
		}
		seen[d.DeviceID] = true
	}
	for d := 0; d < devices; d++ {
		id := fmt.Sprintf("drain-%02d", d)
		if !seen[id] {
			t.Fatalf("device %s missing from drain", id)
		}
	}
	// Exactly-once accounting: the checkpoint includes precisely the
	// ticks whose responses reported success. (A tick racing the drain
	// either landed before it — counted by the worker before stop — or
	// got ErrUnknownDevice and was not counted.)
	for i, d := range drained {
		var idx int
		if _, err := fmt.Sscanf(d.DeviceID, "drain-%02d", &idx); err != nil {
			t.Fatalf("unexpected device id %q", drained[i].DeviceID)
		}
		if want := applied[idx].Load(); int64(d.Slot) != want {
			t.Fatalf("%s: checkpoint slot %d != %d applied ticks", d.DeviceID, d.Slot, want)
		}
	}
	// Post-drain ticks are 404s, and the fleet stays usable.
	if _, err := m.Tick(ctx, TickSpec{DeviceID: "drain-00", Reports: []pipeline.SlotReport{{UsedJ: 1, SuppliedJ: 1}}}); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("post-drain tick: %v, want ErrUnknownDevice", err)
	}
	if m.Live() != 0 {
		t.Fatalf("live=%d after drain, want 0", m.Live())
	}
}

// TestDrainReturnsParked: parked (idle-evicted) checkpoints drain too,
// marked Evicted, exactly once.
func TestDrainReturnsParked(t *testing.T) {
	ctx := context.Background()
	clock := time.Unix(1700000000, 0)
	var mu sync.Mutex
	m := newTestManager(t, Config{Partitions: 1, IdleTTL: time.Second, Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}})
	if _, err := m.Register(ctx, registerSpec(t, "parked-dev")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(ctx, registerSpec(t, "live-dev")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: "parked-dev", Reports: []pipeline.SlotReport{{UsedJ: 9.5, SuppliedJ: 11}}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	clock = clock.Add(time.Hour)
	mu.Unlock()
	// Evict parked-dev but keep live-dev by touching it after the jump.
	if err := m.SweepNow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(ctx, registerSpec(t, "live-dev")); err != nil {
		t.Fatal(err)
	}
	drained, err := m.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) != 2 {
		t.Fatalf("drained %d, want 2 (one live, one parked)", len(drained))
	}
	var sawParked bool
	for _, d := range drained {
		if d.DeviceID == "parked-dev" {
			sawParked = true
			if !d.Evicted {
				t.Fatal("parked checkpoint not marked evicted")
			}
			if d.Slot != 1 {
				t.Fatalf("parked checkpoint slot %d, want 1", d.Slot)
			}
		}
	}
	if !sawParked {
		t.Fatal("parked checkpoint missing from drain")
	}
}

// TestClosed: after Close every operation fails with ErrClosed, Close
// is idempotent, and the final Close returns remaining checkpoints.
func TestClosed(t *testing.T) {
	ctx := context.Background()
	m, err := New(Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(ctx, registerSpec(t, "closing-dev")); err != nil {
		t.Fatal(err)
	}
	out := m.Close()
	if len(out) != 1 || out[0].DeviceID != "closing-dev" {
		t.Fatalf("close returned %d checkpoints, want the one live session", len(out))
	}
	if again := m.Close(); again != nil {
		t.Fatalf("second close returned %d checkpoints, want none", len(again))
	}
	if _, err := m.Register(ctx, registerSpec(t, "late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: "closing-dev", Reports: []pipeline.SlotReport{{UsedJ: 1, SuppliedJ: 1}}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("tick after close: %v, want ErrClosed", err)
	}
	if _, err := m.Drain(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("drain after close: %v, want ErrClosed", err)
	}
}

// TestCloseNeverStarted: a manager that never served a request has no
// goroutines; Close must not hang.
func TestCloseNeverStarted(t *testing.T) {
	m, err := New(Config{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		m.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close of never-started manager hung")
	}
}

// TestValidation covers the input edges.
func TestValidation(t *testing.T) {
	ctx := context.Background()
	m := newTestManager(t, Config{Partitions: 1})
	if _, err := New(Config{Partitions: -1}); err == nil {
		t.Error("negative partitions accepted")
	}
	if _, err := New(Config{Partitions: MaxPartitions * 2}); err == nil {
		t.Error("oversized partitions accepted")
	}
	if _, err := New(Config{MaxSessions: -1}); err == nil {
		t.Error("negative session cap accepted")
	}
	if _, err := New(Config{IdleTTL: -time.Second}); err == nil {
		t.Error("negative TTL accepted")
	}
	spec := registerSpec(t, "")
	if _, err := m.Register(ctx, spec); err == nil {
		t.Error("empty device id accepted")
	}
	long := make([]byte, MaxDeviceID+1)
	for i := range long {
		long[i] = 'x'
	}
	spec = registerSpec(t, string(long))
	if _, err := m.Register(ctx, spec); err == nil {
		t.Error("oversized device id accepted")
	}
	bad := registerSpec(t, "bad-scenario")
	bad.Scenario = trace.Scenario{}
	if _, err := m.Register(ctx, bad); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: "x"}); err == nil {
		t.Error("tick with no reports accepted")
	}
	if _, err := m.Tick(ctx, TickSpec{DeviceID: "x", Reports: []pipeline.SlotReport{{UsedJ: math.NaN(), SuppliedJ: 1}}}); err == nil {
		t.Error("NaN report accepted")
	}
}

// TestPartitionRouting: default partition counts are powers of two and
// the same device always routes to the same partition.
func TestPartitionRouting(t *testing.T) {
	m := newTestManager(t, Config{Partitions: 5}) // rounds up to 8
	if m.Partitions() != 8 {
		t.Fatalf("partitions=%d, want 8", m.Partitions())
	}
	p1 := m.partitionFor("some-device")
	p2 := m.partitionFor("some-device")
	if p1 != p2 {
		t.Fatal("device routing unstable")
	}
	if def := DefaultPartitions(); def < 1 || def > 16 || def&(def-1) != 0 {
		t.Fatalf("DefaultPartitions()=%d, want a power of two in [1,16]", def)
	}
}

// TestParkedCapacity: the per-partition parked table is bounded; the
// oldest parked checkpoint is dropped when full.
func TestParkedCapacity(t *testing.T) {
	ctx := context.Background()
	clock := time.Unix(1700000000, 0)
	var mu sync.Mutex
	m := newTestManager(t, Config{Partitions: 1, IdleTTL: time.Second, ParkedCapacity: 2, Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}})
	for i := 0; i < 4; i++ {
		if _, err := m.Register(ctx, registerSpec(t, fmt.Sprintf("park-%d", i))); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		clock = clock.Add(time.Hour)
		mu.Unlock()
		if err := m.SweepNow(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.SessionsParked != 2 {
		t.Fatalf("parked=%d, want capacity 2", st.SessionsParked)
	}
	if st.ParkedDrops != 2 {
		t.Fatalf("parkedDrops=%d, want 2", st.ParkedDrops)
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions=%d, want 4", st.Evictions)
	}
}
