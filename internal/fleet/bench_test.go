package fleet

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"dpm/internal/pipeline"
)

// BenchmarkFleetTick measures the steady-state session tick: one slot
// report through the partition event loop and Algorithm 3, no
// checkpoint on either side. This is the per-device per-τ cost the
// fleet layer buys versus the stateless /v1/replan round-trip.
func BenchmarkFleetTick(b *testing.B) {
	ctx := context.Background()
	m := newTestManager(b, Config{})
	spec := registerSpec(b, "bench-device")
	if _, err := m.Register(ctx, spec); err != nil {
		b.Fatal(err)
	}
	rep := []pipeline.SlotReport{{UsedJ: 9.5, SuppliedJ: 11.0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Tick(ctx, TickSpec{DeviceID: spec.DeviceID, Reports: rep}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetTickParallel measures aggregate throughput with many
// devices ticking concurrently across partitions.
func BenchmarkFleetTickParallel(b *testing.B) {
	ctx := context.Background()
	m := newTestManager(b, Config{})
	const devices = 64
	ids := make([]string, devices)
	for i := range ids {
		spec := registerSpec(b, fmt.Sprintf("bench-par-%02d", i))
		ids[i] = spec.DeviceID
		if _, err := m.Register(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
	rep := []pipeline.SlotReport{{UsedJ: 9.5, SuppliedJ: 11.0}}
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := ids[int(next.Add(1))%devices]
		for pb.Next() {
			if _, err := m.Tick(ctx, TickSpec{DeviceID: id, Reports: rep}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
