package forte

import (
	"testing"

	"dpm/internal/signal"
)

func TestClassifyTransientIsDispersed(t *testing.T) {
	dispersed := 0
	for seed := int64(0); seed < 8; seed++ {
		buf, err := signal.Synthesize(signal.Transient, 2048, signal.DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Classify(buf, ClassifierConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if c.Frames == 0 {
			t.Fatal("no frames analyzed")
		}
		if c.Dispersed {
			if c.SweepBinsPerFrame >= 0 {
				t.Errorf("seed %d: dispersed with non-negative slope %g", seed, c.SweepBinsPerFrame)
			}
			dispersed++
		}
	}
	if dispersed < 6 {
		t.Errorf("classified %d/8 transients as dispersed, want ≥ 6", dispersed)
	}
}

func TestClassifyCarrierIsNotDispersed(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		buf, err := signal.Synthesize(signal.Carrier, 2048, signal.DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Classify(buf, ClassifierConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if c.Dispersed {
			t.Errorf("seed %d: carrier classified as dispersed (slope %g)", seed, c.SweepBinsPerFrame)
		}
	}
}

func TestClassifyConfigValidation(t *testing.T) {
	buf, err := signal.Synthesize(signal.Transient, 512, signal.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Classify(buf, ClassifierConfig{FrameLen: 100}); err == nil {
		t.Error("bad frame length must error")
	}
	if _, err := Classify(buf, ClassifierConfig{Hop: -1}); err == nil {
		t.Error("negative hop must error")
	}
	if _, err := Classify(buf, ClassifierConfig{SweepThreshold: -1}); err == nil {
		t.Error("negative threshold must error")
	}
	// Capture shorter than a frame propagates the STFT error.
	if _, err := Classify(buf[:64], ClassifierConfig{FrameLen: 256}); err == nil {
		t.Error("short capture must error")
	}
}

func TestClassifyDegenerateInput(t *testing.T) {
	// All-zero capture: no energetic frames → no fit, not dispersed.
	buf, err := signal.Synthesize(signal.NoiseOnly, 1024, signal.Config{NoiseSigma: 0, TransientAmplitude: 0.1, CarrierAmplitude: 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Classify(buf, ClassifierConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Dispersed {
		t.Error("silence classified as dispersed")
	}
}
