package forte_test

import (
	"fmt"

	"dpm/internal/forte"
	"dpm/internal/signal"
)

// Run the FORTE pipeline on one synthetic capture: trigger,
// fixed-point FFT, spectral-characteristic test.
func ExampleDetector_Process() {
	det, err := forte.NewDetector(2048, forte.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for _, kind := range []signal.Kind{signal.Transient, signal.Carrier, signal.NoiseOnly} {
		buf, err := signal.Synthesize(kind, 2048, signal.DefaultConfig(), 7)
		if err != nil {
			panic(err)
		}
		res, err := det.Process(buf)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9s -> %s\n", kind, res.Verdict)
	}
	// Output:
	// transient -> detected
	// carrier   -> rejected
	// noise     -> no-trigger
}
