package forte

import (
	"fmt"
	"math"

	"dpm/internal/fft"
	"dpm/internal/fixed"
)

// Classification stage: once a capture is *detected*, the FORTE
// follow-on system ([19] in the paper) characterizes the event. The
// single physical parameter a dispersed transient exposes in one
// capture is its sweep rate — ionospheric dispersion makes high
// frequencies arrive first, so the spectrogram's spectral centroid
// drifts downward over the capture. The classifier fits a line to
// the centroid track and reports its slope.

// Classification is the estimated event character.
type Classification struct {
	// SweepBinsPerFrame is the fitted centroid slope: negative for a
	// physically dispersed (downward) sweep, near zero for carriers
	// and noise.
	SweepBinsPerFrame float64
	// Dispersed reports whether the sweep is decisively downward.
	Dispersed bool
	// Frames is the number of spectrogram frames the fit used.
	Frames int
}

// ClassifierConfig tunes the classification stage.
type ClassifierConfig struct {
	// FrameLen is the STFT frame length (power of two); zero means
	// 256.
	FrameLen int
	// Hop is the frame advance; zero means FrameLen/2.
	Hop int
	// SweepThreshold is the |slope| in bins/frame above which the
	// event counts as dispersed; zero means 0.5.
	SweepThreshold float64
}

func (c *ClassifierConfig) defaults() error {
	if c.FrameLen == 0 {
		c.FrameLen = 256
	}
	if !fft.IsPowerOfTwo(c.FrameLen) || c.FrameLen < 8 {
		return fmt.Errorf("forte: invalid classifier frame length %d", c.FrameLen)
	}
	if c.Hop == 0 {
		c.Hop = c.FrameLen / 2
	}
	if c.Hop <= 0 {
		return fmt.Errorf("forte: non-positive hop %d", c.Hop)
	}
	if c.SweepThreshold == 0 {
		c.SweepThreshold = 0.5
	}
	if c.SweepThreshold < 0 {
		return fmt.Errorf("forte: negative sweep threshold %g", c.SweepThreshold)
	}
	return nil
}

// Classify estimates the sweep rate of a detected capture.
func Classify(samples []fixed.Complex, cfg ClassifierConfig) (Classification, error) {
	if err := cfg.defaults(); err != nil {
		return Classification{}, err
	}
	rows, err := fft.STFT(samples, cfg.FrameLen, cfg.Hop)
	if err != nil {
		return Classification{}, err
	}
	track := fft.CentroidTrack(rows)

	// Only frames that actually carry the event vote: the transient
	// sits under a finite envelope, and centroids of noise-only
	// frames would drown the sweep.
	energies := make([]float64, len(rows))
	maxEnergy := 0.0
	for i, row := range rows {
		for _, p := range row {
			energies[i] += p
		}
		maxEnergy = math.Max(maxEnergy, energies[i])
	}
	floor := 0.1 * maxEnergy

	// Least-squares line through the energetic centroid points.
	var n, sumX, sumY, sumXY, sumXX float64
	for i, c := range track {
		if c < 0 || energies[i] < floor {
			continue // empty or noise-only frame
		}
		x := float64(i)
		n++
		sumX += x
		sumY += c
		sumXY += x * c
		sumXX += x * x
	}
	out := Classification{Frames: len(rows)}
	if n < 2 {
		return out, nil
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return out, nil
	}
	slope := (n*sumXY - sumX*sumY) / den
	out.SweepBinsPerFrame = slope
	out.Dispersed = math.Abs(slope) >= cfg.SweepThreshold && slope < 0
	return out, nil
}
