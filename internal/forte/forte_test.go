package forte

import (
	"math"
	"strings"
	"testing"

	"dpm/internal/fixed"
	"dpm/internal/signal"
)

func newDetector(t *testing.T, n int) *Detector {
	t.Helper()
	d, err := NewDetector(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestVerdictString(t *testing.T) {
	if NoTrigger.String() != "no-trigger" || Rejected.String() != "rejected" || Detected.String() != "detected" {
		t.Error("verdict names wrong")
	}
	if Verdict(9).String() != "Verdict(9)" {
		t.Error("unknown verdict formatting wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	cases := []func(*Config){
		func(c *Config) { c.TriggerLevel = -0.1 },
		func(c *Config) { c.TriggerLevel = 1.0 },
		func(c *Config) { c.MinEnergy = -1 },
		func(c *Config) { c.MinOccupiedBins = 0 },
		func(c *Config) { c.OccupancyFraction = 0 },
		func(c *Config) { c.OccupancyFraction = 1 },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := NewDetector(256, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewDetector(100, good); err == nil {
		t.Error("non-power-of-two buffer must be rejected")
	}
}

func TestDetectsTransient(t *testing.T) {
	d := newDetector(t, 2048)
	detected := 0
	for seed := int64(0); seed < 10; seed++ {
		buf, err := signal.Synthesize(signal.Transient, 2048, signal.DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Process(buf)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == Detected {
			detected++
		}
	}
	if detected < 9 {
		t.Errorf("detected %d/10 transients, want ≥ 9", detected)
	}
}

func TestIgnoresNoise(t *testing.T) {
	d := newDetector(t, 2048)
	for seed := int64(0); seed < 10; seed++ {
		buf, err := signal.Synthesize(signal.NoiseOnly, 2048, signal.DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Process(buf)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == Detected {
			t.Errorf("seed %d: noise classified as event (%+v)", seed, res)
		}
	}
}

func TestRejectsCarrier(t *testing.T) {
	d := newDetector(t, 2048)
	rejected := 0
	for seed := int64(0); seed < 10; seed++ {
		buf, err := signal.Synthesize(signal.Carrier, 2048, signal.DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Process(buf)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Detected {
			rejected++
		}
		// A carrier should trip the analogue trigger — that is what
		// makes it an interesting rejection case.
		if res.Verdict == NoTrigger {
			t.Errorf("seed %d: carrier did not trigger", seed)
		}
	}
	if rejected < 9 {
		t.Errorf("rejected %d/10 carriers, want ≥ 9", rejected)
	}
}

func TestProcessLengthMismatch(t *testing.T) {
	d := newDetector(t, 256)
	if _, err := d.Process(make([]fixed.Complex, 128)); err == nil {
		t.Error("wrong buffer length must error")
	}
}

func TestProcessDoesNotMutateInput(t *testing.T) {
	d := newDetector(t, 256)
	buf, err := signal.Synthesize(signal.Transient, 256, signal.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]fixed.Complex(nil), buf...)
	if _, err := d.Process(buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != before[i] {
			t.Fatal("Process mutated its input")
		}
	}
}

func TestTriggered(t *testing.T) {
	d := newDetector(t, 256)
	quiet := make([]fixed.Complex, 256)
	if d.Triggered(quiet) {
		t.Error("silence must not trigger")
	}
	quiet[100] = fixed.CFromFloat(complex(0.5, 0))
	if !d.Triggered(quiet) {
		t.Error("a hot sample must trigger")
	}
}

func TestNoTriggerSkipsFFT(t *testing.T) {
	d := newDetector(t, 256)
	res, err := d.Process(make([]fixed.Complex, 256))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NoTrigger || res.Energy != 0 {
		t.Errorf("silent buffer result = %+v", res)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Record(Result{Verdict: Detected})
	s.Record(Result{Verdict: Rejected})
	s.Record(Result{Verdict: NoTrigger})
	if s.Processed != 3 || s.Triggers != 2 || s.Detections != 1 || s.Rejections != 1 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "processed 3") {
		t.Errorf("String = %q", s.String())
	}
}

func TestDetectorAccessors(t *testing.T) {
	d := newDetector(t, 512)
	if d.Size() != 512 {
		t.Errorf("Size = %d", d.Size())
	}
	if d.Config().MinOccupiedBins != DefaultConfig().MinOccupiedBins {
		t.Error("Config accessor wrong")
	}
}

func TestConfusionMatrix(t *testing.T) {
	var c Confusion
	c.Record(true, Detected)   // TP
	c.Record(true, Rejected)   // FN
	c.Record(true, NoTrigger)  // FN
	c.Record(false, Detected)  // FP
	c.Record(false, Rejected)  // TN
	c.Record(false, NoTrigger) // TN
	if c.TruePositive != 1 || c.FalseNegative != 2 || c.FalsePositive != 1 || c.TrueNegative != 2 {
		t.Errorf("matrix = %+v", c)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Precision(); got != 0.5 {
		t.Errorf("Precision = %g", got)
	}
	if got := c.Recall(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Recall = %g", got)
	}
	if got := c.Accuracy(); got != 0.5 {
		t.Errorf("Accuracy = %g", got)
	}
	if !strings.Contains(c.String(), "TP 1") {
		t.Errorf("String = %q", c.String())
	}
}

func TestConfusionEmptyConventions(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 || c.Accuracy() != 0 {
		t.Errorf("empty conventions wrong: %g %g %g", c.Precision(), c.Recall(), c.Accuracy())
	}
}
