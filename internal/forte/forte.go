// Package forte implements the paper's application: a simplified
// Fast On-Orbit Recording of Transient Events (FORTE) detector. When
// the analogue threshold circuit triggers on raw samples, the digital
// stage runs a fixed-point FFT (about 60% of the system's compute in
// the original) and checks the spectrum for the characteristics of an
// interesting RF event — broadband dispersed energy rather than a
// narrowband carrier or plain noise.
package forte

import (
	"fmt"

	"dpm/internal/fft"
	"dpm/internal/fixed"
)

// Verdict is the detector's classification of one capture buffer.
type Verdict int

const (
	// NoTrigger means the analogue threshold never fired; the
	// digital stage did not run.
	NoTrigger Verdict = iota
	// Rejected means the threshold fired but the spectrum does not
	// look like a dispersed transient.
	Rejected
	// Detected means the buffer contains an interesting RF event.
	Detected
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case NoTrigger:
		return "no-trigger"
	case Rejected:
		return "rejected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Config tunes the detector.
type Config struct {
	// TriggerLevel is the analogue threshold on |sample| (Q15
	// units as a float in [0, 1)). The trigger fires when any raw
	// sample component exceeds it.
	TriggerLevel float64
	// MinEnergy is the minimum total spectral energy for a
	// detection.
	MinEnergy float64
	// MinOccupiedBins is the minimum number of spectrum bins above
	// the occupancy threshold: a dispersed chirp smears energy over
	// many bins, a carrier concentrates it in one or two.
	MinOccupiedBins int
	// OccupancyFraction defines "above threshold": a bin counts as
	// occupied if it carries at least this fraction of the peak
	// bin's power.
	OccupancyFraction float64
}

// DefaultConfig returns thresholds tuned for signal.DefaultConfig
// amplitudes on 2K-sample buffers. With the fixed-point FFT's 1/N
// normalization, band noise at σ = 0.02 carries ≈ 8·10⁻⁴ of spectral
// energy, a default transient ≈ 0.03 and a carrier ≈ 0.09, so the
// 5·10⁻³ energy floor cleanly splits noise from events and the
// occupancy test splits dispersed transients from carriers.
func DefaultConfig() Config {
	return Config{
		TriggerLevel:      0.08,
		MinEnergy:         5e-3,
		MinOccupiedBins:   8,
		OccupancyFraction: 0.05,
	}
}

func (c Config) validate() error {
	if c.TriggerLevel < 0 || c.TriggerLevel >= 1 {
		return fmt.Errorf("forte: trigger level %g outside [0, 1)", c.TriggerLevel)
	}
	if c.MinEnergy < 0 {
		return fmt.Errorf("forte: negative energy threshold %g", c.MinEnergy)
	}
	if c.MinOccupiedBins < 1 {
		return fmt.Errorf("forte: MinOccupiedBins %d < 1", c.MinOccupiedBins)
	}
	if c.OccupancyFraction <= 0 || c.OccupancyFraction >= 1 {
		return fmt.Errorf("forte: occupancy fraction %g outside (0, 1)", c.OccupancyFraction)
	}
	return nil
}

// Result reports one processed buffer.
type Result struct {
	// Verdict is the classification.
	Verdict Verdict
	// Energy is the total spectral energy (0 when the trigger never
	// fired).
	Energy float64
	// OccupiedBins counts spectrum bins above the occupancy
	// threshold.
	OccupiedBins int
	// PeakBin is the index of the strongest bin.
	PeakBin int
}

// Detector is a reusable FORTE pipeline for a fixed buffer size. It
// owns the twiddle table and a scratch buffer, so one Detector per
// goroutine.
type Detector struct {
	cfg     Config
	table   *fft.TwiddleTable
	scratch []fixed.Complex
}

// NewDetector builds a detector for n-sample buffers (n a power of
// two, 2048 in the paper).
func NewDetector(n int, cfg Config) (*Detector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	table, err := fft.NewTwiddleTable(n)
	if err != nil {
		return nil, fmt.Errorf("forte: %w", err)
	}
	return &Detector{cfg: cfg, table: table, scratch: make([]fixed.Complex, n)}, nil
}

// Size returns the buffer length the detector expects.
func (d *Detector) Size() int { return d.table.Size() }

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Triggered implements the analogue threshold circuit: it reports
// whether any sample component magnitude exceeds the trigger level.
func (d *Detector) Triggered(samples []fixed.Complex) bool {
	level := fixed.FromFloat(d.cfg.TriggerLevel)
	for _, s := range samples {
		if fixed.Abs(s.Re) > level || fixed.Abs(s.Im) > level {
			return true
		}
	}
	return false
}

// Process runs the full pipeline on one capture buffer: trigger,
// fixed-point FFT, spectral-characteristic test. The input is not
// modified.
func (d *Detector) Process(samples []fixed.Complex) (Result, error) {
	if len(samples) != d.Size() {
		return Result{}, fmt.Errorf("forte: buffer length %d, want %d", len(samples), d.Size())
	}
	if !d.Triggered(samples) {
		return Result{Verdict: NoTrigger}, nil
	}
	copy(d.scratch, samples)
	if err := d.table.ForwardFixed(d.scratch); err != nil {
		return Result{}, err
	}
	spectrum := fft.PowerSpectrum(d.scratch)

	// Skip the DC bin: envelope offsets are not signal.
	peak, peakBin, total := 0.0, 0, 0.0
	for k := 1; k < len(spectrum); k++ {
		total += spectrum[k]
		if spectrum[k] > peak {
			peak, peakBin = spectrum[k], k
		}
	}
	occupied := 0
	if peak > 0 {
		floor := peak * d.cfg.OccupancyFraction
		for k := 1; k < len(spectrum); k++ {
			if spectrum[k] >= floor {
				occupied++
			}
		}
	}
	res := Result{Energy: total, OccupiedBins: occupied, PeakBin: peakBin}
	if total >= d.cfg.MinEnergy && occupied >= d.cfg.MinOccupiedBins {
		res.Verdict = Detected
	} else {
		res.Verdict = Rejected
	}
	return res, nil
}

// Stats aggregates detector outcomes over a run.
type Stats struct {
	// Processed counts buffers examined.
	Processed int
	// Triggers counts buffers whose analogue stage fired.
	Triggers int
	// Detections counts Detected verdicts.
	Detections int
	// Rejections counts Rejected verdicts.
	Rejections int
}

// Record folds one result into the statistics.
func (s *Stats) Record(r Result) {
	s.Processed++
	switch r.Verdict {
	case Detected:
		s.Triggers++
		s.Detections++
	case Rejected:
		s.Triggers++
		s.Rejections++
	}
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("processed %d, triggered %d, detected %d, rejected %d",
		s.Processed, s.Triggers, s.Detections, s.Rejections)
}

// Confusion is the detector's quality matrix against ground truth
// (available in simulation, where every buffer's class is known).
type Confusion struct {
	// TruePositive counts real transients detected.
	TruePositive int
	// FalseNegative counts real transients missed (rejected or not
	// triggered).
	FalseNegative int
	// FalsePositive counts non-transients (carriers, noise) that
	// were classified as events.
	FalsePositive int
	// TrueNegative counts non-transients correctly not detected.
	TrueNegative int
}

// Record folds one classified buffer into the matrix.
func (c *Confusion) Record(isTransient bool, v Verdict) {
	detected := v == Detected
	switch {
	case isTransient && detected:
		c.TruePositive++
	case isTransient && !detected:
		c.FalseNegative++
	case !isTransient && detected:
		c.FalsePositive++
	default:
		c.TrueNegative++
	}
}

// Total returns the number of recorded buffers.
func (c Confusion) Total() int {
	return c.TruePositive + c.FalseNegative + c.FalsePositive + c.TrueNegative
}

// Precision returns TP/(TP+FP), or 1 when nothing was detected.
func (c Confusion) Precision() float64 {
	det := c.TruePositive + c.FalsePositive
	if det == 0 {
		return 1
	}
	return float64(c.TruePositive) / float64(det)
}

// Recall returns TP/(TP+FN), or 1 when no transients occurred.
func (c Confusion) Recall() float64 {
	pos := c.TruePositive + c.FalseNegative
	if pos == 0 {
		return 1
	}
	return float64(c.TruePositive) / float64(pos)
}

// Accuracy returns the fraction of correct classifications, or 0
// before any recording.
func (c Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c.TruePositive+c.TrueNegative) / float64(total)
}

// String summarizes the matrix.
func (c Confusion) String() string {
	return fmt.Sprintf("TP %d, FN %d, FP %d, TN %d (precision %.2f, recall %.2f)",
		c.TruePositive, c.FalseNegative, c.FalsePositive, c.TrueNegative,
		c.Precision(), c.Recall())
}
