// Package resilience is the overload-survival toolkit shared by the
// dpmd server and its typed client. The paper's §4.3 runtime loop
// assumes the planner answers every τ tick; at fleet scale that
// assumption only holds if the service sheds work it cannot finish in
// time (deadline-aware admission control, Controller) and clients
// ride out transient faults instead of giving up on the first error
// (RetryPolicy/Retrier with exponential backoff and full jitter,
// gated by a per-host circuit Breaker). The pieces are
// transport-agnostic: the server wires the controller in front of its
// worker pool, the client wraps its HTTP round trips, and both expose
// their counters for /metrics.
package resilience

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// BreakerState enumerates the circuit-breaker states.
type BreakerState int32

const (
	// BreakerClosed is the healthy state: every request proceeds.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails requests fast after too many consecutive
	// failures; the circuit stays open for the cooldown.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through after the
	// cooldown; its outcome closes or re-opens the circuit.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// OpenError is returned by Breaker.Allow while the circuit is open
// (or a half-open probe is already in flight). It is retryable: a
// caller on a retry loop should wait RetryIn and try again rather
// than give up.
type OpenError struct {
	// RetryIn is how long until the breaker will next admit a probe.
	RetryIn time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("circuit breaker open; retry in %s", e.RetryIn)
}

// Breaker is one consecutive-failure circuit breaker:
// closed → open after Threshold consecutive failures, open → half-open
// after Cooldown, half-open → closed on a successful probe or back to
// open on a failed one. All methods are safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	// now is the clock, swappable in tests.
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	opens    uint64
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and probes again after cooldown. threshold < 1
// is clamped to 1, cooldown <= 0 gets a 1 s default.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. nil means go (and the
// caller must report the outcome via Success or Failure); an
// *OpenError means fail fast and retry no sooner than RetryIn.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return &OpenError{RetryIn: remaining}
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			// One probe at a time; tell siblings to check back after a
			// probe round trip's worth of cooldown.
			return &OpenError{RetryIn: b.cooldown / 4}
		}
		b.probing = true
		return nil
	}
}

// Success reports a successful request: the circuit closes and the
// failure run resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure reports a failed request: a failed half-open probe re-opens
// the circuit immediately; in the closed state the consecutive-failure
// count advances and trips the breaker at the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.trip()
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.trip()
	}
}

// trip opens the circuit; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.failures = 0
	b.opens++
}

// State returns the current state (resolving an elapsed cooldown to
// half-open is Allow's job; State reports the stored state).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts closed/half-open → open transitions.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// BreakerGroup keys breakers by host so one client instance talking
// to several dpmd deployments isolates their failures.
type BreakerGroup struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerGroup returns an empty group; each host's breaker is
// created on first use with the given threshold and cooldown.
func NewBreakerGroup(threshold int, cooldown time.Duration) *BreakerGroup {
	return &BreakerGroup{threshold: threshold, cooldown: cooldown, m: make(map[string]*Breaker)}
}

// For returns the host's breaker, creating it on first sight.
func (g *BreakerGroup) For(host string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.m[host]
	if b == nil {
		b = NewBreaker(g.threshold, g.cooldown)
		g.m[host] = b
	}
	return b
}

// WriteProm renders the group's state as Prometheus families:
// dpmd_client_breaker_state{host} (0 closed, 1 open, 2 half-open) and
// dpmd_client_breaker_opens_total{host}. Embedders with a /metrics
// page register this next to their other collectors.
func (g *BreakerGroup) WriteProm(w io.Writer) error {
	g.mu.Lock()
	hosts := make([]string, 0, len(g.m))
	for h := range g.m {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	breakers := make([]*Breaker, len(hosts))
	for i, h := range hosts {
		breakers[i] = g.m[h]
	}
	g.mu.Unlock()
	if _, err := fmt.Fprint(w, "# HELP dpmd_client_breaker_state Circuit-breaker state by host (0 closed, 1 open, 2 half-open).\n# TYPE dpmd_client_breaker_state gauge\n"); err != nil {
		return err
	}
	for i, h := range hosts {
		if _, err := fmt.Fprintf(w, "dpmd_client_breaker_state{host=%q} %d\n", h, int32(breakers[i].State())); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "# HELP dpmd_client_breaker_opens_total Circuit-breaker open transitions by host.\n# TYPE dpmd_client_breaker_opens_total counter\n"); err != nil {
		return err
	}
	for i, h := range hosts {
		if _, err := fmt.Fprintf(w, "dpmd_client_breaker_opens_total{host=%q} %d\n", h, breakers[i].Opens()); err != nil {
			return err
		}
	}
	return nil
}
