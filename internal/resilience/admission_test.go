package resilience

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPathAdmits(t *testing.T) {
	c := NewController(2, false)
	slot, d, _ := c.Acquire(context.Background(), "/v1/plan")
	if d != Admitted {
		t.Fatalf("decision %v with free slots, want admitted", d)
	}
	slot.Release()
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Admitted != 1 || snap[0].Endpoint != "/v1/plan" {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap[0].ServiceTimeSeconds <= 0 {
		t.Fatal("release did not record a service-time observation")
	}
}

// TestAdmissionShedsDoomedRequest saturates a 1-slot pool with a
// known service-time estimate and checks a short-deadline request is
// rejected immediately rather than queued to die.
func TestAdmissionShedsDoomedRequest(t *testing.T) {
	c := NewController(1, false)
	// Seed the estimate: ~2 s per request on this endpoint.
	c.state("/v1/plan").observe(2.0)

	hold, _, _ := c.Acquire(context.Background(), "/v1/plan")
	defer hold.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, d, retryAfter := c.Acquire(ctx, "/v1/plan")
	if d != Shed {
		t.Fatalf("decision %v, want shed", d)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Fatalf("shed took %s; it must not wait in the queue", elapsed)
	}
	if retryAfter < time.Second {
		t.Fatalf("retry-after %s below the 1 s floor", retryAfter)
	}
	snap := c.Snapshot()
	if snap[0].Shed != 1 {
		t.Fatalf("shed count %d, want 1: %+v", snap[0].Shed, snap)
	}
}

// TestAdmissionAdmitsWhenDeadlineFits keeps the same saturated pool
// but gives the waiter enough budget: it must queue and be admitted
// once the slot frees.
func TestAdmissionAdmitsWhenDeadlineFits(t *testing.T) {
	c := NewController(1, false)
	c.state("/v1/plan").observe(0.01) // 10 ms estimate

	hold, _, _ := c.Acquire(context.Background(), "/v1/plan")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	admitted := make(chan Decision, 1)
	go func() {
		slot, d, _ := c.Acquire(ctx, "/v1/plan")
		if d == Admitted {
			slot.Release()
		}
		admitted <- d
	}()
	time.Sleep(20 * time.Millisecond) // let it enqueue
	hold.Release()
	select {
	case d := <-admitted:
		if d != Admitted {
			t.Fatalf("decision %v, want admitted", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted after the slot freed")
	}
}

func TestAdmissionExpiresQueuedRequest(t *testing.T) {
	c := NewController(1, false)
	// No estimate yet: shedding cannot trigger, so the request queues
	// and dies at its deadline — the pre-estimate conservative path.
	hold, _, _ := c.Acquire(context.Background(), "/v1/plan")
	defer hold.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, d, retryAfter := c.Acquire(ctx, "/v1/plan")
	if d != Expired {
		t.Fatalf("decision %v, want expired", d)
	}
	if retryAfter < time.Second {
		t.Fatalf("retry-after %s below the 1 s floor", retryAfter)
	}
	if snap := c.Snapshot(); snap[0].Expired != 1 {
		t.Fatalf("expired count %d, want 1", snap[0].Expired)
	}
}

func TestAdmissionExpiredBeforeArrival(t *testing.T) {
	c := NewController(4, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, d, _ := c.Acquire(ctx, "/v1/plan")
	if d != Expired {
		t.Fatalf("decision %v for a dead context, want expired", d)
	}
}

func TestAdmissionNoShedDisablesPrediction(t *testing.T) {
	c := NewController(1, true)
	c.state("/v1/plan").observe(10.0) // huge estimate

	hold, _, _ := c.Acquire(context.Background(), "/v1/plan")
	defer hold.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, d, _ := c.Acquire(ctx, "/v1/plan")
	if d != Shed {
		// With shedding disabled, the doomed request queues and
		// expires instead.
		if d != Expired {
			t.Fatalf("decision %v, want expired", d)
		}
		return
	}
	t.Fatal("noShed controller shed a request")
}

// TestAdmissionConcurrent hammers a small pool from many goroutines
// under -race: every admitted slot must be released, counters must
// add up, and the queue depth must return to zero.
func TestAdmissionConcurrent(t *testing.T) {
	c := NewController(4, false)
	const workers = 32
	var wg sync.WaitGroup
	var admitted, other sync.Map
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			slot, d, _ := c.Acquire(ctx, "/v1/plan")
			if d == Admitted {
				time.Sleep(time.Millisecond)
				slot.Release()
				admitted.Store(i, true)
			} else {
				other.Store(i, d)
			}
		}(i)
	}
	wg.Wait()
	if c.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after drain, want 0", c.QueueDepth())
	}
	snap := c.Snapshot()
	total := snap[0].Admitted + snap[0].Shed + snap[0].Expired
	if total != workers {
		t.Fatalf("outcomes %d, want %d: %+v", total, workers, snap)
	}
}

func TestCeilSeconds(t *testing.T) {
	cases := []struct {
		in, want time.Duration
	}{
		{0, time.Second},
		{time.Millisecond, time.Second},
		{time.Second, time.Second},
		{time.Second + time.Millisecond, 2 * time.Second},
		{2500 * time.Millisecond, 3 * time.Second},
	}
	for _, tc := range cases {
		if got := ceilSeconds(tc.in); got != tc.want {
			t.Errorf("ceilSeconds(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// TestAdmissionPrime: primed endpoints appear in the snapshot before
// any traffic reaches them (startup exposition on /metrics), priming
// an already-seen endpoint does not reset its estimate, and distinct
// endpoints keep distinct EWMA states.
func TestAdmissionPrime(t *testing.T) {
	c := NewController(2, false)
	c.Prime("/v1/fleet/register", "/v1/fleet/tick")
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d endpoints, want the 2 primed: %+v", len(snap), snap)
	}
	for _, ea := range snap {
		if ea.Admitted != 0 || ea.ServiceTimeSeconds != 0 {
			t.Fatalf("primed endpoint %q not zero-valued: %+v", ea.Endpoint, ea)
		}
	}

	// Each primed endpoint learns its own estimate, not a shared one.
	c.state("/v1/fleet/register").observe(2.0)
	c.state("/v1/fleet/tick").observe(0.25)
	var reg, tick float64
	for _, ea := range c.Snapshot() {
		switch ea.Endpoint {
		case "/v1/fleet/register":
			reg = ea.ServiceTimeSeconds
		case "/v1/fleet/tick":
			tick = ea.ServiceTimeSeconds
		}
	}
	if reg == 0 || tick == 0 || reg == tick {
		t.Fatalf("estimates not independent: register=%g tick=%g", reg, tick)
	}

	// Re-priming is a no-op on live state.
	c.Prime("/v1/fleet/register")
	for _, ea := range c.Snapshot() {
		if ea.Endpoint == "/v1/fleet/register" && ea.ServiceTimeSeconds != reg {
			t.Fatalf("re-prime reset the estimate: %g → %g", reg, ea.ServiceTimeSeconds)
		}
	}
}
