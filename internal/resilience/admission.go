package resilience

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Deadline-aware admission control ---------------------------------
//
// The worker pool used to be a bare semaphore: a request either got a
// slot or waited until its deadline expired, burning a connection and
// a queue position on work that was already dead. The controller
// keeps the bounded pool but adds the schedulability test from
// deadline-driven scheduling: before queueing, predict how long the
// request will wait for a slot (queue position × rolling per-endpoint
// service time ÷ pool width) and shed it immediately — with a
// Retry-After the client's backoff honors — when the prediction
// already overruns the deadline. A request that queues anyway and
// dies waiting is counted separately (expired) so the two overload
// symptoms are distinguishable on /metrics.

// Decision is the admission verdict for one request.
type Decision int

const (
	// Admitted means the request holds a pool slot; the caller must
	// Release the returned Slot.
	Admitted Decision = iota
	// Shed means the predicted queue wait already overruns the
	// request deadline; nothing was queued.
	Shed
	// Expired means the deadline passed while the request waited for
	// a slot (or had passed before it arrived).
	Expired
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admitted"
	case Shed:
		return "shed"
	default:
		return "expired"
	}
}

// estimateAlpha is the EWMA weight for new service-time observations.
const estimateAlpha = 0.2

// endpointState is one endpoint's rolling estimate and counters.
type endpointState struct {
	// estBits is math.Float64bits of the EWMA service time in seconds
	// (0 = no observation yet).
	estBits  atomic.Uint64
	admitted atomic.Uint64
	shed     atomic.Uint64
	expired  atomic.Uint64
}

// estimate returns the EWMA service time in seconds.
func (e *endpointState) estimate() float64 {
	return math.Float64frombits(e.estBits.Load())
}

// observe folds one completed request's service time into the EWMA.
func (e *endpointState) observe(seconds float64) {
	for {
		old := e.estBits.Load()
		prev := math.Float64frombits(old)
		next := seconds
		if prev > 0 {
			next = (1-estimateAlpha)*prev + estimateAlpha*seconds
		}
		if e.estBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Controller is a deadline-aware admission controller over a bounded
// worker pool.
type Controller struct {
	pool    int
	sem     chan struct{}
	noShed  bool
	waiting atomic.Int64

	mu  sync.RWMutex
	eps map[string]*endpointState
}

// NewController returns a controller over pool worker slots
// (pool < 1 is clamped to 1). noShed disables predictive shedding —
// requests then queue until admitted or expired, the pre-admission
// behavior.
func NewController(pool int, noShed bool) *Controller {
	if pool < 1 {
		pool = 1
	}
	return &Controller{
		pool:   pool,
		sem:    make(chan struct{}, pool),
		noShed: noShed,
		eps:    make(map[string]*endpointState),
	}
}

// state returns the endpoint's state, creating it on first sight.
// Endpoint cardinality is the route table's, so the map stays tiny
// and the read path is an RLock + map hit with no allocation.
func (c *Controller) state(endpoint string) *endpointState {
	c.mu.RLock()
	st := c.eps[endpoint]
	c.mu.RUnlock()
	if st != nil {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st = c.eps[endpoint]; st == nil {
		st = &endpointState{}
		c.eps[endpoint] = st
	}
	return st
}

// Prime eagerly creates per-endpoint state for the named endpoints so
// each learns its own EWMA service time from its first request — and
// appears on /metrics from startup — rather than depending on
// first-sight creation order. Registering a route table should prime
// every path it serves; state() still auto-creates anything missed,
// so Prime is about exposition and explicitness, not correctness.
func (c *Controller) Prime(endpoints ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ep := range endpoints {
		if c.eps[ep] == nil {
			c.eps[ep] = &endpointState{}
		}
	}
}

// Slot is one admitted request's pool slot. The zero Slot (from a
// non-admitted decision) is a no-op to Release.
type Slot struct {
	c     *Controller
	st    *endpointState
	start time.Time
}

// Release frees the pool slot and folds the observed service time
// into the endpoint's estimate.
func (s Slot) Release() {
	if s.c == nil {
		return
	}
	<-s.c.sem
	s.st.observe(time.Since(s.start).Seconds())
}

// Acquire admits, sheds or expires one request for the endpoint. The
// deadline is ctx's; a context without a deadline never sheds and
// waits indefinitely for a slot. On Shed and Expired the returned
// duration is the suggested Retry-After (≥ 1 s).
func (c *Controller) Acquire(ctx context.Context, endpoint string) (Slot, Decision, time.Duration) {
	st := c.state(endpoint)
	if ctx.Err() != nil {
		st.expired.Add(1)
		return Slot{}, Expired, c.retryAfterHint(st)
	}
	// Fast path: a free slot admits immediately, no prediction needed.
	select {
	case c.sem <- struct{}{}:
		st.admitted.Add(1)
		return Slot{c: c, st: st, start: time.Now()}, Admitted, 0
	default:
	}
	if deadline, ok := ctx.Deadline(); ok && !c.noShed {
		if est := st.estimate(); est > 0 {
			// All slots are busy; this request waits behind the current
			// queue plus the in-flight generation. Expected wait until
			// its slot frees: (queue+1) service times spread over the
			// pool width.
			wait := time.Duration((float64(c.waiting.Load()) + 1) * est / float64(c.pool) * float64(time.Second))
			if time.Until(deadline) < wait {
				st.shed.Add(1)
				return Slot{}, Shed, ceilSeconds(wait)
			}
		}
	}
	c.waiting.Add(1)
	defer c.waiting.Add(-1)
	select {
	case c.sem <- struct{}{}:
		st.admitted.Add(1)
		return Slot{c: c, st: st, start: time.Now()}, Admitted, 0
	case <-ctx.Done():
		st.expired.Add(1)
		return Slot{}, Expired, c.retryAfterHint(st)
	}
}

// retryAfterHint suggests how long a rejected client should wait:
// one queue drain at the endpoint's estimated service time, floored
// at a second.
func (c *Controller) retryAfterHint(st *endpointState) time.Duration {
	est := st.estimate()
	if est <= 0 {
		return time.Second
	}
	wait := time.Duration((float64(c.waiting.Load()) + 1) * est / float64(c.pool) * float64(time.Second))
	return ceilSeconds(wait)
}

// RetryAfter suggests a Retry-After for an endpoint's failure path
// outside Acquire (e.g. a deadline that expired mid-computation).
func (c *Controller) RetryAfter(endpoint string) time.Duration {
	return c.retryAfterHint(c.state(endpoint))
}

// ceilSeconds rounds up to whole seconds with a 1 s floor — the
// granularity the Retry-After header speaks.
func ceilSeconds(d time.Duration) time.Duration {
	if d <= time.Second {
		return time.Second
	}
	secs := (d + time.Second - 1) / time.Second
	return secs * time.Second
}

// QueueDepth is the number of requests currently waiting for a slot.
func (c *Controller) QueueDepth() int64 { return c.waiting.Load() }

// EndpointAdmission is one endpoint's admission counters.
type EndpointAdmission struct {
	// Endpoint is the route path.
	Endpoint string
	// Admitted, Shed and Expired count Acquire outcomes.
	Admitted, Shed, Expired uint64
	// ServiceTimeSeconds is the rolling EWMA of observed service
	// times (0 until the first completion).
	ServiceTimeSeconds float64
}

// Snapshot returns per-endpoint admission counters, endpoints sorted
// for stable exposition.
func (c *Controller) Snapshot() []EndpointAdmission {
	c.mu.RLock()
	out := make([]EndpointAdmission, 0, len(c.eps))
	for ep, st := range c.eps {
		out = append(out, EndpointAdmission{
			Endpoint:           ep,
			Admitted:           st.admitted.Load(),
			Shed:               st.shed.Load(),
			Expired:            st.expired.Load(),
			ServiceTimeSeconds: st.estimate(),
		})
	}
	c.mu.RUnlock()
	sortEndpointAdmissions(out)
	return out
}

// sortEndpointAdmissions orders by endpoint name (insertion sort; the
// set is the route table's handful of paths).
func sortEndpointAdmissions(s []EndpointAdmission) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Endpoint < s[j-1].Endpoint; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
