package resilience

import (
	"testing"
	"time"
)

func TestRetrierDefaults(t *testing.T) {
	r := NewRetrier(RetryPolicy{})
	p := r.Policy()
	if p.MaxAttempts != DefaultMaxAttempts || p.BaseDelay != DefaultBaseDelay ||
		p.MaxDelay != DefaultMaxDelay || p.Multiplier != DefaultMultiplier ||
		p.BreakerThreshold != DefaultBreakerThreshold || p.BreakerCooldown != DefaultBreakerCooldown {
		t.Fatalf("zero policy resolved to %+v", p)
	}
}

func TestRetrierBudgetExhausted(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, Seed: 1})
	if _, ok := r.Delay(1, 0); !ok {
		t.Fatal("retry refused after 1 of 3 attempts")
	}
	if _, ok := r.Delay(2, 0); !ok {
		t.Fatal("retry refused after 2 of 3 attempts")
	}
	if _, ok := r.Delay(3, 0); ok {
		t.Fatal("retry allowed after the budget was spent")
	}
}

func TestRetrierUnlimitedAttempts(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: UnlimitedAttempts, Seed: 1})
	for _, attempts := range []int{1, 10, 1000} {
		if _, ok := r.Delay(attempts, 0); !ok {
			t.Fatalf("unlimited policy refused retry after %d attempts", attempts)
		}
	}
}

// TestRetrierFullJitterBounds checks every drawn delay lands in
// [0, min(MaxDelay, Base·Mult^(k-1))] and that the ceiling actually
// grows with the attempt count.
func TestRetrierFullJitterBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	r := NewRetrier(RetryPolicy{
		MaxAttempts: UnlimitedAttempts,
		BaseDelay:   base, MaxDelay: max, Multiplier: 2,
		Seed: 42,
	})
	ceilings := []time.Duration{base, 2 * base, 4 * base, max, max}
	for k, ceil := range ceilings {
		for i := 0; i < 200; i++ {
			d, ok := r.Delay(k+1, 0)
			if !ok {
				t.Fatal("unexpected budget exhaustion")
			}
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d delay %s outside [0, %s]", k+1, d, ceil)
			}
		}
	}
}

func TestRetrierHonorsRetryAfterFloor(t *testing.T) {
	r := NewRetrier(RetryPolicy{
		MaxAttempts: UnlimitedAttempts,
		BaseDelay:   time.Millisecond, MaxDelay: 2 * time.Millisecond,
		Seed: 7,
	})
	ra := 500 * time.Millisecond
	for i := 0; i < 50; i++ {
		d, ok := r.Delay(1, ra)
		if !ok {
			t.Fatal("unexpected budget exhaustion")
		}
		if d < ra {
			t.Fatalf("delay %s undercuts the server's Retry-After %s", d, ra)
		}
	}
}

func TestRetrierSeededDeterminism(t *testing.T) {
	draw := func() []time.Duration {
		r := NewRetrier(RetryPolicy{MaxAttempts: UnlimitedAttempts, Seed: 99})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i], _ = r.Delay(i+1, 0)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded retriers diverged at draw %d: %s vs %s", i, a[i], b[i])
		}
	}
}
