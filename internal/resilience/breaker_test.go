package resilience

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps time manually so breaker cooldowns are
// deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused request %d: %v", i, err)
		}
		b.Failure()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after 2/3 failures, want closed", got)
	}
	b.Failure() // third consecutive failure trips it
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", got)
	}
	err := b.Allow()
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("open breaker allowed a request (err=%v)", err)
	}
	if oe.RetryIn <= 0 || oe.RetryIn > time.Second {
		t.Fatalf("RetryIn %s outside (0, cooldown]", oe.RetryIn)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v, want closed: success must reset the run", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker not open")
	}
	// Before cooldown: still open.
	if err := b.Allow(); err == nil {
		t.Fatal("open breaker admitted before cooldown")
	}
	clk.advance(time.Second + time.Millisecond)
	// After cooldown: exactly one probe goes through.
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if err := b.Allow(); err == nil {
		t.Fatal("second concurrent probe admitted")
	}
	// Failed probe re-opens immediately.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("opens %d, want 2", b.Opens())
	}
	// Next probe succeeds and closes the circuit.
	clk.advance(time.Second + time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
}

func TestBreakerGroupIsolatesHosts(t *testing.T) {
	g := NewBreakerGroup(1, time.Minute)
	g.For("a:1").Failure()
	if g.For("a:1").State() != BreakerOpen {
		t.Fatal("host a breaker not open")
	}
	if g.For("b:1").State() != BreakerClosed {
		t.Fatal("host b breaker affected by host a failures")
	}
	if g.For("a:1") != g.For("a:1") {
		t.Fatal("group did not reuse the host breaker")
	}
}

func TestBreakerGroupWriteProm(t *testing.T) {
	g := NewBreakerGroup(1, time.Minute)
	g.For("a:1").Failure()
	g.For("b:1")
	var sb strings.Builder
	if err := g.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE dpmd_client_breaker_state gauge",
		`dpmd_client_breaker_state{host="a:1"} 1`,
		`dpmd_client_breaker_state{host="b:1"} 0`,
		"# TYPE dpmd_client_breaker_opens_total counter",
		`dpmd_client_breaker_opens_total{host="a:1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
