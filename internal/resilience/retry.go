package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Retry defaults. A zero RetryPolicy resolves to these — a small,
// bounded budget suitable for interactive callers; batch drivers that
// must eventually succeed set UnlimitedAttempts and let the request
// context bound the loop instead.
const (
	// DefaultMaxAttempts is the total number of tries, including the
	// first.
	DefaultMaxAttempts = 4
	// DefaultBaseDelay seeds the exponential backoff.
	DefaultBaseDelay = 50 * time.Millisecond
	// DefaultMaxDelay caps any single backoff sleep.
	DefaultMaxDelay = 2 * time.Second
	// DefaultMultiplier is the backoff growth factor.
	DefaultMultiplier = 2.0
	// DefaultBreakerThreshold is the consecutive-failure count that
	// opens the circuit.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long the circuit stays open before
	// admitting a half-open probe.
	DefaultBreakerCooldown = 2 * time.Second
	// UnlimitedAttempts makes the retry loop context-bounded only.
	UnlimitedAttempts = -1
)

// RetryPolicy tunes the client's retry loop and circuit breaker.
// Every knob has a safe default (the Default* constants); the zero
// value is a usable bounded policy.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (0 = DefaultMaxAttempts, UnlimitedAttempts = retry until the
	// request context expires).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff; attempt k sleeps a
	// uniformly random duration in [0, min(MaxDelay, BaseDelay·Multiplier^(k-1))]
	// ("full jitter"), so a fleet of clients retrying the same outage
	// does not stampede in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps any single sleep.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (must be ≥ 1; 0 =
	// DefaultMultiplier).
	Multiplier float64
	// BreakerThreshold is the consecutive-failure count that opens the
	// per-host circuit (0 = DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay (0 =
	// DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// Seed, when non-zero, makes the jitter deterministic — for tests
	// and reproducible drills. 0 uses the process-global source.
	Seed int64
}

// withDefaults resolves zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = DefaultBreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = DefaultBreakerCooldown
	}
	return p
}

// Retrier computes backoff delays for one resolved policy. It is safe
// for concurrent use.
type Retrier struct {
	p RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand // nil → process-global source
}

// NewRetrier resolves the policy's defaults and returns a delay
// calculator.
func NewRetrier(p RetryPolicy) *Retrier {
	r := &Retrier{p: p.withDefaults()}
	if p.Seed != 0 {
		r.rng = rand.New(rand.NewSource(p.Seed))
	}
	return r
}

// Policy returns the resolved policy.
func (r *Retrier) Policy() RetryPolicy { return r.p }

// NewBreakerGroup builds the breaker group the policy describes.
func (r *Retrier) NewBreakerGroup() *BreakerGroup {
	return NewBreakerGroup(r.p.BreakerThreshold, r.p.BreakerCooldown)
}

// Delay returns how long to sleep before retrying after `attempts`
// completed tries, and whether the budget allows another try at all.
// retryAfter, when positive, is a server-provided hint (Retry-After
// or a breaker's RetryIn) that becomes the floor of the sleep: the
// backoff never undercuts what the server asked for.
func (r *Retrier) Delay(attempts int, retryAfter time.Duration) (time.Duration, bool) {
	if r.p.MaxAttempts != UnlimitedAttempts && attempts >= r.p.MaxAttempts {
		return 0, false
	}
	ceil := float64(r.p.BaseDelay)
	for i := 1; i < attempts; i++ {
		ceil *= r.p.Multiplier
		if ceil >= float64(r.p.MaxDelay) {
			ceil = float64(r.p.MaxDelay)
			break
		}
	}
	if ceil > float64(r.p.MaxDelay) {
		ceil = float64(r.p.MaxDelay)
	}
	d := time.Duration(r.int63n(int64(ceil) + 1))
	if retryAfter > 0 && d < retryAfter {
		d = retryAfter
	}
	return d, true
}

// int63n draws from the policy's seeded source, or the process-global
// one when no seed was set.
func (r *Retrier) int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if r.rng == nil {
		return rand.Int63n(n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63n(n)
}
