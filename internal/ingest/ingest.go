// Package ingest closes the paper's §4.3 loop with measured traffic:
// a StatsD-style UDP daemon accepts high-rate per-device counters
// (task arrivals) and gauges (charging power), aggregates them into
// per-flush-window buckets inside goroutine-owned shards (FNV-routed,
// mirroring internal/fleet partitioning), and at each flush closes
// one slot of an observed schedule.Grid per device. Completed periods
// feed internal/predict estimators into updated usage/charging
// forecasts, and a divergence monitor with hysteresis compares
// observed against planned per-slot — on a sustained breach the next
// period wrap triggers a forecast-driven replan through the Replanner
// (the server bridges it onto fleet.Register/Tick).
//
// Every stage is itself observable: dpmd_ingest_* Prometheus families
// (WriteProm), obs spans on the flush→forecast→replan pipeline
// (FlushNow records the span tree), and structured log events for
// every triggered replan.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpm/internal/obs"
	"dpm/internal/predict"
	"dpm/internal/scenario"
	"dpm/internal/schedule"
)

// ErrClosed reports an operation on a closed daemon.
var ErrClosed = errors.New("ingest: daemon closed")

// SlotObservation is one closed flush window, converted to the
// energy-report form Algorithm 3 consumes.
type SlotObservation struct {
	// Slot is the period-relative slot index the window closed.
	Slot int
	// UsedJ is the observed task energy over the slot (events ×
	// EventEnergyJ).
	UsedJ float64
	// SuppliedJ is the observed charging energy over the slot (mean
	// gauge watts × τ).
	SuppliedJ float64
}

// Replanner receives the loop's outputs. The server implements it on
// top of internal/fleet; tests stub it.
type Replanner interface {
	// Tick streams one closed slot's observed energies into the
	// device's live session.
	Tick(ctx context.Context, deviceID string, obs SlotObservation) error
	// Replan rebuilds the device's session around the new forecasts —
	// called only after a sustained divergence breach, at a period
	// boundary, with both forecast grids available.
	Replan(ctx context.Context, deviceID string, usage, charging *schedule.Grid) error
}

// Predictor selectors for Config.Predictor.
const (
	PredictorLastPeriod    = "last-period"
	PredictorMovingAverage = "moving-average"
	PredictorExponential   = "exponential"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the UDP listen address; empty runs without a listener
	// (samples arrive only via Inject — tests).
	Addr string
	// FlushInterval closes one slot per device each interval. 0
	// disables the timer: flushes happen only via FlushNow (the
	// deterministic test/ops mode). The wall-clock interval is
	// decoupled from the scenario's τ — each window maps onto one
	// τ-slot, so a 100 ms interval replays a 4.8 s slot at 48×.
	FlushInterval time.Duration
	// Predictor selects the forecast estimator: "last-period"
	// (default), "moving-average" or "exponential".
	Predictor string
	// Window is the moving-average window in periods (default 4).
	Window int
	// Alpha is the exponential smoothing weight (default 0.4).
	Alpha float64
	// DivergenceThreshold is the per-slot relative error above which
	// a slot counts as breached (default 0.25).
	DivergenceThreshold float64
	// HysteresisUp is the consecutive breached slots required to arm
	// a replan (default 3); HysteresisDown the consecutive clear
	// slots required to re-arm after one fires (default 2). Together
	// they keep a boundary-oscillating signal from flapping replans.
	HysteresisUp   int
	HysteresisDown int
	// EventEnergyJ converts counted events to joules (default 1).
	EventEnergyJ float64
	// Shards is the aggregation shard count, rounded up to a power of
	// two (default 4); MaxDevices caps tracked-device cardinality
	// across all shards (default 1024).
	Shards     int
	MaxDevices int
	// Replanner receives ticks and divergence replans; nil means
	// observe-only (forecasts still update).
	Replanner Replanner
	// Stages, when set, receives the flush/forecast/replan span
	// durations; Log, when set, receives structured events for
	// triggered replans and tick failures.
	Stages *obs.HistogramVec
	Log    *obs.Logger
}

func (c *Config) setDefaults() {
	if c.Predictor == "" {
		c.Predictor = PredictorLastPeriod
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Alpha == 0 {
		c.Alpha = 0.4
	}
	if c.DivergenceThreshold == 0 {
		c.DivergenceThreshold = 0.25
	}
	if c.HysteresisUp == 0 {
		c.HysteresisUp = 3
	}
	if c.HysteresisDown == 0 {
		c.HysteresisDown = 2
	}
	if c.EventEnergyJ == 0 {
		c.EventEnergyJ = 1
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.MaxDevices == 0 {
		c.MaxDevices = 1024
	}
}

// NewPredictor builds one estimator from the daemon's selector — the
// factory Track uses per device and signal.
func NewPredictor(name string, window int, alpha float64) (predict.Predictor, error) {
	switch name {
	case PredictorLastPeriod:
		return predict.NewLastPeriod(), nil
	case PredictorMovingAverage:
		return predict.NewMovingAverage(window)
	case PredictorExponential:
		return predict.NewExponential(alpha)
	}
	return nil, fmt.Errorf("ingest: unknown predictor %q (want %s, %s or %s)",
		name, PredictorLastPeriod, PredictorMovingAverage, PredictorExponential)
}

// divergenceFloorW keeps the relative error meaningful where the plan
// is (near-)zero: |obs−plan| is divided by max(|plan|, floor).
const divergenceFloorW = 0.1

// Daemon is one ingestion instance.
type Daemon struct {
	cfg    Config
	shards []*shard
	mask   uint64

	// mu serializes public entry points against Close: senders hold
	// the read side while touching shard channels, Close flips closed
	// under the write side before the channels shut.
	mu     sync.RWMutex
	closed bool

	conn    *net.UDPConn
	quit    chan struct{}
	wg      sync.WaitGroup // reader + flush ticker
	shardWG sync.WaitGroup

	datagrams  atomic.Uint64
	lines      atomic.Uint64
	parsed     atomic.Uint64
	applied    atomic.Uint64
	slotsTotal atomic.Uint64
	flushes    atomic.Uint64
	replans    atomic.Uint64
	tickErrors atomic.Uint64
	deviceN    atomic.Int64
	drops      []atomic.Uint64 // indexed like DropReasons

	flushHist *obs.HistogramVec

	traceMu   sync.Mutex
	lastSpans []obs.SpanNode
	lastFlush time.Time
}

// dropIndex maps a drop reason to its counter slot.
var dropIndex = func() map[string]int {
	m := make(map[string]int, len(DropReasons))
	for i, r := range DropReasons {
		m[r] = i
	}
	return m
}()

// New validates the configuration and builds the daemon (shard loops
// start immediately; the UDP listener and flush timer start on
// Start).
func New(cfg Config) (*Daemon, error) {
	cfg.setDefaults()
	if _, err := NewPredictor(cfg.Predictor, cfg.Window, cfg.Alpha); err != nil {
		return nil, err
	}
	if cfg.DivergenceThreshold < 0 || !scenario.IsFinite(cfg.DivergenceThreshold) {
		return nil, fmt.Errorf("ingest: divergence threshold %g must be finite and non-negative", cfg.DivergenceThreshold)
	}
	if cfg.HysteresisUp < 1 || cfg.HysteresisDown < 1 {
		return nil, fmt.Errorf("ingest: hysteresis %d/%d must be at least 1", cfg.HysteresisUp, cfg.HysteresisDown)
	}
	if cfg.EventEnergyJ <= 0 || !scenario.IsFinite(cfg.EventEnergyJ) {
		return nil, fmt.Errorf("ingest: event energy %g J must be finite and positive", cfg.EventEnergyJ)
	}
	if cfg.FlushInterval < 0 {
		return nil, fmt.Errorf("ingest: negative flush interval %s", cfg.FlushInterval)
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	d := &Daemon{
		cfg:   cfg,
		mask:  uint64(n - 1),
		quit:  make(chan struct{}),
		drops: make([]atomic.Uint64, len(DropReasons)),
		flushHist: obs.NewHistogramVec("dpmd_ingest_flush_duration_seconds",
			"Wall time of one full flush pass (all shards), by outcome.", "result", nil),
	}
	d.shards = make([]*shard, n)
	for i := range d.shards {
		sh := &shard{d: d, ch: make(chan shardCmd, 1024), devices: make(map[string]*device)}
		d.shards[i] = sh
		d.shardWG.Add(1)
		go sh.loop()
	}
	return d, nil
}

// Start binds the UDP listener (when configured) and starts the flush
// timer (when FlushInterval > 0).
func (d *Daemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.cfg.Addr != "" && d.conn == nil {
		addr, err := net.ResolveUDPAddr("udp", d.cfg.Addr)
		if err != nil {
			return fmt.Errorf("ingest: resolve %s: %w", d.cfg.Addr, err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return fmt.Errorf("ingest: listen %s: %w", d.cfg.Addr, err)
		}
		d.conn = conn
		d.wg.Add(1)
		go d.readLoop(conn)
	}
	if d.cfg.FlushInterval > 0 {
		d.wg.Add(1)
		go d.flushLoop()
	}
	return nil
}

// Addr returns the bound UDP address, or "" without a listener.
func (d *Daemon) Addr() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.conn == nil {
		return ""
	}
	return d.conn.LocalAddr().String()
}

// Close stops the listener, the flush timer and every shard loop. It
// is idempotent and leaves no goroutines behind.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	conn := d.conn
	d.mu.Unlock()
	close(d.quit)
	if conn != nil {
		conn.Close() //nolint:errcheck
	}
	d.wg.Wait()
	for _, sh := range d.shards {
		close(sh.ch)
	}
	d.shardWG.Wait()
}

// readLoop drains datagrams until the connection closes.
func (d *Daemon) readLoop(conn *net.UDPConn) {
	defer d.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-d.quit:
				return
			default:
			}
			// Transient errors (e.g. ICMP-induced) back off briefly;
			// a closed socket lands in the quit case next read.
			time.Sleep(time.Millisecond)
			continue
		}
		d.datagrams.Add(1)
		d.ingestDatagram(buf[:n])
	}
}

// Inject feeds one datagram's bytes directly — the test entry point
// bypassing UDP delivery jitter.
func (d *Daemon) Inject(data []byte) {
	d.datagrams.Add(1)
	d.ingestDatagram(data)
}

// ingestDatagram parses the newline-separated lines and routes the
// samples to their shards, batched per shard. The reader never
// blocks: a full shard queue sheds the batch with reason
// "backpressure".
func (d *Daemon) ingestDatagram(data []byte) {
	var batches map[uint64][]Sample
	start := 0
	for i := 0; i <= len(data); i++ {
		if i != len(data) && data[i] != '\n' {
			continue
		}
		line := data[start:i]
		start = i + 1
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			// Trailing newline / blank separator: not a counted line.
			continue
		}
		d.lines.Add(1)
		s, reason := ParseLine(line)
		if reason != "" {
			d.drop(reason)
			continue
		}
		d.parsed.Add(1)
		idx := fnv64(s.Device) & d.mask
		if batches == nil {
			batches = make(map[uint64][]Sample, 2)
		}
		batches[idx] = append(batches[idx], s)
	}
	if batches == nil {
		return
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return
	}
	for idx, samples := range batches {
		select {
		case d.shards[idx].ch <- shardCmd{samples: samples}:
		default:
			for range samples {
				d.drop(DropBackpressure)
			}
		}
	}
}

func (d *Daemon) drop(reason string) {
	if i, ok := dropIndex[reason]; ok {
		d.drops[i].Add(1)
	}
}

// flushLoop drives periodic flushes.
func (d *Daemon) flushLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-d.quit:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), 2*d.cfg.FlushInterval+time.Second)
			d.FlushNow(ctx) //nolint:errcheck
			cancel()
		}
	}
}

// fnv64 is the FNV-1a hash fleet and plancache route with.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// shard owns a disjoint set of devices; all device state is touched
// only by its loop goroutine (the fleet partition idiom).
type shard struct {
	d       *Daemon
	ch      chan shardCmd
	devices map[string]*device
}

// shardCmd is one queue entry: a sample batch (from the reader), a
// control closure (track/flush/stats), or both halves unused.
type shardCmd struct {
	samples []Sample
	fn      func(*shard)
	done    chan struct{}
}

func (sh *shard) loop() {
	defer sh.d.shardWG.Done()
	for cmd := range sh.ch {
		if len(cmd.samples) > 0 {
			sh.apply(cmd.samples)
		}
		if cmd.fn != nil {
			cmd.fn(sh)
		}
		if cmd.done != nil {
			close(cmd.done)
		}
	}
}

// do runs fn inside the shard goroutine and waits for it. Callers
// must hold d.mu.RLock (the closed guard).
func (sh *shard) do(fn func(*shard)) {
	done := make(chan struct{})
	sh.ch <- shardCmd{fn: fn, done: done}
	<-done
}

// apply accumulates a parsed batch into the owning devices' windows.
func (sh *shard) apply(samples []Sample) {
	for _, s := range samples {
		dev, ok := sh.devices[s.Device]
		if !ok {
			sh.d.drop(DropUntracked)
			continue
		}
		switch s.Kind {
		case KindCounter:
			dev.events += s.Value
		case KindGauge:
			if s.Delta {
				dev.gaugeLevel += s.Value
			} else {
				dev.gaugeLevel = s.Value
			}
			if dev.gaugeLevel < 0 {
				dev.gaugeLevel = 0
			}
			dev.gaugeSum += dev.gaugeLevel
			dev.gaugeCount++
		}
		sh.d.applied.Add(1)
	}
}

// device is one tracked device's aggregation, forecast and
// divergence state. Owned by its shard goroutine.
type device struct {
	id    string
	step  float64
	slots int

	// plannedUsage/plannedCharging are the per-slot watts the live
	// plan was built from — registration values until a divergence
	// replan installs the forecasts.
	plannedUsage    []float64
	plannedCharging []float64

	// Window accumulators (reset each flush).
	events     float64
	gaugeLevel float64
	gaugeSum   float64
	gaugeCount int

	// Period accumulators.
	slot        int
	obsUsage    []float64
	obsCharging []float64

	usagePred        predict.Predictor
	chargingPred     predict.Predictor
	forecastUsage    *schedule.Grid
	forecastCharging *schedule.Grid

	divergence   float64
	breachStreak int
	clearStreak  int
	pending      bool
	cooldown     bool

	periods uint64
	replans uint64
}

// Track registers (or re-registers) a device: the planned grids
// establish the slot geometry the observed grids mirror. Re-tracking
// with the same geometry updates the plan in place and keeps the
// predictor history; a geometry change resets the device.
func (d *Daemon) Track(deviceID string, usage, charging *schedule.Grid) error {
	if deviceID == "" {
		return fmt.Errorf("ingest: empty device id")
	}
	if usage == nil || charging == nil {
		return fmt.Errorf("ingest: device %s: nil planned grid", deviceID)
	}
	if usage.Step != charging.Step || usage.Len() != charging.Len() {
		return fmt.Errorf("ingest: device %s: usage %d×%gs vs charging %d×%gs",
			deviceID, usage.Len(), usage.Step, charging.Len(), charging.Step)
	}
	if usage.Len() == 0 {
		return fmt.Errorf("ingest: device %s: empty planned grid", deviceID)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	var err error
	sh := d.shards[fnv64(deviceID)&d.mask]
	sh.do(func(sh *shard) {
		err = sh.track(deviceID, usage, charging)
	})
	return err
}

func (sh *shard) track(deviceID string, usage, charging *schedule.Grid) error {
	dev, ok := sh.devices[deviceID]
	if ok && dev.step == usage.Step && dev.slots == usage.Len() {
		copy(dev.plannedUsage, usage.Values)
		copy(dev.plannedCharging, charging.Values)
		return nil
	}
	if !ok && int(sh.d.deviceN.Load()) >= sh.d.cfg.MaxDevices {
		sh.d.drop(DropCardinality)
		return fmt.Errorf("ingest: tracked-device cap %d reached", sh.d.cfg.MaxDevices)
	}
	up, _ := NewPredictor(sh.d.cfg.Predictor, sh.d.cfg.Window, sh.d.cfg.Alpha)
	cp, _ := NewPredictor(sh.d.cfg.Predictor, sh.d.cfg.Window, sh.d.cfg.Alpha)
	n := usage.Len()
	if !ok {
		sh.d.deviceN.Add(1)
	}
	sh.devices[deviceID] = &device{
		id:              deviceID,
		step:            usage.Step,
		slots:           n,
		plannedUsage:    append([]float64(nil), usage.Values...),
		plannedCharging: append([]float64(nil), charging.Values...),
		obsUsage:        make([]float64, n),
		obsCharging:     make([]float64, n),
		usagePred:       up,
		chargingPred:    cp,
	}
	return nil
}

// Untrack drops a device's ingestion state (fleet drain).
func (d *Daemon) Untrack(deviceID string) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return
	}
	sh := d.shards[fnv64(deviceID)&d.mask]
	sh.do(func(sh *shard) {
		if _, ok := sh.devices[deviceID]; ok {
			delete(sh.devices, deviceID)
			sh.d.deviceN.Add(-1)
		}
	})
}

// FlushResult summarizes one flush pass.
type FlushResult struct {
	// Devices is the tracked-device count at flush time; SlotsClosed
	// the windows closed (= Devices); Replans the divergence replans
	// this pass fired.
	Devices     int `json:"devices"`
	SlotsClosed int `json:"slotsClosed"`
	Replans     int `json:"replans"`
}

// FlushNow closes the current window of every tracked device: each
// device's accumulated counters become one observed slot, the slot is
// ticked into its fleet session, divergence is scored, and at period
// boundaries the predictors re-forecast (firing a pending replan).
// Shards flush sequentially so the recorded span tree is a single
// deterministic flush→forecast→replan forest.
func (d *Daemon) FlushNow(ctx context.Context) (FlushResult, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return FlushResult{}, ErrClosed
	}
	start := time.Now()
	rec := &obs.Recorder{Stages: d.cfg.Stages, Trace: obs.NewTrace()}
	ctx = obs.WithRecorder(ctx, rec)
	ctx, span := obs.StartSpan(ctx, "ingest.flush")
	var res FlushResult
	for _, sh := range d.shards {
		sh.do(func(sh *shard) {
			slots, replans := sh.flush(ctx)
			res.Devices += len(sh.devices)
			res.SlotsClosed += slots
			res.Replans += replans
		})
	}
	span.SetAttr("devices", res.Devices)
	span.SetAttr("replans", res.Replans)
	span.End()
	d.flushes.Add(1)
	d.flushHist.Observe("ok", time.Since(start).Seconds())
	d.traceMu.Lock()
	d.lastSpans = rec.Trace.Tree()
	d.lastFlush = start
	d.traceMu.Unlock()
	return res, nil
}

// flush closes one slot for every device in the shard, in device-id
// order for deterministic span trees.
func (sh *shard) flush(ctx context.Context) (slots, replans int) {
	if len(sh.devices) == 0 {
		return 0, 0
	}
	ids := make([]string, 0, len(sh.devices))
	for id := range sh.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		slots++
		if sh.flushDevice(ctx, sh.devices[id]) {
			replans++
		}
	}
	return slots, replans
}

func clampPower(w float64) float64 {
	if math.IsNaN(w) || w < 0 {
		return 0
	}
	if w > scenario.MaxPowerW {
		return scenario.MaxPowerW
	}
	return w
}

// flushDevice closes the device's window into one observed slot and
// runs the divergence state machine. Reports whether a replan fired.
func (sh *shard) flushDevice(ctx context.Context, dev *device) bool {
	cfg := &sh.d.cfg
	usageW := clampPower(dev.events * cfg.EventEnergyJ / dev.step)
	chargeW := dev.gaugeLevel // carry-forward when the window was silent
	if dev.gaugeCount > 0 {
		chargeW = dev.gaugeSum / float64(dev.gaugeCount)
	}
	chargeW = clampPower(chargeW)
	dev.events = 0
	dev.gaugeSum = 0
	dev.gaugeCount = 0
	dev.obsUsage[dev.slot] = usageW
	dev.obsCharging[dev.slot] = chargeW
	sh.d.slotsTotal.Add(1)

	if cfg.Replanner != nil {
		err := cfg.Replanner.Tick(ctx, dev.id, SlotObservation{
			Slot:      dev.slot,
			UsedJ:     usageW * dev.step,
			SuppliedJ: chargeW * dev.step,
		})
		if err != nil {
			sh.d.tickErrors.Add(1)
			if cfg.Log != nil {
				cfg.Log.Event("ingest_tick_error",
					obs.F("device", dev.id),
					obs.F("slot", dev.slot),
					obs.F("error", err.Error()))
			}
		}
	}

	// Divergence with hysteresis: a slot is breached when either
	// signal's relative error exceeds the threshold. HysteresisUp
	// consecutive breaches arm a replan (entering cooldown at the same
	// moment, so an oscillating boundary cannot re-arm); the cooldown
	// lifts after HysteresisDown consecutive clear slots.
	rel := func(obs, plan float64) float64 {
		return math.Abs(obs-plan) / math.Max(math.Abs(plan), divergenceFloorW)
	}
	dev.divergence = math.Max(rel(usageW, dev.plannedUsage[dev.slot]),
		rel(chargeW, dev.plannedCharging[dev.slot]))
	if dev.divergence > cfg.DivergenceThreshold {
		dev.clearStreak = 0
		dev.breachStreak++
		if !dev.cooldown && dev.breachStreak >= cfg.HysteresisUp {
			dev.pending = true
			dev.cooldown = true
		}
	} else {
		dev.breachStreak = 0
		dev.clearStreak++
		if dev.cooldown && !dev.pending && dev.clearStreak >= cfg.HysteresisDown {
			dev.cooldown = false
		}
	}

	dev.slot++
	if dev.slot < dev.slots {
		return false
	}
	dev.slot = 0
	dev.periods++
	return sh.wrapPeriod(ctx, dev)
}

// wrapPeriod feeds the completed observed period into the predictors
// and, when a replan is pending and forecasts exist, fires it.
func (sh *shard) wrapPeriod(ctx context.Context, dev *device) bool {
	cfg := &sh.d.cfg
	fctx, fspan := obs.StartSpan(ctx, "ingest.forecast")
	fspan.SetAttr("device", dev.id)
	fspan.SetAttr("period", dev.periods)
	uGrid := schedule.NewGrid(dev.step, append([]float64(nil), dev.obsUsage...))
	cGrid := schedule.NewGrid(dev.step, append([]float64(nil), dev.obsCharging...))
	forecastOK := false
	if err := dev.usagePred.Observe(uGrid); err == nil {
		err = dev.chargingPred.Observe(cGrid)
		if err != nil {
			fspan.SetAttr("error", err.Error())
		}
	} else {
		fspan.SetAttr("error", err.Error())
	}
	fu, uerr := dev.usagePred.Predict()
	fc, cerr := dev.chargingPred.Predict()
	switch {
	case predict.IsInsufficientHistory(uerr) || predict.IsInsufficientHistory(cerr):
		fspan.SetAttr("warmup", true)
	case uerr != nil || cerr != nil:
		// Geometry errors cannot happen (Track pins the geometry);
		// surface whatever did.
		for _, err := range []error{uerr, cerr} {
			if err != nil {
				fspan.SetAttr("error", err.Error())
			}
		}
	default:
		dev.forecastUsage = fu
		dev.forecastCharging = fc
		forecastOK = true
	}
	fspan.End()

	if !dev.pending || !forecastOK || cfg.Replanner == nil {
		return false
	}
	rctx, rspan := obs.StartSpan(fctx, "ingest.replan")
	rspan.SetAttr("device", dev.id)
	rspan.SetAttr("divergence", dev.divergence)
	err := cfg.Replanner.Replan(rctx, dev.id, dev.forecastUsage.Clone(), dev.forecastCharging.Clone())
	rspan.End()
	if err != nil {
		// Keep pending: the next period wrap retries with a fresher
		// forecast.
		sh.d.tickErrors.Add(1)
		if cfg.Log != nil {
			cfg.Log.Event("ingest_replan_error",
				obs.F("device", dev.id),
				obs.F("error", err.Error()))
		}
		return false
	}
	copy(dev.plannedUsage, dev.forecastUsage.Values)
	copy(dev.plannedCharging, dev.forecastCharging.Values)
	dev.pending = false
	dev.breachStreak = 0
	dev.replans++
	sh.d.replans.Add(1)
	if cfg.Log != nil {
		cfg.Log.Event("ingest_replan",
			obs.F("device", dev.id),
			obs.F("period", dev.periods),
			obs.F("divergence", dev.divergence),
			obs.F("predictor", cfg.Predictor))
	}
	return true
}

// Stats is a point-in-time snapshot of the daemon's counters.
type Stats struct {
	Datagrams      uint64            `json:"datagrams"`
	Lines          uint64            `json:"lines"`
	Parsed         uint64            `json:"parsed"`
	SamplesApplied uint64            `json:"samplesApplied"`
	Drops          map[string]uint64 `json:"drops"`
	SlotsClosed    uint64            `json:"slotsClosed"`
	Flushes        uint64            `json:"flushes"`
	Replans        uint64            `json:"replans"`
	TickErrors     uint64            `json:"tickErrors"`
	Devices        int               `json:"devices"`
}

// Stats snapshots the counters (lock-free; shard state untouched).
func (d *Daemon) Stats() Stats {
	drops := make(map[string]uint64, len(DropReasons))
	for i, r := range DropReasons {
		drops[r] = d.drops[i].Load()
	}
	return Stats{
		Datagrams:      d.datagrams.Load(),
		Lines:          d.lines.Load(),
		Parsed:         d.parsed.Load(),
		SamplesApplied: d.applied.Load(),
		Drops:          drops,
		SlotsClosed:    d.slotsTotal.Load(),
		Flushes:        d.flushes.Load(),
		Replans:        d.replans.Load(),
		TickErrors:     d.tickErrors.Load(),
		Devices:        int(d.deviceN.Load()),
	}
}

// DeviceStatus is one device's loop state for /v1/ingest/stats.
type DeviceStatus struct {
	DeviceID         string    `json:"deviceId"`
	Slot             int       `json:"slot"`
	Periods          uint64    `json:"periods"`
	Divergence       float64   `json:"divergence"`
	BreachStreak     int       `json:"breachStreak"`
	PendingReplan    bool      `json:"pendingReplan"`
	Replans          uint64    `json:"replans"`
	ForecastUsage    []float64 `json:"forecastUsage,omitempty"`
	ForecastCharging []float64 `json:"forecastCharging,omitempty"`
}

// DeviceStatuses snapshots every tracked device, sorted by id.
func (d *Daemon) DeviceStatuses() []DeviceStatus {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil
	}
	var out []DeviceStatus
	for _, sh := range d.shards {
		sh.do(func(sh *shard) {
			for _, dev := range sh.devices {
				ds := DeviceStatus{
					DeviceID:      dev.id,
					Slot:          dev.slot,
					Periods:       dev.periods,
					Divergence:    dev.divergence,
					BreachStreak:  dev.breachStreak,
					PendingReplan: dev.pending,
					Replans:       dev.replans,
				}
				if dev.forecastUsage != nil {
					ds.ForecastUsage = append([]float64(nil), dev.forecastUsage.Values...)
					ds.ForecastCharging = append([]float64(nil), dev.forecastCharging.Values...)
				}
				out = append(out, ds)
			}
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeviceID < out[j].DeviceID })
	return out
}

// LastFlush returns the most recent flush's wall time and span tree.
func (d *Daemon) LastFlush() (time.Time, []obs.SpanNode) {
	d.traceMu.Lock()
	defer d.traceMu.Unlock()
	return d.lastFlush, d.lastSpans
}

// WriteProm renders the dpmd_ingest_* families:
//
//   - dpmd_ingest_datagrams_total / lines / lines_parsed /
//     lines_dropped{reason} / samples_applied   counters
//   - dpmd_ingest_slots_closed_total / flushes / replans / tick_errors
//   - dpmd_ingest_devices                       gauge (cardinality)
//   - dpmd_ingest_divergence_score{device}      gauge
//   - dpmd_ingest_flush_duration_seconds        histogram
func (d *Daemon) WriteProm(w io.Writer) error {
	st := d.Stats()
	for _, c := range []struct {
		name, help string
		value      uint64
	}{
		{"dpmd_ingest_datagrams_total", "UDP datagrams received.", st.Datagrams},
		{"dpmd_ingest_lines_total", "StatsD lines received (parsed or dropped).", st.Lines},
		{"dpmd_ingest_lines_parsed_total", "Lines parsed into samples.", st.Parsed},
		{"dpmd_ingest_samples_applied_total", "Samples accumulated into a tracked device's window.", st.SamplesApplied},
		{"dpmd_ingest_slots_closed_total", "Flush windows closed into observed slots.", st.SlotsClosed},
		{"dpmd_ingest_flushes_total", "Flush passes.", st.Flushes},
		{"dpmd_ingest_replans_total", "Divergence-triggered fleet replans.", st.Replans},
		{"dpmd_ingest_tick_errors_total", "Fleet tick/replan bridge failures.", st.TickErrors},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.value); err != nil {
			return err
		}
	}
	const dropped = "dpmd_ingest_lines_dropped_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Lines and samples shed, by structured reason.\n# TYPE %s counter\n",
		dropped, dropped); err != nil {
		return err
	}
	for _, r := range DropReasons {
		if err := obs.WriteLabeledCounter(w, dropped, [][2]string{{"reason", r}}, st.Drops[r]); err != nil {
			return err
		}
	}
	if err := obs.WriteGauge(w, "dpmd_ingest_devices",
		"Tracked devices (per-device cardinality).", float64(st.Devices)); err != nil {
		return err
	}
	const score = "dpmd_ingest_divergence_score"
	if _, err := fmt.Fprintf(w, "# HELP %s Last observed-vs-planned relative error, by device.\n# TYPE %s gauge\n",
		score, score); err != nil {
		return err
	}
	for _, ds := range d.DeviceStatuses() {
		if _, err := fmt.Fprintf(w, "%s{device=%q} %g\n", score, ds.DeviceID, ds.Divergence); err != nil {
			return err
		}
	}
	return d.flushHist.WriteProm(w)
}
