package ingest

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseLine throws hostile datagram lines at the parser:
// malformed names, missing type separators, huge/negative/NaN values,
// oversized lines, embedded delimiters and control bytes. The
// invariants: no panic, every line either parses into a well-formed
// sample or maps to exactly one structured drop reason, and accepted
// values are finite and in range.
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		"sat-007.events:+3|c",
		"sat-007.charge:2.36|g",
		"n.charge:-0.5|g",
		"n.events:2|c|@0.5",
		"rack1.node2.events:1|c",
		"",
		":|",
		"n.events:NaN|c",
		"n.events:-9|c",
		"n.charge:+Inf|g",
		"n.events:1e400|c",
		"n.events:1|ms",
		"n.events:1|c|@0",
		".events:1|c",
		"events:1|c",
		"n.:1|c",
		"n.cpu:1|c",
		"a b.events:1|c",
		"n\x00.events:1|c",
		"ü.events:1|c",
		"n.events:" + strings.Repeat("9", MaxLineBytes) + "|c",
		strings.Repeat("a.events:1|c", 100),
		"n.events:0x1p10|c",
		"n.charge:1_000|g",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	valid := make(map[string]bool, len(DropReasons))
	for _, r := range DropReasons {
		valid[r] = true
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		s, reason := ParseLine(line)
		if reason != "" {
			if !valid[reason] {
				t.Fatalf("unstructured drop reason %q for %q", reason, line)
			}
			if s != (Sample{}) {
				t.Fatalf("dropped line %q returned non-zero sample %+v", line, s)
			}
			return
		}
		if s.Device == "" {
			t.Fatalf("accepted line %q with empty device", line)
		}
		for i := 0; i < len(s.Device); i++ {
			c := s.Device[i]
			if c <= ' ' || c >= 0x7f || c == ':' || c == '|' {
				t.Fatalf("accepted device %q with hostile byte %#x", s.Device, c)
			}
		}
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			t.Fatalf("accepted non-finite value %g from %q", s.Value, line)
		}
		if s.Kind == KindCounter && (s.Value < 0 || s.Delta) {
			t.Fatalf("accepted counter %+v from %q", s, line)
		}
		if s.Kind != KindCounter && s.Kind != KindGauge {
			t.Fatalf("accepted unknown kind %d from %q", s.Kind, line)
		}
	})
}

// TestFuzzDropCountersIncrement covers the daemon half of the fuzz
// contract: hostile datagrams fed through Inject bump structured drop
// counters — every received line is accounted parsed or dropped.
func TestFuzzDropCountersIncrement(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Inject([]byte("bogus\nn.events:NaN|c\nn.events:1|ms\nuntracked.events:1|c\n" +
		"n.events:" + strings.Repeat("9", MaxLineBytes) + "|c"))
	st := d.Stats()
	if st.Lines != 5 {
		t.Fatalf("lines = %d, want 5", st.Lines)
	}
	for reason, want := range map[string]uint64{
		DropMalformed: 1,
		DropValue:     1,
		DropType:      1,
		DropOversize:  1,
	} {
		if st.Drops[reason] != want {
			t.Errorf("drops[%s] = %d, want %d", reason, st.Drops[reason], want)
		}
	}
	// The well-formed untracked line parses, then drops at routing
	// inside the shard; flush the queue with a no-op control command.
	waitStats(t, d, func(st Stats) bool { return st.Drops[DropUntracked] == 1 })
	st = d.Stats()
	if st.Parsed != 1 {
		t.Errorf("parsed = %d, want 1", st.Parsed)
	}
	var total uint64
	for _, n := range st.Drops {
		total += n
	}
	if st.Parsed+st.Drops[DropMalformed]+st.Drops[DropValue]+st.Drops[DropType]+st.Drops[DropOversize] != st.Lines {
		t.Errorf("line accounting: parsed %d + drops %v != lines %d", st.Parsed, st.Drops, st.Lines)
	}
	if total != 5 {
		t.Errorf("total drops = %d, want 5 (4 parse + 1 untracked)", total)
	}
}
