package ingest

import (
	"math"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	for _, tc := range []struct {
		name string
		line string
		want Sample
	}{
		{"counter", "sat-007.events:3|c", Sample{Device: "sat-007", Kind: KindCounter, Value: 3}},
		{"counter plus", "sat-007.events:+5|c", Sample{Device: "sat-007", Kind: KindCounter, Value: 5}},
		{"counter fractional", "n.events:0.5|c", Sample{Device: "n", Kind: KindCounter, Value: 0.5}},
		{"counter sampled", "n.events:2|c|@0.5", Sample{Device: "n", Kind: KindCounter, Value: 4}},
		{"gauge", "sat-007.charge:2.36|g", Sample{Device: "sat-007", Kind: KindGauge, Value: 2.36}},
		{"gauge delta up", "n.charge:+0.5|g", Sample{Device: "n", Kind: KindGauge, Value: 0.5, Delta: true}},
		{"gauge delta down", "n.charge:-0.5|g", Sample{Device: "n", Kind: KindGauge, Value: -0.5, Delta: true}},
		{"gauge zero", "n.charge:0|g", Sample{Device: "n", Kind: KindGauge, Value: 0}},
		{"dotted device", "rack1.node2.events:1|c", Sample{Device: "rack1.node2", Kind: KindCounter, Value: 1}},
	} {
		got, reason := ParseLine([]byte(tc.line))
		if reason != "" {
			t.Errorf("%s: dropped with reason %q", tc.name, reason)
			continue
		}
		if got.Device != tc.want.Device || got.Kind != tc.want.Kind ||
			math.Abs(got.Value-tc.want.Value) > 1e-12 || got.Delta != tc.want.Delta {
			t.Errorf("%s: got %+v want %+v", tc.name, got, tc.want)
		}
	}
}

func TestParseLineDrops(t *testing.T) {
	for _, tc := range []struct {
		name   string
		line   string
		reason string
	}{
		{"empty", "", DropEmpty},
		{"oversize", "n.events:" + strings.Repeat("1", MaxLineBytes) + "|c", DropOversize},
		{"no colon", "n.events|c", DropMalformed},
		{"colon first", ":1|c", DropMalformed},
		{"no pipe", "n.events:1", DropMalformed},
		{"empty value", "n.events:|c", DropMalformed},
		{"unknown type", "n.events:1|ms", DropType},
		{"empty type", "n.events:1|", DropType},
		{"counter field as gauge", "n.events:1|g", DropType},
		{"gauge field as counter", "n.charge:1|c", DropType},
		{"no dot", "events:1|c", DropName},
		{"empty device", ".events:1|c", DropName},
		{"trailing dot", "n.:1|c", DropName},
		{"unknown field", "n.cpu:1|c", DropName},
		{"control byte in device", "n\x01.events:1|c", DropName},
		{"space in device", "a b.events:1|c", DropName},
		{"non-ascii device", "ü.events:1|c", DropName},
		{"nan value", "n.charge:NaN|g", DropValue},
		{"inf value", "n.charge:Inf|g", DropValue},
		{"negative counter", "n.events:-1|c", DropValue},
		{"huge value", "n.events:1e400|c", DropValue},
		{"garbage value", "n.events:abc|c", DropValue},
		{"bad rate", "n.events:1|c|0.5", DropRate},
		{"zero rate", "n.events:1|c|@0", DropRate},
		{"rate above one", "n.events:1|c|@1.5", DropRate},
		{"empty rate", "n.events:1|c|@", DropRate},
	} {
		_, reason := ParseLine([]byte(tc.line))
		if reason != tc.reason {
			t.Errorf("%s: reason = %q, want %q", tc.name, reason, tc.reason)
		}
	}
}
