package ingest

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dpm/internal/schedule"
)

func waitStats(t *testing.T, d *Daemon, ok func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok(d.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached; stats %+v", d.Stats())
}

// stubReplanner records the bridge calls the daemon makes.
type stubReplanner struct {
	mu           sync.Mutex
	ticks        []SlotObservation
	replans      int
	lastUsage    *schedule.Grid
	lastCharging *schedule.Grid
	replanErr    error
}

func (r *stubReplanner) Tick(_ context.Context, _ string, obs SlotObservation) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ticks = append(r.ticks, obs)
	return nil
}

func (r *stubReplanner) Replan(_ context.Context, _ string, usage, charging *schedule.Grid) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replanErr != nil {
		return r.replanErr
	}
	r.replans++
	r.lastUsage, r.lastCharging = usage, charging
	return nil
}

func (r *stubReplanner) snapshot() (int, *schedule.Grid, *schedule.Grid) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replans, r.lastUsage, r.lastCharging
}

func flat(n int, v float64) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return vals
}

// playPeriod injects one flush window per slot (events at the given
// rate, an absolute charge gauge) and flushes it, for a full period.
func playPeriod(t *testing.T, d *Daemon, dev string, slots int, events int, chargeW float64) {
	t.Helper()
	for s := 0; s < slots; s++ {
		var b strings.Builder
		for e := 0; e < events; e++ {
			fmt.Fprintf(&b, "%s.events:1|c\n", dev)
		}
		fmt.Fprintf(&b, "%s.charge:%g|g", dev, chargeW)
		d.Inject([]byte(b.String()))
		if _, err := d.FlushNow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrackFlushForecastReplan(t *testing.T) {
	// Full loop: a tracked device whose observed usage doubles must,
	// after the hysteresis arms, get exactly one forecast-driven replan
	// at the next period wrap — with the forecast matching the observed
	// period, not the stale registration plan.
	rp := &stubReplanner{}
	d, err := New(Config{
		Replanner:    rp,
		EventEnergyJ: 4.8, // one event per window == one watt
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const slots = 4
	usage := schedule.NewGrid(4.8, flat(slots, 1))
	charging := schedule.NewGrid(4.8, flat(slots, 2))
	if err := d.Track("sat-007", usage, charging); err != nil {
		t.Fatal(err)
	}

	// Period 1 matches the plan: no divergence, and the wrap gives the
	// last-period predictor its first forecast.
	playPeriod(t, d, "sat-007", slots, 1, 2)
	if n, _, _ := rp.snapshot(); n != 0 {
		t.Fatalf("replans after matching period = %d", n)
	}
	st := d.Stats()
	if st.SlotsClosed != slots || st.Flushes != slots {
		t.Fatalf("slots/flushes = %d/%d, want %d/%d", st.SlotsClosed, st.Flushes, slots, slots)
	}

	// Period 2 doubles the usage: every slot breaches (rel err 1.0),
	// the third consecutive breach arms the replan, and the period wrap
	// fires it with the doubled forecast.
	playPeriod(t, d, "sat-007", slots, 2, 2)
	n, fu, fc := rp.snapshot()
	if n != 1 {
		t.Fatalf("replans after divergent period = %d, want 1", n)
	}
	if !fu.Equal(schedule.NewGrid(4.8, flat(slots, 2)), 1e-9) {
		t.Errorf("forecast usage = %v, want flat 2 W", fu.Values)
	}
	if !fc.Equal(schedule.NewGrid(4.8, flat(slots, 2)), 1e-9) {
		t.Errorf("forecast charging = %v, want flat 2 W", fc.Values)
	}

	// Period 3 holds the doubled rate: it now matches the replanned
	// expectation, so no further replans fire.
	playPeriod(t, d, "sat-007", slots, 2, 2)
	if n, _, _ := rp.snapshot(); n != 1 {
		t.Errorf("replans after converged period = %d, want still 1", n)
	}
	if got := d.Stats().Replans; got != 1 {
		t.Errorf("stats replans = %d, want 1", got)
	}

	// Ticks carried the observed energies: 12 slots, the divergent
	// period's at 2 W × 4.8 s.
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if len(rp.ticks) != 3*slots {
		t.Fatalf("ticks = %d, want %d", len(rp.ticks), 3*slots)
	}
	mid := rp.ticks[slots]
	if mid.Slot != 0 || mid.UsedJ != 2*4.8 || mid.SuppliedJ != 2*4.8 {
		t.Errorf("divergent-period first tick = %+v", mid)
	}

	// The flush span tree shows the staged pipeline.
	_, spans := d.LastFlush()
	if len(spans) != 1 || spans[0].Name != "ingest.flush" {
		t.Fatalf("span roots = %+v", spans)
	}
	if len(spans[0].Spans) != 1 || spans[0].Spans[0].Name != "ingest.forecast" {
		t.Fatalf("flush children = %+v", spans[0].Spans)
	}
}

func TestDivergenceHysteresisNoFlap(t *testing.T) {
	// A rate oscillating across the threshold boundary every other
	// window must not flap replans: the breach streak never reaches
	// HysteresisUp, so zero replans fire no matter how many times the
	// score crosses the line.
	rp := &stubReplanner{}
	d, err := New(Config{
		Replanner:           rp,
		EventEnergyJ:        4.8,
		DivergenceThreshold: 0.25,
		HysteresisUp:        3,
		HysteresisDown:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const slots = 4
	plan := schedule.NewGrid(4.8, flat(slots, 2))
	if err := d.Track("osc", plan, plan); err != nil {
		t.Fatal(err)
	}
	// 6 periods of alternating breach (3 events = 1.5× plan, rel err
	// 0.5) and clear (2 events, rel err 0) windows.
	for w := 0; w < 6*slots; w++ {
		events := 2
		if w%2 == 0 {
			events = 3
		}
		var b strings.Builder
		for e := 0; e < events; e++ {
			fmt.Fprintf(&b, "osc.events:1|c\n")
		}
		b.WriteString("osc.charge:2|g")
		d.Inject([]byte(b.String()))
		if _, err := d.FlushNow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n, _, _ := rp.snapshot(); n != 0 {
		t.Fatalf("oscillating boundary fired %d replans, want 0", n)
	}

	// A sustained breach window fires exactly once: the replan adopts
	// the observed rate, divergence collapses, and the cooldown holds
	// until the clear streak re-arms — no second replan for the same
	// sustained shift.
	for p := 0; p < 3; p++ {
		playPeriod(t, d, "osc", slots, 4, 2) // 2× plan, every window breaches
	}
	if n, _, _ := rp.snapshot(); n != 1 {
		t.Fatalf("sustained breach fired %d replans, want exactly 1", n)
	}
}

func TestGaugeSemantics(t *testing.T) {
	// Absolute gauges set the level, signed gauges move it, and a
	// silent window carries the last level forward.
	rp := &stubReplanner{}
	d, err := New(Config{Replanner: rp, EventEnergyJ: 4.8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	plan := schedule.NewGrid(4.8, flat(2, 1))
	if err := d.Track("g", plan, plan); err != nil {
		t.Fatal(err)
	}
	// Window 1: 3.0 then -1.0 delta → samples 3 and 2, mean 2.5 W.
	d.Inject([]byte("g.charge:3|g\ng.charge:-1|g"))
	if _, err := d.FlushNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Window 2: silence → carry the 2 W level forward.
	if _, err := d.FlushNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if len(rp.ticks) != 2 {
		t.Fatalf("ticks = %d", len(rp.ticks))
	}
	if got := rp.ticks[0].SuppliedJ; got != 2.5*4.8 {
		t.Errorf("window 1 supplied = %g J, want %g", got, 2.5*4.8)
	}
	if got := rp.ticks[1].SuppliedJ; got != 2*4.8 {
		t.Errorf("carry-forward window supplied = %g J, want %g", got, 2.0*4.8)
	}
}

func TestTrackValidationAndCap(t *testing.T) {
	d, err := New(Config{MaxDevices: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	g := schedule.NewGrid(4.8, flat(2, 1))
	if err := d.Track("", g, g); err == nil {
		t.Error("empty device id must be rejected")
	}
	if err := d.Track("a", nil, g); err == nil {
		t.Error("nil grid must be rejected")
	}
	if err := d.Track("a", g, schedule.NewGrid(2.4, flat(2, 1))); err == nil {
		t.Error("mismatched geometry must be rejected")
	}
	if err := d.Track("a", g, g); err != nil {
		t.Fatal(err)
	}
	if err := d.Track("b", g, g); err != nil {
		t.Fatal(err)
	}
	if err := d.Track("c", g, g); err == nil {
		t.Error("tracking beyond MaxDevices must be rejected")
	}
	if got := d.Stats().Drops[DropCardinality]; got != 1 {
		t.Errorf("cardinality drops = %d, want 1", got)
	}
	// Re-tracking an existing device is not a new slot.
	if err := d.Track("a", g, g); err != nil {
		t.Errorf("re-track: %v", err)
	}
	d.Untrack("b")
	if err := d.Track("c", g, g); err != nil {
		t.Errorf("track after untrack: %v", err)
	}
	if got := d.Stats().Devices; got != 2 {
		t.Errorf("devices = %d, want 2", got)
	}
}

func TestUDPIngestAndCleanShutdown(t *testing.T) {
	// The daemon must drain real UDP datagrams and leave no goroutines
	// behind after Close — the leak check the CI smoke repeats against
	// the full binary.
	before := runtime.NumGoroutine()
	d, err := New(Config{Addr: "127.0.0.1:0", FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	g := schedule.NewGrid(4.8, flat(2, 1))
	if err := d.Track("u", g, g); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 20; i++ {
		if _, err := conn.Write([]byte("u.events:2|c\nu.charge:1.5|g")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	waitStats(t, d, func(st Stats) bool { return st.SamplesApplied >= 2 && st.Flushes >= 1 })
	d.Close()
	d.Close() // idempotent
	if _, err := d.FlushNow(context.Background()); err != ErrClosed {
		t.Errorf("FlushNow after Close = %v, want ErrClosed", err)
	}
	if err := d.Track("x", g, g); err != ErrClosed {
		t.Errorf("Track after Close = %v, want ErrClosed", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines %d before, %d after Close", before, after)
	}
}

func TestWritePromFamilies(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	g := schedule.NewGrid(4.8, flat(2, 1))
	if err := d.Track("p", g, g); err != nil {
		t.Fatal(err)
	}
	d.Inject([]byte("p.events:1|c\nbogus"))
	if _, err := d.FlushNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := d.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dpmd_ingest_lines_total 2",
		"dpmd_ingest_lines_parsed_total 1",
		`dpmd_ingest_lines_dropped_total{reason="malformed"} 1`,
		`dpmd_ingest_lines_dropped_total{reason="backpressure"} 0`,
		"dpmd_ingest_replans_total 0",
		"dpmd_ingest_devices 1",
		`dpmd_ingest_divergence_score{device="p"}`,
		"dpmd_ingest_flush_duration_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"unknown predictor":  {Predictor: "oracle"},
		"negative threshold": {DivergenceThreshold: -1},
		"zero hysteresis":    {HysteresisUp: -1},
		"negative energy":    {EventEnergyJ: -2},
		"negative flush":     {FlushInterval: -time.Second},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config must be rejected", name)
		}
	}
}
