package ingest

import (
	"math"
	"strconv"
)

// StatsD line protocol ----------------------------------------------
//
// One datagram carries newline-separated lines of the form
//
//	<device>.events:+N|c[|@rate]   task-arrival counter (events/window)
//	<device>.charge:X|g            charging-power gauge in watts
//	<device>.charge:+X|g / -X|g    gauge delta (StatsD sign convention)
//
// The device id is everything before the last '.'; the metric field
// after it selects the signal. Parsing never panics on hostile input:
// every malformed line maps to a structured drop reason that the
// daemon counts (dpmd_ingest_lines_dropped_total{reason=...}).

// MetricKind discriminates the two accepted StatsD types.
type MetricKind uint8

const (
	// KindCounter is a "|c" line: task arrivals in the flush window.
	KindCounter MetricKind = iota
	// KindGauge is a "|g" line: the charging power in watts.
	KindGauge
)

// Field names the two accepted metric suffixes.
const (
	// FieldEvents is the counter suffix: <device>.events.
	FieldEvents = "events"
	// FieldCharge is the gauge suffix: <device>.charge.
	FieldCharge = "charge"
)

// MaxLineBytes bounds one line; longer lines drop with reason
// "oversize". 512 bytes is far above any well-formed line (device ids
// are capped at 256 by the fleet layer) while keeping hostile
// datagrams cheap to reject.
const MaxLineBytes = 512

// Structured drop reasons. Every line the daemon does not apply is
// counted under exactly one of these.
const (
	// DropEmpty is a blank line (trailing newline in a datagram).
	DropEmpty = "empty"
	// DropOversize is a line beyond MaxLineBytes.
	DropOversize = "oversize"
	// DropMalformed is a line without the name:value|type shape.
	DropMalformed = "malformed"
	// DropName is a missing or unusable device/metric name.
	DropName = "name"
	// DropType is an unknown metric type suffix.
	DropType = "type"
	// DropValue is an unparseable, non-finite or (for counters)
	// negative value.
	DropValue = "value"
	// DropRate is a malformed |@ sample rate.
	DropRate = "rate"
	// DropUntracked is a well-formed sample for a device with no
	// registered fleet session — counted at routing, not parse time,
	// and the cardinality guard against name-flooding.
	DropUntracked = "untracked"
	// DropBackpressure is a sample discarded because its shard's
	// queue was full — load-shedding, never blocking the reader.
	DropBackpressure = "backpressure"
	// DropCardinality is a tracked-device slot refused because the
	// daemon is at its MaxDevices cap.
	DropCardinality = "cardinality"
)

// DropReasons lists every structured drop reason, in exposition
// order; /metrics renders a zero-valued counter per reason so
// dashboards can rate() them before the first drop.
var DropReasons = []string{
	DropEmpty, DropOversize, DropMalformed, DropName, DropType,
	DropValue, DropRate, DropUntracked, DropBackpressure, DropCardinality,
}

// Sample is one parsed line.
type Sample struct {
	// Device is the fleet device id (the name before the last '.').
	Device string
	// Kind discriminates counter vs gauge.
	Kind MetricKind
	// Value is the parsed number: counted events for counters
	// (sample-rate corrected), watts (or a watt delta) for gauges.
	Value float64
	// Delta marks a signed gauge ("+X"/"-X"): apply relative to the
	// previous gauge level rather than absolutely.
	Delta bool
}

// ParseLine parses one StatsD line. The empty reason means ok;
// otherwise the sample is zero and reason names the drop counter to
// bump. The input slice is never retained.
func ParseLine(line []byte) (Sample, string) {
	if len(line) == 0 {
		return Sample{}, DropEmpty
	}
	if len(line) > MaxLineBytes {
		return Sample{}, DropOversize
	}
	colon := -1
	for i := 0; i < len(line); i++ {
		if line[i] == ':' {
			colon = i
			break
		}
	}
	if colon <= 0 {
		return Sample{}, DropMalformed
	}
	name := line[:colon]
	rest := line[colon+1:]
	pipe := -1
	for i := 0; i < len(rest); i++ {
		if rest[i] == '|' {
			pipe = i
			break
		}
	}
	if pipe <= 0 {
		return Sample{}, DropMalformed
	}
	valueText := rest[:pipe]
	typeText := rest[pipe+1:]

	// Optional trailing "|@rate" (counters only, per StatsD).
	rate := 1.0
	if i := indexByte(typeText, '|'); i >= 0 {
		tail := typeText[i+1:]
		typeText = typeText[:i]
		if len(tail) < 2 || tail[0] != '@' {
			return Sample{}, DropRate
		}
		r, err := strconv.ParseFloat(string(tail[1:]), 64)
		if err != nil || math.IsNaN(r) || r <= 0 || r > 1 {
			return Sample{}, DropRate
		}
		rate = r
	}

	var kind MetricKind
	switch {
	case len(typeText) == 1 && typeText[0] == 'c':
		kind = KindCounter
	case len(typeText) == 1 && typeText[0] == 'g':
		kind = KindGauge
	default:
		return Sample{}, DropType
	}

	// Split <device>.<field> on the LAST dot so device ids may
	// themselves contain dots.
	dot := -1
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			dot = i
			break
		}
	}
	if dot <= 0 || dot == len(name)-1 {
		return Sample{}, DropName
	}
	device, field := name[:dot], name[dot+1:]
	switch string(field) {
	case FieldEvents:
		if kind != KindCounter {
			return Sample{}, DropType
		}
	case FieldCharge:
		if kind != KindGauge {
			return Sample{}, DropType
		}
	default:
		return Sample{}, DropName
	}
	for i := 0; i < len(device); i++ {
		// Printable ASCII without protocol delimiters; anything else
		// (control bytes, UTF-8 confusables, embedded ':'/'|') drops.
		c := device[i]
		if c <= ' ' || c >= 0x7f || c == ':' || c == '|' {
			return Sample{}, DropName
		}
	}

	delta := false
	if kind == KindGauge && len(valueText) > 0 && (valueText[0] == '+' || valueText[0] == '-') {
		delta = true
	}
	v, err := strconv.ParseFloat(string(valueText), 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return Sample{}, DropValue
	}
	if kind == KindCounter {
		if v < 0 {
			return Sample{}, DropValue
		}
		v /= rate
	}
	return Sample{Device: string(device), Kind: kind, Value: v, Delta: delta}, ""
}

func indexByte(b []byte, c byte) int {
	for i := 0; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}
