package ingest

import (
	"context"
	"fmt"
	"testing"

	"dpm/internal/schedule"
)

// BenchmarkParseLine measures the hot parse path on a representative
// sampled counter line.
func BenchmarkParseLine(b *testing.B) {
	line := []byte("sat-007.events:+3|c|@0.5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, reason := ParseLine(line); reason != "" {
			b.Fatal(reason)
		}
	}
}

// BenchmarkIngestFlush measures one full flush pass — 64 tracked
// devices, each with a fresh sample window — including the per-device
// slot close, divergence scoring and span capture.
func BenchmarkIngestFlush(b *testing.B) {
	d, err := New(Config{EventEnergyJ: 4.8})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	vals := make([]float64, 12)
	for i := range vals {
		vals[i] = 1.2
	}
	g := schedule.NewGrid(4.8, vals)
	var datagram []byte
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("dev-%03d", i)
		if err := d.Track(id, g, g); err != nil {
			b.Fatal(err)
		}
		datagram = append(datagram, []byte(id+".events:6|c\n"+id+".charge:2.4|g\n")...)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Inject(datagram)
		if _, err := d.FlushNow(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
