package dpm

import (
	"testing"

	"dpm/internal/params"
	"dpm/internal/power"
	"dpm/internal/trace"
)

func TestNewVector(t *testing.T) {
	m, err := NewVector(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	vp, overhead, err := m.BeginSlotVector()
	if err != nil {
		t.Fatal(err)
	}
	if overhead != 0 {
		t.Errorf("first slot charged overhead %g", overhead)
	}
	if vp.Power > m.PlannedPower()+1e-9 && vp.N() > 0 {
		t.Errorf("assignment %v exceeds budget %g", vp.Freqs, m.PlannedPower())
	}
	if got := m.CurrentVector(); !vectorEqual(got, vp) {
		t.Error("CurrentVector must return the last assignment")
	}
}

func TestNewVectorPropagatesErrors(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	cfg.Charging = nil
	if _, err := NewVector(cfg); err == nil {
		t.Error("broken config must error")
	}
}

func TestVectorEqual(t *testing.T) {
	a := params.VectorPoint{Freqs: []float64{80e6, 20e6}}
	b := params.VectorPoint{Freqs: []float64{80e6, 20e6}}
	c := params.VectorPoint{Freqs: []float64{80e6}}
	d := params.VectorPoint{Freqs: []float64{80e6, 40e6}}
	if !vectorEqual(a, b) || vectorEqual(a, c) || vectorEqual(a, d) {
		t.Error("vectorEqual broken")
	}
}

func TestVectorSwitchCost(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	cfg.Params.OverheadProc = 1
	cfg.Params.OverheadFreq = 0.1
	m, err := NewVector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := params.VectorPoint{Freqs: []float64{80e6, 20e6}}
	b := params.VectorPoint{Freqs: []float64{80e6, 40e6}}
	if got := m.vectorSwitchCost(a, b); got != 0.1 {
		t.Errorf("one clock change = %g", got)
	}
	c := params.VectorPoint{Freqs: []float64{80e6}}
	if got := m.vectorSwitchCost(a, c); got != 1 {
		t.Errorf("count change = %g", got)
	}
	if got := m.vectorSwitchCost(a, a); got != 0 {
		t.Errorf("no-op = %g", got)
	}
}

func TestSimulateVectorScenarioI(t *testing.T) {
	res, err := SimulateVector(SimConfig{Manager: managerConfig(t, trace.ScenarioI()), Periods: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("records = %d", len(res.Records))
	}
	s := trace.ScenarioI()
	for i, r := range res.Records {
		if r.Charge < s.CapacityMin-1e-9 || r.Charge > s.CapacityMax+1e-9 {
			t.Errorf("slot %d: charge %g out of band", i, r.Charge)
		}
	}
}

func TestSimulateVectorValidation(t *testing.T) {
	if _, err := SimulateVector(SimConfig{Manager: managerConfig(t, trace.ScenarioI()), Periods: 0}); err == nil {
		t.Error("zero periods must error")
	}
}

// The §6 payoff: per-processor clocks deliver at least as much
// performance as the common clock for the same scenario and energy
// envelope.
func TestVectorBeatsHomogeneousPerformance(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	hom, err := Simulate(SimConfig{Manager: cfg, Periods: 2})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := SimulateVector(SimConfig{Manager: cfg, Periods: 2})
	if err != nil {
		t.Fatal(err)
	}
	if vec.PerfSeconds < hom.PerfSeconds*0.98 {
		t.Errorf("vector perf %.3g below homogeneous %.3g", vec.PerfSeconds, hom.PerfSeconds)
	}
	// Energy discipline holds in both modes.
	if vec.Battery.Undersupplied > hom.Battery.Undersupplied+5 {
		t.Errorf("vector undersupply %.2f J far above homogeneous %.2f J",
			vec.Battery.Undersupplied, hom.Battery.Undersupplied)
	}
}

func TestNewHetero(t *testing.T) {
	procs := make([]power.ProcessorModel, 7)
	for i := range procs {
		procs[i] = power.M32RD()
	}
	fleet, err := params.NewFleet(procs, []float64{2, 1.5, 1.2, 1, 1, 0.8, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHetero(managerConfig(t, trace.ScenarioI()), fleet)
	if err != nil {
		t.Fatal(err)
	}
	vp, _, err := m.BeginSlotVector()
	if err != nil {
		t.Fatal(err)
	}
	if vp.N() == 0 {
		t.Fatal("no workers assigned on a funded slot")
	}
	if vp.Power > m.PlannedPower()+1e-9 {
		t.Errorf("assignment %v exceeds budget %g", vp.Freqs, m.PlannedPower())
	}
	// Mixed fleet should beat the uniform common-clock point at the
	// same budget (the fast chips do the serial work).
	uniform, err := NewVector(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	uvp, _, err := uniform.BeginSlotVector()
	if err != nil {
		t.Fatal(err)
	}
	if vp.Perf < uvp.Perf {
		t.Errorf("hetero perf %g below uniform %g", vp.Perf, uvp.Perf)
	}
}

func TestNewHeteroEmptyFleet(t *testing.T) {
	if _, err := NewHetero(managerConfig(t, trace.ScenarioI()), params.Fleet{}); err == nil {
		t.Error("empty fleet must error")
	}
}
