package dpm

import (
	"math"
	"testing"

	"dpm/internal/trace"
)

func TestSimulateScenarioI(t *testing.T) {
	res, err := Simulate(SimConfig{Manager: managerConfig(t, trace.ScenarioI()), Periods: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("records = %d, want 24 (two periods of 12)", len(res.Records))
	}
	// Times advance by τ.
	for i, r := range res.Records {
		if math.Abs(r.Time-float64(i)*trace.Tau) > 1e-9 {
			t.Errorf("record %d time = %g", i, r.Time)
		}
		if len(r.Plan) != 12 {
			t.Errorf("record %d plan snapshot has %d slots", i, len(r.Plan))
		}
		if r.UsedPower < 0 || r.SuppliedPower < 0 {
			t.Errorf("record %d has negative power", i)
		}
	}
	if res.PerfSeconds <= 0 {
		t.Error("manager must deliver some performance")
	}
}

func TestSimulateBatteryStaysInBand(t *testing.T) {
	for _, s := range trace.Scenarios() {
		res, err := Simulate(SimConfig{Manager: managerConfig(t, s), Periods: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res.Records {
			if r.Charge < s.CapacityMin-1e-9 || r.Charge > s.CapacityMax+1e-9 {
				t.Errorf("scenario %s slot %d: charge %g outside [%g, %g]",
					s.Name, i, r.Charge, s.CapacityMin, s.CapacityMax)
			}
		}
	}
}

func TestSimulateLowWaste(t *testing.T) {
	// The whole point of the algorithm: wasted and undersupplied
	// energy stay a small fraction of the supplied energy.
	for _, s := range trace.Scenarios() {
		res, err := Simulate(SimConfig{Manager: managerConfig(t, s), Periods: 2})
		if err != nil {
			t.Fatal(err)
		}
		supplied := res.Battery.TotalSupplied
		if res.Battery.Wasted > 0.35*supplied {
			t.Errorf("scenario %s: wasted %g J of %g J supplied", s.Name, res.Battery.Wasted, supplied)
		}
		if res.Battery.Undersupplied > 0.35*supplied {
			t.Errorf("scenario %s: undersupplied %g J of %g J supplied", s.Name, res.Battery.Undersupplied, supplied)
		}
	}
}

func TestSimulateWithSupplyDeviation(t *testing.T) {
	// Actual supply 20% below expectation: Algorithm 3 must keep the
	// system alive (no panic, bounded undersupply) by scaling back.
	s := trace.ScenarioI()
	actual := s.Charging.Scale(0.8)
	res, err := Simulate(SimConfig{
		Manager:        managerConfig(t, s),
		ActualCharging: actual,
		Periods:        3,
		SyncCharge:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	supplied := res.Battery.TotalSupplied
	if res.Battery.Undersupplied > 0.5*supplied {
		t.Errorf("undersupplied %g J out of %g J even with adaptation", res.Battery.Undersupplied, supplied)
	}
	// Adaptation must show up as plan changes across periods.
	first := res.Records[0].Plan
	last := res.Records[len(res.Records)-1].Plan
	same := true
	for i := range first {
		if math.Abs(first[i]-last[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("plan never adapted despite a 20% supply shortfall")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{Manager: managerConfig(t, trace.ScenarioI()), Periods: 0}); err == nil {
		t.Error("zero periods must error")
	}
}

func TestSimulateSyncChargeTracksBattery(t *testing.T) {
	s := trace.ScenarioI()
	res, err := Simulate(SimConfig{Manager: managerConfig(t, s), Periods: 2, SyncCharge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	// With SyncCharge the last recorded charge is the battery's.
	last := res.Records[len(res.Records)-1]
	if math.Abs(last.Charge-res.Battery.Charge) > 1e-9 {
		t.Errorf("record charge %g vs battery %g", last.Charge, res.Battery.Charge)
	}
}

func TestBatteryModelString(t *testing.T) {
	if NetFlow.String() != "net-flow" || Sequential.String() != "sequential" {
		t.Error("battery model names wrong")
	}
	if BatteryModel(7).String() != "BatteryModel(7)" {
		t.Error("unknown model formatting wrong")
	}
}

func TestSimulateSequentialModel(t *testing.T) {
	// Sequential accounting charges the slot's whole supply before the
	// draw, so a tight battery wastes more than under net flow.
	cfg := managerConfig(t, trace.ScenarioI())
	cfg.DisableSlotGuards = true
	net, err := Simulate(SimConfig{Manager: cfg, Periods: 2, Battery: NetFlow})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Simulate(SimConfig{Manager: cfg, Periods: 2, Battery: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Battery.Wasted <= net.Battery.Wasted {
		t.Errorf("sequential wasted %g J should exceed net-flow %g J",
			seq.Battery.Wasted, net.Battery.Wasted)
	}
}
