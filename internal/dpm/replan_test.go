package dpm

import (
	"testing"

	"dpm/internal/trace"
)

// driveSlots runs the manager closed-loop for n slots assuming the
// plan holds and the expected supply arrives.
func driveSlots(t *testing.T, m *Manager, n int) {
	t.Helper()
	for s := 0; s < n; s++ {
		pt, _ := m.BeginSlot()
		idx := s % m.Slots()
		m.EndSlot(pt.Power*m.Tau(), m.cfg.Charging.Values[idx]*m.Tau())
	}
}

func TestReplanOneDeathStaysFeasible(t *testing.T) {
	// Losing one of seven workers leaves enough capability to absorb
	// scenario I's supply: the re-plan must be fully feasible.
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	driveSlots(t, m, 5)
	slot, charge := m.Slot(), m.Charge()

	inf, err := m.Replan(6)
	if err != nil {
		t.Fatal(err)
	}
	if inf != 0 {
		t.Errorf("one-death replan reported %d infeasible slots, want 0", inf)
	}
	for _, p := range m.Table().Points() {
		if p.N > 6 {
			t.Fatalf("degraded table still offers n = %d", p.N)
		}
	}
	if m.Slot() != slot {
		t.Errorf("slot counter changed: %d -> %d", slot, m.Slot())
	}
	if m.Charge() != charge {
		t.Errorf("charge estimate changed: %g -> %g", charge, m.Charge())
	}

	// The projected trajectory under the new plan stays inside the
	// battery band — the planner never pins the battery outside
	// [Cmin, Cmax].
	cfg := m.cfg
	ch := m.Charge()
	start := m.Slot() % m.Slots()
	for k := 0; k < m.Slots(); k++ {
		i := (start + k) % m.Slots()
		ch += (cfg.Charging.Values[i] - m.PlanSnapshot()[i]) * m.Tau()
		if ch < cfg.CapacityMin-1e-6 || ch > cfg.CapacityMax+1e-6 {
			t.Errorf("projected charge %g at slot +%d outside [%g, %g]",
				ch, k, cfg.CapacityMin, cfg.CapacityMax)
		}
	}

	// The manager keeps planning without error after the cap.
	driveSlots(t, m, 12)
	pt, _ := m.BeginSlot()
	if pt.N > 6 {
		t.Errorf("post-replan point uses n = %d > 6", pt.N)
	}
}

func TestReplanDeepCutClampsToCeiling(t *testing.T) {
	// With only three workers left the board cannot spend scenario
	// I's sunlight supply: the re-plan clamps those slots to the
	// degraded ceiling (the surplus becomes wasted energy at Cmax)
	// and reports them as infeasibility events — but it must never
	// plan to draw the battery below Cmin.
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	driveSlots(t, m, 5)

	inf, err := m.Replan(3)
	if err != nil {
		t.Fatal(err)
	}
	if inf == 0 {
		t.Error("deep capability cut should report infeasible slots")
	}
	maxPower := m.Table().Points()[m.Table().Len()-1].Power
	for i, v := range m.PlanSnapshot() {
		if v < 0 || v > maxPower+1e-9 {
			t.Errorf("plan[%d] = %g outside [0, %g]", i, v, maxPower)
		}
	}
	cfg := m.cfg
	ch := m.Charge()
	start := m.Slot() % m.Slots()
	for k := 0; k < m.Slots(); k++ {
		i := (start + k) % m.Slots()
		ch += (cfg.Charging.Values[i] - m.PlanSnapshot()[i]) * m.Tau()
		if ch > cfg.CapacityMax {
			ch = cfg.CapacityMax // overflow is waste, not planner error
		}
		if ch < cfg.CapacityMin-1e-6 {
			t.Errorf("planner draws the battery to %g at slot +%d, below Cmin %g",
				ch, k, cfg.CapacityMin)
		}
	}
}

func TestReplanMidPeriodRotation(t *testing.T) {
	// Replanning at slot 0 and at slot 6 must both produce plans
	// aligned to absolute slot indices: the eclipse half of scenario
	// I (slots 6..11) can never out-spend the battery.
	for _, at := range []int{0, 6} {
		m, err := New(managerConfig(t, trace.ScenarioI()))
		if err != nil {
			t.Fatal(err)
		}
		driveSlots(t, m, at)
		if _, err := m.Replan(5); err != nil {
			t.Fatal(err)
		}
		plan := m.PlanSnapshot()
		var sunlight, eclipse float64
		for i := 0; i < 6; i++ {
			sunlight += plan[i]
		}
		for i := 6; i < 12; i++ {
			eclipse += plan[i]
		}
		if eclipse > sunlight {
			t.Errorf("replan at slot %d allocated more power to eclipse (%g) than sunlight (%g); rotation misaligned",
				at, eclipse, sunlight)
		}
	}
}

func TestReplanCurrentPointSnapped(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	driveSlots(t, m, 1)
	if m.CurrentPoint().N == 0 {
		t.Skip("scenario start chose the off point; nothing to snap")
	}
	if _, err := m.Replan(1); err != nil {
		t.Fatal(err)
	}
	if n := m.CurrentPoint().N; n > 1 {
		t.Errorf("current point still names %d processors after Replan(1)", n)
	}
}

func TestReplanClampsAboveConfig(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	// Asking for more processors than configured is a no-op cap.
	if _, err := m.Replan(99); err != nil {
		t.Fatal(err)
	}
	maxN := 0
	for _, p := range m.Table().Points() {
		if p.N > maxN {
			maxN = p.N
		}
	}
	if maxN != 7 {
		t.Errorf("table max n = %d, want the configured 7", maxN)
	}
	// And zero is clamped to the minimum viable single processor.
	if _, err := m.Replan(0); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Table().Points() {
		if p.N > 1 {
			t.Fatalf("Replan(0) left n = %d in the table", p.N)
		}
	}
}
