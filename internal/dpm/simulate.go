package dpm

import (
	"context"
	"fmt"

	"dpm/internal/battery"
	"dpm/internal/params"
	"dpm/internal/schedule"
)

// BatteryModel selects the intra-slot flow semantics of the battery.
type BatteryModel int

const (
	// NetFlow models supply and load as simultaneous continuous
	// flows: only the net charges or discharges the battery. This
	// is the physical regime and the default.
	NetFlow BatteryModel = iota
	// Sequential applies a whole slot's supply before the whole
	// slot's draw — the τ-granular discretization the paper's own
	// simulation exhibits (its Table 1 magnitudes are reproduced
	// almost exactly under this model).
	Sequential
)

// String names the model.
func (m BatteryModel) String() string {
	switch m {
	case NetFlow:
		return "net-flow"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("BatteryModel(%d)", int(m))
	}
}

// Step advances a battery under the chosen model and returns the
// energy delivered to the load.
func (m BatteryModel) Step(b *battery.Battery, supplyPower, loadPower, dt float64) float64 {
	if m == Sequential {
		return b.Step(supplyPower, loadPower, dt)
	}
	return b.StepNet(supplyPower, loadPower, dt)
}

// SimConfig describes a closed-loop run of the manager against a
// battery: the manager plans with its *expected* schedules while the
// environment delivers the *actual* ones, exactly the mismatch §4.3
// exists to absorb.
type SimConfig struct {
	// Battery selects the intra-slot battery semantics.
	Battery BatteryModel
	// Manager is the manager configuration (expected schedules).
	Manager Config
	// ActualCharging is what the source really delivers; nil means
	// it matches the expectation.
	ActualCharging *schedule.Grid
	// Periods is how many periods to simulate (the paper's Tables 3
	// and 5 cover two).
	Periods int
	// SyncCharge, when set, copies the real battery charge into the
	// manager after every slot, mimicking the PAMA power-measurement
	// board. Without it the manager trusts its own bookkeeping.
	SyncCharge bool
	// OmitPlanSnapshots leaves each SlotRecord's Plan field nil
	// instead of copying the full per-period plan every slot. The
	// snapshot exists for the paper's Tables 3/5; callers that only
	// consume the scalar columns (the service, batch sweeps) skip the
	// per-slot clone.
	OmitPlanSnapshots bool
}

// SlotRecord is one row of the paper's Tables 3/5.
type SlotRecord struct {
	// Time is the slot's start time in seconds.
	Time float64
	// Planned is Pinit(t): the plan's power for this slot at its
	// start, in watts.
	Planned float64
	// Point is the operating point Algorithm 2 selected.
	Point params.OperatingPoint
	// UsedPower is the average power actually drawn during the slot
	// (operating point plus switching overhead), in watts.
	UsedPower float64
	// SuppliedPower is the average charging power actually
	// delivered, in watts.
	SuppliedPower float64
	// Charge is the battery charge at the end of the slot in
	// joules.
	Charge float64
	// Plan is the full per-period plan snapshot after this slot's
	// Algorithm 3 update — the Pinit(0..11) columns.
	Plan []float64
}

// SimResult is the outcome of Simulate.
type SimResult struct {
	// Records holds one entry per simulated slot.
	Records []SlotRecord
	// Battery is the final battery accounting (wasted and
	// undersupplied energy are the paper's Table 1 metrics).
	Battery battery.Snapshot
	// PerfSeconds integrates delivered performance over time: the
	// chosen point's Perf × τ, scaled by the fraction of the
	// requested energy the battery could actually deliver.
	PerfSeconds float64
	// Switches counts operating-point changes.
	Switches int
}

// Simulate runs the manager closed-loop for the configured number of
// periods and returns the per-slot trace plus final accounting.
func Simulate(cfg SimConfig) (*SimResult, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate with cooperative cancellation: ctx is
// polled once per simulated slot and the run aborts with ctx.Err()
// when it is cancelled. Each slot's Algorithm 3 update and plan
// snapshot are O(slots), so a long horizon over a fine grid is
// quadratic work — a server bounding requests by deadline needs this
// variant.
func SimulateContext(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	if cfg.Periods <= 0 {
		return nil, fmt.Errorf("dpm: non-positive period count %d", cfg.Periods)
	}
	mgr, err := New(cfg.Manager)
	if err != nil {
		return nil, err
	}
	actual := cfg.ActualCharging
	if actual == nil {
		actual = cfg.Manager.Charging
	}
	if actual.Len() != mgr.Slots() {
		return nil, fmt.Errorf("dpm: actual charging has %d slots, plan has %d", actual.Len(), mgr.Slots())
	}
	bat, err := battery.New(battery.Config{
		CapacityMax: cfg.Manager.CapacityMax,
		CapacityMin: cfg.Manager.CapacityMin,
		Initial:     cfg.Manager.InitialCharge,
	})
	if err != nil {
		return nil, fmt.Errorf("dpm: battery: %w", err)
	}

	tau := mgr.Tau()
	totalSlots := cfg.Periods * mgr.Slots()
	res := &SimResult{Records: make([]SlotRecord, 0, totalSlots)}
	var prev params.OperatingPoint
	for s := 0; s < totalSlots; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := s % mgr.Slots()
		planned := mgr.PlannedPower()
		point, overhead := mgr.BeginSlot()
		if s > 0 && point != prev {
			res.Switches++
		}
		prev = point

		usedPower := point.Power + overhead/tau
		supplyPower := actual.Values[idx]
		requested := usedPower * tau
		delivered := cfg.Battery.Step(bat, supplyPower, usedPower, tau)
		if requested > 0 {
			res.PerfSeconds += point.Perf * tau * (delivered / requested)
		}

		// Report what was really consumed: an undersupplied slot spends
		// only what the battery could deliver, and Algorithm 3 then
		// sees the shortfall as surplus plan to push forward.
		mgr.EndSlot(delivered, supplyPower*tau)
		if cfg.SyncCharge {
			mgr.SyncCharge(bat.Charge())
		}
		var planCopy []float64
		if !cfg.OmitPlanSnapshots {
			planCopy = mgr.PlanSnapshot()
		}
		res.Records = append(res.Records, SlotRecord{
			Time:          float64(s) * tau,
			Planned:       planned,
			Point:         point,
			UsedPower:     usedPower,
			SuppliedPower: supplyPower,
			Charge:        bat.Charge(),
			Plan:          planCopy,
		})
	}
	res.Battery = bat.Snapshot()
	return res, nil
}
