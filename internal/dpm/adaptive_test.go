package dpm

import (
	"testing"

	"dpm/internal/predict"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

func jitteredPeriods(base *schedule.Grid, n int, jitter float64) []*schedule.Grid {
	out := make([]*schedule.Grid, n)
	for i := range out {
		out[i] = trace.Perturb(base, jitter, 500+int64(i))
	}
	return out
}

func TestSimulateAdaptiveBasic(t *testing.T) {
	s := trace.ScenarioI()
	cfg := managerConfig(t, s)
	res, err := SimulateAdaptive(AdaptiveConfig{
		Base:          cfg,
		ActualPeriods: jitteredPeriods(s.Charging, 4, 0.2),
		Predictor:     predict.NewLastPeriod(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4*12 {
		t.Fatalf("records = %d", len(res.Records))
	}
	for i, r := range res.Records {
		if r.Charge < s.CapacityMin-1e-9 || r.Charge > s.CapacityMax+1e-9 {
			t.Errorf("slot %d: charge %g out of band", i, r.Charge)
		}
	}
	if res.PerfSeconds <= 0 {
		t.Error("no performance delivered")
	}
}

func TestSimulateAdaptiveValidation(t *testing.T) {
	s := trace.ScenarioI()
	cfg := managerConfig(t, s)
	if _, err := SimulateAdaptive(AdaptiveConfig{Base: cfg}); err == nil {
		t.Error("no periods must error")
	}
	bad := []*schedule.Grid{schedule.NewGrid(4.8, []float64{1, 2})}
	if _, err := SimulateAdaptive(AdaptiveConfig{Base: cfg, ActualPeriods: bad}); err == nil {
		t.Error("geometry mismatch must error")
	}
}

func TestSimulateAdaptiveNilPredictorKeepsExpectation(t *testing.T) {
	s := trace.ScenarioI()
	cfg := managerConfig(t, s)
	res, err := SimulateAdaptive(AdaptiveConfig{
		Base:          cfg,
		ActualPeriods: []*schedule.Grid{s.Charging, s.Charging},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("records = %d", len(res.Records))
	}
}

// With a strongly drifting supply, predicting from history must beat
// planning with the stale first-period expectation.
func TestAdaptivePredictorBeatsStaleExpectation(t *testing.T) {
	s := trace.ScenarioI()
	cfg := managerConfig(t, s)
	cfg.DisableSlotGuards = true // isolate the predictor's effect

	// Supply drops to 55% of the expectation from period 2 onward.
	degraded := s.Charging.Scale(0.55)
	actuals := []*schedule.Grid{s.Charging, degraded, degraded, degraded, degraded, degraded}

	static, err := SimulateAdaptive(AdaptiveConfig{Base: cfg, ActualPeriods: actuals})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := SimulateAdaptive(AdaptiveConfig{
		Base:          cfg,
		ActualPeriods: actuals,
		Predictor:     predict.NewLastPeriod(),
	})
	if err != nil {
		t.Fatal(err)
	}
	staticBad := static.Battery.Wasted + static.Battery.Undersupplied
	adaptiveBad := adaptive.Battery.Wasted + adaptive.Battery.Undersupplied
	if adaptiveBad >= staticBad {
		t.Errorf("adaptive %.2f J should beat stale expectation %.2f J under supply drift",
			adaptiveBad, staticBad)
	}
}
