package dpm

import (
	"math"
	"testing"

	"dpm/internal/trace"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run a few slots so the state is non-trivial.
	for s := 0; s < 5; s++ {
		pt, _ := m.BeginSlot()
		m.EndSlot(pt.Power*m.Tau()*0.9, cfg.Charging.Values[s]*m.Tau())
	}
	data, err := m.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh manager restores and continues identically.
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	if restored.Slot() != m.Slot() {
		t.Errorf("slot = %d, want %d", restored.Slot(), m.Slot())
	}
	if math.Abs(restored.Charge()-m.Charge()) > 1e-12 {
		t.Errorf("charge = %g, want %g", restored.Charge(), m.Charge())
	}
	if restored.CurrentPoint() != m.CurrentPoint() {
		t.Errorf("point = %v, want %v", restored.CurrentPoint(), m.CurrentPoint())
	}

	// Both managers produce identical decisions from here on.
	for s := 5; s < 12; s++ {
		pa, oa := m.BeginSlot()
		pb, ob := restored.BeginSlot()
		if pa != pb || oa != ob {
			t.Fatalf("slot %d diverged after restore: %v/%g vs %v/%g", s, pa, oa, pb, ob)
		}
		used := pa.Power * m.Tau()
		supplied := cfg.Charging.Values[s%12] * m.Tau()
		m.EndSlot(used, supplied)
		restored.EndSlot(used, supplied)
	}
}

func TestRestoreValidation(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(State{Plan: []float64{1, 2}}); err == nil {
		t.Error("wrong plan geometry must be rejected")
	}
	good := m.Checkpoint()
	bad := good
	bad.Slot = -1
	if err := m.Restore(bad); err == nil {
		t.Error("negative slot must be rejected")
	}
	bad = good
	bad.Plan = append([]float64(nil), good.Plan...)
	bad.Plan[0] = -1
	if err := m.Restore(bad); err == nil {
		t.Error("negative plan slot must be rejected")
	}
	bad = good
	bad.Started = true
	bad.CurrentN = 99
	if err := m.Restore(bad); err == nil {
		t.Error("impossible operating point must be rejected")
	}
	if err := m.UnmarshalCheckpoint([]byte("{")); err == nil {
		t.Error("malformed JSON must be rejected")
	}
	bad = good
	bad.Charge = math.NaN()
	if err := m.Restore(bad); err == nil {
		t.Error("NaN charge must be rejected")
	}
	bad = good
	bad.Charge = math.Inf(1)
	if err := m.Restore(bad); err == nil {
		t.Error("infinite charge must be rejected")
	}
	bad = good
	bad.Plan = append([]float64(nil), good.Plan...)
	bad.Plan[3] = math.NaN()
	if err := m.Restore(bad); err == nil {
		t.Error("NaN plan slot must be rejected")
	}
	bad = good
	bad.Plan = append([]float64(nil), good.Plan...)
	bad.Plan[7] = math.Inf(-1)
	if err := m.Restore(bad); err == nil {
		t.Error("infinite plan slot must be rejected")
	}
	bad = good
	bad.Slot = maxCheckpointSlot + 1
	if err := m.Restore(bad); err == nil {
		t.Error("insane slot counter must be rejected")
	}
	// The rejected restores must not have poisoned the manager.
	if err := m.Restore(good); err != nil {
		t.Fatalf("good state no longer restorable: %v", err)
	}
	for i, v := range m.PlanSnapshot() {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("plan[%d] = %g after rejected restores", i, v)
		}
	}
}

func TestCheckpointChargeClamped(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Checkpoint()
	s.Charge = 1e9
	if err := m.Restore(s); err != nil {
		t.Fatal(err)
	}
	if m.Charge() > cfg.CapacityMax {
		t.Errorf("restored charge %g above Cmax", m.Charge())
	}
}
