package dpm

import (
	"fmt"

	"dpm/internal/battery"
	"dpm/internal/params"
)

// VectorManager is the §6 extension made operational: the same
// three-stage pipeline as Manager, but each slot's budget is mapped
// to a *per-processor* frequency assignment (params.VectorSelect, or
// params.HeteroSelect for a heterogeneous fleet) instead of a common
// clock. Allocation and the Algorithm 3 update are inherited
// unchanged — only the power→parameters stage differs.
type VectorManager struct {
	*Manager
	fleet    *params.Fleet // nil: uniform fleet via VectorSelect
	vcurrent params.VectorPoint
	vstarted bool
}

// NewVector builds a per-processor manager from the same Config as
// New.
func NewVector(cfg Config) (*VectorManager, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &VectorManager{Manager: m}, nil
}

// NewHetero builds a per-processor manager whose slot assignments
// come from HeteroSelect over the given fleet — the paper's full §6
// extension (different frequencies *and* different processors).
func NewHetero(cfg Config, fleet params.Fleet) (*VectorManager, error) {
	m, err := NewVector(cfg)
	if err != nil {
		return nil, err
	}
	if fleet.N() == 0 {
		return nil, fmt.Errorf("dpm: empty fleet")
	}
	m.fleet = &fleet
	return m, nil
}

// selectAssignment maps a budget to a per-processor assignment using
// the configured selector.
func (m *VectorManager) selectAssignment(budget float64) (params.VectorPoint, error) {
	if m.fleet == nil {
		return params.VectorSelect(m.cfg.Params, budget)
	}
	h, err := params.HeteroSelect(m.cfg.Params, *m.fleet, budget)
	if err != nil {
		return params.VectorPoint{}, err
	}
	// Compact the assignment to its active clocks for the shared
	// VectorPoint shape.
	vp := params.VectorPoint{Power: h.Power, Perf: h.Perf}
	for i, f := range h.Freqs {
		if f > 0 {
			vp.Freqs = append(vp.Freqs, f)
			vp.Volts = append(vp.Volts, h.Volts[i])
		}
	}
	return vp, nil
}

// vectorEqual reports whether two assignments run the same clocks.
func vectorEqual(a, b params.VectorPoint) bool {
	if len(a.Freqs) != len(b.Freqs) {
		return false
	}
	for i := range a.Freqs {
		if a.Freqs[i] != b.Freqs[i] {
			return false
		}
	}
	return true
}

// vectorSwitchCost prices a move between assignments: OHn once if the
// active count changes, plus OHf per processor whose clock changes
// (frequencies compared position-wise after the descending sort, a
// conservative upper bound on the real reassignment).
func (m *VectorManager) vectorSwitchCost(from, to params.VectorPoint) float64 {
	cost := 0.0
	if len(from.Freqs) != len(to.Freqs) {
		cost += m.cfg.Params.OverheadProc
	}
	n := len(from.Freqs)
	if len(to.Freqs) < n {
		n = len(to.Freqs)
	}
	for i := 0; i < n; i++ {
		if from.Freqs[i] != to.Freqs[i] {
			cost += m.cfg.Params.OverheadFreq
		}
	}
	return cost
}

// BeginSlotVector chooses the per-processor assignment for the
// current slot, applying the same overhead-aware switching rule as
// the homogeneous manager. It returns the assignment and the
// switching energy charged at this boundary.
func (m *VectorManager) BeginSlotVector() (params.VectorPoint, float64, error) {
	budget, _ := m.SlotBudget()
	candidate, err := m.selectAssignment(budget)
	if err != nil {
		return params.VectorPoint{}, 0, fmt.Errorf("dpm: vector selection: %w", err)
	}
	overhead := 0.0
	switch {
	case !m.vstarted:
		m.vcurrent = candidate
		m.vstarted = true
	case vectorEqual(m.vcurrent, candidate):
		// keep
	case candidate.Power < m.vcurrent.Power:
		// Downgrades always happen: staying would overdraw.
		overhead = m.vectorSwitchCost(m.vcurrent, candidate)
		m.vcurrent = candidate
	default:
		gain := (candidate.Perf - m.vcurrent.Perf) * m.tau
		cost := m.vectorSwitchCost(m.vcurrent, candidate)
		if gain > cost {
			overhead = cost
			m.vcurrent = candidate
		}
	}
	return m.vcurrent, overhead, nil
}

// CurrentVector returns the assignment chosen by the last
// BeginSlotVector.
func (m *VectorManager) CurrentVector() params.VectorPoint { return m.vcurrent }

// SimulateVector runs the per-processor manager closed-loop, the
// vector counterpart of Simulate. Records carry a synthetic
// OperatingPoint whose N and Power mirror the assignment (F is the
// fastest clock) so the result type stays shared.
func SimulateVector(cfg SimConfig) (*SimResult, error) {
	if cfg.Periods <= 0 {
		return nil, fmt.Errorf("dpm: non-positive period count %d", cfg.Periods)
	}
	mgr, err := NewVector(cfg.Manager)
	if err != nil {
		return nil, err
	}
	actual := cfg.ActualCharging
	if actual == nil {
		actual = cfg.Manager.Charging
	}
	if actual.Len() != mgr.Slots() {
		return nil, fmt.Errorf("dpm: actual charging has %d slots, plan has %d", actual.Len(), mgr.Slots())
	}
	bat, err := battery.New(battery.Config{
		CapacityMax: cfg.Manager.CapacityMax,
		CapacityMin: cfg.Manager.CapacityMin,
		Initial:     cfg.Manager.InitialCharge,
	})
	if err != nil {
		return nil, fmt.Errorf("dpm: battery: %w", err)
	}

	res := &SimResult{}
	tau := mgr.Tau()
	var prev params.VectorPoint
	for s := 0; s < cfg.Periods*mgr.Slots(); s++ {
		idx := s % mgr.Slots()
		planned := mgr.PlannedPower()
		vp, overhead, err := mgr.BeginSlotVector()
		if err != nil {
			return nil, err
		}
		if s > 0 && !vectorEqual(vp, prev) {
			res.Switches++
		}
		prev = vp

		usedPower := vp.Power + overhead/tau
		supplyPower := actual.Values[idx]
		requested := usedPower * tau
		delivered := cfg.Battery.Step(bat, supplyPower, usedPower, tau)
		if requested > 0 {
			res.PerfSeconds += vp.Perf * tau * (delivered / requested)
		}
		mgr.EndSlot(delivered, supplyPower*tau)
		if cfg.SyncCharge {
			mgr.SyncCharge(bat.Charge())
		}

		point := params.OperatingPoint{N: vp.N(), Power: vp.Power, Perf: vp.Perf}
		if vp.N() > 0 {
			point.F = vp.Freqs[0]
			point.V = vp.Volts[0]
		}
		res.Records = append(res.Records, SlotRecord{
			Time:          float64(s) * tau,
			Planned:       planned,
			Point:         point,
			UsedPower:     usedPower,
			SuppliedPower: supplyPower,
			Charge:        bat.Charge(),
			Plan:          mgr.PlanSnapshot(),
		})
	}
	res.Battery = bat.Snapshot()
	return res, nil
}
