// Package dpm is the paper's dynamic power manager: the Figure 1
// pipeline joining the initial power allocation (§4.1, package
// alloc), the system-parameter computation (§4.2, package params) and
// the run-time update of the allocation (§4.3, Algorithm 3).
//
// A Manager owns the circular per-period power plan. Each slot of
// length τ the caller
//
//  1. asks BeginSlot for the operating point to run (Algorithm 2's
//     budget lookup with the overhead-aware switching rule), then
//  2. reports the slot's actual consumption and supply to EndSlot,
//     which runs Algorithm 3: the deviation between planned and
//     actual energy is redistributed over the future slots up to the
//     moment the projected battery trajectory pins at Cmax (surplus)
//     or Cmin (deficit).
package dpm

import (
	"fmt"
	"math"

	"dpm/internal/alloc"
	"dpm/internal/params"
	"dpm/internal/scenario"
	"dpm/internal/schedule"
)

// RedistributePolicy selects how Algorithm 3 spreads an energy
// deviation over the future window.
type RedistributePolicy int

const (
	// Proportional spreads the deviation in proportion to each
	// slot's planned power — the paper's formula.
	Proportional RedistributePolicy = iota
	// Even spreads the deviation uniformly — the alternative the
	// paper mentions ("the power can be evenly distributed").
	Even
)

// String names the policy.
func (p RedistributePolicy) String() string {
	switch p {
	case Proportional:
		return "proportional"
	case Even:
		return "even"
	default:
		return fmt.Sprintf("RedistributePolicy(%d)", int(p))
	}
}

// Config assembles everything the manager needs.
type Config struct {
	// Charging is the expected charging schedule c(t).
	Charging *schedule.Grid
	// EventRate is the expected event-rate schedule u(t).
	EventRate *schedule.Grid
	// Weight is w(t); nil means uniform.
	Weight *schedule.Grid
	// CapacityMax, CapacityMin and InitialCharge are the battery
	// parameters in joules.
	CapacityMax   float64
	CapacityMin   float64
	InitialCharge float64
	// InitialPlan, when set, is an externally computed per-slot power
	// plan the manager adopts instead of running the §4.1 Algorithm 1
	// computation — the hook alternative planner strategies
	// (internal/pipeline.NewManager, internal/strategy) inject their
	// allocations through. It must share the charging grid's step and
	// length. Runtime behavior is unchanged: Algorithm 3 still
	// redistributes per-slot deviations over the injected plan, and a
	// degraded-mode Replan re-plans with the paper's Algorithm 1.
	InitialPlan *schedule.Grid
	// Params configures the Algorithm 2 operating-point table.
	Params params.Config
	// Policy selects the Algorithm 3 redistribution flavor.
	Policy RedistributePolicy
	// DisableSlotGuards turns off the slot-granular under/oversupply
	// guards in SlotBudget, leaving only the paper's three
	// mechanisms (Algorithm 1 planning, Algorithm 2 selection,
	// Algorithm 3 redistribution). The guards are this
	// implementation's extension; disabling them reproduces the
	// paper's residual waste/undersupply magnitudes.
	DisableSlotGuards bool
	// AllocIterations caps Algorithm 1's driver (0 = default).
	AllocIterations int
	// PlanningMargin keeps a fraction of the battery band clear at
	// each end when planning (see alloc.Inputs.Margin): robustness
	// against forecast error at a small utilization cost.
	PlanningMargin float64
}

// Manager is the run-time power manager. It is not safe for
// concurrent use; the simulation loop drives it from one goroutine.
type Manager struct {
	cfg   Config
	table *params.Table
	init  *alloc.Result

	plan    *schedule.Grid // circular per-period allocation, mutated by Algorithm 3
	tau     float64
	nSlots  int
	slot    int     // absolute slot counter since start
	charge  float64 // manager's estimate of the battery charge
	current params.OperatingPoint
	started bool

	// windowBuf is the reusable scratch for findWindow, so the
	// Algorithm 3 redistribution that runs every slot allocates
	// nothing in steady state.
	windowBuf []int
}

// New computes the initial allocation and operating-point table and
// returns a ready manager. Inputs are bounds-checked through
// internal/scenario, so library callers get the same NaN/Inf and
// magnitude rejections as the HTTP service.
func New(cfg Config) (*Manager, error) {
	if err := scenario.ValidateInputs(cfg.Charging, cfg.EventRate, cfg.Weight,
		cfg.CapacityMax, cfg.CapacityMin, cfg.InitialCharge); err != nil {
		return nil, fmt.Errorf("dpm: %w", err)
	}
	var res *alloc.Result
	if cfg.InitialPlan != nil {
		if err := scenario.ValidateGrid("initialPlan", cfg.InitialPlan, true); err != nil {
			return nil, fmt.Errorf("dpm: %w", err)
		}
		if cfg.InitialPlan.Step != cfg.Charging.Step || cfg.InitialPlan.Len() != cfg.Charging.Len() {
			return nil, fmt.Errorf("dpm: initial plan grid (τ=%g, %d slots) does not match the charging grid (τ=%g, %d slots)",
				cfg.InitialPlan.Step, cfg.InitialPlan.Len(), cfg.Charging.Step, cfg.Charging.Len())
		}
		res = alloc.ResultFromPlan(cfg.Charging, cfg.InitialPlan.Clone(),
			cfg.InitialCharge, cfg.CapacityMin, cfg.CapacityMax, 0)
	} else {
		var err error
		res, err = alloc.Compute(alloc.Inputs{
			Charging:      cfg.Charging,
			EventRate:     cfg.EventRate,
			Weight:        cfg.Weight,
			CapacityMax:   cfg.CapacityMax,
			CapacityMin:   cfg.CapacityMin,
			InitialCharge: cfg.InitialCharge,
			MaxIterations: cfg.AllocIterations,
			Margin:        cfg.PlanningMargin,
		})
		if err != nil {
			return nil, fmt.Errorf("dpm: initial allocation: %w", err)
		}
	}
	// The operating-point table depends only on the hardware block and
	// is immutable once built, so managers for the same hardware share
	// one memoized table instead of re-running the Algorithm 2
	// enumeration per construction.
	table, err := params.SharedTable(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("dpm: parameter table: %w", err)
	}
	charge := math.Min(math.Max(cfg.InitialCharge, cfg.CapacityMin), cfg.CapacityMax)
	return &Manager{
		cfg:       cfg,
		table:     table,
		init:      res,
		plan:      res.Allocation.Clone(),
		tau:       res.Allocation.Step,
		nSlots:    res.Allocation.Len(),
		charge:    charge,
		windowBuf: make([]int, 0, res.Allocation.Len()),
	}, nil
}

// InitialAllocation returns the §4.1 result, including the iteration
// history that reproduces the paper's Tables 2 and 4. It is nil after
// ReleaseInitial.
func (m *Manager) InitialAllocation() *alloc.Result { return m.init }

// ReleaseInitial drops the §4.1 allocation result — iteration history
// kept only for presentation. Long-lived managers (fleet sessions)
// call it after construction so a session's steady-state footprint is
// just the plan and table references; every runtime method keeps
// working.
func (m *Manager) ReleaseInitial() { m.init = nil }

// Table returns the Algorithm 2 operating-point frontier.
func (m *Manager) Table() *params.Table { return m.table }

// Tau returns the slot length τ in seconds.
func (m *Manager) Tau() float64 { return m.tau }

// Slots returns the number of slots per period.
func (m *Manager) Slots() int { return m.nSlots }

// Slot returns the absolute slot counter (slots completed so far).
func (m *Manager) Slot() int { return m.slot }

// Time returns the simulation time at the current slot's start.
func (m *Manager) Time() float64 { return float64(m.slot) * m.tau }

// PlanSnapshot returns a copy of the current per-period plan in
// watts — the "Pinit(0) … Pinit(11)" columns of Tables 3 and 5.
func (m *Manager) PlanSnapshot() []float64 {
	return append([]float64(nil), m.plan.Values...)
}

// PlannedPower returns the plan's power for the current slot.
func (m *Manager) PlannedPower() float64 {
	return m.plan.Values[m.slot%m.nSlots]
}

// Charge returns the manager's estimate of the battery charge in
// joules.
func (m *Manager) Charge() float64 { return m.charge }

// SyncCharge overrides the manager's charge estimate with a measured
// value (the PAMA board has a power-measurement board for exactly
// this). Values are clamped into [Cmin, Cmax].
func (m *Manager) SyncCharge(measured float64) {
	m.charge = math.Min(math.Max(measured, m.cfg.CapacityMin), m.cfg.CapacityMax)
}

// SlotBudget returns the effective power budget for the current
// slot: the plan's value, clamped to what the battery can deliver
// without crossing Cmin, and raised when the incoming charge would
// otherwise overflow Cmax — the §4.1 doctrine of avoiding the
// undersupplied and oversupplied conditions *before* they occur,
// applied at slot granularity.
func (m *Manager) SlotBudget() (budget float64, overflowing bool) {
	idx := m.slot % m.nSlots
	budget = m.plan.Values[idx]
	if m.cfg.DisableSlotGuards {
		return budget, false
	}
	expected := m.cfg.Charging.Values[idx]

	// Undersupply guard: never plan to draw beyond the battery's
	// deliverable energy plus the expected charge.
	deliverable := (m.charge-m.cfg.CapacityMin)/m.tau + expected
	if budget > deliverable {
		budget = deliverable
	}
	// Oversupply guard: if charging would overflow the battery,
	// spend the excess on useful work instead of losing it.
	overflow := expected - (m.cfg.CapacityMax-m.charge)/m.tau
	if overflow > budget {
		budget = overflow
		overflowing = true
	}
	if budget < 0 {
		budget = 0
	}
	return budget, overflowing
}

// BeginSlot chooses the operating point for the current slot from the
// effective slot budget (see SlotBudget), applying the overhead-aware
// switching rule, and returns it together with any switching energy
// charged at this boundary. Under the floor the discrete table rounds
// the draw down; when the battery is about to overflow it rounds up —
// an overdraw only taps charge that would otherwise be lost.
func (m *Manager) BeginSlot() (params.OperatingPoint, float64) {
	budget, overflowing := m.SlotBudget()
	candidate := m.table.Select(budget)
	if overflowing {
		candidate = m.table.SelectCovering(budget)
	}
	if !m.cfg.DisableSlotGuards {
		// Quantization-aware overflow check: Select rounds the draw
		// down, so a near-full battery can still overflow even though
		// the budget itself would not. Re-check with the *realized*
		// point and round up if the expected charge would spill.
		idx := m.slot % m.nSlots
		expected := m.cfg.Charging.Values[idx]
		if m.charge+(expected-candidate.Power)*m.tau > m.cfg.CapacityMax+1e-9 {
			need := expected - (m.cfg.CapacityMax-m.charge)/m.tau
			candidate = m.table.SelectCovering(need)
		}
	}
	overhead := 0.0
	if !m.started {
		m.current = candidate
		m.started = true
	} else if m.table.ShouldSwitch(m.current, candidate, m.tau) {
		overhead = m.table.SwitchCost(m.current, candidate)
		m.current = candidate
	}
	return m.current, overhead
}

// CurrentPoint returns the operating point chosen by the last
// BeginSlot.
func (m *Manager) CurrentPoint() params.OperatingPoint { return m.current }

// EndSlot closes the current slot: usedEnergy is what the system
// actually consumed (joules) and suppliedEnergy what the source
// actually delivered. The manager updates its charge estimate and
// runs Algorithm 3 on the combined deviation
//
//	Ediff = (planned − used) + (supplied − expected)
//
// a positive value meaning surplus energy that future slots should
// spend, a negative one a deficit they must save.
func (m *Manager) EndSlot(usedEnergy, suppliedEnergy float64) {
	m.EndSlotReplan(usedEnergy, suppliedEnergy)
}

// EndSlotReplan is EndSlot, additionally reporting whether the slot's
// deviation actually triggered an Algorithm 3 redistribution that
// touched the plan — the signal fleet sessions export as a replan
// count. A false return means the slot closed on-plan (or the
// redistribution window was empty) and the plan bytes are unchanged.
func (m *Manager) EndSlotReplan(usedEnergy, suppliedEnergy float64) bool {
	if usedEnergy < 0 || suppliedEnergy < 0 {
		panic(fmt.Sprintf("dpm: negative slot energies (%g, %g)", usedEnergy, suppliedEnergy))
	}
	idx := m.slot % m.nSlots
	planned := m.plan.Values[idx] * m.tau
	expected := m.cfg.Charging.Values[idx] * m.tau

	// Track the battery like StepNet does: only the net flow moves
	// the charge, clamped into the feasible band.
	m.charge = math.Min(math.Max(m.charge+suppliedEnergy-usedEnergy, m.cfg.CapacityMin), m.cfg.CapacityMax)

	ediff := (planned - usedEnergy) + (suppliedEnergy - expected)
	m.slot++
	if math.Abs(ediff) > 1e-12 {
		return m.redistribute(ediff)
	}
	return false
}

// redistribute implements Algorithm 3: find the window from the next
// slot to the first future boundary where the projected trajectory
// pins at the relevant capacity bound, then spread ediff over the
// window's slots (proportionally to their planned power, or evenly).
// It reports whether any plan slot was modified.
func (m *Manager) redistribute(ediff float64) bool {
	start := m.slot % m.nSlots
	window := m.findWindow(start, ediff)
	if len(window) == 0 {
		return false
	}
	switch m.cfg.Policy {
	case Even:
		delta := ediff / (float64(len(window)) * m.tau)
		for _, i := range window {
			m.plan.Values[i] += delta
			if m.plan.Values[i] < 0 {
				m.plan.Values[i] = 0
			}
		}
	default: // Proportional
		sum := 0.0
		for _, i := range window {
			sum += m.plan.Values[i]
		}
		if sum <= 0 {
			// Nothing planned in the window: fall back to even.
			delta := ediff / (float64(len(window)) * m.tau)
			for _, i := range window {
				m.plan.Values[i] = math.Max(m.plan.Values[i]+delta, 0)
			}
			return true
		}
		for _, i := range window {
			m.plan.Values[i] += ediff * m.plan.Values[i] / (sum * m.tau)
			if m.plan.Values[i] < 0 {
				m.plan.Values[i] = 0
			}
		}
	}
	return true
}

// rotated returns a copy of g whose slot 0 is g's slot start — the
// view of the period that begins at the current slot, which is what
// a mid-period re-plan hands to Algorithm 1.
func rotated(g *schedule.Grid, start int) *schedule.Grid {
	out := g.Clone()
	n := g.Len()
	for k := 0; k < n; k++ {
		out.Values[k] = g.Values[(start+k)%n]
	}
	return out
}

// Replan is the degraded-mode entry point: when the board loses
// capability (dead worker PIMs), the controller calls Replan with the
// surviving processor count. The manager rebuilds the Algorithm 2
// operating-point table with n capped at maxProcs and re-runs
// Algorithm 1 over the upcoming period — the expected schedules
// rotated so the current slot is the plan's origin, starting from the
// current charge estimate — then clamps any remaining plan slot that
// exceeds the degraded board's maximum draw.
//
// It returns the number of plan slots that were infeasible for the
// degraded board (clamped to the new ceiling; the surplus surfaces as
// wasted energy), so callers can count plan-infeasibility events. The
// slot counter, charge estimate and accumulated run-time state are
// preserved; only the plan and table change.
func (m *Manager) Replan(maxProcs int) (infeasible int, err error) {
	pcfg := m.cfg.Params
	if maxProcs < 1 {
		maxProcs = 1
	}
	if maxProcs > pcfg.MaxProcessors {
		maxProcs = pcfg.MaxProcessors
	}
	pcfg.MaxProcessors = maxProcs
	if pcfg.MinProcessors > maxProcs {
		pcfg.MinProcessors = maxProcs
	}
	table, err := params.SharedTable(pcfg)
	if err != nil {
		return 0, fmt.Errorf("dpm: degraded table: %w", err)
	}
	m.table = table
	m.cfg.Params = pcfg

	start := m.slot % m.nSlots
	var weight *schedule.Grid
	if m.cfg.Weight != nil {
		weight = rotated(m.cfg.Weight, start)
	}
	res, aerr := alloc.Compute(alloc.Inputs{
		Charging:      rotated(m.cfg.Charging, start),
		EventRate:     rotated(m.cfg.EventRate, start),
		Weight:        weight,
		CapacityMax:   m.cfg.CapacityMax,
		CapacityMin:   m.cfg.CapacityMin,
		InitialCharge: m.charge,
		MaxIterations: m.cfg.AllocIterations,
		Margin:        m.cfg.PlanningMargin,
	})
	if aerr == nil {
		for k := 0; k < m.nSlots; k++ {
			m.plan.Values[(start+k)%m.nSlots] = res.Allocation.Values[k]
		}
		if !res.Feasible {
			infeasible++
		}
	} else {
		// Algorithm 1 could not produce a plan at all; keep the old
		// one — the ceiling clamp below bounds it to what the
		// degraded board can actually execute.
		infeasible++
	}

	maxPower := table.Points()[table.Len()-1].Power
	const eps = 1e-9
	for i := range m.plan.Values {
		if m.plan.Values[i] > maxPower+eps {
			infeasible++
			m.plan.Values[i] = maxPower
		}
	}
	// The active operating point may name more processors than
	// survive; snap it onto the degraded table so the next switching
	// decision compares against a reachable point.
	if m.started && m.current.N > maxProcs {
		m.current = table.Select(m.current.Power)
	}
	return infeasible, nil
}

// findWindow projects the battery trajectory forward from the current
// charge using the expected charging schedule and the current plan,
// and returns the plan indices of the slots between now and the first
// boundary where the trajectory reaches Cmax (for a surplus) or Cmin
// (for a deficit). If the trajectory never pins within one period,
// the whole next period is the window.
// The returned slice aliases the manager's scratch buffer: it is
// valid until the next findWindow call and must not be retained.
func (m *Manager) findWindow(start int, ediff float64) []int {
	const eps = 1e-9
	ch := m.charge
	window := m.windowBuf[:0]
	for k := 0; k < m.nSlots; k++ {
		i := (start + k) % m.nSlots
		window = append(window, i)
		ch += (m.cfg.Charging.Values[i] - m.plan.Values[i]) * m.tau
		ch = math.Min(math.Max(ch, m.cfg.CapacityMin), m.cfg.CapacityMax)
		if ediff > 0 && ch >= m.cfg.CapacityMax-eps {
			break
		}
		if ediff < 0 && ch <= m.cfg.CapacityMin+eps {
			break
		}
	}
	return window
}
