package dpm

import (
	"encoding/json"
	"math"
	"testing"

	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/trace"
)

// fuzzConfig mirrors managerConfig without needing a *testing.T.
func fuzzConfig() (Config, error) {
	w, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		return Config{}, err
	}
	s := trace.ScenarioI()
	return Config{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		Weight:        s.Weight,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
		Params: params.Config{
			System:        power.PAMA(),
			Curve:         power.NewFixedVoltage(3.3, 80e6),
			Workload:      w,
			Frequencies:   []float64{20e6, 40e6, 80e6},
			MaxProcessors: 7,
			MinProcessors: 0,
		},
	}, nil
}

// FuzzUnmarshalCheckpoint feeds arbitrary bytes to the checkpoint
// decoder: it must never panic, and every accepted checkpoint must
// leave the manager in a sane state (finite non-negative plan, charge
// inside the battery band, bounded slot counter) — a corrupted
// checkpoint from a radiation-upset reboot must not poison the
// re-planning loop.
func FuzzUnmarshalCheckpoint(f *testing.F) {
	cfg, err := fuzzConfig()
	if err != nil {
		f.Fatal(err)
	}
	seedMgr, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	if valid, err := seedMgr.MarshalCheckpoint(); err == nil {
		f.Add(valid)
	}
	f.Add([]byte(`{`))
	f.Add([]byte(`{"plan":[1,2,3],"slot":1}`))
	f.Add([]byte(`{"plan":[0,0,0,0,0,0,0,0,0,0,0,0],"slot":-4,"charge":1}`))
	f.Add([]byte(`{"plan":[0,0,0,0,0,0,0,0,0,0,0,0],"slot":1099511627777,"charge":1}`))
	f.Add([]byte(`{"plan":[0,0,0,0,0,0,0,0,0,0,0,0],"slot":3,"charge":1e308,"started":true,"currentN":3,"currentF":4e7,"currentV":3.3}`))
	f.Add([]byte(`{"plan":[-5,0,0,0,0,0,0,0,0,0,0,0],"slot":0,"charge":0.5}`))
	f.Add([]byte(`{"plan":[1e309,0,0,0,0,0,0,0,0,0,0,0],"slot":0,"charge":0.5}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.UnmarshalCheckpoint(data); err != nil {
			return // rejected; nothing else to check
		}
		if m.Slot() < 0 || m.Slot() > maxCheckpointSlot {
			t.Fatalf("accepted checkpoint left slot counter %d", m.Slot())
		}
		c := m.Charge()
		if math.IsNaN(c) || c < cfg.CapacityMin-1e-9 || c > cfg.CapacityMax+1e-9 {
			t.Fatalf("accepted checkpoint left charge %g outside [%g, %g]",
				c, cfg.CapacityMin, cfg.CapacityMax)
		}
		for i, v := range m.PlanSnapshot() {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("accepted checkpoint left plan[%d] = %g", i, v)
			}
		}
		// The accepted state must also round-trip.
		out, err := m.MarshalCheckpoint()
		if err != nil {
			t.Fatalf("re-marshal of accepted state failed: %v", err)
		}
		var s State
		if err := json.Unmarshal(out, &s); err != nil {
			t.Fatalf("re-marshaled checkpoint unparsable: %v", err)
		}
	})
}
