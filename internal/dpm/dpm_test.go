package dpm

import (
	"math"
	"testing"

	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

func paperParams(t *testing.T) params.Config {
	t.Helper()
	w, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		t.Fatal(err)
	}
	return params.Config{
		System:        power.PAMA(),
		Curve:         power.NewFixedVoltage(3.3, 80e6),
		Workload:      w,
		Frequencies:   []float64{20e6, 40e6, 80e6},
		MaxProcessors: 7,
		MinProcessors: 0,
	}
}

func managerConfig(t *testing.T, s trace.Scenario) Config {
	t.Helper()
	return Config{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		Weight:        s.Weight,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
		Params:        paperParams(t),
	}
}

func TestNewManager(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots() != 12 {
		t.Errorf("Slots = %d", m.Slots())
	}
	if m.Tau() != trace.Tau {
		t.Errorf("Tau = %g", m.Tau())
	}
	if !m.InitialAllocation().Feasible {
		t.Error("initial allocation should be feasible for scenario I")
	}
	if m.Table().Len() == 0 {
		t.Error("empty operating-point table")
	}
}

func TestNewManagerErrors(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	cfg.Charging = nil
	if _, err := New(cfg); err == nil {
		t.Error("missing charging must error")
	}
	cfg = managerConfig(t, trace.ScenarioI())
	cfg.Params.Frequencies = nil
	if _, err := New(cfg); err == nil {
		t.Error("bad params config must error")
	}
}

func TestBeginEndSlotAdvances(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Slot() != 0 || m.Time() != 0 {
		t.Error("fresh manager must start at slot 0")
	}
	pt, overhead := m.BeginSlot()
	if overhead != 0 {
		t.Errorf("first slot charged overhead %g", overhead)
	}
	if pt.Power > m.PlannedPower() && pt.N != 0 {
		t.Errorf("chosen point %v exceeds budget %g", pt, m.PlannedPower())
	}
	m.EndSlot(pt.Power*m.Tau(), 2.36*m.Tau())
	if m.Slot() != 1 {
		t.Errorf("Slot after EndSlot = %d", m.Slot())
	}
	if got := m.Time(); math.Abs(got-4.8) > 1e-9 {
		t.Errorf("Time = %g", got)
	}
}

func TestEndSlotNegativePanics(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative energy must panic")
		}
	}()
	m.EndSlot(-1, 0)
}

func TestAlgorithm3SurplusRaisesFuturePlan(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	before := m.PlanSnapshot()
	m.BeginSlot()
	// Use nothing: the whole planned slot energy becomes surplus.
	m.EndSlot(0, m.cfg.Charging.Values[0]*m.Tau())
	after := m.PlanSnapshot()
	sumBefore, sumAfter := 0.0, 0.0
	for i := range before {
		sumBefore += before[i]
		sumAfter += after[i]
	}
	if sumAfter <= sumBefore {
		t.Errorf("surplus must raise future plan: %g -> %g", sumBefore, sumAfter)
	}
}

func TestAlgorithm3DeficitLowersFuturePlan(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	before := m.PlanSnapshot()
	m.BeginSlot()
	// Massive overdraw plus no supply: a deficit.
	m.EndSlot(3*m.PlannedPower()*m.Tau(), 0)
	after := m.PlanSnapshot()
	sumBefore, sumAfter := 0.0, 0.0
	for i := range before {
		sumBefore += before[i]
		sumAfter += after[i]
	}
	if sumAfter >= sumBefore {
		t.Errorf("deficit must lower future plan: %g -> %g", sumBefore, sumAfter)
	}
}

func TestAlgorithm3ConservesEnergyProportional(t *testing.T) {
	// The redistribution must move exactly Ediff joules when nothing
	// clamps: Σ plan·τ changes by Ediff.
	m, err := New(managerConfig(t, trace.ScenarioII()))
	if err != nil {
		t.Fatal(err)
	}
	before := 0.0
	for _, v := range m.PlanSnapshot() {
		before += v * m.Tau()
	}
	m.BeginSlot()
	planned := m.PlannedPower() * m.Tau()
	expected := m.cfg.Charging.Values[0] * m.Tau()
	used := planned * 0.5 // under-use half: Ediff = planned/2
	m.EndSlot(used, expected)
	after := 0.0
	for _, v := range m.PlanSnapshot() {
		after += v * m.Tau()
	}
	ediff := planned - used
	if math.Abs((after-before)-ediff) > 1e-6 {
		t.Errorf("plan energy moved %g, want %g", after-before, ediff)
	}
}

func TestAlgorithm3EvenPolicy(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	cfg.Policy = Even
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := m.PlanSnapshot()
	m.BeginSlot()
	m.EndSlot(0, m.cfg.Charging.Values[0]*m.Tau())
	after := m.PlanSnapshot()
	// With the even policy, every window slot moves by the same delta.
	var deltas []float64
	for i := range before {
		d := after[i] - before[i]
		if math.Abs(d) > 1e-12 {
			deltas = append(deltas, d)
		}
	}
	if len(deltas) == 0 {
		t.Fatal("even policy moved nothing")
	}
	for _, d := range deltas[1:] {
		if math.Abs(d-deltas[0]) > 1e-9 {
			t.Errorf("even policy deltas differ: %v", deltas)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Proportional.String() != "proportional" || Even.String() != "even" {
		t.Error("policy names wrong")
	}
	if RedistributePolicy(9).String() != "RedistributePolicy(9)" {
		t.Error("unknown policy formatting wrong")
	}
}

func TestSyncCharge(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	m.SyncCharge(1e9)
	if m.Charge() != m.cfg.CapacityMax {
		t.Errorf("SyncCharge must clamp to Cmax: %g", m.Charge())
	}
	m.SyncCharge(-5)
	if m.Charge() != m.cfg.CapacityMin {
		t.Errorf("SyncCharge must clamp to Cmin: %g", m.Charge())
	}
}

func TestPlanStaysNonNegative(t *testing.T) {
	m, err := New(managerConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the manager with deficits; the plan must never go
	// negative.
	for s := 0; s < 48; s++ {
		pt, _ := m.BeginSlot()
		m.EndSlot(pt.Power*m.Tau()*3, 0)
		for i, v := range m.PlanSnapshot() {
			if v < 0 {
				t.Fatalf("slot %d: plan[%d] = %g negative", s, i, v)
			}
		}
	}
}

func TestOverheadChargedOnSwitch(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	cfg.Params.OverheadProc = 0.01
	cfg.Params.OverheadFreq = 0.02
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawOverhead := false
	for s := 0; s < 24; s++ {
		pt, overhead := m.BeginSlot()
		if overhead > 0 {
			sawOverhead = true
		}
		m.EndSlot(pt.Power*m.Tau()+overhead, m.cfg.Charging.Values[s%12]*m.Tau())
	}
	if !sawOverhead {
		t.Error("a varying allocation should eventually pay a switch overhead")
	}
}

func TestScheduleGridCompatibilityChecked(t *testing.T) {
	cfg := managerConfig(t, trace.ScenarioI())
	sim := SimConfig{Manager: cfg, Periods: 1,
		ActualCharging: schedule.NewGrid(4.8, []float64{1, 1})}
	if _, err := Simulate(sim); err == nil {
		t.Error("mismatched actual charging grid must error")
	}
}

// Algorithm 3's redistribution window must stop at the first future
// boundary where the projected trajectory pins at the relevant bound:
// a surplus goes only to the slots *before* the battery would fill.
func TestRedistributionWindowStopsAtPin(t *testing.T) {
	s := trace.ScenarioI()
	m, err := New(managerConfig(t, s))
	if err != nil {
		t.Fatal(err)
	}
	// Drive the manager to a state where the battery is nearly full
	// and the next slots keep charging hard: the projected trajectory
	// pins at Cmax quickly.
	m.SyncCharge(s.CapacityMax - 0.5)
	before := m.PlanSnapshot()
	m.BeginSlot()
	// Under-use massively: big positive Ediff.
	m.EndSlot(0, s.Charging.Values[0]*m.Tau())
	after := m.PlanSnapshot()

	// The window starts at slot 1; find how far changes reach.
	changedUpTo := -1
	for i := range after {
		if math.Abs(after[i]-before[i]) > 1e-9 {
			changedUpTo = i
		}
	}
	if changedUpTo < 0 {
		t.Fatal("surplus was not redistributed at all")
	}
	// With the battery ~full and 2.36 W charging against a ~2 W plan,
	// the trajectory pins within a slot or two: the far half of the
	// period must be untouched.
	for i := 6; i < 12; i++ {
		if math.Abs(after[i]-before[i]) > 1e-9 {
			t.Errorf("slot %d changed although the trajectory pins much earlier (%g -> %g)",
				i, before[i], after[i])
		}
	}
}

// A deficit's window stops where the trajectory would pin at Cmin.
func TestDeficitWindowStopsAtCmin(t *testing.T) {
	s := trace.ScenarioI()
	m, err := New(managerConfig(t, s))
	if err != nil {
		t.Fatal(err)
	}
	// Nearly empty battery entering the eclipse half: advance to slot
	// 6 (charging = 0 from here) by replaying six clean slots.
	for i := 0; i < 6; i++ {
		pt, _ := m.BeginSlot()
		m.EndSlot(pt.Power*m.Tau(), s.Charging.Values[i]*m.Tau())
	}
	m.SyncCharge(s.CapacityMin + 0.3)
	before := m.PlanSnapshot()
	m.BeginSlot()
	// Overdraw with no supply: big negative Ediff.
	m.EndSlot(2.0*m.Tau(), 0)
	after := m.PlanSnapshot()
	// The projection from a near-empty battery through zero-charging
	// slots pins at Cmin almost immediately; only the first following
	// slot(s) may change.
	changed := 0
	for i := range after {
		if math.Abs(after[i]-before[i]) > 1e-9 {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("deficit was not redistributed")
	}
	if changed > 3 {
		t.Errorf("deficit spread over %d slots despite an immediate Cmin pin", changed)
	}
}
