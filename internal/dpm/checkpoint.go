package dpm

import (
	"encoding/json"
	"fmt"
	"math"

	"dpm/internal/params"
)

// Checkpointing: a satellite controller reboots (radiation upsets,
// watchdogs), and the power manager must resume mid-period without
// recomputing from stale expectations. State captures everything the
// run-time loop mutates — the evolving plan, the slot counter, the
// charge estimate and the current operating point — but not the
// static configuration, which the host re-supplies on restore.

// State is the manager's serializable run-time state.
type State struct {
	// Plan is the circular per-period allocation in watts.
	Plan []float64 `json:"plan"`
	// Slot is the absolute slot counter.
	Slot int `json:"slot"`
	// Charge is the battery-charge estimate in joules.
	Charge float64 `json:"charge"`
	// Started reports whether an operating point has been chosen.
	Started bool `json:"started"`
	// CurrentN, CurrentF, CurrentV identify the active operating
	// point (matched against the table on restore).
	CurrentN int     `json:"currentN"`
	CurrentF float64 `json:"currentF"`
	CurrentV float64 `json:"currentV"`
}

// Checkpoint captures the manager's run-time state.
func (m *Manager) Checkpoint() State {
	return State{
		Plan:     m.PlanSnapshot(),
		Slot:     m.slot,
		Charge:   m.charge,
		Started:  m.started,
		CurrentN: m.current.N,
		CurrentF: m.current.F,
		CurrentV: m.current.V,
	}
}

// MarshalCheckpoint serializes the state as JSON.
func (m *Manager) MarshalCheckpoint() ([]byte, error) {
	return json.MarshalIndent(m.Checkpoint(), "", "  ")
}

// maxCheckpointSlot bounds the restored slot counter. At the paper's
// τ = 4.8 s, 2^40 slots is over 150 000 years of mission time; any
// larger value is checkpoint corruption, not history.
const maxCheckpointSlot = 1 << 40

// Restore applies a previously captured state to a freshly
// constructed manager with the same configuration. It validates the
// plan geometry, rejects non-finite energies (the exact artifact a
// radiation-upset reboot produces in a corrupted checkpoint) and
// re-resolves the operating point against the table so a restored
// manager cannot carry an impossible point into the re-planning loop.
func (m *Manager) Restore(s State) error {
	if len(s.Plan) != m.nSlots {
		return fmt.Errorf("dpm: checkpoint has %d slots, manager has %d", len(s.Plan), m.nSlots)
	}
	if s.Slot < 0 {
		return fmt.Errorf("dpm: negative slot counter %d", s.Slot)
	}
	if s.Slot > maxCheckpointSlot {
		return fmt.Errorf("dpm: slot counter %d beyond sane bounds", s.Slot)
	}
	if math.IsNaN(s.Charge) || math.IsInf(s.Charge, 0) {
		return fmt.Errorf("dpm: checkpoint charge %g is not finite", s.Charge)
	}
	for i, v := range s.Plan {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dpm: checkpoint plan[%d] = %g is not finite", i, v)
		}
		if v < 0 {
			return fmt.Errorf("dpm: checkpoint plan[%d] = %g negative", i, v)
		}
	}
	var point params.OperatingPoint
	if s.Started {
		found := false
		for _, p := range m.table.Points() {
			if p.N == s.CurrentN && p.F == s.CurrentF && p.V == s.CurrentV {
				point, found = p, true
				break
			}
		}
		if !found {
			return fmt.Errorf("dpm: checkpoint operating point (n=%d, f=%g, v=%g) not in the table",
				s.CurrentN, s.CurrentF, s.CurrentV)
		}
	}
	copy(m.plan.Values, s.Plan)
	m.slot = s.Slot
	m.SyncCharge(s.Charge)
	m.started = s.Started
	m.current = point
	return nil
}

// UnmarshalCheckpoint parses JSON produced by MarshalCheckpoint and
// applies it.
func (m *Manager) UnmarshalCheckpoint(data []byte) error {
	var s State
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("dpm: decoding checkpoint: %w", err)
	}
	return m.Restore(s)
}
