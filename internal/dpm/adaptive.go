package dpm

import (
	"fmt"

	"dpm/internal/battery"
	"dpm/internal/predict"
	"dpm/internal/schedule"
)

// AdaptiveConfig drives SimulateAdaptive: a multi-period run where
// the manager's *expected* charging schedule is re-derived each
// period by a predictor over the realized history — closing the
// outer loop of the paper's Figure 1 ("Expected Charging Schedule"
// feeds the allowable-power estimation, and §2 says the expectation
// comes from recorded previous periods).
type AdaptiveConfig struct {
	// Base is the manager configuration for the first period; its
	// Charging field doubles as the initial expectation.
	Base Config
	// ActualPeriods holds the realized charging schedule of each
	// period, one grid per period.
	ActualPeriods []*schedule.Grid
	// Predictor re-estimates the expected charging schedule after
	// every completed period. Nil keeps the Base expectation fixed.
	Predictor predict.Predictor
	// Battery selects the intra-slot battery semantics.
	Battery BatteryModel
}

// SimulateAdaptive runs one manager per period, each planned with the
// predictor's current expectation, against a battery that persists
// across periods. It returns the concatenated per-slot records and
// the final accounting.
func SimulateAdaptive(cfg AdaptiveConfig) (*SimResult, error) {
	if len(cfg.ActualPeriods) == 0 {
		return nil, fmt.Errorf("dpm: adaptive run needs at least one actual period")
	}
	bat, err := battery.New(battery.Config{
		CapacityMax: cfg.Base.CapacityMax,
		CapacityMin: cfg.Base.CapacityMin,
		Initial:     cfg.Base.InitialCharge,
	})
	if err != nil {
		return nil, fmt.Errorf("dpm: battery: %w", err)
	}

	expected := cfg.Base.Charging
	res := &SimResult{}
	var prev *Manager
	for periodIdx, actual := range cfg.ActualPeriods {
		if actual.Len() != expected.Len() || actual.Step != expected.Step {
			return nil, fmt.Errorf("dpm: period %d geometry %d×%gs does not match expectation %d×%gs",
				periodIdx, actual.Len(), actual.Step, expected.Len(), expected.Step)
		}
		mcfg := cfg.Base
		mcfg.Charging = expected
		mcfg.InitialCharge = bat.Charge()
		mgr, err := New(mcfg)
		if err != nil {
			return nil, fmt.Errorf("dpm: period %d: %w", periodIdx, err)
		}
		if prev != nil && prev.started {
			// Carry the operating point across the period boundary so
			// switch counting and overheads stay honest.
			mgr.current = prev.current
			mgr.started = true
		}

		tau := mgr.Tau()
		for s := 0; s < mgr.Slots(); s++ {
			planned := mgr.PlannedPower()
			point, overhead := mgr.BeginSlot()
			if (periodIdx > 0 || s > 0) && len(res.Records) > 0 &&
				point != res.Records[len(res.Records)-1].Point {
				res.Switches++
			}
			usedPower := point.Power + overhead/tau
			supplyPower := actual.Values[s]
			requested := usedPower * tau
			delivered := cfg.Battery.Step(bat, supplyPower, usedPower, tau)
			if requested > 0 {
				res.PerfSeconds += point.Perf * tau * (delivered / requested)
			}
			mgr.EndSlot(delivered, supplyPower*tau)
			mgr.SyncCharge(bat.Charge())
			res.Records = append(res.Records, SlotRecord{
				Time:          (float64(periodIdx)*float64(mgr.Slots()) + float64(s)) * tau,
				Planned:       planned,
				Point:         point,
				UsedPower:     usedPower,
				SuppliedPower: supplyPower,
				Charge:        bat.Charge(),
				Plan:          mgr.PlanSnapshot(),
			})
		}
		prev = mgr

		if cfg.Predictor != nil {
			if err := cfg.Predictor.Observe(actual); err != nil {
				return nil, fmt.Errorf("dpm: period %d observe: %w", periodIdx, err)
			}
			predicted, err := cfg.Predictor.Predict()
			switch {
			case predict.IsInsufficientHistory(err):
				// A windowed predictor still warming up: keep planning on
				// the current expectation until it has enough periods.
			case err != nil:
				return nil, fmt.Errorf("dpm: period %d predict: %w", periodIdx, err)
			default:
				expected = predicted
			}
		}
	}
	res.Battery = bat.Snapshot()
	return res, nil
}
