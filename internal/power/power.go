// Package power implements the paper's power-consumption models
// (§3, Eq. 4–6) and the frequency/voltage relationship g(v) with its
// inverse used to derive the best voltage for a chosen frequency
// (§4.2, Eq. 11).
//
// The paper models a single processor's dynamic power as
//
//	Power(f, v) ∝ f·v²                         (Eq. 4)
//
// and an n-processor system as the sum over active processors
// (Eq. 5), which for a homogeneous system running a common clock
// collapses to
//
//	Power(n, f, v) = c2·n·f·v²                 (Eq. 6)
//
// On top of the analytic model this package provides the mode-based
// model of the paper's M32R/D Processor-In-Memory chips: active
// (546 mW typical at 80 MHz/3.3 V), sleep (393 mW, memory only) and
// stand-by (6.6 mW, interrupt monitor only).
package power

import "fmt"

// Mode is a processor operating mode, mirroring the M32R/D modes the
// paper describes in §5.
type Mode int

const (
	// ModeOff means the processor consumes nothing.
	ModeOff Mode = iota
	// ModeStandby keeps only the interrupt-monitoring circuit alive.
	ModeStandby
	// ModeSleep keeps the on-chip DRAM alive but halts the core.
	ModeSleep
	// ModeActive runs the full circuit.
	ModeActive
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeStandby:
		return "standby"
	case ModeSleep:
		return "sleep"
	case ModeActive:
		return "active"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Law is the analytic power law of Eq. 6 with its proportionality
// constant c2 made explicit: Power = C2 · n · f · v².
type Law struct {
	// C2 is the proportionality constant in W/(Hz·V²).
	C2 float64
}

// Single returns one processor's dynamic power at frequency f (Hz)
// and voltage v (V), per Eq. 4.
func (l Law) Single(f, v float64) float64 { return l.C2 * f * v * v }

// System returns the homogeneous-system power for n processors at a
// common (f, v), per Eq. 6.
func (l Law) System(n int, f, v float64) float64 {
	return float64(n) * l.Single(f, v)
}

// Sum returns the heterogeneous-system power Σ c2·f_i·v_i², per
// Eq. 5. freqs and volts must have equal length.
func (l Law) Sum(freqs, volts []float64) float64 {
	if len(freqs) != len(volts) {
		panic(fmt.Sprintf("power: %d frequencies vs %d voltages", len(freqs), len(volts)))
	}
	total := 0.0
	for i := range freqs {
		total += l.Single(freqs[i], volts[i])
	}
	return total
}

// LawFromCalibration derives C2 from a single measured operating
// point: a processor drawing watts at (f, v).
func LawFromCalibration(watts, f, v float64) Law {
	if watts <= 0 || f <= 0 || v <= 0 {
		panic(fmt.Sprintf("power: non-positive calibration point (%g W, %g Hz, %g V)", watts, f, v))
	}
	return Law{C2: watts / (f * v * v)}
}

// ProcessorModel is the mode-based power model of one processor. In
// active mode the dynamic power scales as (f/FRef)·(v/VRef)² from the
// reference point, matching Eq. 4; sleep and stand-by powers are
// frequency-independent constants as on the M32R/D.
type ProcessorModel struct {
	// ActiveAtRef is the active-mode power (W) at FRef and VRef.
	ActiveAtRef float64
	// SleepPower is the sleep-mode power in watts.
	SleepPower float64
	// StandbyPower is the stand-by-mode power in watts.
	StandbyPower float64
	// FRef is the reference frequency (Hz) for ActiveAtRef.
	FRef float64
	// VRef is the reference voltage (V) for ActiveAtRef.
	VRef float64
}

// M32RD returns the paper's processor constants: 546 mW active at
// 80 MHz/3.3 V, 393 mW sleep, 6.6 mW stand-by.
func M32RD() ProcessorModel {
	return ProcessorModel{
		ActiveAtRef:  0.546,
		SleepPower:   0.393,
		StandbyPower: 0.0066,
		FRef:         80e6,
		VRef:         3.3,
	}
}

// Power returns the processor's draw (W) in the given mode at clock f
// (Hz) and supply v (V). f and v are ignored outside active mode.
func (p ProcessorModel) Power(mode Mode, f, v float64) float64 {
	switch mode {
	case ModeOff:
		return 0
	case ModeStandby:
		return p.StandbyPower
	case ModeSleep:
		return p.SleepPower
	case ModeActive:
		return p.Active(f, v)
	default:
		panic(fmt.Sprintf("power: unknown mode %d", int(mode)))
	}
}

// Active returns the active-mode power at (f, v), scaling the
// reference point by f·v² per Eq. 4.
func (p ProcessorModel) Active(f, v float64) float64 {
	if f < 0 || v < 0 {
		panic(fmt.Sprintf("power: negative operating point (%g Hz, %g V)", f, v))
	}
	return p.ActiveAtRef * (f / p.FRef) * (v / p.VRef) * (v / p.VRef)
}

// Law converts the processor model's active-mode scaling into the
// analytic Law of Eq. 6.
func (p ProcessorModel) Law() Law {
	return LawFromCalibration(p.ActiveAtRef, p.FRef, p.VRef)
}

// SystemModel is a fleet of processors sharing a ProcessorModel, plus
// a fixed board overhead (FPGAs, regulators). The paper's PAMA board
// has N = 8 processors and two interconnect FPGAs.
type SystemModel struct {
	// Proc is the per-processor model.
	Proc ProcessorModel
	// N is the total processor count.
	N int
	// BoardOverhead is a constant board draw in watts (0 in the
	// paper's simulation, which counts only processor power).
	BoardOverhead float64
}

// PAMA returns the paper's board: eight M32R/D PIMs, no modeled
// board overhead.
func PAMA() SystemModel {
	return SystemModel{Proc: M32RD(), N: 8}
}

// HomogeneousPower returns the board draw with nActive processors in
// active mode at a common (f, v) and the remaining N−nActive in
// stand-by — the configuration the paper's Algorithm 2 chooses
// between.
func (s SystemModel) HomogeneousPower(nActive int, f, v float64) float64 {
	return s.HomogeneousPowerIdle(nActive, f, v, ModeStandby)
}

// HomogeneousPowerIdle generalizes HomogeneousPower to an arbitrary
// idle mode for the inactive processors: the paper's simulation
// parks them in stand-by ("the sleep mode is not used"), but the
// M32R/D also offers sleep (DRAM alive, 393 mW) and off.
func (s SystemModel) HomogeneousPowerIdle(nActive int, f, v float64, idle Mode) float64 {
	if nActive < 0 || nActive > s.N {
		panic(fmt.Sprintf("power: nActive %d outside [0, %d]", nActive, s.N))
	}
	active := float64(nActive) * s.Proc.Active(f, v)
	idlePower := float64(s.N-nActive) * s.Proc.Power(idle, 0, 0)
	return active + idlePower + s.BoardOverhead
}

// Power returns the board draw for an arbitrary per-processor
// configuration. All three slices must have length N.
func (s SystemModel) Power(modes []Mode, freqs, volts []float64) float64 {
	if len(modes) != s.N || len(freqs) != s.N || len(volts) != s.N {
		panic(fmt.Sprintf("power: configuration lengths %d/%d/%d, want %d",
			len(modes), len(freqs), len(volts), s.N))
	}
	total := s.BoardOverhead
	for i, m := range modes {
		total += s.Proc.Power(m, freqs[i], volts[i])
	}
	return total
}

// MaxPower returns the board draw with everything active at fmax and
// vmax — useful for sizing allocations.
func (s SystemModel) MaxPower(fmax, vmax float64) float64 {
	return s.HomogeneousPower(s.N, fmax, vmax)
}

// MinPower returns the draw with every processor in stand-by.
func (s SystemModel) MinPower() float64 {
	return s.HomogeneousPower(0, 0, 0)
}

// Energy integrates a constant power over dt seconds. Trivial, but it
// keeps watt·second bookkeeping greppable at call sites.
func Energy(watts, dt float64) float64 { return watts * dt }

// Heterogeneous describes a fleet where each processor has its own
// model — the paper's §6 future-work extension.
type Heterogeneous struct {
	Procs []ProcessorModel
}

// Power returns the total draw for per-processor modes, frequencies
// and voltages. All slices must match len(Procs).
func (h Heterogeneous) Power(modes []Mode, freqs, volts []float64) float64 {
	n := len(h.Procs)
	if len(modes) != n || len(freqs) != n || len(volts) != n {
		panic(fmt.Sprintf("power: heterogeneous configuration lengths %d/%d/%d, want %d",
			len(modes), len(freqs), len(volts), n))
	}
	total := 0.0
	for i, p := range h.Procs {
		total += p.Power(modes[i], freqs[i], volts[i])
	}
	return total
}

// ScaleFleet builds a heterogeneous fleet from a base model with
// per-processor multipliers on the active power (e.g. process
// variation or mixed chip generations).
func ScaleFleet(base ProcessorModel, activeScale []float64) Heterogeneous {
	procs := make([]ProcessorModel, len(activeScale))
	for i, s := range activeScale {
		if s <= 0 {
			panic(fmt.Sprintf("power: non-positive scale %g at %d", s, i))
		}
		p := base
		p.ActiveAtRef *= s
		procs[i] = p
	}
	return Heterogeneous{Procs: procs}
}
