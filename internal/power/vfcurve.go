package power

import (
	"fmt"
	"math"
)

// VFCurve is the paper's g(v): the maximum clock frequency a
// processor sustains at supply voltage v, together with the inverse
// needed by Eq. 11 to derive the cheapest voltage for a target
// frequency:
//
//	v = g⁻¹(f)  if g⁻¹(f) ≥ vmin
//	v = vmin    otherwise                     (Eq. 11)
//
// MaxFrequency must be non-decreasing in v over [VMin, VMax].
type VFCurve interface {
	// MaxFrequency returns g(v) in hertz. v is clamped to
	// [VMin, VMax].
	MaxFrequency(v float64) float64
	// VoltageFor returns the Eq. 11 voltage for frequency f: the
	// smallest legal voltage that sustains f, never below VMin.
	// It returns an error if f exceeds g(VMax).
	VoltageFor(f float64) (float64, error)
	// VMin returns the minimum supply voltage.
	VMin() float64
	// VMax returns the maximum supply voltage.
	VMax() float64
}

// FixedVoltage models the paper's PAMA configuration, where the
// supply is pinned (vmin = vmax = 3.3 V) and any frequency up to FMax
// runs at that voltage.
type FixedVoltage struct {
	// V is the single legal supply voltage.
	V float64
	// FMax is the highest supported frequency at V.
	FMax float64
}

// NewFixedVoltage returns the pinned-supply curve. It panics on
// non-positive parameters, which are always configuration bugs.
func NewFixedVoltage(v, fmax float64) FixedVoltage {
	if v <= 0 || fmax <= 0 {
		panic(fmt.Sprintf("power: invalid fixed-voltage curve (%g V, %g Hz)", v, fmax))
	}
	return FixedVoltage{V: v, FMax: fmax}
}

// MaxFrequency implements VFCurve.
func (c FixedVoltage) MaxFrequency(float64) float64 { return c.FMax }

// VoltageFor implements VFCurve.
func (c FixedVoltage) VoltageFor(f float64) (float64, error) {
	if f > c.FMax*(1+1e-12) {
		return 0, fmt.Errorf("power: frequency %g Hz exceeds maximum %g Hz", f, c.FMax)
	}
	return c.V, nil
}

// VMin implements VFCurve.
func (c FixedVoltage) VMin() float64 { return c.V }

// VMax implements VFCurve.
func (c FixedVoltage) VMax() float64 { return c.V }

// LinearVF models g(v) as a line through (VMin, FAtVMin) and
// (VMax, FAtVMax): the classic first-order DVFS approximation where
// sustainable frequency grows linearly with supply voltage.
type LinearVF struct {
	vmin, vmax float64
	fmin, fmax float64
}

// NewLinearVF builds a linear curve. Voltages and frequencies must be
// positive with vmin < vmax and fAtVMin < fAtVMax.
func NewLinearVF(vmin, vmax, fAtVMin, fAtVMax float64) (*LinearVF, error) {
	if vmin <= 0 || vmax <= vmin {
		return nil, fmt.Errorf("power: invalid voltage range [%g, %g]", vmin, vmax)
	}
	if fAtVMin <= 0 || fAtVMax <= fAtVMin {
		return nil, fmt.Errorf("power: invalid frequency range [%g, %g]", fAtVMin, fAtVMax)
	}
	return &LinearVF{vmin: vmin, vmax: vmax, fmin: fAtVMin, fmax: fAtVMax}, nil
}

// MaxFrequency implements VFCurve.
func (c *LinearVF) MaxFrequency(v float64) float64 {
	v = math.Min(math.Max(v, c.vmin), c.vmax)
	return c.fmin + (c.fmax-c.fmin)*(v-c.vmin)/(c.vmax-c.vmin)
}

// VoltageFor implements VFCurve (Eq. 11).
func (c *LinearVF) VoltageFor(f float64) (float64, error) {
	if f > c.fmax*(1+1e-12) {
		return 0, fmt.Errorf("power: frequency %g Hz exceeds g(vmax) = %g Hz", f, c.fmax)
	}
	if f <= c.fmin {
		// Below g(vmin) the voltage floor binds: run at vmin.
		return c.vmin, nil
	}
	return c.vmin + (c.vmax-c.vmin)*(f-c.fmin)/(c.fmax-c.fmin), nil
}

// VMin implements VFCurve.
func (c *LinearVF) VMin() float64 { return c.vmin }

// VMax implements VFCurve.
func (c *LinearVF) VMax() float64 { return c.vmax }

// AlphaPowerVF models g(v) with the alpha-power law used throughout
// the DVFS literature: delay ∝ v / (v − Vth)^α, hence
// g(v) = K·(v − Vth)^α / v. K is derived from a calibration point
// (VMax, FMax).
type AlphaPowerVF struct {
	vmin, vmax float64
	vth        float64
	alpha      float64
	k          float64
	fmax       float64
}

// NewAlphaPowerVF builds the curve from the voltage window, threshold
// voltage, exponent alpha (typically 1.3–2.0), and the maximum
// frequency reached at vmax.
func NewAlphaPowerVF(vmin, vmax, vth, alpha, fmax float64) (*AlphaPowerVF, error) {
	if vmin <= 0 || vmax <= vmin {
		return nil, fmt.Errorf("power: invalid voltage range [%g, %g]", vmin, vmax)
	}
	if vth < 0 || vth >= vmin {
		return nil, fmt.Errorf("power: threshold %g must lie in [0, vmin)", vth)
	}
	if alpha < 1 || alpha > 3 {
		return nil, fmt.Errorf("power: alpha %g outside plausible [1, 3]", alpha)
	}
	if fmax <= 0 {
		return nil, fmt.Errorf("power: non-positive fmax %g", fmax)
	}
	c := &AlphaPowerVF{vmin: vmin, vmax: vmax, vth: vth, alpha: alpha, fmax: fmax}
	c.k = fmax * vmax / math.Pow(vmax-vth, alpha)
	return c, nil
}

// MaxFrequency implements VFCurve.
func (c *AlphaPowerVF) MaxFrequency(v float64) float64 {
	v = math.Min(math.Max(v, c.vmin), c.vmax)
	return c.k * math.Pow(v-c.vth, c.alpha) / v
}

// VoltageFor implements VFCurve. The alpha-power g(v) has no closed
// inverse, so it bisects; g is monotone on [vmin, vmax], making the
// bisection exact to the tolerance.
func (c *AlphaPowerVF) VoltageFor(f float64) (float64, error) {
	if f > c.fmax*(1+1e-9) {
		return 0, fmt.Errorf("power: frequency %g Hz exceeds g(vmax) = %g Hz", f, c.fmax)
	}
	if f <= c.MaxFrequency(c.vmin) {
		return c.vmin, nil
	}
	lo, hi := c.vmin, c.vmax
	for i := 0; i < 64 && hi-lo > 1e-9; i++ {
		mid := (lo + hi) / 2
		if c.MaxFrequency(mid) < f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// VMin implements VFCurve.
func (c *AlphaPowerVF) VMin() float64 { return c.vmin }

// VMax implements VFCurve.
func (c *AlphaPowerVF) VMax() float64 { return c.vmax }
