package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedVoltage(t *testing.T) {
	c := NewFixedVoltage(3.3, 80e6)
	if c.VMin() != 3.3 || c.VMax() != 3.3 {
		t.Error("fixed curve has a single voltage")
	}
	if c.MaxFrequency(3.3) != 80e6 {
		t.Errorf("g(3.3) = %g", c.MaxFrequency(3.3))
	}
	v, err := c.VoltageFor(20e6)
	if err != nil || v != 3.3 {
		t.Errorf("VoltageFor(20 MHz) = %g, %v", v, err)
	}
	if _, err := c.VoltageFor(100e6); err == nil {
		t.Error("frequency beyond FMax must error")
	}
}

func TestFixedVoltagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid fixed curve must panic")
		}
	}()
	NewFixedVoltage(0, 80e6)
}

func TestLinearVF(t *testing.T) {
	c, err := NewLinearVF(1.0, 2.0, 100e6, 300e6)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxFrequency(1.5); !approx(got, 200e6, 1) {
		t.Errorf("g(1.5) = %g, want 200 MHz", got)
	}
	// Clamping outside the window.
	if got := c.MaxFrequency(0.5); got != 100e6 {
		t.Errorf("g below vmin = %g", got)
	}
	if got := c.MaxFrequency(5); got != 300e6 {
		t.Errorf("g above vmax = %g", got)
	}
}

func TestLinearVFVoltageForEq11(t *testing.T) {
	c, err := NewLinearVF(1.0, 2.0, 100e6, 300e6)
	if err != nil {
		t.Fatal(err)
	}
	// Below g(vmin): voltage floor binds (Eq. 11 second branch).
	v, err := c.VoltageFor(50e6)
	if err != nil || v != 1.0 {
		t.Errorf("VoltageFor(50 MHz) = %g, %v; want vmin", v, err)
	}
	// Inside the range: exact inverse.
	v, err = c.VoltageFor(200e6)
	if err != nil || !approx(v, 1.5, 1e-9) {
		t.Errorf("VoltageFor(200 MHz) = %g, %v; want 1.5", v, err)
	}
	// Beyond g(vmax): error.
	if _, err := c.VoltageFor(400e6); err == nil {
		t.Error("frequency beyond g(vmax) must error")
	}
}

func TestLinearVFValidation(t *testing.T) {
	if _, err := NewLinearVF(2, 1, 1e6, 2e6); err == nil {
		t.Error("inverted voltage range must be rejected")
	}
	if _, err := NewLinearVF(1, 2, 2e6, 1e6); err == nil {
		t.Error("inverted frequency range must be rejected")
	}
	if _, err := NewLinearVF(0, 2, 1e6, 2e6); err == nil {
		t.Error("zero vmin must be rejected")
	}
}

func TestLinearVFRoundTrip(t *testing.T) {
	c, err := NewLinearVF(0.9, 1.8, 50e6, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		freq := 50e6 + math.Mod(math.Abs(raw), 350e6)
		if math.IsNaN(freq) {
			return true
		}
		v, err := c.VoltageFor(freq)
		if err != nil {
			return false
		}
		// g(VoltageFor(f)) must sustain f.
		return c.MaxFrequency(v) >= freq*(1-1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphaPowerVF(t *testing.T) {
	c, err := NewAlphaPowerVF(0.9, 1.8, 0.35, 1.5, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration point holds.
	if got := c.MaxFrequency(1.8); !approx(got, 400e6, 1) {
		t.Errorf("g(vmax) = %g, want 400 MHz", got)
	}
	// Monotone increasing.
	prev := 0.0
	for v := 0.9; v <= 1.8; v += 0.05 {
		f := c.MaxFrequency(v)
		if f < prev {
			t.Fatalf("g not monotone at v=%g", v)
		}
		prev = f
	}
}

func TestAlphaPowerVFVoltageFor(t *testing.T) {
	c, err := NewAlphaPowerVF(0.9, 1.8, 0.35, 1.5, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	// Below g(vmin): floor binds.
	low := c.MaxFrequency(0.9)
	v, err := c.VoltageFor(low / 2)
	if err != nil || v != 0.9 {
		t.Errorf("VoltageFor(low) = %g, %v", v, err)
	}
	// Mid-range: inverse is consistent.
	target := 300e6
	v, err = c.VoltageFor(target)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxFrequency(v); got < target*(1-1e-6) {
		t.Errorf("g(g⁻¹(%g)) = %g", target, got)
	}
	// Above g(vmax): error.
	if _, err := c.VoltageFor(500e6); err == nil {
		t.Error("frequency beyond g(vmax) must error")
	}
}

func TestAlphaPowerVFValidation(t *testing.T) {
	cases := []struct{ vmin, vmax, vth, alpha, fmax float64 }{
		{0, 1.8, 0.3, 1.5, 1e8},    // bad vmin
		{1.8, 0.9, 0.3, 1.5, 1e8},  // inverted
		{0.9, 1.8, 0.95, 1.5, 1e8}, // vth >= vmin
		{0.9, 1.8, 0.3, 0.5, 1e8},  // alpha too small
		{0.9, 1.8, 0.3, 3.5, 1e8},  // alpha too large
		{0.9, 1.8, 0.3, 1.5, 0},    // bad fmax
	}
	for i, c := range cases {
		if _, err := NewAlphaPowerVF(c.vmin, c.vmax, c.vth, c.alpha, c.fmax); err == nil {
			t.Errorf("case %d should be rejected: %+v", i, c)
		}
	}
}

func TestVFCurveInterfaceSatisfied(t *testing.T) {
	var curves []VFCurve
	curves = append(curves, NewFixedVoltage(3.3, 80e6))
	lin, _ := NewLinearVF(1, 2, 1e8, 3e8)
	curves = append(curves, lin)
	alpha, _ := NewAlphaPowerVF(0.9, 1.8, 0.35, 1.5, 4e8)
	curves = append(curves, alpha)
	for i, c := range curves {
		if c.VMax() < c.VMin() {
			t.Errorf("curve %d: VMax < VMin", i)
		}
		if c.MaxFrequency(c.VMax()) < c.MaxFrequency(c.VMin()) {
			t.Errorf("curve %d: g not non-decreasing at endpoints", i)
		}
	}
}
