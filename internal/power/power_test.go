package power

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeOff: "off", ModeStandby: "standby", ModeSleep: "sleep", ModeActive: "active",
		Mode(42): "Mode(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestLawEquation6(t *testing.T) {
	l := Law{C2: 2}
	// Power = c2·n·f·v²
	if got := l.System(4, 10, 3); got != 2*4*10*9 {
		t.Errorf("System = %g", got)
	}
	if got := l.Single(10, 3); got != 180 {
		t.Errorf("Single = %g", got)
	}
}

func TestLawSumEquation5(t *testing.T) {
	l := Law{C2: 1}
	got := l.Sum([]float64{10, 20}, []float64{2, 1})
	want := 10*4 + 20*1.0
	if got != want {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestLawSumLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched slice lengths must panic")
		}
	}()
	Law{C2: 1}.Sum([]float64{1}, []float64{1, 2})
}

func TestLawFromCalibration(t *testing.T) {
	l := LawFromCalibration(0.546, 80e6, 3.3)
	if got := l.Single(80e6, 3.3); !approx(got, 0.546, 1e-12) {
		t.Errorf("calibrated law at calibration point = %g, want 0.546", got)
	}
	// Halving frequency halves power.
	if got := l.Single(40e6, 3.3); !approx(got, 0.273, 1e-12) {
		t.Errorf("half frequency = %g, want 0.273", got)
	}
}

func TestLawFromCalibrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive calibration must panic")
		}
	}()
	LawFromCalibration(0, 1, 1)
}

func TestM32RDConstants(t *testing.T) {
	p := M32RD()
	if p.Power(ModeActive, 80e6, 3.3) != 0.546 {
		t.Errorf("active at ref = %g, want 0.546", p.Power(ModeActive, 80e6, 3.3))
	}
	if p.Power(ModeSleep, 0, 0) != 0.393 {
		t.Errorf("sleep = %g, want 0.393", p.Power(ModeSleep, 0, 0))
	}
	if p.Power(ModeStandby, 0, 0) != 0.0066 {
		t.Errorf("standby = %g, want 0.0066", p.Power(ModeStandby, 0, 0))
	}
	if p.Power(ModeOff, 0, 0) != 0 {
		t.Error("off must draw nothing")
	}
}

func TestActiveScalesWithFrequency(t *testing.T) {
	p := M32RD()
	p80 := p.Active(80e6, 3.3)
	p40 := p.Active(40e6, 3.3)
	p20 := p.Active(20e6, 3.3)
	if !approx(p40, p80/2, 1e-12) || !approx(p20, p80/4, 1e-12) {
		t.Errorf("frequency scaling broken: %g / %g / %g", p80, p40, p20)
	}
}

func TestActiveScalesWithVoltageSquared(t *testing.T) {
	p := M32RD()
	full := p.Active(80e6, 3.3)
	half := p.Active(80e6, 3.3/2)
	if !approx(half, full/4, 1e-9) {
		t.Errorf("voltage² scaling broken: %g vs %g", half, full/4)
	}
}

func TestActiveNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative operating point must panic")
		}
	}()
	M32RD().Active(-1, 3.3)
}

func TestUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown mode must panic")
		}
	}()
	M32RD().Power(Mode(99), 0, 0)
}

func TestProcessorLawRoundTrip(t *testing.T) {
	p := M32RD()
	l := p.Law()
	f := func(fraw, vraw float64) bool {
		f := 20e6 + math.Mod(math.Abs(fraw), 60e6)
		v := 1.0 + math.Mod(math.Abs(vraw), 2.3)
		if math.IsNaN(f) || math.IsNaN(v) {
			return true
		}
		return approx(p.Active(f, v), l.Single(f, v), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPAMAHomogeneousPower(t *testing.T) {
	s := PAMA()
	// All eight active at full speed: 8 × 546 mW.
	if got := s.HomogeneousPower(8, 80e6, 3.3); !approx(got, 8*0.546, 1e-9) {
		t.Errorf("full board = %g, want %g", got, 8*0.546)
	}
	// All standby: 8 × 6.6 mW.
	if got := s.MinPower(); !approx(got, 8*0.0066, 1e-9) {
		t.Errorf("idle board = %g, want %g", got, 8*0.0066)
	}
	// Mixed: 3 active at 20 MHz + 5 standby.
	want := 3*0.546/4 + 5*0.0066
	if got := s.HomogeneousPower(3, 20e6, 3.3); !approx(got, want, 1e-9) {
		t.Errorf("mixed board = %g, want %g", got, want)
	}
	if got := s.MaxPower(80e6, 3.3); !approx(got, 8*0.546, 1e-9) {
		t.Errorf("MaxPower = %g", got)
	}
}

func TestHomogeneousPowerBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nActive out of range must panic")
		}
	}()
	PAMA().HomogeneousPower(9, 80e6, 3.3)
}

func TestSystemPowerVectorForm(t *testing.T) {
	s := PAMA()
	modes := make([]Mode, 8)
	freqs := make([]float64, 8)
	volts := make([]float64, 8)
	for i := range modes {
		modes[i] = ModeStandby
	}
	modes[0] = ModeActive
	freqs[0], volts[0] = 80e6, 3.3
	got := s.Power(modes, freqs, volts)
	want := 0.546 + 7*0.0066
	if !approx(got, want, 1e-9) {
		t.Errorf("vector power = %g, want %g", got, want)
	}
}

func TestSystemPowerLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short slices must panic")
		}
	}()
	PAMA().Power([]Mode{ModeActive}, []float64{1}, []float64{1})
}

func TestSystemPowerMonotoneInActiveCount(t *testing.T) {
	s := PAMA()
	prev := -1.0
	for n := 0; n <= s.N; n++ {
		p := s.HomogeneousPower(n, 80e6, 3.3)
		if p <= prev {
			t.Fatalf("power not increasing at n=%d: %g after %g", n, p, prev)
		}
		prev = p
	}
}

func TestEnergy(t *testing.T) {
	if Energy(2.5, 4) != 10 {
		t.Errorf("Energy(2.5, 4) = %g", Energy(2.5, 4))
	}
}

func TestHeterogeneousFleet(t *testing.T) {
	fleet := ScaleFleet(M32RD(), []float64{1, 2})
	modes := []Mode{ModeActive, ModeActive}
	freqs := []float64{80e6, 80e6}
	volts := []float64{3.3, 3.3}
	got := fleet.Power(modes, freqs, volts)
	if !approx(got, 0.546*3, 1e-9) {
		t.Errorf("heterogeneous power = %g, want %g", got, 0.546*3)
	}
}

func TestHeterogeneousLengthPanics(t *testing.T) {
	fleet := ScaleFleet(M32RD(), []float64{1, 1})
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	fleet.Power([]Mode{ModeActive}, []float64{1, 2}, []float64{1, 2})
}

func TestScaleFleetRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive scale must panic")
		}
	}()
	ScaleFleet(M32RD(), []float64{1, 0})
}
