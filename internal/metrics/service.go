package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Service-side observability --------------------------------------
//
// The dpmd planning service (internal/server) reports its request
// and cache accounting through this file so the service reuses the
// repo's one metrics package instead of inventing a second
// convention. Counters are exported on GET /metrics in a flat
// plain-text form, one "name value" pair per line with an optional
// {endpoint="..."} label — trivially scrapable and diff-friendly.

// CacheStats mirrors the plan-cache counters (internal/plancache
// reports them; metrics renders them — the dependency points this
// way so plancache stays free-standing).
type CacheStats struct {
	// Hits and Misses count cache lookups by outcome.
	Hits, Misses uint64
	// Evictions counts entries displaced by capacity pressure.
	Evictions uint64
	// Puts counts insertions.
	Puts uint64
	// Len and Capacity are the current and maximum entry counts.
	Len, Capacity int
}

// EndpointStats aggregates one endpoint's request accounting.
type EndpointStats struct {
	// Requests counts completed requests.
	Requests uint64
	// Errors counts requests answered with a non-2xx status.
	Errors uint64
	// TotalSeconds sums request latencies.
	TotalSeconds float64
	// MaxSeconds is the slowest request seen.
	MaxSeconds float64
}

// MeanSeconds returns the average request latency, or 0 before any
// request.
func (e EndpointStats) MeanSeconds() float64 {
	if e.Requests == 0 {
		return 0
	}
	return e.TotalSeconds / float64(e.Requests)
}

// endpointCounters is the lock-free accumulator behind one
// endpoint's EndpointStats. Latency sums and maxima are float64s
// stored as bit patterns and updated by compare-and-swap, so Observe
// never takes a lock once the endpoint's entry exists.
type endpointCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	// totalBits and maxBits hold math.Float64bits of the running sum
	// and maximum of request latencies in seconds.
	totalBits atomic.Uint64
	maxBits   atomic.Uint64
}

func (c *endpointCounters) observe(status int, seconds float64) {
	c.requests.Add(1)
	if status < 200 || status >= 300 {
		c.errors.Add(1)
	}
	for {
		old := c.totalBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if c.totalBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := c.maxBits.Load()
		if seconds <= math.Float64frombits(old) {
			break
		}
		if c.maxBits.CompareAndSwap(old, math.Float64bits(seconds)) {
			break
		}
	}
}

func (c *endpointCounters) snapshot() EndpointStats {
	return EndpointStats{
		Requests:     c.requests.Load(),
		Errors:       c.errors.Load(),
		TotalSeconds: math.Float64frombits(c.totalBits.Load()),
		MaxSeconds:   math.Float64frombits(c.maxBits.Load()),
	}
}

// ServiceStats collects per-endpoint request counters. The zero
// value is not usable; call NewServiceStats. All methods are safe
// for concurrent use; the RWMutex guards only the map's shape — the
// service sees a handful of distinct paths, so after warmup every
// Observe is a read-lock plus four atomic updates and concurrent
// requests to the same endpoint never serialize on a mutex.
type ServiceStats struct {
	mu        sync.RWMutex
	endpoints map[string]*endpointCounters
	start     time.Time
}

// NewServiceStats returns an empty collector whose start time is now.
func NewServiceStats() *ServiceStats {
	return &ServiceStats{endpoints: make(map[string]*endpointCounters), start: time.Now()}
}

// StartTime returns the instant the collector was created (or last
// Reset) — the service's start time for uptime reporting.
func (s *ServiceStats) StartTime() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.start
}

// Uptime returns the time elapsed since StartTime.
func (s *ServiceStats) Uptime() time.Duration { return time.Since(s.StartTime()) }

// Reset drops every endpoint's counters — including the max-latency
// watermark, which otherwise never decays — and restarts the uptime
// clock. Intended for tests and for operators snapshotting between
// load phases; concurrent Observe calls racing a Reset land on either
// side of it, never in between.
func (s *ServiceStats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints = make(map[string]*endpointCounters)
	s.start = time.Now()
}

// counters returns the endpoint's accumulator, creating it on first
// sight.
func (s *ServiceStats) counters(endpoint string) *endpointCounters {
	s.mu.RLock()
	c := s.endpoints[endpoint]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.endpoints[endpoint]; c == nil {
		c = &endpointCounters{}
		s.endpoints[endpoint] = c
	}
	return c
}

// Observe records one completed request.
func (s *ServiceStats) Observe(endpoint string, status int, seconds float64) {
	s.counters(endpoint).observe(status, seconds)
}

// Snapshot copies the per-endpoint counters.
func (s *ServiceStats) Snapshot() map[string]EndpointStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]EndpointStats, len(s.endpoints))
	for k, v := range s.endpoints {
		out[k] = v.snapshot()
	}
	return out
}

// WriteServiceText renders the cache and endpoint counters as plain
// text, endpoints sorted by path for a stable layout.
func WriteServiceText(w io.Writer, cache CacheStats, endpoints map[string]EndpointStats) error {
	total := cache.Hits + cache.Misses
	hitRate := 0.0
	if total > 0 {
		hitRate = float64(cache.Hits) / float64(total)
	}
	if _, err := fmt.Fprintf(w,
		"dpmd_plancache_hits %d\ndpmd_plancache_misses %d\ndpmd_plancache_evictions %d\ndpmd_plancache_puts %d\ndpmd_plancache_entries %d\ndpmd_plancache_capacity %d\ndpmd_plancache_hit_rate %.4f\n",
		cache.Hits, cache.Misses, cache.Evictions, cache.Puts, cache.Len, cache.Capacity, hitRate); err != nil {
		return err
	}
	paths := make([]string, 0, len(endpoints))
	for p := range endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		e := endpoints[p]
		if _, err := fmt.Fprintf(w,
			"dpmd_requests_total{endpoint=%q} %d\ndpmd_request_errors_total{endpoint=%q} %d\ndpmd_request_seconds_mean{endpoint=%q} %.6f\ndpmd_request_seconds_max{endpoint=%q} %.6f\n",
			p, e.Requests, p, e.Errors, p, e.MeanSeconds(), p, e.MaxSeconds); err != nil {
			return err
		}
	}
	return nil
}
