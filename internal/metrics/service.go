package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Service-side observability --------------------------------------
//
// The dpmd planning service (internal/server) reports its request
// and cache accounting through this file so the service reuses the
// repo's one metrics package instead of inventing a second
// convention. Counters are exported on GET /metrics in a flat
// plain-text form, one "name value" pair per line with an optional
// {endpoint="..."} label — trivially scrapable and diff-friendly.

// CacheStats mirrors the plan-cache counters (internal/plancache
// reports them; metrics renders them — the dependency points this
// way so plancache stays free-standing).
type CacheStats struct {
	// Hits and Misses count cache lookups by outcome.
	Hits, Misses uint64
	// Evictions counts entries displaced by capacity pressure.
	Evictions uint64
	// Puts counts insertions.
	Puts uint64
	// Len and Capacity are the current and maximum entry counts.
	Len, Capacity int
}

// EndpointStats aggregates one endpoint's request accounting.
type EndpointStats struct {
	// Requests counts completed requests.
	Requests uint64
	// Errors counts requests answered with a non-2xx status.
	Errors uint64
	// TotalSeconds sums request latencies.
	TotalSeconds float64
	// MaxSeconds is the slowest request seen.
	MaxSeconds float64
}

// MeanSeconds returns the average request latency, or 0 before any
// request.
func (e EndpointStats) MeanSeconds() float64 {
	if e.Requests == 0 {
		return 0
	}
	return e.TotalSeconds / float64(e.Requests)
}

// ServiceStats collects per-endpoint request counters. The zero
// value is not usable; call NewServiceStats. All methods are safe
// for concurrent use.
type ServiceStats struct {
	mu        sync.Mutex
	endpoints map[string]*EndpointStats
}

// NewServiceStats returns an empty collector.
func NewServiceStats() *ServiceStats {
	return &ServiceStats{endpoints: make(map[string]*EndpointStats)}
}

// Observe records one completed request.
func (s *ServiceStats) Observe(endpoint string, status int, seconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.endpoints[endpoint]
	if e == nil {
		e = &EndpointStats{}
		s.endpoints[endpoint] = e
	}
	e.Requests++
	if status < 200 || status >= 300 {
		e.Errors++
	}
	e.TotalSeconds += seconds
	if seconds > e.MaxSeconds {
		e.MaxSeconds = seconds
	}
}

// Snapshot copies the per-endpoint counters.
func (s *ServiceStats) Snapshot() map[string]EndpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]EndpointStats, len(s.endpoints))
	for k, v := range s.endpoints {
		out[k] = *v
	}
	return out
}

// WriteServiceText renders the cache and endpoint counters as plain
// text, endpoints sorted by path for a stable layout.
func WriteServiceText(w io.Writer, cache CacheStats, endpoints map[string]EndpointStats) error {
	total := cache.Hits + cache.Misses
	hitRate := 0.0
	if total > 0 {
		hitRate = float64(cache.Hits) / float64(total)
	}
	if _, err := fmt.Fprintf(w,
		"dpmd_plancache_hits %d\ndpmd_plancache_misses %d\ndpmd_plancache_evictions %d\ndpmd_plancache_puts %d\ndpmd_plancache_entries %d\ndpmd_plancache_capacity %d\ndpmd_plancache_hit_rate %.4f\n",
		cache.Hits, cache.Misses, cache.Evictions, cache.Puts, cache.Len, cache.Capacity, hitRate); err != nil {
		return err
	}
	paths := make([]string, 0, len(endpoints))
	for p := range endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		e := endpoints[p]
		if _, err := fmt.Fprintf(w,
			"dpmd_requests_total{endpoint=%q} %d\ndpmd_request_errors_total{endpoint=%q} %d\ndpmd_request_seconds_mean{endpoint=%q} %.6f\ndpmd_request_seconds_max{endpoint=%q} %.6f\n",
			p, e.Requests, p, e.Errors, p, e.MeanSeconds(), p, e.MaxSeconds); err != nil {
			return err
		}
	}
	return nil
}
