package metrics

import (
	"math"
	"strings"
	"testing"

	"dpm/internal/battery"
)

func TestFromSnapshot(t *testing.T) {
	s := battery.Snapshot{Wasted: 1, Undersupplied: 2, TotalSupplied: 10, TotalDrawn: 7, Utilization: 0.7}
	e := FromSnapshot(s)
	if e.Wasted != 1 || e.Undersupplied != 2 || e.Supplied != 10 || e.Delivered != 7 || e.Utilization != 0.7 {
		t.Errorf("FromSnapshot = %+v", e)
	}
	if e.Badness() != 3 {
		t.Errorf("Badness = %g", e.Badness())
	}
}

func TestRatios(t *testing.T) {
	c := Comparison{
		Scenario: "I",
		Proposed: Energy{Wasted: 2, Undersupplied: 4},
		Baseline: Energy{Wasted: 20, Undersupplied: 40},
	}
	if c.WasteRatio() != 10 {
		t.Errorf("WasteRatio = %g", c.WasteRatio())
	}
	if c.UndersupplyRatio() != 10 {
		t.Errorf("UndersupplyRatio = %g", c.UndersupplyRatio())
	}
	// Zero proposed waste.
	c.Proposed.Wasted = 0
	if !math.IsInf(c.WasteRatio(), 1) {
		t.Error("zero proposed waste must give +Inf ratio")
	}
	c.Baseline.Wasted = 0
	if c.WasteRatio() != 1 {
		t.Error("both zero must give 1")
	}
	c.Proposed.Undersupplied = 0
	c.Baseline.Undersupplied = 0
	if c.UndersupplyRatio() != 1 {
		t.Error("both zero undersupply must give 1")
	}
	if !strings.Contains(c.String(), "scenario I") {
		t.Errorf("String = %q", c.String())
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Errorf("Mean = %g", Mean([]float64{1, 2, 3}))
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("singleton stddev must be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g, %g", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty MinMax must panic")
		}
	}()
	MinMax(nil)
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("identical RMSE = %g, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil || math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %g, %v", got, err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if got, err := RMSE(nil, nil); err != nil || got != 0 {
		t.Error("empty RMSE is 0")
	}
}

func TestTrackingError(t *testing.T) {
	got, err := TrackingError([]float64{2, 2}, []float64{2, 2})
	if err != nil || got != 0 {
		t.Errorf("perfect tracking = %g, %v", got, err)
	}
	if _, err := TrackingError([]float64{0, 0}, []float64{0, 0}); err == nil {
		t.Error("zero-mean plan must error")
	}
	got, err = TrackingError([]float64{2, 2}, []float64{3, 1})
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TrackingError = %g, %v", got, err)
	}
}

func TestFaultStatsAny(t *testing.T) {
	var s FaultStats
	if s.Any() {
		t.Error("zero value reports faults")
	}
	for _, mutated := range []FaultStats{
		{WorkerDeaths: 1},
		{TasksCorrupted: 2},
		{CommandsDropped: 1},
		{ControllerReboots: 1},
		{SensorFaultSeconds: 0.5},
	} {
		if !mutated.Any() {
			t.Errorf("%+v not reported as faulted", mutated)
		}
	}
}

func TestFaultStatsMeanRecovery(t *testing.T) {
	var s FaultStats
	if got := s.MeanRecoverySeconds(); got != 0 {
		t.Errorf("zero recoveries mean = %g", got)
	}
	s = FaultStats{Recoveries: 4, RecoverySeconds: 6}
	if got := s.MeanRecoverySeconds(); got != 1.5 {
		t.Errorf("mean = %g, want 1.5", got)
	}
}

func TestFaultStatsString(t *testing.T) {
	s := FaultStats{
		WorkerDeaths: 1, TasksCorrupted: 3, TasksRetried: 2, TasksLost: 1,
		CommandsDropped: 4, CommandsRetried: 3, ControllerReboots: 1,
		Replans: 1, PlanInfeasible: 2, Recoveries: 2, RecoverySeconds: 3,
		EnergyLostJ: 0.25,
	}
	out := s.String()
	for _, want := range []string{"1 deaths", "3 SEU", "2 retried", "4 cmds dropped", "1 reboots", "1 replans", "1.50s", "0.25 J"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
}
