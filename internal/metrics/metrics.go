// Package metrics computes the evaluation quantities of the paper's
// §5: wasted energy, undersupplied energy, energy utilization
// (defined in §2 as energy used for computation over energy
// available), and supporting series statistics used by the
// experiment harness.
package metrics

import (
	"fmt"
	"math"

	"dpm/internal/battery"
)

// Energy summarizes one run's energy accounting in joules.
type Energy struct {
	// Wasted is energy lost to the full-battery condition.
	Wasted float64
	// Undersupplied is energy demanded but not deliverable.
	Undersupplied float64
	// Supplied is the total energy offered by the source.
	Supplied float64
	// Delivered is the total energy spent on computation.
	Delivered float64
	// Utilization is Delivered / available.
	Utilization float64
}

// FromSnapshot converts a battery snapshot.
func FromSnapshot(s battery.Snapshot) Energy {
	return Energy{
		Wasted:        s.Wasted,
		Undersupplied: s.Undersupplied,
		Supplied:      s.TotalSupplied,
		Delivered:     s.TotalDrawn,
		Utilization:   s.Utilization,
	}
}

// Badness is the combined penalty the paper's Table 1 reports row
// pairs for: wasted plus undersupplied energy.
func (e Energy) Badness() float64 { return e.Wasted + e.Undersupplied }

// Comparison pairs the proposed algorithm's metrics with a
// baseline's for one scenario.
type Comparison struct {
	// Scenario names the workload ("I", "II").
	Scenario string
	// Proposed and Baseline are the two runs' metrics.
	Proposed, Baseline Energy
}

// WasteRatio returns Baseline.Wasted / Proposed.Wasted — the paper
// reports "more than a factor of ten" for its scenarios. It returns
// +Inf when the proposed run wasted nothing.
func (c Comparison) WasteRatio() float64 {
	if c.Proposed.Wasted == 0 {
		if c.Baseline.Wasted == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return c.Baseline.Wasted / c.Proposed.Wasted
}

// UndersupplyRatio returns Baseline.Undersupplied /
// Proposed.Undersupplied with the same conventions.
func (c Comparison) UndersupplyRatio() float64 {
	if c.Proposed.Undersupplied == 0 {
		if c.Baseline.Undersupplied == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return c.Baseline.Undersupplied / c.Proposed.Undersupplied
}

// String summarizes the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("scenario %s: proposed wasted %.2f J / under %.2f J; baseline wasted %.2f J / under %.2f J",
		c.Scenario, c.Proposed.Wasted, c.Proposed.Undersupplied,
		c.Baseline.Wasted, c.Baseline.Undersupplied)
}

// Fault accounting ---------------------------------------------------

// FaultStats aggregates one run's fault-injection accounting: what
// was injected, what the degradation machinery did about it, and what
// it cost. The zero value means a fault-free run.
type FaultStats struct {
	// WorkerDeaths counts permanent PIM failures delivered.
	WorkerDeaths int
	// TasksLost counts captures abandoned outright: lost with a dead
	// worker's memory or dropped after exhausting SEU retries.
	TasksLost int
	// TasksCorrupted counts in-flight tasks hit by an SEU.
	TasksCorrupted int
	// TasksRetried counts re-executions after a failed result check.
	TasksRetried int
	// RetriesExhausted counts tasks whose retry budget ran out.
	RetriesExhausted int
	// CommandsDropped counts ring commands lost in transit.
	CommandsDropped int
	// CommandsRetried counts re-sends after a delivery timeout.
	CommandsRetried int
	// CommandsAbandoned counts commands given up after the retry
	// limit.
	CommandsAbandoned int
	// SensorFaultSeconds totals the charging-telemetry outage
	// windows (dropout or bias).
	SensorFaultSeconds float64
	// ControllerReboots counts watchdog firings.
	ControllerReboots int
	// CheckpointRestores counts successful mid-run dpm.State
	// restores after a reboot.
	CheckpointRestores int
	// CheckpointRejects counts checkpoints refused as corrupt (the
	// controller cold-started instead).
	CheckpointRejects int
	// Replans counts degraded re-planning passes (Algorithm 1/2
	// re-run with reduced capability).
	Replans int
	// PlanInfeasible counts plan slots the degraded board could not
	// execute (clamped to its ceiling) plus allocation passes that
	// failed outright.
	PlanInfeasible int
	// Recoveries counts completed recovery actions (death detected
	// and re-planned, controller restored).
	Recoveries int
	// RecoverySeconds sums fault-to-recovery latencies.
	RecoverySeconds float64
	// EnergyLostJ estimates energy spent on work that faults
	// discarded: corrupted passes re-executed and partial progress
	// lost with dead workers.
	EnergyLostJ float64
}

// Any reports whether any fault was delivered.
func (s FaultStats) Any() bool {
	return s.WorkerDeaths+s.TasksCorrupted+s.CommandsDropped+s.ControllerReboots > 0 ||
		s.SensorFaultSeconds > 0
}

// MeanRecoverySeconds returns the average fault-to-recovery latency,
// or 0 when nothing needed recovering.
func (s FaultStats) MeanRecoverySeconds() float64 {
	if s.Recoveries == 0 {
		return 0
	}
	return s.RecoverySeconds / float64(s.Recoveries)
}

// String summarizes the fault accounting.
func (s FaultStats) String() string {
	return fmt.Sprintf(
		"faults: %d deaths, %d SEU (%d retried, %d lost), %d cmds dropped (%d retried), %d reboots, %d replans (%d infeasible), mean recovery %.2fs, %.2f J lost",
		s.WorkerDeaths, s.TasksCorrupted, s.TasksRetried, s.TasksLost,
		s.CommandsDropped, s.CommandsRetried, s.ControllerReboots,
		s.Replans, s.PlanInfeasible, s.MeanRecoverySeconds(), s.EnergyLostJ)
}

// Series statistics -------------------------------------------------

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// MinMax returns the smallest and largest elements. It panics on an
// empty slice — call sites always have data or a bug.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("metrics: MinMax of empty series")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// RMSE returns the root-mean-square error between two equal-length
// series — used to quantify how closely the measured power tracks
// the plan.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: RMSE over lengths %d and %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// TrackingError returns RMSE(used, planned) normalized by the mean
// planned power, a unitless plan-adherence score.
func TrackingError(planned, used []float64) (float64, error) {
	rmse, err := RMSE(planned, used)
	if err != nil {
		return 0, err
	}
	m := Mean(planned)
	if m == 0 {
		return 0, fmt.Errorf("metrics: zero mean plan")
	}
	return rmse / m, nil
}
