package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServiceStatsObserve(t *testing.T) {
	s := NewServiceStats()
	s.Observe("/v1/plan", 200, 0.010)
	s.Observe("/v1/plan", 200, 0.030)
	s.Observe("/v1/plan", 400, 0.002)
	s.Observe("/healthz", 200, 0.001)

	snap := s.Snapshot()
	plan := snap["/v1/plan"]
	if plan.Requests != 3 || plan.Errors != 1 {
		t.Fatalf("plan stats = %+v", plan)
	}
	if got := plan.MeanSeconds(); got < 0.0139 || got > 0.0141 {
		t.Fatalf("mean = %g", got)
	}
	if plan.MaxSeconds != 0.030 {
		t.Fatalf("max = %g", plan.MaxSeconds)
	}
	if snap["/healthz"].Requests != 1 {
		t.Fatalf("healthz stats = %+v", snap["/healthz"])
	}
	if (EndpointStats{}).MeanSeconds() != 0 {
		t.Fatal("zero-value mean not 0")
	}
}

func TestServiceStatsConcurrent(t *testing.T) {
	s := NewServiceStats()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe("/v1/plan", 200, 0.001)
				s.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot()["/v1/plan"].Requests; got != 4000 {
		t.Fatalf("requests = %d, want 4000", got)
	}
}

func TestWriteServiceText(t *testing.T) {
	var sb strings.Builder
	cache := CacheStats{Hits: 3, Misses: 1, Evictions: 2, Puts: 5, Len: 4, Capacity: 8}
	eps := map[string]EndpointStats{
		"/v1/plan": {Requests: 2, Errors: 1, TotalSeconds: 0.4, MaxSeconds: 0.3},
		"/healthz": {Requests: 9},
	}
	if err := WriteServiceText(&sb, cache, eps); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dpmd_plancache_hits 3",
		"dpmd_plancache_misses 1",
		"dpmd_plancache_evictions 2",
		"dpmd_plancache_entries 4",
		"dpmd_plancache_capacity 8",
		"dpmd_plancache_hit_rate 0.7500",
		`dpmd_requests_total{endpoint="/v1/plan"} 2`,
		`dpmd_request_errors_total{endpoint="/v1/plan"} 1`,
		`dpmd_request_seconds_mean{endpoint="/v1/plan"} 0.200000`,
		`dpmd_request_seconds_max{endpoint="/v1/plan"} 0.300000`,
		`dpmd_requests_total{endpoint="/healthz"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	// Endpoints render sorted for a stable scrape diff.
	if strings.Index(out, "/healthz") > strings.Index(out, "/v1/plan") {
		t.Fatal("endpoints not sorted")
	}
}

// TestServiceStatsResetAndUptime covers the max-latency watermark
// fix: before Reset existed, MaxSeconds could only grow for the life
// of the process. Reset must drop it (and every other counter) and
// restart the uptime clock.
func TestServiceStatsResetAndUptime(t *testing.T) {
	s := NewServiceStats()
	if s.StartTime().IsZero() {
		t.Fatal("start time not recorded")
	}
	s.Observe("/v1/plan", 200, 0.5)
	s.Observe("/v1/plan", 500, 0.1)
	before := s.Snapshot()["/v1/plan"]
	if before.MaxSeconds != 0.5 || before.Requests != 2 || before.Errors != 1 {
		t.Fatalf("pre-reset snapshot %+v", before)
	}
	firstStart := s.StartTime()
	time.Sleep(time.Millisecond)
	if s.Uptime() <= 0 {
		t.Fatal("uptime not advancing")
	}
	s.Reset()
	if len(s.Snapshot()) != 0 {
		t.Fatalf("counters survive Reset: %v", s.Snapshot())
	}
	if !s.StartTime().After(firstStart) {
		t.Fatal("Reset did not restart the uptime clock")
	}
	// The watermark genuinely re-learns from zero.
	s.Observe("/v1/plan", 200, 0.05)
	if got := s.Snapshot()["/v1/plan"].MaxSeconds; got != 0.05 {
		t.Fatalf("max after reset = %g, want 0.05 (old watermark leaked)", got)
	}
}
