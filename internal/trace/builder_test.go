package trace

import (
	"math"
	"testing"
)

func TestBuilderHappyPath(t *testing.T) {
	s, err := NewBuilder("leo", 4.8, 12).
		OrbitCharging(0.5, 3.0).
		TwinPeakDemand(0.3, 2.0).
		Battery(17.3, 0.5, 0.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "leo" || s.Charging.Len() != 12 || s.Usage.Len() != 12 {
		t.Errorf("scenario = %+v", s)
	}
	if s.CapacityMax != 17.3 || s.CapacityMin != 0.5 {
		t.Errorf("battery = [%g, %g]", s.CapacityMin, s.CapacityMax)
	}
	// Eclipse half is dark.
	if s.Charging.Values[11] != 0 {
		t.Errorf("eclipse slot charging = %g", s.Charging.Values[11])
	}
	// Twin peaks at slots 0 and 6.
	if s.Usage.Values[0] < s.Usage.Values[3] || s.Usage.Values[6] < s.Usage.Values[3] {
		t.Errorf("demand shape wrong: %v", s.Usage.Values)
	}
}

func TestBuilderDefaultsBattery(t *testing.T) {
	s, err := NewBuilder("x", 1, 4).
		ChargingGrid([]float64{1, 1, 0, 0}).
		ConstantDemand(0.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.CapacityMax != DefaultCapacityMax || s.CapacityMin != DefaultCapacityMin {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestBuilderBurstDemand(t *testing.T) {
	s, err := NewBuilder("burst", 1, 8).
		ChargingGrid([]float64{1, 1, 1, 1, 1, 1, 1, 1}).
		BurstDemand(0.1, 3.0, 2, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Usage.Values {
		want := 0.1
		if i >= 2 && i < 5 {
			want = 3.0
		}
		if v != want {
			t.Errorf("slot %d = %g, want %g", i, v, want)
		}
	}
}

func TestBuilderUsageGridAndWeight(t *testing.T) {
	s, err := NewBuilder("w", 1, 2).
		ChargingGrid([]float64{1, 1}).
		UsageGrid([]float64{1, 2}).
		Weight([]float64{1, 3}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Weight == nil || s.Weight.Values[1] != 3 {
		t.Errorf("weight lost: %+v", s.Weight)
	}
}

func TestBuilderChargingSchedule(t *testing.T) {
	orbit, err := OrbitCharging(8, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewBuilder("sched", 1, 8).
		ChargingSchedule(orbit).
		ConstantDemand(1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Energy preserved by the discretization.
	if math.Abs(s.Charging.Total()-2*6/math.Pi*2) > 1.0 {
		// Half-sine over 6 s at peak 2: area = 2·(2/π)·6 ≈ 7.64 J.
		t.Errorf("orbit energy = %g", s.Charging.Total())
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]func() (Scenario, error){
		"bad tau":       func() (Scenario, error) { return NewBuilder("x", 0, 4).Build() },
		"bad slots":     func() (Scenario, error) { return NewBuilder("x", 1, 0).Build() },
		"no charging":   func() (Scenario, error) { return NewBuilder("x", 1, 2).ConstantDemand(1).Build() },
		"no demand":     func() (Scenario, error) { return NewBuilder("x", 1, 2).ChargingGrid([]float64{1, 1}).Build() },
		"grid length":   func() (Scenario, error) { return NewBuilder("x", 1, 2).ChargingGrid([]float64{1}).Build() },
		"usage length":  func() (Scenario, error) { return NewBuilder("x", 1, 2).UsageGrid([]float64{1}).Build() },
		"weight length": func() (Scenario, error) { return NewBuilder("x", 1, 2).Weight([]float64{1}).Build() },
		"neg demand":    func() (Scenario, error) { return NewBuilder("x", 1, 2).ConstantDemand(-1).Build() },
		"bad twinpeak":  func() (Scenario, error) { return NewBuilder("x", 1, 2).TwinPeakDemand(2, 1).Build() },
		"burst range": func() (Scenario, error) {
			return NewBuilder("x", 1, 4).BurstDemand(0, 1, 3, 2).Build()
		},
		"burst values": func() (Scenario, error) {
			return NewBuilder("x", 1, 4).BurstDemand(2, 1, 0, 2).Build()
		},
		"bad battery": func() (Scenario, error) {
			return NewBuilder("x", 1, 2).ChargingGrid([]float64{1, 1}).ConstantDemand(1).Battery(1, 2, 1).Build()
		},
		"bad orbit": func() (Scenario, error) { return NewBuilder("x", 1, 4).OrbitCharging(1.5, 2).Build() },
		"sched period": func() (Scenario, error) {
			orbit, _ := OrbitCharging(99, 0.2, 1)
			return NewBuilder("x", 1, 4).ChargingSchedule(orbit).Build()
		},
	}
	for name, build := range cases {
		if _, err := build(); err == nil {
			t.Errorf("%s: invalid scenario accepted", name)
		}
	}
}

func TestBuilderFirstErrorWins(t *testing.T) {
	_, err := NewBuilder("x", 0, 4). // tau error first
						ChargingGrid([]float64{1}). // would be a length error
						Build()
	if err == nil || err.Error() != "trace: non-positive tau 0" {
		t.Errorf("first error not preserved: %v", err)
	}
}

func TestBuilderScenarioRunsEndToEnd(t *testing.T) {
	// A built scenario must plug straight into the allocator.
	s, err := NewBuilder("endtoend", 4.8, 12).
		OrbitCharging(0.4, 2.5).
		TwinPeakDemand(0.2, 1.8).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Charging.Total() <= 0 || s.Usage.Total() <= 0 {
		t.Fatalf("degenerate scenario: %+v", s)
	}
}
