package trace

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioJSON exercises the scenario decoder against arbitrary
// bytes: it must never panic, and anything it accepts must satisfy
// the scenario invariants.
func FuzzScenarioJSON(f *testing.F) {
	good, err := json.Marshal(ScenarioI())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","charging":{"step":1,"values":[1]},"usage":{"step":1,"values":[1]}}`))
	f.Add([]byte(`{"charging":{"step":-1,"values":[]}}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Scenario
		if err := json.Unmarshal(data, &s); err != nil {
			return // rejected is fine
		}
		// Accepted scenarios must be internally consistent.
		if s.Charging == nil || s.Usage == nil {
			t.Fatalf("accepted scenario with missing schedules: %q", data)
		}
		if s.Charging.Step <= 0 || s.Charging.Len() == 0 {
			t.Fatalf("accepted degenerate charging grid: %+v", s.Charging)
		}
		if s.Charging.Len() != s.Usage.Len() || s.Charging.Step != s.Usage.Step {
			t.Fatalf("accepted mismatched geometry: %+v", s)
		}
		if s.CapacityMax <= s.CapacityMin {
			t.Fatalf("accepted inverted battery band: %+v", s)
		}
	})
}
