package trace

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	orig := ScenarioII()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Scenario
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.CapacityMax != orig.CapacityMax {
		t.Errorf("metadata lost: %+v", got)
	}
	if !got.Charging.Equal(orig.Charging, 0) || !got.Usage.Equal(orig.Usage, 0) {
		t.Error("schedules lost in round trip")
	}
}

func TestScenarioJSONDefaults(t *testing.T) {
	raw := `{
		"name": "custom",
		"charging": {"step": 4.8, "values": [2, 2, 0, 0]},
		"usage":    {"step": 4.8, "values": [1, 1, 1, 1]}
	}`
	var s Scenario
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	if s.CapacityMax != DefaultCapacityMax || s.CapacityMin != DefaultCapacityMin {
		t.Errorf("battery defaults not applied: %+v", s)
	}
	if s.InitialCharge != DefaultCapacityMin {
		t.Errorf("initial charge default = %g", s.InitialCharge)
	}
}

func TestScenarioJSONValidation(t *testing.T) {
	cases := map[string]string{
		"missing usage":    `{"name":"x","charging":{"step":1,"values":[1]}}`,
		"geometry":         `{"name":"x","charging":{"step":1,"values":[1]},"usage":{"step":1,"values":[1,2]}}`,
		"weight geometry":  `{"name":"x","charging":{"step":1,"values":[1]},"usage":{"step":1,"values":[1]},"weight":{"step":2,"values":[1]}}`,
		"inverted battery": `{"name":"x","charging":{"step":1,"values":[1]},"usage":{"step":1,"values":[1]},"capacityMax":1,"capacityMin":5}`,
		"bad grid step":    `{"name":"x","charging":{"step":0,"values":[1]},"usage":{"step":1,"values":[1]}}`,
		"empty grid":       `{"name":"x","charging":{"step":1,"values":[]},"usage":{"step":1,"values":[1]}}`,
		"not json":         `{`,
	}
	for name, raw := range cases {
		var s Scenario
		if err := json.Unmarshal([]byte(raw), &s); err == nil {
			t.Errorf("%s: accepted invalid scenario", name)
		}
	}
}

func TestSaveLoadScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	orig := ScenarioI()
	if err := SaveScenario(orig, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "I" || !got.Charging.Equal(orig.Charging, 0) {
		t.Errorf("load mismatch: %+v", got)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestScenarioJSONIsReadable(t *testing.T) {
	data, err := json.MarshalIndent(ScenarioI(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"step": 4.8`) {
		t.Errorf("unexpected wire format:\n%s", data)
	}
}
