package trace

import (
	"encoding/json"
	"fmt"
	"os"

	"dpm/internal/schedule"
)

// scenarioJSON is the wire form of a Scenario. Weight may be omitted
// (uniform); battery fields fall back to the package defaults when
// zero.
type scenarioJSON struct {
	Name          string         `json:"name"`
	Charging      *schedule.Grid `json:"charging"`
	Usage         *schedule.Grid `json:"usage"`
	Weight        *schedule.Grid `json:"weight,omitempty"`
	CapacityMax   float64        `json:"capacityMax,omitempty"`
	CapacityMin   float64        `json:"capacityMin,omitempty"`
	InitialCharge float64        `json:"initialCharge,omitempty"`
}

// MarshalJSON encodes the scenario.
func (s Scenario) MarshalJSON() ([]byte, error) {
	return json.Marshal(scenarioJSON{
		Name:          s.Name,
		Charging:      s.Charging,
		Usage:         s.Usage,
		Weight:        s.Weight,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
	})
}

// UnmarshalJSON decodes and validates a scenario: charging and usage
// are required and must share geometry; zero battery fields take the
// paper defaults.
func (s *Scenario) UnmarshalJSON(data []byte) error {
	var w scenarioJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("trace: decoding scenario: %w", err)
	}
	if w.Charging == nil || w.Usage == nil {
		return fmt.Errorf("trace: scenario %q needs charging and usage schedules", w.Name)
	}
	if w.Charging.Step != w.Usage.Step || w.Charging.Len() != w.Usage.Len() {
		return fmt.Errorf("trace: scenario %q: charging %d×%gs vs usage %d×%gs",
			w.Name, w.Charging.Len(), w.Charging.Step, w.Usage.Len(), w.Usage.Step)
	}
	if w.Weight != nil && (w.Weight.Step != w.Usage.Step || w.Weight.Len() != w.Usage.Len()) {
		return fmt.Errorf("trace: scenario %q: weight geometry mismatch", w.Name)
	}
	if w.CapacityMax == 0 {
		w.CapacityMax = DefaultCapacityMax
	}
	if w.CapacityMin == 0 {
		w.CapacityMin = DefaultCapacityMin
	}
	if w.InitialCharge == 0 {
		w.InitialCharge = w.CapacityMin
	}
	if w.CapacityMax <= w.CapacityMin {
		return fmt.Errorf("trace: scenario %q: Cmax %g must exceed Cmin %g",
			w.Name, w.CapacityMax, w.CapacityMin)
	}
	*s = Scenario{
		Name:          w.Name,
		Charging:      w.Charging,
		Usage:         w.Usage,
		Weight:        w.Weight,
		CapacityMax:   w.CapacityMax,
		CapacityMin:   w.CapacityMin,
		InitialCharge: w.InitialCharge,
	}
	return nil
}

// LoadScenario reads a scenario from a JSON file, letting deployments
// define custom environments without recompiling.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("trace: %w", err)
	}
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// SaveScenario writes a scenario to a JSON file.
func SaveScenario(s Scenario, path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
