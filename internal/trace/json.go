package trace

import (
	"encoding/json"
	"fmt"
	"os"

	"dpm/internal/schedule"
)

// scenarioJSON is the wire form of a Scenario. Weight may be omitted
// (uniform); battery fields fall back to the package defaults when
// zero.
type scenarioJSON struct {
	Name          string         `json:"name"`
	Charging      *schedule.Grid `json:"charging"`
	Usage         *schedule.Grid `json:"usage"`
	Weight        *schedule.Grid `json:"weight,omitempty"`
	CapacityMax   float64        `json:"capacityMax,omitempty"`
	CapacityMin   float64        `json:"capacityMin,omitempty"`
	InitialCharge float64        `json:"initialCharge,omitempty"`
}

// MarshalJSON encodes the scenario.
func (s Scenario) MarshalJSON() ([]byte, error) {
	return json.Marshal(scenarioJSON{
		Name:          s.Name,
		Charging:      s.Charging,
		Usage:         s.Usage,
		Weight:        s.Weight,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
	})
}

// UnmarshalJSON decodes and validates a scenario: charging and usage
// are required and must share geometry; zero battery fields take the
// paper defaults.
func (s *Scenario) UnmarshalJSON(data []byte) error {
	var w scenarioJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("trace: decoding scenario: %w", err)
	}
	dec, err := NewScenario(w.Name, w.Charging, w.Usage, w.Weight,
		w.CapacityMax, w.CapacityMin, w.InitialCharge)
	if err != nil {
		return err
	}
	*s = dec
	return nil
}

// NewScenario assembles a scenario from its wire fields, applying
// exactly the normalization the JSON decoder does: charging and usage
// are required and must share geometry, a weight grid must match
// them, and zero battery fields take the paper defaults. Every
// decoder of an alternative wire encoding (the server's binary plan
// codec) routes through it so the same bytes-to-scenario semantics
// hold regardless of transport.
func NewScenario(name string, charging, usage, weight *schedule.Grid, capacityMax, capacityMin, initialCharge float64) (Scenario, error) {
	if charging == nil || usage == nil {
		return Scenario{}, fmt.Errorf("trace: scenario %q needs charging and usage schedules", name)
	}
	if charging.Step != usage.Step || charging.Len() != usage.Len() {
		return Scenario{}, fmt.Errorf("trace: scenario %q: charging %d×%gs vs usage %d×%gs",
			name, charging.Len(), charging.Step, usage.Len(), usage.Step)
	}
	if weight != nil && (weight.Step != usage.Step || weight.Len() != usage.Len()) {
		return Scenario{}, fmt.Errorf("trace: scenario %q: weight geometry mismatch", name)
	}
	if capacityMax == 0 {
		capacityMax = DefaultCapacityMax
	}
	if capacityMin == 0 {
		capacityMin = DefaultCapacityMin
	}
	if initialCharge == 0 {
		initialCharge = capacityMin
	}
	if capacityMax <= capacityMin {
		return Scenario{}, fmt.Errorf("trace: scenario %q: Cmax %g must exceed Cmin %g",
			name, capacityMax, capacityMin)
	}
	return Scenario{
		Name:          name,
		Charging:      charging,
		Usage:         usage,
		Weight:        weight,
		CapacityMax:   capacityMax,
		CapacityMin:   capacityMin,
		InitialCharge: initialCharge,
	}, nil
}

// LoadScenario reads a scenario from a JSON file, letting deployments
// define custom environments without recompiling.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("trace: %w", err)
	}
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// SaveScenario writes a scenario to a JSON file.
func SaveScenario(s Scenario, path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
