// Package trace provides the workload and environment inputs for the
// paper's evaluation (§5): the two charging/usage scenarios shown in
// Figures 3 and 4 (digitized from the tables), a parametric
// solar-orbit charging model, and Poisson event traces driven by an
// event-rate schedule.
package trace

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dpm/internal/schedule"
)

// Tau is the paper's parameter-update interval τ: the measured
// execution time of the 2K-sample fixed-point FFT at 20 MHz.
const Tau = 4.8

// Period is the paper's charging period T = 12·τ.
const Period = 57.6

// Slots is the number of parameter updates per period.
const Slots = 12

// The paper reports its battery trajectory in units of W·τ (its
// "Integration" rows are cumulative sums of per-slot powers). The
// minimum requirement it quotes, 0.098, and the observed trajectory
// ceiling near 3.6 convert to joules by multiplying with τ.
const (
	// DefaultCapacityMin is Cmin in joules (0.098 W·τ).
	DefaultCapacityMin = 0.098 * Tau
	// DefaultCapacityMax is Cmax in joules (3.6 W·τ).
	DefaultCapacityMax = 3.6 * Tau
)

// Scenario bundles one experiment's environment: what §2 calls the
// expected charging schedule, expected event-rate schedule, weight
// function, and battery limits.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Charging is c(t) in watts per slot.
	Charging *schedule.Grid
	// Usage is the desired power-usage shape (the paper's Figure
	// 3/4 "use schedule"), which doubles as the event-rate shape
	// u(t) — Eq. 8 rescales it anyway.
	Usage *schedule.Grid
	// Weight is w(t); nil means uniform.
	Weight *schedule.Grid
	// CapacityMax, CapacityMin and InitialCharge are the battery
	// parameters in joules.
	CapacityMax   float64
	CapacityMin   float64
	InitialCharge float64
}

// ScenarioI returns the paper's first scenario (Figure 3): the
// charger delivers a constant 2.36 W for the first half of the orbit
// and nothing in eclipse, while demand peaks at both ends of the
// period.
func ScenarioI() Scenario {
	return Scenario{
		Name: "I",
		Charging: schedule.NewGrid(Tau, []float64{
			2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0, 0, 0, 0, 0, 0,
		}),
		Usage: schedule.NewGrid(Tau, []float64{
			1.89, 1.21, 0.32, 0.32, 1.21, 2.03, 1.9, 1.21, 0.32, 0.32, 1.21, 2.03,
		}),
		CapacityMax:   DefaultCapacityMax,
		CapacityMin:   DefaultCapacityMin,
		InitialCharge: DefaultCapacityMin,
	}
}

// ScenarioII returns the paper's second scenario (Figure 4): a
// ramped charging profile with a short eclipse and a demand spike in
// the middle of the period.
func ScenarioII() Scenario {
	return Scenario{
		Name: "II",
		Charging: schedule.NewGrid(Tau, []float64{
			3.24, 3.54, 3.54, 3.54, 0.88, 0, 0, 0, 0.88, 0.88, 1.77, 2.36,
		}),
		Usage: schedule.NewGrid(Tau, []float64{
			0.59, 0.88, 0.88, 0.59, 3.54, 3.54, 2.95, 0, 0.59, 1.77, 2.95, 2.36,
		}),
		CapacityMax:   DefaultCapacityMax,
		CapacityMin:   DefaultCapacityMin,
		InitialCharge: DefaultCapacityMin,
	}
}

// Scenarios returns both paper scenarios, in order.
func Scenarios() []Scenario { return []Scenario{ScenarioI(), ScenarioII()} }

// ByName returns the scenario with the given name ("I" or "II").
func ByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("trace: unknown scenario %q", name)
}

// OrbitCharging models a solar panel over one orbit: zero power
// while the satellite is in eclipse (the final eclipseFraction of
// the period) and a half-sine profile peaking at peakWatts while in
// sunlight, approximating the incidence angle sweep.
func OrbitCharging(period, eclipseFraction, peakWatts float64) (schedule.Schedule, error) {
	if period <= 0 {
		return nil, fmt.Errorf("trace: non-positive orbit period %g", period)
	}
	if eclipseFraction < 0 || eclipseFraction >= 1 {
		return nil, fmt.Errorf("trace: eclipse fraction %g outside [0, 1)", eclipseFraction)
	}
	if peakWatts <= 0 {
		return nil, fmt.Errorf("trace: non-positive peak power %g", peakWatts)
	}
	sunlight := period * (1 - eclipseFraction)
	return schedule.NewFunc(func(t float64) float64 {
		if t >= sunlight {
			return 0
		}
		return peakWatts * math.Sin(math.Pi*t/sunlight)
	}, period), nil
}

// Event is one computation-triggering event (an RF transient in the
// paper's FORTE application).
type Event struct {
	// Time is the arrival time within the trace, in seconds.
	Time float64
	// Seed individualizes the event's payload generation.
	Seed int64
}

// PoissonEvents draws a non-homogeneous Poisson arrival trace over
// [0, duration) whose instantaneous rate is rate.At(t)·scale events
// per second. It uses thinning against the schedule's maximum, so
// the trace is exact for any bounded rate schedule. The generator is
// fully determined by seed.
func PoissonEvents(rate schedule.Schedule, scale, duration float64, seed int64) ([]Event, error) {
	return PoissonEventsBounded(context.Background(), rate, scale, duration, seed, 0)
}

// PoissonEventsBounded is PoissonEvents with two safety rails for
// serving untrusted inputs: the generation aborts with ctx.Err() when
// ctx is cancelled (polled every few thousand candidate arrivals),
// and it fails once more than maxEvents arrivals are accepted instead
// of growing the slice without bound (0 means unlimited). The
// accepted trace for a given (rate, scale, duration, seed) is
// identical to PoissonEvents's.
func PoissonEventsBounded(ctx context.Context, rate schedule.Schedule, scale, duration float64, seed int64, maxEvents int) ([]Event, error) {
	if scale < 0 {
		return nil, fmt.Errorf("trace: negative rate scale %g", scale)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("trace: non-positive duration %g", duration)
	}
	// Find the rate ceiling by dense sampling over one period.
	const probes = 4096
	maxRate := 0.0
	for i := 0; i < probes; i++ {
		r := rate.At(float64(i) / probes * rate.Period())
		if r < 0 {
			return nil, fmt.Errorf("trace: negative event rate %g at t=%g", r, float64(i)/probes*rate.Period())
		}
		maxRate = math.Max(maxRate, r)
	}
	maxRate *= scale
	if maxRate == 0 {
		return nil, nil
	}

	const ctxCheckEvery = 4096
	rng := rand.New(rand.NewSource(seed))
	var events []Event
	t := 0.0
	for i := 0; ; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		t += rng.ExpFloat64() / maxRate
		if t >= duration {
			break
		}
		if rng.Float64()*maxRate <= rate.At(t)*scale {
			if maxEvents > 0 && len(events) >= maxEvents {
				return nil, fmt.Errorf("trace: event trace exceeds %d events over %g s (rate ceiling %g/s); shorten the horizon or lower the rate", maxEvents, duration, maxRate)
			}
			events = append(events, Event{Time: t, Seed: rng.Int63()})
		}
	}
	return events, nil
}

// EventsPerSlot bins events into slots of width tau over duration
// and returns the per-slot counts. Events beyond the last full slot
// are dropped.
func EventsPerSlot(events []Event, tau, duration float64) []int {
	if tau <= 0 || duration <= 0 {
		panic(fmt.Sprintf("trace: invalid binning (τ=%g, duration=%g)", tau, duration))
	}
	n := int(duration / tau)
	counts := make([]int, n)
	for _, e := range events {
		i := int(e.Time / tau)
		if i >= 0 && i < n {
			counts[i]++
		}
	}
	return counts
}

// Perturb returns a copy of g with each slot multiplied by a factor
// drawn uniformly from [1−jitter, 1+jitter], clamped non-negative.
// It models the run-time deviation between expected and actual
// schedules that §4.3 exists to absorb. Deterministic in seed.
func Perturb(g *schedule.Grid, jitter float64, seed int64) *schedule.Grid {
	if jitter < 0 {
		panic(fmt.Sprintf("trace: negative jitter %g", jitter))
	}
	rng := rand.New(rand.NewSource(seed))
	out := g.Clone()
	for i := range out.Values {
		f := 1 + jitter*(2*rng.Float64()-1)
		out.Values[i] *= f
		if out.Values[i] < 0 {
			out.Values[i] = 0
		}
	}
	return out
}

// SortEvents orders events by arrival time (PoissonEvents already
// returns them sorted; this is for merged traces).
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool { return events[i].Time < events[j].Time })
}
