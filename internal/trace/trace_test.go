package trace

import (
	"context"
	"math"
	"strings"
	"testing"

	"dpm/internal/schedule"
)

func TestScenarioIDigitization(t *testing.T) {
	s := ScenarioI()
	if s.Charging.Len() != Slots || s.Usage.Len() != Slots {
		t.Fatal("scenario I must have 12 slots")
	}
	if s.Charging.Step != Tau {
		t.Errorf("step = %g", s.Charging.Step)
	}
	// Charging: 2.36 W for six slots, then eclipse.
	for i := 0; i < 6; i++ {
		if s.Charging.Values[i] != 2.36 {
			t.Errorf("charging[%d] = %g", i, s.Charging.Values[i])
		}
	}
	for i := 6; i < 12; i++ {
		if s.Charging.Values[i] != 0 {
			t.Errorf("eclipse charging[%d] = %g", i, s.Charging.Values[i])
		}
	}
	// Supply and demand are near-balanced (paper's Figure 3).
	if math.Abs(s.Charging.Total()-s.Usage.Total()) > 1.0 {
		t.Errorf("supply %g J vs demand %g J", s.Charging.Total(), s.Usage.Total())
	}
}

func TestScenarioIIDigitization(t *testing.T) {
	s := ScenarioII()
	if s.Charging.Len() != Slots || s.Usage.Len() != Slots {
		t.Fatal("scenario II must have 12 slots")
	}
	if s.Charging.Values[0] != 3.24 || s.Usage.Values[4] != 3.54 {
		t.Error("scenario II values do not match Table 4/5 digitization")
	}
	if math.Abs(s.Charging.Total()-s.Usage.Total()) > 2.0 {
		t.Errorf("supply %g J vs demand %g J", s.Charging.Total(), s.Usage.Total())
	}
}

func TestScenariosAndByName(t *testing.T) {
	all := Scenarios()
	if len(all) != 2 || all[0].Name != "I" || all[1].Name != "II" {
		t.Fatalf("Scenarios() = %v", all)
	}
	if _, err := ByName("I"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("II"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("III"); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestCapacityConstants(t *testing.T) {
	if DefaultCapacityMin >= DefaultCapacityMax {
		t.Error("Cmin must be below Cmax")
	}
	// Cmin is the paper's 0.098 W·τ in joules.
	if math.Abs(DefaultCapacityMin-0.098*4.8) > 1e-12 {
		t.Errorf("Cmin = %g", DefaultCapacityMin)
	}
}

func TestOrbitCharging(t *testing.T) {
	s, err := OrbitCharging(5400, 0.35, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period() != 5400 {
		t.Errorf("period = %g", s.Period())
	}
	// Eclipse: last 35% is dark.
	if got := s.At(5400 * 0.9); got != 0 {
		t.Errorf("eclipse power = %g", got)
	}
	// Sunlight peak near the middle of the lit arc.
	mid := 5400 * 0.65 / 2
	if got := s.At(mid); math.Abs(got-100) > 1 {
		t.Errorf("peak power = %g, want ~100", got)
	}
	// Non-negative everywhere.
	for i := 0; i < 100; i++ {
		if v := s.At(float64(i) * 54); v < 0 {
			t.Errorf("negative charging %g at t=%d", v, i*54)
		}
	}
}

func TestOrbitChargingValidation(t *testing.T) {
	if _, err := OrbitCharging(0, 0.3, 100); err == nil {
		t.Error("zero period must error")
	}
	if _, err := OrbitCharging(100, 1.0, 100); err == nil {
		t.Error("eclipse fraction 1 must error")
	}
	if _, err := OrbitCharging(100, -0.1, 100); err == nil {
		t.Error("negative eclipse must error")
	}
	if _, err := OrbitCharging(100, 0.3, 0); err == nil {
		t.Error("zero peak must error")
	}
}

func TestPoissonEventsDeterministic(t *testing.T) {
	rate := schedule.NewConst(1.0, Period)
	a, err := PoissonEvents(rate, 1, 2*Period, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonEvents(rate, 1, 2*Period, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different event %d", i)
		}
	}
	// Different seed differs (overwhelmingly likely).
	c, err := PoissonEvents(rate, 1, 2*Period, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i].Time != c[i].Time {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestPoissonEventsRate(t *testing.T) {
	// Mean count over a long window ≈ rate × duration.
	rate := schedule.NewConst(2.0, 100)
	events, err := PoissonEvents(rate, 1, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := 20000.0
	got := float64(len(events))
	if got < 0.9*want || got > 1.1*want {
		t.Errorf("Poisson count %g, want ≈ %g", got, want)
	}
	// Sorted and within range.
	for i, e := range events {
		if e.Time < 0 || e.Time >= 10000 {
			t.Fatalf("event %d out of range: %g", i, e.Time)
		}
		if i > 0 && e.Time < events[i-1].Time {
			t.Fatalf("events unsorted at %d", i)
		}
	}
}

func TestPoissonEventsThinning(t *testing.T) {
	// A rate that is zero half the time must produce no events there.
	rate, err := schedule.NewPiecewiseConstant([]float64{0, 50}, []float64{5, 0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	events, err := PoissonEvents(rate, 1, 1000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		phase := math.Mod(e.Time, 100)
		if phase >= 50 {
			t.Fatalf("event at %g lands in the zero-rate half", e.Time)
		}
	}
}

func TestPoissonEventsValidation(t *testing.T) {
	rate := schedule.NewConst(1, 10)
	if _, err := PoissonEvents(rate, -1, 10, 1); err == nil {
		t.Error("negative scale must error")
	}
	if _, err := PoissonEvents(rate, 1, 0, 1); err == nil {
		t.Error("zero duration must error")
	}
	neg := schedule.NewConst(-1, 10)
	if _, err := PoissonEvents(neg, 1, 10, 1); err == nil {
		t.Error("negative rate must error")
	}
	// Zero rate: no events, no error.
	zero := schedule.NewConst(0, 10)
	events, err := PoissonEvents(zero, 1, 10, 1)
	if err != nil || len(events) != 0 {
		t.Errorf("zero rate: %v, %v", events, err)
	}
}

func TestEventsPerSlot(t *testing.T) {
	events := []Event{{Time: 0.5}, {Time: 1.5}, {Time: 1.7}, {Time: 9.9}, {Time: 10.1}}
	counts := EventsPerSlot(events, 1, 10)
	if len(counts) != 10 {
		t.Fatalf("bins = %d", len(counts))
	}
	if counts[0] != 1 || counts[1] != 2 || counts[9] != 1 {
		t.Errorf("counts = %v", counts)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 4 { // the event at 10.1 is beyond the window
		t.Errorf("total binned = %d", sum)
	}
}

func TestEventsPerSlotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid binning must panic")
		}
	}()
	EventsPerSlot(nil, 0, 10)
}

func TestPerturbBounded(t *testing.T) {
	g := ScenarioI().Charging
	p := Perturb(g, 0.2, 99)
	for i := range g.Values {
		lo, hi := g.Values[i]*0.8, g.Values[i]*1.2
		if p.Values[i] < lo-1e-9 || p.Values[i] > hi+1e-9 {
			t.Errorf("slot %d: %g outside [%g, %g]", i, p.Values[i], lo, hi)
		}
	}
	// Deterministic.
	q := Perturb(g, 0.2, 99)
	if !p.Equal(q, 0) {
		t.Error("Perturb must be deterministic in seed")
	}
	// Original untouched.
	if g.Values[0] != 2.36 {
		t.Error("Perturb must not mutate its input")
	}
}

func TestPerturbPanicsOnNegativeJitter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative jitter must panic")
		}
	}()
	Perturb(ScenarioI().Charging, -0.1, 1)
}

func TestSortEvents(t *testing.T) {
	events := []Event{{Time: 3}, {Time: 1}, {Time: 2}}
	SortEvents(events)
	if events[0].Time != 1 || events[2].Time != 3 {
		t.Errorf("SortEvents = %v", events)
	}
}

// TestPoissonEventsBoundedMatchesUnbounded: the safety rails must not
// change the drawn trace.
func TestPoissonEventsBoundedMatchesUnbounded(t *testing.T) {
	s := ScenarioI()
	want, err := PoissonEvents(s.Usage, 0.1, 2*Period, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PoissonEventsBounded(context.Background(), s.Usage, 0.1, 2*Period, 42, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("bounded drew %d events, unbounded %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestPoissonEventsBoundedCap fails fast once the accepted trace
// exceeds the cap instead of growing without bound.
func TestPoissonEventsBoundedCap(t *testing.T) {
	rate := schedule.NewGrid(1, []float64{1000})
	_, err := PoissonEventsBounded(context.Background(), rate, 1, 100, 7, 10)
	if err == nil {
		t.Fatal("cap exceeded without error")
	}
	if !strings.Contains(err.Error(), "exceeds 10 events") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestPoissonEventsBoundedCancellation aborts generation when the
// context is already cancelled.
func TestPoissonEventsBoundedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rate := schedule.NewGrid(1, []float64{1000})
	if _, err := PoissonEventsBounded(ctx, rate, 1, 1e6, 7, 0); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
