package trace

import (
	"fmt"
	"math"

	"dpm/internal/schedule"
)

// Builder assembles custom scenarios fluently: pick a charging
// profile (measured grid, orbit model, or any schedule), a demand
// pattern, optional weighting, and battery limits, then Build. Errors
// accumulate and surface once, so call sites stay linear.
//
//	s, err := trace.NewBuilder("leo-sensor", 4.8, 12).
//	    OrbitCharging(0.5, 3.0).
//	    TwinPeakDemand(0.3, 2.0).
//	    Battery(17.3, 0.5, 0.5).
//	    Build()
type Builder struct {
	name     string
	tau      float64
	slots    int
	charging *schedule.Grid
	usage    *schedule.Grid
	weight   *schedule.Grid
	cmax     float64
	cmin     float64
	initial  float64
	err      error
}

// NewBuilder starts a scenario with the given slot width and count.
func NewBuilder(name string, tau float64, slots int) *Builder {
	b := &Builder{name: name, tau: tau, slots: slots}
	if tau <= 0 {
		b.fail(fmt.Errorf("trace: non-positive tau %g", tau))
	}
	if slots <= 0 {
		b.fail(fmt.Errorf("trace: non-positive slot count %d", slots))
	}
	return b
}

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// period returns the scenario length.
func (b *Builder) period() float64 { return b.tau * float64(b.slots) }

// ChargingGrid sets the charging schedule from explicit per-slot
// watts.
func (b *Builder) ChargingGrid(watts []float64) *Builder {
	if b.err != nil {
		return b
	}
	if len(watts) != b.slots {
		return b.fail(fmt.Errorf("trace: %d charging slots, want %d", len(watts), b.slots))
	}
	b.charging = schedule.NewGrid(b.tau, watts)
	return b
}

// OrbitCharging sets the charging schedule from the parametric
// orbit model: a half-sine sunlit arc peaking at peakWatts with the
// final eclipseFraction dark.
func (b *Builder) OrbitCharging(eclipseFraction, peakWatts float64) *Builder {
	if b.err != nil {
		return b
	}
	s, err := OrbitCharging(b.period(), eclipseFraction, peakWatts)
	if err != nil {
		return b.fail(err)
	}
	b.charging = schedule.FromSchedule(s, b.slots)
	return b
}

// ChargingSchedule discretizes an arbitrary schedule (period must
// match the builder's).
func (b *Builder) ChargingSchedule(s schedule.Schedule) *Builder {
	if b.err != nil {
		return b
	}
	if math.Abs(s.Period()-b.period()) > 1e-9 {
		return b.fail(fmt.Errorf("trace: schedule period %g, want %g", s.Period(), b.period()))
	}
	b.charging = schedule.FromSchedule(s, b.slots)
	return b
}

// ConstantDemand sets a flat usage shape.
func (b *Builder) ConstantDemand(watts float64) *Builder {
	if b.err != nil {
		return b
	}
	if watts < 0 {
		return b.fail(fmt.Errorf("trace: negative demand %g", watts))
	}
	b.usage = schedule.NewUniformGrid(b.tau, b.slots, watts)
	return b
}

// TwinPeakDemand sets the paper's scenario I shape: demand dips
// mid-half and peaks at the half boundaries, between base and peak
// watts.
func (b *Builder) TwinPeakDemand(base, peak float64) *Builder {
	if b.err != nil {
		return b
	}
	if base < 0 || peak < base {
		return b.fail(fmt.Errorf("trace: invalid twin-peak range [%g, %g]", base, peak))
	}
	values := make([]float64, b.slots)
	for i := range values {
		// |cos| over each half-period: peaks at slot 0 and slots/2.
		phase := 2 * math.Pi * float64(i) / float64(b.slots)
		values[i] = base + (peak-base)*math.Abs(math.Cos(phase))
	}
	b.usage = schedule.NewGrid(b.tau, values)
	return b
}

// BurstDemand sets demand that is idle except for a burst of the
// given width starting at startSlot.
func (b *Builder) BurstDemand(idle, burst float64, startSlot, widthSlots int) *Builder {
	if b.err != nil {
		return b
	}
	if idle < 0 || burst < idle {
		return b.fail(fmt.Errorf("trace: invalid burst range [%g, %g]", idle, burst))
	}
	if startSlot < 0 || widthSlots <= 0 || startSlot+widthSlots > b.slots {
		return b.fail(fmt.Errorf("trace: burst [%d, %d) outside [0, %d)", startSlot, startSlot+widthSlots, b.slots))
	}
	values := make([]float64, b.slots)
	for i := range values {
		values[i] = idle
	}
	for i := startSlot; i < startSlot+widthSlots; i++ {
		values[i] = burst
	}
	b.usage = schedule.NewGrid(b.tau, values)
	return b
}

// UsageGrid sets the usage shape from explicit per-slot watts.
func (b *Builder) UsageGrid(watts []float64) *Builder {
	if b.err != nil {
		return b
	}
	if len(watts) != b.slots {
		return b.fail(fmt.Errorf("trace: %d usage slots, want %d", len(watts), b.slots))
	}
	b.usage = schedule.NewGrid(b.tau, watts)
	return b
}

// Weight sets the per-slot weight function w(t).
func (b *Builder) Weight(weights []float64) *Builder {
	if b.err != nil {
		return b
	}
	if len(weights) != b.slots {
		return b.fail(fmt.Errorf("trace: %d weight slots, want %d", len(weights), b.slots))
	}
	b.weight = schedule.NewGrid(b.tau, weights)
	return b
}

// Battery sets the capacity band and initial charge in joules.
func (b *Builder) Battery(cmax, cmin, initial float64) *Builder {
	if b.err != nil {
		return b
	}
	if cmax <= cmin || cmin < 0 {
		return b.fail(fmt.Errorf("trace: invalid battery band [%g, %g]", cmin, cmax))
	}
	b.cmax, b.cmin, b.initial = cmax, cmin, initial
	return b
}

// Build validates and returns the scenario. Battery defaults to the
// paper's band when unset; charging and usage are required.
func (b *Builder) Build() (Scenario, error) {
	if b.err != nil {
		return Scenario{}, b.err
	}
	if b.charging == nil {
		return Scenario{}, fmt.Errorf("trace: scenario %q has no charging schedule", b.name)
	}
	if b.usage == nil {
		return Scenario{}, fmt.Errorf("trace: scenario %q has no demand shape", b.name)
	}
	cmax, cmin, initial := b.cmax, b.cmin, b.initial
	if cmax == 0 && cmin == 0 {
		cmax, cmin, initial = DefaultCapacityMax, DefaultCapacityMin, DefaultCapacityMin
	}
	return Scenario{
		Name:          b.name,
		Charging:      b.charging,
		Usage:         b.usage,
		Weight:        b.weight,
		CapacityMax:   cmax,
		CapacityMin:   cmin,
		InitialCharge: initial,
	}, nil
}
