package scenario

import (
	"math"
	"strings"
	"testing"

	"dpm/internal/schedule"
	"dpm/internal/trace"
)

func TestValidateAcceptsPaperScenarios(t *testing.T) {
	for _, s := range trace.Scenarios() {
		if err := Validate(s); err != nil {
			t.Errorf("scenario %s rejected: %v", s.Name, err)
		}
	}
}

func TestValidateGridRejections(t *testing.T) {
	cases := []struct {
		name string
		grid *schedule.Grid
		want string
	}{
		{"nil", nil, "required"},
		{"nan value", &schedule.Grid{Step: 4.8, Values: []float64{math.NaN()}}, "outside the supported power range"},
		{"inf value", &schedule.Grid{Step: 4.8, Values: []float64{math.Inf(1)}}, "outside the supported power range"},
		{"overflow magnitude", &schedule.Grid{Step: 4.8, Values: []float64{1e308}}, "outside the supported power range"},
		{"negative", &schedule.Grid{Step: 4.8, Values: []float64{-1}}, "is negative"},
		{"zero step", &schedule.Grid{Step: 0, Values: []float64{1}}, "outside (0,"},
		{"nan step", &schedule.Grid{Step: math.NaN(), Values: []float64{1}}, "outside (0,"},
		{"huge step", &schedule.Grid{Step: 1e308, Values: []float64{1}}, "outside (0,"},
		{"over-long", &schedule.Grid{Step: 4.8, Values: make([]float64, MaxSlots+1)}, "the limit is"},
	}
	for _, c := range cases {
		err := ValidateGrid("charging", c.grid, true)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		var ve *Error
		if !errorsAs(err, &ve) {
			t.Errorf("%s: error is %T, not *scenario.Error", c.name, err)
		}
	}
}

// errorsAs avoids importing errors just for the assertion helper.
func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestValidateInputsBatteryBounds(t *testing.T) {
	g := schedule.NewGrid(4.8, []float64{1, 1})
	cases := []struct {
		name             string
		cmax, cmin, init float64
		want             string
	}{
		{"1e308 capacity", 1e308, 1, 1, "outside [0,"},
		{"nan capacity", math.NaN(), 1, 1, "outside [0,"},
		{"negative charge", 10, 1, -1, "outside [0,"},
		{"inverted band", 1, 2, 1, "must exceed"},
	}
	for _, c := range cases {
		err := ValidateInputs(g, g, nil, c.cmax, c.cmin, c.init)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want mention of %q", c.name, err, c.want)
		}
	}
	if err := ValidateInputs(g, g, nil, 10, 1, 1); err != nil {
		t.Errorf("valid inputs rejected: %v", err)
	}
}

func TestHardwareDefaultsAndValidation(t *testing.T) {
	var nilHW *Hardware
	hw := nilHW.WithDefaults()
	if hw.VoltageV != 3.3 || hw.MaxProcessors != 7 || len(hw.FrequenciesHz) != 3 {
		t.Fatalf("nil hardware did not default to PAMA: %+v", hw)
	}
	if _, err := hw.ParamsConfig(); err != nil {
		t.Fatalf("default hardware rejected: %v", err)
	}
	bad := hw
	bad.VoltageV = math.Inf(1)
	if _, err := bad.ParamsConfig(); err == nil {
		t.Fatal("infinite voltage accepted")
	}
	bad = hw
	bad.FrequenciesHz = make([]float64, MaxFrequencies+1)
	for i := range bad.FrequenciesHz {
		bad.FrequenciesHz[i] = 20e6
	}
	if _, err := bad.ParamsConfig(); err == nil {
		t.Fatal("over-long frequency list accepted")
	}
	bad = hw
	bad.WorkloadSerialS = 100 // serial part exceeds total
	if _, err := bad.ParamsConfig(); err == nil {
		t.Fatal("inconsistent workload accepted")
	}
}
