// Package scenario is the canonical, validated scenario specification
// shared by every entry point into the planning pipeline — the HTTP
// service (internal/server), the library facade (package dpm), the
// experiment harness (internal/experiments) and the command-line
// tools. A scenario (trace.Scenario) bundles the expected charging and
// event-rate schedules, an optional weight function and the battery
// band; a Hardware block describes the board Algorithm 2 optimizes
// for.
//
// The package owns the input bounds the dpmd fuzzing campaign proved
// necessary (FuzzDecodePlanRequest's 1e308 find): every magnitude is
// capped far beyond any real deployment but small enough that the
// planning arithmetic cannot overflow float64 into the NaN/Inf range
// JSON cannot carry. Validation happens here once, identically, for
// every caller — a scenario rejected over HTTP is rejected by the
// library and the CLI with the same message.
package scenario

import (
	"fmt"
	"math"

	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// Shared request bounds. Transport layers may additionally cap raw
// payload sizes; these bound the *work* one scenario may demand.
const (
	// MaxSlots caps schedule and plan lengths.
	MaxSlots = 4096
	// MaxPeriods caps analytic simulation horizons.
	MaxPeriods = 64
	// MaxMachinePeriods caps the discrete-event board simulation,
	// which costs orders of magnitude more per period.
	MaxMachinePeriods = 8
	// MaxFrequencies caps the Algorithm 2 enumeration.
	MaxFrequencies = 64
	// MaxRecords caps the per-slot rows a simulate response carries.
	MaxRecords = 1024
	// MaxPowerW, MaxTauS and MaxEnergyJ bound the physical magnitudes
	// a scenario may carry. They are far beyond any real deployment
	// (a gigawatt, a ~11-day slot, a petajoule) but small enough that
	// the planning arithmetic cannot overflow float64 into the
	// NaN/Inf range JSON cannot carry.
	MaxPowerW  = 1e9
	MaxTauS    = 1e6
	MaxEnergyJ = 1e15
	// MaxMachineEvents caps the event trace one machine-mode
	// simulation may generate. The per-magnitude bounds above still
	// admit a huge *product* (rate × horizon), so the expected event
	// count must be checked against this cap before any trace is
	// drawn.
	MaxMachineEvents = 1 << 18
	// MaxBatch caps the scenarios one batch planning request may
	// carry.
	MaxBatch = 256
	// MaxIterationsLimit caps the Algorithm 1 driver bound a caller
	// may request.
	MaxIterationsLimit = 1024
)

// Error is an input-validation failure. Transport layers map it onto
// their client-error channel (the HTTP server answers 400); library
// callers get it as a plain error.
type Error struct{ msg string }

// Error implements the error interface.
func (e *Error) Error() string { return e.msg }

// Errorf builds a validation error.
func Errorf(format string, args ...any) *Error {
	return &Error{msg: fmt.Sprintf(format, args...)}
}

// IsFinite reports whether v is neither NaN nor ±Inf.
func IsFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ValidateGrid rejects grids the planner cannot safely consume:
// missing, over-long, non-finite or out of the supported magnitude
// range. (JSON decoders already reject literal NaN/Inf tokens and
// overflowing numbers; these checks are the backstop for programmatic
// callers.)
func ValidateGrid(name string, g *schedule.Grid, requireNonNegative bool) error {
	if g == nil {
		return Errorf("%s schedule is required", name)
	}
	if g.Len() > MaxSlots {
		return Errorf("%s schedule has %d slots; the limit is %d", name, g.Len(), MaxSlots)
	}
	if !IsFinite(g.Step) || g.Step <= 0 || g.Step > MaxTauS {
		return Errorf("%s schedule step %g outside (0, %g] seconds", name, g.Step, float64(MaxTauS))
	}
	for i, v := range g.Values {
		if !IsFinite(v) || v > MaxPowerW {
			return Errorf("%s[%d] = %g outside the supported power range", name, i, v)
		}
		if requireNonNegative && v < 0 {
			return Errorf("%s[%d] = %g is negative", name, i, v)
		}
	}
	return nil
}

// ValidateEnergy bounds one energy magnitude into [0, MaxEnergyJ]
// joules.
func ValidateEnergy(name string, v float64) error {
	if !IsFinite(v) || v < 0 || v > MaxEnergyJ {
		return Errorf("%s %g outside [0, %g] joules", name, v, float64(MaxEnergyJ))
	}
	return nil
}

// ValidateInputs applies the canonical bounds to raw planning inputs:
// the grids every pipeline stage consumes plus the battery band.
// weight may be nil (uniform). This is the library-level twin of
// Validate for callers assembling configurations field by field
// (dpm.ManagerConfig, alloc.Inputs).
func ValidateInputs(charging, usage, weight *schedule.Grid, capacityMax, capacityMin, initialCharge float64) error {
	if err := ValidateGrid("charging", charging, true); err != nil {
		return err
	}
	if err := ValidateGrid("usage", usage, true); err != nil {
		return err
	}
	if weight != nil {
		if err := ValidateGrid("weight", weight, true); err != nil {
			return err
		}
	}
	// Unrolled (no map literal): this runs on every plan request, and
	// a fixed check order also makes the first-failure message
	// deterministic.
	if err := ValidateEnergy("capacityMax", capacityMax); err != nil {
		return err
	}
	if err := ValidateEnergy("capacityMin", capacityMin); err != nil {
		return err
	}
	if err := ValidateEnergy("initialCharge", initialCharge); err != nil {
		return err
	}
	if capacityMax <= capacityMin {
		return Errorf("capacityMax %g must exceed capacityMin %g", capacityMax, capacityMin)
	}
	return nil
}

// Validate applies the canonical bounds on top of the trace-level
// geometry checks a scenario's UnmarshalJSON already ran. Every entry
// point — HTTP, library, CLI — runs exactly this check.
func Validate(s trace.Scenario) error {
	return ValidateInputs(s.Charging, s.Usage, s.Weight, s.CapacityMax, s.CapacityMin, s.InitialCharge)
}

// Hardware describes the board Algorithm 2 optimizes for. The zero
// value (or a nil pointer) means the paper's PAMA configuration:
// eight M32R/D chips of which seven are workers, voltage pinned at
// 3.3 V, clocks of 20/40/80 MHz, the FORTE FFT workload, and no
// switching overheads.
type Hardware struct {
	// VoltageV is the pinned supply voltage in volts.
	VoltageV float64 `json:"voltageV,omitempty"`
	// MaxFrequencyHz is the VF-curve ceiling in hertz.
	MaxFrequencyHz float64 `json:"maxFrequencyHz,omitempty"`
	// FrequenciesHz are the selectable clocks in hertz.
	FrequenciesHz []float64 `json:"frequenciesHz,omitempty"`
	// MaxProcessors and MinProcessors bound the active-count range.
	MaxProcessors int `json:"maxProcessors,omitempty"`
	MinProcessors int `json:"minProcessors,omitempty"`
	// OverheadProcJ and OverheadFreqJ are the switching energies OHn
	// and OHf in joules.
	OverheadProcJ float64 `json:"overheadProcJ,omitempty"`
	OverheadFreqJ float64 `json:"overheadFreqJ,omitempty"`
	// PerfValue converts performance×τ into joules for the
	// Algorithm 2 switching test.
	PerfValue float64 `json:"perfValue,omitempty"`
	// IdleSleep parks inactive processors in sleep instead of
	// stand-by.
	IdleSleep bool `json:"idleSleep,omitempty"`
	// WorkloadTotalS and WorkloadSerialS are the Amdahl profile:
	// single-processor time and its serial part, in seconds.
	WorkloadTotalS  float64 `json:"workloadTotalS,omitempty"`
	WorkloadSerialS float64 `json:"workloadSerialS,omitempty"`
}

// WithDefaults returns a copy with every zero field set to the paper
// value, so a canonical cache key treats an omitted hardware block
// and an explicitly spelled-out PAMA block as the same scenario.
func (h *Hardware) WithDefaults() Hardware {
	out := Hardware{}
	if h != nil {
		out = *h
	}
	if out.VoltageV == 0 {
		out.VoltageV = 3.3
	}
	if out.MaxFrequencyHz == 0 {
		out.MaxFrequencyHz = 80e6
	}
	if len(out.FrequenciesHz) == 0 {
		out.FrequenciesHz = []float64{20e6, 40e6, 80e6}
	}
	if out.MaxProcessors == 0 {
		out.MaxProcessors = 7
	}
	if out.WorkloadTotalS == 0 {
		out.WorkloadTotalS = 4.8
	}
	if out.WorkloadSerialS == 0 {
		out.WorkloadSerialS = 0.48
	}
	return out
}

// ParamsConfig validates the hardware block and assembles the
// Algorithm 2 configuration. All errors are validation errors.
func (h Hardware) ParamsConfig() (params.Config, error) {
	if !IsFinite(h.VoltageV) || h.VoltageV <= 0 {
		return params.Config{}, Errorf("hardware: voltage %g must be positive", h.VoltageV)
	}
	if !IsFinite(h.MaxFrequencyHz) || h.MaxFrequencyHz <= 0 {
		return params.Config{}, Errorf("hardware: max frequency %g must be positive", h.MaxFrequencyHz)
	}
	if len(h.FrequenciesHz) > MaxFrequencies {
		return params.Config{}, Errorf("hardware: %d frequencies exceed the limit of %d", len(h.FrequenciesHz), MaxFrequencies)
	}
	for _, f := range h.FrequenciesHz {
		if !IsFinite(f) || f <= 0 {
			return params.Config{}, Errorf("hardware: non-positive frequency %g", f)
		}
	}
	for _, c := range [...]struct {
		name string
		v    float64
	}{
		{"overheadProcJ", h.OverheadProcJ},
		{"overheadFreqJ", h.OverheadFreqJ},
		{"perfValue", h.PerfValue},
	} {
		if !IsFinite(c.v) || c.v < 0 {
			return params.Config{}, Errorf("hardware: %s %g must be non-negative", c.name, c.v)
		}
	}
	w, err := perf.NewWorkload(h.WorkloadTotalS, h.WorkloadSerialS)
	if err != nil {
		return params.Config{}, Errorf("%v", err)
	}
	cfg := params.Config{
		System:        power.PAMA(),
		Curve:         power.NewFixedVoltage(h.VoltageV, h.MaxFrequencyHz),
		Workload:      w,
		Frequencies:   h.FrequenciesHz,
		MaxProcessors: h.MaxProcessors,
		MinProcessors: h.MinProcessors,
		OverheadProc:  h.OverheadProcJ,
		OverheadFreq:  h.OverheadFreqJ,
		PerfValue:     h.PerfValue,
		IdleSleep:     h.IdleSleep,
	}
	// Building the table re-validates everything Algorithm 2 reads;
	// run it here so every configuration error surfaces at validation
	// time rather than deep in a run. The memoized SharedTable makes
	// this a cache hit for every request after the first with a given
	// hardware block — previously the full enumerate + Pareto-prune
	// ran on every validation.
	if _, err := params.SharedTable(cfg); err != nil {
		return params.Config{}, Errorf("%v", err)
	}
	return cfg, nil
}
