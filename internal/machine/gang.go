package machine

import (
	"dpm/internal/power"
	"dpm/internal/sim"
)

// Gang-scheduled execution: the paper's application is ONE parallel
// program (Figure 2's serial–parallel–serial task graph), not a bag
// of independent jobs. In gang mode the board runs a single capture
// at a time across *all* active workers: the serial stages execute on
// one processor at the common clock f, the parallel middle at the
// aggregate rate n·f. This realizes Eq. 2/3's Amdahl model inside
// the discrete-event simulation — halving the clock doubles the
// serial time, adding workers shrinks only the parallel part.
//
// The board must keep gang progress consistent across mode and
// frequency changes: every worker-state mutation first banks progress
// at the *old* configuration (gangAdvance), applies the change, and
// re-projects the completion time (gangReschedule).

// gangState tracks the in-flight capture.
type gangState struct {
	task *Task
	// serialRemaining and parallelRemaining are cycles left in each
	// phase; the serial prologue+epilogue are merged since only
	// their sum matters to completion time.
	serialRemaining   float64
	parallelRemaining float64
	lastT             float64
	completion        sim.Handle
	queue             []*Task
}

// gangSplit divides a task's cycles into serial and parallel parts
// using the configured workload's serial fraction.
func (b *Board) gangSplit(cycles float64) (serial, parallel float64) {
	frac := b.cfg.Manager.Params.Workload.SerialFraction()
	return cycles * frac, cycles * (1 - frac)
}

// gangRates returns the active workers' aggregate and peak effective
// cycle-retirement rates (freq·speed): the parallel phase consumes at
// the sum, the serial phase on the fastest worker. It also returns
// the active count for busy-time attribution.
func (b *Board) gangRates() (n int, sumRate, maxRate float64) {
	for _, p := range b.workers() {
		if p.mode == power.ModeActive && p.freq > 0 {
			n++
			r := p.effectiveRate()
			sumRate += r
			if r > maxRate {
				maxRate = r
			}
		}
	}
	return n, sumRate, maxRate
}

// gangAdvance banks progress up to now at the current configuration.
func (b *Board) gangAdvance(now float64) {
	g := b.gang
	if g == nil || g.task == nil {
		return
	}
	elapsed := now - g.lastT
	g.lastT = now
	if elapsed <= 0 {
		return
	}
	n, sumRate, maxRate := b.gangRates()
	if n == 0 || sumRate == 0 {
		return
	}
	// Serial phase first, on the fastest worker.
	if g.serialRemaining > 0 {
		consumable := elapsed * maxRate
		if consumable <= g.serialRemaining {
			g.serialRemaining -= consumable
			b.gangChargeBusy(elapsed, 1)
			return
		}
		serialTime := g.serialRemaining / maxRate
		b.gangChargeBusy(serialTime, 1)
		elapsed -= serialTime
		g.serialRemaining = 0
	}
	// Parallel phase at the aggregate rate.
	if g.parallelRemaining > 0 && elapsed > 0 {
		consumed := elapsed * sumRate
		if consumed > g.parallelRemaining {
			consumed = g.parallelRemaining
			elapsed = consumed / sumRate
		}
		g.parallelRemaining -= consumed
		b.gangChargeBusy(elapsed, n)
	}
}

// gangChargeBusy attributes busy time to the first n active workers.
func (b *Board) gangChargeBusy(seconds float64, n int) {
	charged := 0
	for _, p := range b.workers() {
		if charged == n {
			return
		}
		if p.mode == power.ModeActive && p.freq > 0 {
			p.busySeconds += seconds
			charged++
		}
	}
}

// gangReschedule projects the completion time under the current
// configuration and (re)arms the completion event.
func (b *Board) gangReschedule() {
	g := b.gang
	if g == nil {
		return
	}
	g.completion.Cancel()
	if g.task == nil {
		// Pull the next queued capture.
		if len(g.queue) == 0 {
			return
		}
		g.task = g.queue[0]
		g.queue = g.queue[1:]
		serial, parallel := b.gangSplit(g.task.Cycles)
		g.serialRemaining, g.parallelRemaining = serial, parallel
		g.lastT = b.engine.Now()
	}
	n, sumRate, maxRate := b.gangRates()
	if n == 0 || sumRate == 0 {
		return // stalled until workers wake
	}
	eta := g.serialRemaining/maxRate + g.parallelRemaining/sumRate
	g.completion = b.engine.ScheduleAfter(eta, b.gangComplete)
}

// gangComplete finishes the current capture.
func (b *Board) gangComplete() {
	g := b.gang
	now := b.engine.Now()
	b.gangAdvance(now)
	task := g.task
	if task == nil {
		return
	}
	if b.flt != nil && task.Corrupted {
		// Result check failed on the gang's capture: re-execute the
		// whole serial–parallel program.
		b.gangFaultRetry(task, now)
		return
	}
	g.task = nil
	b.result.TasksCompleted++
	b.totalLatency += now - task.Arrived
	// Attribute the completion to the first active worker for the
	// per-worker counters.
	for _, p := range b.workers() {
		if p.mode == power.ModeActive && p.freq > 0 {
			p.tasksDone++
			break
		}
	}
	if b.cfg.ExecuteDSP {
		b.runDSP(task)
	}
	b.gangReschedule()
}

// gangAssign enqueues a capture in gang mode.
func (b *Board) gangAssign(task *Task) {
	b.gang.queue = append(b.gang.queue, task)
	if b.gang.task == nil {
		b.gangReschedule()
	}
}

// gangBacklog counts pending captures including the one in flight.
func (b *Board) gangBacklog() int {
	n := len(b.gang.queue)
	if b.gang.task != nil {
		n++
	}
	return n
}
