package machine

import (
	"math"
	"testing"

	"dpm/internal/dpm"
	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/schedule"
	"dpm/internal/signal"
	"dpm/internal/trace"
)

func paperManagerConfig(t *testing.T, s trace.Scenario) dpm.Config {
	t.Helper()
	w, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		t.Fatal(err)
	}
	return dpm.Config{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
		Params: params.Config{
			System:        power.PAMA(),
			Curve:         power.NewFixedVoltage(3.3, 80e6),
			Workload:      w,
			Frequencies:   []float64{20e6, 40e6, 80e6},
			MaxProcessors: 7,
			MinProcessors: 0,
		},
	}
}

func paperEvents(t *testing.T, s trace.Scenario, periods int, seed int64) []trace.Event {
	t.Helper()
	// Event rate proportional to the usage schedule: ~1 event per
	// 2 W·slot.
	events, err := trace.PoissonEvents(s.Usage, 0.1, float64(periods)*trace.Period, seed)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func boardConfig(t *testing.T, s trace.Scenario, periods int) Config {
	t.Helper()
	return Config{
		Manager:    paperManagerConfig(t, s),
		Events:     paperEvents(t, s, periods, 17),
		Periods:    periods,
		ExecuteDSP: true,
	}
}

func TestNewValidation(t *testing.T) {
	good := boardConfig(t, trace.ScenarioI(), 1)
	bad := good
	bad.Periods = 0
	if _, err := New(bad); err == nil {
		t.Error("zero periods must error")
	}
	bad = good
	bad.EventMix = 2
	if _, err := New(bad); err == nil {
		t.Error("event mix > 1 must error")
	}
	bad = good
	bad.RingHopSeconds = -1
	if _, err := New(bad); err == nil {
		t.Error("negative hop latency must error")
	}
	bad = good
	bad.FreqChangeCycles = -1
	if _, err := New(bad); err == nil {
		t.Error("negative wake cycles must error")
	}
	bad = good
	bad.BufferSamples = 1000
	if _, err := New(bad); err == nil {
		t.Error("non-power-of-two buffer must error")
	}
	bad = good
	bad.ActualCharging = schedule.NewGrid(4.8, []float64{1})
	if _, err := New(bad); err == nil {
		t.Error("mismatched charging grid must error")
	}
	bad = good
	bad.Manager.Charging = nil
	if _, err := New(bad); err == nil {
		t.Error("broken manager config must error")
	}
}

func TestRunScenarioI(t *testing.T) {
	b, err := New(boardConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("records = %d, want 24", len(res.Records))
	}
	if res.EventsArrived == 0 {
		t.Fatal("no events arrived; trace generation broken")
	}
	if res.TasksCompleted == 0 {
		t.Fatal("no tasks completed; the board never computed")
	}
	if res.EnergyUsed <= 0 {
		t.Error("no energy measured")
	}
	if res.BusySeconds <= 0 {
		t.Error("no busy time accumulated")
	}
	if res.MeanLatencySeconds <= 0 {
		t.Error("latency accounting broken")
	}
}

func TestBatteryWithinBounds(t *testing.T) {
	for _, s := range trace.Scenarios() {
		b, err := New(boardConfig(t, s, 2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res.Records {
			if r.Charge < s.CapacityMin-1e-9 || r.Charge > s.CapacityMax+1e-9 {
				t.Errorf("scenario %s slot %d: charge %g outside bounds", s.Name, i, r.Charge)
			}
		}
	}
}

func TestMeasuredPowerTracksPlan(t *testing.T) {
	b, err := New(boardConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The measured draw should stay at or below the plan plus a small
	// tolerance (mode quantization) in the bulk of slots.
	over := 0
	for _, r := range res.Records {
		if r.UsedPower > r.Planned+0.15 {
			over++
		}
	}
	if over > len(res.Records)/3 {
		t.Errorf("%d/%d slots overdrew the plan", over, len(res.Records))
	}
}

func TestDetectionsHappen(t *testing.T) {
	b, err := New(boardConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Detector.Processed == 0 {
		t.Fatal("DSP pipeline never ran")
	}
	if res.Detector.Detections == 0 {
		t.Error("no transients detected despite a 60% transient mix")
	}
}

func TestExecuteDSPOffSkipsDetector(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.ExecuteDSP = false
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Detector.Processed != 0 {
		t.Error("detector ran with ExecuteDSP off")
	}
	if res.TasksCompleted == 0 {
		t.Error("tasks must still complete without DSP execution")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() *Result {
		b, err := New(boardConfig(t, trace.ScenarioII(), 2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TasksCompleted != b.TasksCompleted || a.EnergyUsed != b.EnergyUsed ||
		a.Battery.Wasted != b.Battery.Wasted {
		t.Error("same configuration must reproduce bit-identically")
	}
}

func TestBacklogDrainsWhenWorkersWake(t *testing.T) {
	// All events in the first slot with a tiny power plan force
	// backlog; later generous slots must drain it.
	s := trace.ScenarioI()
	cfg := boardConfig(t, s, 2)
	var events []trace.Event
	for i := 0; i < 10; i++ {
		events = append(events, trace.Event{Time: 0.1 * float64(i), Seed: int64(i)})
	}
	cfg.Events = events
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted < 8 {
		t.Errorf("only %d/10 burst tasks completed over two periods", res.TasksCompleted)
	}
}

func TestEventKindMix(t *testing.T) {
	transients := 0
	const total = 10000
	for i := 0; i < total; i++ {
		if eventKind(int64(i)*2654435761, 0.6) == signal.Transient {
			transients++
		}
	}
	frac := float64(transients) / total
	if math.Abs(frac-0.6) > 0.05 {
		t.Errorf("transient fraction = %g, want ≈ 0.6", frac)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter()
	m.SetPower(0, 2)
	m.SetPower(5, 4) // 10 J so far
	m.Accumulate(10) // +20 J
	if m.Energy() != 30 {
		t.Errorf("Energy = %g, want 30", m.Energy())
	}
	if m.Power() != 4 {
		t.Errorf("Power = %g", m.Power())
	}
}

func TestMeterPanics(t *testing.T) {
	m := NewMeter()
	m.Accumulate(5)
	for name, fn := range map[string]func(){
		"backward": func() { m.Accumulate(1) },
		"negative": func() { m.SetPower(6, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSortRecords(t *testing.T) {
	recs := []SlotRecord{{Time: 3}, {Time: 1}, {Time: 2}}
	SortRecords(recs)
	if recs[0].Time != 1 || recs[2].Time != 3 {
		t.Errorf("SortRecords = %v", recs)
	}
}

func TestProcessorAccessors(t *testing.T) {
	p := &Processor{ID: 1, model: power.M32RD(), mode: power.ModeActive, freq: 20e6, volt: 3.3}
	if p.Mode() != power.ModeActive || p.Frequency() != 20e6 {
		t.Error("accessors broken")
	}
	if p.QueueLen() != 0 || p.TasksDone() != 0 || p.BusySeconds() != 0 {
		t.Error("fresh processor stats not zero")
	}
	p.current = &Task{Cycles: 100}
	if p.QueueLen() != 1 {
		t.Error("QueueLen must count the in-flight task")
	}
}

func TestWorkerStatsPopulated(t *testing.T) {
	b, err := New(boardConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workers) != 7 {
		t.Fatalf("worker stats = %d, want 7", len(res.Workers))
	}
	totalTasks, totalBusy := 0, 0.0
	for _, w := range res.Workers {
		if w.Utilization < 0 || w.Utilization > 1 {
			t.Errorf("worker %d utilization %g", w.ID, w.Utilization)
		}
		totalTasks += w.TasksDone
		totalBusy += w.BusySeconds
	}
	if totalTasks != res.TasksCompleted {
		t.Errorf("per-worker tasks %d != total %d", totalTasks, res.TasksCompleted)
	}
	if math.Abs(totalBusy-res.BusySeconds) > 1e-9 {
		t.Errorf("per-worker busy %g != total %g", totalBusy, res.BusySeconds)
	}
}

func TestBacklogLimitDropsEvents(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	var events []trace.Event
	for i := 0; i < 50; i++ {
		events = append(events, trace.Event{Time: 0.01 * float64(i), Seed: int64(i)})
	}
	cfg.Events = events
	cfg.BacklogLimit = 5
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsDropped == 0 {
		t.Error("burst beyond the backlog limit must drop events")
	}
	if res.EventsDropped+res.TasksCompleted+res.Records[len(res.Records)-1].Backlog < 50 {
		t.Errorf("event accounting leaks: dropped %d, done %d, backlog %d",
			res.EventsDropped, res.TasksCompleted, res.Records[len(res.Records)-1].Backlog)
	}
}

func TestConfusionRecorded(t *testing.T) {
	b, err := New(boardConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != res.Detector.Processed {
		t.Errorf("confusion total %d != processed %d", res.Confusion.Total(), res.Detector.Processed)
	}
	// The default detector on default signals is highly accurate.
	if res.Confusion.Accuracy() < 0.8 {
		t.Errorf("accuracy %.2f suspiciously low: %v", res.Confusion.Accuracy(), res.Confusion)
	}
}

func TestIdleSleepRaisesIdlePower(t *testing.T) {
	run := func(sleep bool) *Result {
		cfg := boardConfig(t, trace.ScenarioI(), 1)
		cfg.ExecuteDSP = false
		cfg.Events = nil // nothing to do: idle draw dominates
		cfg.IdleSleep = sleep
		cfg.Manager.Params.IdleSleep = sleep
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	standby := run(false)
	sleeping := run(true)
	if sleeping.EnergyUsed <= standby.EnergyUsed {
		t.Errorf("sleep idle (%.2f J) must draw more than stand-by idle (%.2f J)",
			sleeping.EnergyUsed, standby.EnergyUsed)
	}
}

func TestMemoryReloadPenaltyCharged(t *testing.T) {
	// A single long task interrupted by a long stand-by must take
	// longer when the reload penalty applies than when disabled.
	latency := func(reload int) float64 {
		s := trace.ScenarioI()
		cfg := boardConfig(t, s, 2)
		cfg.ExecuteDSP = false
		cfg.MemoryReloadCycles = reload
		// One event arriving just before the deep-eclipse slots
		// (38.4-48 s) where the plan drops to the idle floor, so the
		// worker is parked mid-task and resumes much later.
		cfg.Events = []trace.Event{{Time: 38.0, Seed: 1}}
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksCompleted != 1 {
			t.Fatalf("completed %d, want 1", res.TasksCompleted)
		}
		return res.MeanLatencySeconds
	}
	withPenalty := latency(20e6) // a deliberately huge penalty: 1 s at 20 MHz
	withoutPenalty := latency(-1)
	if withPenalty <= withoutPenalty {
		t.Errorf("reload penalty did not slow the interrupted task: %g vs %g",
			withPenalty, withoutPenalty)
	}
}

func TestNegativeRetentionRejected(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.RetentionSeconds = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative retention must error")
	}
}

func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	b, err := New(boardConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy.Total()-res.EnergyUsed) > 1e-9 {
		t.Errorf("breakdown %g J != total %g J", res.Energy.Total(), res.EnergyUsed)
	}
	if res.Energy.ActiveJ <= 0 {
		t.Error("no active energy recorded")
	}
	if res.Energy.StandbyJ <= 0 {
		t.Error("no standby energy recorded")
	}
	if res.Energy.SleepJ != 0 {
		t.Error("sleep energy recorded without IdleSleep")
	}
}

func TestEnergyBreakdownSleepMode(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.IdleSleep = true
	cfg.Manager.Params.IdleSleep = true
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.SleepJ <= 0 {
		t.Error("sleep mode energy not recorded")
	}
}

func TestManagerAccessorAndHopOverride(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.RingHopSeconds = 1e-6 // override: flat per-hop latency
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manager() == nil {
		t.Fatal("Manager accessor returned nil")
	}
	if got := b.commandLatency(3); got != 3e-6 {
		t.Errorf("override latency = %g, want 3e-6", got)
	}
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
}
