package machine

import (
	"math"
	"sort"

	"dpm/internal/dpm"
	"dpm/internal/faults"
	"dpm/internal/metrics"
	"dpm/internal/power"
)

// Fault delivery and graceful degradation. Everything in this file is
// reached only when Config.Faults is non-nil: a fault-free run never
// allocates a faultState, never schedules a heartbeat, and never takes
// a checkpoint, so the no-fault simulation is byte-identical to one
// built without the subsystem.
//
// The degradation story follows the paper's controller architecture:
// processor 0 owns the plan, so every recovery is a controller action
// — a heartbeat notices a dead PIM and re-runs Algorithms 1/2 with a
// shrunken fleet; a dropped ring command is re-sent after a round-trip
// timeout; a watchdog reboot restores the manager from its last
// slot-boundary checkpoint and dead-reckons the missed boundaries.

// faultState is the board's fault bookkeeping.
type faultState struct {
	plan  *faults.Plan
	stats metrics.FaultStats

	// pendingDrops arms the next ring deliveries to be lost; each
	// CommandLoss event in the plan eats exactly one delivery.
	pendingDrops int

	// Sensor-fault window: until sensorUntil the charging telemetry
	// reads supplied·sensorBias (0 for a dropout).
	sensorUntil float64
	sensorBias  float64

	// Controller reboot state.
	controllerDown bool
	downSince      float64
	checkpoint     []byte // last slot-boundary dpm.State snapshot

	// deathPending maps a dead worker's ring position to its death
	// time until the heartbeat notices it.
	deathPending map[int]float64
}

// refreshCheckpoint snapshots the manager at a slot open; the
// controller restores from it after a watchdog reboot.
func (f *faultState) refreshCheckpoint(mgr *dpm.Manager) {
	if data, err := mgr.MarshalCheckpoint(); err == nil {
		f.checkpoint = data
	}
}

// senseSupplied filters the charging telemetry through the sensor
// fault window: faulted reports carry the configured bias (zero for a
// dropout) and flag the charge estimate as untrustworthy.
func (f *faultState) senseSupplied(now, supplied float64) (reported float64, faulted bool) {
	if now > f.sensorUntil {
		return supplied, false
	}
	return supplied * f.sensorBias, true
}

// onFault dispatches one planned fault event.
func (b *Board) onFault(ev faults.Event) {
	f := b.flt
	switch ev.Kind {
	case faults.WorkerDeath:
		b.killWorker(ev.Worker)
	case faults.TaskSEU:
		b.corruptTask(ev.Worker)
	case faults.CommandLoss:
		// The loss is observed on the shared ring: the next command
		// delivery, whichever worker it addresses, is eaten.
		f.pendingDrops++
	case faults.SensorDropout, faults.SensorBias:
		until := b.engine.Now() + ev.Duration
		if until > f.sensorUntil {
			f.sensorUntil = until
		}
		if ev.Kind == faults.SensorDropout {
			f.sensorBias = 0
		} else {
			f.sensorBias = ev.Bias
		}
		f.stats.SensorFaultSeconds += ev.Duration
	case faults.ControllerReboot:
		b.rebootController()
	}
}

// aliveWorkers counts the workers that have not failed.
func (b *Board) aliveWorkers() int {
	n := 0
	for _, p := range b.workers() {
		if !p.dead {
			n++
		}
	}
	return n
}

// killWorker delivers a permanent PIM failure: the chip goes dark, its
// in-flight task and queued captures die with its DRAM, and the
// heartbeat will notice on its next poll.
func (b *Board) killWorker(id int) {
	p := b.procs[id]
	if p.dead {
		return
	}
	now := b.engine.Now()
	b.gangAdvance(now)
	p.pause(now)
	if p.current != nil {
		// Progress already paid for is wasted energy.
		if rate := p.effectiveRate(); rate > 0 && p.current.Work > 0 {
			consumed := p.current.Work - p.current.Cycles
			if consumed > 0 {
				b.flt.stats.EnergyLostJ += consumed / rate *
					p.model.Power(power.ModeActive, p.freq, p.volt)
			}
		}
		b.flt.stats.TasksLost++
		p.current = nil
	}
	b.flt.stats.TasksLost += len(p.queue)
	p.queue = nil
	p.dead = true
	p.mode = power.ModeStandby
	b.flt.stats.WorkerDeaths++
	b.flt.deathPending[id] = now
	b.updateMeter()
	b.gangReschedule()
}

// corruptTask delivers an SEU to an in-flight capture: the targeted
// worker's, or (when that PIM is idle) the first busy one in ring
// order — the upset hit memory somewhere. In gang mode the single
// program spans the fleet. An SEU into idle silicon is harmless. The
// corruption surfaces at the completion's result check.
func (b *Board) corruptTask(worker int) {
	if b.gang != nil {
		if t := b.gang.task; t != nil {
			t.Corrupted = true
			b.flt.stats.TasksCorrupted++
		}
		return
	}
	if p := b.procs[worker]; p.running() {
		p.current.Corrupted = true
		b.flt.stats.TasksCorrupted++
		return
	}
	for _, p := range b.workers() {
		if p.running() {
			p.current.Corrupted = true
			b.flt.stats.TasksCorrupted++
			return
		}
	}
}

// faultRetry handles a failed result check on a worker: discard the
// corrupted pass and re-execute from scratch, up to the retry budget.
func (b *Board) faultRetry(p *Processor, task *Task, now float64) {
	f := b.flt
	f.stats.EnergyLostJ += (now - p.resumedAt) * p.power()
	task.Corrupted = false
	task.Retries++
	if task.Retries > b.cfg.MaxTaskRetries {
		f.stats.RetriesExhausted++
		f.stats.TasksLost++
		p.current = nil
		b.resume(p)
		return
	}
	f.stats.TasksRetried++
	task.Cycles = task.Work
	p.resumedAt = now
	p.completion = b.engine.ScheduleAfter(task.Cycles/p.effectiveRate(), func() { b.complete(p, task) })
}

// gangFaultRetry is faultRetry for the gang-scheduled program: the
// whole serial–parallel graph restarts.
func (b *Board) gangFaultRetry(task *Task, now float64) {
	f := b.flt
	g := b.gang
	if _, sumRate, maxRate := b.gangRates(); sumRate > 0 {
		// Estimate the discarded pass's energy from the full program
		// at the current rates and active draw.
		serial, parallel := b.gangSplit(task.Work)
		var draw float64
		for _, p := range b.workers() {
			if p.mode == power.ModeActive && p.freq > 0 {
				draw += p.power()
			}
		}
		f.stats.EnergyLostJ += (serial/maxRate + parallel/sumRate) * draw
	}
	task.Corrupted = false
	task.Retries++
	if task.Retries > b.cfg.MaxTaskRetries {
		f.stats.RetriesExhausted++
		f.stats.TasksLost++
		g.task = nil
		b.gangReschedule()
		return
	}
	f.stats.TasksRetried++
	g.serialRemaining, g.parallelRemaining = b.gangSplit(task.Work)
	g.lastT = now
	b.gangReschedule()
}

// deliverCommand ships one ring command under fault injection: an
// armed command-loss fault eats the delivery, and the controller
// re-sends after a round-trip timeout with exponential backoff, paying
// the ring latency again for each attempt.
func (b *Board) deliverCommand(p *Processor, hopDelay float64, apply func(), attempt int) {
	f := b.flt
	if f.pendingDrops > 0 {
		f.pendingDrops--
		f.stats.CommandsDropped++
		if attempt >= b.cfg.CommandRetryLimit {
			f.stats.CommandsAbandoned++
			return
		}
		timeout := 2 * hopDelay * float64(uint(1)<<uint(attempt))
		if timeout <= 0 {
			timeout = 1e-6
		}
		b.engine.ScheduleAfter(timeout, func() {
			if p.dead {
				return
			}
			f.stats.CommandsRetried++
			b.deliverCommand(p, b.commandLatency(p.ID), apply, attempt+1)
		})
		return
	}
	b.engine.ScheduleAfter(hopDelay, apply)
}

// heartbeat is the controller's periodic worker poll: it detects dead
// PIMs, shrinks the fleet, re-runs Algorithms 1/2 against the reduced
// parameter table, and re-commands the board.
func (b *Board) heartbeat() {
	f := b.flt
	now := b.engine.Now()
	if !f.controllerDown && len(f.deathPending) > 0 {
		ids := make([]int, 0, len(f.deathPending))
		for id := range f.deathPending {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			f.stats.Recoveries++
			f.stats.RecoverySeconds += now - f.deathPending[id]
			delete(f.deathPending, id)
		}
		alive := b.aliveWorkers()
		if alive < 1 {
			alive = 1
		}
		if !b.cfg.DisableDegradedReplan {
			if inf, err := b.mgr.Replan(alive); err == nil {
				f.stats.Replans++
				f.stats.PlanInfeasible += inf
				f.refreshCheckpoint(b.mgr)
			}
		}
		pt := b.mgr.CurrentPoint()
		b.command(pt.N, pt.F, pt.V)
	}
	b.engine.ScheduleAfter(b.cfg.HeartbeatSeconds, b.heartbeat)
}

// rebootController starts a watchdog reboot: the manager goes silent
// for RebootSeconds while the board keeps its last configuration.
func (b *Board) rebootController() {
	f := b.flt
	if f.controllerDown {
		return
	}
	f.controllerDown = true
	f.downSince = b.engine.Now()
	f.stats.ControllerReboots++
	b.engine.ScheduleAfter(b.cfg.RebootSeconds, b.restoreController)
}

// restoreController brings the controller back: restore the manager
// from the last checkpoint (counted as a reject when it fails
// validation), dead-reckon the slot boundaries missed during the
// outage against the expected schedules, resync the charge estimate
// with the measurement board, and re-command the fleet.
func (b *Board) restoreController() {
	f := b.flt
	now := b.engine.Now()
	tau := b.mgr.Tau()
	if f.checkpoint != nil {
		if err := b.mgr.UnmarshalCheckpoint(f.checkpoint); err == nil {
			f.stats.CheckpointRestores++
		} else {
			f.stats.CheckpointRejects++
		}
	}
	target := int(math.Floor(now/tau + 1e-9))
	for b.mgr.Slot() < target {
		pt := b.mgr.CurrentPoint()
		idx := b.mgr.Slot() % b.mgr.Slots()
		b.mgr.EndSlot(pt.Power*tau, b.cfg.Manager.Charging.Values[idx]*tau)
		b.mgr.BeginSlot()
	}
	if now > f.sensorUntil {
		b.mgr.SyncCharge(b.bat.Charge())
	}
	f.controllerDown = false
	f.stats.Recoveries++
	f.stats.RecoverySeconds += now - f.downSince
	pt := b.mgr.CurrentPoint()
	b.command(pt.N, pt.F, pt.V)
	f.refreshCheckpoint(b.mgr)
}
