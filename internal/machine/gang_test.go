package machine

import (
	"math"
	"testing"

	"dpm/internal/fft"
	"dpm/internal/trace"
)

func gangConfig(t *testing.T, s trace.Scenario, periods int) Config {
	t.Helper()
	cfg := boardConfig(t, s, periods)
	cfg.GangScheduled = true
	return cfg
}

func TestGangRunCompletes(t *testing.T) {
	b, err := New(gangConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted == 0 {
		t.Fatal("gang mode completed nothing")
	}
	if res.Detector.Processed != res.TasksCompleted {
		t.Errorf("DSP ran %d times for %d completions", res.Detector.Processed, res.TasksCompleted)
	}
	if res.BusySeconds <= 0 {
		t.Error("no busy time attributed")
	}
}

func TestGangDeterministic(t *testing.T) {
	run := func() *Result {
		b, err := New(gangConfig(t, trace.ScenarioII(), 2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TasksCompleted != b.TasksCompleted || a.EnergyUsed != b.EnergyUsed {
		t.Error("gang mode must be deterministic")
	}
}

// The gang model must obey Amdahl: a single capture on a fixed
// configuration finishes in Ts/f + (Ttot−Ts)/(n·f) modeled seconds.
func TestGangAmdahlTiming(t *testing.T) {
	s := trace.ScenarioI()
	cfg := gangConfig(t, s, 2)
	cfg.Events = []trace.Event{{Time: 0.1, Seed: 1}}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 1 {
		t.Fatalf("completed %d, want 1", res.TasksCompleted)
	}
	// Reconstruct the expected latency bound: with the best board
	// configuration (7 workers at 80 MHz) the capture would take
	// serial/f + parallel/(7f); with the worst running configuration
	// (1 worker at 20 MHz) it takes cycles/f. The measured latency
	// must land between those bounds (plus command latency).
	cycles, err := fft.Cycles(2048)
	if err != nil {
		t.Fatal(err)
	}
	cycles /= 0.6 // whole-task cycles, as taskCycles models
	frac := cfg.Manager.Params.Workload.SerialFraction()
	fastest := (cycles*frac)/80e6 + (cycles*(1-frac))/(7*80e6)
	slowest := cycles / 20e6
	lat := res.MeanLatencySeconds
	if lat < fastest*0.9 || lat > slowest*1.5 {
		t.Errorf("latency %g s outside Amdahl bounds [%g, %g]", lat, fastest, slowest)
	}
}

// More active workers must not make a lone capture slower.
func TestGangMoreWorkersNotSlower(t *testing.T) {
	latencyWith := func(budgetScale float64) float64 {
		s := trace.ScenarioI()
		cfg := gangConfig(t, s, 2)
		cfg.Manager.Charging = s.Charging.Scale(budgetScale)
		cfg.Manager.EventRate = s.Usage.Scale(budgetScale)
		cfg.Events = []trace.Event{{Time: 0.1, Seed: 1}}
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksCompleted != 1 {
			t.Fatalf("completed %d, want 1", res.TasksCompleted)
		}
		return res.MeanLatencySeconds
	}
	rich := latencyWith(1.0)
	poor := latencyWith(0.3)
	if rich > poor*1.1 {
		t.Errorf("more power made the gang slower: %g s vs %g s", rich, poor)
	}
}

func TestGangBatteryStaysInBand(t *testing.T) {
	s := trace.ScenarioII()
	b, err := New(gangConfig(t, s, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Records {
		if r.Charge < s.CapacityMin-1e-9 || r.Charge > s.CapacityMax+1e-9 {
			t.Errorf("slot %d: charge %g out of band", i, r.Charge)
		}
	}
}

func TestGangBacklogCounted(t *testing.T) {
	s := trace.ScenarioI()
	cfg := gangConfig(t, s, 1)
	var events []trace.Event
	for i := 0; i < 30; i++ {
		events = append(events, trace.Event{Time: 0.01 * float64(i), Seed: int64(i)})
	}
	cfg.Events = events
	cfg.BacklogLimit = 4
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsDropped == 0 {
		t.Error("gang backlog limit never dropped")
	}
}

func TestGangBusyTimeBounded(t *testing.T) {
	b, err := New(gangConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	horizon := 2 * trace.Period
	for _, w := range res.Workers {
		if w.BusySeconds > horizon+1e-6 {
			t.Errorf("worker %d busy %g s over a %g s horizon", w.ID, w.BusySeconds, horizon)
		}
	}
	if math.IsNaN(res.BusySeconds) {
		t.Error("busy seconds NaN")
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.WorkerSpeeds = []float64{1, 2} // wrong length for 7 workers
	if _, err := New(cfg); err == nil {
		t.Error("wrong speed vector length must error")
	}
	cfg = boardConfig(t, trace.ScenarioI(), 1)
	cfg.WorkerSpeeds = []float64{1, 1, 1, 1, 1, 1, 0}
	if _, err := New(cfg); err == nil {
		t.Error("zero speed must error")
	}
	cfg = boardConfig(t, trace.ScenarioI(), 1)
	cfg.WorkerPowerScale = []float64{1, 1, 1, 1, 1, 1, -1}
	if _, err := New(cfg); err == nil {
		t.Error("negative power scale must error")
	}
}

func TestHeterogeneousFasterFleetFinishesSooner(t *testing.T) {
	latency := func(speeds []float64) float64 {
		cfg := gangConfig(t, trace.ScenarioI(), 2)
		cfg.ExecuteDSP = false
		cfg.WorkerSpeeds = speeds
		cfg.Events = []trace.Event{{Time: 0.1, Seed: 1}}
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksCompleted != 1 {
			t.Fatalf("completed %d", res.TasksCompleted)
		}
		return res.MeanLatencySeconds
	}
	uniform := latency(nil)
	fast := latency([]float64{2, 2, 2, 2, 2, 2, 2})
	if fast >= uniform {
		t.Errorf("2× fleet latency %g not below uniform %g", fast, uniform)
	}
}

func TestHeterogeneousWakesEffectiveWorkersFirst(t *testing.T) {
	// Worker 7 (index 6) is 3× faster at the same power: with a small
	// budget it must be among the first woken.
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.ExecuteDSP = false
	cfg.WorkerSpeeds = []float64{1, 1, 1, 1, 1, 1, 3}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.workerOrder[0] != 6 {
		t.Errorf("activation order = %v, want the fast worker first", b.workerOrder)
	}
}
