package machine

import (
	"math"
	"testing"

	"dpm/internal/faults"
	"dpm/internal/trace"
)

// faultBoard builds a scenario-I board with the given fault plan.
func faultBoard(t *testing.T, plan *faults.Plan, periods int) *Board {
	t.Helper()
	cfg := boardConfig(t, trace.ScenarioI(), periods)
	cfg.Faults = plan
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEmptyFaultPlanIsTransparent(t *testing.T) {
	// An armed but empty fault plan must not perturb the simulation:
	// the heartbeat and checkpoint machinery are pure observers.
	clean, err := New(boardConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	faulted := faultBoard(t, &faults.Plan{}, 2)
	faultedRes, err := faulted.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cleanRes.Records) != len(faultedRes.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(cleanRes.Records), len(faultedRes.Records))
	}
	for i := range cleanRes.Records {
		if cleanRes.Records[i] != faultedRes.Records[i] {
			t.Errorf("record %d differs: %+v vs %+v", i, cleanRes.Records[i], faultedRes.Records[i])
		}
	}
	if cleanRes.EnergyUsed != faultedRes.EnergyUsed {
		t.Errorf("energy differs: %g vs %g", cleanRes.EnergyUsed, faultedRes.EnergyUsed)
	}
	if cleanRes.TasksCompleted != faultedRes.TasksCompleted {
		t.Errorf("tasks differ: %d vs %d", cleanRes.TasksCompleted, faultedRes.TasksCompleted)
	}
	if faultedRes.Faults.Any() {
		t.Errorf("empty plan reported faults: %+v", faultedRes.Faults)
	}
}

// TestWorkerDeathReplanFeasible is the issue's acceptance scenario: a
// seeded scenario-I run with one permanent worker death mid-period
// completes with a feasible degraded re-plan, visible recovery
// latency, and retried ring commands.
func TestWorkerDeathReplanFeasible(t *testing.T) {
	s := trace.ScenarioI()
	plan := (&faults.Plan{}).
		Add(faults.Event{Time: 26.4, Kind: faults.WorkerDeath, Worker: 3}).
		Add(faults.Event{Time: 27.0, Kind: faults.CommandLoss, Worker: 2}).
		Add(faults.Event{Time: 33.5, Kind: faults.CommandLoss, Worker: 5})
	b := faultBoard(t, plan, 2)
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}

	if res.Faults.WorkerDeaths != 1 {
		t.Errorf("WorkerDeaths = %d, want 1", res.Faults.WorkerDeaths)
	}
	if res.Faults.Recoveries == 0 || res.Faults.MeanRecoverySeconds() <= 0 {
		t.Errorf("no recovery recorded: %+v", res.Faults)
	}
	if res.Faults.Replans == 0 {
		t.Error("death did not trigger a degraded re-plan")
	}
	if res.Faults.PlanInfeasible != 0 {
		t.Errorf("one-death re-plan reported %d infeasible slots, want 0", res.Faults.PlanInfeasible)
	}
	if res.Faults.CommandsDropped == 0 || res.Faults.CommandsRetried == 0 {
		t.Errorf("command loss not exercised: dropped %d, retried %d",
			res.Faults.CommandsDropped, res.Faults.CommandsRetried)
	}

	// The degraded table caps the fleet: no post-death slot commands
	// more workers than survive.
	for _, rec := range res.Records {
		if rec.Time > 28.8 && rec.TargetN > 6 {
			t.Errorf("slot at %.1fs commands %d workers after the death", rec.Time, rec.TargetN)
		}
	}
	// The battery never leaves the feasible band.
	for _, rec := range res.Records {
		if rec.Charge == 0 {
			continue // the final boundary row closes without opening
		}
		if rec.Charge < s.CapacityMin-1e-6 || rec.Charge > s.CapacityMax+1e-6 {
			t.Errorf("charge %g at %.1fs outside [%g, %g]",
				rec.Charge, rec.Time, s.CapacityMin, s.CapacityMax)
		}
	}
	// The dead worker stopped mid-run; the others kept computing.
	if res.Workers[2].TasksDone == 0 {
		t.Log("worker 3 completed no tasks before dying (acceptable)")
	}
	if res.TasksCompleted == 0 {
		t.Error("degraded board completed no tasks")
	}
}

// TestControllerRebootRestoresFromCheckpoint exercises Checkpoint /
// Restore end-to-end inside the machine simulation: the outage spans a
// slot boundary, so the restored manager must dead-reckon the missed
// slot before resuming.
func TestControllerRebootRestoresFromCheckpoint(t *testing.T) {
	plan := (&faults.Plan{}).
		Add(faults.Event{Time: 10.0, Kind: faults.ControllerReboot})
	cfg := boardConfig(t, trace.ScenarioI(), 2)
	cfg.Faults = plan
	cfg.RebootSeconds = 6 // spans the boundary at 14.4 s
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}

	if res.Faults.ControllerReboots != 1 {
		t.Errorf("ControllerReboots = %d, want 1", res.Faults.ControllerReboots)
	}
	if res.Faults.CheckpointRestores != 1 {
		t.Errorf("CheckpointRestores = %d, want 1 (rejects: %d)",
			res.Faults.CheckpointRestores, res.Faults.CheckpointRejects)
	}
	if res.Faults.Recoveries == 0 {
		t.Error("reboot recovery not recorded")
	}
	if got := res.Faults.RecoverySeconds; math.Abs(got-6) > 1e-9 {
		t.Errorf("RecoverySeconds = %g, want 6", got)
	}

	// The boundary at 14.4 s fired while the controller was down: its
	// record carries no plan, only the held configuration.
	var downRow bool
	for _, rec := range res.Records {
		if math.Abs(rec.Time-14.4) < 1e-9 {
			downRow = rec.Planned == 0
		}
	}
	if !downRow {
		t.Error("no plan-less record for the boundary inside the outage")
	}
	// Planning resumes afterwards.
	var resumed bool
	for _, rec := range res.Records {
		if rec.Time > 19.2 && rec.Planned > 0 {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Error("manager never planned again after the reboot")
	}
}

func TestSEURetry(t *testing.T) {
	s := trace.ScenarioI()
	// Pepper the sunlight slots with upsets so at least one lands on
	// an in-flight capture.
	plan := &faults.Plan{}
	for i, tm := range []float64{6, 8, 10, 12, 14, 16, 18, 20} {
		plan.Add(faults.Event{Time: tm, Kind: faults.TaskSEU, Worker: 1 + i%7})
	}
	b := faultBoard(t, plan, 2)
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TasksCorrupted == 0 {
		t.Fatal("no SEU landed on an in-flight task; retune the injection times")
	}
	if res.Faults.TasksRetried == 0 && res.Faults.RetriesExhausted == 0 {
		t.Error("corrupted tasks neither retried nor dropped")
	}
	if res.Faults.EnergyLostJ <= 0 {
		t.Error("discarded passes cost no energy")
	}
	_ = s
}

func TestSEURetryExhaustion(t *testing.T) {
	plan := &faults.Plan{}
	for _, tm := range []float64{6, 8, 10, 12, 14, 16, 18, 20} {
		plan.Add(faults.Event{Time: tm, Kind: faults.TaskSEU, Worker: 1})
	}
	cfg := boardConfig(t, trace.ScenarioI(), 2)
	cfg.Faults = plan
	cfg.MaxTaskRetries = -1 // no retry budget: every corruption is fatal
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TasksCorrupted == 0 {
		t.Fatal("no SEU landed on an in-flight task")
	}
	if res.Faults.RetriesExhausted != res.Faults.TasksCorrupted {
		t.Errorf("RetriesExhausted = %d, want %d (no budget)",
			res.Faults.RetriesExhausted, res.Faults.TasksCorrupted)
	}
	if res.Faults.TasksRetried != 0 {
		t.Errorf("TasksRetried = %d with retries disabled", res.Faults.TasksRetried)
	}
}

func TestGangSEURetry(t *testing.T) {
	// A gang capture completes in well under a millisecond, so pin
	// the arrivals and strike each program moments after it starts.
	var events []trace.Event
	plan := &faults.Plan{}
	for i, tm := range []float64{6, 8, 10, 12, 14, 16, 18, 20} {
		events = append(events, trace.Event{Time: tm, Seed: int64(i + 1)})
		plan.Add(faults.Event{Time: tm + 1e-5, Kind: faults.TaskSEU, Worker: 1})
	}
	cfg := boardConfig(t, trace.ScenarioI(), 2)
	cfg.Events = events
	cfg.Faults = plan
	cfg.GangScheduled = true
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TasksCorrupted == 0 {
		t.Fatal("no SEU landed on the gang's program")
	}
	if res.Faults.TasksRetried == 0 && res.Faults.RetriesExhausted == 0 {
		t.Error("corrupted gang program neither retried nor dropped")
	}
}

func TestWorkerDeathInGangMode(t *testing.T) {
	plan := (&faults.Plan{}).
		Add(faults.Event{Time: 26.4, Kind: faults.WorkerDeath, Worker: 2})
	cfg := boardConfig(t, trace.ScenarioI(), 2)
	cfg.Faults = plan
	cfg.GangScheduled = true
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.WorkerDeaths != 1 {
		t.Errorf("WorkerDeaths = %d, want 1", res.Faults.WorkerDeaths)
	}
	if res.Faults.Recoveries == 0 {
		t.Error("gang-mode death never recovered")
	}
	if res.TasksCompleted == 0 {
		t.Error("gang completed nothing after losing one worker")
	}
}

func TestSensorBiasSkewsPlanning(t *testing.T) {
	plan := (&faults.Plan{}).
		Add(faults.Event{Time: 1.0, Kind: faults.SensorBias, Duration: 20, Bias: 0.5})
	clean, err := New(boardConfig(t, trace.ScenarioI(), 2))
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	b := faultBoard(t, plan, 2)
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.SensorFaultSeconds != 20 {
		t.Errorf("SensorFaultSeconds = %g, want 20", res.Faults.SensorFaultSeconds)
	}
	// The manager planned from halved supply readings: some slot's
	// allocation must diverge from the clean run while the battery
	// (fed by the true supply) stays inside its band.
	var diverged bool
	for i := range res.Records {
		if res.Records[i].Planned != cleanRes.Records[i].Planned {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("biased telemetry did not change any planning decision")
	}
	s := trace.ScenarioI()
	for _, rec := range res.Records {
		if rec.Charge < s.CapacityMin-1e-6 || rec.Charge > s.CapacityMax+1e-6 {
			t.Errorf("charge %g outside the physical band", rec.Charge)
		}
	}
}

func TestSensorDropoutReadsZero(t *testing.T) {
	plan := (&faults.Plan{}).
		Add(faults.Event{Time: 1.0, Kind: faults.SensorDropout, Duration: 10})
	b := faultBoard(t, plan, 1)
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.SensorFaultSeconds != 10 {
		t.Errorf("SensorFaultSeconds = %g, want 10", res.Faults.SensorFaultSeconds)
	}
	// The manager saw zero supply during sunlight: it must have
	// banked a (spurious) deficit and cut some later allocation
	// relative to the expectation-fed plan; the run still completes.
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
}

func TestCommandAbandonAfterRetryLimit(t *testing.T) {
	// Arm far more drops than the retry budget can absorb: at least
	// one command must be abandoned, leaving its worker in the stale
	// configuration until the next boundary.
	plan := &faults.Plan{}
	for i := 0; i < 40; i++ {
		plan.Add(faults.Event{Time: 1 + float64(i)*0.1, Kind: faults.CommandLoss, Worker: 1 + i%7})
	}
	cfg := boardConfig(t, trace.ScenarioI(), 2)
	cfg.Faults = plan
	cfg.CommandRetryLimit = 1
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.CommandsDropped == 0 {
		t.Fatal("no command was ever dropped")
	}
	if res.Faults.CommandsAbandoned == 0 {
		t.Error("retry limit 1 with 40 drops abandoned nothing")
	}
}

func TestFaultConfigValidation(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.Faults = (&faults.Plan{}).
		Add(faults.Event{Time: 1, Kind: faults.WorkerDeath, Worker: 9})
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range fault target accepted")
	}
	cfg = boardConfig(t, trace.ScenarioI(), 1)
	cfg.HeartbeatSeconds = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative heartbeat accepted")
	}
	cfg = boardConfig(t, trace.ScenarioI(), 1)
	cfg.RebootSeconds = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative reboot outage accepted")
	}
}

func TestGeneratedPlanRuns(t *testing.T) {
	// A generator-produced plan with every fault class drives the
	// board to completion with sane accounting.
	horizon := 2 * trace.Period
	plan, err := faults.Generate(faults.GenConfig{
		Horizon:         horizon,
		Workers:         7,
		DeathRate:       1.5 / horizon,
		SEURate:         6 / horizon,
		CommandLossRate: 6 / horizon,
		SensorRate:      2 / horizon,
		RebootRate:      1.5 / horizon,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b := faultBoard(t, plan, 2)
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.WorkerDeaths > 6 {
		t.Errorf("more deaths than workers: %d", res.Faults.WorkerDeaths)
	}
	if res.Faults.RecoverySeconds < 0 || res.Faults.EnergyLostJ < 0 {
		t.Errorf("negative accounting: %+v", res.Faults)
	}
	s := trace.ScenarioI()
	for _, rec := range res.Records {
		if rec.Charge < s.CapacityMin-1e-6 || rec.Charge > s.CapacityMax+1e-6 {
			t.Errorf("charge %g outside the physical band at %.1fs", rec.Charge, rec.Time)
		}
	}
	// Determinism: the same plan replays to the same result.
	b2 := faultBoard(t, plan, 2)
	res2, err := b2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != res2.Faults {
		t.Errorf("fault accounting not deterministic:\n%+v\n%+v", res.Faults, res2.Faults)
	}
	if res.TasksCompleted != res2.TasksCompleted || res.EnergyUsed != res2.EnergyUsed {
		t.Error("faulted run not deterministic")
	}
}
