package machine

import (
	"testing"

	"dpm/internal/trace"
)

// burstEvents packs count arrivals into a tight window starting at
// start — far more than the capture memory can hold.
func burstEvents(count int, start, spacing float64) []trace.Event {
	events := make([]trace.Event, count)
	for i := range events {
		events[i] = trace.Event{Time: start + float64(i)*spacing, Seed: int64(i + 1)}
	}
	return events
}

// TestBacklogLimitBurstAccounting drives a burst of arrivals against a
// small BacklogLimit and checks the drop accounting balances: every
// arrival is either completed, dropped, or still queued at the end —
// no task leaks, none is double-counted.
func TestBacklogLimitBurstAccounting(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.Events = burstEvents(200, 5.0, 0.01) // 200 arrivals in 2 s
	cfg.BacklogLimit = 8
	cfg.ExecuteDSP = false
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsArrived != 200 {
		t.Fatalf("EventsArrived = %d, want 200", res.EventsArrived)
	}
	if res.EventsDropped == 0 {
		t.Fatal("a 200-event burst against limit 8 dropped nothing")
	}
	final := res.Records[len(res.Records)-1]
	if got := res.TasksCompleted + res.EventsDropped + final.Backlog; got != res.EventsArrived {
		t.Errorf("accounting leak: completed %d + dropped %d + queued %d = %d, want %d arrivals",
			res.TasksCompleted, res.EventsDropped, final.Backlog, got, res.EventsArrived)
	}
	// The limit was honored while the burst was in flight: the
	// post-burst slot records never show more queued than the cap.
	for _, rec := range res.Records {
		if rec.Backlog > cfg.BacklogLimit {
			t.Errorf("backlog %d above limit %d at %.1fs", rec.Backlog, cfg.BacklogLimit, rec.Time)
		}
	}
}

// TestBacklogLimitBurstGangMode is the same invariant for the
// gang-scheduled board, whose backlog lives in the program queue.
func TestBacklogLimitBurstGangMode(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.Events = burstEvents(200, 5.0, 0.01)
	cfg.BacklogLimit = 8
	cfg.ExecuteDSP = false
	cfg.GangScheduled = true
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsDropped == 0 {
		t.Fatal("gang burst dropped nothing")
	}
	final := res.Records[len(res.Records)-1]
	if got := res.TasksCompleted + res.EventsDropped + final.Backlog; got != res.EventsArrived {
		t.Errorf("gang accounting leak: completed %d + dropped %d + queued %d = %d, want %d",
			res.TasksCompleted, res.EventsDropped, final.Backlog, got, res.EventsArrived)
	}
}

// TestBacklogUnlimitedNeverDrops is the control: without a limit the
// same burst is fully admitted.
func TestBacklogUnlimitedNeverDrops(t *testing.T) {
	cfg := boardConfig(t, trace.ScenarioI(), 1)
	cfg.Events = burstEvents(200, 5.0, 0.01)
	cfg.ExecuteDSP = false
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsDropped != 0 {
		t.Errorf("unlimited backlog dropped %d events", res.EventsDropped)
	}
	final := res.Records[len(res.Records)-1]
	if got := res.TasksCompleted + final.Backlog; got != res.EventsArrived {
		t.Errorf("accounting leak without limit: %d completed + %d queued != %d arrived",
			res.TasksCompleted, final.Backlog, res.EventsArrived)
	}
}
