package machine

import "fmt"

// EnergyBreakdown splits the board's consumption by processor mode —
// the observability a real power-measurement board gives operators.
type EnergyBreakdown struct {
	// ActiveJ, SleepJ and StandbyJ are per-mode energies in joules.
	ActiveJ, SleepJ, StandbyJ float64
	// OverheadJ is the fixed board draw's share.
	OverheadJ float64
}

// Total sums the components.
func (e EnergyBreakdown) Total() float64 {
	return e.ActiveJ + e.SleepJ + e.StandbyJ + e.OverheadJ
}

// Meter is the board's power-measurement model (the PAMA board
// carries a dedicated measurement board): it integrates a piecewise-
// constant power level over time, with a per-mode breakdown.
type Meter struct {
	lastT  float64
	watts  float64
	joules float64

	// Per-mode power levels, integrated alongside the total.
	levels    EnergyBreakdown // current watts per component (reusing the struct)
	breakdown EnergyBreakdown // accumulated joules
}

// NewMeter returns a meter starting at time zero and zero power.
func NewMeter() *Meter { return &Meter{} }

// Accumulate integrates the current power level up to now.
func (m *Meter) Accumulate(now float64) {
	if now < m.lastT {
		panic(fmt.Sprintf("machine: meter time moved backward (%g after %g)", now, m.lastT))
	}
	dt := now - m.lastT
	m.joules += m.watts * dt
	m.breakdown.ActiveJ += m.levels.ActiveJ * dt
	m.breakdown.SleepJ += m.levels.SleepJ * dt
	m.breakdown.StandbyJ += m.levels.StandbyJ * dt
	m.breakdown.OverheadJ += m.levels.OverheadJ * dt
	m.lastT = now
}

// SetPower integrates up to now and switches the level to watts.
func (m *Meter) SetPower(now, watts float64) {
	if watts < 0 {
		panic(fmt.Sprintf("machine: negative power %g", watts))
	}
	m.Accumulate(now)
	m.watts = watts
}

// SetLevels integrates up to now and switches both the total level
// and its per-mode split (all in watts).
func (m *Meter) SetLevels(now float64, levels EnergyBreakdown) {
	total := levels.Total()
	if total < 0 {
		panic(fmt.Sprintf("machine: negative power %g", total))
	}
	m.Accumulate(now)
	m.watts = total
	m.levels = levels
}

// Breakdown returns the accumulated per-mode energies.
func (m *Meter) Breakdown() EnergyBreakdown { return m.breakdown }

// Power returns the current power level in watts.
func (m *Meter) Power() float64 { return m.watts }

// Energy returns the total integrated energy in joules up to the
// last Accumulate/SetPower call.
func (m *Meter) Energy() float64 { return m.joules }
