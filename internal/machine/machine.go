// Package machine is the discrete-event model of the paper's PAMA
// board (§5): eight M32R/D Processor-In-Memory chips behind two
// interconnect FPGAs on a unidirectional ring, a rechargeable
// battery, and a power-measurement board. Processor 0 is the
// controller: at every τ boundary it runs the dpm manager, derives
// the (n, f) command set, and ships mode/frequency commands around
// the ring; the other processors run the FORTE detection pipeline on
// arriving RF captures.
//
// The model reproduces the board's published behaviors: active/
// sleep/stand-by modes with their measured powers, the FPGA-mediated
// frequency change (the processor writes the frequency word, drops
// to stand-by, and the FPGA wakes it a fixed number of cycles
// later), and per-hop ring latency for command delivery.
package machine

import (
	"context"
	"fmt"
	"sort"

	"dpm/internal/battery"
	"dpm/internal/dpm"
	"dpm/internal/faults"
	"dpm/internal/fft"
	"dpm/internal/forte"
	"dpm/internal/metrics"
	"dpm/internal/power"
	"dpm/internal/ring"
	"dpm/internal/schedule"
	"dpm/internal/signal"
	"dpm/internal/sim"
	"dpm/internal/trace"
)

// Config assembles a board simulation.
type Config struct {
	// Manager configures the power manager (expected schedules,
	// battery limits, parameter table).
	Manager dpm.Config
	// ActualCharging is the power actually supplied per slot; nil
	// means it matches the expectation.
	ActualCharging *schedule.Grid
	// Events is the RF event arrival trace, sorted by time.
	Events []trace.Event
	// EventMix gives the probability that an arriving event is a
	// real transient (the rest split evenly between carriers and
	// noise triggers). Zero means 0.6.
	EventMix float64
	// BufferSamples is the capture length (2048 in the paper).
	BufferSamples int
	// Periods is how many charging periods to simulate.
	Periods int
	// RingHopSeconds overrides the command latency per ring hop.
	// Zero uses the modeled PAMA interconnect (package ring): a
	// two-word command store-and-forwarded hop by hop, with FPGA
	// forwarding delays where the path crosses one.
	RingHopSeconds float64
	// FreqChangeCycles is the FPGA auto-wake delay after a
	// frequency write (10 cycles on the board).
	FreqChangeCycles int
	// ExecuteDSP runs the real fixed-point pipeline on every
	// completed task (true reproduces detection statistics; false
	// keeps long benches cheap).
	ExecuteDSP bool
	// BacklogLimit caps the total queued tasks (each 2K-sample
	// capture occupies a slice of the PIMs' 2 MB DRAMs); arrivals
	// beyond it are dropped and counted. Zero means unlimited.
	BacklogLimit int
	// GangScheduled runs each capture as one parallel program across
	// all active workers (the paper's Figure 2 task graph: serial
	// stages on one processor, the parallel middle at the aggregate
	// rate n·f), instead of whole captures on individual workers.
	GangScheduled bool
	// IdleSleep parks inactive workers in sleep mode (DRAM alive,
	// 393 mW) instead of stand-by (6.6 mW). Stand-by loses the
	// on-chip DRAM, so an in-flight capture resumed after a stand-by
	// nap pays MemoryReloadCycles; sleep avoids the penalty at a
	// higher idle draw. The paper's simulation does not use sleep.
	IdleSleep bool
	// MemoryReloadCycles is the wake-from-stand-by penalty charged
	// to an interrupted task (reloading its working set into the
	// PIM's DRAM). Zero means the default of 524288 cycles — 2 MB
	// over a 32-bit 20 MHz ring, ≈ 26 ms. Negative disables.
	MemoryReloadCycles int
	// RetentionSeconds is how long unrefreshed DRAM cells survive a
	// stand-by nap: shorter naps (e.g. the FPGA's 10-cycle
	// frequency-change wake) pay no reload. Zero means 1 ms.
	RetentionSeconds float64
	// WorkerSpeeds makes the fleet heterogeneous (the paper's §6
	// extension): worker i retires work at freq·WorkerSpeeds[i].
	// Nil means a uniform fleet. Length must equal the worker count
	// (board processors minus the controller).
	WorkerSpeeds []float64
	// WorkerPowerScale scales each worker's active power (process
	// variation, mixed chip generations). Nil means uniform.
	WorkerPowerScale []float64
	// Detector configures the FORTE pipeline; the zero value uses
	// forte.DefaultConfig.
	Detector forte.Config
	// Signal configures the synthetic buffers; the zero value uses
	// signal.DefaultConfig.
	Signal signal.Config

	// Faults injects a deterministic fault plan (package faults).
	// Nil disables every fault path: the simulation is byte-identical
	// to a build without the subsystem.
	Faults *faults.Plan
	// HeartbeatSeconds is the controller's worker-poll interval, used
	// to detect dead PIMs. Zero means τ/4. Only read when Faults is
	// set.
	HeartbeatSeconds float64
	// MaxTaskRetries bounds re-executions after a failed result check
	// (an SEU-corrupted pass). Zero means 2; negative disables
	// retries.
	MaxTaskRetries int
	// CommandRetryLimit bounds controller re-sends of a dropped ring
	// command. Zero means 3; negative disables retries.
	CommandRetryLimit int
	// RebootSeconds is the controller's watchdog-reboot outage before
	// it restores from its last checkpoint. Zero means τ/8.
	RebootSeconds float64
	// DisableDegradedReplan keeps the original plan after a worker
	// death (for ablation); the fleet still shrinks.
	DisableDegradedReplan bool
}

// SlotRecord extends the manager's per-slot trace with machine-level
// detail.
type SlotRecord struct {
	// Time is the slot start in seconds.
	Time float64
	// Planned is the manager's allocation for the slot in watts.
	Planned float64
	// TargetN and TargetF are the commanded configuration.
	TargetN int
	TargetF float64
	// UsedPower is the measured average draw over the slot in
	// watts.
	UsedPower float64
	// SuppliedPower is the charging power during the slot in watts.
	SuppliedPower float64
	// Charge is the battery level at the slot's end in joules.
	Charge float64
	// Backlog is the number of tasks waiting (including in
	// progress) at the slot's end.
	Backlog int
}

// Result summarizes a board run.
type Result struct {
	// Records holds one row per slot.
	Records []SlotRecord
	// Battery is the final accounting.
	Battery battery.Snapshot
	// Detector aggregates FORTE verdicts (only when ExecuteDSP).
	Detector forte.Stats
	// Confusion scores the detector against the synthetic ground
	// truth (only when ExecuteDSP).
	Confusion forte.Confusion
	// TasksCompleted counts finished captures.
	TasksCompleted int
	// EventsArrived counts trace events delivered.
	EventsArrived int
	// EventsDropped counts arrivals rejected by the backlog limit.
	EventsDropped int
	// Workers holds per-worker statistics, by ring position.
	Workers []WorkerStats
	// MeanLatencySeconds is the average arrival→completion latency.
	MeanLatencySeconds float64
	// EnergyUsed is the board's total measured energy in joules.
	EnergyUsed float64
	// Energy splits EnergyUsed by processor mode.
	Energy EnergyBreakdown
	// BusySeconds sums worker active-compute time.
	BusySeconds float64
	// Faults is the fault-injection accounting; zero when Config.Faults
	// was nil.
	Faults metrics.FaultStats
}

// WorkerStats summarizes one worker processor's run.
type WorkerStats struct {
	// ID is the ring position.
	ID int
	// TasksDone counts completed captures.
	TasksDone int
	// BusySeconds is active-compute time.
	BusySeconds float64
	// Utilization is BusySeconds over the simulated horizon.
	Utilization float64
}

// Board is the running simulation state.
type Board struct {
	cfg      Config
	engine   *sim.Engine
	mgr      *dpm.Manager
	bat      *battery.Battery
	meter    *Meter
	procs    []*Processor
	detector *forte.Detector
	backlog  []*Task
	gang     *gangState  // non-nil in gang-scheduled mode
	flt      *faultState // non-nil when Config.Faults is set

	actual       *schedule.Grid
	workerOrder  []int         // worker activation priority (indices into workers())
	network      *ring.Network // nil when RingHopSeconds overrides
	taskCycles   float64
	nextTaskID   int
	lastSlotJ    float64
	totalLatency float64
	result       *Result
}

// commandWords is the size of a mode/frequency command message on the
// ring: an opcode word and an operand word.
const commandWords = 2

// commandLatency returns the controller→worker delivery time.
func (b *Board) commandLatency(workerID int) float64 {
	if b.network != nil {
		return b.network.Send(0, workerID, commandWords)
	}
	return float64(workerID) * b.cfg.RingHopSeconds
}

// New validates the configuration and builds a board.
func New(cfg Config) (*Board, error) {
	if cfg.Periods <= 0 {
		return nil, fmt.Errorf("machine: non-positive period count %d", cfg.Periods)
	}
	if cfg.BufferSamples == 0 {
		cfg.BufferSamples = 2048
	}
	if cfg.EventMix == 0 {
		cfg.EventMix = 0.6
	}
	if cfg.EventMix < 0 || cfg.EventMix > 1 {
		return nil, fmt.Errorf("machine: event mix %g outside [0, 1]", cfg.EventMix)
	}
	if cfg.RingHopSeconds < 0 {
		return nil, fmt.Errorf("machine: negative ring hop latency %g", cfg.RingHopSeconds)
	}
	if cfg.FreqChangeCycles == 0 {
		cfg.FreqChangeCycles = 10
	}
	if cfg.FreqChangeCycles < 0 {
		return nil, fmt.Errorf("machine: negative frequency-change delay %d", cfg.FreqChangeCycles)
	}
	if cfg.MemoryReloadCycles == 0 {
		cfg.MemoryReloadCycles = 524288
	}
	if cfg.MemoryReloadCycles < 0 {
		cfg.MemoryReloadCycles = 0
	}
	if cfg.RetentionSeconds == 0 {
		cfg.RetentionSeconds = 1e-3
	}
	if cfg.RetentionSeconds < 0 {
		return nil, fmt.Errorf("machine: negative DRAM retention %g", cfg.RetentionSeconds)
	}
	if cfg.Detector == (forte.Config{}) {
		cfg.Detector = forte.DefaultConfig()
	}
	if cfg.Signal == (signal.Config{}) {
		cfg.Signal = signal.DefaultConfig()
	}

	if cfg.HeartbeatSeconds < 0 {
		return nil, fmt.Errorf("machine: negative heartbeat interval %g", cfg.HeartbeatSeconds)
	}
	if cfg.RebootSeconds < 0 {
		return nil, fmt.Errorf("machine: negative reboot outage %g", cfg.RebootSeconds)
	}

	mgr, err := dpm.New(cfg.Manager)
	if err != nil {
		return nil, err
	}
	actual := cfg.ActualCharging
	if actual == nil {
		actual = cfg.Manager.Charging
	}
	if actual.Len() != mgr.Slots() {
		return nil, fmt.Errorf("machine: actual charging has %d slots, plan has %d", actual.Len(), mgr.Slots())
	}
	bat, err := battery.New(battery.Config{
		CapacityMax: cfg.Manager.CapacityMax,
		CapacityMin: cfg.Manager.CapacityMin,
		Initial:     cfg.Manager.InitialCharge,
	})
	if err != nil {
		return nil, fmt.Errorf("machine: battery: %w", err)
	}
	det, err := forte.NewDetector(cfg.BufferSamples, cfg.Detector)
	if err != nil {
		return nil, err
	}
	cycles, err := taskCycles(cfg.BufferSamples)
	if err != nil {
		return nil, err
	}

	sys := cfg.Manager.Params.System
	workerCount := sys.N - 1
	if cfg.WorkerSpeeds != nil && len(cfg.WorkerSpeeds) != workerCount {
		return nil, fmt.Errorf("machine: %d worker speeds for %d workers", len(cfg.WorkerSpeeds), workerCount)
	}
	if cfg.WorkerPowerScale != nil && len(cfg.WorkerPowerScale) != workerCount {
		return nil, fmt.Errorf("machine: %d power scales for %d workers", len(cfg.WorkerPowerScale), workerCount)
	}
	procs := make([]*Processor, sys.N)
	for i := range procs {
		model := sys.Proc
		speed := 1.0
		if i > 0 { // workers only; processor 0 is the controller
			if cfg.WorkerSpeeds != nil {
				speed = cfg.WorkerSpeeds[i-1]
				if speed <= 0 {
					return nil, fmt.Errorf("machine: non-positive worker speed %g", speed)
				}
			}
			if cfg.WorkerPowerScale != nil {
				scale := cfg.WorkerPowerScale[i-1]
				if scale <= 0 {
					return nil, fmt.Errorf("machine: non-positive power scale %g", scale)
				}
				model.ActiveAtRef *= scale
			}
		}
		procs[i] = &Processor{
			ID:    i,
			model: model,
			speed: speed,
			mode:  power.ModeStandby,
		}
	}
	var network *ring.Network
	if cfg.RingHopSeconds == 0 {
		ringCfg := ring.PAMA()
		ringCfg.Nodes = sys.N
		network, err = ring.New(ringCfg)
		if err != nil {
			return nil, fmt.Errorf("machine: interconnect: %w", err)
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(workerCount); err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		if cfg.HeartbeatSeconds == 0 {
			cfg.HeartbeatSeconds = mgr.Tau() / 4
		}
		if cfg.MaxTaskRetries == 0 {
			cfg.MaxTaskRetries = 2
		}
		if cfg.MaxTaskRetries < 0 {
			cfg.MaxTaskRetries = 0
		}
		if cfg.CommandRetryLimit == 0 {
			cfg.CommandRetryLimit = 3
		}
		if cfg.CommandRetryLimit < 0 {
			cfg.CommandRetryLimit = 0
		}
		if cfg.RebootSeconds == 0 {
			cfg.RebootSeconds = mgr.Tau() / 8
		}
	}
	b := &Board{
		cfg:        cfg,
		network:    network,
		engine:     sim.NewEngine(),
		mgr:        mgr,
		bat:        bat,
		meter:      NewMeter(),
		procs:      procs,
		detector:   det,
		actual:     actual,
		taskCycles: cycles,
		result:     &Result{},
	}
	if cfg.GangScheduled {
		b.gang = &gangState{}
	}
	if cfg.Faults != nil {
		b.flt = &faultState{plan: cfg.Faults, deathPending: map[int]float64{}}
	}
	// Activation priority: speed per active watt, descending; a
	// uniform fleet keeps ring order (stable sort).
	workers := b.workers()
	b.workerOrder = make([]int, len(workers))
	for i := range b.workerOrder {
		b.workerOrder[i] = i
	}
	effectiveness := func(p *Processor) float64 {
		s := p.speed
		if s == 0 {
			s = 1
		}
		return s / p.model.ActiveAtRef
	}
	sort.SliceStable(b.workerOrder, func(i, j int) bool {
		return effectiveness(workers[b.workerOrder[i]]) > effectiveness(workers[b.workerOrder[j]])
	})
	b.meter.SetLevels(0, b.boardLevels())
	return b, nil
}

// Manager exposes the board's power manager (for inspection).
func (b *Board) Manager() *dpm.Manager { return b.mgr }

// workers returns the non-controller processors.
func (b *Board) workers() []*Processor { return b.procs[1:] }

// boardPower sums every processor's draw plus the system overhead.
func (b *Board) boardPower() float64 {
	return b.boardLevels().Total()
}

// boardLevels splits the current board draw by processor mode.
func (b *Board) boardLevels() EnergyBreakdown {
	levels := EnergyBreakdown{OverheadJ: b.cfg.Manager.Params.System.BoardOverhead}
	for _, p := range b.procs {
		w := p.power()
		switch p.mode {
		case power.ModeActive:
			levels.ActiveJ += w
		case power.ModeSleep:
			levels.SleepJ += w
		default:
			levels.StandbyJ += w
		}
	}
	return levels
}

// updateMeter re-derives the board power after any state change.
func (b *Board) updateMeter() {
	b.meter.SetLevels(b.engine.Now(), b.boardLevels())
}

// Run executes the configured simulation and returns its results.
func (b *Board) Run() (*Result, error) {
	return b.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the event loop
// polls ctx between batches of fired events and aborts with ctx.Err()
// when it is cancelled, so a caller serving untrusted workloads (the
// dpmd /v1/simulate endpoint) can bound a run by deadline. The board
// is not reusable after an aborted run.
func (b *Board) RunContext(ctx context.Context) (*Result, error) {
	tau := b.mgr.Tau()
	slots := b.cfg.Periods * b.mgr.Slots()
	horizon := float64(slots) * tau

	// Schedule the event arrivals within the horizon.
	for _, ev := range b.cfg.Events {
		if ev.Time >= horizon {
			continue
		}
		ev := ev
		b.engine.Schedule(ev.Time, func() { b.onEvent(ev) })
	}
	// Slot boundaries: close the previous slot, open the next.
	for s := 0; s <= slots; s++ {
		s := s
		b.engine.Schedule(float64(s)*tau, func() { b.onSlotBoundary(s, slots) })
	}
	// Fault deliveries and the controller heartbeat (faults only; the
	// fault-free event timeline is untouched).
	if b.flt != nil {
		for _, ev := range b.flt.plan.Events {
			if ev.Time >= horizon {
				continue
			}
			ev := ev
			b.engine.Schedule(ev.Time, func() { b.onFault(ev) })
		}
		b.engine.Schedule(b.cfg.HeartbeatSeconds, b.heartbeat)
	}
	if _, err := b.engine.RunContext(ctx, horizon, 0); err != nil {
		return nil, fmt.Errorf("machine: run aborted: %w", err)
	}

	// Final bookkeeping.
	b.result.Battery = b.bat.Snapshot()
	b.result.EnergyUsed = b.meter.Energy()
	b.result.Energy = b.meter.Breakdown()
	for _, p := range b.workers() {
		b.result.BusySeconds += p.BusySeconds()
		b.result.Workers = append(b.result.Workers, WorkerStats{
			ID:          p.ID,
			TasksDone:   p.TasksDone(),
			BusySeconds: p.BusySeconds(),
			Utilization: p.BusySeconds() / horizon,
		})
	}
	if b.result.TasksCompleted > 0 {
		b.result.MeanLatencySeconds = b.totalLatency / float64(b.result.TasksCompleted)
	}
	if b.flt != nil {
		b.result.Faults = b.flt.stats
	}
	return b.result, nil
}

// onSlotBoundary closes slot s-1 (battery + Algorithm 3) and opens
// slot s (Algorithm 2 command set). The final boundary only closes.
func (b *Board) onSlotBoundary(s, totalSlots int) {
	now := b.engine.Now()
	b.meter.Accumulate(now)
	tau := b.mgr.Tau()

	if s > 0 {
		idx := (s - 1) % b.mgr.Slots()
		usedJ := b.meter.Energy() - b.lastSlotJ
		b.lastSlotJ = b.meter.Energy()
		supplied := b.actual.Values[idx] * tau

		// Supply and load flow simultaneously; only the net moves
		// the battery.
		delivered := b.bat.StepNet(supplied/tau, usedJ/tau, tau)
		switch {
		case b.flt == nil:
			b.mgr.EndSlot(delivered, supplied)
			b.mgr.SyncCharge(b.bat.Charge())
		case b.flt.controllerDown:
			// The controller is mid-reboot: the battery physics
			// continues, the manager misses the accounting and will
			// restore from its checkpoint.
		default:
			// The manager plans from the measurement board's
			// telemetry; a faulted charging sensor feeds it a biased
			// (or zero) supply reading and an untrustworthy charge.
			reported, faulted := b.flt.senseSupplied(now, supplied)
			b.mgr.EndSlot(delivered, reported)
			if !faulted {
				b.mgr.SyncCharge(b.bat.Charge())
			}
		}

		rec := &b.result.Records[len(b.result.Records)-1]
		rec.UsedPower = usedJ / tau
		rec.SuppliedPower = b.actual.Values[idx]
		rec.Charge = b.bat.Charge()
		rec.Backlog = b.backlogSize()
	}
	if s == totalSlots {
		return
	}

	if b.flt != nil && b.flt.controllerDown {
		// Nobody opens the slot: workers keep their last commanded
		// configuration until the controller comes back.
		pt := b.mgr.CurrentPoint()
		b.result.Records = append(b.result.Records, SlotRecord{
			Time:    now,
			TargetN: pt.N,
			TargetF: pt.F,
		})
		return
	}
	planned := b.mgr.PlannedPower()
	point, _ := b.mgr.BeginSlot()
	b.command(point.N, point.F, point.V)
	b.result.Records = append(b.result.Records, SlotRecord{
		Time:    now,
		Planned: planned,
		TargetN: point.N,
		TargetF: point.F,
	})
	if b.flt != nil {
		b.flt.refreshCheckpoint(b.mgr)
	}
}

// command ships the (n, f) configuration to the workers over the
// ring: the n most effective workers (speed per active watt, ID
// order for uniform fleets) stay/become active, the rest drop to
// stand-by. Frequency changes pay the FPGA wake delay.
func (b *Board) command(n int, f, v float64) {
	workers := b.workers()
	if n > len(workers) {
		n = len(workers)
	}
	// Rank the living workers; dead PIMs neither rank nor receive
	// commands (the loop below skips them too, so with no faults this
	// is the original ranking).
	rank := make(map[*Processor]int, len(workers))
	order := 0
	for _, idx := range b.workerOrder {
		if workers[idx].dead {
			continue
		}
		rank[workers[idx]] = order
		order++
	}
	for _, p := range workers {
		p := p
		if p.dead {
			continue
		}
		active := rank[p] < n
		hopDelay := b.commandLatency(p.ID)
		var apply func()
		switch {
		case !active:
			apply = func() { b.setStandby(p) }
		case p.freq == f && p.mode == power.ModeActive:
			// Already configured; nothing to deliver.
		case p.freq == f:
			apply = func() { b.wake(p, f, v) }
		default:
			// Frequency change: write the word, drop to stand-by,
			// FPGA wakes the processor FreqChangeCycles later on
			// the new clock.
			wake := float64(b.cfg.FreqChangeCycles) / f
			apply = func() {
				b.setStandby(p)
				b.engine.ScheduleAfter(wake, func() { b.wake(p, f, v) })
			}
		}
		if apply == nil {
			continue
		}
		if b.flt == nil {
			b.engine.ScheduleAfter(hopDelay, apply)
		} else {
			b.deliverCommand(p, hopDelay, apply, 0)
		}
	}
}

// setStandby pauses the worker's task and parks it in the configured
// idle mode (stand-by, or sleep when IdleSleep keeps the DRAM warm).
func (b *Board) setStandby(p *Processor) {
	if p.dead {
		return
	}
	now := b.engine.Now()
	b.gangAdvance(now)
	p.pause(now)
	if b.cfg.IdleSleep {
		p.mode = power.ModeSleep
	} else {
		p.mode = power.ModeStandby
		p.idleSince = now
	}
	b.updateMeter()
	b.gangReschedule()
}

// wake brings the worker active at (f, v) and resumes or starts work.
// Waking from stand-by (DRAM lost) charges the in-flight task the
// memory-reload penalty; waking from sleep does not.
func (b *Board) wake(p *Processor, f, v float64) {
	if p.dead {
		return
	}
	now := b.engine.Now()
	b.gangAdvance(now)
	p.pause(now)
	if p.mode == power.ModeStandby && p.current != nil &&
		now-p.idleSince > b.cfg.RetentionSeconds {
		p.current.Cycles += float64(b.cfg.MemoryReloadCycles)
	}
	p.mode = power.ModeActive
	p.freq = f
	p.volt = v
	b.updateMeter()
	if b.gang != nil {
		b.gangReschedule()
		return
	}
	b.drainBacklog()
	b.resume(p)
}

// resume restarts the in-flight or next queued task on an active
// worker.
func (b *Board) resume(p *Processor) {
	if p.mode != power.ModeActive || p.freq <= 0 {
		return
	}
	if p.current == nil {
		if len(p.queue) == 0 {
			return
		}
		p.current = p.queue[0]
		p.queue = p.queue[1:]
	}
	p.resumedAt = b.engine.Now()
	task := p.current
	p.completion = b.engine.ScheduleAfter(task.Cycles/p.effectiveRate(), func() { b.complete(p, task) })
}

// complete finishes the worker's current task: run the DSP pipeline
// if configured, record stats, start the next task.
func (b *Board) complete(p *Processor, task *Task) {
	now := b.engine.Now()
	p.busySeconds += now - p.resumedAt
	if b.flt != nil && task.Corrupted {
		// The result check caught an SEU-corrupted pass: the work is
		// discarded and the task retried from scratch.
		b.faultRetry(p, task, now)
		return
	}
	p.current = nil
	p.tasksDone++
	b.result.TasksCompleted++
	b.totalLatency += now - task.Arrived

	if b.cfg.ExecuteDSP {
		b.runDSP(task)
	}
	b.resume(p)
}

// runDSP executes the real fixed-point pipeline for a completed
// capture and records the verdict.
func (b *Board) runDSP(task *Task) {
	buf, err := signal.Synthesize(task.Kind, b.cfg.BufferSamples, b.cfg.Signal, task.Seed)
	if err != nil {
		return
	}
	if res, err := b.detector.Process(buf); err == nil {
		b.result.Detector.Record(res)
		b.result.Confusion.Record(task.Kind == signal.Transient, res.Verdict)
	}
}

// onEvent handles an RF trigger: synthesize the task and assign it,
// unless the capture memory is already full.
func (b *Board) onEvent(ev trace.Event) {
	b.result.EventsArrived++
	if b.cfg.BacklogLimit > 0 && b.backlogSize() >= b.cfg.BacklogLimit {
		b.result.EventsDropped++
		return
	}
	kind := eventKind(ev.Seed, b.cfg.EventMix)
	task := &Task{
		ID:      b.nextTaskID,
		Cycles:  b.taskCycles,
		Work:    b.taskCycles,
		Kind:    kind,
		Seed:    ev.Seed,
		Arrived: b.engine.Now(),
	}
	b.nextTaskID++
	b.assign(task)
}

// assign places a task on the least-loaded active worker, or the
// controller backlog when every worker is dark. In gang mode the
// task joins the single program queue instead.
func (b *Board) assign(task *Task) {
	if b.gang != nil {
		b.gangAssign(task)
		return
	}
	var best *Processor
	for _, p := range b.workers() {
		if p.mode != power.ModeActive || p.freq <= 0 {
			continue
		}
		if best == nil || p.QueueLen() < best.QueueLen() {
			best = p
		}
	}
	if best == nil {
		b.backlog = append(b.backlog, task)
		return
	}
	best.queue = append(best.queue, task)
	if best.current == nil {
		b.resume(best)
	}
}

// drainBacklog redistributes controller-held tasks once workers wake.
func (b *Board) drainBacklog() {
	pending := b.backlog
	b.backlog = nil
	for _, t := range pending {
		b.assign(t)
	}
}

// backlogSize counts all waiting tasks (controller + worker queues +
// in flight).
func (b *Board) backlogSize() int {
	if b.gang != nil {
		return b.gangBacklog()
	}
	n := len(b.backlog)
	for _, p := range b.workers() {
		n += p.QueueLen()
	}
	return n
}

// eventKind derives the signal class from the event seed: a fraction
// mix are transients; the remainder split between carriers and noise
// triggers.
func eventKind(seed int64, mix float64) signal.Kind {
	u := float64(uint64(seed)%1e6) / 1e6
	switch {
	case u < mix:
		return signal.Transient
	case u < mix+(1-mix)/2:
		return signal.Carrier
	default:
		return signal.NoiseOnly
	}
}

// taskCycles returns the modeled cycle cost of one capture's digital
// processing. The paper attributes ~60% of the system's compute to
// the FFT, so a whole task costs FFT cycles / 0.6.
func taskCycles(samples int) (float64, error) {
	c, err := fft.Cycles(samples)
	if err != nil {
		return 0, fmt.Errorf("machine: %w", err)
	}
	return c / 0.6, nil
}

// SortRecords orders slot records by time (they are produced in
// order; this is a convenience for merged reports).
func SortRecords(records []SlotRecord) {
	sort.Slice(records, func(i, j int) bool { return records[i].Time < records[j].Time })
}
