package machine

import (
	"dpm/internal/power"
	"dpm/internal/signal"
	"dpm/internal/sim"
)

// Task is one capture buffer awaiting digital processing: the FFT
// plus the spectral check, measured in processor cycles.
type Task struct {
	// ID is a monotonically increasing identifier.
	ID int
	// Cycles is the remaining work in processor cycles.
	Cycles float64
	// Work is the task's full cycle cost, kept so a fault-corrupted
	// execution can be restarted from scratch.
	Work float64
	// Kind and Seed reproduce the buffer contents for the detector.
	Kind signal.Kind
	Seed int64
	// Arrived is the event's arrival time, for latency accounting.
	Arrived float64
	// Corrupted marks an execution hit by an SEU: the result check
	// at completion fails and the task is retried.
	Corrupted bool
	// Retries counts re-executions after failed result checks.
	Retries int
}

// Processor models one M32R/D PIM: an operating mode, a clock, a
// task queue and enough bookkeeping to bank partially executed work
// across mode and frequency changes.
type Processor struct {
	// ID is the ring position; 0 is the controller.
	ID int

	model power.ProcessorModel
	speed float64 // work retired per cycle, relative to the reference
	mode  power.Mode
	freq  float64
	volt  float64

	current    *Task
	resumedAt  float64
	idleSince  float64 // when the processor last entered stand-by
	completion sim.Handle
	queue      []*Task
	dead       bool // permanent hardware failure (fault injection)

	// Stats.
	busySeconds float64
	tasksDone   int
}

// Mode returns the current operating mode.
func (p *Processor) Mode() power.Mode { return p.mode }

// Frequency returns the current clock in hertz.
func (p *Processor) Frequency() float64 { return p.freq }

// QueueLen returns queued tasks, including the one in progress.
func (p *Processor) QueueLen() int {
	n := len(p.queue)
	if p.current != nil {
		n++
	}
	return n
}

// BusySeconds returns the accumulated active compute time.
func (p *Processor) BusySeconds() float64 { return p.busySeconds }

// TasksDone returns the number of completed tasks.
func (p *Processor) TasksDone() int { return p.tasksDone }

// Dead reports whether the processor has failed permanently.
func (p *Processor) Dead() bool { return p.dead }

// power returns the processor's current draw in watts. A dead chip
// draws nothing.
func (p *Processor) power() float64 {
	if p.dead {
		return 0
	}
	return p.model.Power(p.mode, p.freq, p.volt)
}

// running reports whether the processor is actively executing a task.
func (p *Processor) running() bool {
	return p.mode == power.ModeActive && p.current != nil && p.freq > 0
}

// effectiveRate returns the cycle-retirement rate freq·speed.
func (p *Processor) effectiveRate() float64 {
	s := p.speed
	if s == 0 {
		s = 1
	}
	return p.freq * s
}

// pause banks the in-flight task's progress at time now and cancels
// its completion event. Safe to call in any state.
func (p *Processor) pause(now float64) {
	if p.running() {
		elapsed := now - p.resumedAt
		p.busySeconds += elapsed
		p.current.Cycles -= elapsed * p.effectiveRate()
		if p.current.Cycles < 0 {
			p.current.Cycles = 0
		}
	}
	p.completion.Cancel()
}
