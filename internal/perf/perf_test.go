package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustWorkload(t *testing.T, total, serial float64) Workload {
	t.Helper()
	w, err := NewWorkload(total, serial)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(0, 0); err == nil {
		t.Error("zero total time must be rejected")
	}
	if _, err := NewWorkload(-1, 0); err == nil {
		t.Error("negative total time must be rejected")
	}
	if _, err := NewWorkload(10, -1); err == nil {
		t.Error("negative serial time must be rejected")
	}
	if _, err := NewWorkload(10, 11); err == nil {
		t.Error("serial > total must be rejected")
	}
	if _, err := NewWorkload(10, 10); err != nil {
		t.Error("fully serial workload is legal")
	}
}

func TestEffectiveFrequency(t *testing.T) {
	if EffectiveFrequency(80e6, 40e6) != 40e6 {
		t.Error("voltage cap must bind")
	}
	if EffectiveFrequency(20e6, 40e6) != 20e6 {
		t.Error("requested frequency must bind when below the cap")
	}
}

func TestSpeedupAmdahl(t *testing.T) {
	// 10% serial: classic Amdahl numbers.
	w := mustWorkload(t, 10, 1)
	if got := w.Speedup(1); !approx(got, 1, 1e-12) {
		t.Errorf("Speedup(1) = %g", got)
	}
	// S(n) = 10 / (1 + 9/n)
	if got := w.Speedup(9); !approx(got, 5, 1e-12) {
		t.Errorf("Speedup(9) = %g, want 5", got)
	}
	// Asymptote 1/serial-fraction = 10.
	if got := w.Speedup(1_000_000); got > 10 {
		t.Errorf("Speedup beyond Amdahl asymptote: %g", got)
	}
}

func TestSpeedupFullyParallel(t *testing.T) {
	w := mustWorkload(t, 8, 0)
	if got := w.Speedup(8); !approx(got, 8, 1e-12) {
		t.Errorf("perfectly parallel Speedup(8) = %g", got)
	}
}

func TestSpeedupPanicsOnBadN(t *testing.T) {
	w := mustWorkload(t, 10, 1)
	defer func() {
		if recover() == nil {
			t.Error("Speedup(0) must panic")
		}
	}()
	w.Speedup(0)
}

func TestPerformanceEq3(t *testing.T) {
	w := mustWorkload(t, 10, 1)
	// Perf doubles with frequency until the voltage cap binds.
	p20 := w.Performance(4, 20e6, 80e6)
	p40 := w.Performance(4, 40e6, 80e6)
	if !approx(p40, 2*p20, 1e-9) {
		t.Errorf("Perf(40MHz) = %g, want 2×Perf(20MHz) = %g", p40, 2*p20)
	}
	// Above the cap, g(v) binds.
	pCapped := w.Performance(4, 160e6, 80e6)
	p80 := w.Performance(4, 80e6, 80e6)
	if !approx(pCapped, p80, 1e-9) {
		t.Errorf("Perf above g(v) must be capped: %g vs %g", pCapped, p80)
	}
}

func TestPerformanceMonotoneInN(t *testing.T) {
	w := mustWorkload(t, 10, 1)
	prev := 0.0
	for n := 1; n <= 8; n++ {
		p := w.Performance(n, 80e6, 80e6)
		if p <= prev {
			t.Fatalf("Perf not increasing at n=%d", n)
		}
		prev = p
	}
}

func TestPerformanceAtNominal(t *testing.T) {
	w := mustWorkload(t, 10, 1)
	if got, want := w.PerformanceAtNominal(2, 40e6), w.Performance(2, 40e6, 80e6); !approx(got, want, 1e-9) {
		t.Errorf("nominal = %g, capped-above = %g", got, want)
	}
}

func TestC1Scaling(t *testing.T) {
	w := mustWorkload(t, 10, 1)
	w.C1 = 3
	base := mustWorkload(t, 10, 1)
	if got := w.Performance(2, 40e6, 80e6); !approx(got, 3*base.Performance(2, 40e6, 80e6), 1e-9) {
		t.Errorf("C1 must scale performance linearly: %g", got)
	}
}

func TestExecutionTimePaperCalibration(t *testing.T) {
	// The paper: 2K FFT = 4.8 s at 20 MHz on one processor.
	w := mustWorkload(t, 4.8, 4.8*0.1)
	if got := w.ExecutionTime(1, 20e6, 20e6); !approx(got, 4.8, 1e-12) {
		t.Errorf("reference time = %g, want 4.8", got)
	}
	// Quadruple the clock: a quarter of the time.
	if got := w.ExecutionTime(1, 80e6, 20e6); !approx(got, 1.2, 1e-12) {
		t.Errorf("80 MHz time = %g, want 1.2", got)
	}
}

func TestExecutionTimePanics(t *testing.T) {
	w := mustWorkload(t, 10, 1)
	for name, fn := range map[string]func(){
		"n=0":    func() { w.ExecutionTime(0, 1, 1) },
		"f=0":    func() { w.ExecutionTime(1, 0, 1) },
		"fRef=0": func() { w.ExecutionTime(1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestScalingRatio(t *testing.T) {
	w := mustWorkload(t, 10, 2) // Ts=2, Tt−Ts=8
	if got := w.ScalingRatio(4); !approx(got, 1, 1e-12) {
		t.Errorf("ScalingRatio(4) = %g, want 1", got)
	}
	if w.PreferFrequency(4) {
		t.Error("ratio 1 <= 2: processors should be preferred")
	}
	if !w.PreferFrequency(12) { // 12·2/8 = 3 > 2
		t.Error("ratio 3 > 2: frequency should be preferred")
	}
}

func TestScalingRatioFullySerial(t *testing.T) {
	w := mustWorkload(t, 5, 5)
	if !math.IsInf(w.ScalingRatio(1), 1) {
		t.Error("fully serial workload must have infinite scaling ratio")
	}
	if !w.PreferFrequency(1) {
		t.Error("fully serial workload must always prefer frequency")
	}
}

func TestOptimalProcessorsEq18(t *testing.T) {
	// Tt/Ts = 10 → 2(10−1) = 18, clamped to maxN.
	w := mustWorkload(t, 10, 1)
	if got := w.OptimalProcessors(8); got != 8 {
		t.Errorf("OptimalProcessors clamped = %d, want 8", got)
	}
	if got := w.OptimalProcessors(32); got != 18 {
		t.Errorf("OptimalProcessors = %d, want 18", got)
	}
	// Fully parallel: use everything.
	wp := mustWorkload(t, 10, 0)
	if got := wp.OptimalProcessors(8); got != 8 {
		t.Errorf("fully parallel = %d, want 8", got)
	}
	// Fully serial: 2(1−1) = 0, clamped to 1.
	ws := mustWorkload(t, 10, 10)
	if got := ws.OptimalProcessors(8); got != 1 {
		t.Errorf("fully serial = %d, want 1", got)
	}
}

func TestOptimalProcessorsPanics(t *testing.T) {
	w := mustWorkload(t, 10, 1)
	defer func() {
		if recover() == nil {
			t.Error("maxN < 1 must panic")
		}
	}()
	w.OptimalProcessors(0)
}

// Eq. 14 identity: the marginal ratio equals nTs/(Tt−Ts) + 1 and
// therefore always exceeds 1 whenever serial work exists — the
// paper's Case 1 conclusion.
func TestEquation14Identity(t *testing.T) {
	f := func(totRaw, serRaw float64, nRaw uint8) bool {
		tot := 1 + math.Mod(math.Abs(totRaw), 100)
		ser := math.Mod(math.Abs(serRaw), tot)
		n := 1 + int(nRaw%32)
		if math.IsNaN(tot) || math.IsNaN(ser) || ser == tot {
			return true
		}
		w, err := NewWorkload(tot, ser)
		if err != nil {
			return false
		}
		ratio := w.MarginalPerfPerPowerFreq(n) / w.MarginalPerfPerPowerProc(n)
		want := w.ScalingRatio(n) + 1
		if !approx(ratio, want, 1e-6*want) {
			return false
		}
		return ratio >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: speedup is monotone non-decreasing in n and bounded by
// Amdahl's asymptote Tt/Ts.
func TestSpeedupBoundsProperty(t *testing.T) {
	f := func(serRaw float64, nRaw uint8) bool {
		tot := 100.0
		ser := 1 + math.Mod(math.Abs(serRaw), 98)
		if math.IsNaN(ser) {
			return true
		}
		w, err := NewWorkload(tot, ser)
		if err != nil {
			return false
		}
		n := 1 + int(nRaw%64)
		s := w.Speedup(n)
		sNext := w.Speedup(n + 1)
		return s <= sNext+1e-12 && s <= tot/ser+1e-9 && s >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWorkloadAccessors(t *testing.T) {
	w := mustWorkload(t, 10, 4)
	if w.ParallelTime() != 6 {
		t.Errorf("ParallelTime = %g", w.ParallelTime())
	}
	if !approx(w.SerialFraction(), 0.4, 1e-12) {
		t.Errorf("SerialFraction = %g", w.SerialFraction())
	}
}
