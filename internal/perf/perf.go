// Package perf implements the paper's performance models (§3).
//
// A single processor's throughput is proportional to its effective
// clock, min(f, g(v)) (Eq. 1): frequency only helps until the supply
// voltage can no longer sustain it.
//
// The applications are serial–parallel–serial task graphs (Figure 2),
// so the n-processor speedup follows Amdahl's law: with total
// single-processor work Tt and non-parallelizable work Ts,
//
//	Perf(n)    = c0 / (Ts + (Tt − Ts)/n)             (Eq. 2)
//	Perf(n, f) = c1·min(f, g(v)) / (Ts + (Tt−Ts)/n)  (Eq. 3)
//
// This package also exposes the quantity nTs/(Tt−Ts) that decides,
// in §4.2, whether raising frequency or adding processors buys more
// performance per watt.
package perf

import (
	"fmt"
	"math"
)

// Workload describes one application run as the paper's Figure 2 task
// graph: a serial prologue/epilogue plus a perfectly parallel middle.
type Workload struct {
	// TotalTime is Tt: execution time of the whole task on one
	// processor at the reference frequency, in seconds.
	TotalTime float64
	// SerialTime is Ts: the part of TotalTime that cannot be
	// parallelized, in seconds. 0 <= SerialTime <= TotalTime.
	SerialTime float64
	// C1 is the proportionality constant of Eq. 3. A zero value
	// means 1.
	C1 float64
}

// NewWorkload validates and returns a workload. TotalTime must be
// positive and SerialTime within [0, TotalTime].
func NewWorkload(totalTime, serialTime float64) (Workload, error) {
	if totalTime <= 0 {
		return Workload{}, fmt.Errorf("perf: non-positive total time %g", totalTime)
	}
	if serialTime < 0 || serialTime > totalTime {
		return Workload{}, fmt.Errorf("perf: serial time %g outside [0, %g]", serialTime, totalTime)
	}
	return Workload{TotalTime: totalTime, SerialTime: serialTime, C1: 1}, nil
}

// ParallelTime returns Tt − Ts, the parallelizable work.
func (w Workload) ParallelTime() float64 { return w.TotalTime - w.SerialTime }

// SerialFraction returns Ts/Tt, the Amdahl serial fraction.
func (w Workload) SerialFraction() float64 { return w.SerialTime / w.TotalTime }

// c1 returns the proportionality constant, defaulting to 1.
func (w Workload) c1() float64 {
	if w.C1 == 0 {
		return 1
	}
	return w.C1
}

// EffectiveFrequency returns min(f, gOfV) per Eq. 1: the throughput-
// relevant clock given the requested frequency f and the maximum
// frequency g(v) the supply voltage sustains.
func EffectiveFrequency(f, gOfV float64) float64 {
	return math.Min(f, gOfV)
}

// Speedup returns the Amdahl speedup of n processors over one:
// Tt / (Ts + (Tt−Ts)/n).
func (w Workload) Speedup(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("perf: speedup of %d processors", n))
	}
	return w.TotalTime / w.parallelDenominator(n)
}

// parallelDenominator returns Ts + (Tt − Ts)/n.
func (w Workload) parallelDenominator(n int) float64 {
	return w.SerialTime + w.ParallelTime()/float64(n)
}

// Performance returns Eq. 3's Perf(n, f) with the effective clock
// min(f, gOfV) in hertz. Larger is better; the unit is
// "reference-clock work per second" scaled by C1.
func (w Workload) Performance(n int, f, gOfV float64) float64 {
	if n < 1 {
		panic(fmt.Sprintf("perf: performance of %d processors", n))
	}
	return w.c1() * EffectiveFrequency(f, gOfV) / w.parallelDenominator(n)
}

// PerformanceAtNominal is Performance with no voltage cap (g(v) = +inf),
// matching Eq. 2 scaled by frequency.
func (w Workload) PerformanceAtNominal(n int, f float64) float64 {
	return w.Performance(n, f, math.Inf(1))
}

// ExecutionTime returns the wall-clock time for one task instance on
// n processors at frequency f, relative to the reference frequency
// fRef at which TotalTime/SerialTime were measured:
//
//	time = (Ts + (Tt − Ts)/n) · fRef/f
//
// The paper's 2K-sample FFT measures 4.8 s at 20 MHz; this method
// reproduces e.g. 1.2 s at 80 MHz for the same serial profile.
func (w Workload) ExecutionTime(n int, f, fRef float64) float64 {
	if n < 1 {
		panic(fmt.Sprintf("perf: execution time on %d processors", n))
	}
	if f <= 0 || fRef <= 0 {
		panic(fmt.Sprintf("perf: non-positive frequency %g/%g", f, fRef))
	}
	return w.parallelDenominator(n) * fRef / f
}

// ScalingRatio returns nTs/(Tt − Ts), the quantity the paper's §4.2
// derivations compare against thresholds to decide whether frequency
// or processor count is the better lever:
//
//   - f <  g(vmin) (Case 1): the ratio is positive, so Eq. 14's
//     quotient exceeds 1 and frequency always wins.
//   - f >= g(vmin) (Case 2): Eq. 17 prefers frequency when the ratio
//     exceeds 2 and more processors otherwise.
//
// It returns +Inf for a fully serial workload (Tt == Ts), where more
// processors can never help.
func (w Workload) ScalingRatio(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("perf: scaling ratio of %d processors", n))
	}
	par := w.ParallelTime()
	if par == 0 {
		return math.Inf(1)
	}
	return float64(n) * w.SerialTime / par
}

// PreferFrequency reports whether, at the operating point (n,
// f >= g(vmin)), raising frequency yields more performance per watt
// than adding a processor — the Eq. 17 test nTs/(Tt−Ts) > 2.
func (w Workload) PreferFrequency(n int) bool {
	return w.ScalingRatio(n) > 2
}

// OptimalProcessors returns the paper's Eq. 18 crossover count
// 2(Tt/Ts − 1): beyond this, adding processors is no longer the
// better lever. It returns maxN for a fully parallel workload
// (Ts == 0) and 1 for a fully serial one, both clamped to [1, maxN].
func (w Workload) OptimalProcessors(maxN int) int {
	if maxN < 1 {
		panic(fmt.Sprintf("perf: maxN %d", maxN))
	}
	if w.SerialTime == 0 {
		return maxN
	}
	n := int(math.Floor(2 * (w.TotalTime/w.SerialTime - 1)))
	if n < 1 {
		n = 1
	}
	if n > maxN {
		n = maxN
	}
	return n
}

// MarginalPerfPerPowerFreq returns ∂Perf/∂Power when power is spent
// on frequency at constant n, in the sub-vmin regime (Eq. 12, with
// the constant c2·v² factored out): c1/(nTs + Tt − Ts). Exposed so
// tests and ablation benches can validate the §4.2 derivation
// numerically.
func (w Workload) MarginalPerfPerPowerFreq(n int) float64 {
	nd := float64(n) * w.parallelDenominator(n) // = nTs + Tt − Ts
	return w.c1() / nd
}

// MarginalPerfPerPowerProc returns ∂Perf/∂Power when power is spent
// on processors at constant f, in the sub-vmin regime (Eq. 13, same
// normalization): c1(Tt−Ts)/(nTs + Tt − Ts)².
//
// The ratio Freq/Proc equals nTs/(Tt−Ts) + 1 (Eq. 14), which exceeds
// one whenever any serial work exists — the paper's Case 1 result
// that frequency always beats processor count below g(vmin).
func (w Workload) MarginalPerfPerPowerProc(n int) float64 {
	nd := float64(n) * w.parallelDenominator(n)
	return w.c1() * w.ParallelTime() / (nd * nd)
}
