// Package faults defines deterministic, reproducible fault plans for
// the PAMA board simulation. The paper's target platform is a
// satellite signal processor, where radiation upsets, dead PIMs and
// sensor dropouts are the operating norm; this package provides the
// fault vocabulary the machine model injects and the manager must
// degrade gracefully under:
//
//   - WorkerDeath: a PIM fails permanently; the controller's
//     heartbeat notices, shrinks the fleet and triggers a degraded
//     re-plan with the processor count capped.
//   - TaskSEU: a single-event upset corrupts the task in flight on a
//     worker; the result check at completion detects the garbage and
//     the task is re-executed with bounded retries.
//   - CommandLoss: a ring mode/frequency command is dropped in
//     transit; the controller retries after a timeout with backoff
//     measured in ring-hop latencies.
//   - SensorDropout / SensorBias: the charging-telemetry sensor reads
//     zero (dropout) or a scaled value (bias) for a window; the
//     manager plans from the faulted telemetry while the battery sees
//     the true supply.
//   - ControllerReboot: the controller's watchdog fires; after a
//     short outage it restores from its last dpm.State checkpoint and
//     resumes mid-period.
//
// A Plan is either hand-built (Add) or drawn from per-class Poisson
// processes (Generate); both are fully determined by their inputs, so
// every faulted run is reproducible from a seed.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind enumerates the fault classes.
type Kind int

const (
	// WorkerDeath permanently kills the target worker PIM.
	WorkerDeath Kind = iota
	// TaskSEU corrupts the task in flight on the target worker.
	TaskSEU
	// CommandLoss drops the next ring command addressed to the
	// target worker.
	CommandLoss
	// SensorDropout makes the charging telemetry read zero for
	// Duration seconds.
	SensorDropout
	// SensorBias scales the charging telemetry by Bias for Duration
	// seconds.
	SensorBias
	// ControllerReboot fires the controller's watchdog; the
	// controller restores from its last checkpoint after the outage.
	ControllerReboot
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case WorkerDeath:
		return "worker-death"
	case TaskSEU:
		return "task-seu"
	case CommandLoss:
		return "command-loss"
	case SensorDropout:
		return "sensor-dropout"
	case SensorBias:
		return "sensor-bias"
	case ControllerReboot:
		return "controller-reboot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// targetsWorker reports whether the kind addresses a specific PIM.
func (k Kind) targetsWorker() bool {
	return k == WorkerDeath || k == TaskSEU || k == CommandLoss
}

// Event is one scheduled fault.
type Event struct {
	// Time is the injection time in seconds from simulation start.
	Time float64
	// Kind is the fault class.
	Kind Kind
	// Worker is the target PIM's ring position (1..workers) for the
	// worker-targeted kinds; ignored otherwise.
	Worker int
	// Duration is the telemetry-fault window length in seconds
	// (SensorDropout, SensorBias).
	Duration float64
	// Bias is the multiplicative telemetry factor for SensorBias.
	Bias float64
}

// String renders the event compactly.
func (e Event) String() string {
	switch {
	case e.Kind.targetsWorker():
		return fmt.Sprintf("%s@%.2fs worker %d", e.Kind, e.Time, e.Worker)
	case e.Kind == SensorBias:
		return fmt.Sprintf("%s@%.2fs ×%.2f for %.2fs", e.Kind, e.Time, e.Bias, e.Duration)
	case e.Kind == SensorDropout:
		return fmt.Sprintf("%s@%.2fs for %.2fs", e.Kind, e.Time, e.Duration)
	default:
		return fmt.Sprintf("%s@%.2fs", e.Kind, e.Time)
	}
}

// Plan is a deterministic fault schedule, sorted by injection time.
type Plan struct {
	// Events holds the scheduled faults.
	Events []Event
}

// Add appends an event and returns the plan for chaining. Call Sort
// (or let Validate check ordering) after hand-building.
func (p *Plan) Add(ev Event) *Plan {
	p.Events = append(p.Events, ev)
	return p
}

// Len returns the number of scheduled faults.
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Events)
}

// Sort orders events by time, stably, so simultaneous faults keep
// their insertion order.
func (p *Plan) Sort() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Time < p.Events[j].Time })
}

// Count returns the number of events of the given kind.
func (p *Plan) Count(kind Kind) int {
	n := 0
	for _, ev := range p.Events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// DistinctDeaths returns the number of distinct workers killed by the
// plan — the capability the board permanently loses.
func (p *Plan) DistinctDeaths() int {
	dead := map[int]bool{}
	for _, ev := range p.Events {
		if ev.Kind == WorkerDeath {
			dead[ev.Worker] = true
		}
	}
	return len(dead)
}

// Validate checks the plan against a board with the given worker
// count (ring positions 1..workers).
func (p *Plan) Validate(workers int) error {
	if workers < 1 {
		return fmt.Errorf("faults: board has %d workers", workers)
	}
	for i, ev := range p.Events {
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) || ev.Time < 0 {
			return fmt.Errorf("faults: event %d (%s) at invalid time %g", i, ev.Kind, ev.Time)
		}
		if ev.Kind < WorkerDeath || ev.Kind > ControllerReboot {
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(ev.Kind))
		}
		if ev.Kind.targetsWorker() && (ev.Worker < 1 || ev.Worker > workers) {
			return fmt.Errorf("faults: event %d (%s) targets worker %d outside [1, %d]",
				i, ev.Kind, ev.Worker, workers)
		}
		if ev.Kind == SensorDropout || ev.Kind == SensorBias {
			if math.IsNaN(ev.Duration) || math.IsInf(ev.Duration, 0) || ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (%s) has invalid duration %g", i, ev.Kind, ev.Duration)
			}
		}
		if ev.Kind == SensorBias && (math.IsNaN(ev.Bias) || math.IsInf(ev.Bias, 0) || ev.Bias < 0) {
			return fmt.Errorf("faults: event %d has invalid bias %g", i, ev.Bias)
		}
	}
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].Time < p.Events[i-1].Time {
			return fmt.Errorf("faults: events out of order at %d (%.3f s after %.3f s); call Sort",
				i, p.Events[i].Time, p.Events[i-1].Time)
		}
	}
	return nil
}

// GenConfig parameterizes Generate. Each class is an independent
// Poisson process with the given rate in expected events per second;
// a zero rate disables the class.
type GenConfig struct {
	// Horizon is the simulated time span covered by the plan in
	// seconds.
	Horizon float64
	// Workers is the worker count; targets are drawn uniformly from
	// ring positions 1..Workers.
	Workers int
	// DeathRate, SEURate, CommandLossRate, SensorRate and RebootRate
	// are the per-class intensities in events per second.
	DeathRate, SEURate, CommandLossRate, SensorRate, RebootRate float64
	// SensorDuration is the mean telemetry-fault window in seconds;
	// windows are drawn exponentially around it. Zero means 10 s.
	SensorDuration float64
	// BiasSpread bounds the multiplicative bias of non-dropout
	// sensor faults: bias is uniform in [1−s, 1+s]. Zero means 0.5.
	BiasSpread float64
	// MaxDeaths caps permanent worker deaths so the board is never
	// annihilated. Zero means Workers−1 (at least one survivor).
	MaxDeaths int
}

func (c GenConfig) validate() error {
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("faults: invalid horizon %g", c.Horizon)
	}
	if c.Workers < 1 {
		return fmt.Errorf("faults: %d workers", c.Workers)
	}
	for _, r := range []float64{c.DeathRate, c.SEURate, c.CommandLossRate, c.SensorRate, c.RebootRate} {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("faults: invalid rate %g", r)
		}
	}
	if c.SensorDuration < 0 || c.BiasSpread < 0 || c.BiasSpread >= 1 {
		return fmt.Errorf("faults: invalid sensor parameters (duration %g, spread %g)",
			c.SensorDuration, c.BiasSpread)
	}
	if c.MaxDeaths < 0 || c.MaxDeaths > c.Workers {
		return fmt.Errorf("faults: MaxDeaths %d outside [0, %d]", c.MaxDeaths, c.Workers)
	}
	return nil
}

// Generate draws a fault plan from per-class Poisson processes. The
// result is fully determined by cfg and seed: classes are drawn in a
// fixed order from a single generator, then merged by time.
func Generate(cfg GenConfig, seed int64) (*Plan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.SensorDuration == 0 {
		cfg.SensorDuration = 10
	}
	if cfg.BiasSpread == 0 {
		cfg.BiasSpread = 0.5
	}
	maxDeaths := cfg.MaxDeaths
	if maxDeaths == 0 {
		maxDeaths = cfg.Workers - 1
	}

	rng := rand.New(rand.NewSource(seed))
	plan := &Plan{}

	// Arrival times of one Poisson process over the horizon.
	arrivals := func(rate float64) []float64 {
		var ts []float64
		if rate <= 0 {
			return ts
		}
		t := 0.0
		for {
			t += rng.ExpFloat64() / rate
			if t >= cfg.Horizon {
				return ts
			}
			ts = append(ts, t)
		}
	}

	// Deaths: distinct victims, capped so the board survives.
	dead := map[int]bool{}
	for _, t := range arrivals(cfg.DeathRate) {
		if len(dead) >= maxDeaths {
			break
		}
		w := rng.Intn(cfg.Workers) + 1
		for dead[w] {
			w = rng.Intn(cfg.Workers) + 1
		}
		dead[w] = true
		plan.Add(Event{Time: t, Kind: WorkerDeath, Worker: w})
	}
	for _, t := range arrivals(cfg.SEURate) {
		plan.Add(Event{Time: t, Kind: TaskSEU, Worker: rng.Intn(cfg.Workers) + 1})
	}
	for _, t := range arrivals(cfg.CommandLossRate) {
		plan.Add(Event{Time: t, Kind: CommandLoss, Worker: rng.Intn(cfg.Workers) + 1})
	}
	for _, t := range arrivals(cfg.SensorRate) {
		dur := rng.ExpFloat64() * cfg.SensorDuration
		if dur < 1e-3 {
			dur = 1e-3
		}
		if rng.Float64() < 0.5 {
			plan.Add(Event{Time: t, Kind: SensorDropout, Duration: dur})
		} else {
			bias := 1 + cfg.BiasSpread*(2*rng.Float64()-1)
			plan.Add(Event{Time: t, Kind: SensorBias, Duration: dur, Bias: bias})
		}
	}
	for _, t := range arrivals(cfg.RebootRate) {
		plan.Add(Event{Time: t, Kind: ControllerReboot})
	}

	plan.Sort()
	return plan, nil
}
