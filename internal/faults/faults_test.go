package faults

import (
	"math"
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Horizon:         115.2,
		Workers:         7,
		DeathRate:       0.02,
		SEURate:         0.05,
		CommandLossRate: 0.05,
		SensorRate:      0.02,
		RebootRate:      0.01,
	}
	a, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must yield identical plans")
	}
	c, err := Generate(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() > 0 && reflect.DeepEqual(a, c) {
		t.Fatal("different seeds yielded identical non-empty plans")
	}
	if err := a.Validate(7); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
}

func TestGenerateSorted(t *testing.T) {
	p, err := Generate(GenConfig{
		Horizon: 500, Workers: 7,
		DeathRate: 0.01, SEURate: 0.1, CommandLossRate: 0.1,
		SensorRate: 0.05, RebootRate: 0.02,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].Time < p.Events[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
	if p.Len() == 0 {
		t.Fatal("expected a non-empty plan at these rates")
	}
}

func TestGenerateDeathCap(t *testing.T) {
	p, err := Generate(GenConfig{Horizon: 1e4, Workers: 3, DeathRate: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.DistinctDeaths(); d > 2 {
		t.Fatalf("deaths = %d, want at most workers-1 = 2", d)
	}
	p, err = Generate(GenConfig{Horizon: 1e4, Workers: 5, DeathRate: 1, MaxDeaths: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.DistinctDeaths(); d != 1 {
		t.Fatalf("deaths = %d, want MaxDeaths = 1", d)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Horizon: 0, Workers: 7},
		{Horizon: 10, Workers: 0},
		{Horizon: 10, Workers: 7, DeathRate: -1},
		{Horizon: 10, Workers: 7, SEURate: math.NaN()},
		{Horizon: 10, Workers: 7, BiasSpread: 1.5},
		{Horizon: 10, Workers: 7, MaxDeaths: 8},
		{Horizon: math.Inf(1), Workers: 7},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := (&Plan{}).
		Add(Event{Time: 1, Kind: WorkerDeath, Worker: 3}).
		Add(Event{Time: 2, Kind: SensorBias, Duration: 5, Bias: 0.7}).
		Add(Event{Time: 3, Kind: ControllerReboot})
	if err := good.Validate(7); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}

	cases := []struct {
		name string
		plan *Plan
	}{
		{"negative time", (&Plan{}).Add(Event{Time: -1, Kind: ControllerReboot})},
		{"NaN time", (&Plan{}).Add(Event{Time: math.NaN(), Kind: TaskSEU, Worker: 1})},
		{"worker zero", (&Plan{}).Add(Event{Time: 1, Kind: WorkerDeath, Worker: 0})},
		{"worker out of range", (&Plan{}).Add(Event{Time: 1, Kind: CommandLoss, Worker: 8})},
		{"zero duration", (&Plan{}).Add(Event{Time: 1, Kind: SensorDropout})},
		{"negative bias", (&Plan{}).Add(Event{Time: 1, Kind: SensorBias, Duration: 1, Bias: -2})},
		{"unknown kind", (&Plan{}).Add(Event{Time: 1, Kind: Kind(99)})},
		{"out of order", (&Plan{}).
			Add(Event{Time: 5, Kind: ControllerReboot}).
			Add(Event{Time: 1, Kind: ControllerReboot})},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(7); err == nil {
			t.Errorf("%s must be rejected", tc.name)
		}
	}
}

func TestPlanHelpers(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Len() != 0 {
		t.Error("nil plan must have length 0")
	}
	p := (&Plan{}).
		Add(Event{Time: 2, Kind: WorkerDeath, Worker: 1}).
		Add(Event{Time: 1, Kind: WorkerDeath, Worker: 1}).
		Add(Event{Time: 3, Kind: TaskSEU, Worker: 2})
	p.Sort()
	if p.Events[0].Time != 1 {
		t.Error("Sort did not order by time")
	}
	if p.Count(WorkerDeath) != 2 {
		t.Errorf("Count(WorkerDeath) = %d", p.Count(WorkerDeath))
	}
	if p.DistinctDeaths() != 1 {
		t.Errorf("DistinctDeaths = %d, want 1 (same worker twice)", p.DistinctDeaths())
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{WorkerDeath, TaskSEU, CommandLoss, SensorDropout, SensorBias, ControllerReboot}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(42).String() == ControllerReboot.String() {
		t.Error("unknown kind collides with a named one")
	}
}

func TestEventString(t *testing.T) {
	for _, ev := range []Event{
		{Time: 1, Kind: WorkerDeath, Worker: 2},
		{Time: 1, Kind: SensorDropout, Duration: 3},
		{Time: 1, Kind: SensorBias, Duration: 3, Bias: 0.8},
		{Time: 1, Kind: ControllerReboot},
	} {
		if ev.String() == "" {
			t.Errorf("empty String for %v kind", ev.Kind)
		}
	}
}
