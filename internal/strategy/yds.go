package strategy

import (
	"context"
	"math"

	"dpm/internal/alloc"
	"dpm/internal/pipeline"
	"dpm/internal/schedule"
)

func init() { pipeline.RegisterStrategy(ydsStrategy{}) }

// ydsStrategy is YDS-style speed scaling adapted to the recharging
// battery: instead of job release/deadline intervals, the constraint
// is the battery band, and instead of minimizing energy for fixed
// work, the plan spends exactly the period's supply (ending the
// period at the initial charge — periodic steady state) while
// minimizing any convex cost of the per-slot power.
//
// Geometry: with cumulative supply S(k) = Σ c·τ and cumulative
// allocation A(k), the battery at boundary k is
// initial + S(k) − A(k); keeping it in [Cmin, Cmax] confines A to the
// corridor [initial + S(k) − Cmax, initial + S(k) − Cmin]. The taut
// string (shortest path) from (0, 0) to (n, S(n)) through that
// corridor has, among all feasible cumulative allocations, the
// minimal value of Σ g(a(k)) for every convex g — the same
// structural argument as YDS's optimality — and because both corridor
// envelopes are non-decreasing (c ≥ 0) the string never descends, so
// the per-slot powers are non-negative.
type ydsStrategy struct{}

func (ydsStrategy) Name() string { return "yds" }

func (ydsStrategy) Describe() string {
	return "YDS-style speed scaling: taut-string allocation through the battery corridor (Barcelo et al.)"
}

func (ydsStrategy) Capabilities() pipeline.Capabilities {
	// The taut string is closed-form (no iterative driver) and uses
	// the demand schedule only through its total, which Eq. 8
	// balancing makes equal to the supply total anyway.
	return pipeline.Capabilities{}
}

func (ydsStrategy) Plan(_ context.Context, spec pipeline.PlanSpec) (*alloc.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := spec.Scenario
	cmin, cmax, initial := clampBand(s.CapacityMin, s.CapacityMax, s.InitialCharge, spec.Margin)

	charging := s.Charging
	n := charging.Len()
	tau := charging.Step

	// Cumulative supply S and the corridor envelopes for A.
	S := make([]float64, n+1)
	for k := 0; k < n; k++ {
		S[k+1] = S[k] + charging.Values[k]*tau
	}
	end := S[n] // A(n): spend exactly the period's supply

	// Taut string: repeatedly extend the longest straight segment
	// from the current anchor; when the corridor pinches, bend at
	// whichever envelope constrained first and restart there.
	A := make([]float64, n+1)
	j0, a0 := 0, 0.0
	for j0 < n {
		minUp, maxLo := math.Inf(1), math.Inf(-1)
		upJ, loJ := -1, -1
		var upV, loV float64
		bendJ, bendV := -1, 0.0
		for j := j0 + 1; j <= n; j++ {
			lo := initial + S[j] - cmax
			up := initial + S[j] - cmin
			if j == n {
				lo, up = end, end
			}
			dj := float64(j - j0)
			if sUp := (up - a0) / dj; sUp < minUp {
				minUp, upJ, upV = sUp, j, up
			}
			if sLo := (lo - a0) / dj; sLo > maxLo {
				maxLo, loJ, loV = sLo, j, lo
			}
			if eps := 1e-12 * (1 + math.Abs(maxLo) + math.Abs(minUp)); maxLo > minUp+eps {
				if upJ < loJ {
					bendJ, bendV = upJ, upV
				} else {
					bendJ, bendV = loJ, loV
				}
				break
			}
		}
		if bendJ < 0 {
			bendJ, bendV = n, end
		}
		slope := (bendV - a0) / float64(bendJ-j0)
		for j := j0 + 1; j <= bendJ; j++ {
			A[j] = a0 + slope*float64(j-j0)
		}
		j0, a0 = bendJ, bendV
	}

	values := make([]float64, n)
	for k := 0; k < n; k++ {
		values[k] = (A[k+1] - A[k]) / tau
	}
	plan := schedule.NewGrid(tau, values).ClampNonNegative()
	res := alloc.ResultFromPlan(charging, plan, initial, cmin, cmax, 0)
	res.Iterations = []alloc.Iteration{{
		Allocation: plan,
		Trajectory: res.Trajectory,
		Violations: countViolations(res.Trajectory, cmin, cmax, 1e-9),
	}}
	return res, nil
}
