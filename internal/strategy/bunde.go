package strategy

import (
	"context"

	"dpm/internal/alloc"
	"dpm/internal/pipeline"
)

func init() { pipeline.RegisterStrategy(bundeStrategy{}) }

// bundeStrategy is a power-aware makespan scheduler after Bunde: for
// a convex power/speed relationship, the makespan-optimal schedule
// under an energy budget runs at constant speed, so the planner makes
// the per-slot power as constant as the battery band allows.
//
// The construction: balance the weighted demand to the supply total
// (Eq. 7/8), project it feasible with the greedy forward pass
// (alloc.Repair), then level the allocation to its mean between the
// slot boundaries where the repaired trajectory pins against Cmin or
// Cmax — those are the only points a speed change buys anything — and
// repair once more to absorb the leveling's own violations. The
// result is piecewise-constant power with the fewest speed levels the
// band admits.
type bundeStrategy struct{}

func (bundeStrategy) Name() string { return "bunde" }

func (bundeStrategy) Describe() string {
	return "power-aware makespan scheduling: piecewise-constant power between battery-binding slots (Bunde)"
}

func (bundeStrategy) Capabilities() pipeline.Capabilities {
	// Non-iterative; the demand schedule shapes where the band binds
	// (through the repair pass) but not the within-segment profile.
	return pipeline.Capabilities{}
}

func (bundeStrategy) Plan(_ context.Context, spec pipeline.PlanSpec) (*alloc.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := spec.Scenario
	cmin, cmax, initial := clampBand(s.CapacityMin, s.CapacityMax, s.InitialCharge, spec.Margin)
	charging := s.Charging

	balanced, err := alloc.Balance(alloc.WPUF(s.Usage, s.Weight), charging)
	if err != nil {
		return nil, err
	}
	repaired := alloc.Repair(charging, balanced, initial, cmin, cmax)
	traj := alloc.Trajectory(charging, repaired, initial)

	// Segment boundaries: slot boundaries where the repaired
	// trajectory pins against the band (within a whisker of Cmin or
	// Cmax), plus the period's ends.
	n := repaired.Len()
	eps := 1e-9 * (1 + cmax - cmin)
	bounds := []int{0}
	for k := 1; k < n; k++ {
		if traj[k] <= cmin+eps || traj[k] >= cmax-eps {
			bounds = append(bounds, k)
		}
	}
	bounds = append(bounds, n)

	leveled := repaired.Clone()
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		sum := 0.0
		for k := a; k < b; k++ {
			sum += leveled.Values[k]
		}
		mean := sum / float64(b-a)
		for k := a; k < b; k++ {
			leveled.Values[k] = mean
		}
	}
	final := alloc.Repair(charging, leveled, initial, cmin, cmax)

	res := alloc.ResultFromPlan(charging, final, initial, cmin, cmax, 0)
	res.Iterations = []alloc.Iteration{
		{Allocation: balanced, Trajectory: alloc.Trajectory(charging, balanced, initial),
			Violations: countViolations(alloc.Trajectory(charging, balanced, initial), cmin, cmax, 1e-9)},
		{Allocation: leveled, Trajectory: alloc.Trajectory(charging, leveled, initial),
			Violations: countViolations(alloc.Trajectory(charging, leveled, initial), cmin, cmax, 1e-9)},
		{Allocation: final, Trajectory: res.Trajectory,
			Violations: countViolations(res.Trajectory, cmin, cmax, 1e-9)},
	}
	return res, nil
}
