package strategy

import (
	"context"
	"math"
	"testing"

	"dpm/internal/alloc"
	"dpm/internal/dpm"
	"dpm/internal/pipeline"
	"dpm/internal/scenario"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// planAll plans one scenario with every registered backend.
func planAll(t *testing.T, s trace.Scenario) map[string]*alloc.Result {
	t.Helper()
	out := map[string]*alloc.Result{}
	for _, name := range pipeline.Strategies() {
		res, err := pipeline.PlanWith(context.Background(), name, pipeline.PlanSpec{Scenario: s})
		if err != nil {
			t.Fatalf("strategy %s on scenario %s: %v", name, s.Name, err)
		}
		out[name] = res
	}
	return out
}

// TestRegistryHasAllBackends pins the registered set: the paper
// default plus the two alternatives.
func TestRegistryHasAllBackends(t *testing.T) {
	got := pipeline.Strategies()
	want := []string{"bunde", "paper", "yds"}
	if len(got) != len(want) {
		t.Fatalf("registered strategies %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered strategies %v, want %v", got, want)
		}
	}
	if _, err := pipeline.StrategyByName(""); err != nil {
		t.Fatalf("default resolution: %v", err)
	}
	if _, err := pipeline.StrategyByName("nope"); err == nil {
		t.Fatal("unknown strategy resolved")
	}
}

// TestBackendsFeasibleOnPaperScenarios checks every backend yields a
// feasible plan on both paper scenarios, on the charging grid's
// shape, with only non-negative powers.
func TestBackendsFeasibleOnPaperScenarios(t *testing.T) {
	for _, s := range trace.Scenarios() {
		for name, res := range planAll(t, s) {
			if !res.Feasible {
				t.Errorf("%s on %s: infeasible plan, trajectory %v", name, s.Name, res.Trajectory)
			}
			if res.Allocation.Len() != s.Charging.Len() || res.Allocation.Step != s.Charging.Step {
				t.Errorf("%s on %s: plan grid (τ=%g, %d) does not match charging (τ=%g, %d)",
					name, s.Name, res.Allocation.Step, res.Allocation.Len(), s.Charging.Step, s.Charging.Len())
			}
			for i, v := range res.Allocation.Values {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s on %s: allocation[%d] = %g", name, s.Name, i, v)
				}
			}
			if len(res.Iterations) == 0 {
				t.Errorf("%s on %s: empty iteration history", name, s.Name)
			}
		}
	}
}

// TestYDSPeriodicSteadyState: the taut-string plan spends exactly the
// period's supply, so the trajectory ends where it started and the
// plan sustains indefinitely.
func TestYDSPeriodicSteadyState(t *testing.T) {
	for _, s := range trace.Scenarios() {
		res, err := pipeline.PlanWith(context.Background(), "yds", pipeline.PlanSpec{Scenario: s})
		if err != nil {
			t.Fatal(err)
		}
		traj := res.Trajectory
		if d := math.Abs(traj[len(traj)-1] - traj[0]); d > 1e-6 {
			t.Errorf("scenario %s: trajectory ends %g J from its start", s.Name, d)
		}
	}
}

// TestYDSMinimizesConvexCost: the taut string minimizes every convex
// function of per-slot power among feasible steady-state plans, so
// its sum of squared powers must not exceed the paper heuristic's on
// any scenario where the paper plan is also feasible and
// steady-state.
func TestYDSMinimizesConvexCost(t *testing.T) {
	sumSq := func(g *schedule.Grid) float64 {
		s := 0.0
		for _, v := range g.Values {
			s += v * v
		}
		return s
	}
	for _, s := range trace.Scenarios() {
		plans := planAll(t, s)
		paper, yds := plans["paper"], plans["yds"]
		pt := paper.Trajectory
		if !paper.Feasible || math.Abs(pt[len(pt)-1]-pt[0]) > 1e-6 {
			continue // paper plan not comparable on this scenario
		}
		if got, bound := sumSq(yds.Allocation), sumSq(paper.Allocation); got > bound+1e-6 {
			t.Errorf("scenario %s: yds Σa² = %g exceeds paper's %g", s.Name, got, bound)
		}
	}
}

// TestBundePiecewiseConstant: the bunde plan changes power only at
// battery-binding boundaries — far fewer distinct levels than slots.
func TestBundePiecewiseConstant(t *testing.T) {
	for _, s := range trace.Scenarios() {
		res, err := pipeline.PlanWith(context.Background(), "bunde", pipeline.PlanSpec{Scenario: s})
		if err != nil {
			t.Fatal(err)
		}
		changes := 0
		for i := 1; i < res.Allocation.Len(); i++ {
			if math.Abs(res.Allocation.Values[i]-res.Allocation.Values[i-1]) > 1e-9 {
				changes++
			}
		}
		if changes >= res.Allocation.Len()-1 {
			t.Errorf("scenario %s: bunde plan has %d level changes over %d slots — not piecewise constant",
				s.Name, changes, res.Allocation.Len())
		}
	}
}

// TestBackendsHonorMargin: with a planning margin the trajectory must
// stay inside the shrunk band.
func TestBackendsHonorMargin(t *testing.T) {
	const margin = 0.1
	for _, s := range trace.Scenarios() {
		band := s.CapacityMax - s.CapacityMin
		cmin := s.CapacityMin + margin*band
		cmax := s.CapacityMax - margin*band
		for _, name := range []string{"yds", "bunde"} {
			res, err := pipeline.PlanWith(context.Background(), name, pipeline.PlanSpec{Scenario: s, Margin: margin})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range res.Trajectory {
				if v < cmin-1e-9 || v > cmax+1e-9 {
					t.Errorf("%s on %s with margin %g: trajectory[%d] = %g outside [%g, %g]",
						name, s.Name, margin, i, v, cmin, cmax)
				}
			}
		}
	}
}

// TestBackendsEndToEnd drives a non-paper plan through the whole
// stack — manager construction, closed-loop Algorithm 3 simulation,
// checkpointed replay — the "plan → params → simulate" acceptance
// path.
func TestBackendsEndToEnd(t *testing.T) {
	var hw *scenario.Hardware
	pcfg, err := hw.WithDefaults().ParamsConfig()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"yds", "bunde"} {
		for _, s := range trace.Scenarios() {
			plan, err := pipeline.PlanWith(context.Background(), name, pipeline.PlanSpec{Scenario: s})
			if err != nil {
				t.Fatal(err)
			}
			mgr, err := pipeline.NewManager(context.Background(), name, s, pcfg, dpm.Proportional)
			if err != nil {
				t.Fatalf("%s on %s: NewManager: %v", name, s.Name, err)
			}
			if got := mgr.PlanSnapshot(); !schedule.NewGrid(s.Charging.Step, got).Equal(plan.Allocation, 1e-12) {
				t.Errorf("%s on %s: manager plan %v does not match the strategy plan %v",
					name, s.Name, got, plan.Allocation.Values)
			}
			res, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
				Scenario:   s,
				Planner:    name,
				Params:     pcfg,
				Periods:    2,
				SyncCharge: true,
			})
			if err != nil {
				t.Fatalf("%s on %s: simulate: %v", name, s.Name, err)
			}
			if res.Battery.TotalSupplied <= 0 {
				t.Errorf("%s on %s: simulation supplied %g J", name, s.Name, res.Battery.TotalSupplied)
			}
			tau := s.Charging.Step
			reports := []pipeline.SlotReport{{UsedJ: plan.Allocation.Values[0] * tau,
				SuppliedJ: s.Charging.Values[0] * tau}}
			rmgr, err := pipeline.ReplayWith(context.Background(), name, s, pcfg, dpm.Proportional, nil, reports)
			if err != nil {
				t.Fatalf("%s on %s: replay: %v", name, s.Name, err)
			}
			if rmgr.Slot() != 1 {
				t.Errorf("%s on %s: replay slot %d, want 1", name, s.Name, rmgr.Slot())
			}
		}
	}
}

// TestInvalidSpecRejected: backends run the same canonical validation
// as the paper path.
func TestInvalidSpecRejected(t *testing.T) {
	bad := trace.ScenarioI()
	bad.CapacityMin, bad.CapacityMax = bad.CapacityMax, bad.CapacityMin
	for _, name := range []string{"yds", "bunde"} {
		if _, err := pipeline.PlanWith(context.Background(), name, pipeline.PlanSpec{Scenario: bad}); err == nil {
			t.Errorf("%s accepted an inverted battery band", name)
		}
	}
}
