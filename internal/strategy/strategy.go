// Package strategy implements alternative planner backends behind the
// pipeline.Strategy interface, so "how close to optimal is the
// paper's heuristic?" is answerable by swapping the planner under an
// otherwise unchanged stack.
//
// Two backends register here:
//
//   - "yds": YDS-style speed scaling adapted to the battery/solar
//     recharge model (after Barcelo et al., "Energy Efficient Speed
//     Scaling with a Solar Cell"). The cumulative allocation is the
//     taut string through the corridor the battery band induces —
//     the unique trajectory that simultaneously minimizes every
//     convex function of the per-slot power, so it is the YDS
//     optimum for wasted/undersupplied energy among feasible plans
//     ending in periodic steady state.
//
//   - "bunde": a power-aware makespan scheduler (after Bunde,
//     "Power-aware scheduling for makespan and flow"). Convexity
//     makes constant speed optimal for makespan under an energy
//     budget, so the backend levels the balanced demand to
//     piecewise-constant power between the slots where the battery
//     band binds.
//
// Both produce alloc.Result via alloc.ResultFromPlan, so params
// selection, simulation, replay and the fleet layer consume their
// plans unchanged. Callers opt in by blank-importing this package
// (database/sql-driver style); internal/pipeline registers the
// default "paper" backend on its own.
package strategy

import "math"

// clampBand applies the planning margin exactly as alloc.Compute
// does — shrink the band by margin·(cmax−cmin) at each end, then
// clamp the initial charge into it — so every backend plans (and is
// scored feasible) against the same effective band for the same spec.
func clampBand(cmin, cmax, initial, margin float64) (float64, float64, float64) {
	if margin > 0 {
		band := cmax - cmin
		cmin += margin * band
		cmax -= margin * band
	}
	initial = math.Min(math.Max(initial, cmin), cmax)
	return cmin, cmax, initial
}

// countViolations counts trajectory points outside [cmin−tol,
// cmax+tol] — the per-iteration violation metric the paper's driver
// reports, reused for the alternative backends' histories.
func countViolations(traj []float64, cmin, cmax, tol float64) int {
	n := 0
	for _, v := range traj {
		if v < cmin-tol || v > cmax+tol {
			n++
		}
	}
	return n
}
