package pipeline

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"dpm/internal/alloc"
	"dpm/internal/trace"
)

// TestPlanPoolSafetyUnderErrors hammers Plan concurrently with a mix
// of successful plans, validation failures and canceled contexts,
// then checks every successful result against a reference computed in
// isolation. Run under -race this is the regression net for the
// pooled alloc scratch: a scratch slice returned to the pool while
// its memory is still referenced by a live result — or poisoned state
// left behind by an error path — shows up as a data race or as a
// result diverging from the reference.
func TestPlanPoolSafetyUnderErrors(t *testing.T) {
	scenarios := trace.Scenarios()
	refs := make([]*alloc.Result, len(scenarios))
	for i, s := range scenarios {
		ref, err := Plan(context.Background(), PlanSpec{Scenario: s})
		if err != nil {
			t.Fatalf("%s: reference plan: %v", s.Name, err)
		}
		refs[i] = ref
	}

	invalid := trace.ScenarioI()
	invalid.CapacityMin = invalid.CapacityMax + 1 // inverted battery band

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0, 1: // success paths, both scenarios
					idx := (w + i) % len(scenarios)
					got, err := Plan(context.Background(), PlanSpec{Scenario: scenarios[idx]})
					if err != nil {
						t.Errorf("valid plan failed: %v", err)
						return
					}
					if !reflect.DeepEqual(got, refs[idx]) {
						t.Errorf("%s: concurrent result diverges from reference", scenarios[idx].Name)
						return
					}
				case 2: // validation error path
					if _, err := Plan(context.Background(), PlanSpec{Scenario: invalid}); err == nil {
						t.Error("invalid scenario planned successfully")
						return
					}
				case 3: // context cancellation inside the driver
					if _, err := Plan(canceled, PlanSpec{Scenario: scenarios[0]}); err == nil {
						t.Error("canceled context planned successfully")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPlanManyPoolSafety drives the batch fan-out with interleaved
// good and bad specs so pooled scratch is claimed and released across
// goroutines, and verifies item isolation: bad specs fail, good specs
// still match the reference bit for bit.
func TestPlanManyPoolSafety(t *testing.T) {
	good := trace.ScenarioI()
	ref, err := Plan(context.Background(), PlanSpec{Scenario: good})
	if err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Charging = nil

	const n = 64
	specs := make([]PlanSpec, n)
	for i := range specs {
		if i%3 == 2 {
			specs[i] = PlanSpec{Scenario: bad}
		} else {
			specs[i] = PlanSpec{Scenario: good}
		}
	}
	for round := 0; round < 20; round++ {
		outs := PlanMany(context.Background(), specs, 8)
		for i, out := range outs {
			if i%3 == 2 {
				if out.Err == nil {
					t.Fatalf("round %d item %d: bad spec succeeded", round, i)
				}
				continue
			}
			if out.Err != nil {
				t.Fatalf("round %d item %d: %v", round, i, out.Err)
			}
			if !reflect.DeepEqual(out.Result, ref) {
				t.Fatalf("round %d item %d: result diverges from reference", round, i)
			}
		}
	}
}
